package dta_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"dta"
)

// haBenchOptions sizes stores like cmd/dtaload, so slot-overwrite noise
// does not pollute the replication measurements.
func haBenchOptions() dta.Options {
	return dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 18},
	}
}

func benchKeyData(i uint64) []byte {
	var d [4]byte
	binary.BigEndian.PutUint32(d[:], uint32(i))
	return d[:]
}

// BenchmarkHA_SyncKeyWrite measures the synchronous fan-out cost of
// replication: every report crosses the full wire path R times.
func BenchmarkHA_SyncKeyWrite(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			c, err := dta.NewHACluster(4, r, haBenchOptions())
			if err != nil {
				b.Fatal(err)
			}
			rep := c.Reporter(1)
			data := []byte{1, 2, 3, 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(r)/b.Elapsed().Seconds(), "replica-writes/s")
		})
	}
}

// BenchmarkHA_EngineIngest measures end-to-end async throughput under
// R=1/2/3: submissions fan out to R shard queues and the benchmark
// drains before stopping the clock, so the figure covers ingestion,
// not just enqueueing.
func BenchmarkHA_EngineIngest(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			c, err := dta.NewHACluster(4, r, haBenchOptions())
			if err != nil {
				b.Fatal(err)
			}
			eng, err := c.Engine(dta.EngineConfig{})
			if err != nil {
				b.Fatal(err)
			}
			rep := eng.Reporter(1)
			data := []byte{1, 2, 3, 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
					b.Fatal(err)
				}
			}
			if err := rep.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkHA_FailoverIngest kills a collector mid-run and reports,
// alongside throughput, the fraction of written keys still answerable
// afterwards (with the victim restored and rebalanced): the
// availability-under-failure trade R buys.
func BenchmarkHA_FailoverIngest(b *testing.B) {
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			c, err := dta.NewHACluster(4, r, haBenchOptions())
			if err != nil {
				b.Fatal(err)
			}
			eng, err := c.Engine(dta.EngineConfig{})
			if err != nil {
				b.Fatal(err)
			}
			rep := eng.Reporter(1)
			victim := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i == b.N/2 {
					if err := c.SetDown(victim); err != nil {
						b.Fatal(err)
					}
				}
				k := uint64(i) % (1 << 16) // bounded key space: queries verifiable
				if err := rep.KeyWrite(dta.KeyFromUint64(k), benchKeyData(k), 2); err != nil {
					b.Fatal(err)
				}
			}
			if err := rep.Flush(); err != nil {
				b.Fatal(err)
			}
			if err := eng.Drain(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := c.SetUp(victim); err != nil {
				b.Fatal(err)
			}
			if err := c.Rebalance(); err != nil {
				b.Fatal(err)
			}
			keys := uint64(b.N)
			if keys > 1<<16 {
				keys = 1 << 16
			}
			found := 0
			for k := uint64(0); k < keys; k++ {
				data, ok, err := c.LookupValue(dta.KeyFromUint64(k), 2)
				if err == nil && ok && bytes.Equal(data, benchKeyData(k)) {
					found++
				}
			}
			b.ReportMetric(100*float64(found)/float64(keys), "%recovered")
			if err := eng.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
