package dta

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"

	"dta/internal/loadgen"
	"dta/internal/wal"
)

// ingestMixed drives 8 reports per index (a Key-Write, an Increment, a
// full 5-hop postcard set, an Append) through a synchronous reporter,
// deterministically derived from the index.
func ingestMixed(t *testing.T, rep *Reporter, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		k := KeyFromUint64(uint64(i))
		if err := rep.KeyWrite(k, keyData(uint64(i)), 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Increment(k, uint64(i%7+1), 2); err != nil {
			t.Fatal(err)
		}
		for h := 0; h < 5; h++ {
			if err := rep.PostcardValue(k, h, 5, uint32((i+h)%63+1)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.Append(uint32(i%4), keyData(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
}

// requireSameStores asserts two systems hold byte-identical primitive
// stores and append head pointers.
func requireSameStores(t *testing.T, got, want *System) {
	t.Helper()
	if !bytes.Equal(got.Host().KeyWriteStore().Buffer(), want.Host().KeyWriteStore().Buffer()) {
		t.Error("key-write stores diverge")
	}
	if !bytes.Equal(got.Host().KeyIncrementStore().Buffer(), want.Host().KeyIncrementStore().Buffer()) {
		t.Error("key-increment stores diverge")
	}
	if !bytes.Equal(got.Host().PostcardingStore().Buffer(), want.Host().PostcardingStore().Buffer()) {
		t.Error("postcarding stores diverge")
	}
	if !bytes.Equal(got.Host().AppendStore().Buffer(), want.Host().AppendStore().Buffer()) {
		t.Error("append stores diverge")
	}
	gb, wb := got.Translator().AppendBatcher(), want.Translator().AppendBatcher()
	for l := 0; l < got.Host().AppendStore().Config().Lists; l++ {
		if gb.Written(l) != wb.Written(l) {
			t.Errorf("list %d written = %d, want %d", l, gb.Written(l), wb.Written(l))
		}
	}
}

// TestSystemWALRecoverRoundTrip: everything ingested before a crash
// comes back — stores, batcher heads and translator caches — by
// rebuilding from the WAL directory alone (RecoverSystem reads the
// recorded geometry; no Options needed).
func TestSystemWALRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	ingestMixed(t, rep, 0, 300)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	st, ok := sys.WALStats()
	if !ok || st.LastLSN != 2400 || st.DurableLSN != 2400 {
		t.Fatalf("WAL stats = %+v, want 2400 records durable", st)
	}
	// Crash: the writer is simply abandoned.

	rec, err := RecoverSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered system must answer like the original. (Flush state
	// replays too: the original flushed, and the log replay re-runs the
	// same reports, so we flush the recovered system identically.)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	requireSameStores(t, rec, sys)
	val, ok, err := rec.LookupValue(KeyFromUint64(42), 2)
	if err != nil || !ok || !bytes.Equal(val, keyData(42)) {
		t.Fatalf("recovered LookupValue(42) = %x %v %v", val, ok, err)
	}
	cnt, err := rec.LookupCount(KeyFromUint64(42), 2)
	if err != nil || cnt < 42%7+1 {
		t.Fatalf("recovered LookupCount(42) = %d %v", cnt, err)
	}
	path, ok, err := rec.LookupPath(KeyFromUint64(42), 1)
	if err != nil || !ok || path[3] != (42+3)%63+1 {
		t.Fatalf("recovered LookupPath(42) = %v %v %v", path, ok, err)
	}
}

// TestSystemCheckpointBoundsReplay: a checkpoint reclaims covered
// segments and recovery loads the image plus only the tail.
func TestSystemCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny segments so the checkpoint actually reclaims some.
	if err := sys.WithWAL(dir, WALPolicy{SegmentBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	ingestMixed(t, rep, 0, 200)
	lsn, err := sys.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 1600 {
		t.Fatalf("checkpoint LSN = %d, want 1600", lsn)
	}
	ingestMixed(t, rep, 200, 300)
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	first, last, err := wal.Bounds(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first <= 1 {
		t.Fatalf("no segments reclaimed below checkpoint: first retained LSN %d", first)
	}
	if last != 2400 {
		t.Fatalf("tail lost: last LSN %d, want 2400", last)
	}

	rec, err := RecoverSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		val, ok, err := rec.LookupValue(KeyFromUint64(uint64(i)), 2)
		if err != nil || !ok || !bytes.Equal(val, keyData(uint64(i))) {
			t.Fatalf("recovered key %d = %x %v %v", i, val, ok, err)
		}
	}
}

// TestSystemRecoverTornTail kills the log at a byte offset past the
// last acknowledged (fsynced) record and asserts recovery restores
// exactly a prefix: every acknowledged report answers, and the restored
// state is byte-identical to a reference system fed exactly the
// surviving prefix.
func TestSystemRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	const acked = 150
	ingestMixed(t, rep, 0, acked)
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	durable := sys.wal.DurableLSN()
	segs, err := wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	ackedBytes := segs[len(segs)-1].Bytes
	ingestMixed(t, rep, acked, acked+100)
	if err := sys.wal.Flush(); err != nil { // hand the tail to the OS, no fsync
		t.Fatal(err)
	}
	segs, err = wal.Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	tail := segs[len(segs)-1]
	// Kill mid-record: truncate a third of the way into the unsynced
	// tail, deliberately not on a record boundary.
	cut := ackedBytes + (tail.Bytes-ackedBytes)/3 + 7
	if err := os.Truncate(tail.Path, cut); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := fresh.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored < durable {
		t.Fatalf("recovered to LSN %d, %d were acknowledged", restored, durable)
	}
	if restored >= uint64(8*(acked+100)) {
		t.Fatalf("recovered %d records, tail was cut", restored)
	}
	// Exactness: a reference system fed exactly the surviving prefix
	// must match byte for byte. Each ingestMixed index emits 8 reports,
	// so replay the same sequence and stop at the restored LSN.
	ref, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	refRep := ref.Reporter(1)
	n := 0
	emit := func(f func() error) {
		if uint64(n) >= restored {
			return
		}
		n++
		if err := f(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; uint64(n) < restored; i++ {
		k := KeyFromUint64(uint64(i))
		emit(func() error { return refRep.KeyWrite(k, keyData(uint64(i)), 2) })
		emit(func() error { return refRep.Increment(k, uint64(i%7+1), 2) })
		for h := 0; h < 5; h++ {
			h := h
			emit(func() error { return refRep.PostcardValue(k, h, 5, uint32((i+h)%63+1)) })
		}
		emit(func() error { return refRep.Append(uint32(i%4), keyData(uint64(i))) })
	}
	requireSameStores(t, fresh, ref)
}

// TestWALBatchPolicyDurableAfterDrain: under the every-batch policy an
// engine drain leaves everything durable without an explicit sync.
func TestWALBatchPolicyDurableAfterDrain(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WithWAL(dir, WALPolicy{Mode: WALSyncBatch}); err != nil {
		t.Fatal(err)
	}
	eng, err := sys.Engine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Reporter(1)
	for i := 0; i < 500; i++ {
		if err := rep.KeyWrite(KeyFromUint64(uint64(i)), keyData(uint64(i)), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st, ok := sys.WALStats()
	if !ok || st.LastLSN != 500 {
		t.Fatalf("WAL stats = %+v, want 500 records", st)
	}
	if st.DurableLSN != st.LastLSN {
		t.Fatalf("every-batch policy left %d records undurable", st.LastLSN-st.DurableLSN)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHAClusterWALRecover round-trips a replicated cluster through its
// per-collector WAL directories.
func TestHAClusterWALRecover(t *testing.T) {
	dir := t.TempDir()
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	for i := 0; i < 200; i++ {
		if err := rep.KeyWrite(KeyFromUint64(uint64(i)), keyData(uint64(i)), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Recover(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		val, ok, err := c2.LookupValue(KeyFromUint64(uint64(i)), 2)
		if err != nil || !ok || !bytes.Equal(val, keyData(uint64(i))) {
			t.Fatalf("recovered cluster key %d = %x %v %v", i, val, ok, err)
		}
	}
}

// TestHALogShippingExactAppendResync is the acceptance scenario: under
// concurrent producers with a kill/restore schedule, log-based resync
// recovers EVERY owner's Append rings multiset-exactly (100%), where
// index-aligned snapshot suffix replay loses the entries whose replica
// arrival orders skewed around the failure boundary.
func TestHALogShippingExactAppendResync(t *testing.T) {
	dir := t.TempDir()
	opts := haOptions()
	opts.Append = &AppendOptions{Lists: 8, EntriesPerList: 1 << 12, EntrySize: 4, Batch: 16}
	hac, err := NewHACluster(4, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	eng, err := hac.Engine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := loadgen.ParseSchedule("kill@0.25=1,restore@0.7=1")
	if err != nil {
		t.Fatal(err)
	}
	lcfg := loadgen.Config{
		Profile:   loadgen.Profile{Kind: loadgen.Mixed, Keys: 1 << 12},
		Reporters: 4,
		Reports:   4000,
		Seed:      7,
		Schedule:  sched,
		Drain:     eng.Drain,
		Control: func(ev loadgen.Event) error {
			if ev.Action == loadgen.Kill {
				return hac.SetDown(ev.Collector)
			}
			return hac.SetUp(ev.Collector)
		},
	}
	if _, err := loadgen.Run(lcfg, func(i int) loadgen.Reporter {
		return eng.Reporter(uint32(i + 1))
	}); err != nil {
		t.Fatal(err)
	}
	if err := hac.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if st := hac.HAStats(); st.AppendEntriesResynced == 0 {
		t.Fatalf("log-shipping resync replayed nothing: %+v", st)
	}

	// Multiset verification, dtaload's append-verify: every owner of
	// every list must hold every expected entry.
	expected := loadgen.AppendedKeys(lcfg)
	if len(expected) == 0 {
		t.Fatal("mixed profile generated no appends")
	}
	for list, keys := range expected {
		want := make(map[[4]byte]int, len(keys))
		for _, k := range keys {
			want[loadgen.KeyWriteValue(k)]++
		}
		for _, o := range hac.OwnersOfList(list) {
			sys := hac.System(o)
			store := sys.Host().AppendStore()
			cfg := store.Config()
			written := sys.Translator().AppendBatcher().Written(int(list))
			window := written
			if window > uint64(cfg.EntriesPerList) {
				t.Fatalf("list %d owner %d wrapped its ring (%d written)", list, o, written)
			}
			remaining := make(map[[4]byte]int, len(want))
			for v, n := range want {
				remaining[v] = n
			}
			got := 0
			for i := uint64(0); i < window; i++ {
				var e [4]byte
				copy(e[:], store.Entry(int(list), int(i)))
				if remaining[e] > 0 {
					remaining[e]--
					got++
				}
			}
			if got != len(keys) {
				t.Errorf("list %d owner %d recovered %d/%d entries (%.2f%%)",
					list, o, got, len(keys), 100*float64(got)/float64(len(keys)))
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHAClusterWeightedResharding: reweighting a collector reshards
// ownership; after the mandatory Rebalance every written key must still
// answer through its (possibly new) owners, and the heavy collector
// must own a proportionally larger slice.
func TestHAClusterWeightedResharding(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 2000
	for i := 0; i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(uint64(i)), keyData(uint64(i)), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetCollectorWeight(0, 4); err != nil {
		t.Fatal(err)
	}
	if got := c.CollectorWeight(0); got != 4 {
		t.Fatalf("CollectorWeight(0) = %v", got)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	primaries := make([]int, 4)
	correct := 0
	for i := 0; i < keys; i++ {
		val, ok, err := c.LookupValue(KeyFromUint64(uint64(i)), 2)
		if err != nil {
			t.Fatal(err)
		}
		if ok && bytes.Equal(val, keyData(uint64(i))) {
			correct++
		}
		primaries[c.Owners(KeyFromUint64(uint64(i)))[0]]++
	}
	// Cross-syncing every collector unions all peers' occupied slots, so
	// a few keys can lose their N slots to colliding foreign keys — the
	// usual Key-Write collision hazard, not a reshard defect. Requiring
	// ~99% keeps the test about the reshard+rebalance flow.
	if correct < keys*99/100 {
		t.Errorf("only %d/%d keys answer after reweight+rebalance", correct, keys)
	}
	// Weight 4 against three weight-1 peers: expected primary share 4/7.
	if frac := float64(primaries[0]) / keys; frac < 0.45 || frac > 0.68 {
		t.Errorf("weight-4 collector is primary for %.2f of keys, want ~0.57", frac)
	}
}

// TestHALogShippingSkipsReshardedStale: a collector made stale by a
// reshard (weight change) and THEN flapped must resync from snapshots,
// not logs — fresh watermarks taken at its SetDown would hide the moved
// lists' pre-mark history.
func TestHALogShippingSkipsReshardedStale(t *testing.T) {
	dir := t.TempDir()
	hac, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := hac.Reporter(1)
	const list = uint32(1)
	entry := func(i int) []byte {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		return e[:]
	}
	for i := 0; i < 48; i++ {
		if err := rep.Append(list, entry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	// Reshard: every live collector goes stale with voided watermarks.
	if err := hac.SetCollectorWeight(0, 3); err != nil {
		t.Fatal(err)
	}
	victim := hac.OwnersOfList(list)[0]
	// Flap the list's (new) primary before Rebalance: its SetDown must
	// NOT manufacture fresh log watermarks over the reshard staleness.
	makeStale(t, hac, victim)
	if hac.walMark[victim] != nil {
		t.Fatalf("flap after reshard recorded log watermarks %v", hac.walMark[victim])
	}
	if err := hac.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// The victim owns the list's full history (snapshot resync carried
	// the moved entries).
	got := hac.System(victim).Translator().AppendBatcher().Written(int(list))
	if got != 48 {
		t.Errorf("resharded+flapped owner %d recovered %d/48 list entries", victim, got)
	}
}

// TestHALogShippingOverlappingFailures: collector B fails while A is
// already down. A's watermark in B's mark set must be A's (frozen) log
// position — not absent — or A's whole log would be replayed into B,
// duplicating every shared entry far beyond one ring lap.
func TestHALogShippingOverlappingFailures(t *testing.T) {
	dir := t.TempDir()
	opts := haOptions()
	opts.Append = &AppendOptions{Lists: 4, EntriesPerList: 64, EntrySize: 4, Batch: 4}
	hac, err := NewHACluster(3, 3, opts) // R=3: every collector owns every list
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := hac.Reporter(1)
	const list = uint32(2)
	entry := func(i int) []byte {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		return e[:]
	}
	appendN := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.Append(list, entry(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 40 shared entries near ring capacity (64): un-watermarked full
	// replay of a peer's log would wrap the ring and shed real entries.
	appendN(0, 40)
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hac.SetDown(0); err != nil {
		t.Fatal(err)
	}
	appendN(40, 48) // collector 0 misses these
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hac.SetDown(1); err != nil { // B fails while A is down
		t.Fatal(err)
	}
	if m := hac.walMark[1]; m == nil {
		t.Fatal("no watermarks recorded for collector 1")
	} else if _, ok := m[0]; !ok {
		t.Fatalf("down peer 0 missing from collector 1's watermarks: %v", m)
	}
	if err := hac.SetUp(0); err != nil {
		t.Fatal(err)
	}
	if err := hac.SetUp(1); err != nil {
		t.Fatal(err)
	}
	if err := hac.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for _, o := range []int{0, 1, 2} {
		written := hac.System(o).Translator().AppendBatcher().Written(int(list))
		if written > 64 {
			t.Errorf("collector %d ring wrapped: %d entries written (capacity 64)", o, written)
		}
		// Exact multiset: all 48 entries present.
		store := hac.System(o).Host().AppendStore()
		seen := map[uint32]int{}
		for i := uint64(0); i < written; i++ {
			seen[binary.BigEndian.Uint32(store.Entry(int(list), int(i)))]++
		}
		for i := 0; i < 48; i++ {
			if seen[uint32(i)] < 1 {
				t.Errorf("collector %d missing entry %d", o, i)
			}
		}
	}
}

// TestHALogShippingNoDuplicates pins the multiset-diff: entries the
// restored collector ingested live — before the kill (in-flight) and
// after the restore — appear in its own log and must NOT be replayed
// again from the peers. After Rebalance every owner holds every entry
// EXACTLY once.
func TestHALogShippingNoDuplicates(t *testing.T) {
	dir := t.TempDir()
	opts := haOptions()
	opts.Append = &AppendOptions{Lists: 4, EntriesPerList: 64, EntrySize: 4, Batch: 4}
	hac, err := NewHACluster(3, 3, opts) // R=3: every collector owns every list
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := hac.Reporter(1)
	const list = uint32(1)
	entry := func(i int) []byte {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		return e[:]
	}
	appendN := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.Append(list, entry(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(0, 10)
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hac.SetDown(0); err != nil {
		t.Fatal(err)
	}
	appendN(10, 20) // missed by collector 0
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hac.SetUp(0); err != nil {
		t.Fatal(err)
	}
	appendN(20, 40) // received live post-restore: must not replay again
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := hac.Rebalance(); err != nil {
		t.Fatal(err)
	}
	for o := 0; o < 3; o++ {
		written := hac.System(o).Translator().AppendBatcher().Written(int(list))
		if written != 40 {
			t.Errorf("collector %d holds %d entries, want exactly 40", o, written)
		}
		store := hac.System(o).Host().AppendStore()
		seen := map[uint32]int{}
		for i := uint64(0); i < written; i++ {
			seen[binary.BigEndian.Uint32(store.Entry(int(list), int(i)))]++
		}
		for i := 0; i < 40; i++ {
			if seen[uint32(i)] != 1 {
				t.Errorf("collector %d holds entry %d ×%d, want exactly once", o, i, seen[uint32(i)])
			}
		}
	}
}

// TestSystemRecoverSkipsPoisonedRecord: a logged report that fails
// primitive processing (the live run errored identically and moved on)
// must not abort recovery — it is skipped and every other acknowledged
// record restores.
func TestSystemRecoverSkipsPoisonedRecord(t *testing.T) {
	dir := t.TempDir()
	opts := fullOptions() // Append Lists: 4
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	if err := rep.Append(1, keyData(1)); err != nil {
		t.Fatal(err)
	}
	// List 9999 passes wire validation but fails appendlist range
	// checks; the live path errors and carries on.
	if err := rep.Append(9999, keyData(2)); err == nil {
		t.Fatal("out-of-range list accepted live")
	}
	if err := rep.Append(2, keyData(3)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	last, err := fresh.Recover(dir)
	if err != nil {
		t.Fatalf("recovery poisoned by one bad record: %v", err)
	}
	if last != 3 {
		t.Fatalf("recovered to LSN %d, want 3", last)
	}
	if err := fresh.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{1, 2} {
		if got := fresh.Translator().AppendBatcher().Written(l); got != 1 {
			t.Errorf("list %d recovered %d entries, want 1", l, got)
		}
	}
}

// TestHALogShippingNewcomerFullReplay: a collector added with a WAL
// attached replays the peers' full logs, arriving with complete Append
// history for the lists it now owns.
func TestHALogShippingNewcomerFullReplay(t *testing.T) {
	dir := t.TempDir()
	opts := haOptions()
	hac, err := NewHACluster(3, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := hac.Reporter(1)
	const list = uint32(2)
	for i := 0; i < 64; i++ {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		if err := rep.Append(list, e[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := hac.Flush(); err != nil {
		t.Fatal(err)
	}
	id, err := hac.AddCollector()
	if err != nil {
		t.Fatal(err)
	}
	if err := hac.Rebalance(); err != nil {
		t.Fatal(err)
	}
	owners := hac.OwnersOfList(list)
	isOwner := false
	for _, o := range owners {
		if o == id {
			isOwner = true
		}
	}
	if !isOwner {
		t.Skipf("newcomer %d does not own list %d (owners %v)", id, list, owners)
	}
	if got := hac.System(id).Translator().AppendBatcher().Written(int(list)); got != 64 {
		t.Errorf("newcomer written = %d, want 64", got)
	}
	p, err := hac.System(id).Poller(int(list))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if got := binary.BigEndian.Uint32(p.Poll()); got != uint32(i) {
			t.Fatalf("newcomer entry %d = %d", i, got)
		}
	}
}
