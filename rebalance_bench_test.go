package dta

import (
	"testing"
)

// BenchmarkRebalance measures the resharding barrier for the canonical
// kill/rejoin scenario — a collector misses a small write suffix and
// rebalances back in — comparing full snapshot replay against the
// epoch-windowed incremental resync. It lives in package dta (not
// dta_test) to reach the fullResync knob and the stale map directly:
// each iteration re-marks the victim stale instead of replaying the
// whole write history, so the benchmark isolates resync cost.
//
// slots-replayed/op is the figure of merit: incremental must replay
// strictly fewer slots than full for the same recovery.
func BenchmarkRebalance(b *testing.B) {
	setup := func(b *testing.B) (*HACluster, uint64) {
		b.Helper()
		c, err := NewHACluster(3, 2, Options{
			KeyWrite:     &KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
			KeyIncrement: &KeyIncrementOptions{Slots: 1 << 16},
		})
		if err != nil {
			b.Fatal(err)
		}
		rep := c.Reporter(1)
		const keys = 20000
		for i := uint64(0); i < keys; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				b.Fatal(err)
			}
			if err := rep.Increment(KeyFromUint64(i), 1, 2); err != nil {
				b.Fatal(err)
			}
		}
		const victim = 1
		if err := c.SetDown(victim); err != nil {
			b.Fatal(err)
		}
		window := c.health.Epoch() // the epoch the victim went stale at
		for i := uint64(keys); i < keys+200; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				b.Fatal(err)
			}
			if err := rep.Increment(KeyFromUint64(i), 1, 2); err != nil {
				b.Fatal(err)
			}
		}
		if err := c.SetUp(victim); err != nil {
			b.Fatal(err)
		}
		return c, window
	}
	for _, mode := range []struct {
		name string
		full bool
	}{{"FullReplay", true}, {"Incremental", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c, window := setup(b)
			c.fullResync = mode.full
			before := c.HAStats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.Rebalance(); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Re-open the victim's staleness window for the next
				// iteration without re-driving the workload.
				c.mu.Lock()
				c.stale[1] = window
				c.mu.Unlock()
				b.StartTimer()
			}
			b.StopTimer()
			after := c.HAStats()
			b.ReportMetric(float64(after.ResyncSlots-before.ResyncSlots)/float64(b.N), "slots-replayed/op")
			b.ReportMetric(float64(after.ResyncSlotsSkipped-before.ResyncSlotsSkipped)/float64(b.N), "slots-skipped/op")
		})
	}
}
