module dta

go 1.24
