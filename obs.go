package dta

import (
	"net/http"

	"dta/internal/obs"
)

// ObsRegistry is a deployment's self-telemetry registry: every layer —
// engine shards, translator primitives, RDMA crafting, the WAL writer,
// HA health — registers its counters, gauges and latency histograms
// here, all reading the same atomic cells the Stats snapshots read, so
// the two views can never disagree. See internal/obs for the metric
// primitives and the exposition formats.
//
// The design constraint is the paper's own: measurement that perturbs
// the stream is worthless. Counters are padded (or striped) atomics,
// histograms are fixed log2 buckets, spans are sampled — the
// instrumented ingest path stays allocation-free and within a few
// percent of the uninstrumented one (pinned by tests).
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time copy of every registered series, with
// Delta/Rate helpers for interval math (what dtastat renders).
type ObsSnapshot = obs.Snapshot

// ObsValue is one series in an ObsSnapshot.
type ObsValue = obs.Value

// ObsLabel is a metric label pair.
type ObsLabel = obs.Label

// Metrics returns the system's telemetry registry (nil when Options.
// DisableTelemetry was set). Serve it with ObsMux, scrape it with
// WritePrometheus, or poll it in-process with Snapshot.
func (s *System) Metrics() *ObsRegistry { return s.obsReg }

// Metrics returns the registry shared by every member collector; series
// carry a collector="i" label.
func (c *Cluster) Metrics() *ObsRegistry { return c.reg }

// Metrics returns the registry shared by every member collector and the
// health view (dta_ha_* series).
func (c *HACluster) Metrics() *ObsRegistry { return c.reg }

// ObsMux mounts the registry's HTTP surface on a fresh mux: Prometheus
// text at /metrics, expvar at /debug/vars, and the full pprof suite at
// /debug/pprof/. Nil-safe (a nil registry serves empty metrics).
//
//	srv := &http.Server{Addr: ":9090", Handler: dta.ObsMux(sys.Metrics())}
//	go srv.ListenAndServe()
func ObsMux(r *ObsRegistry) *http.ServeMux { return obs.Mux(r) }
