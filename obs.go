package dta

import (
	"net/http"

	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
)

// ObsRegistry is a deployment's self-telemetry registry: every layer —
// engine shards, translator primitives, RDMA crafting, the WAL writer,
// HA health — registers its counters, gauges and latency histograms
// here, all reading the same atomic cells the Stats snapshots read, so
// the two views can never disagree. See internal/obs for the metric
// primitives and the exposition formats.
//
// The design constraint is the paper's own: measurement that perturbs
// the stream is worthless. Counters are padded (or striped) atomics,
// histograms are fixed log2 buckets, spans are sampled — the
// instrumented ingest path stays allocation-free and within a few
// percent of the uninstrumented one (pinned by tests).
type ObsRegistry = obs.Registry

// ObsSnapshot is a point-in-time copy of every registered series, with
// Delta/Rate helpers for interval math (what dtastat renders).
type ObsSnapshot = obs.Snapshot

// ObsValue is one series in an ObsSnapshot.
type ObsValue = obs.Value

// ObsLabel is a metric label pair.
type ObsLabel = obs.Label

// Metrics returns the system's telemetry registry (nil when Options.
// DisableTelemetry was set). Serve it with ObsMux, scrape it with
// WritePrometheus, or poll it in-process with Snapshot.
func (s *System) Metrics() *ObsRegistry { return s.obsReg }

// Metrics returns the registry shared by every member collector; series
// carry a collector="i" label.
func (c *Cluster) Metrics() *ObsRegistry { return c.reg }

// Metrics returns the registry shared by every member collector and the
// health view (dta_ha_* series).
func (c *HACluster) Metrics() *ObsRegistry { return c.reg }

// ObsMux mounts the registry's HTTP surface on a fresh mux: Prometheus
// text at /metrics, expvar at /debug/vars, and the full pprof suite at
// /debug/pprof/. Nil-safe (a nil registry serves empty metrics).
//
//	srv := &http.Server{Addr: ":9090", Handler: dta.ObsMux(sys.Metrics())}
//	go srv.ListenAndServe()
func ObsMux(r *ObsRegistry) *http.ServeMux { return obs.Mux(r) }

// EventJournal is the control-plane flight recorder: a bounded lock-free
// ring of structured events (failovers, resyncs, WAL rotations, crash
// recoveries, queue stalls) with causal linkage. See internal/obs/journal.
type EventJournal = journal.Journal

// JournalEvent is one decoded flight-recorder entry.
type JournalEvent = journal.Event

// JournalRecord is a JournalEvent's JSON form (what /debug/events serves
// and recovery dumps to events.jsonl).
type JournalRecord = journal.Record

// TracePipeline is the data-plane trace pipeline: sampled end-to-end
// report traces (submit → queue → translate → emit → WAL → fsync →
// durable ack) with tail-based retention of outliers — slow, degraded,
// resync-window and queue-stalled reports are always kept, plus a
// head-sampled baseline. See internal/obs/trace.
type TracePipeline = trace.Tracer

// TraceRecord is one published trace: ID, retention flags and per-stage
// nanosecond stamps.
type TraceRecord = trace.Record

// Tracer returns the system's data-plane trace pipeline (nil when
// Options.DisableTelemetry was set). Serve it with ObsMux at
// /debug/traces, render it with dtastat -traces, or poll Since
// in-process.
func (s *System) Tracer() *TracePipeline { return s.trc }

// Tracer returns the trace pipeline shared by every member collector.
func (c *Cluster) Tracer() *TracePipeline { return c.trc }

// Tracer returns the trace pipeline shared by every member collector;
// resync retries open tail-retention windows on it.
func (c *HACluster) Tracer() *TracePipeline { return c.trc }

// HealthEvaluator runs SLO rules over a registry's snapshot deltas; its
// verdict backs /healthz. See internal/obs's DefaultHealthRules.
type HealthEvaluator = obs.HealthEvaluator

// HealthStatus is one full health evaluation (the /healthz payload).
type HealthStatus = obs.HealthStatus

// HealthRuleResult is one rule's verdict within a HealthStatus.
type HealthRuleResult = obs.RuleResult

// Journal returns the system's flight recorder (nil when Options.
// DisableTelemetry was set). Serve it with ObsMux via the system's
// ObsMux method, tail it with dtastat -events, or poll Since in-process.
func (s *System) Journal() *EventJournal { return s.jr }

// Journal returns the flight recorder shared by every member collector;
// events carry the emitting member's collector label.
func (c *Cluster) Journal() *EventJournal { return c.jr }

// Journal returns the flight recorder shared by every member collector
// and the HA control plane (failover and resync chains).
func (c *HACluster) Journal() *EventJournal { return c.jr }

// HealthEval returns the deployment's /healthz evaluator (default rules
// over default thresholds), built once on first use. Call Eval for an
// in-process verdict — dtaload -verify scenarios assert on it directly.
// Nil-safe with telemetry disabled: the evaluator always reads healthy.
func (s *System) HealthEval() *HealthEvaluator {
	s.healthOnce.Do(func() { s.health = obs.NewHealthEvaluator(s.obsReg) })
	return s.health
}

// HealthEval returns the cluster's /healthz evaluator (see System.HealthEval).
func (c *Cluster) HealthEval() *HealthEvaluator {
	c.healthOnce.Do(func() { c.health = obs.NewHealthEvaluator(c.reg) })
	return c.health
}

// HealthEval returns the HA cluster's /healthz evaluator: the default
// rules include the dta_ha_* availability series, so the verdict flips
// unhealthy while replicas are down or writes degrade and back to
// healthy once Rebalance heals the cluster.
func (c *HACluster) HealthEval() *HealthEvaluator {
	c.healthOnce.Do(func() { c.healthEval = obs.NewHealthEvaluator(c.reg) })
	return c.healthEval
}

// fullMux assembles the complete observability surface: metrics, expvar
// and pprof (obs.Mux), the flight recorder at /debug/events, data-plane
// traces at /debug/traces, and the rule-driven verdict at /healthz.
func fullMux(r *ObsRegistry, j *EventJournal, t *TracePipeline, e *HealthEvaluator) *http.ServeMux {
	mux := obs.Mux(r)
	journal.Mount(mux, j)
	trace.Mount(mux, t)
	obs.MountHealth(mux, e)
	return mux
}

// ObsMux mounts the system's full observability surface on a fresh mux:
// everything the package-level ObsMux serves, plus the flight recorder
// at /debug/events (cursor protocol: ?since=<seq>), data-plane traces
// at /debug/traces (same cursor protocol) and the health verdict at
// /healthz (HTTP 503 with per-rule reasons when unhealthy).
func (s *System) ObsMux() *http.ServeMux { return fullMux(s.obsReg, s.jr, s.trc, s.HealthEval()) }

// ObsMux mounts the cluster's full observability surface (see
// System.ObsMux).
func (c *Cluster) ObsMux() *http.ServeMux { return fullMux(c.reg, c.jr, c.trc, c.HealthEval()) }

// ObsMux mounts the HA cluster's full observability surface (see
// System.ObsMux); /debug/events carries the failover, resync and
// checkpoint chains.
func (c *HACluster) ObsMux() *http.ServeMux { return fullMux(c.reg, c.jr, c.trc, c.HealthEval()) }
