package dta

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func fullOptions() Options {
	vals := make([]uint32, 64)
	for i := range vals {
		vals[i] = uint32(i + 1)
	}
	return Options{
		KeyWrite:     &KeyWriteOptions{Slots: 1 << 12, DataSize: 4},
		KeyIncrement: &KeyIncrementOptions{Slots: 1 << 12},
		Postcarding:  &PostcardingOptions{Chunks: 1 << 10, Hops: 5, Values: vals, CacheRows: 1 << 10},
		Append:       &AppendOptions{Lists: 4, EntriesPerList: 1 << 10, EntrySize: 4, Batch: 4},
	}
}

func TestNewRequiresPrimitive(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty options accepted")
	}
}

func TestKeyWriteRoundTrip(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	k := KeyFromUint64(42)
	if err := rep.KeyWrite(k, []byte{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	data, ok, err := sys.LookupValue(k, 2)
	if err != nil || !ok || !bytes.Equal(data, []byte{1, 2, 3, 4}) {
		t.Errorf("lookup = %v %v %v", data, ok, err)
	}
	// Missing key.
	if _, ok, _ := sys.LookupValue(KeyFromUint64(7777), 2); ok {
		t.Error("found missing key")
	}
}

func TestMultipleReportersShareStore(t *testing.T) {
	sys, _ := New(fullOptions())
	// Many reporters write distinct keys into the shared store — the
	// global stateless hashing is what makes this work (§4).
	for id := uint32(1); id <= 8; id++ {
		rep := sys.Reporter(id)
		var data [4]byte
		binary.BigEndian.PutUint32(data[:], id)
		if err := rep.KeyWrite(KeyFromUint64(uint64(id)), data[:], 2); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint32(1); id <= 8; id++ {
		data, ok, _ := sys.LookupValue(KeyFromUint64(uint64(id)), 2)
		if !ok || binary.BigEndian.Uint32(data) != id {
			t.Errorf("reporter %d's key: %v %v", id, data, ok)
		}
	}
}

func TestPostcardAggregationAcrossReporters(t *testing.T) {
	sys, _ := New(fullOptions())
	// Five switches on the path each send their own postcard, as in a
	// real deployment: the translator aggregates them into one chunk.
	k := FiveTupleKey([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 80, 443, 6)
	for hop := 0; hop < 5; hop++ {
		rep := sys.Reporter(uint32(hop + 1)) // switch IDs 1..5
		if err := rep.Postcard(k, hop, 5); err != nil {
			t.Fatal(err)
		}
	}
	path, ok, err := sys.LookupPath(k, 1)
	if err != nil || !ok {
		t.Fatalf("path lookup: %v %v", ok, err)
	}
	want := []uint32{1, 2, 3, 4, 5}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("hop %d = %d, want %d", i, path[i], want[i])
		}
	}
}

func TestAppendAndPoll(t *testing.T) {
	sys, _ := New(fullOptions())
	rep := sys.Reporter(1)
	for i := 0; i < 10; i++ {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		if err := rep.Append(2, e[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil { // 10 = 2 batches + partial
		t.Fatal(err)
	}
	p, err := sys.Poller(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := binary.BigEndian.Uint32(p.Poll()); got != uint32(i) {
			t.Errorf("poll %d = %d", i, got)
		}
	}
}

func TestIncrementAggregation(t *testing.T) {
	sys, _ := New(fullOptions())
	a, b := sys.Reporter(1), sys.Reporter(2)
	k := KeyFromUint64(5)
	a.Increment(k, 10, 2)
	b.Increment(k, 32, 2)
	got, err := sys.LookupCount(k, 2)
	if err != nil || got != 42 {
		t.Errorf("count = %d %v, want 42", got, err)
	}
}

func TestImmediateEvent(t *testing.T) {
	sys, _ := New(fullOptions())
	rep := sys.Reporter(1)
	if err := rep.KeyWriteImmediate(KeyFromUint64(1), []byte{1, 2, 3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	if len(sys.Host().Events) != 1 {
		t.Error("no push notification")
	}
}

func TestLossyReporterLink(t *testing.T) {
	opts := fullOptions()
	opts.ReporterLoss = 0.5
	opts.Seed = 7
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := rep.KeyWrite(KeyFromUint64(uint64(i)), []byte{9, 9, 9, 9}, 2); err != nil {
			t.Fatal(err)
		}
		sys.Advance(1000)
	}
	found := 0
	for i := 0; i < keys; i++ {
		if _, ok, _ := sys.LookupValue(KeyFromUint64(uint64(i)), 2); ok {
			found++
		}
	}
	st := sys.Stats()
	if st.LinkDropped == 0 {
		t.Fatal("no frames dropped at 50% loss")
	}
	// Best-effort semantics: surviving reports are queryable; lost ones
	// are not, and nothing breaks.
	if found < keys/3 || found > 2*keys/3+keys/10 {
		t.Errorf("found %d/%d at 50%% loss", found, keys)
	}
}

func TestStatsAndMemInstr(t *testing.T) {
	sys, _ := New(fullOptions())
	rep := sys.Reporter(1)
	for i := 0; i < 100; i++ {
		rep.KeyWrite(KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 2)
	}
	st := sys.Stats()
	if st.Reports != 100 || st.RDMAWrites != 200 {
		t.Errorf("stats = %+v", st)
	}
	if st.MemInstrPerReport != 2.0 {
		t.Errorf("mem instr/report = %v, want 2.0 (Fig. 8)", st.MemInstrPerReport)
	}
}

func TestRateLimitedSystem(t *testing.T) {
	opts := fullOptions()
	opts.RateLimit = 1000
	sys, _ := New(opts)
	rep := sys.Reporter(1)
	for i := 0; i < 100; i++ {
		rep.KeyWrite(KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 1)
	}
	if sys.Stats().RateDropped == 0 {
		t.Error("rate limiter inactive")
	}
}
