package dta

import (
	"bytes"
	"encoding/binary"
	"sync"
	"testing"

	"dta/internal/telemetry/inttel"
	"dta/internal/trace"
)

// TestManyReportersSharedStore exercises the architectural claim of §3:
// many switches share one collector store through stateless hashing,
// with no coordination beyond configuration.
func TestManyReportersSharedStore(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	const switches = 64
	reps := make([]*Reporter, switches)
	for i := range reps {
		reps[i] = sys.Reporter(uint32(i + 1))
	}
	// Each switch reports its own keys; all land in one store.
	const perSwitch = 20
	for si, rep := range reps {
		for k := 0; k < perSwitch; k++ {
			id := uint64(si)<<32 | uint64(k)
			var data [4]byte
			binary.BigEndian.PutUint32(data[:], uint32(si*1000+k))
			if err := rep.KeyWrite(KeyFromUint64(id), data[:], 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	found := 0
	for si := 0; si < switches; si++ {
		for k := 0; k < perSwitch; k++ {
			id := uint64(si)<<32 | uint64(k)
			data, ok, err := sys.LookupValue(KeyFromUint64(id), 2)
			if err != nil {
				t.Fatal(err)
			}
			if ok && binary.BigEndian.Uint32(data) == uint32(si*1000+k) {
				found++
			}
		}
	}
	// 1280 keys in 4096 slots (α≈0.31 with N=2): expect the vast
	// majority queryable.
	if found < switches*perSwitch*85/100 {
		t.Errorf("only %d/%d keys queryable", found, switches*perSwitch)
	}
}

// TestEndToEndINTOverLossyFabric drives the full stack — trace
// generation, INT postcard sources per switch, DTA frames over a lossy
// link, translation, RDMA, store, queries — and checks that losses only
// degrade coverage, never correctness.
func TestEndToEndINTOverLossyFabric(t *testing.T) {
	paths, err := inttel.NewPathModel(256, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Postcarding: &PostcardingOptions{
			Chunks: 1 << 12, Hops: 5, Values: paths.ValueSpace(), CacheRows: 1 << 12,
		},
		ReporterLoss: 0.05,
		Seed:         3,
	}
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	g, err := trace.NewGenerator(trace.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reps := map[uint32]*Reporter{}
	seen := map[Key]bool{}
	for i := 0; i < 3000; i++ {
		p := g.Next()
		key := p.Flow.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		for hop := 0; hop < 5; hop++ {
			id := paths.SwitchID(key, hop)
			rep := reps[id]
			if rep == nil {
				rep = sys.Reporter(id)
				reps[id] = rep
			}
			if err := rep.Postcard(key, hop, 5); err != nil {
				t.Fatal(err)
			}
			sys.Advance(100)
		}
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().LinkDropped == 0 {
		t.Fatal("lossy link dropped nothing")
	}
	okCount, wrongCount := 0, 0
	for key := range seen {
		got, ok, err := sys.LookupPath(key, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue // lost postcards or overwritten: acceptable
		}
		okCount++
		want := paths.Path(key, nil)
		if len(got) > len(want) {
			wrongCount++
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				wrongCount++
				break
			}
		}
	}
	if okCount == 0 {
		t.Fatal("no flow queryable at 5% loss")
	}
	// Best-effort degradation: wrong answers must be essentially absent
	// (the checksum machinery rejects partial chunks).
	if wrongCount > okCount/100 {
		t.Errorf("%d wrong paths out of %d answers", wrongCount, okCount)
	}
}

// TestConcurrentQueriesDuringCollection checks that collection (single
// writer) and queries (many readers over snapshots of memory) can
// interleave without corrupting results, mirroring Fig. 16's concurrent
// collection/processing setup. Collection and queries alternate in
// epochs; within an epoch queries run in parallel.
func TestConcurrentQueriesDuringCollection(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	for epoch := 0; epoch < 5; epoch++ {
		base := uint64(epoch) * 100
		for k := uint64(0); k < 100; k++ {
			var data [4]byte
			binary.BigEndian.PutUint32(data[:], uint32(base+k))
			if err := rep.KeyWrite(KeyFromUint64(base+k), data[:], 2); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make(chan error, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := uint64(0); k < 100; k++ {
					data, ok, err := sys.LookupValue(KeyFromUint64(base+k), 2)
					if err != nil {
						errs <- err
						return
					}
					if ok && binary.BigEndian.Uint32(data) != uint32(base+k) {
						t.Errorf("worker %d: key %d wrong value", w, base+k)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
}

// TestAppendOrderPreservedAcrossPrimitivesMix interleaves all four
// primitives through one translator and checks Append's FIFO order
// survives the multiplexing.
func TestAppendOrderPreservedAcrossPrimitivesMix(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	var wantList []uint32
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			var e [4]byte
			binary.BigEndian.PutUint32(e[:], uint32(i))
			if err := rep.Append(1, e[:]); err != nil {
				t.Fatal(err)
			}
			wantList = append(wantList, uint32(i))
		case 1:
			rep.KeyWrite(KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 1)
		case 2:
			rep.Increment(KeyFromUint64(uint64(i)), 1, 1)
		case 3:
			rep.Postcard(KeyFromUint64(uint64(i)), i%5, 5)
		}
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := sys.Poller(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range wantList {
		if got := binary.BigEndian.Uint32(p.Poll()); got != want {
			t.Fatalf("append order broken: got %d want %d", got, want)
		}
	}
}

// TestLatencyQueryThroughFacade covers the §7 extension end to end via
// the public API.
func TestLatencyQueryThroughFacade(t *testing.T) {
	opts := fullOptions()
	opts.Append.EntrySize = 24
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	q := sys.InstallLatencyQuery(1<<10, 5, 100, 2)
	rep := sys.Reporter(1)
	slow, fast := KeyFromUint64(1), KeyFromUint64(2)
	for hop := 0; hop < 5; hop++ {
		rep.PostcardValue(slow, hop, 5, 50) // sum 250
		rep.PostcardValue(fast, hop, 5, 10) // sum 50
	}
	if q.Stats.Triggered != 1 {
		t.Fatalf("triggered = %d", q.Stats.Triggered)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	p, _ := sys.Poller(2)
	e := p.Poll()
	var k Key
	copy(k[:], e[:16])
	if k != slow {
		t.Errorf("wrong flow reported: %v", k)
	}
	if sum := binary.BigEndian.Uint64(e[16:]); sum != 250 {
		t.Errorf("sum = %d", sum)
	}
	if !bytes.Equal(e[:16], slow[:]) {
		t.Error("entry key bytes mismatch")
	}
}
