package dta

import (
	"errors"
	"fmt"
	"path/filepath"

	"dta/internal/ha"
	"dta/internal/obs/journal"
	"dta/internal/snapshot"
	"dta/internal/translator"
	"dta/internal/wal"
	"dta/internal/wire"
)

// WALPolicy configures the write-ahead log's sync behaviour and segment
// sizing. See internal/wal for field semantics; ParseWALPolicy parses
// the CLI form ("none", "interval[=duration]", "batch").
type WALPolicy = wal.Policy

// WAL sync modes: never fsync (OS-paced), fsync on an interval, or
// fsync at every ingest batch boundary.
const (
	WALSyncNone     = wal.SyncNone
	WALSyncInterval = wal.SyncInterval
	WALSyncBatch    = wal.SyncBatch
)

// ParseWALPolicy parses a CLI sync-policy spec.
func ParseWALPolicy(s string) (WALPolicy, error) { return wal.ParsePolicy(s) }

// WALStats snapshots a system's log writer counters.
type WALStats = wal.Stats

// WithWAL attaches a write-ahead log to the system: every admitted
// report is appended, in staged form, to a segmented log under dir
// before primitive processing, so a collector crash loses at most the
// tail the sync policy permits. Call it on a fresh (or just-Recovered)
// system, before any ingest; the deployment geometry is recorded next
// to the segments so standalone tools (dtaquery -wal, RecoverSystem)
// can rebuild the stores from the directory alone.
func (s *System) WithWAL(dir string, pol WALPolicy) error {
	if s.wal != nil {
		return errors.New("dta: WAL already attached")
	}
	w, err := wal.CreateScoped(dir, pol, s.obsScope)
	if err != nil {
		return err
	}
	if err := wal.SaveMeta(dir, &wal.Meta{Translator: s.tr.Config()}); err != nil {
		w.Close()
		return err
	}
	s.wal = w
	w.SetJournal(s.walEmitter())
	s.tr.WAL = func(rec *wire.StagedReport, nowNs uint64) error {
		// Hand the in-flight report's trace handle to the WAL: the
		// flusher stamps write/fsync/ack stages and finishes the trace
		// at durable ack (a second reference keeps it live past the
		// translator's Finish).
		_, err := w.AppendTraced(rec, nowNs, s.tr.TraceHandle())
		return err
	}
	return nil
}

// walEmitter binds the flight recorder to this system's WAL component.
func (s *System) walEmitter() journal.Emitter {
	return journal.Emitter{J: s.jr, Comp: journal.CompWAL, Collector: s.collectorID}
}

// WALAttached reports whether a WAL is logging this system.
func (s *System) WALAttached() bool { return s.wal != nil }

// WALStats snapshots the log writer's counters. Call quiesced (no
// concurrent ingest), like Stats.
func (s *System) WALStats() (WALStats, bool) {
	if s.wal == nil {
		return WALStats{}, false
	}
	return s.wal.WStats(), true
}

// SyncWAL forces every logged record onto stable storage.
func (s *System) SyncWAL() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// CloseWAL syncs and detaches the log. Reports ingested afterwards are
// not logged.
func (s *System) CloseWAL() error {
	if s.wal == nil {
		return nil
	}
	s.tr.WAL = nil
	err := s.wal.Close()
	s.wal = nil
	return err
}

// walCommitBatch marks an ingest batch boundary for the sync policy
// (engine worker dequeue batches, translator flushes).
func (s *System) walCommitBatch() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.CommitBatch()
}

// Recover rebuilds this system's state from a WAL directory: the
// checkpoint image (if one was written) is loaded into the stores, then
// the log tail above it replays through the translator pipeline — so
// batcher heads, postcard caches and aggregation state all come back,
// not just store bytes. A torn tail (crash mid-write) is truncated
// away. Returns the last LSN restored (0 = empty log). Call on a fresh
// system built with the same Options the log was written under, before
// WithWAL re-attaches logging.
//
// Recovery is exact over ADMITTED reports: with Options.RateLimit set,
// reports the live run's token bucket shed are still in the log (see
// translator.Translator.WAL) and the replay's bucket paces differently,
// so the restored stores can hold best-effort reports the crashed run
// dropped — never fewer than it acknowledged. Records whose replay
// fails primitive processing (the live run errored identically and
// carried on) are skipped with the same semantics, not fatal.
func (s *System) Recover(dir string) (uint64, error) {
	if s.wal != nil {
		return 0, errors.New("dta: Recover must run before WithWAL")
	}
	// The recovery timeline — start, torn-tail truncation, replay extent
	// — is one causal chain, dumped to dir afterwards so it survives the
	// process (dtarecover -events reads it back). The explicit RepairTail
	// here is idempotent with the one inside wal.Recover; it runs first
	// only to learn the truncated byte count, which wal.Recover discards.
	jr := s.walEmitter()
	cause := jr.NewCause()
	jr.Emit(journal.EvRecoveryStart, journal.SevInfo, cause, 0, 0, 0)
	torn, err := wal.RepairTail(dir)
	if err != nil {
		return 0, err
	}
	if torn > 0 {
		jr.Emit(journal.EvTornTail, journal.SevWarn, cause, uint64(torn), 0, 0)
	}
	last, skipped, err := wal.Recover(dir,
		func(ck *snapshot.Snapshot) error {
			_, err := ha.Resync(ha.Target{Host: s.host, Batcher: s.tr.AppendBatcher()}, []ha.Peer{{Snap: ck}})
			return err
		},
		func(lsn, nowNs uint64, rec *wire.StagedReport) error {
			return s.tr.ProcessStaged(rec, nowNs)
		})
	if err != nil {
		return last, err
	}
	jr.Emit(journal.EvReplayExtent, journal.SevInfo, cause, last, uint64(skipped), 0)
	if s.jr != nil {
		// Best-effort post-mortem artifact; recovery itself succeeded.
		_ = s.jr.DumpFile(filepath.Join(dir, journal.DumpFileName))
	}
	return last, nil
}

// Checkpoint bounds recovery time and log growth: translator state is
// flushed (an epoch boundary, like Flush), the stores are snapshotted
// together with the current log position, the image is written
// atomically next to the segments, and segments wholly below the
// position are reclaimed. Recovery then loads the image and replays
// only the tail. Requires an attached WAL and quiesced producers (drain
// the engine first). Returns the checkpointed LSN (0 = empty log,
// nothing written).
func (s *System) Checkpoint() (uint64, error) {
	if s.wal == nil {
		return 0, errors.New("dta: no WAL attached")
	}
	if err := s.Flush(); err != nil {
		return 0, err
	}
	if err := s.wal.Sync(); err != nil {
		return 0, err
	}
	lsn := s.wal.LastLSN()
	if lsn == 0 {
		s.ckptCause = 0
		return 0, nil
	}
	snap := snapshot.Capture(s.host)
	if b := s.tr.AppendBatcher(); b != nil {
		snap.AppendHeads = b.WrittenCounts(nil)
	}
	snap.WALLSN = lsn
	if err := wal.WriteCheckpoint(s.wal.Dir(), snap); err != nil {
		return 0, err
	}
	removed, err := wal.TruncateBelow(s.wal.Dir(), lsn)
	if err != nil {
		return 0, err
	}
	// Chain under the failure arc that triggered this checkpoint when
	// HACluster.Rebalance threaded one in; standalone checkpoints mint
	// their own chain.
	cause := s.ckptCause
	s.ckptCause = 0
	jr := s.walEmitter()
	if cause == 0 {
		cause = jr.NewCause()
	}
	jr.Emit(journal.EvCheckpoint, journal.SevInfo, cause, lsn, 0, 0)
	if removed > 0 {
		jr.Emit(journal.EvWALTruncate, journal.SevInfo, cause, lsn, uint64(removed), 0)
	}
	return lsn, nil
}

// RecoverSystem rebuilds a System from a WAL directory alone: the
// geometry recorded by WithWAL selects the store configuration, then
// Recover replays the checkpoint and log tail. The returned system is
// queryable immediately; call WithWAL to resume logging into the same
// directory.
func RecoverSystem(dir string) (*System, error) {
	m, err := wal.LoadMeta(dir)
	if err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("dta: %s holds no WAL metadata", dir)
	}
	sys, err := New(optionsFromTranslator(m.Translator))
	if err != nil {
		return nil, err
	}
	if _, err := sys.Recover(dir); err != nil {
		return nil, err
	}
	return sys, nil
}

// optionsFromTranslator reverses New's Options→configs mapping for
// WAL-metadata recovery.
func optionsFromTranslator(tc translator.Config) Options {
	var o Options
	if c := tc.KeyWrite; c != nil {
		o.KeyWrite = &KeyWriteOptions{Slots: c.Slots, DataSize: c.DataSize, ChecksumBits: c.ChecksumBits}
	}
	if c := tc.KeyIncrement; c != nil {
		o.KeyIncrement = &KeyIncrementOptions{Slots: c.Slots, AggregationRows: tc.KIAggregationRows}
	}
	if c := tc.Postcarding; c != nil {
		o.Postcarding = &PostcardingOptions{
			Chunks: c.Chunks, Hops: c.Hops, Values: c.Values, SlotBits: c.SlotBits,
			CacheRows: tc.PostcardCacheRows, Redundancy: tc.PostcardRedundancy,
		}
	}
	if c := tc.Append; c != nil {
		o.Append = &AppendOptions{Lists: c.Lists, EntriesPerList: c.EntriesPerList, EntrySize: c.EntrySize, Batch: tc.AppendBatch}
	}
	o.RateLimit = tc.RateLimit
	return o
}

// walSubdir names collector i's log directory inside an HA cluster's
// WAL root.
func walSubdir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("collector-%03d", i))
}

// WithWAL attaches a write-ahead log to every collector, each under its
// own subdirectory of dir (collector-000, collector-001, ...), and
// enables log-shipping resync: SetDown records every live peer's log
// position, and the next Rebalance replays the rejoining collector's
// missed Append operations from the peers' logs — exact under
// concurrent producers — instead of index-aligned snapshot suffixes.
// Call before ingest; collectors added later inherit the directory and
// policy.
func (c *HACluster) WithWAL(dir string, pol WALPolicy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.walDir != "" {
		return errors.New("dta: WAL already attached")
	}
	for i, sys := range c.systems {
		if err := sys.WithWAL(walSubdir(dir, i), c.memberWALPolicy(i, pol)); err != nil {
			return err
		}
	}
	c.walDir, c.walPol = dir, pol
	return nil
}

// memberWALPolicy is collector i's copy of the cluster WAL policy: with
// a chaos plane enabled, its segment files open through the collector's
// fault-injection disk (slow fsyncs, sticky errnos, short writes).
func (c *HACluster) memberWALPolicy(i int, pol WALPolicy) WALPolicy {
	if c.chaos != nil {
		pol.WrapFile = c.chaos.Disk(i).WrapFile
	}
	return pol
}

// Recover rebuilds every collector's state from an HA WAL root written
// by a previous cluster's WithWAL (collector i from collector-%03d).
// Call on a fresh cluster built with the same size and Options, before
// WithWAL. Collectors without a log directory are left empty.
//
// Resynced collectors recover in full: Rebalance checkpoints every
// collector it heals, folding resync writes (which bypass the log) into
// that collector's recovery baseline. Read-repair writes between
// checkpoints are NOT logged — after recovery the repaired divergence
// can reappear, and the next query heals it again, exactly as it was
// healed the first time.
func (c *HACluster) Recover(dir string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, sys := range c.systems {
		sub := walSubdir(dir, i)
		if m, err := wal.LoadMeta(sub); err != nil {
			return fmt.Errorf("dta: recover collector %d: %w", i, err)
		} else if m == nil {
			continue
		}
		if _, err := sys.Recover(sub); err != nil {
			return fmt.Errorf("dta: recover collector %d: %w", i, err)
		}
	}
	return nil
}

// SyncWAL forces every collector's log onto stable storage.
func (c *HACluster) SyncWAL() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, sys := range c.systems {
		if err := sys.SyncWAL(); err != nil {
			return err
		}
	}
	return nil
}

// appendOpKey identifies one logged Append operation for the
// multiset-diff between a peer's log and the target's own.
type appendOpKey struct {
	list uint32
	data string
}

// appendExclusion is the multiset of Append operations the target's own
// log proves it already holds: everything it logged above its SetDown
// self-mark — in-flight ops applied while flagged down, and the whole
// post-restore fan-out. Subtracting it from the peers' replay streams
// makes log-shipping resync duplicate-free as well as loss-free: an
// entry is replayed exactly (peer count − target count) times, the
// number of copies the target actually missed.
func (c *HACluster) appendExclusion(id int, selfMark uint64) (map[appendOpKey]int, error) {
	w := c.systems[id].wal
	if w == nil {
		return nil, nil
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	excl := make(map[appendOpKey]int)
	_, err := wal.Replay(w.Dir(), selfMark+1, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
		if rec.Primitive() == wire.PrimAppend {
			excl[appendOpKey{rec.AppendArgs(), string(rec.Payload())}]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return excl, nil
}

// appendOpsFrom builds the log-shipping stream Rebalance hands to
// ha.Resync: peer's logged Append operations above the target's
// watermark, filtered to the lists the target owns AND for which peer
// is the target's designated source — the first live owner-peer in ring
// order — so each missed entry is replayed exactly once even when
// several live peers hold the same list. Operations present in the
// exclusion multiset (the target's own post-mark log) are consumed from
// it instead of yielded: the target already holds them.
func (c *HACluster) appendOpsFrom(target, peer int, fromLSN uint64, excl map[appendOpKey]int) ha.AppendOps {
	dir := c.systems[peer].wal.Dir()
	decided := make(map[uint32]bool)
	return func(yield func(list uint32, data []byte) error) error {
		_, err := wal.Replay(dir, fromLSN+1, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
			if rec.Primitive() != wire.PrimAppend {
				return nil
			}
			list := rec.AppendArgs()
			take, ok := decided[list]
			if !ok {
				take = c.designatedAppendPeer(target, list) == peer
				decided[list] = take
			}
			if !take {
				return nil
			}
			key := appendOpKey{list, string(rec.Payload())}
			if excl[key] > 0 {
				excl[key]--
				return nil
			}
			return yield(list, rec.Payload())
		})
		return err
	}
}

// designatedAppendPeer picks the one live peer whose log serves list
// for target (-1: target does not own the list, or no live peer does).
func (c *HACluster) designatedAppendPeer(target int, list uint32) int {
	var ob [ha.MaxReplicas]int
	owners := c.ring.OwnersOfList(list, c.r, ob[:0])
	targetOwns := false
	for _, o := range owners {
		if o == target {
			targetOwns = true
			break
		}
	}
	if !targetOwns {
		return -1
	}
	for _, o := range owners {
		if o == target || c.health.IsDown(o) {
			continue
		}
		// Route around peer partitions: a cut peer's log is unreadable
		// by contract. (Rebalance already defers wholly-blocked targets;
		// this keeps the designation itself partition-aware.)
		if c.chaos.PeersCut(target, o) {
			continue
		}
		return o
	}
	return -1
}

// logResyncReady reports whether log-shipping can serve target id's
// Append resync: a watermark was recorded (SetDown/AddCollector with a
// WAL attached) and every live peer's log still retains its suffix
// above the watermark (a checkpoint may have reclaimed it). Peers' logs
// are flushed to disk as a side effect so the replay reads everything.
func (c *HACluster) logResyncReady(id int, marks map[int]uint64, peers []int) bool {
	for _, p := range peers {
		if p == id {
			continue
		}
		w := c.systems[p].wal
		if w == nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		first, _, err := wal.Bounds(w.Dir())
		if err != nil {
			return false
		}
		if first > marks[p]+1 {
			return false // checkpoint reclaimed part of the needed suffix
		}
	}
	return true
}
