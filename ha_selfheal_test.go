package dta

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"dta/internal/core/keywrite"
	"dta/internal/snapshot"
)

// plant writes val directly into collector o's Key-Write store (the
// bytes n translator RDMA WRITEs would deposit), manufacturing replica
// divergence without any failure choreography.
func plant(t *testing.T, c *HACluster, o int, k Key, val []byte, n int) {
	t.Helper()
	if err := c.System(o).Host().KeyWriteStore().Write(k, val, n); err != nil {
		t.Fatal(err)
	}
}

// makeStale flips collector o down and immediately up: live but marked
// stale until the next Rebalance.
func makeStale(t *testing.T, c *HACluster, o int) {
	t.Helper()
	if err := c.SetDown(o); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(o); err != nil {
		t.Fatal(err)
	}
}

// TestHAFailoverTieBreaking drives table-driven disagreement patterns
// over 2- and 3-replica owner sets: plurality wins, and ties must
// deterministically favour the primary owner — including when only
// stale replicas can answer and the primary is one of them (the
// contract documented on LookupValue).
func TestHAFailoverTieBreaking(t *testing.T) {
	A, B, C := keyData(101), keyData(102), keyData(103)
	type state struct {
		val   []byte // nil = no value planted
		stale bool
		down  bool
	}
	cases := []struct {
		name     string
		replicas []state
		want     []byte
	}{
		// 3-replica patterns.
		{"3way/all-agree", []state{{val: A}, {val: A}, {val: A}}, A},
		{"3way/three-way-tie-primary-wins", []state{{val: A}, {val: B}, {val: C}}, A},
		{"3way/plurality-beats-primary", []state{{val: A}, {val: B}, {val: B}}, B},
		{"3way/primary-in-majority", []state{{val: A}, {val: A}, {val: B}}, A},
		{"3way/primary-down-next-owner-breaks-tie", []state{{val: A, down: true}, {val: B}, {val: C}}, B},
		{"3way/stale-primary-fresh-tie", []state{{val: A, stale: true}, {val: B}, {val: C}}, B},
		{"3way/stale-primary-outvoted-by-one-fresh", []state{{val: A, stale: true}, {val: B}, {}}, B},
		{"3way/all-stale-tie-primary-wins", []state{{val: A, stale: true}, {val: B, stale: true}, {val: C, stale: true}}, A},
		{"3way/only-stale-primary-has-answer", []state{{val: A, stale: true}, {}, {}}, A},
		// 2-replica patterns.
		{"2way/tie-primary-wins", []state{{val: A}, {val: B}}, A},
		{"2way/fresh-outvotes-stale-primary", []state{{val: A, stale: true}, {val: B}}, B},
		{"2way/both-stale-primary-wins", []state{{val: A, stale: true}, {val: B, stale: true}}, A},
		{"2way/primary-down", []state{{val: A, down: true}, {val: B}}, B},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := len(tc.replicas)
			c, err := NewHACluster(r, r, haOptions())
			if err != nil {
				t.Fatal(err)
			}
			k := KeyFromUint64(77)
			owners := c.Owners(k)
			for i, st := range tc.replicas {
				if st.val != nil {
					plant(t, c, owners[i], k, st.val, 2)
				}
				if st.stale {
					makeStale(t, c, owners[i])
				}
				if st.down {
					if err := c.SetDown(owners[i]); err != nil {
						t.Fatal(err)
					}
				}
			}
			got, ok, err := c.LookupValue(k, 2)
			if err != nil || !ok || !bytes.Equal(got, tc.want) {
				t.Fatalf("LookupValue = %v %v %v, want %v", got, ok, err, tc.want)
			}
			// Acceptance: a failover query that observed divergence must
			// leave every live replica converged on the winner —
			// verified by direct slot reads against each system. Fresh
			// replicas that had NO answer are exempt: repairing those
			// would resurrect collision-evicted keys (see repairSet), so
			// the query leaves them alone.
			for i, st := range tc.replicas {
				if st.down || (st.val == nil && !st.stale) {
					continue
				}
				direct, ok, err := c.System(owners[i]).LookupValue(k, 2)
				if err != nil || !ok || !bytes.Equal(direct, tc.want) {
					t.Errorf("replica %d not converged: %v %v %v, want %v", owners[i], direct, ok, err, tc.want)
				}
			}
		})
	}
}

// TestHAReadRepairCountsAndCounters exercises read-repair on the other
// two queryable primitives: a stale replica that missed postcards gets
// the winning chunk re-encoded into it, and one that missed increments
// gets its counters raised to the fresh estimate — never lowered.
func TestHAReadRepairCountsAndCounters(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	k := KeyFromUint64(9)
	owners := c.Owners(k)
	victim := owners[0]
	if err := rep.Increment(k, 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown(victim); err != nil {
		t.Fatal(err)
	}
	// Missed while down: 4 more increments and the whole postcard path.
	if err := rep.Increment(k, 4, 2); err != nil {
		t.Fatal(err)
	}
	for hop := 0; hop < 5; hop++ {
		if err := rep.Postcard(k, hop, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(victim); err != nil {
		t.Fatal(err)
	}

	if count, err := c.LookupCount(k, 2); err != nil || count != 7 {
		t.Fatalf("failover count = %d %v, want 7", count, err)
	}
	// The repaired stale replica now reports the full estimate directly.
	if direct, err := c.System(victim).LookupCount(k, 2); err != nil || direct < 7 {
		t.Errorf("victim count after read-repair = %d %v, want >= 7", direct, err)
	}

	path, ok, err := c.LookupPath(k, 1)
	if err != nil || !ok || len(path) != 5 {
		t.Fatalf("failover path = %v %v %v", path, ok, err)
	}
	direct, ok, err := c.System(victim).LookupPath(k, 1)
	if err != nil || !ok || len(direct) != 5 {
		t.Fatalf("victim path after read-repair = %v %v %v", direct, ok, err)
	}
	for i := range path {
		if direct[i] != path[i] {
			t.Errorf("victim hop %d = %d, want %d", i, direct[i], path[i])
		}
	}
	if st := c.HAStats(); st.ReadRepairs < 2 {
		t.Errorf("read-repairs = %d, want >= 2 (count + path): %+v", st.ReadRepairs, st)
	}
}

// TestHAAppendResync is the Append-list recovery scenario: a collector
// misses appends while down, rejoins, and Rebalance replays exactly the
// ring suffix it missed from a surviving replica — restoring both the
// entries and the translator head pointer. A single reporter keeps the
// replicas' arrival order identical, so the comparison is exact.
func TestHAAppendResync(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const list = uint32(1)
	owners := c.OwnersOfList(list)
	victim, survivor := owners[0], owners[1]
	entry := func(i int) []byte {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		return e[:]
	}
	appendN := func(from, to int) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.Append(list, entry(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	appendN(0, 18) // 4 full batches + a partial flushed below
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown(victim); err != nil {
		t.Fatal(err)
	}
	appendN(18, 36) // the victim misses this whole suffix
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetUp(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.systems[victim].Translator().AppendBatcher().Written(int(list)); got != 18 {
		t.Fatalf("victim written = %d before rebalance, want 18", got)
	}
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// Head pointer restored to the survivor's.
	want := c.systems[survivor].Translator().AppendBatcher().Written(int(list))
	if want != 36 {
		t.Fatalf("survivor written = %d, want 36", want)
	}
	if got := c.systems[victim].Translator().AppendBatcher().Written(int(list)); got != want {
		t.Errorf("victim written = %d after rebalance, want %d", got, want)
	}
	// Ring content recovered end to end.
	p, err := c.System(victim).Poller(int(list))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 36; i++ {
		if got := binary.BigEndian.Uint32(p.Poll()); got != uint32(i) {
			t.Fatalf("victim entry %d = %d after append resync", i, got)
		}
	}
	if st := c.HAStats(); st.AppendEntriesResynced < 18 {
		t.Errorf("append entries resynced = %d, want >= 18: %+v", st.AppendEntriesResynced, st)
	}
	// And the victim keeps appending at the right head afterwards.
	appendN(36, 40)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(p.Poll()); got != 36 {
		t.Errorf("post-resync append landed wrong: entry 36 = %d", got)
	}
}

// TestHARebalancePartialFailureRetry injects a resync failure (a
// pending snapshot with mismatched store geometry) into a Rebalance
// covering two stale collectors. The loop must attempt BOTH, aggregate
// both errors, and leave a retryable state: stale marks and pending
// snapshots intact, nothing half-cleared. Removing the poison and
// retrying must then fully converge.
func TestHARebalancePartialFailureRetry(t *testing.T) {
	c, err := NewHACluster(4, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	write := func(from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, keys/2)
	if err := c.SetDown(1); err != nil {
		t.Fatal(err)
	}
	write(keys/2, 3*keys/4)
	if err := c.SetUp(1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDown(2); err != nil {
		t.Fatal(err)
	}
	write(3*keys/4, keys)
	if err := c.SetUp(2); err != nil {
		t.Fatal(err)
	}

	poison := &snapshot.Snapshot{
		KeyWrite:    &keywrite.Config{Slots: 16, DataSize: 4},
		KeyWriteBuf: make([]byte, (&keywrite.Config{Slots: 16, DataSize: 4}).BufferSize()),
	}
	c.mu.Lock()
	c.pending = append(c.pending, poison)
	c.mu.Unlock()

	err = c.Rebalance()
	if err == nil {
		t.Fatal("rebalance with poisoned pending snapshot succeeded")
	}
	if msg := err.Error(); !strings.Contains(msg, "collector 1") || !strings.Contains(msg, "collector 2") {
		t.Errorf("error not aggregated across both stale collectors: %v", err)
	}
	c.mu.RLock()
	staleLeft, pendingLeft := len(c.stale), len(c.pending)
	c.mu.RUnlock()
	if staleLeft != 2 {
		t.Errorf("stale collectors after failed rebalance = %d, want 2 (retryable)", staleLeft)
	}
	if pendingLeft != 1 {
		t.Errorf("pending snapshots after failed rebalance = %d, want 1 (retained for retry)", pendingLeft)
	}

	// Drop the poison; the retry must fully recover both collectors.
	c.mu.Lock()
	c.pending = nil
	c.mu.Unlock()
	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	c.mu.RLock()
	staleLeft = len(c.stale)
	c.mu.RUnlock()
	if staleLeft != 0 {
		t.Errorf("stale collectors after retry = %d, want 0", staleLeft)
	}
	for i := uint64(0); i < keys; i++ {
		k := KeyFromUint64(i)
		for _, o := range c.Owners(k) {
			data, ok, err := c.System(o).LookupValue(k, 2)
			if err != nil || !ok || !bytes.Equal(data, keyData(i)) {
				t.Fatalf("key %d owner %d after retry: %v %v %v", i, o, data, ok, err)
			}
		}
	}
}

// TestHAIncrementalResyncReplaysFewer pins the epoch-window payoff: a
// rejoin that missed a small write suffix replays strictly fewer slots
// than a full snapshot replay of the same scenario, while recovering
// exactly the same data.
func TestHAIncrementalResyncReplaysFewer(t *testing.T) {
	run := func(full bool) (replayed, skipped uint64, c *HACluster) {
		t.Helper()
		c, err := NewHACluster(3, 2, haOptions())
		if err != nil {
			t.Fatal(err)
		}
		c.fullResync = full
		rep := c.Reporter(1)
		const keys = 2000
		for i := uint64(0); i < keys; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
		const victim = 1
		if err := c.SetDown(victim); err != nil {
			t.Fatal(err)
		}
		for i := uint64(keys); i < keys+50; i++ { // small missed suffix
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.SetUp(victim); err != nil {
			t.Fatal(err)
		}
		if err := c.Rebalance(); err != nil {
			t.Fatal(err)
		}
		st := c.HAStats()
		return st.ResyncSlots, st.ResyncSlotsSkipped, c
	}
	fullSlots, _, _ := run(true)
	incSlots, incSkipped, c := run(false)
	if incSlots >= fullSlots {
		t.Errorf("incremental resync replayed %d slots, full replayed %d — want strictly fewer", incSlots, fullSlots)
	}
	if incSkipped == 0 {
		t.Error("incremental resync skipped no slots")
	}
	// The replay window must cover the whole missed suffix: every key
	// written while the victim was down is served by the victim itself
	// afterwards. (A small tolerance absorbs the store's own overwrite
	// collisions, which destroy keys regardless of resync mode; byte- or
	// per-key equality with full replay would be wrong anyway, since
	// full replay also imports peers' foreign-key slots that incremental
	// rightly skips.)
	owned, recovered := 0, 0
	for i := uint64(2000); i < 2050; i++ {
		k := KeyFromUint64(i)
		mine := false
		for _, o := range c.Owners(k) {
			if o == 1 {
				mine = true
			}
		}
		if !mine {
			continue
		}
		owned++
		if data, ok, err := c.System(1).LookupValue(k, 2); err == nil && ok && bytes.Equal(data, keyData(i)) {
			recovered++
		}
	}
	if owned == 0 {
		t.Fatal("victim owns none of the missed suffix keys; scenario degenerate")
	}
	if recovered < owned-2 {
		t.Errorf("victim recovered %d/%d missed-suffix keys after incremental resync", recovered, owned)
	}
}

// TestSyncReporterStructuredZeroAllocs pins the synchronous Reporter's
// staged-report path at zero allocations per report once warm, across
// all four primitives — the ROADMAP perf follow-on that brought
// System.Reporter onto the same fast path as the engine's
// AsyncReporter.
func TestSyncReporterStructuredZeroAllocs(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	data := []byte{1, 2, 3, 4}
	for i := uint64(0); i < 5000; i++ { // warm translator buffers/caches
		if err := rep.KeyWrite(KeyFromUint64(i), data, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Increment(KeyFromUint64(i), 1, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Append(1, data); err != nil {
			t.Fatal(err)
		}
	}
	i := uint64(0)
	allocs := testing.AllocsPerRun(5000, func() {
		if err := rep.KeyWrite(KeyFromUint64(i), data, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Increment(KeyFromUint64(i), 1, 2); err != nil {
			t.Fatal(err)
		}
		if err := rep.Append(1, data); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("sync structured reporter allocated %.2f/op, want 0", allocs)
	}
}