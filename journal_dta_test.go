package dta

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"dta/internal/obs/journal"
)

// failedRuleNames extracts which rules failed a health evaluation.
func failedRuleNames(st HealthStatus) map[string]bool {
	failed := map[string]bool{}
	for _, r := range st.Rules {
		if !r.Healthy {
			failed[r.Name] = true
		}
	}
	return failed
}

// TestHAFailoverChainJournal is the end-to-end flight-recorder
// contract: a kill/restore/rebalance cycle must journal the whole
// failure arc — SetDown, WAL fence, epoch bump, SetUp, resync,
// post-resync checkpoint — under ONE causality ID, and the health
// verdict must flip unhealthy during the outage and back to healthy
// once Rebalance heals the cluster.
func TestHAFailoverChainJournal(t *testing.T) {
	c, err := NewHACluster(3, 2, haOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WithWAL(t.TempDir(), WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	he := c.HealthEval()
	if st := he.Eval(); !st.Healthy {
		t.Fatalf("fresh cluster unhealthy: %+v", st.Rules)
	}

	rep := c.Reporter(1)
	write := func(from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(0, 50)

	const victim = 1
	if err := c.SetDown(victim); err != nil {
		t.Fatal(err)
	}
	write(50, 100) // degraded: fan-outs skip the dead member
	st := he.Eval()
	if st.Healthy {
		t.Fatal("verdict healthy with a replica down")
	}
	if failed := failedRuleNames(st); !failed["down_replicas"] {
		t.Fatalf("down_replicas did not fail: %v", failed)
	}

	if err := c.SetUp(victim); err != nil {
		t.Fatal(err)
	}
	// Close the outage window: down is cleared, only the degradation it
	// cost remains in this delta.
	if failed := failedRuleNames(he.Eval()); failed["down_replicas"] {
		t.Fatalf("down_replicas still failing after SetUp: %v", failed)
	}

	if err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if st := he.Eval(); !st.Healthy {
		t.Fatalf("verdict not healthy after Rebalance: %+v", st.Rules)
	}

	// The journal must link the whole arc under the SetDown's cause.
	events, _, missed := c.Journal().Since(0, nil)
	if missed != 0 {
		t.Fatalf("ring overwrote %d events in a tiny scenario", missed)
	}
	var cause uint64
	for _, e := range events {
		if e.Type == journal.EvSetDown {
			if e.Collector != victim {
				t.Fatalf("set-down for collector %d, want %d", e.Collector, victim)
			}
			cause = e.Cause
		}
	}
	if cause == 0 {
		t.Fatal("no set-down event journaled, or it carries no cause")
	}
	var chain []journal.Type
	for _, e := range events {
		if e.Cause == cause {
			chain = append(chain, e.Type)
		}
	}
	want := []journal.Type{
		journal.EvSetDown, journal.EvWALFence, journal.EvEpochBump,
		journal.EvSetUp, journal.EvResyncStart, journal.EvResyncEnd,
		journal.EvCheckpoint,
	}
	if len(chain) != len(want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain[%d] = %v, want %v (full chain %v)", i, chain[i], want[i], chain)
		}
	}

	// The full observability surface serves both new endpoints.
	mux := c.ObsMux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	var payload struct {
		Last   uint64          `json:"last"`
		Events []JournalRecord `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil || rec.Code != 200 {
		t.Fatalf("/debug/events: code %d err %v", rec.Code, err)
	}
	if payload.Last == 0 || len(payload.Events) == 0 {
		t.Fatalf("/debug/events empty after a failover: %+v", payload)
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var hst HealthStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &hst); err != nil || rec.Code != 200 || !hst.Healthy {
		t.Fatalf("/healthz after heal: code %d healthy %v err %v", rec.Code, hst.Healthy, err)
	}
}

// TestRecoveryDumpsJournal pins the post-mortem artifact: a crash
// recovery leaves events.jsonl in the WAL directory, its records
// forming one causal chain from recovery-start to the replay extent.
func TestRecoveryDumpsJournal(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WithWAL(dir, WALPolicy{}); err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	for i := uint64(0); i < 50; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), keyData(i), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Recover(dir); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journal.DumpFileName)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("recovery left no journal dump: %v", err)
	}
	recs, err := journal.ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	var start, extent *JournalRecord
	for i := range recs {
		switch recs[i].Type {
		case "recovery-start":
			start = &recs[i]
		case "replay-extent":
			extent = &recs[i]
		}
	}
	if start == nil || extent == nil {
		t.Fatalf("dump missing the recovery chain: %+v", recs)
	}
	if start.Cause == 0 || start.Cause != extent.Cause {
		t.Fatalf("recovery events not causally linked: start %d extent %d", start.Cause, extent.Cause)
	}
	if extent.Args[0] == 0 {
		t.Fatalf("replay extent reports no replayed LSN: %+v", extent)
	}
}

// TestJournalDisabledTelemetry pins the off switch: no journal, a
// healthy-by-definition evaluator, and still well-formed endpoints.
func TestJournalDisabledTelemetry(t *testing.T) {
	o := fullOptions()
	o.DisableTelemetry = true
	sys, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Journal() != nil {
		t.Fatal("DisableTelemetry still built a journal")
	}
	if st := sys.HealthEval().Eval(); !st.Healthy {
		t.Fatalf("telemetry-off evaluator unhealthy: %+v", st)
	}
	mux := sys.ObsMux()
	for _, path := range []string{"/debug/events", "/healthz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s served %d with telemetry off", path, rec.Code)
		}
		var v map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("%s not JSON: %v", path, err)
		}
	}
}
