package dta

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"dta/internal/ha"
	"dta/internal/reporter"
	"dta/internal/snapshot"
	"dta/internal/wire"
)

// HAStats counts replication degradation events (degraded/lost writes,
// failover/failed queries, resyncs). See internal/ha for field docs.
type HAStats = ha.Stats

// ErrAllReplicasDown is returned by HACluster queries when every owner
// of the key is marked down.
var ErrAllReplicasDown = errors.New("dta: all replicas for key are down")

// HACluster is a replicated, fault-tolerant multi-collector deployment:
// the high-availability layer over the same collectors a Cluster shards
// across (§7, extended). Three mechanisms distinguish it from Cluster's
// static CRC-mod-N partitioning:
//
//   - Replicated ownership. A rendezvous-hash ring maps every key (and
//     Append list) to R replica collectors; reporters fan each report
//     out to all live owners, and membership change moves only the keys
//     the joining/leaving collector gains or loses.
//   - Failure injection and failover. SetDown/SetUp flip a lock-free
//     per-collector health flag mid-run. Writers skip down replicas
//     (counting degraded and lost writes instead of failing — reports
//     are best-effort, as in the paper's rate limiter), and queries
//     fall back across surviving replicas with a plurality merge,
//     counting degraded and failover queries.
//   - Recovery and live resharding. A rejoining (SetUp) or newly added
//     (AddCollector) collector is marked stale — queries use it only as
//     a last resort — until Rebalance drains in-flight reports and
//     replays peer snapshots into it (internal/ha.Resync), after which
//     it serves its owned slice like any other replica.
//
// Writers and queries are safe concurrently with SetDown/SetUp.
// Membership changes (AddCollector, Decommission) and Rebalance require
// quiesced producers: Flush any AsyncReporters, then call them.
type HACluster struct {
	opts   Options
	r      int
	ring   *ha.Ring
	health *ha.Health

	// mu guards systems growth, the stale set and pending snapshots;
	// the write lock makes Rebalance exclusive with queries.
	mu      sync.RWMutex
	systems []*System
	stale   map[int]bool
	// pending holds captures of decommissioned collectors whose keys
	// must still be replayed into their new owners at the next Rebalance.
	pending []*snapshot.Snapshot
	eng     *Engine
}

// NewHACluster builds n identical collectors replicating every key to
// r of them. r = 1 reproduces Cluster's single-owner behaviour (but
// over the rendezvous ring, so membership can still change); r ≥ 2
// survives collector failure without losing acknowledged reports.
func NewHACluster(n, r int, opts Options) (*HACluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dta: cluster size %d < 1", n)
	}
	if n > ha.MaxMembers {
		return nil, fmt.Errorf("dta: cluster size %d exceeds %d", n, ha.MaxMembers)
	}
	if r < 1 || r > ha.MaxReplicas {
		return nil, fmt.Errorf("dta: replication factor %d out of range [1,%d]", r, ha.MaxReplicas)
	}
	if r > n {
		return nil, fmt.Errorf("dta: replication factor %d exceeds cluster size %d", r, n)
	}
	c := &HACluster{
		opts:   opts,
		r:      r,
		ring:   ha.NewRing(n),
		health: ha.NewHealth(),
		stale:  make(map[int]bool),
	}
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)
		sys, err := New(o)
		if err != nil {
			return nil, err
		}
		c.systems = append(c.systems, sys)
	}
	return c, nil
}

// Size returns the number of collectors ever attached (including
// decommissioned ones, whose Systems stay inspectable).
func (c *HACluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.systems)
}

// Replicas returns the replication factor R.
func (c *HACluster) Replicas() int { return c.r }

// System returns collector i (direct inspection, Append polling).
func (c *HACluster) System(i int) *System {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.systems[i]
}

// Owners returns the R ring owners of key, primary first.
func (c *HACluster) Owners(key Key) []int {
	return c.ring.Owners(key[:], c.r, nil)
}

// OwnersOfList returns the R ring owners of an Append list, primary
// first.
func (c *HACluster) OwnersOfList(list uint32) []int {
	return c.ring.OwnersOfList(list, c.r, nil)
}

// owners is the allocation-free variant for hot paths.
func (c *HACluster) owners(key []byte, out []int) []int {
	return c.ring.Owners(key, c.r, out)
}

// HAStats snapshots the degradation counters.
func (c *HACluster) HAStats() HAStats { return c.health.Snapshot() }

// SetDown injects a failure: collector i stops receiving writes and
// answering queries until SetUp. Safe mid-run.
func (c *HACluster) SetDown(i int) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	return c.health.SetDown(i)
}

// SetUp revives collector i. It comes back stale — it missed every
// write while down, so queries prefer its peers — until Rebalance
// resynchronises it.
func (c *HACluster) SetUp(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if !c.health.IsDown(i) {
		return nil
	}
	if err := c.health.SetUp(i); err != nil {
		return err
	}
	c.stale[i] = true
	return nil
}

// AddCollector grows the cluster by one collector and returns its
// index. The rendezvous ring reassigns only the keys the newcomer now
// owns; it starts stale and serves them after the next Rebalance.
// Requires no attached engine (engines have a fixed shard set: Close
// it, add, then attach a new one) and quiesced producers.
func (c *HACluster) AddCollector() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return 0, errors.New("dta: cannot add collector while an engine is attached (Close it first)")
	}
	id := len(c.systems)
	if id >= ha.MaxMembers {
		return 0, fmt.Errorf("dta: cluster size limit %d reached", ha.MaxMembers)
	}
	o := c.opts
	o.Seed = c.opts.Seed + int64(id)
	sys, err := New(o)
	if err != nil {
		return 0, err
	}
	if err := c.ring.Add(id); err != nil {
		return 0, err
	}
	c.systems = append(c.systems, sys)
	c.stale[id] = true
	return id, nil
}

// Decommission shrinks the cluster: collector i leaves the ring and its
// keys move to their new owners. Its data is captured immediately and
// replayed into the survivors at the next Rebalance; until then every
// remaining collector is stale for the moved keys, so all are marked
// stale. Same quiescence requirements as AddCollector.
func (c *HACluster) Decommission(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return errors.New("dta: cannot decommission while an engine is attached (Close it first)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if err := c.ring.Remove(i); err != nil {
		return err
	}
	if !c.health.IsDown(i) {
		if err := c.systems[i].Flush(); err != nil {
			return err
		}
		c.pending = append(c.pending, snapshot.Capture(c.systems[i].Host()))
	}
	delete(c.stale, i)
	for _, id := range c.ring.Members() {
		if !c.health.IsDown(id) {
			c.stale[id] = true
		}
	}
	return nil
}

// Rebalance is the resharding barrier: it drains the attached engine
// (or flushes every live collector when reporting synchronously), then
// replays peer snapshots into every live stale collector and clears its
// stale mark. Afterwards rejoined, added and survivor collectors all
// serve their owned slices at full fidelity. When every live collector
// is stale (e.g. after decommissioning one while it was down), the
// survivors cross-sync from each other's snapshots, so keys that moved
// owner regain their full replica count from whichever peer still holds
// them.
//
// Producers must be quiesced first (Flush AsyncReporters, stop sync
// reporters): Rebalance copies store memory and must not race ingest.
func (c *HACluster) Rebalance() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		if err := c.eng.Drain(); err != nil {
			return err
		}
	} else {
		for _, id := range c.ring.Members() {
			if c.health.IsDown(id) {
				continue
			}
			if err := c.systems[id].Flush(); err != nil {
				return err
			}
		}
	}
	if len(c.stale) == 0 && len(c.pending) == 0 {
		return nil
	}
	// Capture every live ring member once, before any resync, so all
	// replays see pre-rebalance state. Stale members are peers too:
	// when everyone is stale (Decommission marks all survivors), they
	// cross-sync from each other — each survivor holds data its peers
	// are missing — rather than skipping resync for want of a fresh
	// peer. Stale captures are merely older, so they replay BEFORE
	// pending and fresh ones: later merges win slot conflicts, keeping
	// fresher values on top.
	var stalePeers, freshPeers []int
	for _, id := range c.ring.Members() {
		if c.health.IsDown(id) {
			continue
		}
		if c.stale[id] {
			stalePeers = append(stalePeers, id)
		} else {
			freshPeers = append(freshPeers, id)
		}
	}
	caps := make(map[int]*snapshot.Snapshot, len(stalePeers)+len(freshPeers))
	for _, id := range append(append([]int(nil), stalePeers...), freshPeers...) {
		caps[id] = snapshot.Capture(c.systems[id].Host())
	}
	for id := range c.stale {
		if c.health.IsDown(id) {
			continue // still down: stays stale for its next rejoin
		}
		var snaps []*snapshot.Snapshot
		for _, p := range stalePeers {
			if p != id {
				snaps = append(snaps, caps[p])
			}
		}
		snaps = append(snaps, c.pending...)
		for _, p := range freshPeers {
			snaps = append(snaps, caps[p])
		}
		if len(snaps) > 0 {
			if _, err := ha.Resync(c.systems[id].Host(), snaps); err != nil {
				return err
			}
			c.health.RecordResync()
		}
		delete(c.stale, id)
	}
	c.pending = nil
	return nil
}

// Reporter attaches a synchronous reporter switch that fans every
// report out to all live owners. Like ClusterReporter it is not
// goroutine-safe; create one per producer goroutine.
func (c *HACluster) Reporter(switchID uint32) *HAReporter {
	r := &HAReporter{hac: c, switchID: switchID}
	c.mu.RLock()
	for _, sys := range c.systems {
		r.reps = append(r.reps, r.newRep(sys))
	}
	c.mu.RUnlock()
	return r
}

// Engine attaches an async ingest engine with one shard per collector;
// its AsyncReporters fan every report out to all live owners. Rebalance
// uses the engine's Drain as its barrier.
func (c *HACluster) Engine(cfg EngineConfig) (*Engine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return nil, errors.New("dta: engine already attached")
	}
	e, err := newEngine(c.systems, nil, c, cfg)
	if err != nil {
		return nil, err
	}
	c.eng = e
	return e, nil
}

// lookupState tracks one failover query across replicas.
type lookupState struct {
	degraded        bool // some owner was down or stale
	queried         int  // live replicas consulted
	primaryAnswered bool
}

func (c *HACluster) record(st *lookupState) {
	skipped := 0
	if st.degraded {
		skipped = 1
	}
	c.health.RecordQuery(skipped, st.queried > 0, st.primaryAnswered)
}

// LookupValue queries the Key-Write stores of key's owners: live fresh
// replicas are consulted and their answers plurality-merged (ties
// favour the primary); stale replicas are a last resort. Returns
// ErrAllReplicasDown when no owner is live.
func (c *HACluster) LookupValue(key Key, n int) ([]byte, bool, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st lookupState
	var answers [][]byte
	for pass := 0; pass < 2; pass++ {
		useStale := pass == 1
		if useStale && len(answers) > 0 {
			break
		}
		for oi, o := range owners {
			if c.health.IsDown(o) || c.stale[o] != useStale {
				if !useStale {
					st.degraded = st.degraded || c.health.IsDown(o) || c.stale[o]
				}
				continue
			}
			st.queried++
			data, ok, err := c.systems[o].LookupValue(key, n)
			if err != nil {
				return nil, false, err
			}
			if ok {
				answers = append(answers, data)
				if oi == 0 {
					st.primaryAnswered = true
				}
			}
		}
	}
	c.record(&st)
	if st.queried == 0 {
		return nil, false, ErrAllReplicasDown
	}
	best, votes := -1, 0
	for i := range answers {
		v := 1
		for j := i + 1; j < len(answers); j++ {
			if bytes.Equal(answers[i], answers[j]) {
				v++
			}
		}
		if v > votes {
			best, votes = i, v
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	return answers[best], true, nil
}

// LookupPath queries the Postcarding stores of key's owners, failing
// over in owner order (fresh live replicas first, then stale ones).
func (c *HACluster) LookupPath(key Key, n int) ([]uint32, bool, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st lookupState
	defer func() { c.record(&st) }()
	for pass := 0; pass < 2; pass++ {
		useStale := pass == 1
		for oi, o := range owners {
			if c.health.IsDown(o) || c.stale[o] != useStale {
				if !useStale {
					st.degraded = st.degraded || c.health.IsDown(o) || c.stale[o]
				}
				continue
			}
			st.queried++
			values, ok, err := c.systems[o].LookupPath(key, n)
			if err != nil {
				return nil, false, err
			}
			if ok {
				st.primaryAnswered = oi == 0
				return values, true, nil
			}
		}
	}
	if st.queried == 0 {
		return nil, false, ErrAllReplicasDown
	}
	return nil, false, nil
}

// LookupCount returns the count-min estimate for key: the minimum over
// its live fresh owners (each owner received every increment for the
// key, so the cross-replica minimum keeps the never-undercount
// guarantee while discarding single-replica collision inflation).
// Stale replicas undercount and are consulted only if no fresh owner
// is live.
func (c *HACluster) LookupCount(key Key, n int) (uint64, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	var st lookupState
	defer func() { c.record(&st) }()
	for pass := 0; pass < 2; pass++ {
		useStale := pass == 1
		var min uint64
		for oi, o := range owners {
			if c.health.IsDown(o) || c.stale[o] != useStale {
				if !useStale {
					st.degraded = st.degraded || c.health.IsDown(o) || c.stale[o]
				}
				continue
			}
			count, err := c.systems[o].LookupCount(key, n)
			if err != nil {
				return 0, err
			}
			if st.queried == 0 || count < min {
				min = count
			}
			st.queried++
			if oi == 0 {
				st.primaryAnswered = true
			}
		}
		if st.queried > 0 {
			return min, nil
		}
	}
	return 0, ErrAllReplicasDown
}

// Poller returns an Append reader over the first live owner of list.
// Call Flush (or drain the engine) first to push out partial batches.
func (c *HACluster) Poller(list uint32) (*AppendPoller, error) {
	var ob [ha.MaxReplicas]int
	owners := c.ring.OwnersOfList(list, c.r, ob[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	for pass := 0; pass < 2; pass++ {
		useStale := pass == 1
		for _, o := range owners {
			if c.health.IsDown(o) || c.stale[o] != useStale {
				continue
			}
			return c.systems[o].Poller(int(list))
		}
	}
	return nil, ErrAllReplicasDown
}

// Flush flushes every live collector's translator state. Only for
// synchronous reporting; with an engine attached use Drain instead.
func (c *HACluster) Flush() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, id := range c.ring.Members() {
		if c.health.IsDown(id) {
			continue
		}
		if err := c.systems[id].Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats sums counters across all collectors (including down ones:
// their pre-failure work still happened).
func (c *HACluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return aggregateStats(c.systems)
}

// HAReporter is a reporter switch whose reports fan out to every live
// owner of the key (or Append list). Down owners are skipped and
// counted — a report is acknowledged as long as one owner is live, and
// counted as lost otherwise (best-effort, never an error).
type HAReporter struct {
	hac      *HACluster
	switchID uint32
	reps     []*Reporter
}

// newRep builds a per-collector reporter handle directly (bypassing
// System.Reporter, whose bookkeeping append is not goroutine-safe
// across concurrently created HAReporters).
func (r *HAReporter) newRep(sys *System) *Reporter {
	return &Reporter{
		sys: sys,
		rep: reporter.New(reporterConfig(r.switchID)),
		buf: make([]byte, wire.MaxReportLen),
	}
}

// rep returns the handle for collector o, growing the slice after
// AddCollector (which requires quiesced producers, so growth never
// races reporting).
func (r *HAReporter) rep(o int) *Reporter {
	for len(r.reps) <= o {
		r.hac.mu.RLock()
		sys := r.hac.systems[len(r.reps)]
		r.hac.mu.RUnlock()
		r.reps = append(r.reps, r.newRep(sys))
	}
	return r.reps[o]
}

func (r *HAReporter) fanKey(key Key, write func(rep *Reporter) error) error {
	var ob [ha.MaxReplicas]int
	owners := r.hac.owners(key[:], ob[:0])
	return r.fan(owners, write)
}

func (r *HAReporter) fan(owners []int, write func(rep *Reporter) error) error {
	live := 0
	for _, o := range owners {
		if r.hac.health.IsDown(o) {
			continue
		}
		if err := write(r.rep(o)); err != nil {
			return err
		}
		live++
	}
	r.hac.health.RecordWrite(live, len(owners))
	return nil
}

// KeyWrite stores data under key on every live owner.
func (r *HAReporter) KeyWrite(key Key, data []byte, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.KeyWrite(key, data, n) })
}

// KeyWriteImmediate is KeyWrite with the immediate flag set.
func (r *HAReporter) KeyWriteImmediate(key Key, data []byte, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.KeyWriteImmediate(key, data, n) })
}

// Increment adds delta on every live owner.
func (r *HAReporter) Increment(key Key, delta uint64, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.Increment(key, delta, n) })
}

// Postcard reports a hop observation to every live owner.
func (r *HAReporter) Postcard(key Key, hop, pathLen int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.Postcard(key, hop, pathLen) })
}

// PostcardValue reports an arbitrary per-hop value to every live owner.
func (r *HAReporter) PostcardValue(key Key, hop, pathLen int, value uint32) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.PostcardValue(key, hop, pathLen, value) })
}

// Append adds data to list on every live owner of the list.
func (r *HAReporter) Append(list uint32, data []byte) error {
	var ob [ha.MaxReplicas]int
	owners := r.hac.ring.OwnersOfList(list, r.hac.r, ob[:0])
	return r.fan(owners, func(rep *Reporter) error { return rep.Append(list, data) })
}
