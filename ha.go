package dta

import (
	"bytes"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"sync"
	"time"

	"math/rand"

	"dta/internal/chaos"
	"dta/internal/core/keyincrement"
	"dta/internal/ha"
	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
	"dta/internal/snapshot"
	"dta/internal/wire"
)

// HAStats counts replication degradation events (degraded/lost writes,
// failover/failed queries, resyncs). See internal/ha for field docs.
type HAStats = ha.Stats

// ErrAllReplicasDown is returned by HACluster queries when every owner
// of the key is marked down.
var ErrAllReplicasDown = errors.New("dta: all replicas for key are down")

// HACluster is a replicated, fault-tolerant multi-collector deployment:
// the high-availability layer over the same collectors a Cluster shards
// across (§7, extended). Three mechanisms distinguish it from Cluster's
// static CRC-mod-N partitioning:
//
//   - Replicated ownership. A rendezvous-hash ring maps every key (and
//     Append list) to R replica collectors; reporters fan each report
//     out to all live owners, and membership change moves only the keys
//     the joining/leaving collector gains or loses.
//   - Failure injection and failover. SetDown/SetUp flip a lock-free
//     per-collector health flag mid-run. Writers skip down replicas
//     (counting degraded and lost writes instead of failing — reports
//     are best-effort, as in the paper's rate limiter), and queries
//     fall back across surviving replicas with a plurality merge,
//     counting degraded and failover queries.
//   - Recovery and live resharding. A rejoining (SetUp) or newly added
//     (AddCollector) collector is marked stale — queries prefer its
//     peers — until Rebalance drains in-flight reports and replays peer
//     snapshots into it (internal/ha.Resync), after which it serves its
//     owned slice like any other replica. Rebalance is incremental: a
//     dirty tracker tags written store blocks with a staleness epoch
//     (bumped by SetDown/AddCollector/Decommission), so a rejoining
//     collector replays only the blocks written since it went stale,
//     and Append rings replay exactly the missed suffix via cumulative
//     head counts.
//   - Read-repair. Queries consult every live owner; when replicas
//     disagree, the plurality winner is written back to the divergent
//     replicas on the spot (counted in HAStats.ReadRepairs), so
//     divergence observed by a failover query is healed by that query
//     instead of waiting for the next Rebalance.
//
// Writers and queries are safe concurrently with SetDown/SetUp.
// Membership changes (AddCollector, Decommission) and Rebalance require
// quiesced producers: Flush any AsyncReporters, then call them.
type HACluster struct {
	opts   Options
	r      int
	ring   *ha.Ring
	health *ha.Health
	// reg is the shared telemetry registry: members register under
	// collector="i" scopes, the health view's dta_ha_* counters at the
	// cluster root (nil with DisableTelemetry).
	reg *obs.Registry
	// jr is the shared flight-recorder journal (nil with
	// DisableTelemetry); causeOf carries the causality ID minted by a
	// collector's SetDown (or AddCollector) forward through SetUp,
	// Rebalance's resync and the post-resync checkpoint, so the whole
	// failure→recovery arc renders as one chain. Guarded by mu.
	jr      *journal.Journal
	causeOf map[int]uint64
	// trc is the shared data-plane trace pipeline (nil with
	// DisableTelemetry); deferResync opens a resync window on it so
	// traces completing while a retry backoff is pending are
	// tail-retained. See internal/obs/trace.
	trc *trace.Tracer
	// rrGate rate-limits read-repair events: a verification sweep can
	// repair thousands of slots, and one representative event per gap
	// (carrying the cumulative count) must not evict the failover chain.
	rrGate journal.Gate
	// health lazily builds the default /healthz evaluator over reg.
	healthOnce sync.Once
	healthEval *obs.HealthEvaluator

	// mu guards systems growth, the stale set and pending snapshots;
	// the write lock makes Rebalance (and read-repair store writes)
	// exclusive with queries.
	mu      sync.RWMutex
	systems []*System
	// trackers[i] tags collector i's written store blocks with the
	// epoch current at write time (hooked into its RDMA emit path).
	trackers []*ha.Tracker
	// stale maps a live-but-unsynchronised collector to the epoch it
	// went stale at: Rebalance replays only peer blocks written at or
	// after that epoch. 0 means "missed everything, replay in full"
	// (newly added collectors, decommission survivors).
	stale map[int]uint64
	// downAt remembers the epoch a down collector failed at, so SetUp
	// can open its staleness window there.
	downAt map[int]uint64
	// pending holds captures of decommissioned collectors whose keys
	// must still be replayed into their new owners at the next Rebalance.
	pending []*snapshot.Snapshot
	eng     *Engine
	// walDir/walPol, when set (WithWAL), give every collector a write-
	// ahead log under walDir/collector-%03d and enable log-shipping
	// resync (see durability.go).
	walDir string
	walPol WALPolicy
	// walMark[target][peer] is the peer log LSN recorded when target
	// went stale: every write target missed was logged by its live peers
	// ABOVE this mark (the mark is snapshotted before the down flag
	// flips, mirroring the epoch fence), so Rebalance replays exactly
	// the peers' log suffixes. An entry with an empty inner map (a newly
	// added collector) replays peer logs from the beginning; a target
	// with no entry at all resyncs from snapshots.
	walMark map[int]map[int]uint64
	// fenceMu makes each replicated fan-out atomic with respect to the
	// watermark fence: writers (HAReporter.fan, the engine's haFan
	// paths, and AsyncReporter chunk flushes) hold the read side for
	// one whole fan-out or flush, and fenceForStale holds the write
	// side while it drains queued ingest and snapshots WAL marks. With
	// coupled chunk flushing (Submitter.SetCoupled) this means every
	// replicated op is wholly staged, wholly queued, or wholly logged
	// when marks are read — no op can be logged on one owner below its
	// mark but on another above it, which is exactly the asymmetry
	// that would corrupt the appendExclusion multiset diff (an
	// excluded op missing from the replay stream silently eats a
	// later same-payload op the target never saw). Lock order:
	// fenceMu strictly before mu, everywhere.
	fenceMu sync.RWMutex
	// walSelf[target] is the target's OWN log LSN at the same instant:
	// everything the target logged above it — in-flight ops applied
	// while flagged down, and all post-restore fan-out — it already
	// holds, so Rebalance multiset-subtracts those entries from the
	// peers' replay streams instead of appending them twice.
	walSelf map[int]uint64
	// fullResync forces Rebalance to ignore staleness windows and replay
	// whole peer snapshots (the pre-incremental behaviour); benchmarks
	// use it to measure what epoch tracking saves.
	fullResync bool
	// chaos, when enabled (EnableChaos), is the deterministic fault-
	// injection plane: per-link partitions and per-collector disk faults.
	// Installed before any traffic (like WithWAL), so the plain field
	// reads on the fan-out hot path never race.
	chaos *chaos.Plane
	// retries holds per-target resync retry state under the rebalance
	// retry/backoff contract; retryRNG jitters the backoff (seeded, so a
	// chaos run reproduces from its logged seed). Guarded by mu.
	retries  map[int]*resyncRetry
	retryRNG *rand.Rand
	// autoRebalance opts into rebalancing after a chaos heal; healArmed
	// records that a heal happened since the last successful rebalance.
	// Guarded by mu.
	autoRebalance bool
	healArmed     bool
}

// resyncRetry is one stale target's retry/backoff state: attempts made
// and the obs.Nanotime deadline before the next one.
type resyncRetry struct {
	attempts int
	nextAt   int64
}

// NewHACluster builds n identical collectors replicating every key to
// r of them. r = 1 reproduces Cluster's single-owner behaviour (but
// over the rendezvous ring, so membership can still change); r ≥ 2
// survives collector failure without losing acknowledged reports.
func NewHACluster(n, r int, opts Options) (*HACluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dta: cluster size %d < 1", n)
	}
	if n > ha.MaxMembers {
		return nil, fmt.Errorf("dta: cluster size %d exceeds %d", n, ha.MaxMembers)
	}
	if r < 1 || r > ha.MaxReplicas {
		return nil, fmt.Errorf("dta: replication factor %d out of range [1,%d]", r, ha.MaxReplicas)
	}
	if r > n {
		return nil, fmt.Errorf("dta: replication factor %d exceeds cluster size %d", r, n)
	}
	var reg *obs.Registry
	var jr *journal.Journal
	var trc *trace.Tracer
	if !opts.DisableTelemetry {
		reg = obs.NewRegistry()
		jr = newJournal(opts)
		trc = trace.New(trace.Config{})
	}
	c := &HACluster{
		opts:    opts,
		r:       r,
		ring:    ha.NewRing(n),
		health:  ha.NewHealthScoped(reg.Scope()),
		reg:     reg,
		jr:      jr,
		trc:     trc,
		causeOf: make(map[int]uint64),
		stale:   make(map[int]uint64),
		downAt:  make(map[int]uint64),
		walMark: make(map[int]map[int]uint64),
		walSelf: make(map[int]uint64),
	}
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)
		sys, err := c.newMember(i, o)
		if err != nil {
			return nil, err
		}
		c.attach(sys)
	}
	return c, nil
}

// newMember builds collector id's System registered under the cluster's
// shared telemetry registry.
func (c *HACluster) newMember(id int, o Options) (*System, error) {
	return newSystem(o, c.reg, c.reg.Scope(obs.L("collector", strconv.Itoa(id))), c.jr, c.trc, int16(id))
}

// emit publishes one HA-component flight-recorder event for collector i
// (-1 = cluster-wide). Nil-safe: with telemetry off it is one branch.
func (c *HACluster) emit(i int, typ journal.Type, sev journal.Severity, cause, a1, a2, a3 uint64) {
	journal.Emitter{J: c.jr, Comp: journal.CompHA, Collector: int16(i)}.Emit(typ, sev, cause, a1, a2, a3)
}

// readRepairEventGap spaces read-repair journal events: a verification
// sweep over a divergent store repairs per query, and one representative
// event per gap (with the cumulative count) is plenty.
const readRepairEventGap = 100 * time.Millisecond

// noteReadRepair publishes a rate-gated read-repair event: repaired
// replicas this query in Arg1, the cumulative count in Arg2.
func (c *HACluster) noteReadRepair(repaired int) {
	if repaired == 0 || c.jr == nil || !c.rrGate.Allow(readRepairEventGap) {
		return
	}
	c.emit(-1, journal.EvReadRepair, journal.SevInfo, 0, uint64(repaired), c.health.Snapshot().ReadRepairs, 0)
}

// attach registers a collector system and hooks its RDMA emit path into
// a fresh dirty tracker, so every write is epoch-tagged for incremental
// resync. Called before the system sees any traffic.
func (c *HACluster) attach(sys *System) int {
	tk := ha.NewTracker(c.health, sys.Host().Listener().Regions)
	sys.markDirty = tk.MarkPacket
	c.systems = append(c.systems, sys)
	c.trackers = append(c.trackers, tk)
	return len(c.systems) - 1
}

// capture snapshots collector id's stores together with the replication
// metadata resync needs: Append head counts (ring-suffix replay) and
// dirty-epoch tags (incremental replay).
func (c *HACluster) capture(id int) *snapshot.Snapshot {
	s := snapshot.Capture(c.systems[id].Host())
	if b := c.systems[id].Translator().AppendBatcher(); b != nil {
		s.AppendHeads = b.WrittenCounts(nil)
	}
	if tk := c.trackers[id]; tk != nil {
		s.KeyWriteTags = tk.Tags("keywrite")
		s.KeyIncTags = tk.Tags("keyincrement")
		s.PostcardTags = tk.Tags("postcarding")
		s.TagBlockBytes = ha.TagBlockBytes
	}
	return s
}

// Size returns the number of collectors ever attached (including
// decommissioned ones, whose Systems stay inspectable).
func (c *HACluster) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.systems)
}

// Replicas returns the replication factor R.
func (c *HACluster) Replicas() int { return c.r }

// System returns collector i (direct inspection, Append polling).
func (c *HACluster) System(i int) *System {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.systems[i]
}

// Owners returns the R ring owners of key, primary first.
func (c *HACluster) Owners(key Key) []int {
	return c.ring.Owners(key[:], c.r, nil)
}

// OwnersOfList returns the R ring owners of an Append list, primary
// first.
func (c *HACluster) OwnersOfList(list uint32) []int {
	return c.ring.OwnersOfList(list, c.r, nil)
}

// owners is the allocation-free variant for hot paths.
func (c *HACluster) owners(key []byte, out []int) []int {
	return c.ring.Owners(key, c.r, out)
}

// HAStats snapshots the degradation counters.
func (c *HACluster) HAStats() HAStats { return c.health.Snapshot() }

// SetDown injects a failure: collector i stops receiving writes and
// answering queries until SetUp. Safe mid-run. The staleness epoch is
// bumped BEFORE the down flag flips, and the bumped epoch remembered as
// the rejoin replay window: a fan-out writer decides its whole skip set
// before its first emit (see HAReporter.fan), so if it skips i it
// observed the flag — and therefore the bump — before tagging any
// replica's blocks, putting every one of its marks at or after the
// window. No skipped write can escape the replay.
func (c *HACluster) SetDown(i int) error {
	c.fenceMu.Lock()
	defer c.fenceMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if c.health.IsDown(i) {
		return nil
	}
	// One causality ID spans the whole failure→recovery arc: SetDown and
	// its fence here, SetUp, the Rebalance resync that heals i, and the
	// post-resync checkpoint all chain under it (see causeOf).
	cause := c.jr.NewCause()
	c.causeOf[i] = cause
	c.emit(i, journal.EvSetDown, journal.SevWarn, cause, c.health.Epoch(), 0, 0)
	c.fenceForStale(i, cause)
	c.downAt[i] = c.health.BumpEpoch()
	c.emit(i, journal.EvEpochBump, journal.SevInfo, cause, c.downAt[i], 0, 0)
	return c.health.SetDown(i)
}

// fenceForStale snapshots log-shipping watermarks for collector i, the
// moment before its unreachability flag (down or partitioned) flips.
//
// The marks are taken BEFORE the flag (the same fence ordering as the
// epoch bump): a fan-out that skips i observed the flag, so its peer
// submissions — and therefore their log records — land strictly above
// these marks. Nothing i misses can hide below its replay window;
// records at or below the marks that i also holds are merely replayed
// redundantly (append replay tolerates duplicates within one ring lap).
// A flapping collector keeps its oldest marks, like its oldest epoch
// window.
//
// Two exclusions keep the marks honest:
//   - A collector that is ALREADY stale without marks (reshard via
//     Decommission/SetCollectorWeight voided them) must keep the
//     snapshot resync path: lists moved to it carry history from
//     long before any mark taken now, so fresh marks would hide it.
//   - Down peers are still marked (not skipped): their logs are
//     frozen while down, and the suffix i misses — including what a
//     currently-down peer logs after ITS later revival — sits above
//     today's frozen position. Omitting the entry would default the
//     watermark to zero and replay that peer's entire log,
//     duplicating all shared history far beyond one ring lap.
func (c *HACluster) fenceForStale(i int, cause uint64) {
	if c.walDir == "" {
		return
	}
	_, hasMarks := c.walMark[i]
	_, wasStale := c.stale[i]
	if hasMarks || wasStale {
		return
	}
	// Quiesce queued ingest before reading any mark. The caller holds
	// fenceMu's write side, so no fan-out is in flight and none can
	// start; draining the engine then forces every already-queued op
	// through the shard workers onto its owners' logs. After this,
	// every replicated op is either logged on ALL its owners (below
	// all marks) or still producer-staged on NONE (above all marks) —
	// the symmetry the exclusion multiset diff needs to be exact. A
	// drain error is deliberately ignored: a broken engine only
	// widens the replay window, never narrows it.
	if c.eng != nil && !c.eng.Closed() {
		_ = c.eng.Drain()
	}
	// The target's own position first: anything it logs from here on
	// (in-flight ops applied while flagged down, later post-restore
	// fan-out) it provably holds, and Rebalance subtracts those entries
	// from the peers' replay streams.
	if w := c.systems[i].wal; w != nil {
		c.walSelf[i] = w.LastLSN()
	}
	m := make(map[int]uint64)
	for _, p := range c.ring.Members() {
		if p == i {
			continue
		}
		if w := c.systems[p].wal; w != nil {
			m[p] = w.LastLSN()
		}
	}
	c.walMark[i] = m
	c.emit(i, journal.EvWALFence, journal.SevInfo, cause, c.walSelf[i], uint64(len(m)), 0)
}

// SetUp revives collector i. It comes back stale — it missed every
// write while down, so queries prefer its peers — until Rebalance
// resynchronises it (replaying only what was written since it failed).
func (c *HACluster) SetUp(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if !c.health.IsDown(i) {
		return nil
	}
	if err := c.health.SetUp(i); err != nil {
		return err
	}
	since := c.downAt[i] // 0 (replay everything) when the failure epoch is unknown
	delete(c.downAt, i)
	// A collector that flapped without an intervening Rebalance keeps
	// its oldest window: it still misses writes from the first failure.
	if cur, ok := c.stale[i]; !ok || since < cur {
		c.stale[i] = since
	}
	c.emit(i, journal.EvSetUp, journal.SevInfo, c.causeOf[i], c.stale[i], 0, 0)
	return nil
}

// EnableChaos attaches a deterministic fault-injection plane to the
// cluster: per-link partitions (PartitionReporter, PartitionPeers),
// per-collector disk faults (SlowDisk, and WrapFile wrapping of every
// WAL segment) and clock skew (SetClockSkew). Call it before WithWAL —
// segment files are wrapped at open — and before any traffic, like
// WithWAL itself. Idempotent; returns the plane.
func (c *HACluster) EnableChaos(seed int64) (*chaos.Plane, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos != nil {
		return c.chaos, nil
	}
	if c.walDir != "" {
		return nil, errors.New("dta: EnableChaos must run before WithWAL (WAL segment files are fault-wrapped at open)")
	}
	c.chaos = chaos.NewPlane(seed)
	c.retryRNG = rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	return c.chaos, nil
}

// Chaos returns the attached fault plane (nil when chaos is off).
func (c *HACluster) Chaos() *chaos.Plane {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.chaos
}

// ChaosActive reports whether any chaos link (reporter or peer) is
// currently cut. Nil-safe with chaos off.
func (c *HACluster) ChaosActive() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.chaos.AnyCut()
}

// unreachable reports whether fan-out writers must skip collector o:
// marked down, or its reporter→collector link is cut by the chaos
// plane. Hot path — one atomic load, plus a nil check when chaos is
// off.
func (c *HACluster) unreachable(o int) bool {
	if c.health.IsDown(o) {
		return true
	}
	return c.chaos.ReporterCut(o)
}

// PartitionReporter cuts the reporter→collector i link: fan-out writers
// skip i (counted as degraded, like a down replica) while queries and
// resync still reach it — the asymmetric half of a network partition.
// Safe mid-run. The same fence as SetDown runs first (WAL watermarks,
// then the epoch bump, then the cut), so every write i misses lands
// inside its replay window; unlike SetDown there is no SetUp moment, so
// i is marked stale immediately.
func (c *HACluster) PartitionReporter(i int) error {
	c.fenceMu.Lock()
	defer c.fenceMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos == nil {
		return errors.New("dta: chaos plane not enabled (EnableChaos)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if c.chaos.ReporterCut(i) {
		return nil
	}
	// The partition joins the collector's existing failure arc if one is
	// open (a flapping collector), else mints a fresh one.
	cause := c.causeOf[i]
	if cause == 0 {
		cause = c.jr.NewCause()
		c.causeOf[i] = cause
	}
	c.emit(i, journal.EvPartition, journal.SevWarn, cause, 0, 0, 0)
	c.fenceForStale(i, cause)
	epoch := c.health.BumpEpoch()
	c.emit(i, journal.EvEpochBump, journal.SevInfo, cause, epoch, 0, 0)
	// Stale from the bumped epoch (a collector already stale keeps its
	// older window — it still misses writes from the first fault).
	if cur, ok := c.stale[i]; !ok || epoch < cur {
		c.stale[i] = epoch
	}
	// Cut LAST, mirroring SetDown's bump-before-flag ordering: a fan-out
	// that skips i observed the cut, hence the bump, so every block it
	// tags on any replica carries an epoch inside i's replay window.
	c.chaos.CutReporter(i)
	return nil
}

// HealReporter restores the reporter→collector i link. The collector
// stays stale — it missed every fan-out while cut — until Rebalance
// resynchronises it.
func (c *HACluster) HealReporter(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos == nil {
		return errors.New("dta: chaos plane not enabled (EnableChaos)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if !c.chaos.ReporterCut(i) {
		return nil
	}
	c.chaos.HealReporter(i)
	c.emit(i, journal.EvPartitionHeal, journal.SevInfo, c.causeOf[i], 0, 0, 0)
	if c.autoRebalance {
		c.healArmed = true
	}
	return nil
}

// PartitionPeers cuts the peer↔peer resync path between collectors a
// and b (symmetric): neither can serve the other's resyncs until
// HealPeers. Fan-out writes are unaffected, so no fence is needed —
// Rebalance defers any stale target with a cut live peer instead of
// resyncing partially (see Rebalance).
func (c *HACluster) PartitionPeers(a, b int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos == nil {
		return errors.New("dta: chaos plane not enabled (EnableChaos)")
	}
	for _, i := range [2]int{a, b} {
		if i < 0 || i >= len(c.systems) {
			return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
		}
	}
	c.chaos.CutPeers(a, b)
	c.emit(a, journal.EvPartition, journal.SevWarn, 0, 1, uint64(b), 0)
	return nil
}

// HealPeers restores the resync path between a and b.
func (c *HACluster) HealPeers(a, b int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos == nil {
		return errors.New("dta: chaos plane not enabled (EnableChaos)")
	}
	for _, i := range [2]int{a, b} {
		if i < 0 || i >= len(c.systems) {
			return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
		}
	}
	c.chaos.HealPeers(a, b)
	c.emit(a, journal.EvPartitionHeal, journal.SevInfo, 0, 1, uint64(b), 0)
	if c.autoRebalance {
		c.healArmed = true
	}
	return nil
}

// SlowDisk injects fsync latency under collector i's WAL (0 heals). The
// writer's degraded-ack machinery (WALPolicy.DegradeFsync) reacts to
// the slowdown; the injection itself is journaled under CompWAL.
func (c *HACluster) SlowDisk(i int, fsyncLat time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.chaos == nil {
		return errors.New("dta: chaos plane not enabled (EnableChaos)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	c.chaos.Disk(i).SetFsyncLatency(fsyncLat)
	sev := journal.SevWarn
	if fsyncLat == 0 {
		sev = journal.SevInfo
	}
	journal.Emitter{J: c.jr, Comp: journal.CompWAL, Collector: int16(i)}.
		Emit(journal.EvSlowDisk, sev, 0, uint64(fsyncLat), 0, 0)
	return nil
}

// SetClockSkew injects a signed clock offset on collector i (0 heals):
// its reports, token-bucket refills and WAL timestamps run off a
// shifted — across a step, non-monotonic — clock. Lives on the System,
// so it needs no chaos plane; journaled for the timeline either way.
func (c *HACluster) SetClockSkew(i int, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	c.systems[i].SetClockSkew(int64(d))
	sev := journal.SevWarn
	if d == 0 {
		sev = journal.SevInfo
	}
	c.emit(i, journal.EvClockSkew, sev, 0, uint64(d), 0, 0)
	return nil
}

// HealChaos clears injected faults on collector i, or on every
// collector when i < 0: reporter and peer cuts, disk faults, and clock
// skew (which lives on the System rather than the plane). Heals are
// journaled per fault kind.
func (c *HACluster) HealChaos(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if i < 0 {
		for id := range c.systems {
			c.healOne(id)
		}
		return nil
	}
	c.healOne(i)
	return nil
}

// healOne clears collector i's faults under c.mu.
func (c *HACluster) healOne(i int) {
	if c.chaos != nil {
		if c.chaos.ReporterCut(i) {
			c.emit(i, journal.EvPartitionHeal, journal.SevInfo, c.causeOf[i], 0, 0, 0)
		}
		for j := range c.systems {
			if j != i && c.chaos.PeersCut(i, j) {
				c.emit(i, journal.EvPartitionHeal, journal.SevInfo, 0, 1, uint64(j), 0)
			}
		}
		if d := c.chaos.Disk(i); d.FsyncLatency() != 0 {
			journal.Emitter{J: c.jr, Comp: journal.CompWAL, Collector: int16(i)}.
				Emit(journal.EvSlowDisk, journal.SevInfo, 0, 0, 0, 0)
		}
		c.chaos.HealNode(i)
	}
	if c.systems[i].ClockSkew() != 0 {
		c.systems[i].SetClockSkew(0)
		c.emit(i, journal.EvClockSkew, journal.SevInfo, 0, 0, 0, 0)
	}
	if c.autoRebalance {
		c.healArmed = true
	}
}

// AddCollector grows the cluster by one collector and returns its
// index. The rendezvous ring reassigns only the keys the newcomer now
// owns; it starts stale and serves them after the next Rebalance.
// Requires no attached engine (engines have a fixed shard set: Close
// it, add, then attach a new one) and quiesced producers.
func (c *HACluster) AddCollector() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return 0, errors.New("dta: cannot add collector while an engine is attached (Close it first)")
	}
	id := len(c.systems)
	if id >= ha.MaxMembers {
		return 0, fmt.Errorf("dta: cluster size limit %d reached", ha.MaxMembers)
	}
	o := c.opts
	o.Seed = c.opts.Seed + int64(id)
	sys, err := c.newMember(id, o)
	if err != nil {
		return 0, err
	}
	if c.walDir != "" {
		if err := sys.WithWAL(walSubdir(c.walDir, id), c.memberWALPolicy(id, c.walPol)); err != nil {
			return 0, err
		}
		// Empty mark map: replay every peer's log from the beginning —
		// the newcomer missed the whole history.
		c.walMark[id] = make(map[int]uint64)
	}
	if err := c.ring.Add(id); err != nil {
		return 0, err
	}
	c.attach(sys)
	epoch := c.health.BumpEpoch()
	c.stale[id] = 0 // the newcomer missed everything: full replay
	// The newcomer's join→resync arc chains like a rejoin's.
	c.causeOf[id] = c.jr.NewCause()
	c.emit(id, journal.EvMemberAdd, journal.SevInfo, c.causeOf[id], uint64(len(c.ring.Members())), epoch, 0)
	return id, nil
}

// SetCollectorWeight assigns collector i a capacity weight (> 0) in the
// rendezvous ring: heterogeneous collectors own key slices proportional
// to their weight. Changing a weight reshards — keys move owners — so
// it carries the same contract as AddCollector/Decommission: no
// attached engine, quiesced producers, and every live collector is
// marked stale until the next Rebalance cross-syncs the moved keys
// (weight moves cannot be narrowed by epoch windows or log watermarks,
// so the resync is a full snapshot replay).
func (c *HACluster) SetCollectorWeight(i int, weight float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return errors.New("dta: cannot change collector weight while an engine is attached (Close it first)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if err := c.ring.SetWeight(i, weight); err != nil {
		return err
	}
	epoch := c.health.BumpEpoch()
	c.emit(i, journal.EvWeightChange, journal.SevInfo, 0, uint64(weight*1000), epoch, 0)
	c.walMark = make(map[int]map[int]uint64)
	c.walSelf = make(map[int]uint64)
	for _, id := range c.ring.Members() {
		if !c.health.IsDown(id) {
			c.stale[id] = 0
		}
	}
	return nil
}

// CollectorWeight returns collector i's ring capacity weight.
func (c *HACluster) CollectorWeight(i int) float64 { return c.ring.Weight(i) }

// Decommission shrinks the cluster: collector i leaves the ring and its
// keys move to their new owners. Its data is captured immediately and
// replayed into the survivors at the next Rebalance; until then every
// remaining collector is stale for the moved keys, so all are marked
// stale. Same quiescence requirements as AddCollector.
func (c *HACluster) Decommission(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return errors.New("dta: cannot decommission while an engine is attached (Close it first)")
	}
	if i < 0 || i >= len(c.systems) {
		return fmt.Errorf("dta: collector %d out of range [0,%d)", i, len(c.systems))
	}
	if err := c.ring.Remove(i); err != nil {
		return err
	}
	epoch := c.health.BumpEpoch()
	c.emit(i, journal.EvMemberRemove, journal.SevInfo, 0, uint64(len(c.ring.Members())), epoch, 0)
	delete(c.causeOf, i)
	if !c.health.IsDown(i) {
		if err := c.systems[i].Flush(); err != nil {
			return err
		}
		c.pending = append(c.pending, c.capture(i))
	}
	delete(c.stale, i)
	delete(c.downAt, i)
	// Decommission moves keys whose history lives only in the pending
	// capture, which carries no log; every survivor resyncs from
	// snapshots, so all log watermarks are void.
	c.walMark = make(map[int]map[int]uint64)
	c.walSelf = make(map[int]uint64)
	for _, id := range c.ring.Members() {
		if !c.health.IsDown(id) {
			// Moved keys may have been written at any time, so epoch
			// windows cannot narrow this replay: full resync.
			c.stale[id] = 0
		}
	}
	return nil
}

// Resync retry/backoff contract: capped exponential backoff with
// seeded jitter per stale target.
const (
	resyncBackoffBase = 5 * time.Millisecond
	resyncBackoffCap  = 200 * time.Millisecond
	// DefaultRetryBudget bounds RebalanceUntilHealed attempts when the
	// caller passes no budget.
	DefaultRetryBudget = 8
)

// deferResync records a failed (or undeliverable) resync attempt for
// target id: backoff doubles per attempt up to the cap, plus seeded
// jitter, with an EvResyncRetry event and an HAStats counter. The
// target keeps its stale mark (and watermarks); Rebalance — typically
// via RebalanceUntilHealed, which sleeps out the deadline — retries it.
// Called under c.mu.
func (c *HACluster) deferResync(id int, cause uint64) {
	if c.retries == nil {
		c.retries = make(map[int]*resyncRetry)
	}
	r := c.retries[id]
	if r == nil {
		r = &resyncRetry{}
		c.retries[id] = r
	}
	backoff := resyncBackoffCap
	if r.attempts < 6 {
		if b := resyncBackoffBase << r.attempts; b < backoff {
			backoff = b
		}
	}
	if c.retryRNG != nil {
		backoff += time.Duration(c.retryRNG.Int63n(int64(backoff)/2 + 1))
	}
	r.attempts++
	r.nextAt = obs.Nanotime() + int64(backoff)
	c.health.RecordResyncRetry()
	// Open a trace resync window covering the backoff: any data-plane
	// trace completing while the retry is pending is tail-retained with
	// FResync, tying slow acks to the recovery in progress.
	c.trc.NoteResyncUntil(r.nextAt)
	c.emit(id, journal.EvResyncRetry, journal.SevWarn, cause, uint64(r.attempts), uint64(backoff), 0)
}

// Rebalance is the resharding barrier: it drains the attached engine
// (or flushes every live collector when reporting synchronously), then
// replays peer snapshots into every live stale collector and clears its
// stale mark. Afterwards rejoined, added and survivor collectors all
// serve their owned slices at full fidelity. When every live collector
// is stale (e.g. after decommissioning one while it was down), the
// survivors cross-sync from each other's snapshots, so keys that moved
// owner regain their full replica count from whichever peer still holds
// them.
//
// Producers must be quiesced first (Flush AsyncReporters, stop sync
// reporters): Rebalance copies store memory and must not race ingest.
//
// Resync failures do not abort the loop: every live stale collector is
// attempted, the errors are aggregated, and only the failed collectors
// keep their stale marks (and the pending snapshots their data) for the
// next attempt. Successfully resynced collectors are never replayed
// again on retry, and a retried replay into a still-stale collector is
// idempotent (overwrite / max-merge), so a partial failure leaves the
// cluster in a consistent, retryable state rather than half-rebalanced.
func (c *HACluster) Rebalance() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		if err := c.eng.Drain(); err != nil {
			return err
		}
	} else {
		for _, id := range c.ring.Members() {
			if c.health.IsDown(id) {
				continue
			}
			if err := c.systems[id].Flush(); err != nil {
				return err
			}
		}
	}
	if len(c.stale) == 0 && len(c.pending) == 0 {
		return nil
	}
	// The rebalance pass gets its own chain; each target's resync events
	// chain under the cause its SetDown (or AddCollector) minted, so the
	// timeline links failure to healing per collector.
	rebCause := c.jr.NewCause()
	rebStart := obs.Nanotime()
	c.emit(-1, journal.EvRebalanceStart, journal.SevInfo, rebCause, uint64(len(c.stale)), 0, 0)
	// Capture every live ring member once, before any resync, so all
	// replays see pre-rebalance state. Stale members are peers too:
	// when everyone is stale (Decommission marks all survivors), they
	// cross-sync from each other — each survivor holds data its peers
	// are missing — rather than skipping resync for want of a fresh
	// peer. Stale captures are merely older, so they replay BEFORE
	// pending and fresh ones: later merges win slot conflicts, keeping
	// fresher values on top.
	var stalePeers, freshPeers []int
	for _, id := range c.ring.Members() {
		if c.health.IsDown(id) {
			continue
		}
		if _, isStale := c.stale[id]; isStale {
			stalePeers = append(stalePeers, id)
		} else {
			freshPeers = append(freshPeers, id)
		}
	}
	caps := make(map[int]*snapshot.Snapshot, len(stalePeers)+len(freshPeers))
	for _, id := range append(append([]int(nil), stalePeers...), freshPeers...) {
		caps[id] = c.capture(id)
	}
	livePeers := append(append([]int(nil), stalePeers...), freshPeers...)
	var errs []error
	var resynced []int
	for id, since := range c.stale {
		if c.health.IsDown(id) {
			continue // still down: stays stale for its next rejoin
		}
		// A live peer partitioned from the target defers the WHOLE
		// resync: clearing the stale mark after a partial replay (some
		// peers' history unreachable) would lose that history for good.
		// The target stays stale under the retry/backoff contract and a
		// later Rebalance — after the partition heals, or routes around
		// it — converges it.
		if blocked := c.cutPeerOf(id, livePeers); blocked >= 0 {
			cause := c.causeOf[id]
			if cause == 0 {
				cause = rebCause
			}
			c.deferResync(id, cause)
			errs = append(errs, fmt.Errorf("dta: rebalance collector %d: peer %d partitioned, resync deferred", id, blocked))
			continue
		}
		// Log-shipping: when the target has recorded watermarks and
		// every live peer's log still retains its suffix, Append resync
		// replays the peers' logged operations (exact) instead of the
		// snapshots' index-aligned ring suffixes (approximate under
		// concurrent producers).
		marks, useLog := c.walMark[id]
		if c.fullResync || !useLog {
			useLog = false
		} else {
			useLog = c.logResyncReady(id, marks, livePeers)
		}
		var excl map[appendOpKey]int
		if useLog {
			var err error
			if excl, err = c.appendExclusion(id, c.walSelf[id]); err != nil {
				useLog = false // self-log unreadable: snapshot path
			}
		}
		opsFor := func(p int) ha.AppendOps {
			if !useLog {
				return nil
			}
			return c.appendOpsFrom(id, p, marks[p], excl)
		}
		var peers []ha.Peer
		for _, p := range stalePeers {
			if p != id {
				peers = append(peers, ha.Peer{Snap: caps[p], AppendOps: opsFor(p)})
			}
		}
		for _, snap := range c.pending {
			peers = append(peers, ha.Peer{Snap: snap})
		}
		for _, p := range freshPeers {
			peers = append(peers, ha.Peer{Snap: caps[p], AppendOps: opsFor(p)})
		}
		if len(peers) > 0 {
			if c.fullResync {
				since = 0
			}
			// Resync events chain under the cause the target's failure
			// minted; targets stale for other reasons (reshard) join the
			// rebalance's own chain.
			cause := c.causeOf[id]
			if cause == 0 {
				cause = rebCause
			}
			c.emit(id, journal.EvResyncStart, journal.SevInfo, cause, since, uint64(len(peers)), 0)
			t0 := obs.Nanotime()
			st, err := ha.Resync(ha.Target{
				Host:       c.systems[id].Host(),
				Batcher:    c.systems[id].Translator().AppendBatcher(),
				Dirty:      c.trackers[id],
				StaleSince: since,
			}, peers)
			if err != nil {
				c.emit(id, journal.EvResyncFail, journal.SevError, cause, 0, 0, 0)
				c.deferResync(id, cause)
				errs = append(errs, fmt.Errorf("dta: rebalance collector %d: %w", id, err))
				continue // keep the stale mark (and watermarks): retry resyncs it
			}
			c.emit(id, journal.EvResyncEnd, journal.SevInfo, cause,
				st.SlotsReplayed(), st.SlotsSkipped, uint64(obs.Nanotime()-t0))
			c.health.RecordResync(&st)
			resynced = append(resynced, id)
		}
		delete(c.stale, id)
		delete(c.walMark, id)
		delete(c.walSelf, id)
		delete(c.retries, id)
	}
	// Resync writes land in the stores directly, not through the
	// targets' own logs — so without a checkpoint, a later crash would
	// recover a healed collector from a log that never saw the healing
	// and silently re-diverge. Checkpointing folds the healed stores
	// into each target's recovery baseline (and reclaims its covered
	// segments); it runs after the whole resync loop because a
	// checkpoint truncates the target's log, which other stale targets
	// may still be reading as log-shipping peers. A checkpoint failure
	// is a durability regression, not a resync failure: the live
	// replicas are already converged, so it joins the error aggregate
	// without re-marking anyone stale.
	for _, id := range resynced {
		// The healed collector's failure arc ends here (or at the resync
		// end, when it has no log to checkpoint): release its cause.
		cause := c.causeOf[id]
		delete(c.causeOf, id)
		if c.systems[id].wal == nil {
			continue
		}
		// Thread the arc's cause into the checkpoint's events (safe under
		// c.mu; see System.ckptCause).
		c.systems[id].ckptCause = cause
		if _, err := c.systems[id].Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("dta: rebalance checkpoint collector %d: %w", id, err))
		}
	}
	c.emit(-1, journal.EvRebalanceEnd, journal.SevInfo, rebCause,
		uint64(len(resynced)), uint64(obs.Nanotime()-rebStart), 0)
	if len(errs) > 0 {
		// Keep pending too: still-stale collectors need it on retry.
		return errors.Join(errs...)
	}
	c.pending = nil
	c.healArmed = false
	return nil
}

// cutPeerOf returns the first live peer partitioned from target id (-1
// when none, or chaos is off). Called under c.mu.
func (c *HACluster) cutPeerOf(id int, livePeers []int) int {
	if c.chaos == nil {
		return -1
	}
	for _, p := range livePeers {
		if p != id && c.chaos.PeersCut(id, p) {
			return p
		}
	}
	return -1
}

// RebalanceUntilHealed runs Rebalance until every stale target heals or
// the retry budget runs out, sleeping out the per-target backoff
// deadlines between attempts — the driver loop of the retry/backoff
// contract. budget <= 0 means DefaultRetryBudget. On a clean cluster
// (nothing deferred) it degenerates to a single Rebalance. Same
// quiescence contract as Rebalance.
func (c *HACluster) RebalanceUntilHealed(budget int) error {
	if budget <= 0 {
		budget = DefaultRetryBudget
	}
	var err error
	for attempt := 0; attempt < budget; attempt++ {
		if err = c.Rebalance(); err == nil {
			return nil
		}
		// Sleep to the latest pending deadline so the next pass retries
		// every deferred target at once.
		c.mu.RLock()
		var until int64
		for _, r := range c.retries {
			if r.nextAt > until {
				until = r.nextAt
			}
		}
		c.mu.RUnlock()
		if wait := until - obs.Nanotime(); wait > 0 {
			time.Sleep(time.Duration(wait))
		}
	}
	return err
}

// SetAutoRebalance opts the cluster into automatic rebalancing after a
// chaos heal: HealReporter/HealPeers/HealChaos arm it, and the next
// AutoRebalance call (from a driver at a safe barrier — producers
// quiesced) runs RebalanceUntilHealed. The heal itself cannot
// rebalance: it may land mid-ingest, and Rebalance requires quiescence.
func (c *HACluster) SetAutoRebalance(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.autoRebalance = on
}

// AutoRebalance runs RebalanceUntilHealed if armed (a chaos heal
// happened since the last successful rebalance); reports whether it ran
// and the result.
func (c *HACluster) AutoRebalance(budget int) (bool, error) {
	c.mu.RLock()
	armed := c.autoRebalance && c.healArmed
	c.mu.RUnlock()
	if !armed {
		return false, nil
	}
	return true, c.RebalanceUntilHealed(budget)
}

// Reporter attaches a synchronous reporter switch that fans every
// report out to all live owners. Like ClusterReporter it is not
// goroutine-safe; create one per producer goroutine.
func (c *HACluster) Reporter(switchID uint32) *HAReporter {
	r := &HAReporter{hac: c, switchID: switchID}
	c.mu.RLock()
	for _, sys := range c.systems {
		r.reps = append(r.reps, r.newRep(sys))
	}
	c.mu.RUnlock()
	return r
}

// Engine attaches an async ingest engine with one shard per collector;
// its AsyncReporters fan every report out to all live owners. Rebalance
// uses the engine's Drain as its barrier.
func (c *HACluster) Engine(cfg EngineConfig) (*Engine, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.eng != nil && !c.eng.Closed() {
		return nil, errors.New("dta: engine already attached")
	}
	e, err := newEngine(c.systems, nil, c, cfg)
	if err != nil {
		return nil, err
	}
	c.eng = e
	return e, nil
}

// lookupState tracks one failover query across replicas.
type lookupState struct {
	degraded        bool // some owner was down or stale
	queried         int  // live replicas consulted
	primaryAnswered bool
}

func (c *HACluster) record(st *lookupState) {
	skipped := 0
	if st.degraded {
		skipped = 1
	}
	c.health.RecordQuery(skipped, st.queried > 0, st.primaryAnswered)
}

// replicaScan is the per-owner view one failover query collects before
// merging: which owners are live, which of those are stale, and what
// each answered. Fixed-size so the no-divergence fast path allocates
// nothing.
type replicaScan struct {
	live     [ha.MaxReplicas]bool
	staleRep [ha.MaxReplicas]bool
	answered [ha.MaxReplicas]bool
}

// scanOwner classifies owner index oi (collector o) and reports whether
// it should be consulted. Down owners are skipped; stale live owners ARE
// consulted — their divergence is exactly what read-repair heals — but
// marked so the merge can prefer fresh answers.
func (c *HACluster) scanOwner(sc *replicaScan, st *lookupState, oi, o int) bool {
	if c.health.IsDown(o) {
		st.degraded = true
		return false
	}
	_, isStale := c.stale[o]
	if isStale {
		st.degraded = true
	}
	sc.live[oi] = true
	sc.staleRep[oi] = isStale
	st.queried++
	return true
}

// markKeyWrite, markKeyIncrement and markPostcard stamp read-repaired
// slots in collector o's dirty tracker, so a later incremental resync
// treating o as a peer replays them.
func (c *HACluster) markKeyWrite(o int, key Key, n int) {
	tk := c.trackers[o]
	if tk == nil {
		return
	}
	x := c.systems[o].Host().KeyWriteStore().Indexer()
	size := x.Config().SlotSize()
	for i := 0; i < n; i++ {
		tk.MarkRange("keywrite", x.Offset(x.Slot(i, key)), size)
	}
}

func (c *HACluster) markKeyIncrement(o int, key Key, n int) {
	tk := c.trackers[o]
	if tk == nil {
		return
	}
	x := c.systems[o].Host().KeyIncrementStore().Indexer()
	for i := 0; i < n; i++ {
		tk.MarkRange("keyincrement", x.Offset(x.Slot(i, key)), keyincrement.CounterSize)
	}
}

func (c *HACluster) markPostcard(o int, key Key, n int) {
	tk := c.trackers[o]
	if tk == nil {
		return
	}
	pcs := c.systems[o].Host().PostcardingStore()
	size := pcs.Coder().Config().ChunkBytes()
	for j := 0; j < n; j++ {
		tk.MarkRange("postcarding", pcs.ChunkOffset(pcs.Coder().Chunk(j, key)), size)
	}
}

// LookupValue queries the Key-Write stores of every live owner of key
// and plurality-merges the answers: fresh replicas outvote stale ones
// (stale answers are used only when no fresh replica has one), and ties
// favour the earliest answer in owner order — the primary when it
// answered, including a stale primary when only stale replicas answer.
// Owners found disagreeing with the winner — and stale owners with no
// answer at all, which most likely missed the write — are read-repaired:
// the winning value is written back into their slots before returning,
// so a failover query leaves the live replicas converged (see repairSet
// for why a fresh owner without an answer is left untouched). Returns
// ErrAllReplicasDown when no owner is live.
func (c *HACluster) LookupValue(key Key, n int) ([]byte, bool, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	var st lookupState
	var sc replicaScan
	var answers [ha.MaxReplicas][]byte
	fresh := 0
	for oi, o := range owners {
		if !c.scanOwner(&sc, &st, oi, o) {
			continue
		}
		data, ok, err := c.systems[o].LookupValue(key, n)
		if err != nil {
			c.mu.RUnlock()
			c.record(&st)
			return nil, false, err
		}
		if ok {
			answers[oi], sc.answered[oi] = data, true
			if !sc.staleRep[oi] {
				fresh++
				if oi == 0 {
					st.primaryAnswered = true
				}
			}
		}
	}
	c.record(&st)
	if st.queried == 0 {
		c.mu.RUnlock()
		return nil, false, ErrAllReplicasDown
	}
	// Merge over fresh answers when any exist; stale answers (from
	// replicas that missed writes while down) are a last resort.
	useStale := fresh == 0
	best, votes := -1, 0
	for i := range owners {
		if !sc.answered[i] || sc.staleRep[i] != useStale {
			continue
		}
		v := 1
		for j := i + 1; j < len(owners); j++ {
			if sc.answered[j] && sc.staleRep[j] == useStale && bytes.Equal(answers[i], answers[j]) {
				v++
			}
		}
		if v > votes { // ties keep the earlier owner: primary preference
			best, votes = i, v
		}
	}
	if best < 0 {
		c.mu.RUnlock()
		return nil, false, nil
	}
	// Copy the winner out of the store before releasing any lock: store
	// views are no longer stable once queries can write (a concurrent
	// query read-repairing a colliding slot would mutate the bytes under
	// the caller).
	var vbuf [wire.MaxData]byte
	winner := vbuf[:copy(vbuf[:], answers[best])]
	repair, repairs := repairSet(&sc, len(owners), func(i int) bool { return bytes.Equal(answers[i], winner) })
	if repairs == 0 {
		c.mu.RUnlock()
		return winner, true, nil
	}
	// Read-repair under the write lock: the write lock orders repairs
	// against other queries and Rebalance captures. Producers are a
	// non-issue by contract, not by lock — queries were never safe
	// concurrently with ingest (they read the same raw store buffers the
	// writers mutate), so no acknowledged write can land between the
	// merge above and the repair below.
	c.mu.RUnlock()
	c.mu.Lock()
	repaired := 0
	for i, o := range owners {
		if !repair[i] || c.health.IsDown(o) {
			continue
		}
		if kw := c.systems[o].Host().KeyWriteStore(); kw != nil {
			if err := kw.Write(key, winner, n); err == nil {
				c.markKeyWrite(o, key, n)
				repaired++
			}
		}
	}
	c.health.RecordReadRepair(repaired)
	c.mu.Unlock()
	c.noteReadRepair(repaired)
	return winner, true, nil
}

// repairSet picks the replicas a divergence-observing query writes the
// winner back to: every live replica whose answer differs from the
// winner (observed divergence), plus live STALE replicas with no answer
// at all — a stale replica most likely missed the write while down. A
// live FRESH replica with no answer is deliberately left alone: the
// usual cause is a colliding key legitimately occupying the slot
// (last-writer-wins), and "repairing" it would resurrect the older key
// over the newer one and set up a repair ping-pong between the two.
func repairSet(sc *replicaScan, owners int, matches func(i int) bool) (repair [ha.MaxReplicas]bool, repairs int) {
	for i := 0; i < owners; i++ {
		if !sc.live[i] {
			continue
		}
		if sc.answered[i] && !matches(i) || !sc.answered[i] && sc.staleRep[i] {
			repair[i] = true
			repairs++
		}
	}
	return repair, repairs
}

// LookupPath queries the Postcarding stores of every live owner of key
// and plurality-merges the reconstructed paths exactly like LookupValue
// merges values: fresh replicas outvote stale ones, ties favour the
// earliest owner in order, and owners that disagree with (or lack) the
// winning path are read-repaired by re-encoding the winning chunk into
// their stores.
func (c *HACluster) LookupPath(key Key, n int) ([]uint32, bool, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	var st lookupState
	var sc replicaScan
	var answers [ha.MaxReplicas][]uint32
	fresh := 0
	for oi, o := range owners {
		if !c.scanOwner(&sc, &st, oi, o) {
			continue
		}
		values, ok, err := c.systems[o].LookupPath(key, n)
		if err != nil {
			c.mu.RUnlock()
			c.record(&st)
			return nil, false, err
		}
		if ok {
			answers[oi], sc.answered[oi] = values, true
			if !sc.staleRep[oi] {
				fresh++
				if oi == 0 {
					st.primaryAnswered = true
				}
			}
		}
	}
	c.record(&st)
	if st.queried == 0 {
		c.mu.RUnlock()
		return nil, false, ErrAllReplicasDown
	}
	useStale := fresh == 0
	best, votes := -1, 0
	for i := range owners {
		if !sc.answered[i] || sc.staleRep[i] != useStale {
			continue
		}
		v := 1
		for j := i + 1; j < len(owners); j++ {
			if sc.answered[j] && sc.staleRep[j] == useStale && slices.Equal(answers[i], answers[j]) {
				v++
			}
		}
		if v > votes { // ties keep the earlier owner: primary preference
			best, votes = i, v
		}
	}
	if best < 0 {
		c.mu.RUnlock()
		return nil, false, nil
	}
	winner := answers[best] // a heap copy from the store query, stable after unlock
	repair, repairs := repairSet(&sc, len(owners), func(i int) bool { return slices.Equal(answers[i], winner) })
	c.mu.RUnlock()
	if repairs == 0 {
		return winner, true, nil
	}
	c.mu.Lock()
	repaired := 0
	for i, o := range owners {
		if !repair[i] || c.health.IsDown(o) {
			continue
		}
		if pcs := c.systems[o].Host().PostcardingStore(); pcs != nil {
			if err := pcs.Write(key, winner, len(winner), n); err == nil {
				c.markPostcard(o, key, n)
				repaired++
			}
		}
	}
	c.health.RecordReadRepair(repaired)
	c.mu.Unlock()
	c.noteReadRepair(repaired)
	return winner, true, nil
}

// LookupCount returns the count-min estimate for key: the minimum over
// its live fresh owners (each owner received every increment for the
// key, so the cross-replica minimum keeps the never-undercount
// guarantee while discarding single-replica collision inflation).
// Stale replicas undercount and contribute to the estimate only when no
// fresh owner is live — but they are still consulted, and any stale
// replica reporting less than the fresh estimate is read-repaired by
// raising its counters to that estimate (never lowering, so other keys'
// guarantees survive).
func (c *HACluster) LookupCount(key Key, n int) (uint64, error) {
	var ob [ha.MaxReplicas]int
	owners := c.owners(key[:], ob[:0])
	c.mu.RLock()
	var st lookupState
	var sc replicaScan
	var counts [ha.MaxReplicas]uint64
	fresh := 0
	for oi, o := range owners {
		if !c.scanOwner(&sc, &st, oi, o) {
			continue
		}
		count, err := c.systems[o].LookupCount(key, n)
		if err != nil {
			c.mu.RUnlock()
			c.record(&st)
			return 0, err
		}
		counts[oi], sc.answered[oi] = count, true
		if !sc.staleRep[oi] {
			fresh++
			if oi == 0 {
				st.primaryAnswered = true
			}
		}
	}
	c.record(&st)
	if st.queried == 0 {
		c.mu.RUnlock()
		return 0, ErrAllReplicasDown
	}
	useStale := fresh == 0
	var min uint64
	first := true
	for i := range owners {
		if !sc.answered[i] || sc.staleRep[i] != useStale {
			continue
		}
		if first || counts[i] < min {
			min, first = counts[i], false
		}
	}
	// Read-repair: a stale replica reporting below the fresh estimate
	// missed increments while down; raise its counters to the estimate.
	// (Fresh replicas are never below the fresh minimum by definition,
	// and counters are never lowered — inflation is collision noise the
	// count-min contract already absorbs.)
	var repair [ha.MaxReplicas]bool
	repairs := 0
	if !useStale {
		for i := range owners {
			if sc.live[i] && sc.staleRep[i] && counts[i] < min {
				repair[i] = true
				repairs++
			}
		}
	}
	c.mu.RUnlock()
	if repairs == 0 {
		return min, nil
	}
	c.mu.Lock()
	repaired := 0
	for i, o := range owners {
		if !repair[i] || c.health.IsDown(o) {
			continue
		}
		if ki := c.systems[o].Host().KeyIncrementStore(); ki != nil {
			if err := ki.Raise(key, min, n); err == nil {
				c.markKeyIncrement(o, key, n)
				repaired++
			}
		}
	}
	c.health.RecordReadRepair(repaired)
	c.mu.Unlock()
	c.noteReadRepair(repaired)
	return min, nil
}

// Poller returns an Append reader over the first live owner of list.
// Call Flush (or drain the engine) first to push out partial batches.
func (c *HACluster) Poller(list uint32) (*AppendPoller, error) {
	var ob [ha.MaxReplicas]int
	owners := c.ring.OwnersOfList(list, c.r, ob[:0])
	c.mu.RLock()
	defer c.mu.RUnlock()
	for pass := 0; pass < 2; pass++ {
		useStale := pass == 1
		for _, o := range owners {
			_, isStale := c.stale[o]
			if c.health.IsDown(o) || isStale != useStale {
				continue
			}
			return c.systems[o].Poller(int(list))
		}
	}
	return nil, ErrAllReplicasDown
}

// Flush flushes every live collector's translator state. Only for
// synchronous reporting; with an engine attached use Drain instead.
func (c *HACluster) Flush() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, id := range c.ring.Members() {
		if c.health.IsDown(id) {
			continue
		}
		if err := c.systems[id].Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats sums counters across all collectors (including down ones:
// their pre-failure work still happened).
func (c *HACluster) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return aggregateStats(c.systems)
}

// HAReporter is a reporter switch whose reports fan out to every live
// owner of the key (or Append list). Down owners are skipped and
// counted — a report is acknowledged as long as one owner is live, and
// counted as lost otherwise (best-effort, never an error).
type HAReporter struct {
	hac      *HACluster
	switchID uint32
	reps     []*Reporter
}

// newRep builds a per-collector reporter handle directly (bypassing
// System.Reporter, whose bookkeeping append is not goroutine-safe
// across concurrently created HAReporters). Handles use the structured
// staged-report fast path, like System.Reporter.
func (r *HAReporter) newRep(sys *System) *Reporter {
	return &Reporter{sys: sys, switchID: r.switchID}
}

// rep returns the handle for collector o, growing the slice after
// AddCollector (which requires quiesced producers, so growth never
// races reporting).
func (r *HAReporter) rep(o int) *Reporter {
	for len(r.reps) <= o {
		r.hac.mu.RLock()
		sys := r.hac.systems[len(r.reps)]
		r.hac.mu.RUnlock()
		r.reps = append(r.reps, r.newRep(sys))
	}
	return r.reps[o]
}

func (r *HAReporter) fanKey(key Key, write func(rep *Reporter) error) error {
	var ob [ha.MaxReplicas]int
	owners := r.hac.owners(key[:], ob[:0])
	return r.fan(owners, write)
}

func (r *HAReporter) fan(owners []int, write func(rep *Reporter) error) error {
	// The whole fan-out runs under the fence read-lock: a concurrent
	// SetDown/PartitionReporter fence waits it out, so this op's copies
	// are all logged before any mark is read (see fenceMu).
	r.hac.fenceMu.RLock()
	defer r.hac.fenceMu.RUnlock()
	// Decide the skip set for ALL owners before the first write. This
	// ordering is what makes the bump-before-flag epoch fence (SetDown
	// and PartitionReporter alike) airtight: if any owner reads as
	// unreachable here, the fence's epoch bump already happened, so
	// every block this fan-out subsequently tags — on any replica —
	// carries an epoch inside the skipped owner's replay window.
	// (Interleaving checks with writes would let a write tag a surviving
	// peer just below the window and then skip the victim, silently
	// escaping the incremental resync.)
	var skip [ha.MaxReplicas]bool
	for i, o := range owners {
		skip[i] = r.hac.unreachable(o)
	}
	live := 0
	for i, o := range owners {
		if skip[i] {
			continue
		}
		if err := write(r.rep(o)); err != nil {
			return err
		}
		live++
	}
	r.hac.health.RecordWrite(live, len(owners))
	return nil
}

// KeyWrite stores data under key on every live owner.
func (r *HAReporter) KeyWrite(key Key, data []byte, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.KeyWrite(key, data, n) })
}

// KeyWriteImmediate is KeyWrite with the immediate flag set.
func (r *HAReporter) KeyWriteImmediate(key Key, data []byte, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.KeyWriteImmediate(key, data, n) })
}

// Increment adds delta on every live owner.
func (r *HAReporter) Increment(key Key, delta uint64, n int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.Increment(key, delta, n) })
}

// Postcard reports a hop observation to every live owner.
func (r *HAReporter) Postcard(key Key, hop, pathLen int) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.Postcard(key, hop, pathLen) })
}

// PostcardValue reports an arbitrary per-hop value to every live owner.
func (r *HAReporter) PostcardValue(key Key, hop, pathLen int, value uint32) error {
	return r.fanKey(key, func(rep *Reporter) error { return rep.PostcardValue(key, hop, pathLen, value) })
}

// Append adds data to list on every live owner of the list.
func (r *HAReporter) Append(list uint32, data []byte) error {
	var ob [ha.MaxReplicas]int
	owners := r.hac.ring.OwnersOfList(list, r.hac.r, ob[:0])
	return r.fan(owners, func(rep *Reporter) error { return rep.Append(list, data) })
}
