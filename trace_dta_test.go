package dta_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dta"
	"dta/internal/obs/trace"
)

// httpGetJSON fetches url and decodes the body as a JSON object.
func httpGetJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return m
}

// TestTraceFsyncAttribution is the trace pipeline's acceptance scenario:
// a WAL-backed HA cluster under a slow-disk chaos fault must publish at
// least one tail-retained trace whose per-stage breakdown attributes the
// latency to the fsync stage — the wal_write→fsync segment is the
// largest gap in the trace. The sync reporter path keeps the queueless
// stages at nanosecond scale, so the injected fsync latency is the only
// plausible dominant; if attribution ever points elsewhere the stamps
// are being taken at the wrong spots.
func TestTraceFsyncAttribution(t *testing.T) {
	const fsyncLat = 15 * time.Millisecond

	hac, err := dta.NewHACluster(2, 1, dta.Options{
		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 14, DataSize: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chaos before WithWAL so the segment files open through the
	// fault-injection disk.
	if _, err := hac.EnableChaos(1); err != nil {
		t.Fatal(err)
	}
	if err := hac.WithWAL(t.TempDir(), dta.WALPolicy{Mode: dta.WALSyncBatch}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := hac.SlowDisk(i, fsyncLat); err != nil {
			t.Fatal(err)
		}
	}

	// The engine path is what dtaload -wal drives, and with SyncBatch it
	// is also what makes the traces complete: the worker's batch
	// boundaries issue the WAL sync barriers that produce durable acks.
	eng, err := hac.Engine(dta.EngineConfig{QueueDepth: 64, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}

	// Default candidate sampling is 1/1024 per reporter; bursts paced
	// slower than the injected fsync latency keep the engine queue
	// empty, so the sampled candidates' traces are fsync-bound rather
	// than queue-bound. ~12k reports yields a handful of candidates,
	// every one far past the 1ms tail threshold.
	rep := eng.Reporter(1)
	for burst := 0; burst < 100; burst++ {
		for i := 0; i < 128; i++ {
			k := uint64(burst*128 + i)
			if err := rep.KeyWrite(dta.KeyFromUint64(k), []byte{1, 2, 3, 4}, 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := rep.Flush(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(3 * fsyncLat / 2)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	// Sampled traces publish at durable ack — after the flusher's next
	// write+fsync cycle — so poll rather than sleeping a guessed amount.
	tracer := hac.Tracer()
	if tracer == nil {
		t.Fatal("Tracer() = nil with telemetry enabled")
	}
	buf := make([]dta.TraceRecord, 2048)
	deadline := time.Now().Add(10 * time.Second)
	var match *dta.TraceRecord
	for time.Now().Before(deadline) && match == nil {
		recs, _, _ := tracer.Since(0, buf)
		for i := range recs {
			r := &recs[i]
			if r.Flags&trace.FSlow == 0 {
				continue // head-kept baseline or other tail causes
			}
			if r.TS[trace.StWALWrite] == 0 || r.TS[trace.StFsync] == 0 {
				continue
			}
			if dominantSegment(r) == "wal_write→fsync" {
				match = r
				break
			}
		}
		if match == nil {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if match == nil {
		recs, _, _ := tracer.Since(0, buf)
		t.Fatalf("no tail-retained fsync-dominated trace after slow-disk run (%d traces published)", len(recs))
	}
	if got := match.TS[trace.StFsync] - match.TS[trace.StWALWrite]; got < int64(fsyncLat)/2 {
		t.Errorf("fsync segment %dns implausibly small for an injected %s fault", got, fsyncLat)
	}
	if match.Total() < int64(fsyncLat)/2 {
		t.Errorf("trace total %dns below the injected fault magnitude", match.Total())
	}

	// The same trace must be visible over the HTTP surface dtastat
	// -traces renders: /debug/traces with the cursor protocol.
	srv := httptest.NewServer(hac.ObsMux())
	defer srv.Close()
	resp := httpGetJSON(t, srv.URL+"/debug/traces")
	traces, _ := resp["traces"].([]any)
	if len(traces) == 0 {
		t.Fatal("/debug/traces returned no traces")
	}
	found := false
	for _, tr := range traces {
		m := tr.(map[string]any)
		if uint64(m["id"].(float64)) == match.ID {
			found = true
			if stages, _ := m["stages"].([]any); len(stages) < 4 {
				t.Errorf("/debug/traces trace %d has %d stages, want >= 4", match.ID, len(stages))
			}
		}
	}
	if !found {
		t.Errorf("trace %d not visible via /debug/traces", match.ID)
	}
}

// dominantSegment names the largest inter-stage gap in chronological
// stamp order (enum order differs: the WAL-ring handoff lands before
// emit/translate).
func dominantSegment(r *dta.TraceRecord) string {
	type stamp struct {
		name string
		at   int64
	}
	var stamps []stamp
	for s := 0; s < trace.NumStages; s++ {
		if v := r.TS[s]; v != 0 {
			stamps = append(stamps, stamp{trace.Stage(s).String(), v})
		}
	}
	for i := 1; i < len(stamps); i++ { // insertion sort: N <= 9
		for j := i; j > 0 && stamps[j].at < stamps[j-1].at; j-- {
			stamps[j], stamps[j-1] = stamps[j-1], stamps[j]
		}
	}
	best, name := int64(-1), ""
	for i := 1; i < len(stamps); i++ {
		if gap := stamps[i].at - stamps[i-1].at; gap > best {
			best, name = gap, stamps[i-1].name+"→"+stamps[i].name
		}
	}
	return name
}
