package dta

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, fullOptions()); err == nil {
		t.Error("zero-size cluster accepted")
	}
}

func TestClusterShardsKeys(t *testing.T) {
	c, err := NewCluster(4, fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	const keys = 200
	for i := 0; i < keys; i++ {
		var data [4]byte
		binary.BigEndian.PutUint32(data[:], uint32(i))
		if err := rep.KeyWrite(KeyFromUint64(uint64(i)), data[:], 2); err != nil {
			t.Fatal(err)
		}
	}
	// Every key is queryable through the cluster router.
	for i := 0; i < keys; i++ {
		data, ok, err := c.LookupValue(KeyFromUint64(uint64(i)), 2)
		if err != nil || !ok || binary.BigEndian.Uint32(data) != uint32(i) {
			t.Fatalf("key %d: %v %v %v", i, data, ok, err)
		}
	}
	// The keys actually spread: no collector holds everything.
	perSys := make([]uint64, c.Size())
	var total uint64
	for i := 0; i < c.Size(); i++ {
		st := c.System(i).Stats()
		perSys[i] = st.Reports
		total += st.Reports
	}
	if total != keys {
		t.Fatalf("total reports = %d", total)
	}
	for i, n := range perSys {
		if n == 0 || n == keys {
			t.Errorf("collector %d holds %d/%d keys: no sharding", i, n, keys)
		}
	}
}

func TestClusterOwnerStable(t *testing.T) {
	c, _ := NewCluster(3, fullOptions())
	for i := 0; i < 100; i++ {
		k := KeyFromUint64(uint64(i))
		if c.Owner(k) != c.Owner(k) {
			t.Fatal("owner not deterministic")
		}
		if o := c.Owner(k); o < 0 || o >= 3 {
			t.Fatalf("owner %d out of range", o)
		}
	}
}

func TestClusterQueryOnlyOwnerAnswers(t *testing.T) {
	c, _ := NewCluster(2, fullOptions())
	rep := c.Reporter(1)
	k := KeyFromUint64(42)
	rep.KeyWrite(k, []byte{7, 7, 7, 7}, 2)
	owner := c.Owner(k)
	other := 1 - owner
	if _, ok, _ := c.System(owner).LookupValue(k, 2); !ok {
		t.Error("owner cannot answer")
	}
	if _, ok, _ := c.System(other).LookupValue(k, 2); ok {
		t.Error("non-owner answered (shard leak)")
	}
}

func TestClusterPostcardsAndCounts(t *testing.T) {
	c, _ := NewCluster(2, fullOptions())
	rep := c.Reporter(1)
	k := KeyFromUint64(9)
	for hop := 0; hop < 5; hop++ {
		if err := rep.Postcard(k, hop, 5); err != nil {
			t.Fatal(err)
		}
	}
	if path, ok, _ := c.LookupPath(k, 1); !ok || len(path) != 5 {
		t.Errorf("path = %v %v", path, ok)
	}
	rep.Increment(k, 5, 2)
	rep.Increment(k, 6, 2)
	if got, _ := c.LookupCount(k, 2); got != 11 {
		t.Errorf("count = %d", got)
	}
}

func TestClusterAppendByList(t *testing.T) {
	c, _ := NewCluster(2, fullOptions())
	rep := c.Reporter(1)
	for list := uint32(0); list < 4; list++ {
		if err := rep.Append(list, []byte{byte(list), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for list := uint32(0); list < 4; list++ {
		sys := c.System(c.OwnerOfList(list))
		p, err := sys.Poller(int(list))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Poll(); !bytes.Equal(got, []byte{byte(list), 0, 0, 0}) {
			t.Errorf("list %d entry = %v", list, got)
		}
	}
	st := c.Stats()
	if st.Reports != 4 {
		t.Errorf("cluster stats reports = %d", st.Reports)
	}
}

func TestKIAggregationThroughFacade(t *testing.T) {
	opts := fullOptions()
	opts.KeyIncrement.AggregationRows = 1 << 8
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Reporter(1)
	k := KeyFromUint64(3)
	for i := 0; i < 50; i++ {
		rep.Increment(k, 1, 2)
	}
	// Before flush the aggregate is still in the translator cache.
	if got, _ := sys.LookupCount(k, 2); got != 0 {
		t.Errorf("count before flush = %d, want 0", got)
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.LookupCount(k, 2); got != 50 {
		t.Errorf("count after flush = %d, want 50", got)
	}
	if st := sys.Stats(); st.RDMAAtomics != 2 {
		t.Errorf("atomics = %d, want 2", st.RDMAAtomics)
	}
}

// TestClusterOwnershipDistribution checks the CRC sharding satellite:
// ownership over a large key sample spreads close to uniformly, so no
// collector silently becomes a hot spot.
func TestClusterOwnershipDistribution(t *testing.T) {
	const size, keys = 4, 40000
	c, err := NewCluster(size, fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, size)
	for i := 0; i < keys; i++ {
		owner := c.Owner(KeyFromUint64(uint64(i) * 0x9e3779b97f4a7c15))
		if owner < 0 || owner >= size {
			t.Fatalf("Owner returned %d for cluster of %d", owner, size)
		}
		counts[owner]++
	}
	mean := keys / size
	for i, n := range counts {
		if n < mean*8/10 || n > mean*12/10 {
			t.Errorf("collector %d owns %d of %d keys (mean %d): skewed beyond ±20%%", i, n, keys, mean)
		}
	}
}

// TestClusterReporterParity covers the ClusterReporter methods that
// lagged behind Reporter: KeyWriteImmediate raises the push event on
// the owning collector, and PostcardValue records per-hop values there.
func TestClusterReporterParity(t *testing.T) {
	c, err := NewCluster(3, fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	k := KeyFromUint64(77)
	owner := c.Owner(k)

	if err := rep.KeyWriteImmediate(k, []byte{4, 3, 2, 1}, 2); err != nil {
		t.Fatal(err)
	}
	if data, ok, err := c.LookupValue(k, 2); err != nil || !ok || !bytes.Equal(data, []byte{4, 3, 2, 1}) {
		t.Fatalf("immediate write lookup: %v %v %v", data, ok, err)
	}
	// The immediate flag raises one push event per redundant RDMA
	// write (n=2 here) — all of them on the owning collector only.
	for i := 0; i < c.Size(); i++ {
		want := 0
		if i == owner {
			want = 2
		}
		if got := len(c.System(i).Host().Events); got != want {
			t.Errorf("collector %d holds %d events, want %d", i, got, want)
		}
	}

	for hop := 0; hop < 5; hop++ {
		if err := rep.PostcardValue(k, hop, 5, uint32(10+hop)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	path, ok, err := c.LookupPath(k, 1)
	if err != nil || !ok || len(path) != 5 {
		t.Fatalf("postcard value path: %v %v %v", path, ok, err)
	}
	for hop, v := range path {
		if v != uint32(10+hop) {
			t.Errorf("hop %d value = %d, want %d", hop, v, 10+hop)
		}
	}
}

// TestClusterStatsMemInstrWeighted: the Fig. 8 metric must survive
// clustering as the report-weighted average, not vanish (the old code
// summed every counter but never set MemInstrPerReport).
func TestClusterStatsMemInstrWeighted(t *testing.T) {
	c, err := NewCluster(3, fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Reporter(1)
	for i := uint64(0); i < 100; i++ {
		if err := rep.KeyWrite(KeyFromUint64(i), []byte{1, 2, 3, 4}, 2); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := -1.0, -1.0
	for i := 0; i < c.Size(); i++ {
		st := c.System(i).Stats()
		if st.Reports == 0 {
			continue
		}
		if lo < 0 || st.MemInstrPerReport < lo {
			lo = st.MemInstrPerReport
		}
		if st.MemInstrPerReport > hi {
			hi = st.MemInstrPerReport
		}
	}
	got := c.Stats().MemInstrPerReport
	if got <= 0 {
		t.Fatalf("cluster MemInstrPerReport = %v, dropped in aggregation", got)
	}
	// A weighted average lies within the per-collector extremes.
	if got < lo || got > hi {
		t.Errorf("cluster MemInstrPerReport = %v outside per-collector range [%v, %v]", got, lo, hi)
	}
}

// TestEventsSingleConsumerPump: Events must return one cached channel —
// the old per-call pump spawned competing goroutines that stole each
// other's notifications and never exited.
func TestEventsSingleConsumerPump(t *testing.T) {
	sys, err := New(fullOptions())
	if err != nil {
		t.Fatal(err)
	}
	ch1 := sys.Events()
	ch2 := sys.Events()
	if ch1 != ch2 {
		t.Fatal("Events returned distinct channels: competing pumps")
	}
	rep := sys.Reporter(1)
	if err := rep.KeyWriteImmediate(KeyFromUint64(5), []byte{1, 2, 3, 4}, 1); err != nil {
		t.Fatal(err)
	}
	ev := <-ch1
	if ev.Imm == 0 {
		t.Errorf("event imm = %d, want non-zero", ev.Imm)
	}
	select {
	case extra := <-ch2:
		t.Errorf("second event %+v appeared for a single immediate write", extra)
	default:
	}
}

func TestClusterOwnerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Owner on zero-value Cluster did not panic with a diagnostic")
		}
	}()
	var c Cluster
	c.Owner(KeyFromUint64(1))
}
