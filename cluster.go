package dta

import (
	"fmt"
	"strconv"
	"sync"

	"dta/internal/crc"
	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
)

// Cluster shards telemetry across multiple collectors (§7, "Supporting
// Multiple Collectors"): reports are partitioned by key hash, so every
// collector owns a disjoint slice of the key space and queries go
// straight to the owner. Append lists are partitioned by list ID.
type Cluster struct {
	systems []*System
	eng     *crc.Engine
	// reg is the shared telemetry registry every member registers into,
	// each under a collector="i" label (nil with DisableTelemetry).
	reg *obs.Registry
	// jr is the shared flight-recorder journal every member emits into,
	// each under its own collector label (nil with DisableTelemetry).
	jr *journal.Journal
	// trc is the shared data-plane trace pipeline (nil with
	// DisableTelemetry). See internal/obs/trace.
	trc *trace.Tracer
	// health lazily builds the default /healthz evaluator over reg.
	healthOnce sync.Once
	health     *obs.HealthEvaluator
}

// NewCluster builds n identical collectors from the same options. All
// members share one telemetry registry (Metrics), their series told
// apart by a collector="i" label.
func NewCluster(n int, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dta: cluster size %d < 1", n)
	}
	c := &Cluster{eng: crc.New(crc.K32K)}
	if !opts.DisableTelemetry {
		c.reg = obs.NewRegistry()
		c.jr = newJournal(opts)
		c.trc = trace.New(trace.Config{})
	}
	for i := 0; i < n; i++ {
		o := opts
		o.Seed = opts.Seed + int64(i)
		sys, err := newSystem(o, c.reg, c.reg.Scope(obs.L("collector", strconv.Itoa(i))), c.jr, c.trc, int16(i))
		if err != nil {
			return nil, err
		}
		c.systems = append(c.systems, sys)
	}
	return c, nil
}

// Size returns the number of collectors.
func (c *Cluster) Size() int { return len(c.systems) }

// Owner returns the collector responsible for a key. Ownership is
// CRC32(key) mod cluster size — the same function a reporter's
// forwarding table applies (§7), so reporter-side forwarding
// (ClusterReporter, AsyncReporter) and query routing MUST keep hashing
// identically or queries will miss the data.
func (c *Cluster) Owner(key Key) int {
	if len(c.systems) == 0 {
		// NewCluster enforces n >= 1; only a zero-value Cluster gets
		// here, and a mod-by-zero panic would point at the wrong culprit.
		panic("dta: Owner on empty Cluster (construct with NewCluster)")
	}
	return int(c.eng.Sum128((*[16]byte)(&key)) % uint32(len(c.systems)))
}

// OwnerOfList returns the collector responsible for an Append list.
func (c *Cluster) OwnerOfList(list uint32) int {
	return int(list) % len(c.systems)
}

// System returns collector i (for direct Append polling etc.).
func (c *Cluster) System(i int) *System { return c.systems[i] }

// Reporter attaches a reporter switch that routes each report to the
// owning collector, as the reporter's forwarding table would (the DTA
// header plus collector IP select the partition, §7).
func (c *Cluster) Reporter(switchID uint32) *ClusterReporter {
	r := &ClusterReporter{cluster: c}
	for _, sys := range c.systems {
		r.reps = append(r.reps, sys.Reporter(switchID))
	}
	return r
}

// ClusterReporter is a reporter handle that shards by key.
type ClusterReporter struct {
	cluster *Cluster
	reps    []*Reporter
}

// KeyWrite stores data under key on the owning collector.
func (r *ClusterReporter) KeyWrite(key Key, data []byte, n int) error {
	return r.reps[r.cluster.Owner(key)].KeyWrite(key, data, n)
}

// Increment adds delta on the owning collector.
func (r *ClusterReporter) Increment(key Key, delta uint64, n int) error {
	return r.reps[r.cluster.Owner(key)].Increment(key, delta, n)
}

// Postcard reports a hop observation to the owning collector.
func (r *ClusterReporter) Postcard(key Key, hop, pathLen int) error {
	return r.reps[r.cluster.Owner(key)].Postcard(key, hop, pathLen)
}

// Append adds data to the collector owning the list.
func (r *ClusterReporter) Append(list uint32, data []byte) error {
	return r.reps[r.cluster.OwnerOfList(list)].Append(list, data)
}

// KeyWriteImmediate stores data under key on the owning collector with
// the immediate flag set, raising a push notification there (consume it
// from that collector's Events channel).
func (r *ClusterReporter) KeyWriteImmediate(key Key, data []byte, n int) error {
	return r.reps[r.cluster.Owner(key)].KeyWriteImmediate(key, data, n)
}

// PostcardValue reports an arbitrary per-hop value (e.g. queueing
// latency) to the owning collector.
func (r *ClusterReporter) PostcardValue(key Key, hop, pathLen int, value uint32) error {
	return r.reps[r.cluster.Owner(key)].PostcardValue(key, hop, pathLen, value)
}

// LookupValue queries the owning collector's Key-Write store.
func (c *Cluster) LookupValue(key Key, n int) ([]byte, bool, error) {
	return c.systems[c.Owner(key)].LookupValue(key, n)
}

// LookupPath queries the owning collector's Postcarding store.
func (c *Cluster) LookupPath(key Key, n int) ([]uint32, bool, error) {
	return c.systems[c.Owner(key)].LookupPath(key, n)
}

// LookupCount queries the owning collector's Key-Increment store.
func (c *Cluster) LookupCount(key Key, n int) (uint64, error) {
	return c.systems[c.Owner(key)].LookupCount(key, n)
}

// Flush flushes every collector's translator state.
func (c *Cluster) Flush() error {
	for _, sys := range c.systems {
		if err := sys.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats sums counters across collectors. MemInstrPerReport is the
// report-weighted average of the per-collector ratios, so the Fig. 8
// metric means the same thing for a cluster as for one collector.
func (c *Cluster) Stats() Stats {
	return aggregateStats(c.systems)
}

// aggregateStats combines per-collector stats for Cluster and HACluster:
// counters sum; MemInstrPerReport, a ratio, is averaged weighted by each
// collector's report count (summing ratios would overstate the metric by
// up to a factor of the cluster size).
func aggregateStats(systems []*System) Stats {
	var total Stats
	var memInstr float64 // report-weighted sum of per-collector ratios
	for _, sys := range systems {
		st := sys.Stats()
		total.Reports += st.Reports
		total.RDMAWrites += st.RDMAWrites
		total.RDMAAtomics += st.RDMAAtomics
		total.RateDropped += st.RateDropped
		total.Resyncs += st.Resyncs
		total.PostcardEmits += st.PostcardEmits
		total.AppendFlushes += st.AppendFlushes
		total.LinkDropped += st.LinkDropped
		memInstr += st.MemInstrPerReport * float64(st.Reports)
	}
	if total.Reports > 0 {
		total.MemInstrPerReport = memInstr / float64(total.Reports)
	}
	return total
}
