// Command dtaload drives the asynchronous sharded ingest engine with a
// synthetic workload and prints a throughput/drop report. It is the
// measurement harness for DTA's headline claim — ingestion limited by
// hardware, not collector CPUs — under adversarial input shapes: Zipf
// key skew, bursty on/off sources, incast and mixed primitives.
//
//	dtaload -profile zipf -shards 4 -reporters 8 -reports 200000
//	dtaload -profile incast -policy drop -queue 64 -chunk 16
//
// With -replicas ≥ 1 the run goes through the replicated HA cluster
// instead, and -schedule injects collector failures mid-run; after the
// run the cluster is rebalanced and every key the workload wrote is
// queried back, so the report shows what a failure actually cost:
//
//	dtaload -replicas 2 -schedule 'kill@0.25=1,restore@0.75=1'
//
// With R ≥ 2 the verification recovers the acknowledged writes through
// surviving replicas; with R = 1 the same schedule loses the dead
// collector's slice — run both to see the difference.
//
// The run is deterministic for a fixed -seed: the same per-shard report
// counts come out every time regardless of scheduling.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"dta"
	"dta/internal/loadgen"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
)

func main() {
	var (
		profile   = flag.String("profile", "uniform", "workload: uniform, zipf, bursty, incast, mixed")
		shards    = flag.Int("shards", 4, "collectors (engine shards)")
		reporters = flag.Int("reporters", 8, "concurrent reporter goroutines")
		reports   = flag.Int("reports", 100000, "reports per reporter")
		keys      = flag.Uint64("keys", 1<<16, "key-space size")
		seed      = flag.Int64("seed", 1, "workload seed")
		queue     = flag.Int("queue", 256, "per-shard chunk queue depth")
		chunk     = flag.Int("chunk", 32, "frames staged per chunk")
		batch     = flag.Int("batch", 16, "worker dequeue batch (chunks)")
		policy    = flag.String("policy", "block", "backpressure: block or drop")
		replicas  = flag.Int("replicas", 0, "replication factor R (0 = plain cluster, no HA)")
		schedule  = flag.String("schedule", "", "failure schedule, e.g. 'kill@0.25=1,restore@0.75=1' (needs -replicas)")
		verify    = flag.Int("verify", 20000, "max written keys to query back after an HA run (0 = skip)")
		frames    = flag.Bool("frames", false, "use the wire-level frame reporters instead of the structured fast path")
		walDir    = flag.String("wal", "", "write-ahead-log root directory (needs -replicas; enables exact log-based Append resync)")
		walSync   = flag.String("wal-sync", "none", "WAL sync policy: none, interval[=d], batch")

		walDegrade  = flag.Duration("wal-degrade", 0, "fsync latency bound above which the WAL degrades to flush-acks (0 = never)")
		chaosSeed   = flag.Int64("chaos-seed", 0, "chaos plane seed (0 = derive from -seed)")
		retryBudget = flag.Int("retry-budget", dta.DefaultRetryBudget, "max rebalance attempts while resyncs back off")
		autoReb     = flag.Bool("auto-rebalance", false, "rebalance automatically once a chaos heal arms it")
	)
	flag.Parse()

	prof, err := loadgen.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	prof.Keys = *keys

	cfg := dta.EngineConfig{QueueDepth: *queue, ChunkFrames: *chunk, Batch: *batch}
	switch *policy {
	case "block":
		cfg.Policy = dta.EngineBlock
	case "drop":
		cfg.Policy = dta.EngineDrop
	default:
		log.Fatalf("dtaload: unknown policy %q (want block or drop)", *policy)
	}

	sched, err := loadgen.ParseSchedule(*schedule)
	if err != nil {
		log.Fatal(err)
	}
	if len(sched) > 0 && *replicas < 1 {
		log.Fatal("dtaload: -schedule requires -replicas >= 1")
	}

	vals := make([]uint32, *reporters)
	for i := range vals {
		vals[i] = uint32(i + 1) // postcard values = switch IDs
	}
	opts := dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 18},
		Postcarding:  &dta.PostcardingOptions{Chunks: 1 << 16, Hops: 5, Values: vals},
		Append:       &dta.AppendOptions{Lists: 8, EntriesPerList: 1 << 16, EntrySize: 4, Batch: 16},
	}

	lcfg := loadgen.Config{
		Profile:   prof,
		Reporters: *reporters,
		Reports:   *reports,
		Seed:      *seed,
		Schedule:  sched,
	}

	path := "structured"
	if *frames {
		path = "frames"
	}
	fmt.Printf("profile=%s shards=%d reporters=%d reports/reporter=%d seed=%d policy=%s replicas=%d path=%s gomaxprocs=%d\n",
		prof.Kind, *shards, *reporters, *reports, *seed, *policy, *replicas, path, runtime.GOMAXPROCS(0))

	if *chaosSeed == 0 {
		*chaosSeed = *seed
	}
	if len(sched) > 0 {
		// The full reproduction recipe up front: the workload seed, the
		// chaos seed, and the explicit (flap-expanded) plan the run will
		// execute. Paste these back as flags to replay the run exactly.
		fmt.Printf("schedule: seed=%d chaos-seed=%d plan=%s\n", *seed, *chaosSeed, loadgen.FormatSchedule(sched))
	}

	if *walDir != "" && *replicas < 1 {
		log.Fatal("dtaload: -wal requires -replicas >= 1")
	}

	if *replicas >= 1 {
		runHA(opts, cfg, lcfg, haParams{
			shards: *shards, replicas: *replicas, verify: *verify, frames: *frames,
			walDir: *walDir, walSync: *walSync, walDegrade: *walDegrade,
			chaosSeed: *chaosSeed, retryBudget: *retryBudget, autoReb: *autoReb,
		})
		return
	}
	runPlain(opts, cfg, lcfg, *shards, *frames)
}

// haParams bundles the HA/chaos knobs runHA needs.
type haParams struct {
	shards, replicas, verify int
	frames                   bool
	walDir, walSync          string
	walDegrade               time.Duration
	chaosSeed                int64
	retryBudget              int
	autoReb                  bool
}

// newReporter picks the ingest representation the run drives: the
// structured zero-allocation fast path (default) or real wire frames.
func newReporter(eng *dta.Engine, id uint32, frames bool) loadgen.Reporter {
	if frames {
		return eng.FrameReporter(id)
	}
	return eng.Reporter(id)
}

// runPlain is the original single-owner cluster path.
func runPlain(opts dta.Options, cfg dta.EngineConfig, lcfg loadgen.Config, shards int, frames bool) {
	cluster, err := dta.NewCluster(shards, opts)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cluster.Engine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	lcfg.Drain = eng.Drain
	res, err := loadgen.Run(lcfg, func(i int) loadgen.Reporter {
		return newReporter(eng, uint32(i+1), frames)
	})
	if err != nil {
		log.Fatalf("dtaload: %v", err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("dtaload: close: %v", err)
	}
	printRun(res, eng)
	printShards(eng, func(i int) dta.Stats { return cluster.System(i).Stats() })
	printAckLatency(cluster.Tracer())
}

// runHA drives the replicated cluster, optionally injecting the failure
// schedule, then rebalances and verifies recovery of written keys.
func runHA(opts dta.Options, cfg dta.EngineConfig, lcfg loadgen.Config, p haParams) {
	hac, err := dta.NewHACluster(p.shards, p.replicas, opts)
	if err != nil {
		log.Fatal(err)
	}
	needsChaos := loadgen.ScheduleNeedsChaos(lcfg.Schedule)
	if needsChaos {
		// Before WithWAL: segment files are fault-wrapped at open.
		if _, err := hac.EnableChaos(p.chaosSeed); err != nil {
			log.Fatal(err)
		}
		hac.SetAutoRebalance(p.autoReb)
	}
	if p.walDir != "" {
		pol, err := dta.ParseWALPolicy(p.walSync)
		if err != nil {
			log.Fatal(err)
		}
		pol.DegradeFsync = p.walDegrade
		if err := hac.WithWAL(p.walDir, pol); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wal: logging to %s (sync=%s degrade=%s); Append resync is log-based (exact)\n",
			p.walDir, p.walSync, p.walDegrade)
	}
	eng, err := hac.Engine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	lcfg.Drain = eng.Drain
	// Built before the run so the first eval's delta window is
	// "run start → kill", not a degenerate instant.
	he := hac.HealthEval()
	lcfg.Control = func(ev loadgen.Event) error {
		switch ev.Action {
		case loadgen.Kill:
			fmt.Printf("event: kill collector %d\n", ev.Collector)
			if err := hac.SetDown(ev.Collector); err != nil {
				return err
			}
			// The /healthz verdict must flip unhealthy the moment a
			// replica is down — assert it at the injection point.
			printHealth("kill", he.Eval())
			return nil
		case loadgen.Restore:
			// Evaluated BEFORE SetUp: the outage window's verdict, with
			// the degraded-write delta the failure cost still visible.
			printHealth("outage", he.Eval())
			fmt.Printf("event: restore collector %d\n", ev.Collector)
			return hac.SetUp(ev.Collector)
		case loadgen.Partition:
			fmt.Printf("event: partition reporter→collector %d\n", ev.Collector)
			return hac.PartitionReporter(ev.Collector)
		case loadgen.PartitionPeer:
			fmt.Printf("event: partition peers %d↔%d\n", ev.Collector, ev.Peer)
			return hac.PartitionPeers(ev.Collector, ev.Peer)
		case loadgen.SlowDisk:
			fmt.Printf("event: slowdisk collector %d fsync+=%s\n", ev.Collector, ev.FsyncLat)
			return hac.SlowDisk(ev.Collector, ev.FsyncLat)
		case loadgen.Skew:
			fmt.Printf("event: skew collector %d clock by %s\n", ev.Collector, ev.Skew)
			return hac.SetClockSkew(ev.Collector, ev.Skew)
		case loadgen.Heal:
			if ev.Collector < 0 {
				fmt.Println("event: heal cluster-wide")
			} else {
				fmt.Printf("event: heal collector %d\n", ev.Collector)
			}
			return hac.HealChaos(ev.Collector)
		}
		return fmt.Errorf("dtaload: unknown action %v", ev.Action)
	}
	res, err := loadgen.Run(lcfg, func(i int) loadgen.Reporter {
		return newReporter(eng, uint32(i+1), p.frames)
	})
	if err != nil {
		log.Fatalf("dtaload: %v", err)
	}
	printRun(res, eng)

	// First verification pass BEFORE Rebalance: failover queries hit
	// whatever divergence the failure schedule left behind, and
	// read-repair heals it query by query — the ReadRepairs delta is
	// the divergence the pass observed and fixed on the spot.
	if p.verify > 0 {
		verifyHA(hac, lcfg, p.verify, "verify (pre-rebalance, read-repairing)")
		fmt.Printf("read-repairs so far: %d\n", hac.HAStats().ReadRepairs)
	}

	// The pre-rebalance verdict closes the recovery window (restore →
	// here): the restored member is back up but still stale, and any
	// load-tail degradation lands in this delta, not the next one.
	if len(lcfg.Schedule) > 0 {
		printHealth("pre-rebalance", he.Eval())
	}

	if hac.ChaosActive() {
		// Faults the schedule never healed are still in: a first
		// rebalance attempt is expected to defer the blocked targets
		// (observable as resync-retries), then the faults are cleared
		// and the retried rebalance below must converge.
		if err := hac.Rebalance(); err != nil {
			fmt.Printf("rebalance (chaos active): %v\n", err)
		}
		fmt.Println("healing remaining chaos faults")
		if err := hac.HealChaos(-1); err != nil {
			log.Fatalf("dtaload: heal: %v", err)
		}
	}
	rebalanced := false
	if p.autoReb {
		ran, err := hac.AutoRebalance(p.retryBudget)
		if err != nil {
			log.Fatalf("dtaload: auto-rebalance: %v", err)
		}
		if ran {
			fmt.Println("auto-rebalance: armed by chaos heal, ran")
			rebalanced = true
		}
	}
	if !rebalanced {
		if err := hac.RebalanceUntilHealed(p.retryBudget); err != nil {
			log.Fatalf("dtaload: rebalance: %v", err)
		}
	}
	// After the rebalance healed the cluster the verdict must flip back:
	// replicas up, the window's delta clean of degradation. The flight
	// recorder must show the failure arc as one causal chain.
	if len(lcfg.Schedule) > 0 {
		printHealth("post-rebalance", he.Eval())
		printFailoverChains(hac, p.walDir != "")
	}

	hst := hac.HAStats()
	fmt.Printf("ha: degraded-writes=%d lost-writes=%d replica-skips=%d degraded-queries=%d failover-queries=%d\n",
		hst.DegradedWrites, hst.LostWrites, hst.ReplicaSkips, hst.DegradedQueries, hst.FailoverQueries)
	fmt.Printf("ha: read-repairs=%d resyncs=%d resync-slots=%d resync-slots-skipped=%d append-entries-resynced=%d resync-retries=%d\n\n",
		hst.ReadRepairs, hst.Resyncs, hst.ResyncSlots, hst.ResyncSlotsSkipped, hst.AppendEntriesResynced, hst.ResyncRetries)

	printShards(eng, func(i int) dta.Stats { return hac.System(i).Stats() })
	printAckLatency(hac.Tracer())

	var verdictErr error
	if p.verify > 0 {
		fmt.Printf("\nverify-stamp: seed=%d chaos-seed=%d schedule=%q\n",
			lcfg.Seed, p.chaosSeed, loadgen.FormatSchedule(lcfg.Schedule))
		vr := verifyHA(hac, lcfg, p.verify, "verify (post-rebalance)")
		apct, hasAppends := verifyAppendLists(hac, lcfg)
		if len(lcfg.Schedule) > 0 {
			verdictErr = chaosVerdict(hac, lcfg, p, vr, apct, hasAppends)
		}
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("dtaload: close: %v", err)
	}
	if verdictErr != nil {
		os.Exit(1)
	}
}

// verifyResult is one verifyHA pass's tally.
type verifyResult struct {
	keys, found, correct, unreachable int
}

// chaosVerdict prints the run's chaos evidence and a grep-able
// PASS/FAIL verdict line asserting the exactness contract: after the
// final rebalance every surviving key reads back its exact value, no
// owner set is unreachable, Append lists recovered fully, and slow-disk
// runs actually exercised the WAL's degraded-ack machinery.
func chaosVerdict(hac *dta.HACluster, lcfg loadgen.Config, p haParams, vr verifyResult, appendPct float64, hasAppends bool) error {
	var degradeEnter, degradeExit int
	if j := hac.Journal(); j != nil {
		events, _, _ := j.Since(0, nil)
		for i := range events {
			switch events[i].Type {
			case journal.EvWALDegradeEnter:
				degradeEnter++
			case journal.EvWALDegradeExit:
				degradeExit++
			}
		}
	}
	var degradedAcks uint64
	if p.walDir != "" {
		for i := 0; i < hac.Size(); i++ {
			if st, ok := hac.System(i).WALStats(); ok {
				degradedAcks += st.DegradedAcks
			}
		}
	}
	fmt.Printf("chaos: resync-retries=%d degrade-enter=%d degrade-exit=%d degraded-acks=%d\n",
		hac.HAStats().ResyncRetries, degradeEnter, degradeExit, degradedAcks)

	// The Key-Write store is probabilistic by design: hash-slot
	// collisions evict a sliver of keys even in a fault-free run (the
	// paper's best-effort contract), so convergence is asserted as a
	// high found floor with every found key byte-exact — not found ==
	// keys. Appends are log-replayed and must recover exactly.
	const minFoundPct = 99.9
	var fails []string
	if pct := 100 * float64(vr.found) / float64(max(vr.keys, 1)); pct < minFoundPct {
		fails = append(fails, fmt.Sprintf("found %d/%d keys (%.2f%% < %.1f%%)", vr.found, vr.keys, pct, minFoundPct))
	}
	if vr.correct != vr.found {
		fails = append(fails, fmt.Sprintf("correct %d/%d found keys", vr.correct, vr.found))
	}
	if vr.unreachable != 0 {
		fails = append(fails, fmt.Sprintf("%d unreachable owner sets", vr.unreachable))
	}
	if hasAppends && appendPct < 100 {
		fails = append(fails, fmt.Sprintf("append recovery %.2f%%", appendPct))
	}
	if hadSlowDisk(lcfg.Schedule) && p.walDegrade > 0 && p.walDir != "" {
		if degradeEnter == 0 || degradeExit == 0 {
			fails = append(fails, fmt.Sprintf("degraded-ack never cycled (enter=%d exit=%d)", degradeEnter, degradeExit))
		}
		if degradedAcks == 0 {
			fails = append(fails, "no degraded acks recorded")
		}
	}
	if len(fails) > 0 {
		fmt.Printf("chaos-verdict: FAIL (%s)\n", strings.Join(fails, "; "))
		return errors.New("chaos verdict failed")
	}
	fmt.Println("chaos-verdict: PASS")
	return nil
}

// hadSlowDisk reports whether the schedule injected a disk fault.
func hadSlowDisk(evs []loadgen.Event) bool {
	for _, ev := range evs {
		if ev.Action == loadgen.SlowDisk && ev.FsyncLat > 0 {
			return true
		}
	}
	return false
}

// verifyHA queries back the keys the deterministic workload wrote and
// reports how many survived the failure scenario.
func verifyHA(hac *dta.HACluster, lcfg loadgen.Config, limit int, stage string) verifyResult {
	keys := loadgen.WrittenKeys(lcfg)
	if len(keys) > limit {
		keys = keys[:limit]
	}
	redundancy := lcfg.Defaulted().Profile.Redundancy
	var found, correct, unreachable int
	for _, k := range keys {
		data, ok, err := hac.LookupValue(dta.KeyFromUint64(k), redundancy)
		switch {
		case errors.Is(err, dta.ErrAllReplicasDown):
			// A permanently dead owner set is a cost to report, not a
			// harness failure: the key counts as lost.
			unreachable++
			continue
		case err != nil:
			log.Fatalf("dtaload: verify key %d: %v", k, err)
		case !ok:
			continue
		}
		found++
		want := loadgen.KeyWriteValue(k)
		if bytes.Equal(data, want[:]) {
			correct++
		}
	}
	pct := func(n int) float64 {
		if len(keys) == 0 {
			return 0
		}
		return 100 * float64(n) / float64(len(keys))
	}
	fmt.Printf("\n%s: keys=%d found=%d (%.2f%%) correct=%d (%.2f%%) unreachable=%d\n",
		stage, len(keys), found, pct(found), correct, pct(correct), unreachable)
	return verifyResult{keys: len(keys), found: found, correct: correct, unreachable: unreachable}
}

// verifyAppendLists replays the workload streams to learn what every
// Append list should hold, then reads each live owner's ring back and
// reports the worst per-owner recovery. After a kill/rejoin schedule
// plus Rebalance, the rejoined owner's rings have been resynced from
// surviving replicas, so recovery should be ~100% for every owner (with
// several concurrent reporters the replicas' arrival orders can differ
// around the failure boundary, costing a sliver of the suffix — the
// same best-effort hazard failover polling has).
func verifyAppendLists(hac *dta.HACluster, lcfg loadgen.Config) (float64, bool) {
	expected := loadgen.AppendedKeys(lcfg)
	if len(expected) == 0 {
		return 100, false // profile never appends
	}
	totalWant, totalGot := 0, 0
	worst := 100.0
	for list, keys := range expected {
		want := make(map[[4]byte]int, len(keys))
		for _, k := range keys {
			want[loadgen.KeyWriteValue(k)]++
		}
		owners := hac.OwnersOfList(list)
		for _, o := range owners {
			sys := hac.System(o)
			store := sys.Host().AppendStore()
			if store == nil {
				continue
			}
			cfg := store.Config()
			written := sys.Translator().AppendBatcher().Written(int(list))
			window := written
			if window > uint64(cfg.EntriesPerList) {
				window = uint64(cfg.EntriesPerList) // the ring keeps one lap
			}
			remaining := make(map[[4]byte]int, len(want))
			for v, n := range want {
				remaining[v] = n
			}
			got := 0
			start := written - window
			for i := uint64(0); i < window; i++ {
				idx := int((start + i) % uint64(cfg.EntriesPerList))
				var e [4]byte
				copy(e[:], store.Entry(int(list), idx))
				if remaining[e] > 0 {
					remaining[e]--
					got++
				}
			}
			pct := 100.0
			if len(keys) > 0 {
				pct = 100 * float64(got) / float64(len(keys))
			}
			if pct < worst {
				worst = pct
			}
			totalWant += len(keys)
			totalGot += got
		}
	}
	pct := 100.0
	if totalWant > 0 {
		pct = 100 * float64(totalGot) / float64(totalWant)
	}
	fmt.Printf("append-verify: lists=%d expected-entries/owner-pair=%d recovered=%d (%.2f%%) worst-owner=%.2f%%\n",
		len(expected), totalWant, totalGot, pct, worst)
	return worst, true
}

func printRun(res loadgen.Result, eng *dta.Engine) {
	fmt.Printf("submitted=%d elapsed=%s throughput=%.0f reports/s events-fired=%d\n",
		res.Submitted, res.Elapsed.Round(time.Microsecond), res.Throughput(), res.EventsFired)
	est := eng.Stats()
	attempts := est.Enqueued + est.Dropped
	dropPct := 0.0
	if attempts > 0 {
		dropPct = 100 * float64(est.Dropped) / float64(attempts)
	}
	fmt.Printf("ingested=%d dropped=%d (%.1f%%)\n\n", est.Processed, est.Dropped, dropPct)
}

// printHealth renders one /healthz evaluation as a grep-able line, with
// every failing rule's reason inline.
func printHealth(stage string, st dta.HealthStatus) {
	fmt.Printf("health@%s: healthy=%v", stage, st.Healthy)
	for _, r := range st.Rules {
		if !r.Healthy {
			fmt.Printf(" [%s: %s]", r.Name, r.Reason)
		}
	}
	fmt.Println()
}

// printFailoverChains scans the flight recorder for failure arcs and
// reports whether each kill's events — SetDown, the Resync that healed
// it, and (with a WAL attached) the post-resync Checkpoint — share one
// causality ID. This is the end-to-end assertion that the journal links
// cause to repair, not just that events were emitted.
func printFailoverChains(hac *dta.HACluster, walAttached bool) {
	j := hac.Journal()
	if j == nil {
		return
	}
	events, _, _ := j.Since(0, nil)
	type arc struct {
		collector int16
		setDown   bool
		resync    bool
		ckpt      bool
	}
	arcs := map[uint64]*arc{}
	for i := range events {
		e := &events[i]
		if e.Cause == 0 {
			continue
		}
		a := arcs[e.Cause]
		if a == nil {
			a = &arc{collector: -1}
			arcs[e.Cause] = a
		}
		switch e.Type {
		case journal.EvSetDown:
			a.setDown = true
			a.collector = e.Collector
		case journal.EvResyncEnd:
			a.resync = true
		case journal.EvCheckpoint:
			a.ckpt = true
		}
	}
	linked := 0
	for cause, a := range arcs {
		if !a.setDown || !a.resync {
			continue
		}
		if walAttached && !a.ckpt {
			fmt.Printf("causal-chain: INCOMPLETE — SetDown→Resync linked but no Checkpoint (cause=%d, collector=c%d)\n",
				cause, a.collector)
			continue
		}
		steps := "SetDown→Resync"
		if a.ckpt {
			steps = "SetDown→Resync→Checkpoint"
		}
		fmt.Printf("causal-chain: %s linked (cause=%d, collector=c%d)\n", steps, cause, a.collector)
		linked++
	}
	if linked == 0 {
		fmt.Println("causal-chain: INCOMPLETE — no cause links SetDown to its Resync")
	}
}

// printAckLatency reads every published data-plane trace out of the
// deployment's tracer and prints one grep-able submit→ack verdict line:
//
//	ack-latency: p50=412µs p99=2.1ms max=8.7ms dominant=wal_write→fsync (37 traces)
//
// The dominant segment is the inter-stage gap that contributed the most
// total time across all sampled traces — the stage to blame when the
// tail is slow. Stamps are sorted by time, not enum order, because the
// WAL-ring handoff lands before emit/translate on the chronological
// path. Silent when telemetry is off or nothing was sampled.
func printAckLatency(trc *dta.TracePipeline) {
	if trc == nil {
		return
	}
	buf := make([]trace.Record, 4096)
	recs, _, _ := trc.Since(0, buf)
	if len(recs) == 0 {
		return
	}
	totals := make([]float64, 0, len(recs))
	segTotal := map[string]float64{}
	type stamp struct {
		name string
		at   int64
	}
	for i := range recs {
		r := &recs[i]
		totals = append(totals, float64(r.Total()))
		stamps := make([]stamp, 0, trace.NumStages)
		for s := 0; s < trace.NumStages; s++ {
			if v := r.TS[s]; v != 0 {
				stamps = append(stamps, stamp{trace.Stage(s).String(), v})
			}
		}
		sort.Slice(stamps, func(a, b int) bool { return stamps[a].at < stamps[b].at })
		for j := 1; j < len(stamps); j++ {
			segTotal[stamps[j-1].name+"→"+stamps[j].name] += float64(stamps[j].at - stamps[j-1].at)
		}
	}
	sort.Float64s(totals)
	q := func(p float64) time.Duration {
		return time.Duration(totals[int(p*float64(len(totals)-1))])
	}
	dominant, best := "none", 0.0
	for name, ns := range segTotal {
		if ns > best {
			best, dominant = ns, name
		}
	}
	fmt.Printf("ack-latency: p50=%s p99=%s max=%s dominant=%s (%d traces)\n",
		q(0.50).Round(time.Microsecond), q(0.99).Round(time.Microsecond),
		q(1.0).Round(time.Microsecond), dominant, len(recs))
}

func printShards(eng *dta.Engine, sysStats func(i int) dta.Stats) {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "shard\tenqueued\tprocessed\tdropped\tbatches\tflushes\treports\trdma-writes\trdma-atomics\trate-dropped")
	for i, st := range eng.ShardStats() {
		ss := sysStats(i)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i, st.Enqueued, st.Processed, st.Dropped, st.Batches, st.Flushes,
			ss.Reports, ss.RDMAWrites, ss.RDMAAtomics, ss.RateDropped)
	}
	w.Flush()
}
