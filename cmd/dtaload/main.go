// Command dtaload drives the asynchronous sharded ingest engine with a
// synthetic workload and prints a throughput/drop report. It is the
// measurement harness for DTA's headline claim — ingestion limited by
// hardware, not collector CPUs — under adversarial input shapes: Zipf
// key skew, bursty on/off sources, incast and mixed primitives.
//
//	dtaload -profile zipf -shards 4 -reporters 8 -reports 200000
//	dtaload -profile incast -policy drop -queue 64 -chunk 16
//
// The run is deterministic for a fixed -seed: the same per-shard report
// counts come out every time regardless of scheduling.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"dta"
	"dta/internal/loadgen"
)

func main() {
	var (
		profile   = flag.String("profile", "uniform", "workload: uniform, zipf, bursty, incast, mixed")
		shards    = flag.Int("shards", 4, "collectors (engine shards)")
		reporters = flag.Int("reporters", 8, "concurrent reporter goroutines")
		reports   = flag.Int("reports", 100000, "reports per reporter")
		keys      = flag.Uint64("keys", 1<<16, "key-space size")
		seed      = flag.Int64("seed", 1, "workload seed")
		queue     = flag.Int("queue", 256, "per-shard chunk queue depth")
		chunk     = flag.Int("chunk", 32, "frames staged per chunk")
		batch     = flag.Int("batch", 16, "worker dequeue batch (chunks)")
		policy    = flag.String("policy", "block", "backpressure: block or drop")
	)
	flag.Parse()

	prof, err := loadgen.ProfileByName(*profile)
	if err != nil {
		log.Fatal(err)
	}
	prof.Keys = *keys

	cfg := dta.EngineConfig{QueueDepth: *queue, ChunkFrames: *chunk, Batch: *batch}
	switch *policy {
	case "block":
		cfg.Policy = dta.EngineBlock
	case "drop":
		cfg.Policy = dta.EngineDrop
	default:
		log.Fatalf("dtaload: unknown policy %q (want block or drop)", *policy)
	}

	vals := make([]uint32, *reporters)
	for i := range vals {
		vals[i] = uint32(i + 1) // postcard values = switch IDs
	}
	cluster, err := dta.NewCluster(*shards, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 18},
		Postcarding:  &dta.PostcardingOptions{Chunks: 1 << 16, Hops: 5, Values: vals},
		Append:       &dta.AppendOptions{Lists: 8, EntriesPerList: 1 << 16, EntrySize: 4, Batch: 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cluster.Engine(cfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := loadgen.Run(loadgen.Config{
		Profile:   prof,
		Reporters: *reporters,
		Reports:   *reports,
		Seed:      *seed,
		Drain:     eng.Drain,
	}, func(i int) loadgen.Reporter {
		return eng.Reporter(uint32(i + 1))
	})
	if err != nil {
		log.Fatalf("dtaload: %v", err)
	}
	if err := eng.Close(); err != nil {
		log.Fatalf("dtaload: close: %v", err)
	}

	est := eng.Stats()
	fmt.Printf("profile=%s shards=%d reporters=%d reports/reporter=%d seed=%d policy=%s gomaxprocs=%d\n",
		prof.Kind, *shards, *reporters, *reports, *seed, *policy, runtime.GOMAXPROCS(0))
	fmt.Printf("submitted=%d elapsed=%s throughput=%.0f reports/s\n",
		res.Submitted, res.Elapsed.Round(time.Microsecond), res.Throughput())
	attempts := est.Enqueued + est.Dropped
	dropPct := 0.0
	if attempts > 0 {
		dropPct = 100 * float64(est.Dropped) / float64(attempts)
	}
	fmt.Printf("ingested=%d dropped=%d (%.1f%%)\n\n", est.Processed, est.Dropped, dropPct)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "shard\tenqueued\tprocessed\tdropped\tbatches\tflushes\treports\trdma-writes\trdma-atomics\trate-dropped")
	for i, st := range eng.ShardStats() {
		ss := cluster.System(i).Stats()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i, st.Enqueued, st.Processed, st.Dropped, st.Batches, st.Flushes,
			ss.Reports, ss.RDMAWrites, ss.RDMAAtomics, ss.RateDropped)
	}
	w.Flush()
}
