package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dta"
)

// JSON benchmark mode: runs the core ingest benchmark suite with
// testing.Benchmark and writes machine-readable results, so the
// repository's performance trajectory is recorded (BENCH_results.json)
// and comparable across commits. The suite mirrors the
// BenchmarkEngine_* benchmarks in bench_test.go: the synchronous path,
// the frame-based async path (baseline representation) and the
// structured zero-allocation async path, at 1 and 4 shards.

// BenchResult is one benchmark measurement.
type BenchResult struct {
	Name          string  `json:"name"`
	Path          string  `json:"path"` // "sync", "frame", "structured" or "ha"
	Shards        int     `json:"shards"`
	Replicas      int     `json:"replicas,omitempty"` // HA suite: replication factor R
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	// ShardUtilization is each shard worker's busy fraction over the
	// measurement wall clock (the dta_engine_batch_ns histogram sum /
	// elapsed), recorded for async rows. Utilizations summing well below
	// GOMAXPROCS with a flat scaling curve point at queue-bound or
	// producer-bound ingest; summing near the physical core count with a
	// flat curve points at hardware timesharing.
	ShardUtilization []float64 `json:"shard_utilization,omitempty"`
}

// BenchComparison relates a baseline measurement to an optimised one.
type BenchComparison struct {
	Name          string  `json:"name"`
	Baseline      string  `json:"baseline"`
	Optimized     string  `json:"optimized"`
	SpeedupPct    float64 `json:"speedup_pct"` // +X% reports/sec over baseline
	BaselineNsOp  float64 `json:"baseline_ns_per_op"`
	OptimizedNsOp float64 `json:"optimized_ns_per_op"`
}

// BenchReport is the file-level schema of BENCH_results.json.
type BenchReport struct {
	Schema      int               `json:"schema"`
	Generated   string            `json:"generated"`
	GoVersion   string            `json:"go_version"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	NumCPU      int               `json:"num_cpu"`
	// DegradedCapture marks a run whose physical parallelism was below
	// GOMAXPROCS: goroutines timeshared cores, so async rows, scaling
	// curves and overhead comparisons read as upper bounds, not
	// steady-state figures. Downstream consumers should not regress-gate
	// on a degraded capture.
	DegradedCapture bool   `json:"degraded_capture,omitempty"`
	GitRev          string `json:"git_rev,omitempty"`
	Note        string            `json:"note"`
	Results     []BenchResult     `json:"results"`
	Comparisons []BenchComparison `json:"comparisons"`
}

// gitRev resolves the working tree's HEAD (best-effort: benches can run
// from an exported tarball with no git at all).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchCluster builds the cluster geometry shared by every ingest
// benchmark (identical to bench_test.go's engineBenchCluster).
func benchCluster(shards int) (*dta.Cluster, error) {
	return dta.NewCluster(shards, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
}

// benchSyncNoTelemetry is benchSync with the telemetry registry off —
// the uninstrumented baseline the telemetry_overhead comparison reads
// against (the on-variant is benchSync: telemetry defaults on).
func benchSyncNoTelemetry(b *testing.B) {
	cl, err := dta.NewCluster(1, dta.Options{
		KeyWrite:         &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement:     &dta.KeyIncrementOptions{Slots: 1 << 16},
		DisableTelemetry: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	rep := cl.Reporter(1)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSync measures the synchronous single-collector call chain.
func benchSync(b *testing.B) {
	cl, err := benchCluster(1)
	if err != nil {
		b.Fatal(err)
	}
	rep := cl.Reporter(1)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAsync measures the async engine, frame or structured path.
func benchAsync(b *testing.B, shards int, frames bool) {
	benchAsyncWAL(b, shards, frames, nil)
}

// benchAsyncWAL is benchAsync with an optional per-collector
// write-ahead log, measuring the durability overhead per sync policy.
func benchAsyncWAL(b *testing.B, shards int, frames bool, pol *dta.WALPolicy) {
	cl, err := benchCluster(shards)
	if err != nil {
		b.Fatal(err)
	}
	if pol != nil {
		dir, err := os.MkdirTemp("", "dtabench-wal-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		for i := 0; i < shards; i++ {
			if err := cl.System(i).WithWAL(fmt.Sprintf("%s/wal-%d", dir, i), *pol); err != nil {
				b.Fatal(err)
			}
		}
	}
	eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 256, Batch: 64})
	if err != nil {
		b.Fatal(err)
	}
	const producers = 4
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep := eng.Reporter(uint32(g + 1))
			if frames {
				rep = eng.FrameReporter(uint32(g + 1))
			}
			data := []byte{1, 2, 3, 4}
			for i := g; i < b.N; i += producers {
				if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
					b.Error(err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				b.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	wall := time.Since(start)
	b.StopTimer()
	lastUtil = shardUtilization(cl, shards, wall)
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

// lastUtil holds the most recent benchAsyncWAL run's per-shard worker
// utilization. testing.Benchmark re-invokes the function with growing N;
// the final (longest) run's figure is the one runJSONBench records.
var lastUtil []float64

// shardUtilization reads each shard worker's busy nanoseconds — the
// unsampled dta_engine_batch_ns histogram sum — out of the cluster's
// telemetry registry and divides by the measurement wall clock.
func shardUtilization(cl *dta.Cluster, shards int, wall time.Duration) []float64 {
	reg := cl.Metrics()
	if reg == nil || wall <= 0 {
		return nil
	}
	snap := reg.Snapshot()
	util := make([]float64, shards)
	for i := range util {
		v := snap.Find("dta_engine_batch_ns", dta.ObsLabel{Key: "shard", Value: strconv.Itoa(i)})
		if v == nil {
			return nil
		}
		util[i] = float64(v.Sum) / float64(wall.Nanoseconds())
	}
	return util
}

// benchHA measures end-to-end replicated ingest through the HA engine
// at replication factor r over 4 collectors (structured fast path).
func benchHA(b *testing.B, replicas int) {
	hac, err := dta.NewHACluster(4, replicas, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := hac.Engine(dta.EngineConfig{QueueDepth: 256, Batch: 64})
	if err != nil {
		b.Fatal(err)
	}
	rep := eng.Reporter(1)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), data, 2); err != nil {
			b.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if err := eng.Close(); err != nil {
		b.Fatal(err)
	}
}

func toResult(name, path string, shards int, r testing.BenchmarkResult) BenchResult {
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	rps := 0.0
	if ns > 0 {
		rps = 1e9 / ns
	}
	return BenchResult{
		Name:          name,
		Path:          path,
		Shards:        shards,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Iterations:    r.N,
		NsPerOp:       ns,
		ReportsPerSec: rps,
		AllocsPerOp:   r.AllocsPerOp(),
		BytesPerOp:    r.AllocedBytesPerOp(),
	}
}

// runJSONBench runs the suite and writes the report to out ("-" for
// stdout).
func runJSONBench(out string) error {
	type spec struct {
		name     string
		path     string
		shards   int
		replicas int
		fn       func(b *testing.B)
	}
	// The shard sweep (1/2/4 structured) records the shard-scaling
	// curve — meaningful only at GOMAXPROCS >= 4, which is how CI runs
	// this capture; the HA sweep (R=1/2/3) records the replication
	// fan-out cost through the same engine.
	specs := []spec{
		{"Engine_Sync1Shard", "sync", 1, 0, benchSync},
		{"Engine_Sync1Shard_NoTelemetry", "sync", 1, 0, benchSyncNoTelemetry},
		{"Engine_AsyncFrame1Shard", "frame", 1, 0, func(b *testing.B) { benchAsync(b, 1, true) }},
		{"Engine_AsyncFrame4Shard", "frame", 4, 0, func(b *testing.B) { benchAsync(b, 4, true) }},
		{"Engine_Async1Shard", "structured", 1, 0, func(b *testing.B) { benchAsync(b, 1, false) }},
		{"Engine_Async2Shard", "structured", 2, 0, func(b *testing.B) { benchAsync(b, 2, false) }},
		{"Engine_Async4Shard", "structured", 4, 0, func(b *testing.B) { benchAsync(b, 4, false) }},
		{"HA_EngineIngest_R1", "ha", 4, 1, func(b *testing.B) { benchHA(b, 1) }},
		{"HA_EngineIngest_R2", "ha", 4, 2, func(b *testing.B) { benchHA(b, 2) }},
		{"HA_EngineIngest_R3", "ha", 4, 3, func(b *testing.B) { benchHA(b, 3) }},
		// Durability suite: the structured 4-shard path with a WAL per
		// collector, across the sync-policy spectrum (WAL-off baseline is
		// Engine_Async4Shard above).
		{"Engine_Async4Shard_WALNone", "structured+wal", 4, 0, func(b *testing.B) {
			benchAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncNone})
		}},
		{"Engine_Async4Shard_WALInterval", "structured+wal", 4, 0, func(b *testing.B) {
			benchAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncInterval, Interval: 10 * time.Millisecond})
		}},
		{"Engine_Async4Shard_WALBatch", "structured+wal", 4, 0, func(b *testing.B) {
			benchAsyncWAL(b, 4, false, &dta.WALPolicy{Mode: dta.WALSyncBatch})
		}},
	}
	report := BenchReport{
		Schema:          1,
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		DegradedCapture: runtime.NumCPU() < runtime.GOMAXPROCS(0),
		GitRev:          gitRev(),
		Note: "Key-Write redundancy 2; async rows drive 4 producer goroutines. " +
			"frame = serialise/parse wire frames per report (baseline ingest " +
			"representation); structured = zero-allocation staged-report fast path. " +
			"Engine_Async{1,2,4}Shard is the shard-scaling curve (capture at " +
			"GOMAXPROCS >= 4); HA_EngineIngest_R{1,2,3} is replicated fan-out " +
			"over 4 collectors. structured+wal rows re-run the 4-shard structured " +
			"path with a per-collector write-ahead log under each sync policy " +
			"(none / interval=10ms / every-batch); wal_overhead_* comparisons " +
			"read as durability cost against the WAL-off baseline. The WAL's " +
			"ingest-path cost is one record copy into a lock-free ring (encoding, " +
			"CRC and writes happen on a background flusher), so the overhead " +
			"overlaps with ingest given spare cores; a capture on fewer physical " +
			"cores than GOMAXPROCS timeshares the flusher and reads as an upper " +
			"bound. Engine_Sync1Shard_NoTelemetry is the DisableTelemetry " +
			"baseline for telemetry_overhead_sync (self-telemetry cost; bound " +
			"< 3%). shard_utilization is each worker's busy fraction " +
			"(dta_engine_batch_ns sum / wall clock) on async rows; num_cpu " +
			"records the physical parallelism the capture actually had.",
	}
	byName := map[string]BenchResult{}
	for _, s := range specs {
		fmt.Fprintf(os.Stderr, "bench %s...\n", s.name)
		lastUtil = nil
		res := toResult(s.name, s.path, s.shards, testing.Benchmark(s.fn))
		res.Replicas = s.replicas
		res.ShardUtilization = lastUtil
		if len(lastUtil) > 0 {
			fmt.Fprintf(os.Stderr, "  shard utilization:")
			for i, u := range lastUtil {
				fmt.Fprintf(os.Stderr, " %d=%.0f%%", i, 100*u)
			}
			fmt.Fprintln(os.Stderr)
		}
		report.Results = append(report.Results, res)
		byName[s.name] = res
	}
	for _, shards := range []int{1, 4} {
		base := byName[fmt.Sprintf("Engine_AsyncFrame%dShard", shards)]
		opt := byName[fmt.Sprintf("Engine_Async%dShard", shards)]
		if base.NsPerOp == 0 || opt.NsPerOp == 0 {
			continue
		}
		report.Comparisons = append(report.Comparisons, BenchComparison{
			Name:          fmt.Sprintf("structured_vs_frame_%dshard", shards),
			Baseline:      base.Name,
			Optimized:     opt.Name,
			SpeedupPct:    (base.NsPerOp/opt.NsPerOp - 1) * 100,
			BaselineNsOp:  base.NsPerOp,
			OptimizedNsOp: opt.NsPerOp,
		})
	}
	// WAL-on vs WAL-off at each sync policy: SpeedupPct is negative by
	// construction — it reads as the durability overhead.
	if base := byName["Engine_Async4Shard"]; base.NsPerOp > 0 {
		for _, pol := range []string{"None", "Interval", "Batch"} {
			opt := byName["Engine_Async4Shard_WAL"+pol]
			if opt.NsPerOp == 0 {
				continue
			}
			report.Comparisons = append(report.Comparisons, BenchComparison{
				Name:          "wal_overhead_" + strings.ToLower(pol),
				Baseline:      base.Name,
				Optimized:     opt.Name,
				SpeedupPct:    (base.NsPerOp/opt.NsPerOp - 1) * 100,
				BaselineNsOp:  base.NsPerOp,
				OptimizedNsOp: opt.NsPerOp,
			})
		}
	}
	// Telemetry overhead: instrumented sync ingest against the
	// DisableTelemetry baseline (SpeedupPct negative = overhead; the
	// acceptance bound is |overhead| < 3%, also pinned by
	// TestObsOverheadUnder3Pct).
	if base := byName["Engine_Sync1Shard_NoTelemetry"]; base.NsPerOp > 0 {
		if opt := byName["Engine_Sync1Shard"]; opt.NsPerOp > 0 {
			report.Comparisons = append(report.Comparisons, BenchComparison{
				Name:          "telemetry_overhead_sync",
				Baseline:      base.Name,
				Optimized:     opt.Name,
				SpeedupPct:    (base.NsPerOp/opt.NsPerOp - 1) * 100,
				BaselineNsOp:  base.NsPerOp,
				OptimizedNsOp: opt.NsPerOp,
			})
		}
	}
	// The shard-scaling curve as comparisons against the 1-shard point.
	if base := byName["Engine_Async1Shard"]; base.NsPerOp > 0 {
		for _, shards := range []int{2, 4} {
			opt := byName[fmt.Sprintf("Engine_Async%dShard", shards)]
			if opt.NsPerOp == 0 {
				continue
			}
			report.Comparisons = append(report.Comparisons, BenchComparison{
				Name:          fmt.Sprintf("shard_scaling_1to%d", shards),
				Baseline:      base.Name,
				Optimized:     opt.Name,
				SpeedupPct:    (base.NsPerOp/opt.NsPerOp - 1) * 100,
				BaselineNsOp:  base.NsPerOp,
				OptimizedNsOp: opt.NsPerOp,
			})
		}
	}
	// Human-readable comparison summary, with the degraded-capture caveat
	// printed right next to the figures it undermines.
	for _, c := range report.Comparisons {
		fmt.Fprintf(os.Stderr, "compare %-28s %+.1f%% (%.1f → %.1f ns/op)\n",
			c.Name, c.SpeedupPct, c.BaselineNsOp, c.OptimizedNsOp)
		if report.DegradedCapture {
			fmt.Fprintf(os.Stderr, "  caveat: degraded capture (num_cpu=%d < gomaxprocs=%d) — timeshared cores; treat as an upper bound\n",
				report.NumCPU, report.GOMAXPROCS)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	hist := filepath.Join(filepath.Dir(out), "BENCH_history.jsonl")
	if err := appendHistory(hist, &report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "appended %s\n", hist)
	return nil
}

// historyRow is one line of BENCH_history.jsonl: the capture's identity
// plus the headline figures, so the repository's performance trajectory
// survives BENCH_results.json being overwritten every run. One line per
// capture, append-only — `jq` or a spreadsheet reads the whole curve.
type historyRow struct {
	GitRev          string  `json:"git_rev"`
	Generated       string  `json:"generated"`
	GoVersion       string  `json:"go_version"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	DegradedCapture bool    `json:"degraded_capture,omitempty"`
	SyncNsOp        float64 `json:"sync_ns_per_op,omitempty"`
	Async1NsOp      float64 `json:"async1_ns_per_op,omitempty"`
	Async4NsOp      float64 `json:"async4_ns_per_op,omitempty"`
	Async4RPS       float64 `json:"async4_reports_per_sec,omitempty"`
	TelemetryPct    float64 `json:"telemetry_overhead_pct,omitempty"`
	WALBatchPct     float64 `json:"wal_overhead_batch_pct,omitempty"`
}

// summarize reduces a full report to its history row.
func summarize(report *BenchReport) historyRow {
	row := historyRow{
		GitRev:          report.GitRev,
		Generated:       report.Generated,
		GoVersion:       report.GoVersion,
		GOMAXPROCS:      report.GOMAXPROCS,
		NumCPU:          report.NumCPU,
		DegradedCapture: report.DegradedCapture,
	}
	for _, r := range report.Results {
		switch r.Name {
		case "Engine_Sync1Shard":
			row.SyncNsOp = r.NsPerOp
		case "Engine_Async1Shard":
			row.Async1NsOp = r.NsPerOp
		case "Engine_Async4Shard":
			row.Async4NsOp = r.NsPerOp
			row.Async4RPS = r.ReportsPerSec
		}
	}
	for _, c := range report.Comparisons {
		switch c.Name {
		case "telemetry_overhead_sync":
			row.TelemetryPct = c.SpeedupPct
		case "wal_overhead_batch":
			row.WALBatchPct = c.SpeedupPct
		}
	}
	return row
}

// appendHistory appends the report's summary row to the history file.
func appendHistory(path string, report *BenchReport) error {
	line, err := json.Marshal(summarize(report))
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
