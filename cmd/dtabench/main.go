// Command dtabench regenerates the tables and figures of the DTA paper's
// evaluation from this repository's implementations.
//
// Usage:
//
//	dtabench                      # run everything
//	dtabench -experiment fig10    # one table/figure
//	dtabench -scale 1             # paper-scale store geometries
//	dtabench -list                # enumerate experiment IDs
//	dtabench -json                # machine-readable ingest benchmarks
//	dtabench -json -out FILE      # ... written to FILE (default BENCH_results.json)
//
// The -json mode runs the core ingest benchmark suite (sync, frame-async
// and structured-async Key-Write paths) and records name, ns/op,
// reports/sec, allocs/op and per-shard worker utilization, stamped with
// GOMAXPROCS and the git revision, so the repository's performance
// trajectory stays comparable across commits.
//
// -cpuprofile and -mutexprofile capture pprof profiles over whichever
// mode runs (experiments or -json); they are how the shard-scaling
// curve was attributed (see README "Observability"):
//
//	dtabench -json -out /dev/null -cpuprofile cpu.pb.gz -mutexprofile mutex.pb.gz
//	go tool pprof -top cpu.pb.gz
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"dta/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment ID or 'all'")
		scale      = flag.Int("scale", 64, "divide paper store sizes by this factor (1 = paper scale)")
		trials     = flag.Int("trials", 200, "Monte-Carlo trials for success-rate experiments")
		seed       = flag.Int64("seed", 1, "random seed")
		cores      = flag.Int("cores", 0, "cap cores for parallel measurements (0 = all)")
		quick      = flag.Bool("quick", false, "shrink workloads (CI mode)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		jsonBench  = flag.Bool("json", false, "run the ingest benchmark suite, write JSON results")
		jsonOut    = flag.String("out", "BENCH_results.json", "output path for -json ('-' = stdout)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the run here")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex-contention profile of the run here")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtabench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dtabench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProf != "" {
		// Sample every blocking mutex event: the question the profile
		// answers is "is there contention AT ALL", so no sampling bias.
		runtime.SetMutexProfileFraction(1)
		defer func() {
			f, err := os.Create(*mutexProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dtabench:", err)
				return
			}
			defer f.Close()
			pprof.Lookup("mutex").WriteTo(f, 0)
		}()
	}

	if *jsonBench {
		if err := runJSONBench(*jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "dtabench:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	r := experiments.Runner{P: experiments.Params{
		Scale:    *scale,
		Trials:   *trials,
		Seed:     *seed,
		MaxCores: *cores,
		Quick:    *quick,
	}}

	ids := experiments.IDs()
	if *experiment != "all" {
		ids = []string{*experiment}
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		tbl, err := r.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtabench:", err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		fmt.Printf("  [%s in %.1fs]\n\n", id, time.Since(t0).Seconds())
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}
