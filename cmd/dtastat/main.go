// Command dtastat renders a live view of a DTA deployment's
// self-telemetry: it polls a collector's -obs endpoint (see dtacollect)
// or any server built on dta.ObsMux, diffs consecutive scrapes, and
// prints per-shard engine activity, per-primitive translator rates,
// RDMA crafting, WAL health and HA degradation as compact tables.
//
//	dtastat -addr 127.0.0.1:9090              # refresh every second
//	dtastat -addr 127.0.0.1:9090 -interval 5s
//	dtastat -addr 127.0.0.1:9090 -once        # one absolute snapshot
//	dtastat -addr 127.0.0.1:9090 -raw         # dump the exposition
//	dtastat -addr 127.0.0.1:9090 -events      # tail the flight recorder
//
// Rates are computed client-side from counter deltas, so dtastat needs
// no server support beyond the Prometheus text endpoint; histograms
// render p50/p99 estimated inside the log2 bucket geometry. The first
// tick of a polling run is labelled a baseline: it shows absolute
// lifetime totals (no previous scrape to diff against), not rates;
// later ticks show per-second rates over the interval.
//
// With -events dtastat tails /debug/events (the control-plane flight
// recorder) instead: one line per event, cursor-resumed each poll, with
// causal chains (SetDown → Resync → Checkpoint) rendered as linked
// continuation lines.
//
// With -traces dtastat tails /debug/traces (the data-plane trace
// pipeline) instead: each sampled report renders as a waterfall of
// stage bars (submit → queue → translate → emit → WAL → fsync → ack)
// with the latency between consecutive stages attributed to the later
// one, followed by cumulative per-segment p50/p99 and a dominant-stage
// attribution summary (queue-wait vs fsync-wait). In the default
// metrics view the trace pipeline contributes one line: the
// trace-derived end-to-end ack p50/p99 under the per-shard engine
// table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"dta/internal/obs"
	"dta/internal/obs/journal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "obs endpoint host:port (or full URL)")
		interval = flag.Duration("interval", time.Second, "polling interval")
		once     = flag.Bool("once", false, "print one absolute snapshot and exit")
		raw      = flag.Bool("raw", false, "dump the raw /metrics exposition and exit")
		events   = flag.Bool("events", false, "tail the flight recorder (/debug/events) instead of metrics")
		traces   = flag.Bool("traces", false, "tail the data-plane trace pipeline (/debug/traces) as stage waterfalls")
	)
	flag.Parse()
	base := *addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	url := base + "/metrics"

	if *raw {
		body, err := fetch(url)
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		os.Stdout.Write(body)
		return
	}
	if *events {
		tailEvents(base+"/debug/events", *interval, *once)
		return
	}
	if *traces {
		tailTraces(base+"/debug/traces", *interval, *once)
		return
	}

	ack := &traceAck{url: base + "/debug/traces"}
	prev, prevAt, err := scrape(url)
	if err != nil {
		log.Fatal("dtastat: ", err)
	}
	if *once {
		render(os.Stdout, prev, 0, ack.poll())
		return
	}
	// The first scrape has nothing to diff against: label it so lifetime
	// totals are not misread as per-interval rates.
	fmt.Println("baseline sample (lifetime totals, not rates; rates follow from the next tick)")
	render(os.Stdout, prev, 0, ack.poll())
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for range tick.C {
		cur, at, err := scrape(url)
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		elapsed := at.Sub(prevAt)
		fmt.Println()
		render(os.Stdout, cur.Delta(prev), elapsed, ack.poll())
		prev, prevAt = cur, at
	}
}

// eventsPayload mirrors the /debug/events response envelope.
type eventsPayload struct {
	Last    uint64           `json:"last"`
	Missed  uint64           `json:"missed"`
	Dropped uint64           `json:"dropped"`
	Events  []journal.Record `json:"events"`
}

// tailEvents live-tails the flight recorder: each poll resumes from the
// previous response's cursor, so every event prints exactly once (ring
// overwrites are reported as a gap).
func tailEvents(url string, interval time.Duration, once bool) {
	var cursor uint64
	var lastCause uint64
	for {
		body, err := fetch(fmt.Sprintf("%s?since=%d", url, cursor))
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		var p eventsPayload
		if err := json.Unmarshal(body, &p); err != nil {
			log.Fatal("dtastat: events: ", err)
		}
		if p.Missed > 0 {
			fmt.Printf("... %d events lost to ring overwrite ...\n", p.Missed)
			lastCause = 0
		}
		for i := range p.Events {
			printEvent(&p.Events[i], &lastCause)
		}
		cursor = p.Last
		if once {
			return
		}
		time.Sleep(interval)
	}
}

// printEvent renders one flight-recorder line; consecutive events of one
// causal chain get a linked continuation marker.
func printEvent(r *journal.Record, lastCause *uint64) {
	link := "  "
	if r.Cause != 0 && r.Cause == *lastCause {
		link = "└▶"
	}
	*lastCause = r.Cause
	who := "-"
	if r.Collector >= 0 {
		who = "c" + strconv.Itoa(r.Collector)
	}
	cause := ""
	if r.Cause != 0 {
		cause = fmt.Sprintf(" [chain %d]", r.Cause)
	}
	fmt.Printf("%s %-5s %-10s %-3s %s %s%s\n",
		r.Time.Local().Format("15:04:05.000"), r.Sev, r.Component, who, link, r.Detail, cause)
}

// traceStage / traceJSON / tracesPayload mirror the /debug/traces
// response envelope (internal/obs/trace's JSON rendering).
type traceStage struct {
	Stage string `json:"stage"`
	AtNs  int64  `json:"at_ns"`
}

type traceJSON struct {
	Seq     uint64       `json:"seq"`
	ID      uint64       `json:"id"`
	Flags   []string     `json:"flags"`
	StartNs int64        `json:"start_ns"`
	TotalNs int64        `json:"total_ns"`
	Stages  []traceStage `json:"stages"`
}

type tracesPayload struct {
	Last    uint64      `json:"last"`
	Missed  uint64      `json:"missed"`
	Dropped uint64      `json:"dropped"`
	Traces  []traceJSON `json:"traces"`
}

// tailTraces live-tails the trace pipeline: each poll resumes from the
// previous response's cursor, renders every new trace as a stage
// waterfall, and prints the cumulative per-segment latency table.
func tailTraces(url string, interval time.Duration, once bool) {
	var cursor uint64
	agg := newStageAgg()
	for {
		body, err := fetch(fmt.Sprintf("%s?since=%d", url, cursor))
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		var p tracesPayload
		if err := json.Unmarshal(body, &p); err != nil {
			log.Fatal("dtastat: traces: ", err)
		}
		if p.Missed > 0 {
			fmt.Printf("... %d traces lost to ring overwrite ...\n", p.Missed)
		}
		for i := range p.Traces {
			printTrace(&p.Traces[i], agg)
		}
		cursor = p.Last
		if len(p.Traces) > 0 {
			agg.render(os.Stdout)
		}
		if once {
			return
		}
		time.Sleep(interval)
	}
}

// dur renders nanoseconds human-readably at µs-or-better precision.
func dur(ns int64) string {
	switch {
	case ns >= int64(time.Second):
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= int64(time.Millisecond):
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
}

// waterfallWidth is the bar area of the per-trace waterfall in columns.
const waterfallWidth = 40

// printTrace renders one trace as a waterfall: stages in chronological
// order, the gap to the next stamp drawn as a bar offset into the
// trace's total span. The latency of a segment is attributed to the
// transition it ends at (e.g. enqueue→dequeue is queue wait,
// wal_write→fsync is fsync wait).
func printTrace(t *traceJSON, agg *stageAgg) {
	sort.Slice(t.Stages, func(i, j int) bool { return t.Stages[i].AtNs < t.Stages[j].AtNs })
	flags := ""
	if len(t.Flags) > 0 {
		flags = "  [" + strings.Join(t.Flags, ",") + "]"
	}
	fmt.Printf("trace %d  seq %d  total %s%s\n", t.ID, t.Seq, dur(t.TotalNs), flags)
	agg.observeTotal(t.TotalNs)
	var domSeg string
	var domNs int64
	for i, st := range t.Stages {
		segStr := ""
		start, barLen := 0, 1
		if t.TotalNs > 0 {
			start = int(st.AtNs * waterfallWidth / t.TotalNs)
		}
		if i+1 < len(t.Stages) {
			next := t.Stages[i+1]
			seg := next.AtNs - st.AtNs
			name := st.Stage + "→" + next.Stage
			segStr = fmt.Sprintf("  %s %s", name, dur(seg))
			agg.observeSeg(name, seg)
			if seg > domNs {
				domSeg, domNs = name, seg
			}
			if t.TotalNs > 0 {
				barLen = int(seg * waterfallWidth / t.TotalNs)
			}
		}
		if barLen < 1 {
			barLen = 1
		}
		if start >= waterfallWidth {
			start = waterfallWidth - 1
		}
		if start+barLen > waterfallWidth {
			barLen = waterfallWidth - start
		}
		bar := strings.Repeat(" ", start) + strings.Repeat("█", barLen)
		fmt.Printf("  %-9s +%-9s |%-*s|%s\n", st.Stage, dur(st.AtNs), waterfallWidth, bar, segStr)
	}
	if domSeg != "" {
		agg.observeDominant(domSeg)
	}
}

// stageAgg accumulates per-segment latencies across rendered traces.
type stageAgg struct {
	segs     map[string][]float64
	order    []string
	totals   []float64
	dominant map[string]int
	ntraces  int
}

func newStageAgg() *stageAgg {
	return &stageAgg{segs: make(map[string][]float64), dominant: make(map[string]int)}
}

func (a *stageAgg) observeTotal(ns int64) {
	a.totals = append(a.totals, float64(ns))
	a.ntraces++
}

func (a *stageAgg) observeSeg(name string, ns int64) {
	if _, ok := a.segs[name]; !ok {
		a.order = append(a.order, name)
	}
	a.segs[name] = append(a.segs[name], float64(ns))
}

func (a *stageAgg) observeDominant(name string) { a.dominant[name]++ }

// pctOf estimates quantile q over observed samples (sorted copy).
func pctOf(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// render prints the cumulative per-segment latency table and the
// dominant-stage attribution (which transition most often owned the
// largest share of a trace's latency).
func (a *stageAgg) render(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "SEGMENT\tp50\tp99\tdominant-in")
	for _, name := range a.order {
		s := a.segs[name]
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d/%d traces\n",
			name, dur(int64(pctOf(s, 0.50))), dur(int64(pctOf(s, 0.99))), a.dominant[name], a.ntraces)
	}
	fmt.Fprintf(tw, "end-to-end\t%s\t%s\t\n",
		dur(int64(pctOf(a.totals, 0.50))), dur(int64(pctOf(a.totals, 0.99))))
	tw.Flush()
}

// traceAck derives the end-to-end ack latency line shown under the
// engine table in the default metrics view: cumulative p50/p99 over
// every trace the pipeline has published since dtastat started.
type traceAck struct {
	url    string
	cursor uint64
	totals []float64
	failed bool
}

// poll fetches new traces and returns the rendered summary line, or ""
// when the endpoint is unavailable (older server) or no trace has been
// published yet.
func (a *traceAck) poll() string {
	if a.failed {
		return ""
	}
	body, err := fetch(fmt.Sprintf("%s?since=%d", a.url, a.cursor))
	if err != nil {
		a.failed = true // endpoint absent: stop asking
		return ""
	}
	var p tracesPayload
	if err := json.Unmarshal(body, &p); err != nil {
		a.failed = true
		return ""
	}
	a.cursor = p.Last
	for i := range p.Traces {
		a.totals = append(a.totals, float64(p.Traces[i].TotalNs))
	}
	if len(a.totals) == 0 {
		return ""
	}
	return fmt.Sprintf("traces: e2e ack p50/p99 %s/%s (%d sampled)",
		dur(int64(pctOf(a.totals, 0.50))), dur(int64(pctOf(a.totals, 0.99))), len(a.totals))
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func scrape(url string) (*obs.Snapshot, time.Time, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, time.Time{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	s, err := obs.ParsePrometheus(resp.Body)
	return s, time.Now(), err
}

// section groups a delta snapshot's series by a label key ("" groups
// everything under one row).
type section struct {
	byKey map[string]map[string]*obs.Value // label value -> metric name -> series
	keys  []string
}

func group(s *obs.Snapshot, prefix, label string) *section {
	sec := &section{byKey: make(map[string]map[string]*obs.Value)}
	for i := range s.Values {
		v := &s.Values[i]
		if len(v.Name) < len(prefix) || v.Name[:len(prefix)] != prefix {
			continue
		}
		k := v.Label(label)
		row, ok := sec.byKey[k]
		if !ok {
			row = make(map[string]*obs.Value)
			sec.byKey[k] = row
			sec.keys = append(sec.keys, k)
		}
		row[v.Name] = v
	}
	sort.Slice(sec.keys, func(i, j int) bool {
		a, errA := strconv.Atoi(sec.keys[i])
		b, errB := strconv.Atoi(sec.keys[j])
		if errA == nil && errB == nil {
			return a < b
		}
		return sec.keys[i] < sec.keys[j]
	})
	return sec
}

// rate renders a counter as a per-second rate (elapsed > 0) or an
// absolute total (first tick / -once).
func rate(v *obs.Value, elapsed time.Duration) string {
	if v == nil {
		return "-"
	}
	if elapsed <= 0 {
		return fmt.Sprintf("%.0f", v.Value)
	}
	return fmt.Sprintf("%.0f/s", v.Value/elapsed.Seconds())
}

func gauge(v *obs.Value) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", v.Value)
}

// quantiles renders a histogram's p50/p99 in microseconds.
func quantiles(v *obs.Value) string {
	if v == nil || v.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f", v.Quantile(0.50)/1e3, v.Quantile(0.99)/1e3)
}

// utilization is the fraction of the interval a shard worker spent
// inside batches: the batch-span histogram's summed nanoseconds over
// the wall-clock interval.
func utilization(v *obs.Value, elapsed time.Duration) string {
	if v == nil || elapsed <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(v.Sum)/float64(elapsed.Nanoseconds()))
}

func render(w io.Writer, s *obs.Snapshot, elapsed time.Duration, ackLine string) {
	renderEngine(w, s, elapsed, ackLine)
	renderTranslator(w, s, elapsed)
	renderRDMA(w, s, elapsed)
	renderWAL(w, s, elapsed)
	renderHA(w, s, elapsed)
}

func renderEngine(w io.Writer, s *obs.Snapshot, elapsed time.Duration, ackLine string) {
	sec := group(s, "dta_engine_", "shard")
	if len(sec.keys) > 0 {
		tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, "ENGINE\tenqueued\tprocessed\tdropped\tstalls\tdepth\tbatch p50/p99 µs\tutil")
		for _, k := range sec.keys {
			row := sec.byKey[k]
			fmt.Fprintf(tw, "shard %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n", k,
				rate(row["dta_engine_enqueued_total"], elapsed),
				rate(row["dta_engine_processed_total"], elapsed),
				rate(row["dta_engine_dropped_total"], elapsed),
				rate(row["dta_engine_queue_stalls_total"], elapsed),
				gauge(row["dta_engine_queue_depth"]),
				quantiles(row["dta_engine_batch_ns"]),
				utilization(row["dta_engine_batch_ns"], elapsed))
		}
		tw.Flush()
	}
	// Trace-derived end-to-end ack latency rides under the shard table:
	// per-shard utilization says how busy the workers are, this line says
	// what that does to a report's submit→durable-ack time.
	if ackLine != "" {
		fmt.Fprintln(w, ackLine)
	}
}

func renderTranslator(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	sec := group(s, "dta_translator_reports_total", "primitive")
	if len(sec.keys) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "TRANSLATOR\treports\t")
	for _, k := range sec.keys {
		fmt.Fprintf(tw, "%s\t%s\t\n", k, rate(sec.byKey[k]["dta_translator_reports_total"], elapsed))
	}
	flat := group(s, "dta_", "")
	all := flat.byKey[""]
	fmt.Fprintf(tw, "parse errors\t%s\t\n", rate(all["dta_translator_parse_errors_total"], elapsed))
	fmt.Fprintf(tw, "rate-limit drops\t%s\t\n", rate(all["dta_rate_dropped_total"], elapsed))
	fmt.Fprintf(tw, "report span p50/p99 µs\t%s\t(sampled 1/64)\n", quantiles(all["dta_translator_report_ns"]))
	tw.Flush()
}

func renderRDMA(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_", "").byKey[""]
	if all["dta_rdma_writes_total"] == nil && all["dta_rdma_atomics_total"] == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "RDMA\twrites\tatomics\tcrafts\trepatches\temit p50/p99 µs")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s\t%s\n",
		rate(all["dta_rdma_writes_total"], elapsed),
		rate(all["dta_rdma_atomics_total"], elapsed),
		rate(all["dta_rdma_crafts_total"], elapsed),
		rate(all["dta_rdma_repatches_total"], elapsed),
		quantiles(all["dta_rdma_emit_ns"]))
	tw.Flush()
}

func renderWAL(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_wal_", "").byKey[""]
	if all == nil || all["dta_wal_appends_total"] == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "WAL\tappends\tsyncs\tdegraded acks\tring occ/hwm\tstalls\tflush p50/p99 µs\tfsync p50/p99 µs")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s/%s\t%s\t%s\t%s\n",
		rate(all["dta_wal_appends_total"], elapsed),
		rate(all["dta_wal_syncs_total"], elapsed),
		rate(all["dta_wal_degraded_acks_total"], elapsed),
		gauge(all["dta_wal_ring_occupancy"]),
		gauge(all["dta_wal_ring_high_water"]),
		rate(all["dta_wal_ring_stalls_total"], elapsed),
		quantiles(all["dta_wal_flush_ns"]),
		quantiles(all["dta_wal_fsync_ns"]))
	tw.Flush()
}

func renderHA(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_ha_", "").byKey[""]
	if all == nil {
		return
	}
	degraded := all["dta_ha_degraded_writes_total"]
	lost := all["dta_ha_lost_writes_total"]
	if degraded == nil && lost == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "HA\tdegraded writes\tlost writes\tfailover queries\tread repairs\tresyncs\tresync retries")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s\t%s\t%s\n",
		rate(degraded, elapsed),
		rate(lost, elapsed),
		rate(all["dta_ha_failover_queries_total"], elapsed),
		rate(all["dta_ha_read_repairs_total"], elapsed),
		rate(all["dta_ha_resyncs_total"], elapsed),
		rate(all["dta_ha_resync_retries_total"], elapsed))
	tw.Flush()
}
