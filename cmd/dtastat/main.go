// Command dtastat renders a live view of a DTA deployment's
// self-telemetry: it polls a collector's -obs endpoint (see dtacollect)
// or any server built on dta.ObsMux, diffs consecutive scrapes, and
// prints per-shard engine activity, per-primitive translator rates,
// RDMA crafting, WAL health and HA degradation as compact tables.
//
//	dtastat -addr 127.0.0.1:9090              # refresh every second
//	dtastat -addr 127.0.0.1:9090 -interval 5s
//	dtastat -addr 127.0.0.1:9090 -once        # one absolute snapshot
//	dtastat -addr 127.0.0.1:9090 -raw         # dump the exposition
//	dtastat -addr 127.0.0.1:9090 -events      # tail the flight recorder
//
// Rates are computed client-side from counter deltas, so dtastat needs
// no server support beyond the Prometheus text endpoint; histograms
// render p50/p99 estimated inside the log2 bucket geometry. The first
// tick of a polling run is labelled a baseline: it shows absolute
// lifetime totals (no previous scrape to diff against), not rates;
// later ticks show per-second rates over the interval.
//
// With -events dtastat tails /debug/events (the control-plane flight
// recorder) instead: one line per event, cursor-resumed each poll, with
// causal chains (SetDown → Resync → Checkpoint) rendered as linked
// continuation lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"dta/internal/obs"
	"dta/internal/obs/journal"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9090", "obs endpoint host:port (or full URL)")
		interval = flag.Duration("interval", time.Second, "polling interval")
		once     = flag.Bool("once", false, "print one absolute snapshot and exit")
		raw      = flag.Bool("raw", false, "dump the raw /metrics exposition and exit")
		events   = flag.Bool("events", false, "tail the flight recorder (/debug/events) instead of metrics")
	)
	flag.Parse()
	base := *addr
	if len(base) < 7 || base[:7] != "http://" {
		base = "http://" + base
	}
	url := base + "/metrics"

	if *raw {
		body, err := fetch(url)
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		os.Stdout.Write(body)
		return
	}
	if *events {
		tailEvents(base+"/debug/events", *interval, *once)
		return
	}

	prev, prevAt, err := scrape(url)
	if err != nil {
		log.Fatal("dtastat: ", err)
	}
	if *once {
		render(os.Stdout, prev, 0)
		return
	}
	// The first scrape has nothing to diff against: label it so lifetime
	// totals are not misread as per-interval rates.
	fmt.Println("baseline sample (lifetime totals, not rates; rates follow from the next tick)")
	render(os.Stdout, prev, 0)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for range tick.C {
		cur, at, err := scrape(url)
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		elapsed := at.Sub(prevAt)
		fmt.Println()
		render(os.Stdout, cur.Delta(prev), elapsed)
		prev, prevAt = cur, at
	}
}

// eventsPayload mirrors the /debug/events response envelope.
type eventsPayload struct {
	Last    uint64           `json:"last"`
	Missed  uint64           `json:"missed"`
	Dropped uint64           `json:"dropped"`
	Events  []journal.Record `json:"events"`
}

// tailEvents live-tails the flight recorder: each poll resumes from the
// previous response's cursor, so every event prints exactly once (ring
// overwrites are reported as a gap).
func tailEvents(url string, interval time.Duration, once bool) {
	var cursor uint64
	var lastCause uint64
	for {
		body, err := fetch(fmt.Sprintf("%s?since=%d", url, cursor))
		if err != nil {
			log.Fatal("dtastat: ", err)
		}
		var p eventsPayload
		if err := json.Unmarshal(body, &p); err != nil {
			log.Fatal("dtastat: events: ", err)
		}
		if p.Missed > 0 {
			fmt.Printf("... %d events lost to ring overwrite ...\n", p.Missed)
			lastCause = 0
		}
		for i := range p.Events {
			printEvent(&p.Events[i], &lastCause)
		}
		cursor = p.Last
		if once {
			return
		}
		time.Sleep(interval)
	}
}

// printEvent renders one flight-recorder line; consecutive events of one
// causal chain get a linked continuation marker.
func printEvent(r *journal.Record, lastCause *uint64) {
	link := "  "
	if r.Cause != 0 && r.Cause == *lastCause {
		link = "└▶"
	}
	*lastCause = r.Cause
	who := "-"
	if r.Collector >= 0 {
		who = "c" + strconv.Itoa(r.Collector)
	}
	cause := ""
	if r.Cause != 0 {
		cause = fmt.Sprintf(" [chain %d]", r.Cause)
	}
	fmt.Printf("%s %-5s %-10s %-3s %s %s%s\n",
		r.Time.Local().Format("15:04:05.000"), r.Sev, r.Component, who, link, r.Detail, cause)
}

func fetch(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func scrape(url string) (*obs.Snapshot, time.Time, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, time.Time{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, time.Time{}, fmt.Errorf("%s: %s", url, resp.Status)
	}
	s, err := obs.ParsePrometheus(resp.Body)
	return s, time.Now(), err
}

// section groups a delta snapshot's series by a label key ("" groups
// everything under one row).
type section struct {
	byKey map[string]map[string]*obs.Value // label value -> metric name -> series
	keys  []string
}

func group(s *obs.Snapshot, prefix, label string) *section {
	sec := &section{byKey: make(map[string]map[string]*obs.Value)}
	for i := range s.Values {
		v := &s.Values[i]
		if len(v.Name) < len(prefix) || v.Name[:len(prefix)] != prefix {
			continue
		}
		k := v.Label(label)
		row, ok := sec.byKey[k]
		if !ok {
			row = make(map[string]*obs.Value)
			sec.byKey[k] = row
			sec.keys = append(sec.keys, k)
		}
		row[v.Name] = v
	}
	sort.Slice(sec.keys, func(i, j int) bool {
		a, errA := strconv.Atoi(sec.keys[i])
		b, errB := strconv.Atoi(sec.keys[j])
		if errA == nil && errB == nil {
			return a < b
		}
		return sec.keys[i] < sec.keys[j]
	})
	return sec
}

// rate renders a counter as a per-second rate (elapsed > 0) or an
// absolute total (first tick / -once).
func rate(v *obs.Value, elapsed time.Duration) string {
	if v == nil {
		return "-"
	}
	if elapsed <= 0 {
		return fmt.Sprintf("%.0f", v.Value)
	}
	return fmt.Sprintf("%.0f/s", v.Value/elapsed.Seconds())
}

func gauge(v *obs.Value) string {
	if v == nil {
		return "-"
	}
	return fmt.Sprintf("%.0f", v.Value)
}

// quantiles renders a histogram's p50/p99 in microseconds.
func quantiles(v *obs.Value) string {
	if v == nil || v.Count == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f/%.0f", v.Quantile(0.50)/1e3, v.Quantile(0.99)/1e3)
}

// utilization is the fraction of the interval a shard worker spent
// inside batches: the batch-span histogram's summed nanoseconds over
// the wall-clock interval.
func utilization(v *obs.Value, elapsed time.Duration) string {
	if v == nil || elapsed <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(v.Sum)/float64(elapsed.Nanoseconds()))
}

func render(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	renderEngine(w, s, elapsed)
	renderTranslator(w, s, elapsed)
	renderRDMA(w, s, elapsed)
	renderWAL(w, s, elapsed)
	renderHA(w, s, elapsed)
}

func renderEngine(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	sec := group(s, "dta_engine_", "shard")
	if len(sec.keys) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "ENGINE\tenqueued\tprocessed\tdropped\tstalls\tdepth\tbatch p50/p99 µs\tutil")
	for _, k := range sec.keys {
		row := sec.byKey[k]
		fmt.Fprintf(tw, "shard %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n", k,
			rate(row["dta_engine_enqueued_total"], elapsed),
			rate(row["dta_engine_processed_total"], elapsed),
			rate(row["dta_engine_dropped_total"], elapsed),
			rate(row["dta_engine_queue_stalls_total"], elapsed),
			gauge(row["dta_engine_queue_depth"]),
			quantiles(row["dta_engine_batch_ns"]),
			utilization(row["dta_engine_batch_ns"], elapsed))
	}
	tw.Flush()
}

func renderTranslator(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	sec := group(s, "dta_translator_reports_total", "primitive")
	if len(sec.keys) == 0 {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "TRANSLATOR\treports\t")
	for _, k := range sec.keys {
		fmt.Fprintf(tw, "%s\t%s\t\n", k, rate(sec.byKey[k]["dta_translator_reports_total"], elapsed))
	}
	flat := group(s, "dta_", "")
	all := flat.byKey[""]
	fmt.Fprintf(tw, "parse errors\t%s\t\n", rate(all["dta_translator_parse_errors_total"], elapsed))
	fmt.Fprintf(tw, "rate-limit drops\t%s\t\n", rate(all["dta_rate_dropped_total"], elapsed))
	fmt.Fprintf(tw, "report span p50/p99 µs\t%s\t(sampled 1/64)\n", quantiles(all["dta_translator_report_ns"]))
	tw.Flush()
}

func renderRDMA(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_", "").byKey[""]
	if all["dta_rdma_writes_total"] == nil && all["dta_rdma_atomics_total"] == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "RDMA\twrites\tatomics\tcrafts\trepatches\temit p50/p99 µs")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s\t%s\n",
		rate(all["dta_rdma_writes_total"], elapsed),
		rate(all["dta_rdma_atomics_total"], elapsed),
		rate(all["dta_rdma_crafts_total"], elapsed),
		rate(all["dta_rdma_repatches_total"], elapsed),
		quantiles(all["dta_rdma_emit_ns"]))
	tw.Flush()
}

func renderWAL(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_wal_", "").byKey[""]
	if all == nil || all["dta_wal_appends_total"] == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "WAL\tappends\tsyncs\tdegraded acks\tring occ/hwm\tstalls\tflush p50/p99 µs\tfsync p50/p99 µs")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s/%s\t%s\t%s\t%s\n",
		rate(all["dta_wal_appends_total"], elapsed),
		rate(all["dta_wal_syncs_total"], elapsed),
		rate(all["dta_wal_degraded_acks_total"], elapsed),
		gauge(all["dta_wal_ring_occupancy"]),
		gauge(all["dta_wal_ring_high_water"]),
		rate(all["dta_wal_ring_stalls_total"], elapsed),
		quantiles(all["dta_wal_flush_ns"]),
		quantiles(all["dta_wal_fsync_ns"]))
	tw.Flush()
}

func renderHA(w io.Writer, s *obs.Snapshot, elapsed time.Duration) {
	all := group(s, "dta_ha_", "").byKey[""]
	if all == nil {
		return
	}
	degraded := all["dta_ha_degraded_writes_total"]
	lost := all["dta_ha_lost_writes_total"]
	if degraded == nil && lost == nil {
		return
	}
	tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
	fmt.Fprintln(tw, "HA\tdegraded writes\tlost writes\tfailover queries\tread repairs\tresyncs\tresync retries")
	fmt.Fprintf(tw, "\t%s\t%s\t%s\t%s\t%s\t%s\n",
		rate(degraded, elapsed),
		rate(lost, elapsed),
		rate(all["dta_ha_failover_queries_total"], elapsed),
		rate(all["dta_ha_read_repairs_total"], elapsed),
		rate(all["dta_ha_resyncs_total"], elapsed),
		rate(all["dta_ha_resync_retries_total"], elapsed))
	tw.Flush()
}
