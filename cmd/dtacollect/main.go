// Command dtacollect runs a live DTA collector + translator over UDP on
// the loopback interface, with built-in INT reporters generating traffic.
//
// Deployment mapping: in a datacenter the translator is the collector's
// ToR switch and reports arrive as raw Ethernet; here the kernel provides
// L2–L4, so reporters send the DTA portion (base header + sub-header +
// payload) as UDP datagrams to the translator's socket, which parses them
// with the same wire code and performs the same DTA→RDMA translation
// against the in-process collector memory.
//
//	dtacollect -duration 5s -rate 50000 -snapshot /tmp/dta.snap
//
// The resulting snapshot can be queried with dtaquery.
//
// With -wal every admitted report is also logged to a segmented
// write-ahead log, so a crash loses at most what the -wal-sync policy
// permits; -recover replays an existing log (checkpoint + tail) into
// the stores before collecting, and -checkpoint writes a fresh
// checkpoint (reclaiming covered segments) on exit:
//
//	dtacollect -duration 5s -wal /tmp/dta.wal -wal-sync interval=100ms
//	dtacollect -duration 5s -wal /tmp/dta.wal -recover -checkpoint
//
// The log directory can be inspected with dtarecover and queried
// directly with dtaquery -wal.
//
// With -obs the collector serves its self-telemetry over HTTP:
// Prometheus-text metrics at /metrics, expvar at /debug/vars, and the
// full pprof suite at /debug/pprof/ — poll it live with dtastat:
//
//	dtacollect -duration 60s -obs 127.0.0.1:9090 &
//	dtastat -addr 127.0.0.1:9090
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/ha"
	"dta/internal/obs"
	"dta/internal/obs/journal"
	obstrace "dta/internal/obs/trace"
	"dta/internal/snapshot"
	"dta/internal/telemetry/inttel"
	"dta/internal/telemetry/netseer"
	"dta/internal/trace"
	"dta/internal/translator"
	"dta/internal/wal"
	"dta/internal/wire"
)

// walConfig bundles the durability flags.
type walConfig struct {
	dir        string
	sync       string
	recover    bool
	checkpoint bool
}

func main() {
	var (
		duration = flag.Duration("duration", 5*time.Second, "how long to collect")
		rate     = flag.Int("rate", 50000, "reports per second to generate")
		snapPath = flag.String("snapshot", "", "write a store snapshot here on exit")
		addr     = flag.String("listen", "127.0.0.1:0", "UDP listen address")
		obsAddr  = flag.String("obs", "", "serve /metrics, /debug/vars and /debug/pprof on this HTTP address (empty = off)")
		wcfg     walConfig
	)
	flag.StringVar(&wcfg.dir, "wal", "", "write-ahead-log directory (empty = no WAL)")
	flag.StringVar(&wcfg.sync, "wal-sync", "none", "WAL sync policy: none, interval[=d], batch")
	flag.BoolVar(&wcfg.recover, "recover", false, "replay an existing WAL into the stores before collecting (needs -wal)")
	flag.BoolVar(&wcfg.checkpoint, "checkpoint", false, "write a WAL checkpoint on exit, reclaiming covered segments (needs -wal)")
	flag.Parse()
	if wcfg.dir == "" && (wcfg.recover || wcfg.checkpoint) {
		log.Fatal("dtacollect: -recover/-checkpoint need -wal")
	}
	if err := run(*duration, *rate, *snapPath, *addr, *obsAddr, wcfg); err != nil {
		log.Fatal(err)
	}
}

func run(duration time.Duration, rate int, snapPath, addr, obsAddr string, wcfg walConfig) error {
	// Self-telemetry: one registry for every layer; served over HTTP
	// when -obs is set. A nil scope (no -obs) leaves all counters live
	// but unexposed and disables the latency spans.
	reg := obs.NewRegistry()
	// Flight recorder + health verdict ride along: /debug/events serves
	// the causal event timeline, /healthz the rule-driven SLO verdict.
	jr := journal.New(0)
	he := obs.NewHealthEvaluator(reg)
	// Data-plane trace pipeline: sampled per-report stage timelines with
	// tail retention, served at /debug/traces.
	trc := obstrace.New(obstrace.Config{})
	var sc *obs.Scope
	if obsAddr != "" {
		sc = reg.Scope()
		ln, err := net.Listen("tcp", obsAddr)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		defer ln.Close()
		fmt.Printf("obs endpoint on http://%s/metrics\n", ln.Addr())
		mux := obs.Mux(reg)
		journal.Mount(mux, jr)
		obstrace.Mount(mux, trc)
		obs.MountHealth(mux, he)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
	}
	// Store geometry: small enough to start instantly, large enough for
	// minutes of traffic.
	kw := keywrite.Config{Slots: 1 << 20, DataSize: 20}
	ki := keyincrement.Config{Slots: 1 << 18}
	values := make([]uint32, 1024)
	for i := range values {
		values[i] = uint32(i + 1)
	}
	pc := postcarding.Config{Chunks: 1 << 18, Hops: 5, Values: values}
	ap := appendlist.Config{Lists: 16, EntriesPerList: 1 << 16, EntrySize: netseer.EntrySize}

	host, err := collector.New(collector.Config{
		KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap,
	})
	if err != nil {
		return err
	}
	tr, err := translator.NewScoped(translator.Config{
		KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap,
		AppendBatch: 16,
	}, host.Listener(), sc)
	if err != nil {
		return err
	}
	tr.Journal = journal.Emitter{J: jr, Comp: journal.CompTranslator, Collector: -1}
	tr.Emit = func(pkt []byte) {
		ack, err := host.Ingest(pkt)
		if err != nil {
			log.Printf("collector: %v", err)
			return
		}
		if ack != nil {
			tr.HandleAck(ack)
		}
	}

	// Durability: recover any prior log into the fresh stores, THEN
	// attach the writer (recovery must not re-log replayed records).
	var walW *wal.Writer
	if wcfg.dir != "" {
		if wcfg.recover {
			walJr := journal.Emitter{J: jr, Comp: journal.CompWAL, Collector: -1}
			cause := walJr.NewCause()
			walJr.Emit(journal.EvRecoveryStart, journal.SevInfo, cause, 0, 0, 0)
			// Idempotent with wal.Recover's own repair; run first only to
			// learn the truncated byte count for the timeline.
			torn, err := wal.RepairTail(wcfg.dir)
			if err != nil {
				return fmt.Errorf("recover: %w", err)
			}
			if torn > 0 {
				walJr.Emit(journal.EvTornTail, journal.SevWarn, cause, uint64(torn), 0, 0)
				fmt.Printf("recover: truncated %d torn tail bytes\n", torn)
			}
			last, skipped, err := wal.Recover(wcfg.dir,
				func(ck *snapshot.Snapshot) error {
					_, err := ha.Resync(ha.Target{Host: host, Batcher: tr.AppendBatcher()}, []ha.Peer{{Snap: ck}})
					return err
				},
				func(lsn, nowNs uint64, rec *wire.StagedReport) error {
					return tr.ProcessStaged(rec, nowNs)
				})
			if err != nil {
				return fmt.Errorf("recover: %w", err)
			}
			walJr.Emit(journal.EvReplayExtent, journal.SevInfo, cause, last, uint64(skipped), 0)
			if err := jr.DumpFile(filepath.Join(wcfg.dir, journal.DumpFileName)); err != nil {
				log.Printf("recover: events dump: %v", err)
			}
			fmt.Printf("recovered %d reports from %s (up to LSN %d, %d skipped)\n",
				tr.Stats().Reports, wcfg.dir, last, skipped)
		}
		pol, err := wal.ParsePolicy(wcfg.sync)
		if err != nil {
			return err
		}
		walW, err = wal.CreateScoped(wcfg.dir, pol, sc)
		if err != nil {
			return err
		}
		walW.SetJournal(journal.Emitter{J: jr, Comp: journal.CompWAL, Collector: -1})
		if err := wal.SaveMeta(wcfg.dir, &wal.Meta{Translator: tr.Config()}); err != nil {
			return err
		}
		tr.WAL = func(rec *wire.StagedReport, nowNs uint64) error {
			_, err := walW.AppendTraced(rec, nowNs, tr.TraceHandle())
			return err
		}
		defer walW.Close()
	}

	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	fmt.Printf("translator listening on %s\n", conn.LocalAddr())

	// Receiver loop: UDP datagram payload = DTA report.
	done := make(chan struct{})
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		buf := make([]byte, 2048)
		var rep wire.Report
		var smp obstrace.Sampler
		start := time.Now()
		for {
			conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			n, _, err := conn.ReadFrom(buf)
			if err != nil {
				select {
				case <-done:
					return
				default:
					continue
				}
			}
			if err := wire.DecodeReport(buf[:n], &rep); err != nil {
				continue
			}
			now := uint64(time.Since(start))
			h := trc.Begin(&smp)
			if h.Valid() {
				h.Stamp(obstrace.StSubmit)
				tr.SetTraceHandle(h)
			}
			if err := tr.Process(&rep, now); err != nil {
				log.Printf("translate: %v", err)
			}
			h.Finish()
			if walW != nil {
				// Each datagram is an ingest batch on this path.
				if err := walW.CommitBatch(); err != nil {
					log.Printf("wal: %v", err)
				}
			}
		}
	}()

	// Reporter: INT path tracing + loss events over the real socket.
	sender, err := net.Dial("udp", conn.LocalAddr().String())
	if err != nil {
		return err
	}
	defer sender.Close()
	go func() {
		g, _ := trace.NewGenerator(trace.DefaultConfig())
		paths, _ := inttel.NewPathModel(1024, 3, 5)
		sampler, _ := inttel.NewSampler(1, 1)
		postcards := &inttel.PostcardSource{Paths: paths, Sampler: sampler}
		losses := &netseer.LossEvents{ListID: 1}
		out := make([]byte, wire.MaxReportLen)
		var reports []wire.Report
		interval := time.Second / time.Duration(rate)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				p := g.Next()
				reports = postcards.Reports(&p, reports[:0])
				reports = losses.Process(&p, reports)
				for i := range reports {
					n, err := wire.SerializeReport(out, &reports[i])
					if err != nil {
						continue
					}
					sender.Write(out[:n])
				}
			}
		}
	}()

	// Progress loop.
	deadline := time.After(duration)
	status := time.NewTicker(time.Second)
	defer status.Stop()
	for {
		select {
		case <-status.C:
			st := tr.Stats()
			fmt.Printf("reports=%d writes=%d atomics=%d postcard-emits=%d append-flushes=%d\n",
				st.Reports, st.RDMAWrites, st.RDMAAtomics, st.PostcardEmits, st.AppendFlushes)
		case <-deadline:
			close(done)
			// The receiver owns the translator (and WAL writer) until it
			// notices done; flushing concurrently would race it.
			<-recvDone
			tr.FlushAppend(0)
			tr.DrainPostcards(0)
			st := tr.Stats()
			fmt.Printf("final: reports=%d rdma-writes=%d mem-instr/report=%.3f\n",
				st.Reports, st.RDMAWrites, func() float64 {
					host.Device().AttributeReports(st.Reports - host.Device().Mem.Reports)
					return host.Device().Mem.PerReport()
				}())
			if walW != nil {
				if err := walW.Sync(); err != nil {
					return err
				}
				ws := walW.WStats()
				fmt.Printf("wal: %d records durable (LSN %d), %d syncs, %d segment rotations, %.1f MiB\n",
					ws.DurableLSN, ws.LastLSN, ws.Syncs, ws.Rotations, float64(ws.Bytes)/(1<<20))
				if wcfg.checkpoint && walW.LastLSN() > 0 {
					snap := snapshot.Capture(host)
					snap.AppendHeads = tr.AppendBatcher().WrittenCounts(nil)
					snap.WALLSN = walW.LastLSN()
					if err := wal.WriteCheckpoint(wcfg.dir, snap); err != nil {
						return err
					}
					removed, err := wal.TruncateBelow(wcfg.dir, snap.WALLSN)
					if err != nil {
						return err
					}
					ckCause := jr.NewCause()
					walJr := journal.Emitter{J: jr, Comp: journal.CompWAL, Collector: -1}
					walJr.Emit(journal.EvCheckpoint, journal.SevInfo, ckCause, snap.WALLSN, 0, 0)
					if removed > 0 {
						walJr.Emit(journal.EvWALTruncate, journal.SevInfo, ckCause, snap.WALLSN, uint64(removed), 0)
					}
					fmt.Printf("checkpoint: LSN %d written, %d segments reclaimed\n", snap.WALLSN, removed)
				}
			}
			if snapPath != "" {
				if err := snapshot.Capture(host).Save(snapPath); err != nil {
					return err
				}
				fmt.Printf("snapshot written to %s\n", snapPath)
				fi, _ := os.Stat(snapPath)
				if fi != nil {
					fmt.Printf("snapshot size: %.1f MiB\n", float64(fi.Size())/(1<<20))
				}
			}
			return nil
		}
	}
}
