// Command dtaquery runs queries against a collector snapshot written by
// dtacollect.
//
//	dtaquery -snapshot /tmp/dta.snap -primitive keywrite -key 42 -n 2
//	dtaquery -snapshot /tmp/dta.snap -primitive postcarding -key 42
//	dtaquery -snapshot /tmp/dta.snap -primitive append -list 1 -count 10
//	dtaquery -snapshot /tmp/dta.snap -primitive keyincrement -key 42
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"

	"dta/internal/snapshot"
	"dta/internal/telemetry/netseer"
	"dta/internal/wire"
)

func main() {
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file from dtacollect")
		primitive = flag.String("primitive", "keywrite", "keywrite | postcarding | append | keyincrement")
		key       = flag.Uint64("key", 0, "telemetry key (64-bit form)")
		n         = flag.Int("n", 2, "redundancy used at report time")
		list      = flag.Int("list", 0, "append list to poll")
		count     = flag.Int("count", 10, "append entries to read")
	)
	flag.Parse()
	if *snapPath == "" {
		log.Fatal("dtaquery: -snapshot is required")
	}
	snap, err := snapshot.Load(*snapPath)
	if err != nil {
		log.Fatal(err)
	}
	k := wire.KeyFromUint64(*key)
	switch *primitive {
	case "keywrite":
		st, err := snap.KeyWriteStore()
		if err != nil {
			log.Fatal(err)
		}
		res, err := st.Query(k, *n, 1)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("key %d: empty return (matches=%d)\n", *key, res.Matches)
			return
		}
		fmt.Printf("key %d: value=%s (agreements %d/%d)\n",
			*key, hex.EncodeToString(res.Data), res.Agreements, res.Matches)
	case "postcarding":
		st, err := snap.PostcardingStore()
		if err != nil {
			log.Fatal(err)
		}
		res, err := st.Query(k, *n)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("flow %d: no valid chunk\n", *key)
			return
		}
		fmt.Printf("flow %d: path %v (%d valid chunks)\n", *key, res.Values, res.ValidChunks)
	case "append":
		st, err := snap.AppendStore()
		if err != nil {
			log.Fatal(err)
		}
		p, err := st.NewPoller(*list)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			e := p.Poll()
			if len(e) == netseer.EntrySize {
				flow, seq, reason := netseer.Decode(e)
				fmt.Printf("list %d[%d]: flow=%s seq=%d reason=%d\n",
					*list, i, hex.EncodeToString(flow[:13]), seq, reason)
			} else {
				fmt.Printf("list %d[%d]: %s\n", *list, i, hex.EncodeToString(e))
			}
		}
	case "keyincrement":
		st, err := snap.KeyIncrementStore()
		if err != nil {
			log.Fatal(err)
		}
		v, err := st.Query(k, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("key %d: count >= %d (count-min over N=%d)\n", *key, v, *n)
	default:
		log.Fatalf("dtaquery: unknown primitive %q", *primitive)
	}
}
