// Command dtaquery runs queries against a collector snapshot written by
// dtacollect, or against the state recovered from a write-ahead-log
// directory (-wal replays the checkpoint and log tail, answering with
// everything the log retained — including reports newer than any
// snapshot).
//
//	dtaquery -snapshot /tmp/dta.snap -primitive keywrite -key 42 -n 2
//	dtaquery -snapshot /tmp/dta.snap -primitive postcarding -key 42
//	dtaquery -snapshot /tmp/dta.snap -primitive append -list 1 -count 10
//	dtaquery -wal /tmp/dta.wal -primitive keyincrement -key 42
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"

	"dta"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/snapshot"
	"dta/internal/telemetry/netseer"
	"dta/internal/wire"
)

// storeView answers the four primitive queries from either source.
type storeView struct {
	snap *snapshot.Snapshot
	sys  *dta.System
}

func main() {
	var (
		snapPath  = flag.String("snapshot", "", "snapshot file from dtacollect")
		walDir    = flag.String("wal", "", "WAL directory to recover and query (alternative to -snapshot)")
		primitive = flag.String("primitive", "keywrite", "keywrite | postcarding | append | keyincrement")
		key       = flag.Uint64("key", 0, "telemetry key (64-bit form)")
		n         = flag.Int("n", 2, "redundancy used at report time")
		list      = flag.Int("list", 0, "append list to poll")
		count     = flag.Int("count", 10, "append entries to read")
	)
	flag.Parse()
	var view storeView
	switch {
	case *snapPath != "" && *walDir != "":
		log.Fatal("dtaquery: -snapshot and -wal are mutually exclusive")
	case *snapPath != "":
		snap, err := snapshot.Load(*snapPath)
		if err != nil {
			log.Fatal(err)
		}
		view.snap = snap
	case *walDir != "":
		sys, err := dta.RecoverSystem(*walDir)
		if err != nil {
			log.Fatal(err)
		}
		// Recovery replays through the live translator; flush so cached
		// aggregation state (postcards, partial batches) is queryable.
		if err := sys.Flush(); err != nil {
			log.Fatal(err)
		}
		view.sys = sys
	default:
		log.Fatal("dtaquery: -snapshot or -wal is required")
	}
	k := wire.KeyFromUint64(*key)
	switch *primitive {
	case "keywrite":
		st, err := view.keyWriteStore()
		if err != nil {
			log.Fatal(err)
		}
		res, err := st.Query(k, *n, 1)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("key %d: empty return (matches=%d)\n", *key, res.Matches)
			return
		}
		fmt.Printf("key %d: value=%s (agreements %d/%d)\n",
			*key, hex.EncodeToString(res.Data), res.Agreements, res.Matches)
	case "postcarding":
		st, err := view.postcardingStore()
		if err != nil {
			log.Fatal(err)
		}
		res, err := st.Query(k, *n)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Found {
			fmt.Printf("flow %d: no valid chunk\n", *key)
			return
		}
		fmt.Printf("flow %d: path %v (%d valid chunks)\n", *key, res.Values, res.ValidChunks)
	case "append":
		st, err := view.appendStore()
		if err != nil {
			log.Fatal(err)
		}
		p, err := st.NewPoller(*list)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < *count; i++ {
			e := p.Poll()
			if len(e) == netseer.EntrySize {
				flow, seq, reason := netseer.Decode(e)
				fmt.Printf("list %d[%d]: flow=%s seq=%d reason=%d\n",
					*list, i, hex.EncodeToString(flow[:13]), seq, reason)
			} else {
				fmt.Printf("list %d[%d]: %s\n", *list, i, hex.EncodeToString(e))
			}
		}
	case "keyincrement":
		st, err := view.keyIncrementStore()
		if err != nil {
			log.Fatal(err)
		}
		v, err := st.Query(k, *n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("key %d: count >= %d (count-min over N=%d)\n", *key, v, *n)
	default:
		log.Fatalf("dtaquery: unknown primitive %q", *primitive)
	}
}

func (v *storeView) keyWriteStore() (*keywrite.Store, error) {
	if v.sys != nil {
		if st := v.sys.Host().KeyWriteStore(); st != nil {
			return st, nil
		}
		return nil, fmt.Errorf("dtaquery: recovered system has no key-write store")
	}
	return v.snap.KeyWriteStore()
}

func (v *storeView) keyIncrementStore() (*keyincrement.Store, error) {
	if v.sys != nil {
		if st := v.sys.Host().KeyIncrementStore(); st != nil {
			return st, nil
		}
		return nil, fmt.Errorf("dtaquery: recovered system has no key-increment store")
	}
	return v.snap.KeyIncrementStore()
}

func (v *storeView) postcardingStore() (*postcarding.Store, error) {
	if v.sys != nil {
		if st := v.sys.Host().PostcardingStore(); st != nil {
			return st, nil
		}
		return nil, fmt.Errorf("dtaquery: recovered system has no postcarding store")
	}
	return v.snap.PostcardingStore()
}

func (v *storeView) appendStore() (*appendlist.Store, error) {
	if v.sys != nil {
		if st := v.sys.Host().AppendStore(); st != nil {
			return st, nil
		}
		return nil, fmt.Errorf("dtaquery: recovered system has no append store")
	}
	return v.snap.AppendStore()
}
