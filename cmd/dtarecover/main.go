// Command dtarecover inspects and repairs DTA write-ahead-log
// directories (written by dtacollect -wal or the library's WithWAL).
//
//	dtarecover -wal /tmp/dta.wal                  # list segments + checkpoint
//	dtarecover -wal /tmp/dta.wal -verify          # full CRC/LSN verification
//	dtarecover -wal /tmp/dta.wal -dump -from 100  # print records from LSN 100
//	dtarecover -wal /tmp/dta.wal -dump -limit 20
//	dtarecover -wal /tmp/dta.wal -repair          # truncate a torn tail
//	dtarecover -wal /tmp/dta.wal -events          # print the recovery timeline
//
// -events reads the flight-recorder dump (events.jsonl) a recovery left
// in the directory: what the recovering process found and did — torn-
// tail truncation, replay extent — as a causal timeline.
//
// Exit status is non-zero when -verify finds damage before the log's
// tail (a torn tail alone is normal crash debris, reported but OK).
package main

import (
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dta/internal/obs/journal"
	"dta/internal/wal"
	"dta/internal/wire"
)

func main() {
	var (
		dir    = flag.String("wal", "", "WAL directory to inspect")
		verify = flag.Bool("verify", false, "verify every record's CRC and LSN chain")
		dump   = flag.Bool("dump", false, "print records")
		from   = flag.Uint64("from", 1, "first LSN to dump")
		limit  = flag.Int("limit", 50, "max records to dump (0 = all)")
		repair = flag.Bool("repair", false, "truncate a torn tail in place")
		events = flag.Bool("events", false, "print the flight-recorder dump (events.jsonl) a recovery left behind")
	)
	flag.Parse()
	if *dir == "" {
		log.Fatal("dtarecover: -wal is required")
	}
	if *events {
		if err := printEvents(*dir); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*dir, *verify, *dump, *from, *limit, *repair); err != nil {
		log.Fatal(err)
	}
}

// printEvents renders the recovery timeline dumped into the directory.
func printEvents(dir string) error {
	path := filepath.Join(dir, journal.DumpFileName)
	recs, err := journal.ReadDump(path)
	if err != nil {
		return fmt.Errorf("dtarecover: %w (run a recovery with telemetry on to produce the dump)", err)
	}
	var lastCause uint64
	for i := range recs {
		r := &recs[i]
		link := "  "
		if r.Cause != 0 && r.Cause == lastCause {
			link = "└▶"
		}
		lastCause = r.Cause
		who := "-"
		if r.Collector >= 0 {
			who = fmt.Sprintf("c%d", r.Collector)
		}
		cause := ""
		if r.Cause != 0 {
			cause = fmt.Sprintf(" [chain %d]", r.Cause)
		}
		fmt.Printf("%s %-5s %-10s %-3s %s %s%s\n",
			r.Time.Format("15:04:05.000"), r.Sev, r.Component, who, link, r.Detail, cause)
	}
	fmt.Printf("%d events from %s\n", len(recs), path)
	return nil
}

func run(dir string, verify, dump bool, from uint64, limit int, repair bool) error {
	if repair {
		removed, err := wal.RepairTail(dir)
		if err != nil {
			return err
		}
		fmt.Printf("repair: %d torn bytes removed\n", removed)
	}

	segs, err := wal.Segments(dir)
	if err != nil {
		return err
	}
	if m, err := wal.LoadMeta(dir); err != nil {
		return err
	} else if m != nil {
		fmt.Printf("meta: keywrite=%v keyincrement=%v postcarding=%v append=%v\n",
			m.Translator.KeyWrite != nil, m.Translator.KeyIncrement != nil,
			m.Translator.Postcarding != nil, m.Translator.Append != nil)
	}
	if ck, err := wal.LoadCheckpoint(dir); err != nil {
		return err
	} else if ck != nil {
		fmt.Printf("checkpoint: LSN %d\n", ck.WALLSN)
	}
	var total int
	for _, s := range segs {
		status := "ok"
		if s.Err != nil {
			status = fmt.Sprintf("DAMAGED after LSN %d: %v", s.Last, s.Err)
		} else if s.TornBytes > 0 {
			status = fmt.Sprintf("torn tail (%dB)", s.TornBytes)
		}
		fmt.Printf("segment %s: LSN [%d,%d] records=%d bytes=%d %s\n",
			filepath.Base(s.Path), s.First, s.Last, s.Records, s.Bytes+s.TornBytes, status)
		total += s.Records
	}
	fmt.Printf("total: %d segments, %d intact records\n", len(segs), total)

	if verify {
		// Replay validates every frame CRC, the LSN chain and
		// cross-segment contiguity without applying anything.
		last, err := wal.Replay(dir, 1, func(uint64, uint64, *wire.StagedReport) error { return nil })
		switch {
		case errors.Is(err, wal.ErrCorrupt):
			fmt.Printf("verify: CORRUPT — intact prefix ends at LSN %d: %v\n", last, err)
			os.Exit(1)
		case err != nil:
			return err
		default:
			fmt.Printf("verify: clean — %d records replayable up to LSN %d\n", total, last)
		}
	}

	if dump {
		n := 0
		_, err := wal.Replay(dir, from, func(lsn, nowNs uint64, rec *wire.StagedReport) error {
			if limit > 0 && n >= limit {
				return errDumpDone
			}
			n++
			printRecord(lsn, nowNs, rec)
			return nil
		})
		if err != nil && !errors.Is(err, errDumpDone) {
			return err
		}
	}
	return nil
}

var errDumpDone = errors.New("dump limit reached")

func printRecord(lsn, nowNs uint64, rec *wire.StagedReport) {
	switch rec.Primitive() {
	case wire.PrimKeyWrite:
		key, red := rec.KeyWriteArgs()
		fmt.Printf("%8d @%dns key-write key=%s n=%d data=%s\n",
			lsn, nowNs, hex.EncodeToString(key[:8]), red, hex.EncodeToString(rec.Payload()))
	case wire.PrimAppend:
		fmt.Printf("%8d @%dns append list=%d data=%s\n",
			lsn, nowNs, rec.AppendArgs(), hex.EncodeToString(rec.Payload()))
	case wire.PrimKeyIncrement:
		key, red, delta := rec.KeyIncrementArgs()
		fmt.Printf("%8d @%dns key-increment key=%s n=%d delta=%d\n",
			lsn, nowNs, hex.EncodeToString(key[:8]), red, delta)
	case wire.PrimPostcarding:
		key, hop, pathLen, value := rec.PostcardArgs()
		fmt.Printf("%8d @%dns postcard key=%s hop=%d/%d value=%d\n",
			lsn, nowNs, hex.EncodeToString(key[:8]), hop, pathLen, value)
	default:
		fmt.Printf("%8d @%dns unknown primitive %v\n", lsn, nowNs, rec.Primitive())
	}
}
