// Package dta is a Go implementation of Direct Telemetry Access
// (Langlet et al., SIGCOMM 2023): a telemetry collection system that
// moves reports from switches into queryable data structures in a
// collector's memory using RDMA, with no collector CPU involvement.
//
// The package wires the three roles of the paper into one in-process
// system for simulation, testing and benchmarking:
//
//   - Reporters (switches) encapsulate telemetry into the lightweight
//     UDP-based DTA protocol (§5.1).
//   - The Translator (the collector's top-of-rack switch) converts DTA
//     reports into RoCEv2 WRITE / FETCH&ADD operations, aggregating
//     postcards and batching appends on the way (§5.2, Fig. 6).
//   - The Collector hosts RDMA-registered, write-only data structures —
//     Key-Write, Postcarding, Append, Key-Increment — and answers
//     queries over them (§5.3).
//
// A minimal session:
//
//	sys, _ := dta.New(dta.Options{
//		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
//	})
//	rep := sys.Reporter(1)
//	rep.KeyWrite(dta.KeyFromUint64(42), []byte{1, 2, 3, 4}, 2)
//	val, ok, _ := sys.LookupValue(dta.KeyFromUint64(42), 2)
//
// Every packet crosses the real wire formats: reporters serialise full
// Ethernet/IPv4/UDP/DTA frames, the translator parses them and crafts
// RoCEv2 packets with PSN tracking and ICRC, and the collector's device
// model verifies and applies them, acknowledging back. An optional lossy
// link model exercises the recovery paths.
package dta

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/netsim"
	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
	"dta/internal/reporter"
	"dta/internal/translator"
	"dta/internal/wal"
	"dta/internal/wire"
)

// Key is a fixed-width telemetry key (a packed flow 5-tuple, host
// address, query ID, ...).
type Key = wire.Key

// KeyFromUint64 packs a 64-bit scalar key.
func KeyFromUint64(v uint64) Key { return wire.KeyFromUint64(v) }

// FiveTupleKey packs an IPv4 flow 5-tuple.
func FiveTupleKey(srcIP, dstIP [4]byte, srcPort, dstPort uint16, proto uint8) Key {
	return wire.FiveTuple(srcIP, dstIP, srcPort, dstPort, proto)
}

// KeyWriteOptions sizes the Key-Write store.
type KeyWriteOptions struct {
	// Slots is the number of key-value slots (a power of two).
	Slots uint64
	// DataSize is the value width in bytes.
	DataSize int
	// ChecksumBits is the checksum width b (0 = 32).
	ChecksumBits int
}

// KeyIncrementOptions sizes the Key-Increment store.
type KeyIncrementOptions struct {
	// Slots is the number of 64-bit counters (a power of two).
	Slots uint64
	// AggregationRows enables translator-side pre-aggregation of deltas
	// (0 disables; otherwise a power of two). See §4 "Extensibility".
	AggregationRows int
}

// PostcardingOptions sizes the Postcarding store.
type PostcardingOptions struct {
	// Chunks is the number of flow chunks (a power of two).
	Chunks uint64
	// Hops is the path bound B.
	Hops int
	// Values enumerates the value space (e.g. all switch IDs).
	Values []uint32
	// SlotBits is the slot width b (0 = 32).
	SlotBits int
	// CacheRows sizes the translator's aggregation cache (0 = 32768).
	CacheRows int
	// Redundancy is the chunk redundancy N (0 or 1 = single chunk).
	Redundancy int
}

// AppendOptions sizes the Append store.
type AppendOptions struct {
	// Lists is the number of event lists.
	Lists int
	// EntriesPerList is each ring's capacity (a multiple of Batch).
	EntriesPerList int
	// EntrySize is the fixed entry width in bytes.
	EntrySize int
	// Batch is the translator batching factor (0 or 1 = none).
	Batch int
}

// Options assembles a DTA deployment. At least one primitive must be
// enabled.
type Options struct {
	KeyWrite     *KeyWriteOptions
	KeyIncrement *KeyIncrementOptions
	Postcarding  *PostcardingOptions
	Append       *AppendOptions

	// RateLimit caps the translator's RDMA rate (messages/s; 0 = off).
	RateLimit float64
	// ReporterLoss drops this fraction of reporter→translator frames,
	// exercising DTA's best-effort behaviour (0 = lossless).
	ReporterLoss float64
	// Seed fixes the loss pattern.
	Seed int64

	// DisableTelemetry turns the self-telemetry registry off: no metric
	// series are registered (Metrics returns nil) and the per-stage
	// latency histograms never read the clock. The counters behind Stats
	// keep working — they are the same cells, just unexposed. The
	// uninstrumented baseline benchmarks set it. It also disables the
	// flight-recorder event journal (Journal returns nil; every emit
	// site degrades to one nil-check branch).
	DisableTelemetry bool

	// EventJournalSize overrides the flight recorder's ring capacity in
	// events (rounded up to a power of two; 0 = journal.DefaultSize).
	EventJournalSize int
}

// System is an in-process DTA deployment: one collector, one translator,
// any number of reporters.
type System struct {
	host *collector.Host
	tr   *translator.Translator
	link *netsim.Link
	// now is the simulation clock; atomic so Advance can run while an
	// attached Engine worker reads it.
	now atomic.Uint64
	// skew is an injected per-collector clock offset (signed ns, chaos
	// plane): Now reports now + skew, so a skewed collector timestamps
	// reports, token-bucket refills and WAL records off a shifted — and,
	// across a step, non-monotonic — wall clock, exactly the hostile
	// clock the rate limiter and varint time deltas must survive.
	skew atomic.Int64

	// eventsOnce guards the single Events pump; see Events.
	eventsOnce sync.Once
	events     chan ImmediateEvent

	// markDirty, when set (by HACluster), observes every crafted RDMA
	// packet before it is applied, tagging written store blocks for
	// incremental resync. Installed at construction time, before any
	// ingest, so the plain field read below never races.
	markDirty func(pkt []byte)

	// wal, when attached (WithWAL), logs every admitted report for crash
	// recovery and exact log-based replication resync. See durability.go.
	wal *wal.Writer

	// obsReg/obsScope carry the self-telemetry registry the system's
	// layers register into: standalone systems own a fresh registry,
	// cluster members share their cluster's under a collector="i" label
	// scope, and DisableTelemetry leaves both nil (all obs primitives
	// are nil-safe). See obs.go and internal/obs.
	obsReg   *obs.Registry
	obsScope *obs.Scope

	// jr is the flight-recorder event journal the system's layers emit
	// control-plane events into: standalone systems own one, cluster
	// members share their cluster's, DisableTelemetry leaves it nil
	// (every Emitter is nil-safe). collectorID labels this system's
	// events in a shared journal; -1 = standalone. See obs.go.
	jr          *journal.Journal
	collectorID int16

	// trc is the data-plane trace pipeline: sampled end-to-end report
	// traces (submit → queue → translate → emit → WAL → fsync → ack)
	// with tail-based retention of outliers. Standalone systems own
	// one, cluster members share their cluster's, DisableTelemetry
	// leaves it nil (Begin on a nil tracer is a no-op). See
	// internal/obs/trace.
	trc *trace.Tracer
	// ckptCause, when non-zero, is consumed by the next Checkpoint as
	// the causality ID for its journal events: HACluster.Rebalance sets
	// it (under its lock) so a post-resync checkpoint chains under the
	// failure arc that triggered it.
	ckptCause uint64

	// health lazily builds the default /healthz evaluator over obsReg.
	healthOnce sync.Once
	health     *obs.HealthEvaluator

	// Stats mirrors the translator's counters.
	reporters []*Reporter
}

// New builds a System.
func New(opts Options) (*System, error) {
	var reg *obs.Registry
	var jr *journal.Journal
	var trc *trace.Tracer
	if !opts.DisableTelemetry {
		reg = obs.NewRegistry()
		jr = newJournal(opts)
		trc = trace.New(trace.Config{})
	}
	return newSystem(opts, reg, reg.Scope(), jr, trc, -1)
}

// newJournal sizes the flight recorder from Options.
func newJournal(opts Options) *journal.Journal {
	size := opts.EventJournalSize
	if size == 0 {
		size = journal.DefaultSize
	}
	return journal.New(size)
}

// newSystem is New over an externally owned telemetry registry and event
// journal: clusters call it so every member registers into one registry
// (each under its own collector="i" scope) and emits into one journal
// (each under its own collector label). reg, sc and jr may be nil
// (telemetry off); collectorID is -1 for standalone systems.
func newSystem(opts Options, reg *obs.Registry, sc *obs.Scope, jr *journal.Journal, trc *trace.Tracer, collectorID int16) (*System, error) {
	ccfg := collector.Config{}
	tcfg := translator.Config{RateLimit: opts.RateLimit}
	if o := opts.KeyWrite; o != nil {
		c := keywrite.Config{Slots: o.Slots, DataSize: o.DataSize, ChecksumBits: o.ChecksumBits}
		ccfg.KeyWrite, tcfg.KeyWrite = &c, &c
	}
	if o := opts.KeyIncrement; o != nil {
		c := keyincrement.Config{Slots: o.Slots}
		ccfg.KeyIncrement, tcfg.KeyIncrement = &c, &c
		tcfg.KIAggregationRows = o.AggregationRows
	}
	if o := opts.Postcarding; o != nil {
		c := postcarding.Config{Chunks: o.Chunks, Hops: o.Hops, SlotBits: o.SlotBits, Values: o.Values}
		ccfg.Postcarding, tcfg.Postcarding = &c, &c
		tcfg.PostcardCacheRows = o.CacheRows
		tcfg.PostcardRedundancy = o.Redundancy
	}
	if o := opts.Append; o != nil {
		c := appendlist.Config{Lists: o.Lists, EntriesPerList: o.EntriesPerList, EntrySize: o.EntrySize}
		ccfg.Append, tcfg.Append = &c, &c
		tcfg.AppendBatch = o.Batch
	}
	host, err := collector.New(ccfg)
	if err != nil {
		return nil, err
	}
	tr, err := translator.NewScoped(tcfg, host.Listener(), sc)
	if err != nil {
		return nil, err
	}
	s := &System{host: host, tr: tr, obsReg: reg, obsScope: sc, jr: jr, collectorID: collectorID, trc: trc}
	tr.Journal = journal.Emitter{J: jr, Comp: journal.CompTranslator, Collector: collectorID}
	if opts.ReporterLoss > 0 {
		s.link = netsim.NewLink(100e9, 500, opts.ReporterLoss, opts.Seed)
	}
	// Translator → collector is the lossless RDMA hop: emissions apply
	// immediately and acks return synchronously.
	tr.Emit = func(pkt []byte) {
		if s.markDirty != nil {
			s.markDirty(pkt)
		}
		ack, err := host.Ingest(pkt)
		if err != nil {
			// A crafting bug, not a runtime condition: surface loudly.
			panic(fmt.Sprintf("dta: collector rejected RDMA packet: %v", err))
		}
		if ack != nil {
			if err := tr.HandleAck(ack); err != nil {
				panic(fmt.Sprintf("dta: bad ack: %v", err))
			}
		}
	}
	return s, nil
}

// reporterConfig is the one addressing scheme shared by sync and async
// reporters: if it diverged between the two paths, their frames would
// take different ECMP/link-model treatment.
func reporterConfig(switchID uint32) reporter.Config {
	return reporter.Config{
		SwitchID:    switchID,
		SrcIP:       [4]byte{10, 0, byte(switchID >> 8), byte(switchID)},
		CollectorIP: [4]byte{10, 255, 0, 1},
		SrcPort:     uint16(4000 + switchID%1000),
	}
}

// Reporter attaches a new reporter switch with the given ID. Reports
// take the structured staged-report fast path: validated in memory,
// staged by value and handed to the translator with no frame
// serialisation or re-parse — the same zero-allocation chain the
// engine's AsyncReporters use, minus the queue. The lossy-link model
// still accounts the exact on-the-wire frame size, so loss behaviour is
// identical to the wire-format path (FrameReporter).
func (s *System) Reporter(switchID uint32) *Reporter {
	r := &Reporter{sys: s, switchID: switchID}
	s.reporters = append(s.reporters, r)
	return r
}

// FrameReporter attaches a reporter switch that serialises every report
// into a full Ethernet/IPv4/UDP/DTA frame which the translator parses
// back — the wire-format path. It exists for wire coverage and as the
// baseline the structured Reporter is measured against; semantics
// (validation, routing, loss, stored bytes) are identical.
func (s *System) FrameReporter(switchID uint32) *Reporter {
	r := &Reporter{
		sys:      s,
		switchID: switchID,
		frames:   true,
		rep:      reporter.New(reporterConfig(switchID)),
		buf:      make([]byte, wire.MaxReportLen),
	}
	s.reporters = append(s.reporters, r)
	return r
}

// Advance moves the system clock forward (for rate limiting and link
// modelling).
func (s *System) Advance(ns uint64) { s.now.Add(ns) }

// Now returns the system clock in nanoseconds, including any injected
// skew (SetClockSkew).
func (s *System) Now() uint64 { return uint64(int64(s.now.Load()) + s.skew.Load()) }

// SetClockSkew injects a signed offset onto this collector's clock — the
// chaos plane's skew/step fault. A negative step makes Now jump
// backwards (non-monotonic wall time); downstream consumers tolerate it:
// the translator's token bucket clamps refills on time reversal, and WAL
// timestamp deltas are signed varints, so recovery decodes skewed
// records exactly. Safe concurrently with ingest.
func (s *System) SetClockSkew(d int64) { s.skew.Store(d) }

// ClockSkew returns the injected clock offset in nanoseconds.
func (s *System) ClockSkew() int64 { return s.skew.Load() }

// deliver carries one reporter frame across the (optional) lossy link
// into the translator.
func (s *System) deliver(frame []byte) error {
	return s.deliverAt(frame, s.Now())
}

// deliverAt is deliver with an explicit timestamp; the engine's shard
// workers use it so queued reports keep their enqueue-time clock.
func (s *System) deliverAt(frame []byte, nowNs uint64) error {
	if s.link != nil {
		if _, dropped := s.link.Send(nowNs, len(frame)); dropped {
			return nil // best-effort: silently lost, like UDP
		}
	}
	err := s.tr.ProcessFrame(frame, nowNs)
	if errors.Is(err, translator.ErrNotDTA) {
		return nil
	}
	return err
}

// deliverReportAt is the structured counterpart of deliverAt: the report
// was never serialised, so the translator skips the frame parse
// entirely. The lossy-link model still sees the exact on-the-wire size
// the report would have occupied, keeping loss behaviour identical
// across the two ingest paths.
func (s *System) deliverReportAt(r *wire.Report, nowNs uint64) error {
	if s.link != nil {
		if _, dropped := s.link.Send(nowNs, wire.FrameLen(r)); dropped {
			return nil // best-effort: silently lost, like UDP
		}
	}
	return s.tr.ProcessReport(r, nowNs)
}

// deliverStagedAt is deliverReportAt for compact staged records: the
// hottest path, reaching the translator with no report materialisation
// at all.
func (s *System) deliverStagedAt(rec *wire.StagedReport, nowNs uint64) error {
	if s.link != nil {
		if _, dropped := s.link.Send(nowNs, rec.FrameLen()); dropped {
			// The translator never runs for a dropped report, so it
			// cannot clear a trace handle installed for this report —
			// clear it here so a later report can't stamp a recycled
			// trace slot.
			s.tr.SetTraceHandle(trace.Handle{})
			return nil // best-effort: silently lost, like UDP
		}
	}
	return s.tr.ProcessStaged(rec, nowNs)
}

// Reporter is a handle for one reporting switch. Not goroutine-safe:
// the staging scratch (and, in frame mode, the serialisation buffer) is
// per-handle. Create one per producer goroutine; they are cheap.
type Reporter struct {
	sys      *System
	switchID uint32

	// scratch/staged are the structured-path staging state: the report
	// is assembled in scratch (only the active sub-header is written per
	// report), validated with decoder parity, snapshotted into staged
	// and handed to the translator — no frame bytes anywhere.
	scratch wire.Report
	staged  wire.StagedReport

	// Frame-mode state (FrameReporter only).
	frames bool
	rep    *reporter.Reporter
	buf    []byte

	// smp is this reporter's trace sampling counter: caller-local so the
	// sampled-out fast path touches no shared cache line.
	smp trace.Sampler
}

// send validates and delivers the scratch report via the staged path.
func (r *Reporter) send(rep *wire.Report) error {
	if err := rep.Validate(); err != nil {
		return err
	}
	r.staged.Stage(rep)
	if t := r.sys.trc; t != nil && t.Candidate(&r.smp) {
		return r.sendTraced(t)
	}
	return r.sys.deliverStagedAt(&r.staged, r.sys.Now())
}

// sendTraced is the sampled-candidate delivery path. Kept out of line
// so send's common path never materialises a trace Handle: holding the
// two-word handle live across the deliver call costs registers — a few
// ns per report, traced or not — which the <3% telemetry overhead gate
// has no room for.
//
//go:noinline
func (r *Reporter) sendTraced(t *trace.Tracer) error {
	h := t.BeginCandidate()
	if h.Valid() {
		h.Stamp(trace.StSubmit)
		r.sys.tr.SetTraceHandle(h)
	}
	err := r.sys.deliverStagedAt(&r.staged, r.sys.Now())
	h.Finish()
	return err
}

// KeyWrite stores data under key with redundancy n.
func (r *Reporter) KeyWrite(key Key, data []byte, n int) error {
	if r.frames {
		ln, err := r.rep.KeyWrite(r.buf, key, data, uint8(n), false)
		if err != nil {
			return err
		}
		return r.sys.deliver(r.buf[:ln])
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite}
	rep.KeyWrite = wire.KeyWrite{Redundancy: uint8(n), DataLen: uint16(len(data)), Key: key}
	rep.Data = data
	return r.send(rep)
}

// KeyWriteImmediate is KeyWrite with the immediate flag set, raising a
// push notification at the collector.
func (r *Reporter) KeyWriteImmediate(key Key, data []byte, n int) error {
	if r.frames {
		ln, err := r.rep.KeyWrite(r.buf, key, data, uint8(n), true)
		if err != nil {
			return err
		}
		return r.sys.deliver(r.buf[:ln])
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite, Flags: wire.FlagImmediate}
	rep.KeyWrite = wire.KeyWrite{Redundancy: uint8(n), DataLen: uint16(len(data)), Key: key}
	rep.Data = data
	return r.send(rep)
}

// Append adds data to the tail of list.
func (r *Reporter) Append(list uint32, data []byte) error {
	if r.frames {
		ln, err := r.rep.Append(r.buf, list, data, false)
		if err != nil {
			return err
		}
		return r.sys.deliver(r.buf[:ln])
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimAppend}
	rep.Append = wire.Append{ListID: list, DataLen: uint16(len(data))}
	rep.Data = data
	return r.send(rep)
}

// Increment adds delta to key's counter with redundancy n.
func (r *Reporter) Increment(key Key, delta uint64, n int) error {
	if r.frames {
		ln, err := r.rep.KeyIncrement(r.buf, key, delta, uint8(n))
		if err != nil {
			return err
		}
		return r.sys.deliver(r.buf[:ln])
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement}
	rep.KeyIncrement = wire.KeyIncrement{Redundancy: uint8(n), Key: key, Delta: delta}
	rep.Data = nil
	return r.send(rep)
}

// Postcard reports this switch's observation of hop of the packet/flow
// identified by key, carrying the switch ID as the value (path tracing).
func (r *Reporter) Postcard(key Key, hop, pathLen int) error {
	return r.PostcardValue(key, hop, pathLen, r.switchID)
}

// PostcardValue reports an arbitrary per-hop value (e.g. queueing
// latency) for the packet/flow identified by key.
func (r *Reporter) PostcardValue(key Key, hop, pathLen int, value uint32) error {
	if r.frames {
		ln, err := r.rep.PostcardValue(r.buf, key, uint8(hop), uint8(pathLen), value)
		if err != nil {
			return err
		}
		return r.sys.deliver(r.buf[:ln])
	}
	rep := &r.scratch
	rep.Header = wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding}
	rep.Postcard = wire.Postcard{Key: key, Hop: uint8(hop), PathLen: uint8(pathLen), Value: value}
	rep.Data = nil
	return r.send(rep)
}

// LookupValue queries the Key-Write store: the value stored under key,
// if it is still reconstructible (plurality vote over n slots).
func (s *System) LookupValue(key Key, n int) (data []byte, ok bool, err error) {
	res, err := s.host.QueryKeyWrite(key, n, 1)
	if err != nil {
		return nil, false, err
	}
	return res.Data, res.Found, nil
}

// LookupPath queries the Postcarding store: the per-hop values recorded
// for key across n redundant chunks.
func (s *System) LookupPath(key Key, n int) (values []uint32, ok bool, err error) {
	res, err := s.host.QueryPostcards(key, n)
	if err != nil {
		return nil, false, err
	}
	return res.Values, res.Found, nil
}

// LookupCount queries the Key-Increment store: the count-min estimate
// for key over n counters.
func (s *System) LookupCount(key Key, n int) (uint64, error) {
	return s.host.QueryCount(key, n)
}

// AppendPoller reads entries out of one Append list.
type AppendPoller = appendlist.Poller

// Poller returns a reader over one Append list. Call Flush first to push
// out partial translator batches.
func (s *System) Poller(list int) (*AppendPoller, error) {
	return s.host.AppendPoller(list)
}

// Flush forces out partial Append batches, cached postcards and pending
// Key-Increment aggregates (end of a measurement epoch).
func (s *System) Flush() error {
	return s.flushAt(s.Now())
}

// flushAt is Flush with an explicit timestamp (engine shard workers).
func (s *System) flushAt(nowNs uint64) error {
	if err := s.tr.FlushAppend(nowNs); err != nil {
		return err
	}
	if err := s.tr.FlushKeyIncrements(nowNs); err != nil {
		return err
	}
	if err := s.tr.DrainPostcards(nowNs); err != nil {
		return err
	}
	// A flush is a batch boundary for the WAL sync policy too: drains
	// and epoch ends leave the log as durable as the policy promises.
	return s.walCommitBatch()
}

// ImmediateEvent is a push notification raised by a report sent with
// the immediate flag.
type ImmediateEvent struct {
	QPN uint32
	Imm uint32
}

// Events exposes the collector's push-notification channel (reports sent
// with the immediate flag). The re-typing pump over the internal channel
// is started once, on the first call, and every call returns the same
// channel: the stream is single-consumer. Fanning it out to multiple
// receivers would split events between them nondeterministically —
// multiplex behind one receiver instead. (Earlier versions spawned a
// fresh pump per call, so concurrent callers silently stole each other's
// events and every pump goroutine leaked.)
func (s *System) Events() <-chan ImmediateEvent {
	s.eventsOnce.Do(func() {
		s.events = make(chan ImmediateEvent, cap(s.host.Events))
		go func() {
			for ev := range s.host.Events {
				s.events <- ImmediateEvent{QPN: ev.QPN, Imm: ev.Imm}
			}
			close(s.events)
		}()
	})
	return s.events
}

// Stats reports end-to-end counters.
type Stats struct {
	Reports       uint64
	RDMAWrites    uint64
	RDMAAtomics   uint64
	RateDropped   uint64
	Resyncs       uint64
	PostcardEmits uint64
	AppendFlushes uint64
	LinkDropped   uint64
	// MemInstrPerReport is Fig. 8's metric: DMA memory instructions per
	// attributed report.
	MemInstrPerReport float64
}

// Stats snapshots system counters. Reports are attributed to the memory
// instruction counter on each call.
func (s *System) Stats() Stats {
	dev := s.host.Device()
	tst := s.tr.Stats()
	if attributed := dev.Mem.Reports; tst.Reports > attributed {
		dev.AttributeReports(tst.Reports - attributed)
	}
	st := Stats{
		Reports:           tst.Reports,
		RDMAWrites:        tst.RDMAWrites,
		RDMAAtomics:       tst.RDMAAtomics,
		RateDropped:       tst.RateDropped,
		Resyncs:           tst.Resyncs,
		PostcardEmits:     tst.PostcardEmits,
		AppendFlushes:     tst.AppendFlushes,
		MemInstrPerReport: dev.Mem.PerReport(),
	}
	if s.link != nil {
		st.LinkDropped = s.link.Dropped
	}
	return st
}

// InstallLatencyQuery installs the §7 query-enhancing extension on the
// translator: postcards are aggregated per flow and only flows whose
// per-hop values sum beyond threshold are appended (as 16B key + 8B sum
// entries) to the given list. The returned query exposes statistics.
func (s *System) InstallLatencyQuery(cacheRows, hops int, threshold uint64, list uint32) *translator.ThresholdQuery {
	q := translator.NewThresholdQuery(cacheRows, hops, threshold, list)
	s.tr.InstallThresholdQuery(q)
	return q
}

// Host exposes the underlying collector (advanced use, benchmarks).
func (s *System) Host() *collector.Host { return s.host }

// Translator exposes the underlying translator (advanced use).
func (s *System) Translator() *translator.Translator { return s.tr }
