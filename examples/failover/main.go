// Failover: replicated multi-collector DTA surviving a collector crash
// (§7 "Supporting Multiple Collectors", extended with the internal/ha
// control plane).
//
// Three collectors hold every key on R=2 of them, chosen by a
// rendezvous-hash ring. The walkthrough kills a collector mid-run,
// shows queries failing over to the surviving replica, rejoins the dead
// collector and lets failover queries read-repair it key by key, then
// resynchronises the rest incrementally with Rebalance (replaying only
// the store blocks written since the crash), and finally grows the
// cluster by a fourth collector — all without losing an acknowledged
// report. Run with:
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"dta"
)

func main() {
	cluster, err := dta.NewHACluster(3, 2, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := cluster.Reporter(1)

	value := func(i uint64) []byte {
		var d [4]byte
		binary.BigEndian.PutUint32(d[:], uint32(i))
		return d[:]
	}
	write := func(from, to uint64) {
		for i := from; i < to; i++ {
			if err := rep.KeyWrite(dta.KeyFromUint64(i), value(i), 2); err != nil {
				log.Fatal(err)
			}
		}
	}
	check := func(stage string, from, to uint64) {
		ok := 0
		for i := from; i < to; i++ {
			data, found, err := cluster.LookupValue(dta.KeyFromUint64(i), 2)
			if err != nil {
				log.Fatalf("%s: key %d: %v", stage, i, err)
			}
			if found && bytes.Equal(data, value(i)) {
				ok++
			}
		}
		fmt.Printf("%-42s %d/%d keys answer correctly\n", stage, ok, to-from)
	}

	const keys = 2000

	// Phase 1: healthy cluster. Every key lands on both of its owners.
	write(0, keys/2)
	check("healthy cluster:", 0, keys/2)

	// Phase 2: collector 1 dies mid-run. Writers skip it (counting
	// degraded writes), and queries for its keys fail over to the
	// surviving replica — nothing acknowledged is lost.
	if err := cluster.SetDown(1); err != nil {
		log.Fatal(err)
	}
	write(keys/2, keys)
	check("collector 1 down, replicas answering:", 0, keys)
	st := cluster.HAStats()
	fmt.Printf("%-42s degraded-writes=%d lost-writes=%d failover-queries=%d\n",
		"degradation so far:", st.DegradedWrites, st.LostWrites, st.FailoverQueries)

	// Phase 3: collector 1 rejoins stale. Every failover query that
	// notices it disagreeing with the fresh replica writes the winning
	// value back into it — read-repair: the cluster heals continuously,
	// query by query, before any rebalance barrier.
	if err := cluster.SetUp(1); err != nil {
		log.Fatal(err)
	}
	healed := 0
	for i := uint64(keys / 2); i < keys; i++ { // the slice collector 1 missed
		k := dta.KeyFromUint64(i)
		if _, _, err := cluster.LookupValue(k, 2); err != nil {
			log.Fatal(err)
		}
		if data, found, err := cluster.System(1).LookupValue(k, 2); err == nil && found && bytes.Equal(data, value(i)) {
			healed++
		}
	}
	st = cluster.HAStats()
	fmt.Printf("%-42s %d keys healed in place, read-repairs=%d\n",
		"rejoined stale, queries read-repairing:", healed, st.ReadRepairs)

	// Phase 3b: Rebalance mops up whatever no query touched — and only
	// that: the dirty tracker replays just the store blocks written
	// since collector 1 crashed, not whole peer snapshots.
	if err := cluster.Rebalance(); err != nil {
		log.Fatal(err)
	}
	st = cluster.HAStats()
	fmt.Printf("%-42s slots-replayed=%d slots-skipped=%d\n",
		"incremental rebalance:", st.ResyncSlots, st.ResyncSlotsSkipped)
	direct := 0
	ownedBy1 := 0
	for i := uint64(0); i < keys; i++ {
		k := dta.KeyFromUint64(i)
		for _, o := range cluster.Owners(k) {
			if o != 1 {
				continue
			}
			ownedBy1++
			data, found, err := cluster.System(1).LookupValue(k, 2)
			if err == nil && found && bytes.Equal(data, value(i)) {
				direct++
			}
		}
	}
	fmt.Printf("%-42s %d/%d owned keys served directly\n",
		"collector 1 rejoined + resynced:", direct, ownedBy1)

	// Phase 4: live resharding. A fourth collector joins; the
	// rendezvous ring moves ~R/(n+1) of the keys to it, Rebalance
	// replays them in, and the whole key space still answers.
	id, err := cluster.AddCollector()
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Rebalance(); err != nil {
		log.Fatal(err)
	}
	check(fmt.Sprintf("grown to %d collectors:", cluster.Size()), 0, keys)
	gained := 0
	for i := uint64(0); i < keys; i++ {
		for _, o := range cluster.Owners(dta.KeyFromUint64(i)) {
			if o == id {
				gained++
			}
		}
	}
	fmt.Printf("%-42s %d/%d keys moved to the newcomer\n", "ring movement:", gained, keys)
}
