// Marple integration: two language-directed switch queries exported
// through DTA (§6.1, Fig. 7b of the paper).
//
//   - TCP timeouts per flow → Key-Write: operators can ask "how many RTOs
//     has this exact 5-tuple suffered?"
//   - Per-host byte counters with on-switch eviction → Key-Increment:
//     the Count-Min store aggregates deltas from the switch's tiny cache.
//
// Run with:
//
//	go run ./examples/marple
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"dta"
	"dta/internal/telemetry/marple"
	"dta/internal/trace"
	"dta/internal/wire"
)

func main() {
	sys, err := dta.New(dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	sw := sys.Reporter(11)

	cfg := trace.DefaultConfig()
	cfg.LossRate = 0.01
	cfg.TimeoutRate = 0.5
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	timeouts := marple.NewTCPTimeouts(2)
	hosts := marple.NewHostCounters(256, 2)
	var reports []wire.Report
	groundTruth := map[[4]byte]uint64{}
	var worstFlow trace.FlowKey
	const pkts = 60000
	for i := 0; i < pkts; i++ {
		p := g.Next()
		groundTruth[p.Flow.SrcIP] += uint64(p.Size)
		if p.TimedOut {
			worstFlow = p.Flow
		}
		reports = timeouts.Process(&p, reports[:0])
		reports = hosts.Process(&p, reports)
		for j := range reports {
			r := &reports[j]
			switch r.Header.Primitive {
			case wire.PrimKeyWrite:
				err = sw.KeyWrite(r.KeyWrite.Key, r.Data, int(r.KeyWrite.Redundancy))
			case wire.PrimKeyIncrement:
				err = sw.Increment(r.KeyIncrement.Key, r.KeyIncrement.Delta, int(r.KeyIncrement.Redundancy))
			}
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	// End of epoch: evict remaining host counters.
	reports = hosts.Flush(reports[:0])
	for j := range reports {
		r := &reports[j]
		if err := sw.Increment(r.KeyIncrement.Key, r.KeyIncrement.Delta, int(r.KeyIncrement.Redundancy)); err != nil {
			log.Fatal(err)
		}
	}

	// Query 1: RTO count of the last flow that timed out.
	val, ok, err := sys.LookupValue(worstFlow.Key(), 2)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("flow %v: %d TCP timeouts (switch-local truth: %d)\n",
			worstFlow, binary.BigEndian.Uint32(val), timeouts.Count(worstFlow))
	} else {
		fmt.Printf("flow %v: timeout count aged out of the store\n", worstFlow)
	}

	// Query 2: byte counters for three hosts vs ground truth. Count-Min
	// never undercounts.
	shown := 0
	for ip, want := range groundTruth {
		var hostKey dta.Key
		copy(hostKey[:4], ip[:])
		got, err := sys.LookupCount(hostKey, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("host %d.%d.%d.%d: %d bytes (truth %d, overcount %+d)\n",
			ip[0], ip[1], ip[2], ip[3], got, want, int64(got)-int64(want))
		if shown++; shown == 3 {
			break
		}
	}
	st := sys.Stats()
	fmt.Printf("reports=%d rdma-writes=%d fetch-adds=%d\n",
		st.Reports, st.RDMAWrites, st.RDMAAtomics)
}
