// Loss events: NetSeer-style packet-loss telemetry through the Append
// primitive (§6.7 of the paper).
//
// Switches append an 18-byte event to a network-wide list for every
// dropped packet; the translator batches 16 events per RDMA WRITE and
// the collector CPU drains the list with a polling loop. Run with:
//
//	go run ./examples/lossevents
package main

import (
	"fmt"
	"log"

	"dta"
	"dta/internal/telemetry/netseer"
	"dta/internal/trace"
	"dta/internal/wire"
)

func main() {
	const lossList = 0

	sys, err := dta.New(dta.Options{
		Append: &dta.AppendOptions{
			Lists:          4,
			EntriesPerList: 1 << 16,
			EntrySize:      netseer.EntrySize,
			Batch:          16,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A lossy network: 1% of packets drop somewhere.
	cfg := trace.DefaultConfig()
	cfg.LossRate = 0.01
	g, err := trace.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sw := sys.Reporter(3)
	q := &netseer.LossEvents{ListID: lossList}
	var reports []wire.Report
	const pkts = 50000
	for i := 0; i < pkts; i++ {
		p := g.Next()
		reports = q.Process(&p, reports[:0])
		for j := range reports {
			if err := sw.Append(lossList, reports[j].Data); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// The collector drains the list: Algorithm 4's pointer-chase.
	poller, err := sys.Poller(lossList)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d loss events collected from %d packets; first five:\n", q.Events, pkts)
	for i := uint64(0); i < 5 && i < q.Events; i++ {
		flow, seq, reason := netseer.Decode(poller.Poll())
		fmt.Printf("  loss %d: flow=%x seq=%d reason=%d\n", i, flow[:13], seq, reason)
	}
	st := sys.Stats()
	fmt.Printf("reports=%d batched-writes=%d mem-instr/report=%.3f\n",
		st.Reports, st.AppendFlushes, st.MemInstrPerReport)
}
