// Path tracing: INT-XD postcard collection with the Postcarding
// primitive (§6.6 of the paper).
//
// Every switch on a flow's path emits a 4-byte postcard; the translator
// aggregates the postcards of each flow in its cache and writes one
// 32-byte chunk per flow into the collector. Querying a flow returns its
// full switch-level path with a single random memory access. Run with:
//
//	go run ./examples/pathtracing
package main

import (
	"fmt"
	"log"

	"dta"
	"dta/internal/telemetry/inttel"
	"dta/internal/trace"
)

func main() {
	const switches = 512

	paths, err := inttel.NewPathModel(switches, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	sys, err := dta.New(dta.Options{
		Postcarding: &dta.PostcardingOptions{
			Chunks: 1 << 16,
			Hops:   5,
			Values: paths.ValueSpace(), // all switch IDs
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Replay a synthetic DC trace: each packet's hops report postcards
	// from their own reporter handles (one per switch).
	g, err := trace.NewGenerator(trace.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	reporters := make(map[uint32]*dta.Reporter)
	flows := map[dta.Key][]uint32{}
	for i := 0; i < 5000; i++ {
		p := g.Next()
		key := p.Flow.Key()
		n := paths.Len(key)
		if _, seen := flows[key]; !seen {
			flows[key] = paths.Path(key, nil)
		}
		for hop := 0; hop < n; hop++ {
			id := paths.SwitchID(key, hop)
			rep := reporters[id]
			if rep == nil {
				rep = sys.Reporter(id)
				reporters[id] = rep
			}
			if err := rep.Postcard(key, hop, n); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// Query every observed flow's path back out of collector memory.
	okCount, wrong := 0, 0
	for key, want := range flows {
		got, ok, err := sys.LookupPath(key, 1)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			continue
		}
		okCount++
		if len(got) != len(want) {
			wrong++
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				wrong++
				break
			}
		}
	}
	st := sys.Stats()
	fmt.Printf("flows traced: %d/%d (wrong paths: %d)\n", okCount, len(flows), wrong)
	fmt.Printf("postcards=%d chunk-writes=%d mem-instr/report=%.2f\n",
		st.Reports, st.PostcardEmits, st.MemInstrPerReport)
}
