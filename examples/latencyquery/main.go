// Latency query: the paper's query-enhancing extension (§7).
//
//	SELECT flowID, path WHERE SUM(latency) > T
//
// Instead of shipping every per-hop latency postcard to the collector,
// the translator aggregates them and appends only the flows whose
// end-to-end latency exceeds the threshold — the collector polls a short
// list of offenders instead of reconstructing millions of paths. Run:
//
//	go run ./examples/latencyquery
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"dta"
	"dta/internal/wire"
)

func main() {
	const (
		thresholdNs = 400 // SUM(latency) > 400 triggers
		eventList   = 0
		hops        = 5
	)

	// Only Append is needed at the collector: the query's output is a
	// list of (flow, total latency) events. Entries are 24 B.
	sys, err := dta.New(dta.Options{
		Postcarding: &dta.PostcardingOptions{
			Chunks: 1 << 12, Hops: hops, Values: []uint32{1}, // placeholder space
		},
		Append: &dta.AppendOptions{
			Lists: 2, EntriesPerList: 1 << 12, EntrySize: 24, Batch: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	q := sys.InstallLatencyQuery(1<<12, hops, thresholdNs, eventList)

	// 500 flows: most healthy (~50ns/hop), a few congested (~200ns/hop).
	rnd := rand.New(rand.NewSource(1))
	sw := sys.Reporter(1)
	congested := map[uint64]bool{}
	for flow := uint64(0); flow < 500; flow++ {
		perHop := 30 + rnd.Intn(40)
		if rnd.Float64() < 0.04 {
			congested[flow] = true
			perHop = 150 + rnd.Intn(100)
		}
		key := dta.KeyFromUint64(flow)
		for hop := 0; hop < hops; hop++ {
			lat := uint32(perHop + rnd.Intn(10))
			if err := sw.PostcardValue(key, hop, hops, lat); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// Poll the offender list.
	p, err := sys.Poller(eventList)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: SELECT flowID, SUM(latency) WHERE SUM(latency) > %d\n", thresholdNs)
	fmt.Printf("flows observed: 500 (%d congested); events triggered: %d\n",
		len(congested), q.Stats.Triggered)
	hits := 0
	for i := uint64(0); i < q.Stats.Triggered; i++ {
		e := p.Poll()
		var key wire.Key
		copy(key[:], e[:wire.KeySize])
		sum := binary.BigEndian.Uint64(e[wire.KeySize:])
		flow := key.Uint64()
		mark := " "
		if congested[flow] {
			mark = "*"
			hits++
		}
		fmt.Printf("  %s flow %3d  end-to-end latency %dns\n", mark, flow, sum)
	}
	fmt.Printf("all %d known-congested flows reported: %v\n", len(congested), hits == len(congested))
}
