// Asyncingest: concurrent reporters through the sharded ingest engine.
//
// Four reporter goroutines push Key-Writes and counter increments into
// a 2-collector cluster through the asynchronous engine; each
// collector's translator+host runs on its own worker goroutine behind a
// bounded queue. Drain is the epoch barrier: after it, every submitted
// report is queryable. Run with:
//
//	go run ./examples/asyncingest
package main

import (
	"fmt"
	"log"
	"sync"

	"dta"
)

func main() {
	cluster, err := dta.NewCluster(2, dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cluster.Engine(dta.EngineConfig{QueueDepth: 128, ChunkFrames: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	const producers, perProducer = 4, 25000
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One AsyncReporter per goroutine: it owns encoder state and
			// staged chunks.
			rep := eng.Reporter(uint32(g + 1))
			for i := 0; i < perProducer; i++ {
				key := dta.KeyFromUint64(uint64(g)<<32 | uint64(i))
				val := []byte{byte(g), 0, byte(i >> 8), byte(i)}
				if err := rep.KeyWrite(key, val, 2); err != nil {
					log.Fatal(err)
				}
				if err := rep.Increment(dta.KeyFromUint64(uint64(i%512)), 1, 2); err != nil {
					log.Fatal(err)
				}
			}
			// Push staged chunks out before the barrier below.
			if err := rep.Flush(); err != nil {
				log.Fatal(err)
			}
		}(g)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		log.Fatal(err)
	}

	// Everything drained is queryable on the owning collector.
	val, ok, err := cluster.LookupValue(dta.KeyFromUint64(3<<32|1234), 2)
	if err != nil || !ok {
		log.Fatalf("lookup failed: ok=%v err=%v", ok, err)
	}
	count, err := cluster.LookupCount(dta.KeyFromUint64(42), 2)
	if err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("value for producer 3 seq 1234: %x\n", val)
	// i%512 == 42 hits ceil((perProducer-42)/512) times per producer.
	want := producers * ((perProducer - 42 + 511) / 512)
	fmt.Printf("count for key 42: %d (want %d)\n", count, want)
	fmt.Printf("engine: enqueued=%d processed=%d dropped=%d batches=%d across %d shards\n",
		st.Enqueued, st.Processed, st.Dropped, st.Batches, eng.Shards())
}
