// Quickstart: the smallest end-to-end DTA session.
//
// One reporter stores a per-flow value through the Key-Write primitive
// with 2-way redundancy; the collector reads it back by recomputing the
// same stateless hashes. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dta"
)

func main() {
	// A collector with a 1M-slot Key-Write store of 4-byte values.
	sys, err := dta.New(dta.Options{
		KeyWrite: &dta.KeyWriteOptions{Slots: 1 << 20, DataSize: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A switch reports a value for one flow. The frame really crosses
	// the DTA wire protocol and becomes two RDMA WRITEs (N=2).
	sw := sys.Reporter(7)
	flow := dta.FiveTupleKey(
		[4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 44321, 443, 6)
	if err := sw.KeyWrite(flow, []byte{0xca, 0xfe, 0x00, 0x42}, 2); err != nil {
		log.Fatal(err)
	}

	// The operator queries the collector's memory.
	val, ok, err := sys.LookupValue(flow, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found=%v value=%x\n", ok, val)

	st := sys.Stats()
	fmt.Printf("reports=%d rdma-writes=%d mem-instr/report=%.1f\n",
		st.Reports, st.RDMAWrites, st.MemInstrPerReport)
}
