package dta_test

import (
	"errors"
	"sync"
	"testing"

	"dta"
	"dta/internal/loadgen"
)

func engineOptions() dta.Options {
	return dta.Options{
		KeyWrite:     &dta.KeyWriteOptions{Slots: 1 << 18, DataSize: 4},
		KeyIncrement: &dta.KeyIncrementOptions{Slots: 1 << 16},
		Postcarding:  &dta.PostcardingOptions{Chunks: 1 << 14, Hops: 5, Values: seqValues(64)},
		Append:       &dta.AppendOptions{Lists: 8, EntriesPerList: 1 << 12, EntrySize: 4, Batch: 16},
	}
}

func seqValues(n int) []uint32 {
	vals := make([]uint32, n)
	for i := range vals {
		vals[i] = uint32(i + 1)
	}
	return vals
}

// TestEngineSystemAsyncIngest pushes Key-Writes from concurrent
// producers through a single-shard engine and verifies every value is
// queryable after Drain.
func TestEngineSystemAsyncIngest(t *testing.T) {
	sys, err := dta.New(engineOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.Engine(dta.EngineConfig{QueueDepth: 256, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const producers, perProducer = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep := eng.Reporter(uint32(g + 1))
			for i := 0; i < perProducer; i++ {
				k := uint64(g)<<32 | uint64(i)
				data := []byte{byte(g), byte(i >> 16), byte(i >> 8), byte(i)}
				if err := rep.KeyWrite(dta.KeyFromUint64(k), data, 2); err != nil {
					t.Errorf("KeyWrite(%d): %v", k, err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
			}
		}(g)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}

	st := eng.Stats()
	if want := uint64(producers * perProducer); st.Enqueued != want || st.Processed != want {
		t.Fatalf("engine stats = %+v, want %d enqueued and processed", st, want)
	}
	if st.Dropped != 0 {
		t.Fatalf("block policy dropped %d reports", st.Dropped)
	}
	for g := 0; g < producers; g++ {
		for i := 0; i < perProducer; i += 97 {
			k := uint64(g)<<32 | uint64(i)
			data, ok, err := sys.LookupValue(dta.KeyFromUint64(k), 2)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("key %d lost after drain", k)
			}
			if data[0] != byte(g) || data[3] != byte(i) {
				t.Fatalf("key %d holds %v, want producer %d seq %d", k, data, g, i)
			}
		}
	}
	if got := sys.Stats().Reports; got != uint64(producers*perProducer) {
		t.Fatalf("translator processed %d reports, want %d", got, producers*perProducer)
	}
}

// TestEngineClusterMatchesSync ingests the same workload synchronously
// and through a sharded engine and verifies both clusters answer
// queries identically.
func TestEngineClusterMatchesSync(t *testing.T) {
	const shards, keys = 4, 2000
	syncCl, err := dta.NewCluster(shards, engineOptions())
	if err != nil {
		t.Fatal(err)
	}
	asyncCl, err := dta.NewCluster(shards, engineOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asyncCl.Engine(dta.EngineConfig{QueueDepth: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	syncRep := syncCl.Reporter(1)
	asyncRep := eng.Reporter(1)
	for i := 0; i < keys; i++ {
		k := dta.KeyFromUint64(uint64(i))
		data := []byte{byte(i >> 24), byte(i >> 16), byte(i >> 8), byte(i)}
		if err := syncRep.KeyWrite(k, data, 2); err != nil {
			t.Fatal(err)
		}
		if err := asyncRep.KeyWrite(k, data, 2); err != nil {
			t.Fatal(err)
		}
		if err := syncRep.Increment(k, uint64(i%7+1), 2); err != nil {
			t.Fatal(err)
		}
		if err := asyncRep.Increment(k, uint64(i%7+1), 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := asyncRep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := syncCl.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i += 41 {
		k := dta.KeyFromUint64(uint64(i))
		sv, sok, err := syncCl.LookupValue(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		av, aok, err := asyncCl.LookupValue(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sok != aok || (sok && string(sv) != string(av)) {
			t.Fatalf("key %d: sync=(%v,%v) async=(%v,%v)", i, sv, sok, av, aok)
		}
		sc, err := syncCl.LookupCount(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		ac, err := asyncCl.LookupCount(k, 2)
		if err != nil {
			t.Fatal(err)
		}
		if sc != ac {
			t.Fatalf("key %d: sync count %d, async count %d", i, sc, ac)
		}
	}
	ss, as := syncCl.Stats(), asyncCl.Stats()
	if ss.Reports != as.Reports {
		t.Fatalf("sync translators saw %d reports, async %d", ss.Reports, as.Reports)
	}
}

// TestEngineLoadgenDeterminism runs the same seeded mixed workload
// twice and requires identical per-shard enqueue counts.
func TestEngineLoadgenDeterminism(t *testing.T) {
	perShard := func(seed int64) []uint64 {
		cl, err := dta.NewCluster(4, engineOptions())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cl.Engine(dta.EngineConfig{QueueDepth: 1024, Batch: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		cfg := loadgen.Config{
			Profile:   loadgen.Profile{Kind: loadgen.Mixed, Keys: 1 << 12},
			Reporters: 6,
			Reports:   2000,
			Seed:      seed,
			Drain:     eng.Drain,
		}
		res, err := loadgen.Run(cfg, func(i int) loadgen.Reporter {
			return eng.Reporter(uint32(i + 1))
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(cfg.Reporters * cfg.Reports); res.Submitted != want {
			t.Fatalf("submitted %d, want %d", res.Submitted, want)
		}
		counts := make([]uint64, eng.Shards())
		var total uint64
		for i, st := range eng.ShardStats() {
			counts[i] = st.Enqueued
			total += st.Enqueued
			if st.Enqueued != st.Processed {
				t.Fatalf("shard %d: enqueued %d != processed %d after drain", i, st.Enqueued, st.Processed)
			}
		}
		if total != res.Submitted {
			t.Fatalf("shards hold %d reports, loadgen submitted %d", total, res.Submitted)
		}
		return counts
	}

	a := perShard(99)
	b := perShard(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d: %d vs %d reports across same-seed runs", i, a[i], b[i])
		}
	}
	c := perShard(100)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical per-shard counts")
	}
}

// TestEngineCloseSemantics covers the public enqueue-after-Close path.
func TestEngineCloseSemantics(t *testing.T) {
	sys, err := dta.New(engineOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.Engine(dta.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Reporter(1)
	if err := rep.KeyWrite(dta.KeyFromUint64(7), []byte{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	// Staged reports die with Close; only flushed ones survive it.
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rep.KeyWrite(dta.KeyFromUint64(8), []byte{1, 2, 3, 4}, 2); !errors.Is(err, dta.ErrEngineClosed) {
		t.Fatalf("KeyWrite after Close = %v, want ErrEngineClosed", err)
	}
	if err := eng.Drain(); !errors.Is(err, dta.ErrEngineClosed) {
		t.Fatalf("Drain after Close = %v, want ErrEngineClosed", err)
	}
	// The pre-close report was ingested and flushed on Close.
	if _, ok, err := sys.LookupValue(dta.KeyFromUint64(7), 2); err != nil || !ok {
		t.Fatalf("pre-close report lost (ok=%v err=%v)", ok, err)
	}
}

// TestEngineDropPolicy checks the shed-with-stat path end to end: with
// a tiny queue and relentless producers, drops are counted and
// everything accepted is ingested.
func TestEngineDropPolicy(t *testing.T) {
	sys, err := dta.New(engineOptions())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.Engine(dta.EngineConfig{QueueDepth: 4, Batch: 2, Policy: dta.EngineDrop})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const producers, perProducer = 4, 2000
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep := eng.Reporter(uint32(g + 1))
			for i := 0; i < perProducer; i++ {
				k := uint64(g)<<32 | uint64(i)
				if err := rep.KeyWrite(dta.KeyFromUint64(k), []byte{1, 2, 3, 4}, 1); err != nil {
					t.Errorf("drop-policy KeyWrite: %v", err)
					return
				}
			}
			if err := rep.Flush(); err != nil {
				t.Errorf("Flush: %v", err)
			}
		}(g)
	}
	wg.Wait()
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Enqueued+st.Dropped != producers*perProducer {
		t.Fatalf("enqueued %d + dropped %d != %d attempts", st.Enqueued, st.Dropped, producers*perProducer)
	}
	if st.Processed != st.Enqueued {
		t.Fatalf("processed %d != enqueued %d after drain", st.Processed, st.Enqueued)
	}
	if got := sys.Stats().Reports; got != st.Processed {
		t.Fatalf("translator saw %d reports, engine processed %d", got, st.Processed)
	}
}

// TestEngineLossyLink runs the engine over a lossy reporter link: the
// link drops count toward system stats, not engine errors.
func TestEngineLossyLink(t *testing.T) {
	opts := engineOptions()
	opts.ReporterLoss = 0.2
	opts.Seed = 11
	sys, err := dta.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sys.Engine(dta.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	rep := eng.Reporter(1)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := rep.KeyWrite(dta.KeyFromUint64(uint64(i)), []byte{1, 2, 3, 4}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Drain(); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.LinkDropped == 0 {
		t.Fatal("lossy link dropped nothing")
	}
	if st.Reports+st.LinkDropped != n {
		t.Fatalf("reports %d + link drops %d != %d", st.Reports, st.LinkDropped, n)
	}
}
