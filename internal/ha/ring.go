// Package ha is the high-availability control plane for multi-collector
// DTA (§7, "Supporting Multiple Collectors", extended): replicated key
// ownership over a rendezvous-hash ring, a failure-injection health
// view with degradation accounting, and snapshot-replay resynchronisation
// for collectors that rejoin or are added live.
//
// DTA already buys resilience with redundancy *inside* one collector —
// N-slot writes and plurality-vote queries. This package applies the
// same idea one layer up: each key is owned by R collectors instead of
// one, writers fan out to every live owner, and queries fall back across
// surviving owners. Loss of a replica is a first-class, measured regime
// (degraded writes/queries are counted, not errored), in the spirit of
// self-stabilising best-effort communication.
package ha

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dta/internal/crc"
)

// MaxReplicas is the largest supported replication factor R. It matches
// the store-level redundancy bound (N ≤ 8): replicating a key to more
// collectors than its slots inside one collector buys nothing.
const MaxReplicas = 8

// Ring maps keys to R replica owners with rendezvous (highest-random-
// weight) hashing: every (key, member) pair gets a deterministic score
// and the R highest-scoring members own the key. Unlike CRC-mod-N,
// membership change moves only the keys whose top-R set the joining or
// leaving member enters or leaves — on average an R/(n+1) fraction — so
// the cluster can grow, shrink and reshard incrementally.
//
// Scores are CRC-based for the same reason the stores' slot hashes are:
// the ring models what a reporter's forwarding table computes in a
// switch pipeline, where CRC units are the available hash hardware.
// Capacity weights (SetWeight) extend the scheme to heterogeneous
// collectors with weighted rendezvous hashing: member i's score becomes
// -wᵢ/ln(uᵢ) for uᵢ uniform in (0,1) derived from the CRC mix, so the
// probability of owning a key is proportional to wᵢ — a bigger
// collector owns a proportionally bigger key slice. The ring pays the
// float math (and a different ownership assignment: switching scoring
// functions reshards) only once some weight differs from 1; with all
// weights back at 1 the integer fast path resumes.
type Ring struct {
	keyEng *crc.Engine // key bytes → 32-bit digest
	mixEng *crc.Engine // (digest, member) → score; distinct polynomial

	mu      sync.RWMutex
	members []int // sorted member IDs currently in the ring
	// weights holds per-member capacity weights; absent = 1. skewed
	// counts members whose weight differs from 1, gating the weighted
	// scoring path.
	weights map[int]float64
	skewed  int
}

// NewRing builds a ring over members 0..n-1.
func NewRing(n int) *Ring {
	r := &Ring{
		keyEng:  crc.New(crc.K32K),
		mixEng:  crc.New(crc.Castagnoli),
		weights: make(map[int]float64),
	}
	for i := 0; i < n; i++ {
		r.members = append(r.members, i)
	}
	return r
}

// Size returns the current member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members returns a copy of the current member set, sorted.
func (r *Ring) Members() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int(nil), r.members...)
}

// Contains reports whether id is in the ring.
func (r *Ring) Contains(id int) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.SearchInts(r.members, id)
	return i < len(r.members) && r.members[i] == id
}

// Add inserts a member. Adding an existing member is an error: callers
// track membership and a silent double-add would mask a bookkeeping bug.
func (r *Ring) Add(id int) error {
	if id < 0 {
		return fmt.Errorf("ha: negative member id %d", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchInts(r.members, id)
	if i < len(r.members) && r.members[i] == id {
		return fmt.Errorf("ha: member %d already in ring", id)
	}
	r.members = append(r.members, 0)
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = id
	return nil
}

// Remove deletes a member (its weight is forgotten with it).
func (r *Ring) Remove(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchInts(r.members, id)
	if i >= len(r.members) || r.members[i] != id {
		return fmt.Errorf("ha: member %d not in ring", id)
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	if w, ok := r.weights[id]; ok {
		delete(r.weights, id)
		if w != 1 {
			r.skewed--
		}
	}
	return nil
}

// SetWeight assigns member id a capacity weight (> 0): its expected
// share of owned keys becomes weight/Σweights. Callers moving weights
// on a live cluster own the resharding consequences (keys change
// owners), exactly as with Add/Remove.
func (r *Ring) SetWeight(id int, weight float64) error {
	if !(weight > 0) || math.IsInf(weight, 1) {
		return fmt.Errorf("ha: weight %v out of range (0, +Inf)", weight)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchInts(r.members, id)
	if i >= len(r.members) || r.members[i] != id {
		return fmt.Errorf("ha: member %d not in ring", id)
	}
	old, had := r.weights[id]
	if !had {
		old = 1
	}
	if old != 1 && weight == 1 {
		r.skewed--
	} else if old == 1 && weight != 1 {
		r.skewed++
	}
	r.weights[id] = weight
	return nil
}

// Weight returns member id's capacity weight (1 when unset).
func (r *Ring) Weight(id int) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if w, ok := r.weights[id]; ok {
		return w
	}
	return 1
}

// score is the rendezvous weight of member id for a key digest. Ties are
// broken by member ID below, so scores need not be unique.
func (r *Ring) score(digest uint32, id int) uint32 {
	return r.mixEng.Sum64Pair(uint64(digest), uint64(id))
}

// weightedScore is the weighted rendezvous score -w/ln(u), which makes
// P(member wins) ∝ its weight. The CRC mix is GF(2)-linear, so raw
// scores of different members for the same key are XOR-correlated —
// harmless for the symmetric unweighted argmax, but weight-proportional
// ownership needs (approximately) independent uniforms, so the mix is
// passed through a 64-bit avalanche finalizer (splitmix64's) first.
func (r *Ring) weightedScore(digest uint32, id int, w float64) float64 {
	h := uint64(r.score(digest, id)) | uint64(id+1)<<32
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// Map the top 53 bits into (0,1), offset by ½ so u is never 0 or 1.
	u := (float64(h>>11) + 0.5) / (1 << 53)
	return -w / math.Log(u)
}

// Owners appends the IDs of the min(n, Size) members owning key to out
// (pass a reused slice to avoid allocation) in descending score order,
// so out[0] is the primary replica. Deterministic for a fixed member
// set; stable under membership change except for keys the change moves.
func (r *Ring) Owners(key []byte, n int, out []int) []int {
	digest := r.keyEng.Sum(key)
	if n > MaxReplicas {
		n = MaxReplicas
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if n > len(r.members) {
		n = len(r.members)
	}
	if r.skewed > 0 {
		return r.weightedOwners(digest, n, out)
	}
	var scores [MaxReplicas]uint32
	base := len(out)
	for _, id := range r.members {
		s := r.score(digest, id)
		have := len(out) - base
		// Insertion position among the current top-`have`: descending by
		// score, ascending by ID on ties (members is sorted, so an equal
		// score never displaces an earlier, smaller ID).
		pos := have
		for pos > 0 && s > scores[pos-1] {
			pos--
		}
		if pos >= n {
			continue
		}
		if have < n {
			out = append(out, 0)
			have++
		}
		copy(scores[pos+1:have], scores[pos:have-1])
		copy(out[base+pos+1:base+have], out[base+pos:base+have-1])
		scores[pos] = s
		out[base+pos] = id
	}
	return out
}

// weightedOwners is Owners' scoring loop over weighted rendezvous
// scores. Called under the read lock, only when some weight differs
// from 1 (the float math costs a log per member per lookup).
func (r *Ring) weightedOwners(digest uint32, n int, out []int) []int {
	var scores [MaxReplicas]float64
	base := len(out)
	for _, id := range r.members {
		w, ok := r.weights[id]
		if !ok {
			w = 1
		}
		s := r.weightedScore(digest, id, w)
		have := len(out) - base
		pos := have
		for pos > 0 && s > scores[pos-1] {
			pos--
		}
		if pos >= n {
			continue
		}
		if have < n {
			out = append(out, 0)
			have++
		}
		copy(scores[pos+1:have], scores[pos:have-1])
		copy(out[base+pos+1:base+have], out[base+pos:base+have-1])
		scores[pos] = s
		out[base+pos] = id
	}
	return out
}

// OwnersOfList is Owners for an Append list ID: lists are replicated
// across collectors exactly like keys, hashing the 32-bit list ID.
func (r *Ring) OwnersOfList(list uint32, n int, out []int) []int {
	key := [4]byte{byte(list >> 24), byte(list >> 16), byte(list >> 8), byte(list)}
	return r.Owners(key[:], n, out)
}
