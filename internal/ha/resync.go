package ha

import (
	"encoding/binary"
	"fmt"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/postcarding"
	"dta/internal/snapshot"
)

// ResyncStats summarises one replica resynchronisation.
type ResyncStats struct {
	// Peers is the number of peer snapshots replayed.
	Peers int
	// KeyWriteSlots counts Key-Write slots copied from peers.
	KeyWriteSlots uint64
	// Counters counts Key-Increment counters raised to a peer's value.
	Counters uint64
	// PostcardSlots counts Postcarding hop slots copied from peers.
	PostcardSlots uint64
	// AppendLists counts lists whose ring suffix was replayed; and
	// AppendEntries the entries copied across all of them.
	AppendLists   uint64
	AppendEntries uint64
	// SlotsSkipped counts slots incremental resync never scanned because
	// their block's last-write epoch predates the target's staleness
	// window (summed across peers and primitives).
	SlotsSkipped uint64
}

// SlotsReplayed sums the slots actually merged into the target.
func (st *ResyncStats) SlotsReplayed() uint64 {
	return st.KeyWriteSlots + st.Counters + st.PostcardSlots + st.AppendEntries
}

// AppendOps streams a peer's logged Append operations — the exact
// (list, entry) sequence its translator admitted after the target's
// watermark LSN — to yield, in log order. The callback's data slice is
// only valid during the call.
type AppendOps func(yield func(list uint32, data []byte) error) error

// Peer is one resync source: a snapshot of its stores, plus optionally
// the suffix of its operation log. When AppendOps is non-nil, Append
// recovery replays those logged operations through the target's own
// ring instead of copying the snapshot's index-aligned ring suffix —
// exact under concurrent producers, where index alignment loses the
// entries whose arrival order skewed across the failure boundary.
type Peer struct {
	Snap      *snapshot.Snapshot
	AppendOps AppendOps
}

// Target bundles the mutable state of the collector being resynced.
type Target struct {
	// Host is the collector whose stores receive the replay.
	Host *collector.Host
	// Batcher is the target translator's Append batcher, whose head
	// pointers are advanced when peer ring segments are replayed. Nil
	// skips Append resync (snapshots without head metadata skip it too).
	Batcher *appendlist.Batcher
	// Dirty, when non-nil, is stamped for every merged range so the
	// target can in turn serve as an incremental peer later.
	Dirty *Tracker
	// StaleSince is the epoch at which the target went stale: peers'
	// blocks whose last-write epoch is older are skipped. Zero replays
	// everything (a newly added collector, or peers without tags).
	StaleSince uint64
}

// Resync replays peer snapshots into a rejoining or newly added
// collector, reconstructing the writes it missed while down (or never
// saw). It exploits the stores' statelessness: every collector computes
// slot addresses from the same global CRC families, so slot i of a
// peer's store holds exactly the keys that hash to slot i of the
// target's store — resync is slot-wise memory merge, no key iteration.
//
// Per primitive:
//
//   - Key-Write: every occupied (non-zero) peer slot overwrites the
//     target slot. Peers are strictly fresher for keys the target
//     missed; for colliding foreign keys the overwrite is the same
//     last-writer-wins hazard the store already absorbs via its
//     N-slot plurality vote.
//   - Key-Increment: element-wise max. Each owner of a key receives
//     every increment for it, so a peer's counter is an upper bound on
//     the slot's true sum for shared keys; max-merge preserves the
//     count-min "never undercounts" guarantee without double counting.
//   - Postcarding: every occupied peer hop slot overwrites the target
//     slot (slots are checksum⊕g(v) encodings, consistent across
//     replicas for the same flow).
//   - Append: ring-suffix replay. Snapshots carry each list's
//     cumulative flushed-entry count; the entries the target's own
//     count trails the peer's by (capped at one ring) are copied
//     index-for-index — both translators address list l's ring
//     identically — and the target's head pointer is advanced to the
//     peer's. The target's own pre-failure prefix is left untouched, so
//     two histories are never interleaved entry-by-entry; with multiple
//     concurrent reporters the suffix can reorder across the failure
//     boundary, the same best-effort hazard failover polling has.
//
// When t.StaleSince > 0 and a peer carries dirty-epoch tags, only the
// blocks written at or after that epoch are scanned: everything older
// was already replicated to the target while it was still up. Peers
// without tags (or a zero StaleSince) are replayed in full.
//
// Peer slots for keys the target does not own come along for the ride;
// they are invisible to routed queries (ownership routing never asks
// the target for them) and harmless to owned keys beyond the usual
// collision probability.
//
// The target must be quiescent (no concurrent ingest): callers run
// Resync under a drain barrier.
func Resync(t Target, peers []Peer) (ResyncStats, error) {
	st := ResyncStats{Peers: len(peers)}
	for pi, peer := range peers {
		if peer.Snap != nil {
			if err := mergeKeyWrite(t, peer.Snap, &st); err != nil {
				return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
			}
			if err := mergeKeyIncrement(t, peer.Snap, &st); err != nil {
				return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
			}
			if err := mergePostcarding(t, peer.Snap, &st); err != nil {
				return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
			}
		}
		if peer.AppendOps != nil {
			if err := mergeAppendOps(t, peer.AppendOps, &st); err != nil {
				return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
			}
		} else if peer.Snap != nil {
			if err := mergeAppend(t, peer.Snap, &st); err != nil {
				return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
			}
		}
	}
	return st, nil
}

func occupied(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return true
		}
	}
	return false
}

// blockStale reports whether the slot at [off, off+size) can be skipped:
// every block it touches was last written before the staleness window
// opened. Nil tags (or a zero window) keep everything.
func blockStale(tags []uint64, blockBytes int, since uint64, off, size int) bool {
	if since == 0 || tags == nil || blockBytes <= 0 {
		return false
	}
	first, last := off/blockBytes, (off+size-1)/blockBytes
	for b := first; b <= last; b++ {
		if b < len(tags) && tags[b] >= since {
			return false
		}
	}
	return true
}

func mergeKeyWrite(t Target, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := t.Host.KeyWriteStore()
	if dst == nil || peer.KeyWrite == nil {
		return nil
	}
	cfg := dst.Indexer().Config()
	if *peer.KeyWrite != cfg {
		return fmt.Errorf("key-write geometry mismatch: peer %+v vs %+v", *peer.KeyWrite, cfg)
	}
	buf, src, slot := dst.Buffer(), peer.KeyWriteBuf, cfg.SlotSize()
	for off := 0; off+slot <= len(src) && off+slot <= len(buf); off += slot {
		if blockStale(peer.KeyWriteTags, peer.TagBlockBytes, t.StaleSince, off, slot) {
			st.SlotsSkipped++
			continue
		}
		if occupied(src[off : off+slot]) {
			copy(buf[off:off+slot], src[off:off+slot])
			st.KeyWriteSlots++
			if t.Dirty != nil {
				t.Dirty.MarkRange("keywrite", off, slot)
			}
		}
	}
	return nil
}

func mergeKeyIncrement(t Target, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := t.Host.KeyIncrementStore()
	if dst == nil || peer.KeyIncrement == nil {
		return nil
	}
	buf, src := dst.Buffer(), peer.KeyIncBuf
	if len(src) != len(buf) {
		return fmt.Errorf("key-increment geometry mismatch: peer %dB vs %dB", len(src), len(buf))
	}
	for off := 0; off+keyincrement.CounterSize <= len(src); off += keyincrement.CounterSize {
		if blockStale(peer.KeyIncTags, peer.TagBlockBytes, t.StaleSince, off, keyincrement.CounterSize) {
			st.SlotsSkipped++
			continue
		}
		pv := binary.BigEndian.Uint64(src[off:])
		if pv > binary.BigEndian.Uint64(buf[off:]) {
			binary.BigEndian.PutUint64(buf[off:], pv)
			st.Counters++
			if t.Dirty != nil {
				t.Dirty.MarkRange("keyincrement", off, keyincrement.CounterSize)
			}
		}
	}
	return nil
}

func mergePostcarding(t Target, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := t.Host.PostcardingStore()
	if dst == nil || peer.Postcarding == nil {
		return nil
	}
	cfg := dst.Coder().Config()
	pc := *peer.Postcarding
	if pc.Chunks != cfg.Chunks || pc.Hops != cfg.Hops || pc.SlotBits != cfg.SlotBits {
		return fmt.Errorf("postcarding geometry mismatch: peer %d×%d vs %d×%d",
			pc.Chunks, pc.Hops, cfg.Chunks, cfg.Hops)
	}
	buf, src := dst.Buffer(), peer.PostcardBuf
	for off := 0; off+postcarding.SlotSize <= len(src) && off+postcarding.SlotSize <= len(buf); off += postcarding.SlotSize {
		if blockStale(peer.PostcardTags, peer.TagBlockBytes, t.StaleSince, off, postcarding.SlotSize) {
			st.SlotsSkipped++
			continue
		}
		if occupied(src[off : off+postcarding.SlotSize]) {
			copy(buf[off:off+postcarding.SlotSize], src[off:off+postcarding.SlotSize])
			st.PostcardSlots++
			if t.Dirty != nil {
				t.Dirty.MarkRange("postcarding", off, postcarding.SlotSize)
			}
		}
	}
	return nil
}

// mergeAppendOps replays a peer's logged Append operations into the
// target: each entry is appended at the target's OWN ring head (the
// operations are re-executed, not position-copied), so every entry the
// target missed lands exactly once regardless of how replica arrival
// orders skewed around the failure — the recovery is multiset-exact
// where mergeAppend's index-aligned suffix copy is approximate. The
// target's pre-failure prefix stays in place; replayed entries follow
// it in the peer's log order.
func mergeAppendOps(t Target, ops AppendOps, st *ResyncStats) error {
	dst := t.Host.AppendStore()
	if dst == nil || t.Batcher == nil {
		return nil
	}
	cfg := dst.Config()
	entries := uint64(cfg.EntriesPerList)
	listBytes, entrySize := cfg.ListBytes(), cfg.EntrySize
	buf := dst.Buffer()
	cur := make([]uint64, cfg.Lists)
	touched := make([]bool, cfg.Lists)
	for l := range cur {
		cur[l] = t.Batcher.Written(l)
	}
	err := ops(func(list uint32, data []byte) error {
		l := int(list)
		if l < 0 || l >= cfg.Lists {
			return fmt.Errorf("ha: logged append to list %d outside [0,%d)", l, cfg.Lists)
		}
		off := l*listBytes + int(cur[l]%entries)*entrySize
		n := copy(buf[off:off+entrySize], data)
		for i := n; i < entrySize; i++ {
			buf[off+i] = 0
		}
		cur[l]++
		touched[l] = true
		st.AppendEntries++
		return nil
	})
	if err != nil {
		return err
	}
	for l, tc := range touched {
		if !tc {
			continue
		}
		if err := t.Batcher.SyncList(l, cur[l]); err != nil {
			return err
		}
		if t.Dirty != nil {
			t.Dirty.MarkRange("append", l*listBytes, listBytes)
		}
		st.AppendLists++
	}
	return nil
}

func mergeAppend(t Target, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := t.Host.AppendStore()
	if dst == nil || peer.Append == nil || peer.AppendHeads == nil || t.Batcher == nil {
		return nil
	}
	cfg := dst.Config()
	if *peer.Append != cfg {
		return fmt.Errorf("append geometry mismatch: peer %+v vs %+v", *peer.Append, cfg)
	}
	entries := uint64(cfg.EntriesPerList)
	listBytes, entrySize := cfg.ListBytes(), cfg.EntrySize
	buf, src := dst.Buffer(), peer.AppendBuf
	for l := 0; l < cfg.Lists && l < len(peer.AppendHeads); l++ {
		pw, tw := peer.AppendHeads[l], t.Batcher.Written(l)
		if pw <= tw {
			continue // target is at least as fresh for this list
		}
		missed := pw - tw
		if missed > entries {
			missed = entries // the peer's ring only retains one lap
		}
		start := (pw - missed) % entries
		for i := uint64(0); i < missed; i++ {
			idx := int((start + i) % entries)
			off := l*listBytes + idx*entrySize
			copy(buf[off:off+entrySize], src[off:off+entrySize])
			st.AppendEntries++
		}
		if err := t.Batcher.SyncList(l, pw); err != nil {
			return err
		}
		if t.Dirty != nil {
			// The replayed suffix may wrap; marking the whole list span
			// is cheap and conservative.
			t.Dirty.MarkRange("append", l*listBytes, listBytes)
		}
		st.AppendLists++
	}
	return nil
}
