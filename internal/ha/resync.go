package ha

import (
	"encoding/binary"
	"fmt"

	"dta/internal/collector"
	"dta/internal/core/keyincrement"
	"dta/internal/core/postcarding"
	"dta/internal/snapshot"
)

// ResyncStats summarises one replica resynchronisation.
type ResyncStats struct {
	// Peers is the number of peer snapshots replayed.
	Peers int
	// KeyWriteSlots counts Key-Write slots copied from peers.
	KeyWriteSlots uint64
	// Counters counts Key-Increment counters raised to a peer's value.
	Counters uint64
	// PostcardSlots counts Postcarding hop slots copied from peers.
	PostcardSlots uint64
}

// Resync replays peer snapshots into a rejoining or newly added
// collector, reconstructing the writes it missed while down (or never
// saw). It exploits the stores' statelessness: every collector computes
// slot addresses from the same global CRC families, so slot i of a
// peer's store holds exactly the keys that hash to slot i of the
// target's store — resync is slot-wise memory merge, no key iteration.
//
// Per primitive:
//
//   - Key-Write: every occupied (non-zero) peer slot overwrites the
//     target slot. Peers are strictly fresher for keys the target
//     missed; for colliding foreign keys the overwrite is the same
//     last-writer-wins hazard the store already absorbs via its
//     N-slot plurality vote.
//   - Key-Increment: element-wise max. Each owner of a key receives
//     every increment for it, so a peer's counter is an upper bound on
//     the slot's true sum for shared keys; max-merge preserves the
//     count-min "never undercounts" guarantee without double counting.
//   - Postcarding: every occupied peer hop slot overwrites the target
//     slot (slots are checksum⊕g(v) encodings, consistent across
//     replicas for the same flow).
//   - Append: not resynced. Rings are ordered logs with per-list head
//     state; replaying them would interleave two histories. Failover
//     polling reads surviving replicas instead.
//
// Peer slots for keys the target does not own come along for the ride;
// they are invisible to routed queries (ownership routing never asks
// the target for them) and harmless to owned keys beyond the usual
// collision probability.
//
// The target must be quiescent (no concurrent ingest): callers run
// Resync under a drain barrier.
func Resync(target *collector.Host, peers []*snapshot.Snapshot) (ResyncStats, error) {
	st := ResyncStats{Peers: len(peers)}
	for pi, peer := range peers {
		if err := mergeKeyWrite(target, peer, &st); err != nil {
			return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
		}
		if err := mergeKeyIncrement(target, peer, &st); err != nil {
			return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
		}
		if err := mergePostcarding(target, peer, &st); err != nil {
			return st, fmt.Errorf("ha: resync peer %d: %w", pi, err)
		}
	}
	return st, nil
}

func occupied(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return true
		}
	}
	return false
}

func mergeKeyWrite(target *collector.Host, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := target.KeyWriteStore()
	if dst == nil || peer.KeyWrite == nil {
		return nil
	}
	cfg := dst.Indexer().Config()
	if *peer.KeyWrite != cfg {
		return fmt.Errorf("key-write geometry mismatch: peer %+v vs %+v", *peer.KeyWrite, cfg)
	}
	buf, src, slot := dst.Buffer(), peer.KeyWriteBuf, cfg.SlotSize()
	for off := 0; off+slot <= len(src) && off+slot <= len(buf); off += slot {
		if occupied(src[off : off+slot]) {
			copy(buf[off:off+slot], src[off:off+slot])
			st.KeyWriteSlots++
		}
	}
	return nil
}

func mergeKeyIncrement(target *collector.Host, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := target.KeyIncrementStore()
	if dst == nil || peer.KeyIncrement == nil {
		return nil
	}
	buf, src := dst.Buffer(), peer.KeyIncBuf
	if len(src) != len(buf) {
		return fmt.Errorf("key-increment geometry mismatch: peer %dB vs %dB", len(src), len(buf))
	}
	for off := 0; off+keyincrement.CounterSize <= len(src); off += keyincrement.CounterSize {
		pv := binary.BigEndian.Uint64(src[off:])
		if pv > binary.BigEndian.Uint64(buf[off:]) {
			binary.BigEndian.PutUint64(buf[off:], pv)
			st.Counters++
		}
	}
	return nil
}

func mergePostcarding(target *collector.Host, peer *snapshot.Snapshot, st *ResyncStats) error {
	dst := target.PostcardingStore()
	if dst == nil || peer.Postcarding == nil {
		return nil
	}
	cfg := dst.Coder().Config()
	pc := *peer.Postcarding
	if pc.Chunks != cfg.Chunks || pc.Hops != cfg.Hops || pc.SlotBits != cfg.SlotBits {
		return fmt.Errorf("postcarding geometry mismatch: peer %d×%d vs %d×%d",
			pc.Chunks, pc.Hops, cfg.Chunks, cfg.Hops)
	}
	buf, src := dst.Buffer(), peer.PostcardBuf
	for off := 0; off+postcarding.SlotSize <= len(src) && off+postcarding.SlotSize <= len(buf); off += postcarding.SlotSize {
		if occupied(src[off : off+postcarding.SlotSize]) {
			copy(buf[off:off+postcarding.SlotSize], src[off:off+postcarding.SlotSize])
			st.PostcardSlots++
		}
	}
	return nil
}
