package ha

import (
	"testing"

	"dta/internal/rdma"
)

func TestTrackerMarksWritePackets(t *testing.T) {
	h := NewHealth()
	regions := []rdma.RegionInfo{
		{Label: "keywrite", VA: 0x1000, Length: 8 * TagBlockBytes},
		{Label: "keyincrement", VA: 0x100000, Length: 2 * TagBlockBytes},
	}
	tk := NewTracker(h, regions)

	if got := tk.Tags("keywrite"); len(got) != 8 {
		t.Fatalf("keywrite tags = %d blocks, want 8", len(got))
	}
	if tk.Tags("nosuch") != nil {
		t.Error("unknown label returned tags")
	}

	// A WRITE into block 2 of the keywrite region tags it with the
	// current epoch; everything else stays at 0 (never written).
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	pkt := rdma.BuildWrite(nil, 1, 0, 0x1000+2*TagBlockBytes+10, 1, payload, false, nil)
	tk.MarkPacket(pkt)
	tags := tk.Tags("keywrite")
	for b, tag := range tags {
		want := uint64(0)
		if b == 2 {
			want = 1 // NewHealth starts the epoch clock at 1
		}
		if tag != want {
			t.Errorf("block %d tag = %d, want %d", b, tag, want)
		}
	}

	// A write straddling a block boundary tags both blocks, at the
	// bumped epoch.
	h.BumpEpoch()
	pkt = rdma.BuildWrite(pkt[:0], 1, 0, 0x1000+4*TagBlockBytes-4, 1, payload, false, nil)
	tk.MarkPacket(pkt)
	tags = tk.Tags("keywrite")
	if tags[3] != 2 || tags[4] != 2 {
		t.Errorf("straddling write: blocks 3,4 = %d,%d, want 2,2", tags[3], tags[4])
	}

	// FETCH&ADD tags the other region; epochs only move forward.
	pkt = rdma.BuildFetchAdd(pkt[:0], 1, 0, 0x100000+TagBlockBytes, 1, 5)
	tk.MarkPacket(pkt)
	if got := tk.Tags("keyincrement"); got[0] != 0 || got[1] != 2 {
		t.Errorf("fetchadd tags = %v, want [0 2]", got)
	}
	tk.markLabel("keyincrement", int(TagBlockBytes), 8, 1) // stale epoch
	if got := tk.Tags("keyincrement"); got[1] != 2 {
		t.Errorf("tag lowered by stale mark: %d", got[1])
	}

	// Packets outside every region (and non-write opcodes) are ignored.
	tk.MarkPacket(rdma.BuildWrite(pkt[:0], 1, 0, 0xdead0000, 1, payload, false, nil))
	tk.MarkPacket(rdma.BuildAck(nil, 1, 0, rdma.SynACK, 0, false, 0))
}
