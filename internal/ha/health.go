package ha

import (
	"fmt"
	"sync/atomic"

	"dta/internal/obs"
)

// MaxMembers bounds the number of collectors a Health view can track.
// Fixed capacity keeps every flag access a lock-free atomic load even
// while the cluster grows.
const MaxMembers = 64

// Stats counts degradation events. All counters are cumulative.
type Stats struct {
	// DegradedWrites counts reports that reached some but not all of
	// their R owners because the rest were down. The write is still
	// acknowledged: surviving replicas answer for it.
	DegradedWrites uint64
	// LostWrites counts reports whose owners were ALL down. Best-effort
	// semantics: the report is shed with a counter, like the translator's
	// rate limiter, not errored.
	LostWrites uint64
	// ReplicaSkips counts individual replica writes skipped because that
	// replica was down (DegradedWrites counts reports; this counts
	// misses, so it exceeds DegradedWrites when R > 2).
	ReplicaSkips uint64
	// DegradedQueries counts queries that skipped at least one down or
	// stale replica.
	DegradedQueries uint64
	// FailoverQueries counts queries answered by a non-primary replica
	// because the primary was down, stale, or had no answer.
	FailoverQueries uint64
	// FailedQueries counts queries with no live replica to ask.
	FailedQueries uint64
	// Resyncs counts replica resynchronisations (rejoin/add rebalances).
	Resyncs uint64
	// ReadRepairs counts replica stores written back by queries that
	// observed replicas disagreeing (read-repair): divergence detected
	// by a failover query is healed by that query instead of waiting
	// for the next Rebalance. One count per repaired replica store.
	ReadRepairs uint64
	// ResyncSlots counts store slots actually copied (or counters
	// raised) into stale collectors by resyncs.
	ResyncSlots uint64
	// ResyncSlotsSkipped counts slots incremental resync never scanned
	// because their block's last-write epoch predates the target's
	// staleness window. The ratio to ResyncSlots is what epoch-based
	// rebalance buys over full snapshot replay.
	ResyncSlotsSkipped uint64
	// AppendEntriesResynced counts Append ring entries replayed into
	// stale collectors from peer ring segments.
	AppendEntriesResynced uint64
	// ResyncRetries counts per-target resync attempts deferred with
	// backoff (unreachable peers or a failed resync) — the retry/backoff
	// contract's observable counter.
	ResyncRetries uint64
}

// Health is the cluster's failure-injection view: a lock-free up/down
// flag per collector plus degradation counters. Writers consult it to
// skip dead replicas; queries consult it to fail over. SetDown/SetUp
// are safe to call concurrently with writes and queries — that is the
// point: failures strike mid-run.
type Health struct {
	down [MaxMembers]atomic.Bool

	// epoch is the cluster staleness clock: a monotone counter bumped by
	// every membership or health transition (SetDown, AddCollector,
	// Decommission). Dirty trackers tag written blocks with the current
	// epoch, and incremental resync replays only blocks written at or
	// after the epoch a target went stale. Epoch 0 is reserved for
	// "never written", so the clock starts at 1.
	epoch atomic.Uint64

	// Degradation counters are obs primitives so the Snapshot view and
	// the Prometheus exposition read the same cells. The write/query
	// accounting paths (RecordWrite, RecordQuery) are hit concurrently
	// by every reporter and query goroutine, so their counters are
	// striped across cache lines; resync and read-repair events are rare
	// control-plane work on plain padded counters.
	degradedWrites  *obs.ShardedCounter
	lostWrites      *obs.ShardedCounter
	replicaSkips    *obs.ShardedCounter
	degradedQueries *obs.ShardedCounter
	failoverQueries *obs.ShardedCounter
	failedQueries   *obs.ShardedCounter
	resyncs         *obs.Counter
	readRepairs     *obs.Counter
	resyncSlots     *obs.Counter
	resyncSkipped   *obs.Counter
	appendResynced  *obs.Counter
	resyncRetries   *obs.Counter
}

// NewHealth returns a view with every member up and no metric
// exposition (the counters still work — see NewHealthScoped).
func NewHealth() *Health {
	return NewHealthScoped(nil)
}

// NewHealthScoped is NewHealth with the degradation counters (dta_ha_*)
// registered under the given obs scope.
func NewHealthScoped(sc *obs.Scope) *Health {
	h := &Health{
		degradedWrites:  sc.ShardedCounter("dta_ha_degraded_writes_total", "Reports that reached some but not all of their R owners."),
		lostWrites:      sc.ShardedCounter("dta_ha_lost_writes_total", "Reports whose owners were all down (shed best-effort)."),
		replicaSkips:    sc.ShardedCounter("dta_ha_replica_skips_total", "Individual replica writes skipped because the replica was down."),
		degradedQueries: sc.ShardedCounter("dta_ha_degraded_queries_total", "Queries that skipped at least one down or stale replica."),
		failoverQueries: sc.ShardedCounter("dta_ha_failover_queries_total", "Queries answered by a non-primary replica."),
		failedQueries:   sc.ShardedCounter("dta_ha_failed_queries_total", "Queries with no live replica to ask."),
		resyncs:         sc.Counter("dta_ha_resyncs_total", "Replica resynchronisations (rejoin/add rebalances)."),
		readRepairs:     sc.Counter("dta_ha_read_repairs_total", "Replica stores written back by divergence-observing queries."),
		resyncSlots:     sc.Counter("dta_ha_resync_slots_total", "Store slots copied or raised into stale collectors by resyncs."),
		resyncSkipped:   sc.Counter("dta_ha_resync_slots_skipped_total", "Slots incremental resync never scanned thanks to epoch filtering."),
		appendResynced:  sc.Counter("dta_ha_append_entries_resynced_total", "Append ring entries replayed into stale collectors."),
		resyncRetries:   sc.Counter("dta_ha_resync_retries_total", "Resync attempts deferred with backoff (unreachable peers or failure)."),
	}
	h.epoch.Store(1)
	// Read-time gauge, not a counter pair: SetDown/SetUp may race and
	// the flags are the single source of truth. Non-members read as up,
	// so scanning the full fixed capacity is exact for any cluster size.
	sc.GaugeFunc("dta_ha_down_replicas", "Collectors currently marked down.", func() float64 {
		n := 0
		for i := range h.down {
			if h.down[i].Load() {
				n++
			}
		}
		return float64(n)
	})
	return h
}

// Epoch returns the current staleness epoch. Safe concurrently with
// writers tagging blocks.
func (h *Health) Epoch() uint64 { return h.epoch.Load() }

// BumpEpoch advances the staleness clock and returns the new epoch.
func (h *Health) BumpEpoch() uint64 { return h.epoch.Add(1) }

func checkMember(i int) error {
	if i < 0 || i >= MaxMembers {
		return fmt.Errorf("ha: member %d out of range [0,%d)", i, MaxMembers)
	}
	return nil
}

// SetDown marks collector i failed: writers skip it, queries fail over.
func (h *Health) SetDown(i int) error {
	if err := checkMember(i); err != nil {
		return err
	}
	h.down[i].Store(true)
	return nil
}

// SetUp marks collector i reachable again. The caller is responsible
// for resyncing it (it missed every write while down).
func (h *Health) SetUp(i int) error {
	if err := checkMember(i); err != nil {
		return err
	}
	h.down[i].Store(false)
	return nil
}

// IsDown reports collector i's health. Out-of-range members read as up;
// ownership always comes from a Ring, which only holds valid members.
func (h *Health) IsDown(i int) bool {
	if i < 0 || i >= MaxMembers {
		return false
	}
	return h.down[i].Load()
}

// RecordWrite accounts one fanned-out report that reached live of its
// total owners.
func (h *Health) RecordWrite(live, total int) {
	if live >= total {
		return
	}
	h.replicaSkips.Add(uint64(total - live))
	if live == 0 {
		h.lostWrites.Add(1)
	} else {
		h.degradedWrites.Add(1)
	}
}

// RecordQuery accounts one query: skipped replicas (down or stale),
// whether any replica answered, and whether the primary did.
func (h *Health) RecordQuery(skipped int, answered, byPrimary bool) {
	if skipped > 0 {
		h.degradedQueries.Add(1)
	}
	if !answered {
		h.failedQueries.Add(1)
		return
	}
	if !byPrimary {
		h.failoverQueries.Add(1)
	}
}

// RecordResync accounts one replica resynchronisation and its replay
// volume.
func (h *Health) RecordResync(st *ResyncStats) {
	h.resyncs.Add(1)
	if st == nil {
		return
	}
	h.resyncSlots.Add(st.SlotsReplayed())
	h.resyncSkipped.Add(st.SlotsSkipped)
	h.appendResynced.Add(st.AppendEntries)
}

// RecordResyncRetry accounts one resync attempt deferred with backoff.
func (h *Health) RecordResyncRetry() {
	h.resyncRetries.Add(1)
}

// RecordReadRepair accounts replica stores fixed up by one divergence-
// observing query.
func (h *Health) RecordReadRepair(replicas int) {
	if replicas > 0 {
		h.readRepairs.Add(uint64(replicas))
	}
}

// Snapshot returns the current counters.
func (h *Health) Snapshot() Stats {
	return Stats{
		DegradedWrites:        h.degradedWrites.Load(),
		LostWrites:            h.lostWrites.Load(),
		ReplicaSkips:          h.replicaSkips.Load(),
		DegradedQueries:       h.degradedQueries.Load(),
		FailoverQueries:       h.failoverQueries.Load(),
		FailedQueries:         h.failedQueries.Load(),
		Resyncs:               h.resyncs.Load(),
		ReadRepairs:           h.readRepairs.Load(),
		ResyncSlots:           h.resyncSlots.Load(),
		ResyncSlotsSkipped:    h.resyncSkipped.Load(),
		AppendEntriesResynced: h.appendResynced.Load(),
		ResyncRetries:         h.resyncRetries.Load(),
	}
}
