package ha

import (
	"encoding/binary"
	"sync/atomic"

	"dta/internal/rdma"
)

// TagBlockBytes is the dirty-tracking granularity: each collector store
// is divided into fixed-size blocks and every RDMA write stamps its
// blocks with the cluster epoch current at write time. Coarser blocks
// cost memory-proportional false replay on resync; finer blocks cost
// tracker memory (8 B per block). 1 KiB keeps the tracker under 1% of
// store memory while a typical rejoin window dirties a small fraction
// of blocks.
const TagBlockBytes = 1024

// trackedRegion is the per-store dirty map: one epoch tag per block of
// the registered memory region.
type trackedRegion struct {
	label string
	base  uint64 // region virtual address
	limit uint64 // base + length
	tags  []atomic.Uint64
}

// Tracker records, per collector, which store blocks were written in
// which epoch. It hooks the collector's RDMA ingest path (MarkPacket)
// so tracking costs one branch plus a few byte reads per packet and
// never allocates; the epoch source is the cluster Health's staleness
// clock. Incremental resync consults the captured tags to replay only
// blocks written since the target went stale.
//
// Tag stores are atomic because engine shard workers mark concurrently
// with Rebalance reading tags (under its drain barrier the worker is
// quiescent, but SetDown epoch bumps race marks by design).
type Tracker struct {
	epochs  *Health
	regions []trackedRegion
}

// NewTracker builds a tracker over a collector's advertised memory
// regions, tagging with h's epoch clock.
func NewTracker(h *Health, regions []rdma.RegionInfo) *Tracker {
	t := &Tracker{epochs: h}
	for _, r := range regions {
		blocks := int((r.Length + TagBlockBytes - 1) / TagBlockBytes)
		t.regions = append(t.regions, trackedRegion{
			label: r.Label,
			base:  r.VA,
			limit: r.VA + r.Length,
			tags:  make([]atomic.Uint64, blocks),
		})
	}
	return t
}

// MarkPacket inspects one crafted RoCEv2 request and stamps the blocks
// it writes with the current epoch. Only WRITE and FETCH&ADD carry a
// destination; everything else is ignored. The field offsets are fixed
// (BTH then RETH/AtomicETH, both leading with the 8-byte VA), so no
// full packet decode — and no allocation — happens on the hot path.
func (t *Tracker) MarkPacket(pkt []byte) {
	if len(pkt) < rdma.BTHLen+rdma.RETHLen {
		return
	}
	var length uint64
	switch rdma.Opcode(pkt[0]) {
	case rdma.OpWriteOnly, rdma.OpWriteOnlyImm:
		length = uint64(binary.BigEndian.Uint32(pkt[rdma.BTHLen+12 : rdma.BTHLen+16]))
	case rdma.OpFetchAdd:
		length = 8
	default:
		return
	}
	va := binary.BigEndian.Uint64(pkt[rdma.BTHLen : rdma.BTHLen+8])
	t.markVA(va, length, t.epochs.Epoch())
}

func (t *Tracker) markVA(va, length uint64, epoch uint64) {
	if length == 0 {
		return
	}
	for i := range t.regions {
		r := &t.regions[i]
		if va < r.base || va >= r.limit {
			continue
		}
		first := (va - r.base) / TagBlockBytes
		last := (va + length - 1 - r.base) / TagBlockBytes
		for b := first; b <= last && b < uint64(len(r.tags)); b++ {
			raiseTag(&r.tags[b], epoch)
		}
		return
	}
}

// raiseTag lifts a block tag to at least epoch (tags are last-write
// clocks: they only ever move forward).
func raiseTag(tag *atomic.Uint64, epoch uint64) {
	for {
		cur := tag.Load()
		if cur >= epoch || tag.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// MarkRange stamps [off, off+length) of the labelled store with the
// current epoch. Read-repair and resync write store buffers directly
// (collector-CPU fixups, not RDMA), so they mark through this instead
// of MarkPacket.
func (t *Tracker) MarkRange(label string, off, length int) {
	t.markLabel(label, off, length, t.epochs.Epoch())
}

func (t *Tracker) markLabel(label string, off, length int, epoch uint64) {
	for i := range t.regions {
		r := &t.regions[i]
		if r.label != label {
			continue
		}
		t.markVA(r.base+uint64(off), uint64(length), epoch)
		return
	}
}

// Tags returns a copy of the labelled store's per-block epoch tags, or
// nil if the store is untracked. Snapshot capture records these next to
// the buffers.
func (t *Tracker) Tags(label string) []uint64 {
	for i := range t.regions {
		r := &t.regions[i]
		if r.label != label {
			continue
		}
		out := make([]uint64, len(r.tags))
		for b := range r.tags {
			out[b] = r.tags[b].Load()
		}
		return out
	}
	return nil
}
