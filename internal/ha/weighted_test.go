package ha

import (
	"math"
	"testing"
)

// TestRingWeightValidation pins the SetWeight/Weight API contract.
func TestRingWeightValidation(t *testing.T) {
	r := NewRing(3)
	for _, w := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := r.SetWeight(0, w); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	if err := r.SetWeight(7, 2); err == nil {
		t.Error("weight for non-member accepted")
	}
	if got := r.Weight(1); got != 1 {
		t.Errorf("default weight = %v", got)
	}
	if err := r.SetWeight(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if got := r.Weight(1); got != 2.5 {
		t.Errorf("weight = %v after SetWeight", got)
	}
	// Removing a member forgets its weight.
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Weight(1); got != 1 {
		t.Errorf("re-added member keeps old weight %v", got)
	}
}

// TestRingUniformWeightsStayUniform: the weighted scoring path with
// equal weights must still spread ownership near-uniformly (the scoring
// function differs from the unweighted path, so assignments move, but
// the distribution must not skew).
func TestRingUniformWeightsStayUniform(t *testing.T) {
	const members, keys, rf = 4, 40000, 2
	r := NewRing(members)
	for i := 0; i < members; i++ {
		if err := r.SetWeight(i, 3); err != nil {
			t.Fatal(err)
		}
	}
	if r.skewed == 0 {
		t.Fatal("uniform non-1 weights must engage the weighted path")
	}
	counts := make([]int, members)
	var buf [MaxReplicas]int
	for i := uint64(0); i < keys; i++ {
		for _, o := range r.Owners(ringKey(i), rf, buf[:0]) {
			counts[o]++
		}
	}
	mean := keys * rf / members
	for i, n := range counts {
		if n < mean*8/10 || n > mean*12/10 {
			t.Errorf("member %d owns %d slots (mean %d): skewed beyond ±20%%", i, n, mean)
		}
	}
	// Returning every weight to 1 restores the integer fast path.
	for i := 0; i < members; i++ {
		if err := r.SetWeight(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	if r.skewed != 0 {
		t.Fatalf("skewed = %d after resetting weights", r.skewed)
	}
	plain := NewRing(members)
	for i := uint64(0); i < 2000; i++ {
		a := r.Owners(ringKey(i), rf, nil)
		b := plain.Owners(ringKey(i), rf, nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("key %d: reset ring %v vs fresh ring %v", i, a, b)
			}
		}
	}
}

// TestRingWeightedDistribution is the ROADMAP's ownership-distribution
// check over skewed weights: members weighted 1:2:3:4 must own key
// slices proportional to their capacity (weighted rendezvous gives each
// member a weight-proportional win probability).
func TestRingWeightedDistribution(t *testing.T) {
	const members, keys = 4, 60000
	r := NewRing(members)
	weights := []float64{1, 2, 3, 4}
	total := 0.0
	for i, w := range weights {
		if err := r.SetWeight(i, w); err != nil {
			t.Fatal(err)
		}
		total += w
	}
	counts := make([]int, members)
	var buf [MaxReplicas]int
	for i := uint64(0); i < keys; i++ {
		counts[r.Owners(ringKey(i), 1, buf[:0])[0]]++
	}
	for i, n := range counts {
		want := float64(keys) * weights[i] / total
		if f := float64(n); f < want*0.9 || f > want*1.1 {
			t.Errorf("member %d (weight %v) owns %d keys, want ~%.0f (±10%%)", i, weights[i], n, want)
		}
	}

	// Extreme skew: a heavily weighted member dominates primaries.
	r2 := NewRing(2)
	if err := r2.SetWeight(1, 9); err != nil {
		t.Fatal(err)
	}
	c := make([]int, 2)
	for i := uint64(0); i < 20000; i++ {
		c[r2.Owners(ringKey(i), 1, buf[:0])[0]]++
	}
	if frac := float64(c[1]) / 20000; frac < 0.85 || frac > 0.95 {
		t.Errorf("weight-9 member owns %.3f of keys, want ~0.9", frac)
	}
}

// TestRingWeightedReplicaSets checks the weighted path keeps the core
// rendezvous contracts: R distinct owners, deterministic, and lists
// hash like keys.
func TestRingWeightedReplicaSets(t *testing.T) {
	r := NewRing(5)
	for i, w := range []float64{1, 0.5, 2, 4, 1} {
		if err := r.SetWeight(i, w); err != nil {
			t.Fatal(err)
		}
	}
	var buf [MaxReplicas]int
	for i := uint64(0); i < 2000; i++ {
		owners := r.Owners(ringKey(i), 3, buf[:0])
		if len(owners) != 3 {
			t.Fatalf("key %d: %d owners", i, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %d: duplicate owner in %v", i, owners)
			}
			seen[o] = true
		}
		again := r.Owners(ringKey(i), 3, nil)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %d: nondeterministic owners", i)
			}
		}
	}
}
