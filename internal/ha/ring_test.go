package ha

import (
	"encoding/binary"
	"testing"
)

func ringKey(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i*0x9e3779b97f4a7c15)
	return b[:]
}

func TestRingOwnersBasics(t *testing.T) {
	r := NewRing(5)
	for i := uint64(0); i < 1000; i++ {
		owners := r.Owners(ringKey(i), 3, nil)
		if len(owners) != 3 {
			t.Fatalf("key %d: %d owners, want 3", i, len(owners))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if o < 0 || o >= 5 {
				t.Fatalf("key %d: owner %d out of range", i, o)
			}
			if seen[o] {
				t.Fatalf("key %d: duplicate owner %d in %v", i, o, owners)
			}
			seen[o] = true
		}
		again := r.Owners(ringKey(i), 3, nil)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("key %d: owners not deterministic: %v vs %v", i, owners, again)
			}
		}
	}
}

func TestRingOwnersClamped(t *testing.T) {
	r := NewRing(2)
	if got := r.Owners(ringKey(1), 5, nil); len(got) != 2 {
		t.Fatalf("owners clamped to %d, want 2", len(got))
	}
	if got := NewRing(0).Owners(ringKey(1), 2, nil); len(got) != 0 {
		t.Fatalf("empty ring returned owners %v", got)
	}
}

// TestRingDescendingScores checks out[0] really is the highest-scoring
// member (the primary), since queries treat it preferentially.
func TestRingDescendingScores(t *testing.T) {
	r := NewRing(8)
	for i := uint64(0); i < 200; i++ {
		key := ringKey(i)
		owners := r.Owners(key, 4, nil)
		digest := r.keyEng.Sum(key)
		prev := r.score(digest, owners[0])
		for _, o := range owners[1:] {
			s := r.score(digest, o)
			if s > prev {
				t.Fatalf("key %d: owners %v not in descending score order", i, owners)
			}
			prev = s
		}
	}
}

// TestRingDistribution checks rendezvous ownership spreads near
// uniformly, like the CRC-mod-N distribution test for Cluster.
func TestRingDistribution(t *testing.T) {
	const members, keys, rf = 4, 40000, 2
	r := NewRing(members)
	counts := make([]int, members)
	var buf [MaxReplicas]int
	for i := uint64(0); i < keys; i++ {
		for _, o := range r.Owners(ringKey(i), rf, buf[:0]) {
			counts[o]++
		}
	}
	mean := keys * rf / members
	for i, n := range counts {
		if n < mean*8/10 || n > mean*12/10 {
			t.Errorf("member %d owns %d slots (mean %d): skewed beyond ±20%%", i, n, mean)
		}
	}
}

// TestRingMinimalMovementOnAdd checks the rendezvous property that
// makes live resharding cheap: adding a member only ever moves keys TO
// the new member — a surviving key's owner set is a subset of the old
// set plus the newcomer.
func TestRingMinimalMovementOnAdd(t *testing.T) {
	const keys, rf = 5000, 2
	r := NewRing(4)
	before := make([][]int, keys)
	for i := range before {
		before[i] = r.Owners(ringKey(uint64(i)), rf, nil)
	}
	if err := r.Add(4); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after := r.Owners(ringKey(uint64(i)), rf, nil)
		was := map[int]bool{}
		for _, o := range before[i] {
			was[o] = true
		}
		changed := false
		for _, o := range after {
			if o == 4 {
				changed = true
				continue
			}
			if !was[o] {
				t.Fatalf("key %d: owner %d appeared without the new member gaining it (%v -> %v)",
					i, o, before[i], after)
			}
		}
		if changed {
			moved++
		}
	}
	// Expected movement: each key independently ranks the newcomer into
	// its top-2 of 5 with probability 2/5.
	if lo, hi := keys*rf*6/(10*5), keys*rf*14/(10*5); moved < lo || moved > hi {
		t.Errorf("add moved %d/%d keys, expected near %d", moved, keys, keys*rf/5)
	}
}

// TestRingMinimalMovementOnRemove: removing a member only moves the
// keys it owned; every other key keeps its exact owner set.
func TestRingMinimalMovementOnRemove(t *testing.T) {
	const keys, rf = 5000, 2
	r := NewRing(5)
	before := make([][]int, keys)
	for i := range before {
		before[i] = r.Owners(ringKey(uint64(i)), rf, nil)
	}
	if err := r.Remove(2); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := r.Owners(ringKey(uint64(i)), rf, nil)
		owned := false
		for _, o := range before[i] {
			if o == 2 {
				owned = true
			}
		}
		if !owned {
			for j := range after {
				if after[j] != before[i][j] {
					t.Fatalf("key %d not owned by removed member yet moved: %v -> %v", i, before[i], after)
				}
			}
		}
	}
}

func TestRingMembershipErrors(t *testing.T) {
	r := NewRing(3)
	if err := r.Add(1); err == nil {
		t.Error("double add accepted")
	}
	if err := r.Add(-1); err == nil {
		t.Error("negative member accepted")
	}
	if err := r.Remove(7); err == nil {
		t.Error("removing absent member accepted")
	}
	if err := r.Remove(1); err != nil {
		t.Fatal(err)
	}
	if r.Contains(1) || !r.Contains(0) || r.Size() != 2 {
		t.Errorf("membership after remove: members=%v", r.Members())
	}
	if err := r.Add(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("members = %v, want [0 1 2]", got)
	}
}

func TestHealthCounters(t *testing.T) {
	h := NewHealth()
	if h.IsDown(3) {
		t.Error("fresh member down")
	}
	if err := h.SetDown(3); err != nil {
		t.Fatal(err)
	}
	if !h.IsDown(3) {
		t.Error("SetDown did not stick")
	}
	if err := h.SetUp(3); err != nil {
		t.Fatal(err)
	}
	if h.IsDown(3) {
		t.Error("SetUp did not stick")
	}
	if err := h.SetDown(MaxMembers); err == nil {
		t.Error("out-of-range member accepted")
	}

	h.RecordWrite(2, 2) // healthy: no counters
	h.RecordWrite(1, 3) // degraded, 2 skips
	h.RecordWrite(0, 2) // lost, 2 skips
	h.RecordQuery(0, true, true)
	h.RecordQuery(1, true, false) // degraded + failover
	h.RecordQuery(1, false, false)
	st := h.Snapshot()
	want := Stats{
		DegradedWrites: 1, LostWrites: 1, ReplicaSkips: 4,
		DegradedQueries: 2, FailoverQueries: 1, FailedQueries: 1,
	}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
}
