package btrdb

import (
	"testing"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

func report(value int, ts uint64) []byte {
	r := baseline.Report{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: 5, DstPort: 443, Proto: 6,
		SwitchID: 3, Value: uint32(value), TimestampNs: ts,
	}
	buf := make([]byte, baseline.ReportSize)
	r.Encode(buf)
	return buf
}

func TestAggregatesAccumulate(t *testing.T) {
	tr := New(1000)
	vals := []int{5, 1, 9, 3}
	for i, v := range vals {
		if err := tr.Ingest(report(v, uint64(i)*100)); err != nil {
			t.Fatal(err)
		}
	}
	agg := tr.Total()
	if agg.Count != 4 || agg.Min != 1 || agg.Max != 9 || agg.Sum != 18 {
		t.Errorf("aggregates = %+v", agg)
	}
}

func TestWindowAggregates(t *testing.T) {
	tr := New(1000) // 1000ns leaf buckets
	// Two points in one bucket, one far away.
	tr.Ingest(report(10, 100))
	tr.Ingest(report(20, 200))
	tr.Ingest(report(30, 1e9))
	leaf := tr.WindowAggregate(100, 4)
	if leaf.Count != 2 || leaf.Sum != 30 {
		t.Errorf("leaf aggregate = %+v", leaf)
	}
	root := tr.WindowAggregate(100, 0)
	if root.Count != 3 {
		t.Errorf("root count = %d", root.Count)
	}
	// An empty window.
	if e := tr.WindowAggregate(5e8, 4); e.Count != 0 {
		t.Errorf("empty window = %+v", e)
	}
}

func TestPositionBetweenBaselines(t *testing.T) {
	// Fig. 7a: BTrDB sits below MultiLog; per-report cycles exceed
	// MultiLog's ~1400.
	tr := New(1e6)
	for i := 0; i < 3000; i++ {
		tr.Ingest(report(i, uint64(i)*1e6))
	}
	pr := tr.Counters().PerReport()
	if pr.TotalCycles() < 1500 || pr.TotalCycles() > 5000 {
		t.Errorf("cycles/report = %.0f, want in (1500, 5000)", pr.TotalCycles())
	}
	cpu := costmodel.Xeon4114()
	r16, _ := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 16)
	if r16 < 5e6 || r16 > 25e6 {
		t.Errorf("16-core throughput = %.1fM, want between INTCollector and MultiLog", r16/1e6)
	}
}

func TestIngestRejectsShort(t *testing.T) {
	tr := New(1000)
	if err := tr.Ingest(make([]byte, 3)); err == nil {
		t.Error("short report accepted")
	}
}
