// Package btrdb models BTrDB (FAST'16), the time-series store the paper
// benchmarks in Fig. 7a: a time-partitioned tree whose internal nodes
// carry statistical aggregates (count/min/max/sum) over their subtree, so
// windowed queries read O(log n) aggregates instead of raw points.
//
// Inserts pay for that query speed: every point updates the aggregates on
// the whole root-to-leaf path (copy-on-write in the real system), which
// puts BTrDB's ingest rate between INTCollector's and the MultiLog's.
package btrdb

import (
	"dta/internal/baseline"
	"dta/internal/costmodel"
)

// fanout is the tree fan-out (64, as in BTrDB's K=64 time partitioning).
const fanout = 64

// levels is the fixed tree depth; with 64-way fan-out, 4 levels cover
// 64^4 ≈ 16.7M leaf buckets.
const levels = 4

// Aggregates are the per-node statistical summaries.
type Aggregates struct {
	Count    uint64
	Min, Max uint32
	Sum      uint64
}

func (a *Aggregates) add(v uint32) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	a.Count++
	a.Sum += uint64(v)
}

type node struct {
	agg      Aggregates
	children [fanout]*node
	points   []point // leaves only
}

type point struct {
	time  uint64
	value uint32
}

// Tree is the collector.
type Tree struct {
	root *node
	// BucketNs is the time width of one leaf bucket.
	BucketNs uint64
	ctr      costmodel.Counters
}

// New creates a tree with the given leaf bucket width in nanoseconds.
func New(bucketNs uint64) *Tree {
	if bucketNs == 0 {
		bucketNs = 1e6
	}
	return &Tree{root: &node{}, BucketNs: bucketNs}
}

// Name implements baseline.Collector.
func (t *Tree) Name() string { return "BTrDB" }

// Counters implements baseline.Collector.
func (t *Tree) Counters() *costmodel.Counters { return &t.ctr }

// path computes the child index at each level for a timestamp.
func (t *Tree) path(ts uint64) [levels]int {
	bucket := ts / t.BucketNs
	var p [levels]int
	for l := levels - 1; l >= 0; l-- {
		p[l] = int(bucket % fanout)
		bucket /= fanout
	}
	return p
}

// Ingest implements baseline.Collector.
func (t *Tree) Ingest(raw []byte) error {
	// --- I/O: gRPC-style receive path.
	t.ctr.Charge(costmodel.PhaseIO, 300, baseline.MemIO+2)

	// --- Parse.
	var r baseline.Report
	if err := r.Decode(raw); err != nil {
		return err
	}
	t.ctr.Charge(costmodel.PhaseParse,
		uint64(6*baseline.CyclesPerField),
		6*baseline.MemPerField)

	// --- Insert: walk root→leaf updating aggregates (copy-on-write in
	// the real system: charge a version-copy per node), append the point.
	cycles := uint64(0)
	words := 0
	n := t.root
	for _, idx := range t.path(r.TimestampNs) {
		n.agg.add(r.Value)
		// Aggregate update (4 words) + copy-on-write version header.
		words += 5
		cycles += 5*baseline.CyclesPerWord + baseline.CyclesPerNode + 320 // COW block copy
		next := n.children[idx]
		if next == nil {
			next = &node{}
			n.children[idx] = next
			words++
		}
		n = next
	}
	n.agg.add(r.Value)
	n.points = append(n.points, point{time: r.TimestampNs, value: r.Value})
	words += 5 + 2
	cycles += 7 * baseline.CyclesPerWord
	t.ctr.Charge(costmodel.PhaseInsert, cycles, uint64(words))
	t.ctr.ChargeDRAM(costmodel.PhaseInsert, 6)
	t.ctr.Done(1)
	return nil
}

// WindowAggregate returns the aggregates of the smallest subtree covering
// the leaf bucket of ts at the given level (0 = root, levels = leaf).
func (t *Tree) WindowAggregate(ts uint64, level int) Aggregates {
	if level <= 0 {
		return t.root.agg
	}
	if level > levels {
		level = levels
	}
	n := t.root
	p := t.path(ts)
	for l := 0; l < level; l++ {
		if n.children[p[l]] == nil {
			return Aggregates{}
		}
		n = n.children[p[l]]
	}
	return n.agg
}

// Total returns the root aggregates (whole-stream stats).
func (t *Tree) Total() Aggregates { return t.root.agg }
