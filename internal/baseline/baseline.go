// Package baseline defines the shared machinery of the CPU-based
// telemetry collectors DTA is compared against (§2, §6.1): the on-wire
// report format they parse, the Collector interface, and the calibrated
// cycle/memory charges each implementation records into a
// costmodel.Counters as it executes.
//
// Calibration: per-operation cycle charges are set so that the projected
// throughput and phase breakdown of each collector on the paper's server
// (2×Xeon 4114) match Fig. 2 — MultiLog ≈ 1400 cycles/report dominated
// 72.8% by insertion and CPU-bound to 20 cores; Cuckoo ≈ 350
// cycles/report but memory-bound beyond ~11 cores. Memory-instruction
// counts are genuine counts of the words each structure touches; they
// understate the paper's perf-counter measurements (which include
// allocator and metadata traffic) but preserve the orders-of-magnitude
// gap to DTA's RDMA path (Fig. 8).
package baseline

import (
	"encoding/binary"
	"errors"

	"dta/internal/costmodel"
)

// ReportSize is the on-wire size of a generic 4 B INT report as the CPU
// collectors receive it: 5-tuple key (13 B + 1 pad), switch ID (4 B),
// value (4 B), timestamp (8 B).
const ReportSize = 30

// Report is a parsed INT report.
type Report struct {
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	Proto            uint8
	SwitchID         uint32
	Value            uint32
	TimestampNs      uint64
}

// Encode serialises the report into dst (≥ ReportSize bytes).
func (r *Report) Encode(dst []byte) {
	copy(dst[0:4], r.SrcIP[:])
	copy(dst[4:8], r.DstIP[:])
	binary.BigEndian.PutUint16(dst[8:10], r.SrcPort)
	binary.BigEndian.PutUint16(dst[10:12], r.DstPort)
	dst[12] = r.Proto
	dst[13] = 0
	binary.BigEndian.PutUint32(dst[14:18], r.SwitchID)
	binary.BigEndian.PutUint32(dst[18:22], r.Value)
	binary.BigEndian.PutUint64(dst[22:30], r.TimestampNs)
}

// ErrShortReport reports a truncated report buffer.
var ErrShortReport = errors.New("baseline: short report")

// Decode parses a report from b.
func (r *Report) Decode(b []byte) error {
	if len(b) < ReportSize {
		return ErrShortReport
	}
	copy(r.SrcIP[:], b[0:4])
	copy(r.DstIP[:], b[4:8])
	r.SrcPort = binary.BigEndian.Uint16(b[8:10])
	r.DstPort = binary.BigEndian.Uint16(b[10:12])
	r.Proto = b[12]
	r.SwitchID = binary.BigEndian.Uint32(b[14:18])
	r.Value = binary.BigEndian.Uint32(b[18:22])
	r.TimestampNs = binary.BigEndian.Uint64(b[22:30])
	return nil
}

// FlowKey64 compresses the 5-tuple into a 64-bit hash key used by the
// collectors' indexes.
func (r *Report) FlowKey64() uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) { h = (h ^ uint64(b)) * 1099511628211 }
	for _, b := range r.SrcIP {
		mix(b)
	}
	for _, b := range r.DstIP {
		mix(b)
	}
	mix(byte(r.SrcPort >> 8))
	mix(byte(r.SrcPort))
	mix(byte(r.DstPort >> 8))
	mix(byte(r.DstPort))
	mix(r.Proto)
	return h
}

// Collector is a CPU-based report ingestion engine.
type Collector interface {
	// Name identifies the collector in benchmark output.
	Name() string
	// Ingest consumes one on-wire report, charging its costs.
	Ingest(raw []byte) error
	// Counters exposes the accumulated cost accounting.
	Counters() *costmodel.Counters
}

// Calibrated per-operation charges (cycles). See the package comment.
const (
	// CyclesIOHeavy is per-report I/O for the DPDK+framework collectors
	// (mbuf management, burst dispatch, copies into the ingest queue).
	CyclesIOHeavy = 190
	// CyclesIOLight is per-report I/O for the lean cuckoo collector.
	CyclesIOLight = 100
	// CyclesPerField is charged per extracted header field.
	CyclesPerField = 24
	// CyclesPerHash is one hash computation over the flow key.
	CyclesPerHash = 30
	// CyclesPerNode is one pointer-chasing node access (index walk).
	CyclesPerNode = 12
	// CyclesPerWord is one sequential word access.
	CyclesPerWord = 4
	// MemIO is the memory instructions charged to I/O per report
	// (descriptor ring + payload fetch).
	MemIO = 2
	// MemPerField is charged per extracted field.
	MemPerField = 1
)
