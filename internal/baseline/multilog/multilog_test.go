package multilog

import (
	"math"
	"testing"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

func report(i int) []byte {
	r := baseline.Report{
		SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: uint16(i), DstPort: 443, Proto: 6,
		SwitchID: uint32(i % 64), Value: uint32(i * 7), TimestampNs: uint64(i) * 1000,
	}
	buf := make([]byte, baseline.ReportSize)
	r.Encode(buf)
	return buf
}

func TestIngestAndLookup(t *testing.T) {
	m := New(1 << 12)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := m.Ingest(report(i)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Counters().Reports != n {
		t.Fatalf("reports = %d", m.Counters().Reports)
	}
	// Look up by switch ID: each of 64 IDs appears ~n/64 times.
	var r baseline.Report
	r.Decode(report(7))
	offs := m.LookupReport(FieldSwitchID, &r)
	if len(offs) < 10 {
		t.Fatalf("switch-ID lookup returned %d offsets", len(offs))
	}
	for _, off := range offs {
		rec, err := m.Record(off)
		if err != nil {
			t.Fatal(err)
		}
		if rec.SwitchID != r.SwitchID {
			t.Fatalf("record %d has switch %d, want %d", off, rec.SwitchID, r.SwitchID)
		}
	}
	// Exact source-port lookup.
	offs = m.LookupReport(FieldSrcPort, &r)
	if len(offs) == 0 {
		t.Fatal("src-port lookup empty")
	}
	rec, _ := m.Record(offs[0])
	if rec.SrcPort != 7 {
		t.Errorf("src port = %d", rec.SrcPort)
	}
	// Missing value.
	if offs := m.Lookup(FieldSrcPort, 65535); len(offs) != 0 {
		t.Error("lookup of absent key returned offsets")
	}
}

func TestInsertionDominatesCycles(t *testing.T) {
	// Fig. 2c: MultiLog spends ~72.8% of cycles in insertion and equal
	// shares (~13.6%) in I/O and parsing.
	m := New(1 << 12)
	for i := 0; i < 2000; i++ {
		m.Ingest(report(i))
	}
	sh := m.Counters().PerReport().CycleShare()
	if sh[2] < 0.65 || sh[2] > 0.80 {
		t.Errorf("insert share = %.3f, want ≈0.728", sh[2])
	}
	if math.Abs(sh[0]-sh[1]) > 0.06 {
		t.Errorf("I/O (%.3f) and parse (%.3f) shares should be close", sh[0], sh[1])
	}
}

func TestThroughputMatchesFig2a(t *testing.T) {
	// MultiLog is CPU-bound: ~25M reports/s with 16 cores on the paper's
	// server, scaling linearly in cores.
	m := New(1 << 12)
	for i := 0; i < 2000; i++ {
		m.Ingest(report(i))
	}
	pr := m.Counters().PerReport()
	cpu := costmodel.Xeon4114()
	r16, stall := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 16)
	if r16 < 15e6 || r16 > 40e6 {
		t.Errorf("16-core throughput = %.1fM, want ≈25M", r16/1e6)
	}
	if stall > 0.15 {
		t.Errorf("MultiLog stall = %.2f; it should be CPU-bound", stall)
	}
	// Linear scaling 10→20 cores.
	r10, _ := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 10)
	r20, _ := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 20)
	if ratio := r20 / r10; ratio < 1.9 || ratio > 2.05 {
		t.Errorf("10→20 core scaling = %.2f, want ≈2 (CPU-bound)", ratio)
	}
}

func TestMemOpsPerReportOrderOfMagnitude(t *testing.T) {
	// Fig. 8 measures 343 memory instructions per report with hardware
	// counters; our structural count must land in the same regime
	// (≥100, i.e. two orders of magnitude above DTA's Key-Write at 2.0).
	m := New(1 << 12)
	for i := 0; i < 2000; i++ {
		m.Ingest(report(i))
	}
	mem := m.Counters().PerReport().TotalMemOps()
	if mem < 100 || mem > 600 {
		t.Errorf("mem ops/report = %.1f, want within [100,600]", mem)
	}
}

func TestIngestRejectsShort(t *testing.T) {
	m := New(16)
	if err := m.Ingest(make([]byte, 4)); err == nil {
		t.Error("short report accepted")
	}
}

func BenchmarkIngest(b *testing.B) {
	m := New(1 << 20)
	bufs := make([][]byte, 1024)
	for i := range bufs {
		bufs[i] = report(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Ingest(bufs[i%len(bufs)])
	}
}
