// Package multilog reimplements the Atomic MultiLog, the storage
// abstraction of Confluo (NSDI'19) that the paper uses as its
// state-of-the-art CPU collector ("MultiLog").
//
// An atomic multilog is an append-only data log with per-field indexes
// updated atomically relative to a read frontier: writers reserve an
// offset, write the record, update every configured field index (radix
// trees from field value to record-offset lists), then advance the read
// tail. The rich indexing is what makes diverse offline queries cheap —
// and what makes ingestion expensive: Fig. 2c attributes 72.8% of
// MultiLog's cycles to insertion, and Fig. 8 measures hundreds of memory
// instructions per report.
package multilog

import (
	"sync/atomic"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

// Field identifies an indexed attribute of the INT report schema.
type Field int

// The indexed fields: Confluo indexes every queryable attribute.
const (
	FieldSrcIP Field = iota
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProto
	FieldSwitchID
	FieldValue
	FieldTimestamp
	numFields
)

// radixLevels and radixFanout describe the index tries: 8 levels of
// 256-way fan-out over a 64-bit hashed field value, like Confluo's
// byte-wise radix trees.
const (
	radixLevels = 8
	radixFanout = 256
)

type radixNode struct {
	children [radixFanout]*radixNode
	offsets  []uint64 // leaf: record offsets (the "reflog")
}

// MultiLog is the collector.
type MultiLog struct {
	data    []byte
	tail    atomic.Uint64
	indexes [numFields]*radixNode
	ctr     costmodel.Counters
}

// New creates a MultiLog with capacity for n records.
func New(n int) *MultiLog {
	m := &MultiLog{data: make([]byte, n*baseline.ReportSize)}
	for i := range m.indexes {
		m.indexes[i] = &radixNode{}
	}
	return m
}

// Name implements baseline.Collector.
func (m *MultiLog) Name() string { return "MultiLog" }

// Counters implements baseline.Collector.
func (m *MultiLog) Counters() *costmodel.Counters { return &m.ctr }

// fieldKey extracts the 64-bit index key for a field.
func fieldKey(r *baseline.Report, f Field) uint64 {
	switch f {
	case FieldSrcIP:
		return uint64(r.SrcIP[0])<<24 | uint64(r.SrcIP[1])<<16 | uint64(r.SrcIP[2])<<8 | uint64(r.SrcIP[3])
	case FieldDstIP:
		return uint64(r.DstIP[0])<<24 | uint64(r.DstIP[1])<<16 | uint64(r.DstIP[2])<<8 | uint64(r.DstIP[3])
	case FieldSrcPort:
		return uint64(r.SrcPort)
	case FieldDstPort:
		return uint64(r.DstPort)
	case FieldProto:
		return uint64(r.Proto)
	case FieldSwitchID:
		return uint64(r.SwitchID)
	case FieldValue:
		return uint64(r.Value)
	case FieldTimestamp:
		// Bucket timestamps to milliseconds, as Confluo's time index does.
		return r.TimestampNs / 1e6
	default:
		return 0
	}
}

// indexInsert walks the radix trie for the key, allocating nodes on
// demand, and appends the offset to the leaf reflog. It returns the
// number of node accesses and word writes performed.
func (m *MultiLog) indexInsert(f Field, key uint64, offset uint64) (nodes, words int) {
	n := m.indexes[f]
	for level := 0; level < radixLevels; level++ {
		b := byte(key >> uint(8*(radixLevels-1-level)))
		nodes++
		next := n.children[b]
		if next == nil {
			next = &radixNode{}
			n.children[b] = next
			words++
		}
		n = next
	}
	n.offsets = append(n.offsets, offset)
	words += 2 // length + element store
	return nodes, words
}

// Ingest implements baseline.Collector: I/O, parse, then the atomic
// append plus all index updates.
func (m *MultiLog) Ingest(raw []byte) error {
	// --- I/O phase: the packet has been burst-received and copied.
	m.ctr.Charge(costmodel.PhaseIO, baseline.CyclesIOHeavy, baseline.MemIO)

	// --- Parse phase: extract all schema fields.
	var r baseline.Report
	if err := r.Decode(raw); err != nil {
		return err
	}
	m.ctr.Charge(costmodel.PhaseParse,
		uint64(numFields)*baseline.CyclesPerField,
		uint64(numFields)*baseline.MemPerField)

	// --- Insert phase: reserve an offset, write the record, update all
	// field indexes.
	off := m.tail.Add(baseline.ReportSize) - baseline.ReportSize
	pos := int(off) % len(m.data)
	r.Encode(m.data[pos : pos+baseline.ReportSize])
	words := baseline.ReportSize/8 + 1 // record body + atomic tail

	cycles := uint64(25) // atomic fetch-add
	for f := Field(0); f < numFields; f++ {
		nodes, w := m.indexInsert(f, fieldKey(&r, f), off)
		cycles += baseline.CyclesPerHash + uint64(nodes)*baseline.CyclesPerNode + uint64(w)*baseline.CyclesPerWord
		// Each node access is a pointer load + child slot read.
		words += nodes*2 + w
	}
	m.ctr.Charge(costmodel.PhaseInsert, cycles, uint64(words))
	// DRAM-level traffic: the hot upper radix levels stay cached; only
	// the data-log line, the reflog tail and the cold deep levels miss.
	m.ctr.ChargeDRAM(costmodel.PhaseInsert, 4)
	m.ctr.Done(1)
	return nil
}

// Lookup returns the record offsets stored under the given field value,
// the query path of the multilog.
func (m *MultiLog) Lookup(f Field, key uint64) []uint64 {
	n := m.indexes[f]
	for level := 0; level < radixLevels; level++ {
		b := byte(key >> uint(8*(radixLevels-1-level)))
		n = n.children[b]
		if n == nil {
			return nil
		}
	}
	return n.offsets
}

// Record decodes the record at a lookup-returned offset.
func (m *MultiLog) Record(off uint64) (baseline.Report, error) {
	var r baseline.Report
	pos := int(off) % len(m.data)
	err := r.Decode(m.data[pos : pos+baseline.ReportSize])
	return r, err
}

// LookupReport is a convenience: all records whose field matches the
// report's value (e.g. all reports of one flow's source IP).
func (m *MultiLog) LookupReport(f Field, r *baseline.Report) []uint64 {
	return m.Lookup(f, fieldKey(r, f))
}
