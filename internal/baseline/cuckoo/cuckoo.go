// Package cuckoo implements the lightweight DPDK-style collector of §2:
// a bucketed cuckoo hash table (2 hash functions × 4-slot buckets, as in
// MemC3/libcuckoo) that stores the latest report per flow.
//
// With so little indexing work it ingests more reports per core than the
// MultiLog — but every report still hashes, probes two buckets and writes
// a slot, so the memory subsystem saturates around 11 cores (Fig. 2b):
// lean CPU collection trades a CPU wall for a memory wall.
package cuckoo

import (
	"dta/internal/baseline"
	"dta/internal/costmodel"
)

// slotsPerBucket is the bucket width (4, as in libcuckoo).
const slotsPerBucket = 4

// maxKicks bounds the eviction walk before declaring the table full.
const maxKicks = 16

type slot struct {
	key   uint64
	value baseline.Report
	used  bool
}

type bucket [slotsPerBucket]slot

// Table is the collector.
type Table struct {
	buckets []bucket
	mask    uint64
	ctr     costmodel.Counters
	// Dropped counts inserts abandoned after maxKicks (table full).
	Dropped uint64
}

// New creates a table with the given number of buckets (a power of two).
func New(buckets int) *Table {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic("cuckoo: bucket count must be a positive power of two")
	}
	return &Table{buckets: make([]bucket, buckets), mask: uint64(buckets - 1)}
}

// Name implements baseline.Collector.
func (t *Table) Name() string { return "Cuckoo" }

// Counters implements baseline.Collector.
func (t *Table) Counters() *costmodel.Counters { return &t.ctr }

// hash1 and hash2 derive the two bucket choices.
func hash1(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func hash2(k uint64) uint64 {
	k ^= k >> 29
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 29
	return k
}

// Ingest implements baseline.Collector.
func (t *Table) Ingest(raw []byte) error {
	// --- I/O: lean rx path.
	t.ctr.Charge(costmodel.PhaseIO, baseline.CyclesIOLight, baseline.MemIO)

	// --- Parse: extract the 5-tuple and value (6 fields), compute both
	// bucket hashes.
	var r baseline.Report
	if err := r.Decode(raw); err != nil {
		return err
	}
	key := r.FlowKey64()
	// The lean collector extracts the 5-tuple with wide loads (cheaper
	// than the framework collectors' per-field getters) and computes the
	// two bucket hashes.
	const cyclesWideField = 12
	const cyclesBucketHash = 28
	t.ctr.Charge(costmodel.PhaseParse,
		6*cyclesWideField+2*cyclesBucketHash,
		6*baseline.MemPerField)

	// --- Insert: probe both buckets; update in place, fill a free slot,
	// or kick. Bucket probes are random accesses: each touched bucket is
	// a DRAM cache-line fetch (the table dwarfs the LLC), which is what
	// builds the memory wall of Fig. 2b.
	cycles := uint64(0)
	words := 0
	dram := uint64(1) // the written-back bucket line

	b1 := hash1(key) & t.mask
	b2 := hash2(key) & t.mask
	// Probe for an existing entry or free slot across both buckets.
	// cyclesSlotProbe covers the slot load, key compare and branch.
	const cyclesSlotProbe = 12
	probe := func(bi uint64) (free int, found int) {
		free, found = -1, -1
		for i := 0; i < slotsPerBucket; i++ {
			words++ // slot header read
			cycles += cyclesSlotProbe
			s := &t.buckets[bi][i]
			if s.used && s.key == key {
				found = i
				return free, found
			}
			if !s.used && free == -1 {
				free = i
			}
		}
		return free, found
	}
	store := func(bi uint64, i int) {
		t.buckets[bi][i] = slot{key: key, value: r, used: true}
		words += baseline.ReportSize / 8
		cycles += uint64(baseline.ReportSize/8) * baseline.CyclesPerWord
	}

	f1, found1 := probe(b1)
	dram++
	if found1 >= 0 {
		store(b1, found1)
		t.finish(cycles, words, dram)
		return nil
	}
	f2, found2 := probe(b2)
	dram++
	if found2 >= 0 {
		store(b2, found2)
		t.finish(cycles, words, dram)
		return nil
	}
	if f1 >= 0 {
		store(b1, f1)
		t.finish(cycles, words, dram)
		return nil
	}
	if f2 >= 0 {
		store(b2, f2)
		t.finish(cycles, words, dram)
		return nil
	}

	// Both buckets full: cuckoo kick chain.
	cur := slot{key: key, value: r, used: true}
	bi := b1
	for kick := 0; kick < maxKicks; kick++ {
		victim := kick % slotsPerBucket
		cur, t.buckets[bi][victim] = t.buckets[bi][victim], cur
		words += 2 * baseline.ReportSize / 8
		cycles += uint64(2*baseline.ReportSize/8)*baseline.CyclesPerWord + baseline.CyclesPerHash
		// Move the displaced entry to its alternate bucket.
		alt := hash1(cur.key) & t.mask
		if alt == bi {
			alt = hash2(cur.key) & t.mask
		}
		bi = alt
		dram++
		for i := 0; i < slotsPerBucket; i++ {
			words++
			cycles += cyclesSlotProbe
			if !t.buckets[bi][i].used {
				t.buckets[bi][i] = cur
				words += baseline.ReportSize / 8
				cycles += uint64(baseline.ReportSize/8) * baseline.CyclesPerWord
				t.finish(cycles, words, dram)
				return nil
			}
		}
	}
	t.Dropped++
	t.finish(cycles, words, dram)
	return nil
}

func (t *Table) finish(cycles uint64, words int, dram uint64) {
	t.ctr.Charge(costmodel.PhaseInsert, cycles, uint64(words))
	t.ctr.ChargeDRAM(costmodel.PhaseInsert, dram)
	t.ctr.Done(1)
}

// Lookup returns the stored report for a flow key, if present.
func (t *Table) Lookup(key uint64) (baseline.Report, bool) {
	for _, bi := range [2]uint64{hash1(key) & t.mask, hash2(key) & t.mask} {
		for i := 0; i < slotsPerBucket; i++ {
			s := &t.buckets[bi][i]
			if s.used && s.key == key {
				return s.value, true
			}
		}
	}
	return baseline.Report{}, false
}

// Occupancy returns the number of used slots.
func (t *Table) Occupancy() int {
	n := 0
	for bi := range t.buckets {
		for i := 0; i < slotsPerBucket; i++ {
			if t.buckets[bi][i].used {
				n++
			}
		}
	}
	return n
}
