package cuckoo

import (
	"testing"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

func report(i int) ([]byte, uint64) {
	r := baseline.Report{
		SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: uint16(i), DstPort: 443, Proto: 6,
		SwitchID: 5, Value: uint32(i), TimestampNs: uint64(i),
	}
	buf := make([]byte, baseline.ReportSize)
	r.Encode(buf)
	return buf, r.FlowKey64()
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-power-of-two")
		}
	}()
	New(100)
}

func TestIngestAndLookup(t *testing.T) {
	tb := New(1 << 12)
	keys := make([]uint64, 0, 1000)
	for i := 0; i < 1000; i++ {
		buf, key := report(i)
		if err := tb.Ingest(buf); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	if tb.Dropped != 0 {
		t.Fatalf("dropped %d at low load", tb.Dropped)
	}
	for i, key := range keys {
		r, ok := tb.Lookup(key)
		if !ok {
			t.Fatalf("flow %d missing", i)
		}
		if r.Value != uint32(i) {
			t.Fatalf("flow %d value = %d", i, r.Value)
		}
	}
	if _, ok := tb.Lookup(0xdeadbeef); ok {
		t.Error("found absent key")
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := New(1 << 8)
	buf, key := report(1)
	tb.Ingest(buf)
	// Same flow, new value.
	var r baseline.Report
	r.Decode(buf)
	r.Value = 777
	buf2 := make([]byte, baseline.ReportSize)
	r.Encode(buf2)
	tb.Ingest(buf2)
	got, ok := tb.Lookup(key)
	if !ok || got.Value != 777 {
		t.Errorf("lookup = %+v, %v", got, ok)
	}
	if tb.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1 (updated in place)", tb.Occupancy())
	}
}

func TestKickChainsUnderLoad(t *testing.T) {
	// Fill a small table to ~90%: cuckoo kicks must relocate entries and
	// the vast majority of inserts must still succeed.
	tb := New(1 << 6) // 64 buckets × 4 slots = 256 capacity
	inserted := 230
	for i := 0; i < inserted; i++ {
		buf, _ := report(i)
		tb.Ingest(buf)
	}
	found := 0
	for i := 0; i < inserted; i++ {
		_, key := report(i)
		if _, ok := tb.Lookup(key); ok {
			found++
		}
	}
	if float64(found) < 0.95*float64(inserted) {
		t.Errorf("only %d/%d present at 90%% load", found, inserted)
	}
	if tb.Occupancy() != found {
		t.Errorf("occupancy %d != found %d", tb.Occupancy(), found)
	}
}

func TestMemoryBoundAtHighCores(t *testing.T) {
	// Fig. 2: Cuckoo is faster than MultiLog per core but becomes
	// memory-bound past ~11 cores with ~42% stalled cycles at 20.
	tb := New(1 << 14)
	for i := 0; i < 5000; i++ {
		buf, _ := report(i)
		tb.Ingest(buf)
	}
	pr := tb.Counters().PerReport()
	cpu := costmodel.Xeon4114()
	r20, stall := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 20)
	if stall < 0.25 || stall > 0.60 {
		t.Errorf("stall at 20 cores = %.2f, want ≈0.42", stall)
	}
	// Sub-linear scaling past the wall.
	r11, _ := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 11)
	if gain := r20 / r11; gain > 1.4 {
		t.Errorf("11→20 core gain = %.2f, want < 1.4 (memory wall)", gain)
	}
	if r20 < 40e6 || r20 > 100e6 {
		t.Errorf("20-core throughput = %.1fM, want ~60-80M", r20/1e6)
	}
}

func TestCuckooFasterPerCoreThanBreakdownSuggests(t *testing.T) {
	// Fig. 2c: Cuckoo's cycle shares are roughly balanced
	// (29.1 / 36.9 / 34.0).
	tb := New(1 << 14)
	for i := 0; i < 5000; i++ {
		buf, _ := report(i)
		tb.Ingest(buf)
	}
	sh := tb.Counters().PerReport().CycleShare()
	for i, want := range []float64{0.291, 0.369, 0.340} {
		if sh[i] < want-0.12 || sh[i] > want+0.12 {
			t.Errorf("phase %d share = %.3f, want ≈%.3f", i, sh[i], want)
		}
	}
}

func BenchmarkIngest(b *testing.B) {
	tb := New(1 << 20)
	bufs := make([][]byte, 1024)
	for i := range bufs {
		bufs[i], _ = report(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb.Ingest(bufs[i%len(bufs)])
	}
}
