package intcollector

import (
	"testing"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

func report(flow, value int, ts uint64) []byte {
	r := baseline.Report{
		SrcIP: [4]byte{10, 0, byte(flow >> 8), byte(flow)}, DstIP: [4]byte{10, 1, 0, 1},
		SrcPort: uint16(flow), DstPort: 443, Proto: 6,
		SwitchID: 3, Value: uint32(value), TimestampNs: ts,
	}
	buf := make([]byte, baseline.ReportSize)
	r.Encode(buf)
	return buf
}

func seriesOf(flow int) uint64 {
	var r baseline.Report
	r.Decode(report(flow, 0, 0))
	return r.FlowKey64() ^ uint64(r.SwitchID)*0x9e3779b97f4a7c15
}

func TestEventDetectionSuppressesSmallDeltas(t *testing.T) {
	c := New(1<<12, 100)
	// First report always stored; tiny oscillations after it are not.
	c.Ingest(report(1, 1000, 10))
	for i := 0; i < 50; i++ {
		c.Ingest(report(1, 1000+i%3, uint64(20+i)))
	}
	if c.Stored != 1 {
		t.Errorf("stored = %d, want 1 (events suppressed)", c.Stored)
	}
	// A big jump is stored.
	c.Ingest(report(1, 5000, 100))
	if c.Stored != 2 {
		t.Errorf("stored = %d, want 2", c.Stored)
	}
}

func TestQueryRange(t *testing.T) {
	c := New(8, 0) // tiny memtable: forces flushes; threshold 0 stores all
	for i := 0; i < 40; i++ {
		c.Ingest(report(1, i*1000, uint64(i)*100))
	}
	pts := c.QueryRange(seriesOf(1), 500, 1500)
	if len(pts) != 11 {
		t.Fatalf("points in [500,1500] = %d, want 11", len(pts))
	}
	for _, p := range pts {
		if p.Time < 500 || p.Time > 1500 {
			t.Fatalf("point at %d outside range", p.Time)
		}
	}
	// Other series invisible.
	if pts := c.QueryRange(seriesOf(2), 0, 1<<40); len(pts) != 0 {
		t.Error("foreign series returned points")
	}
}

func TestOutOfOrderPointsSorted(t *testing.T) {
	c := New(1<<10, 0)
	times := []uint64{500, 100, 300, 200, 400}
	for _, ts := range times {
		c.Ingest(report(1, int(ts), ts))
	}
	pts := c.QueryRange(seriesOf(1), 0, 1000)
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Time < pts[i-1].Time {
			t.Fatal("points not time-ordered")
		}
	}
}

func TestSlowestCPUBaseline(t *testing.T) {
	// Fig. 7a places INTCollector below MultiLog: per-report cycles must
	// exceed MultiLog's ~1400 when storing most points.
	c := New(1<<14, 0)
	for i := 0; i < 3000; i++ {
		c.Ingest(report(i%100, i*50, uint64(i)*10))
	}
	pr := c.Counters().PerReport()
	if pr.TotalCycles() < 2000 {
		t.Errorf("cycles/report = %.0f, want > 2000", pr.TotalCycles())
	}
	cpu := costmodel.Xeon4114()
	r16, _ := cpu.Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 16)
	if r16 > 15e6 {
		t.Errorf("16-core throughput = %.1fM, want < 15M (slowest baseline)", r16/1e6)
	}
}
