// Package intcollector models INTCollector (CNSM'18), the open-source INT
// collector the paper benchmarks in Fig. 7a: reports are parsed, run
// through event detection (only significant changes are stored), and
// flushed into an InfluxDB-style time-series store — an LSM memtable of
// time-ordered points plus sorted runs.
//
// The database write path (point encoding, memtable insertion in time
// order, periodic sorted-run flushes) makes it the slowest of the CPU
// baselines per core, which matches its position in Fig. 7a.
package intcollector

import (
	"sort"

	"dta/internal/baseline"
	"dta/internal/costmodel"
)

// Point is one stored time-series point.
type Point struct {
	Series uint64 // hashed (flow, switch) series identifier
	Time   uint64
	Value  uint32
}

// Collector is the INTCollector model.
type Collector struct {
	// Threshold is the event-detection delta: a report is stored only if
	// its value differs from the series' last value by at least this.
	Threshold uint32

	last     map[uint64]uint32
	memtable []Point
	memCap   int
	runs     [][]Point
	ctr      costmodel.Counters
	// Stored counts points that passed event detection.
	Stored uint64
}

// New creates a collector with the given memtable capacity (points) and
// event threshold.
func New(memCap int, threshold uint32) *Collector {
	if memCap < 1 {
		memCap = 1 << 16
	}
	return &Collector{
		Threshold: threshold,
		last:      make(map[uint64]uint32),
		memtable:  make([]Point, 0, memCap),
		memCap:    memCap,
	}
}

// Name implements baseline.Collector.
func (c *Collector) Name() string { return "INTCollector" }

// Counters implements baseline.Collector.
func (c *Collector) Counters() *costmodel.Counters { return &c.ctr }

// Ingest implements baseline.Collector.
func (c *Collector) Ingest(raw []byte) error {
	// --- I/O: kernel/XDP receive path (heavier than DPDK burst).
	c.ctr.Charge(costmodel.PhaseIO, 350, baseline.MemIO+2)

	// --- Parse: INT header walk + per-hop metadata extraction.
	var r baseline.Report
	if err := r.Decode(raw); err != nil {
		return err
	}
	c.ctr.Charge(costmodel.PhaseParse,
		uint64(8*baseline.CyclesPerField+2*baseline.CyclesPerHash),
		8*baseline.MemPerField)

	series := r.FlowKey64() ^ uint64(r.SwitchID)*0x9e3779b97f4a7c15

	// --- Insert: event detection, then the database write path.
	cycles := uint64(baseline.CyclesPerHash) // series map hash
	words := 2                               // map bucket probe

	prev, seen := c.last[series]
	delta := r.Value - prev
	if int32(delta) < 0 {
		delta = -delta
	}
	if seen && delta < c.Threshold {
		// Suppressed by event detection: only the last-value map updates.
		c.last[series] = r.Value
		words++
		c.ctr.Charge(costmodel.PhaseInsert, cycles+baseline.CyclesPerWord, uint64(words))
		c.ctr.Done(1)
		return nil
	}
	c.last[series] = r.Value
	words += 2

	// Database point write: encode, append to memtable keeping time
	// order (points arrive nearly ordered; the insertion walk is short
	// but the line protocol encoding and WAL are not free).
	p := Point{Series: series, Time: r.TimestampNs, Value: r.Value}
	c.memtable = append(c.memtable, p)
	i := len(c.memtable) - 1
	for i > 0 && c.memtable[i-1].Time > c.memtable[i].Time {
		c.memtable[i-1], c.memtable[i] = c.memtable[i], c.memtable[i-1]
		i--
		cycles += 3 * baseline.CyclesPerWord
		words += 3
	}
	cycles += 2500 // line-protocol encode + WAL + shard routing (InfluxDB path)
	words += 8     // WAL entry + point columns
	c.Stored++

	if len(c.memtable) >= c.memCap {
		c.flush()
		// Amortised flush cost: sorting and writing the run.
		cycles += uint64(c.memCap) / 8
		words += c.memCap / 16
	}
	c.ctr.Charge(costmodel.PhaseInsert, cycles, uint64(words))
	c.ctr.ChargeDRAM(costmodel.PhaseInsert, 5)
	c.ctr.Done(1)
	return nil
}

// flush moves the memtable into a sorted immutable run.
func (c *Collector) flush() {
	run := make([]Point, len(c.memtable))
	copy(run, c.memtable)
	sort.Slice(run, func(i, j int) bool { return run[i].Time < run[j].Time })
	c.runs = append(c.runs, run)
	c.memtable = c.memtable[:0]
}

// QueryRange returns all stored points for a series within [t0, t1],
// merging the memtable and runs.
func (c *Collector) QueryRange(series uint64, t0, t1 uint64) []Point {
	var out []Point
	scan := func(pts []Point) {
		lo := sort.Search(len(pts), func(i int) bool { return pts[i].Time >= t0 })
		for _, p := range pts[lo:] {
			if p.Time > t1 {
				break
			}
			if p.Series == series {
				out = append(out, p)
			}
		}
	}
	for _, run := range c.runs {
		scan(run)
	}
	scan(c.memtable)
	return out
}
