package baseline

import (
	"testing"
	"testing/quick"
)

func TestReportRoundTrip(t *testing.T) {
	in := Report{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 123, DstPort: 443, Proto: 6,
		SwitchID: 99, Value: 12345, TimestampNs: 1 << 40,
	}
	var buf [ReportSize]byte
	in.Encode(buf[:])
	var out Report
	if err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestDecodeShort(t *testing.T) {
	var r Report
	if err := r.Decode(make([]byte, ReportSize-1)); err != ErrShortReport {
		t.Errorf("err = %v", err)
	}
}

func TestFlowKey64StableAndDiscriminating(t *testing.T) {
	a := Report{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2}, SrcPort: 1, DstPort: 2, Proto: 6}
	b := a
	if a.FlowKey64() != b.FlowKey64() {
		t.Error("not deterministic")
	}
	b.SrcPort = 3
	if a.FlowKey64() == b.FlowKey64() {
		t.Error("port change did not alter key")
	}
	// Value/timestamp changes must NOT alter the flow key.
	c := a
	c.Value, c.TimestampNs = 999, 999
	if a.FlowKey64() != c.FlowKey64() {
		t.Error("non-key field altered flow key")
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, proto uint8, sw, val uint32, ts uint64) bool {
		in := Report{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp,
			Proto: proto, SwitchID: sw, Value: val, TimestampNs: ts}
		var buf [ReportSize]byte
		in.Encode(buf[:])
		var out Report
		return out.Decode(buf[:]) == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
