package crc

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// allParams is every polynomial this package configures: the eight-member
// slot-hash pool plus the two reserved checksum polynomials (D, K32K).
func allParams() []Params {
	out := make([]Params, 0, len(polyPool)+2)
	out = append(out, polyPool...)
	return append(out, D, K32K)
}

// TestSlicingMatchesBytewise differentially checks the slicing-by-8 fast
// path against the byte-at-a-time reference for all 10 pool/reserved
// polynomials on random inputs of every length 0–64 (crossing the 8-byte
// slicing boundary at every alignment), plus a long buffer.
func TestSlicingMatchesBytewise(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	for _, p := range allParams() {
		e := New(p)
		for ln := 0; ln <= 64; ln++ {
			for trial := 0; trial < 8; trial++ {
				buf := make([]byte, ln)
				rnd.Read(buf)
				if got, want := e.Sum(buf), e.sumBytewise(buf); got != want {
					t.Fatalf("%s: Sum(len=%d) = %#x, bytewise = %#x", p.Name, ln, got, want)
				}
			}
		}
		long := make([]byte, 4096+5)
		rnd.Read(long)
		if got, want := e.Sum(long), e.sumBytewise(long); got != want {
			t.Fatalf("%s: Sum(len=%d) = %#x, bytewise = %#x", p.Name, len(long), got, want)
		}
	}
}

// FuzzSlicingMatchesBytewise lets the fuzzer search for inputs where the
// slicing-by-8 path and the byte-wise engine disagree, across every
// configured polynomial.
func FuzzSlicingMatchesBytewise(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("123456789"))
	f.Add(make([]byte, 7))
	f.Add(make([]byte, 8))
	f.Add(make([]byte, 9))
	f.Add(make([]byte, 64))
	engines := make([]*Engine, 0, 10)
	for _, p := range allParams() {
		engines = append(engines, New(p))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		for _, e := range engines {
			if got, want := e.Sum(data), e.sumBytewise(data); got != want {
				t.Fatalf("%s: Sum(len=%d) = %#x, bytewise = %#x", e.Name(), len(data), got, want)
			}
		}
	})
}

func TestSum128MatchesSum(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, p := range allParams() {
		e := New(p)
		for trial := 0; trial < 64; trial++ {
			var key [16]byte
			rnd.Read(key[:])
			if got, want := e.Sum128(&key), e.Sum(key[:]); got != want {
				t.Fatalf("%s: Sum128 = %#x, Sum = %#x", p.Name, got, want)
			}
		}
	}
}

func TestSum64MatchesBytewiseAllPolys(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	for _, p := range allParams() {
		e := New(p)
		for trial := 0; trial < 64; trial++ {
			v := rnd.Uint64()
			var buf [8]byte
			binary.BigEndian.PutUint64(buf[:], v)
			if got, want := e.Sum64(v), e.sumBytewise(buf[:]); got != want {
				t.Fatalf("%s: Sum64(%#x) = %#x, bytewise = %#x", p.Name, v, got, want)
			}
		}
	}
}
