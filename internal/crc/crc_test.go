package crc

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIEEEMatchesStdlib(t *testing.T) {
	e := New(IEEE)
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("123456789"),
		[]byte("The quick brown fox jumps over the lazy dog"),
		make([]byte, 1024),
	}
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(cases[4])
	for _, c := range cases {
		if got, want := e.Sum(c), crc32.ChecksumIEEE(c); got != want {
			t.Errorf("IEEE(%q) = %#x, want %#x", c, got, want)
		}
	}
}

func TestCastagnoliMatchesStdlib(t *testing.T) {
	e := New(Castagnoli)
	tab := crc32.MakeTable(crc32.Castagnoli)
	buf := make([]byte, 333)
	rnd := rand.New(rand.NewSource(2))
	rnd.Read(buf)
	for i := 0; i <= len(buf); i += 37 {
		if got, want := e.Sum(buf[:i]), crc32.Checksum(buf[:i], tab); got != want {
			t.Fatalf("Castagnoli(len=%d) = %#x, want %#x", i, got, want)
		}
	}
}

func TestKnownCheckValues(t *testing.T) {
	// "Check" values from the reveng CRC catalogue (input "123456789").
	in := []byte("123456789")
	checks := []struct {
		p    Params
		want uint32
	}{
		{IEEE, 0xcbf43926},
		{Castagnoli, 0xe3069283},
	}
	for _, c := range checks {
		if got := New(c.p).Sum(in); got != c.want {
			t.Errorf("%s check = %#x, want %#x", c.p.Name, got, c.want)
		}
	}
}

func TestSum64MatchesSumOfEncoding(t *testing.T) {
	f := func(v uint64) bool {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], v)
		e := New(Castagnoli)
		return e.Sum64(v) == e.Sum(buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSum64PairMatchesConcatenation(t *testing.T) {
	f := func(a, b uint64) bool {
		var buf [16]byte
		binary.BigEndian.PutUint64(buf[:8], a)
		binary.BigEndian.PutUint64(buf[8:], b)
		e := New(Koopman)
		return e.Sum64Pair(a, b) == e.Sum(buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFamilySizeValidation(t *testing.T) {
	for _, n := range []int{0, -1, 9, 100} {
		if _, err := NewFamily(n); err == nil {
			t.Errorf("NewFamily(%d) succeeded, want error", n)
		}
	}
	for n := 1; n <= 8; n++ {
		f, err := NewFamily(n)
		if err != nil {
			t.Fatalf("NewFamily(%d): %v", n, err)
		}
		if f.Size() != n {
			t.Errorf("Size = %d, want %d", f.Size(), n)
		}
	}
}

func TestFamilyMembersDisagree(t *testing.T) {
	// Independent hash functions must not be identical: across many keys
	// every pair of family members should disagree on most inputs.
	f := MustFamily(8)
	const keys = 1000
	for i := 0; i < f.Size(); i++ {
		for j := i + 1; j < f.Size(); j++ {
			same := 0
			for k := uint64(0); k < keys; k++ {
				if f.Hash64(i, k) == f.Hash64(j, k) {
					same++
				}
			}
			if same > keys/100 {
				t.Errorf("members %d and %d agree on %d/%d keys", i, j, same, keys)
			}
		}
	}
}

func TestFamilyMembersNotAffinelyRelated(t *testing.T) {
	// CRC is linear: two engines with the same polynomial differ only by
	// a constant, i.e. h_i(k) XOR h_j(k) is the same for every k — which
	// would destroy redundancy. Verify the XOR difference varies.
	f := MustFamily(8)
	reserved := []*Engine{New(D), New(K32K)}
	all := make([]*Engine, 0, 10)
	for i := 0; i < f.Size(); i++ {
		all = append(all, f.engines[i])
	}
	all = append(all, reserved...)
	for i := range all {
		for j := i + 1; j < len(all); j++ {
			diff0 := all[i].Sum64(0) ^ all[j].Sum64(0)
			constant := true
			for k := uint64(1); k < 64; k++ {
				if all[i].Sum64(k)^all[j].Sum64(k) != diff0 {
					constant = false
					break
				}
			}
			if constant {
				t.Errorf("engines %s and %s are affinely related", all[i].Name(), all[j].Name())
			}
		}
	}
}

func TestFamilyUniformity(t *testing.T) {
	// Bucketing sequential keys into 16 buckets by each hash should be
	// roughly uniform (chi-squared well under a generous threshold).
	f := MustFamily(4)
	const keys, buckets = 16000, 16
	for i := 0; i < f.Size(); i++ {
		var counts [buckets]int
		for k := uint64(0); k < keys; k++ {
			counts[f.Hash64(i, k)%buckets]++
		}
		exp := float64(keys) / buckets
		chi := 0.0
		for _, c := range counts {
			d := float64(c) - exp
			chi += d * d / exp
		}
		// 15 dof; p=0.001 critical value is ~37.7. Allow slack.
		if chi > 60 {
			t.Errorf("hash %d chi-squared = %.1f over %d buckets", i, chi, buckets)
		}
	}
}

func TestMustFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFamily(0) did not panic")
		}
	}()
	MustFamily(0)
}

func BenchmarkSum64(b *testing.B) {
	e := New(Castagnoli)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += e.Sum64(uint64(i))
	}
	_ = sink
}

func BenchmarkSum16B(b *testing.B) {
	e := New(IEEE)
	buf := make([]byte, 16)
	b.SetBytes(16)
	var sink uint32
	for i := 0; i < b.N; i++ {
		buf[0] = byte(i)
		sink += e.Sum(buf)
	}
	_ = sink
}
