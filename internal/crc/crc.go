// Package crc implements a software model of the CRC engine found in
// programmable switch ASICs such as Intel Tofino.
//
// The Tofino data plane exposes a small number of hardware CRC units whose
// polynomial is configurable per table. DTA (§5.2) derives several
// independent hash functions from the same engine by carefully selecting
// distinct CRC polynomials: one family indexes the N redundant Key-Write
// slots, another computes the 4-byte key checksum, and per-hop Postcarding
// checksums use further custom polynomials.
//
// This package provides a table-driven, reflected CRC-32 parameterised by
// polynomial, initial value and final XOR, plus Family, which bundles
// several engines with distinct polynomials into an indexable set of
// independent hash functions over byte strings.
package crc

import "fmt"

// Params describes a CRC-32 variant in the reflected (LSB-first) form used
// by essentially all switch CRC engines.
type Params struct {
	// Poly is the reversed (reflected) polynomial representation.
	Poly uint32
	// Init is the initial shift-register value.
	Init uint32
	// XorOut is XORed onto the register after the final byte.
	XorOut uint32
	// Name identifies the variant in diagnostics.
	Name string
}

// Well-known reflected CRC-32 polynomials. CRC is linear over GF(2), so
// two engines share their collision structure exactly when they share a
// polynomial — init/xorout only shift the output by a constant. Distinct
// polynomials therefore yield hash functions with independent collision
// behaviour on network-style keys, which is the property DTA relies on
// for its N-location redundancy and for keeping key checksums independent
// of slot placement.
var (
	// IEEE is the ubiquitous CRC-32 (Ethernet FCS, gzip).
	IEEE = Params{Poly: 0xedb88320, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/IEEE"}
	// Castagnoli (CRC-32C) is used by iSCSI and ext4.
	Castagnoli = Params{Poly: 0x82f63b78, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32C"}
	// Koopman is P. Koopman's polynomial optimised for embedded networks.
	Koopman = Params{Poly: 0xeb31d82e, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32K"}
	// Koopman2 is Koopman's 2006 polynomial (CRC-32K/2).
	Koopman2 = Params{Poly: 0x992c1a4c, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32K2"}
	// Q is the aviation CRC-32Q polynomial (reflected form).
	Q = Params{Poly: 0xd5828281, Init: 0, XorOut: 0, Name: "CRC-32Q"}
	// AUTOSAR is the CRC-32/AUTOSAR polynomial 0xf4acfb13 (reflected).
	AUTOSAR = Params{Poly: 0xc8df352f, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/AUTOSAR"}
	// CDROMEDC is the CD-ROM EDC polynomial 0x8001801b (reflected).
	CDROMEDC = Params{Poly: 0xd8018001, Init: 0, XorOut: 0, Name: "CRC-32/CD-ROM-EDC"}
	// XFER is the XFER polynomial 0x000000af (reflected).
	XFER = Params{Poly: 0xf5000000, Init: 0, XorOut: 0, Name: "CRC-32/XFER"}

	// D is CRC-32D (poly 0xa833982b reflected). It is reserved for key
	// checksums and deliberately excluded from the slot-hash family: a
	// checksum sharing a polynomial with a slot hash would collide with
	// certainty whenever the slot does, silently voiding DTA's
	// wrong-output guarantees.
	D = Params{Poly: 0xa833982b, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32D"}
	// K32K is Koopman's 0xba0dc66b polynomial, reserved for value
	// encodings (Postcarding's g) for the same reason as D.
	K32K = Params{Poly: 0xba0dc66b, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/K32K"}
)

// polyPool is the ordered pool Family draws from: eight pairwise-distinct
// polynomials covering DTA's maximum redundancy (N ≤ 8). The reserved
// checksum polynomials D and K32K are intentionally absent.
var polyPool = []Params{IEEE, Castagnoli, Koopman, Koopman2, Q, AUTOSAR, CDROMEDC, XFER}

// Engine is a single configured CRC unit. The register update is
// implemented with slicing-by-8: tables[0] is the classic byte-at-a-time
// table and tables[k] advances a byte through k further zero bytes, so
// eight input bytes fold into the register with eight independent table
// reads instead of eight serial ones. Telemetry keys are 8 or 16 bytes,
// so the slot-hash path runs entirely inside the unrolled fast path.
type Engine struct {
	tables [8][256]uint32
	init   uint32
	xorOut uint32
	name   string
}

// New builds an Engine for the given parameters.
func New(p Params) *Engine {
	e := &Engine{init: p.Init, xorOut: p.XorOut, name: p.Name}
	for i := range e.tables[0] {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ p.Poly
			} else {
				c >>= 1
			}
		}
		e.tables[0][i] = c
	}
	// tables[k][i] = CRC register after byte i followed by k zero bytes.
	for k := 1; k < 8; k++ {
		for i := range e.tables[k] {
			c := e.tables[k-1][i]
			e.tables[k][i] = e.tables[0][byte(c)] ^ (c >> 8)
		}
	}
	return e
}

// Name reports the configured variant name.
func (e *Engine) Name() string { return e.name }

// slice8 folds eight stream-order bytes into the register.
func (e *Engine) slice8(c uint32, b0, b1, b2, b3, b4, b5, b6, b7 byte) uint32 {
	c ^= uint32(b0) | uint32(b1)<<8 | uint32(b2)<<16 | uint32(b3)<<24
	return e.tables[7][byte(c)] ^ e.tables[6][byte(c>>8)] ^
		e.tables[5][byte(c>>16)] ^ e.tables[4][byte(c>>24)] ^
		e.tables[3][b4] ^ e.tables[2][b5] ^ e.tables[1][b6] ^ e.tables[0][b7]
}

// Sum computes the CRC of data.
func (e *Engine) Sum(data []byte) uint32 {
	c := e.init
	for len(data) >= 8 {
		c = e.slice8(c, data[0], data[1], data[2], data[3], data[4], data[5], data[6], data[7])
		data = data[8:]
	}
	for _, b := range data {
		c = e.tables[0][byte(c)^b] ^ (c >> 8)
	}
	return c ^ e.xorOut
}

// sumBytewise is the reference byte-at-a-time implementation. It is kept
// (unexported) so differential tests can pin the slicing-by-8 path to it.
func (e *Engine) sumBytewise(data []byte) uint32 {
	c := e.init
	for _, b := range data {
		c = e.tables[0][byte(c)^b] ^ (c >> 8)
	}
	return c ^ e.xorOut
}

// fold64 folds the 8-byte big-endian encoding of v into the register.
func (e *Engine) fold64(c uint32, v uint64) uint32 {
	return e.slice8(c,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// Sum64 computes the CRC of an 8-byte big-endian encoding of v without
// allocating. Switch pipelines hash fixed-width header fields; this is the
// fast path for numeric flow keys.
func (e *Engine) Sum64(v uint64) uint32 {
	return e.fold64(e.init, v) ^ e.xorOut
}

// Sum64Pair hashes two 8-byte values (e.g. a key and a sub-index) as their
// concatenated big-endian encoding.
func (e *Engine) Sum64Pair(a, b uint64) uint32 {
	return e.fold64(e.fold64(e.init, a), b) ^ e.xorOut
}

// Sum128 hashes a 16-byte key (the wire.Key width) in two unrolled
// rounds, equivalent to Sum over the same bytes.
func (e *Engine) Sum128(key *[16]byte) uint32 {
	c := e.slice8(e.init, key[0], key[1], key[2], key[3], key[4], key[5], key[6], key[7])
	c = e.slice8(c, key[8], key[9], key[10], key[11], key[12], key[13], key[14], key[15])
	return c ^ e.xorOut
}

// Family is an indexed set of independent hash functions realised as CRC
// engines with distinct polynomials, mirroring how the translator derives
// its N slot-index hashes and its checksum hash from one hardware engine.
type Family struct {
	engines []*Engine
}

// NewFamily returns a family of n independent hash functions.
// n must be between 1 and the size of the polynomial pool (8).
func NewFamily(n int) (*Family, error) {
	if n < 1 || n > len(polyPool) {
		return nil, fmt.Errorf("crc: family size %d out of range [1,%d]", n, len(polyPool))
	}
	f := &Family{engines: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		f.engines[i] = New(polyPool[i])
	}
	return f, nil
}

// MustFamily is NewFamily for static configuration; it panics on a bad n.
func MustFamily(n int) *Family {
	f, err := NewFamily(n)
	if err != nil {
		panic(err)
	}
	return f
}

// Size reports the number of hash functions in the family.
func (f *Family) Size() int { return len(f.engines) }

// Hash applies the i'th function to data.
func (f *Family) Hash(i int, data []byte) uint32 { return f.engines[i].Sum(data) }

// Hash16 applies the i'th function to a fixed 16-byte key (the DTA
// telemetry key width) through the fully unrolled fast path.
func (f *Family) Hash16(i int, key *[16]byte) uint32 { return f.engines[i].Sum128(key) }

// Hash64 applies the i'th function to a fixed 64-bit key.
func (f *Family) Hash64(i int, key uint64) uint32 { return f.engines[i].Sum64(key) }

// Hash64Pair applies the i'th function to a (key, sub) pair.
func (f *Family) Hash64Pair(i int, key, sub uint64) uint32 {
	return f.engines[i].Sum64Pair(key, sub)
}
