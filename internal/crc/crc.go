// Package crc implements a software model of the CRC engine found in
// programmable switch ASICs such as Intel Tofino.
//
// The Tofino data plane exposes a small number of hardware CRC units whose
// polynomial is configurable per table. DTA (§5.2) derives several
// independent hash functions from the same engine by carefully selecting
// distinct CRC polynomials: one family indexes the N redundant Key-Write
// slots, another computes the 4-byte key checksum, and per-hop Postcarding
// checksums use further custom polynomials.
//
// This package provides a table-driven, reflected CRC-32 parameterised by
// polynomial, initial value and final XOR, plus Family, which bundles
// several engines with distinct polynomials into an indexable set of
// independent hash functions over byte strings.
package crc

import "fmt"

// Params describes a CRC-32 variant in the reflected (LSB-first) form used
// by essentially all switch CRC engines.
type Params struct {
	// Poly is the reversed (reflected) polynomial representation.
	Poly uint32
	// Init is the initial shift-register value.
	Init uint32
	// XorOut is XORed onto the register after the final byte.
	XorOut uint32
	// Name identifies the variant in diagnostics.
	Name string
}

// Well-known reflected CRC-32 polynomials. CRC is linear over GF(2), so
// two engines share their collision structure exactly when they share a
// polynomial — init/xorout only shift the output by a constant. Distinct
// polynomials therefore yield hash functions with independent collision
// behaviour on network-style keys, which is the property DTA relies on
// for its N-location redundancy and for keeping key checksums independent
// of slot placement.
var (
	// IEEE is the ubiquitous CRC-32 (Ethernet FCS, gzip).
	IEEE = Params{Poly: 0xedb88320, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/IEEE"}
	// Castagnoli (CRC-32C) is used by iSCSI and ext4.
	Castagnoli = Params{Poly: 0x82f63b78, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32C"}
	// Koopman is P. Koopman's polynomial optimised for embedded networks.
	Koopman = Params{Poly: 0xeb31d82e, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32K"}
	// Koopman2 is Koopman's 2006 polynomial (CRC-32K/2).
	Koopman2 = Params{Poly: 0x992c1a4c, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32K2"}
	// Q is the aviation CRC-32Q polynomial (reflected form).
	Q = Params{Poly: 0xd5828281, Init: 0, XorOut: 0, Name: "CRC-32Q"}
	// AUTOSAR is the CRC-32/AUTOSAR polynomial 0xf4acfb13 (reflected).
	AUTOSAR = Params{Poly: 0xc8df352f, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/AUTOSAR"}
	// CDROMEDC is the CD-ROM EDC polynomial 0x8001801b (reflected).
	CDROMEDC = Params{Poly: 0xd8018001, Init: 0, XorOut: 0, Name: "CRC-32/CD-ROM-EDC"}
	// XFER is the XFER polynomial 0x000000af (reflected).
	XFER = Params{Poly: 0xf5000000, Init: 0, XorOut: 0, Name: "CRC-32/XFER"}

	// D is CRC-32D (poly 0xa833982b reflected). It is reserved for key
	// checksums and deliberately excluded from the slot-hash family: a
	// checksum sharing a polynomial with a slot hash would collide with
	// certainty whenever the slot does, silently voiding DTA's
	// wrong-output guarantees.
	D = Params{Poly: 0xa833982b, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32D"}
	// K32K is Koopman's 0xba0dc66b polynomial, reserved for value
	// encodings (Postcarding's g) for the same reason as D.
	K32K = Params{Poly: 0xba0dc66b, Init: 0xffffffff, XorOut: 0xffffffff, Name: "CRC-32/K32K"}
)

// polyPool is the ordered pool Family draws from: eight pairwise-distinct
// polynomials covering DTA's maximum redundancy (N ≤ 8). The reserved
// checksum polynomials D and K32K are intentionally absent.
var polyPool = []Params{IEEE, Castagnoli, Koopman, Koopman2, Q, AUTOSAR, CDROMEDC, XFER}

// Engine is a single configured CRC unit.
type Engine struct {
	table  [256]uint32
	init   uint32
	xorOut uint32
	name   string
}

// New builds an Engine for the given parameters.
func New(p Params) *Engine {
	e := &Engine{init: p.Init, xorOut: p.XorOut, name: p.Name}
	for i := range e.table {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ p.Poly
			} else {
				c >>= 1
			}
		}
		e.table[i] = c
	}
	return e
}

// Name reports the configured variant name.
func (e *Engine) Name() string { return e.name }

// Sum computes the CRC of data.
func (e *Engine) Sum(data []byte) uint32 {
	c := e.init
	for _, b := range data {
		c = e.table[byte(c)^b] ^ (c >> 8)
	}
	return c ^ e.xorOut
}

// Sum64 computes the CRC of an 8-byte big-endian encoding of v without
// allocating. Switch pipelines hash fixed-width header fields; this is the
// fast path for numeric flow keys.
func (e *Engine) Sum64(v uint64) uint32 {
	c := e.init
	for shift := 56; shift >= 0; shift -= 8 {
		b := byte(v >> uint(shift))
		c = e.table[byte(c)^b] ^ (c >> 8)
	}
	return c ^ e.xorOut
}

// Sum64Pair hashes two 8-byte values (e.g. a key and a sub-index) as their
// concatenated big-endian encoding.
func (e *Engine) Sum64Pair(a, b uint64) uint32 {
	c := e.init
	for shift := 56; shift >= 0; shift -= 8 {
		x := byte(a >> uint(shift))
		c = e.table[byte(c)^x] ^ (c >> 8)
	}
	for shift := 56; shift >= 0; shift -= 8 {
		x := byte(b >> uint(shift))
		c = e.table[byte(c)^x] ^ (c >> 8)
	}
	return c ^ e.xorOut
}

// Family is an indexed set of independent hash functions realised as CRC
// engines with distinct polynomials, mirroring how the translator derives
// its N slot-index hashes and its checksum hash from one hardware engine.
type Family struct {
	engines []*Engine
}

// NewFamily returns a family of n independent hash functions.
// n must be between 1 and the size of the polynomial pool (8).
func NewFamily(n int) (*Family, error) {
	if n < 1 || n > len(polyPool) {
		return nil, fmt.Errorf("crc: family size %d out of range [1,%d]", n, len(polyPool))
	}
	f := &Family{engines: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		f.engines[i] = New(polyPool[i])
	}
	return f, nil
}

// MustFamily is NewFamily for static configuration; it panics on a bad n.
func MustFamily(n int) *Family {
	f, err := NewFamily(n)
	if err != nil {
		panic(err)
	}
	return f
}

// Size reports the number of hash functions in the family.
func (f *Family) Size() int { return len(f.engines) }

// Hash applies the i'th function to data.
func (f *Family) Hash(i int, data []byte) uint32 { return f.engines[i].Sum(data) }

// Hash64 applies the i'th function to a fixed 64-bit key.
func (f *Family) Hash64(i int, key uint64) uint32 { return f.engines[i].Sum64(key) }

// Hash64Pair applies the i'th function to a (key, sub) pair.
func (f *Family) Hash64Pair(i int, key, sub uint64) uint32 {
	return f.engines[i].Sum64Pair(key, sub)
}
