// Package reporter implements the DTA reporter: the data-plane logic a
// telemetry-generating switch adds to export reports through DTA (§5.1).
//
// A reporter does almost nothing — that is the point. It encapsulates the
// monitoring system's telemetry payload in UDP plus the two DTA headers
// and forwards it to the collector's translator; all RDMA complexity
// stays at the translator, which is why Fig. 9 shows DTA's reporter
// footprint matching plain UDP and halving an RDMA-generating design.
package reporter

import (
	"fmt"

	"dta/internal/asic"
	"dta/internal/wire"
)

// Config addresses a reporter.
type Config struct {
	// SwitchID identifies this reporter.
	SwitchID uint32
	// SrcMAC/SrcIP stamp outgoing frames.
	SrcMAC [6]byte
	SrcIP  [4]byte
	// CollectorMAC/IP address the translator's collector.
	CollectorMAC [6]byte
	CollectorIP  [4]byte
	// SrcPort is the UDP source port (entropy for ECMP).
	SrcPort uint16
}

// Reporter crafts DTA frames in place.
type Reporter struct {
	cfg   Config
	frame wire.Frame
	ipID  uint16
	// Sent counts emitted reports.
	Sent uint64
}

// New builds a reporter.
func New(cfg Config) *Reporter {
	return &Reporter{
		cfg: cfg,
		frame: wire.Frame{
			SrcMAC:  cfg.SrcMAC,
			DstMAC:  cfg.CollectorMAC,
			SrcIP:   cfg.SrcIP,
			DstIP:   cfg.CollectorIP,
			SrcPort: cfg.SrcPort,
		},
	}
}

// Encapsulate serialises one DTA report into buf as a full
// Ethernet/IPv4/UDP frame and returns its length. buf must hold
// wire.MaxReportLen bytes.
func (r *Reporter) Encapsulate(buf []byte, rep *wire.Report) (int, error) {
	r.ipID++
	r.frame.IPID = r.ipID
	n, err := wire.SerializeFrame(buf, &r.frame, rep)
	if err != nil {
		return 0, fmt.Errorf("reporter %d: %w", r.cfg.SwitchID, err)
	}
	r.Sent++
	return n, nil
}

// KeyWrite crafts a Key-Write report frame.
func (r *Reporter) KeyWrite(buf []byte, key wire.Key, data []byte, redundancy uint8, immediate bool) (int, error) {
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite, Flags: flags(immediate)},
		KeyWrite: wire.KeyWrite{Redundancy: redundancy, Key: key},
		Data:     data,
	}
	return r.Encapsulate(buf, &rep)
}

// Append crafts an Append report frame.
func (r *Reporter) Append(buf []byte, listID uint32, data []byte, immediate bool) (int, error) {
	rep := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend, Flags: flags(immediate)},
		Append: wire.Append{ListID: listID},
		Data:   data,
	}
	return r.Encapsulate(buf, &rep)
}

// KeyIncrement crafts a Key-Increment report frame.
func (r *Reporter) KeyIncrement(buf []byte, key wire.Key, delta uint64, redundancy uint8) (int, error) {
	rep := wire.Report{
		Header:       wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
		KeyIncrement: wire.KeyIncrement{Redundancy: redundancy, Key: key, Delta: delta},
	}
	return r.Encapsulate(buf, &rep)
}

// Postcard crafts a Postcarding report frame carrying this reporter's
// switch ID as the hop value (path tracing).
func (r *Reporter) Postcard(buf []byte, key wire.Key, hop, pathLen uint8) (int, error) {
	return r.PostcardValue(buf, key, hop, pathLen, r.cfg.SwitchID)
}

// PostcardValue crafts a Postcarding report frame carrying an arbitrary
// hop value (e.g. per-hop queueing latency for path measurements).
func (r *Reporter) PostcardValue(buf []byte, key wire.Key, hop, pathLen uint8, value uint32) (int, error) {
	rep := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
		Postcard: wire.Postcard{
			Key: key, Hop: hop, PathLen: pathLen, Value: value,
		},
	}
	return r.Encapsulate(buf, &rep)
}

func flags(immediate bool) uint8 {
	if immediate {
		return wire.FlagImmediate
	}
	return 0
}

// Footprint returns the reporter's switch resource usage with the given
// export mechanism (Fig. 9): total including the monitoring logic, and
// the report-generation delta alone.
func Footprint(m asic.ExportMechanism) (total, exportOnly asic.Footprint) {
	return asic.ReporterFootprint(m)
}
