package reporter

import (
	"testing"

	"dta/internal/asic"
	"dta/internal/wire"
)

func newReporter() *Reporter {
	return New(Config{
		SwitchID:    42,
		SrcIP:       [4]byte{10, 0, 0, 42},
		CollectorIP: [4]byte{10, 9, 0, 1},
		SrcPort:     5042,
	})
}

func TestKeyWriteFrame(t *testing.T) {
	r := newReporter()
	buf := make([]byte, wire.MaxReportLen)
	n, err := r.KeyWrite(buf, wire.KeyFromUint64(7), []byte{1, 2, 3, 4}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	var p wire.ParsedFrame
	if err := wire.DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if !p.IsDTA || p.Report.Header.Primitive != wire.PrimKeyWrite {
		t.Fatalf("frame: %+v", p.Report.Header)
	}
	if p.Report.Header.Flags&wire.FlagImmediate == 0 {
		t.Error("immediate flag missing")
	}
	if p.IP.Src != [4]byte{10, 0, 0, 42} || p.IP.Dst != [4]byte{10, 9, 0, 1} {
		t.Errorf("addressing: %+v", p.IP)
	}
	if p.Report.KeyWrite.Redundancy != 2 {
		t.Error("redundancy lost")
	}
}

func TestPostcardCarriesSwitchID(t *testing.T) {
	r := newReporter()
	buf := make([]byte, wire.MaxReportLen)
	n, err := r.Postcard(buf, wire.KeyFromUint64(1), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var p wire.ParsedFrame
	if err := wire.DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if p.Report.Postcard.Value != 42 {
		t.Errorf("postcard value = %d, want switch ID 42", p.Report.Postcard.Value)
	}
	if p.Report.Postcard.Hop != 2 || p.Report.Postcard.PathLen != 5 {
		t.Errorf("postcard: %+v", p.Report.Postcard)
	}
}

func TestAppendAndIncrementFrames(t *testing.T) {
	r := newReporter()
	buf := make([]byte, wire.MaxReportLen)
	n, err := r.Append(buf, 9, []byte{5, 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	var p wire.ParsedFrame
	if err := wire.DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if p.Report.Append.ListID != 9 || len(p.Report.Data) != 2 {
		t.Errorf("append: %+v", p.Report.Append)
	}

	n, err = r.KeyIncrement(buf, wire.KeyFromUint64(3), 77, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if p.Report.KeyIncrement.Delta != 77 || p.Report.KeyIncrement.Redundancy != 2 {
		t.Errorf("increment: %+v", p.Report.KeyIncrement)
	}
	if r.Sent != 2 {
		t.Errorf("sent = %d, want 2", r.Sent)
	}
}

func TestIPIDIncrements(t *testing.T) {
	r := newReporter()
	buf := make([]byte, wire.MaxReportLen)
	var ids []uint16
	for i := 0; i < 3; i++ {
		n, _ := r.Append(buf, 0, []byte{1}, false)
		var p wire.ParsedFrame
		if err := wire.DecodeFrame(buf[:n], &p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.IP.ID)
	}
	if ids[0] == ids[1] || ids[1] == ids[2] {
		t.Errorf("IP IDs not advancing: %v", ids)
	}
}

func TestFootprintDelegation(t *testing.T) {
	total, export := Footprint(asic.ExportDTA)
	for _, res := range asic.Resources() {
		if total.Get(res) <= export.Get(res) {
			t.Errorf("%v: total not above export", res)
		}
	}
}

func BenchmarkEncapsulateKeyWrite(b *testing.B) {
	r := newReporter()
	buf := make([]byte, wire.MaxReportLen)
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.KeyWrite(buf, wire.KeyFromUint64(uint64(i)), data, 2, false); err != nil {
			b.Fatal(err)
		}
	}
}
