package obs

import (
	"math/bits"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("collector", "0"))
	c := sc.Counter("dta_test_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := sc.Gauge("dta_test_level", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Load(); got != 5 {
		t.Fatalf("SetMax lowered gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Load(); got != 9 {
		t.Fatalf("SetMax = %d, want 9", got)
	}
}

func TestNilScopeSafe(t *testing.T) {
	var sc *Scope
	c := sc.Counter("x_total", "")
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("nil-scope counter must still count")
	}
	s := sc.ShardedCounter("y_total", "")
	s.Add(3)
	if s.Load() != 3 {
		t.Fatal("nil-scope sharded counter must still count")
	}
	g := sc.Gauge("z", "")
	g.Set(1)
	sc.CounterFunc("f_total", "", func() uint64 { return 0 })
	sc.GaugeFunc("g", "", func() float64 { return 0 })
	if h := sc.Histogram("h_ns", ""); h != nil {
		t.Fatal("nil-scope histogram must be nil (spans skip the clock)")
	}
	var nilHist *Histogram
	nilHist.Observe(5) // must not panic
	sp := Start(nilHist)
	sp.End()
	if sub := sc.With(L("a", "b")); sub != nil {
		t.Fatal("nil scope With must stay nil")
	}
	var nilReg *Registry
	if nilReg.Scope() != nil {
		t.Fatal("nil registry Scope must be nil")
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	var c ShardedCounter
	const goroutines, per = 16, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Fatalf("sharded counter = %d, want %d", got, goroutines*per)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1023, 1024, 1 << 39} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 4 + 1023 + 1024 + 1<<39)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// v lands in bucket bits.Len64(v).
	checks := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1, 10: 1, 11: 1, HistBuckets - 1: 1}
	for i, want := range checks {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
	// Overflow clamps into the last bucket.
	h.Observe(1 << 62)
	if got := h.buckets[HistBuckets-1].Load(); got != 2 {
		t.Fatalf("overflow bucket = %d, want 2", got)
	}
}

func TestBucketBoundGeometry(t *testing.T) {
	for i := 0; i < HistBuckets; i++ {
		b := BucketBound(i)
		// Everything observed into bucket i must be <= bound(i) and >
		// bound(i-1).
		if i > 0 {
			lo := BucketBound(i-1) + 1
			if bits.Len64(lo) != i {
				t.Fatalf("bucket %d lower edge %d has bit length %d", i, lo, bits.Len64(lo))
			}
		}
		if i < 63 && bits.Len64(b) != i {
			t.Fatalf("bucket %d bound %d has bit length %d", i, b, bits.Len64(b))
		}
	}
}

func TestSampler(t *testing.T) {
	var h Histogram
	s := NewSampler(4) // 1/16
	for i := 0; i < 160; i++ {
		sp := s.Start(&h)
		sp.End()
	}
	if got := h.Count(); got != 10 {
		t.Fatalf("sampled count = %d, want 10", got)
	}
	if s.Weight() != 16 {
		t.Fatalf("weight = %d, want 16", s.Weight())
	}
	// Sampler with nil histogram records nothing and reads no clock.
	s2 := NewSampler(0)
	sp := s2.Start(nil)
	if sp.h != nil {
		t.Fatal("nil-hist sampler span must be inert")
	}
}

func TestRegistryReplaceOnDuplicate(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope()
	c1 := sc.Counter("dup_total", "")
	c1.Add(5)
	c2 := sc.Counter("dup_total", "")
	c2.Add(7)
	snap := r.Snapshot()
	if n := len(snap.Values); n != 1 {
		t.Fatalf("duplicate registration kept %d series, want 1", n)
	}
	if v := snap.Find("dup_total"); v == nil || v.Value != 7 {
		t.Fatalf("latest registration must win, got %+v", snap.Find("dup_total"))
	}
	// Same name under different labels is two series.
	sc2 := r.Scope(L("shard", "1"))
	sc2.Counter("dup_total", "")
	if n := len(r.Snapshot().Values); n != 2 {
		t.Fatalf("distinct label sets collapsed: %d series, want 2", n)
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("collector", "0"))
	sc.Counter("dta_rt_total", "a counter").Add(42)
	sc.With(L("shard", "1")).Counter("dta_rt_total", "a counter").Add(8)
	sc.Gauge("dta_rt_depth", "a gauge").Set(-3)
	sc.GaugeFunc("dta_rt_frac", "fractional", func() float64 { return 0.5 })
	h := sc.Histogram("dta_rt_ns", "a histogram")
	for _, v := range []uint64{3, 100, 5000, 1 << 41} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`# TYPE dta_rt_total counter`,
		`dta_rt_total{collector="0"} 42`,
		`dta_rt_total{collector="0",shard="1"} 8`,
		`dta_rt_depth{collector="0"} -3`,
		`dta_rt_frac{collector="0"} 0.5`,
		`dta_rt_ns_bucket{collector="0",le="+Inf"} 4`,
		`dta_rt_ns_count{collector="0"} 4`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	// One HELP/TYPE block per name even with multiple label sets.
	if n := strings.Count(text, "# TYPE dta_rt_total"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}

	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if v := snap.Find("dta_rt_total", L("shard", "1")); v == nil || v.Value != 8 || v.Kind != KindCounter {
		t.Fatalf("parsed counter = %+v", v)
	}
	if v := snap.Find("dta_rt_depth"); v == nil || v.Value != -3 || v.Kind != KindGauge {
		t.Fatalf("parsed gauge = %+v", v)
	}
	hv := snap.Find("dta_rt_ns")
	if hv == nil || hv.Kind != KindHistogram {
		t.Fatalf("parsed histogram = %+v", hv)
	}
	if hv.Count != 4 || hv.Sum != 3+100+5000+1<<41 {
		t.Fatalf("histogram count/sum = %d/%d", hv.Count, hv.Sum)
	}
	orig := r.Snapshot().Find("dta_rt_ns")
	for i := range orig.Buckets {
		if orig.Buckets[i] != hv.Buckets[i] {
			t.Fatalf("bucket %d: parsed %d, original %d", i, hv.Buckets[i], orig.Buckets[i])
		}
	}
}

func TestSnapshotDeltaRate(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope()
	c := sc.Counter("d_total", "")
	g := sc.Gauge("d_level", "")
	h := sc.Histogram("d_ns", "")
	c.Add(10)
	g.Set(5)
	h.Observe(100)
	prev := r.Snapshot()
	c.Add(30)
	g.Set(2)
	h.Observe(100)
	h.Observe(200)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if v := d.Find("d_total"); v.Value != 30 {
		t.Fatalf("counter delta = %v, want 30", v.Value)
	}
	if v := d.Find("d_level"); v.Value != 2 {
		t.Fatalf("gauge delta must keep current level, got %v", v.Value)
	}
	if v := d.Find("d_ns"); v.Count != 2 || v.Sum != 300 {
		t.Fatalf("histogram delta = count %d sum %d, want 2/300", v.Count, v.Sum)
	}
	rate := d.Rate(2 * time.Second)
	if v := rate.Find("d_total"); v.Value != 15 {
		t.Fatalf("rate = %v, want 15", v.Value)
	}
	// Delta against nil passes through.
	if cur.Delta(nil) != cur {
		t.Fatal("delta vs nil must return the snapshot unchanged")
	}
}

func TestQuantile(t *testing.T) {
	v := Value{Kind: KindHistogram, Buckets: make([]uint64, HistBuckets)}
	// 100 observations in bucket 10 (values 512..1023).
	v.Buckets[10] = 100
	v.Count = 100
	q := v.Quantile(0.5)
	if q < 512 || q > 1023 {
		t.Fatalf("p50 = %v, want within [512,1023]", q)
	}
	if (&Value{Kind: KindHistogram}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

func TestConcurrentSnapshotDuringWrites(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope()
	c := sc.Counter("cc_total", "")
	h := sc.Histogram("cc_ns", "")
	var sh ShardedCounter
	sc.CounterFunc("cc_view_total", "", func() uint64 { return sh.Load() })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					sh.Inc()
					h.Observe(42)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if snap.Find("cc_total") == nil {
			t.Error("series vanished mid-flight")
		}
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("shard", "0"))
	c := sc.Counter("alloc_total", "")
	var shc ShardedCounter
	g := sc.Gauge("alloc_level", "")
	h := sc.Histogram("alloc_ns", "")
	smp := NewSampler(6)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		shc.Add(2)
		g.SetMax(3)
		h.Observe(17)
		sp := smp.Start(h)
		sp.End()
	}); n != 0 {
		t.Fatalf("hot-path primitives allocate %v/op, want 0", n)
	}
}

func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	sc := r.Scope(L("collector", "0"))
	h := sc.Histogram("dta_ex_ns", "histogram with exemplars")
	h.Observe(100)          // bucket 7: no exemplar
	h.ObserveEx(5000, 7)    // bucket 13
	h.ObserveEx(5100, 9)    // bucket 13 again: last trace wins
	h.ObserveEx(1<<20, 11)  // bucket 21
	h.ObserveEx(200, 0)     // zero trace ID: counted, no exemplar

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`# {trace_id="9"} 5100`,
		`# {trace_id="11"} 1048576`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing exemplar %q in:\n%s", want, text)
		}
	}

	snap, err := ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exemplar-bearing exposition failed to parse: %v", err)
	}
	v := snap.Find("dta_ex_ns")
	if v == nil || v.Kind != KindHistogram {
		t.Fatalf("parsed histogram = %+v", v)
	}
	// The exemplar suffix must not perturb the sample itself.
	if v.Count != 5 || v.Sum != 100+5000+5100+1<<20+200 {
		t.Fatalf("histogram count/sum = %d/%d", v.Count, v.Sum)
	}
	orig := r.Snapshot().Find("dta_ex_ns")
	for i := range orig.Buckets {
		if orig.Buckets[i] != v.Buckets[i] {
			t.Fatalf("bucket %d: parsed %d, original %d", i, v.Buckets[i], orig.Buckets[i])
		}
	}
	// Exemplars round-trip with bucket attribution intact.
	if ex := v.ExemplarFor(13); ex == nil || ex.TraceID != 9 || ex.Value != 5100 {
		t.Fatalf("bucket 13 exemplar = %+v, want trace 9 value 5100", ex)
	}
	if ex := v.ExemplarFor(21); ex == nil || ex.TraceID != 11 || ex.Value != 1<<20 {
		t.Fatalf("bucket 21 exemplar = %+v, want trace 11 value 1<<20", ex)
	}
	if ex := v.ExemplarFor(7); ex != nil {
		t.Fatalf("bucket 7 grew an exemplar: %+v", ex)
	}

	// EndExemplar attaches the span's trace ID.
	h2 := sc.Histogram("dta_ex2_ns", "")
	sp := Start(h2)
	sp.EndExemplar(42)
	found := false
	for i := 0; i < HistBuckets; i++ {
		if id, _ := h2.Exemplar(i); id == 42 {
			found = true
		}
	}
	if !found {
		t.Fatal("EndExemplar left no exemplar")
	}
}
