package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Value is one series in a snapshot. Counters and gauges carry Value;
// histograms carry Count, Sum, and the raw (non-cumulative) log2
// Buckets.
type Value struct {
	Name      string
	Labels    []Label
	Kind      Kind
	Value     float64
	Count     uint64
	Sum       uint64
	Buckets   []uint64   // len HistBuckets when Kind==KindHistogram
	Exemplars []Exemplar // bucket exemplars present in the exposition
}

// Exemplar links one histogram bucket back to the last trace that
// landed in it (see Histogram.ObserveEx and /debug/traces).
type Exemplar struct {
	Bucket  int // log2 bucket index
	TraceID uint64
	Value   uint64 // the exemplar's observed value
}

// ExemplarFor returns the exemplar for a bucket index (nil if none).
func (v *Value) ExemplarFor(bucket int) *Exemplar {
	for i := range v.Exemplars {
		if v.Exemplars[i].Bucket == bucket {
			return &v.Exemplars[i]
		}
	}
	return nil
}

// Label returns the value of the named label ("" when absent).
func (v *Value) Label(key string) string {
	for _, l := range v.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Mean returns a histogram's mean observation (0 when empty).
func (v *Value) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return float64(v.Sum) / float64(v.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the log2
// buckets, interpolating linearly inside the winning bucket. Log2
// buckets bound the error to 2x — good enough for "is p99 flush
// latency milliseconds or seconds", which is what the buckets are for.
func (v *Value) Quantile(q float64) float64 {
	if v.Count == 0 || len(v.Buckets) == 0 {
		return 0
	}
	target := q * float64(v.Count)
	var cum uint64
	for i, n := range v.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(BucketBound(i-1)) + 1
			}
			hi := float64(BucketBound(i))
			frac := (target - float64(prev)) / float64(n)
			return lo + frac*(hi-lo)
		}
	}
	return float64(BucketBound(len(v.Buckets) - 1))
}

// Snapshot is a point-in-time copy of every registered series.
type Snapshot struct {
	At     time.Time
	Values []Value
}

// Snapshot captures the registry. It only loads atomics (plus any
// registered read-time funcs), so it can run concurrently with ingest.
func (r *Registry) Snapshot() *Snapshot {
	ms := r.sorted()
	s := &Snapshot{At: time.Now(), Values: make([]Value, 0, len(ms))}
	for _, m := range ms {
		labels, _ := ParseLabels(m.labels)
		v := Value{Name: m.name, Labels: labels, Kind: m.kind}
		if m.kind == KindHistogram {
			v.Count = m.hist.Count()
			v.Sum = m.hist.Sum()
			v.Buckets = make([]uint64, HistBuckets)
			for i := range v.Buckets {
				v.Buckets[i] = m.hist.buckets[i].Load()
			}
		} else {
			v.Value = m.value()
		}
		s.Values = append(s.Values, v)
	}
	return s
}

// Find returns the series with the given name whose labels include
// every given pair (nil when absent).
func (s *Snapshot) Find(name string, labels ...Label) *Value {
	for i := range s.Values {
		v := &s.Values[i]
		if v.Name != name {
			continue
		}
		ok := true
		for _, want := range labels {
			if v.Label(want.Key) != want.Value {
				ok = false
				break
			}
		}
		if ok {
			return v
		}
	}
	return nil
}

// key identifies a series for delta matching.
func (v *Value) key() string {
	parts := make([]string, 0, len(v.Labels))
	for _, l := range v.Labels {
		parts = append(parts, l.Key+"="+l.Value)
	}
	sort.Strings(parts)
	return v.Name + "\x00" + strings.Join(parts, ",")
}

// Delta returns s - prev: counters and histogram counts/sums/buckets
// subtract (clamped at zero across restarts); gauges keep their current
// value (a level has no meaningful difference over an interval). Series
// absent from prev pass through unchanged.
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if prev == nil {
		return s
	}
	idx := make(map[string]*Value, len(prev.Values))
	for i := range prev.Values {
		idx[prev.Values[i].key()] = &prev.Values[i]
	}
	out := &Snapshot{At: s.At, Values: make([]Value, len(s.Values))}
	copy(out.Values, s.Values)
	for i := range out.Values {
		v := &out.Values[i]
		p, ok := idx[v.key()]
		if !ok {
			continue
		}
		switch v.Kind {
		case KindCounter:
			v.Value = math.Max(0, v.Value-p.Value)
		case KindHistogram:
			v.Count = sub(v.Count, p.Count)
			v.Sum = sub(v.Sum, p.Sum)
			buckets := make([]uint64, len(v.Buckets))
			for j := range buckets {
				pb := uint64(0)
				if j < len(p.Buckets) {
					pb = p.Buckets[j]
				}
				buckets[j] = sub(v.Buckets[j], pb)
			}
			v.Buckets = buckets
		}
	}
	return out
}

func sub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// Rate divides a delta snapshot's counters (and histogram counts) by
// the interval, yielding per-second rates. Gauges pass through.
func (s *Snapshot) Rate(d time.Duration) *Snapshot {
	secs := d.Seconds()
	if secs <= 0 {
		return s
	}
	out := &Snapshot{At: s.At, Values: make([]Value, len(s.Values))}
	copy(out.Values, s.Values)
	for i := range out.Values {
		v := &out.Values[i]
		if v.Kind == KindCounter {
			v.Value /= secs
		}
	}
	return out
}

// ParsePrometheus reads Prometheus text exposition (as produced by
// WritePrometheus) back into a Snapshot — the dtastat client side.
// Histogram _bucket/_sum/_count series are reassembled into one
// KindHistogram Value with the cumulative buckets differenced back to
// raw counts and the le label stripped.
func ParsePrometheus(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{At: time.Now()}
	types := map[string]Kind{}
	type histKey struct{ name, labels string }
	type histAccum struct {
		val Value
		cum []uint64 // cumulative bucket counts, in exposition order
		les []string // matching le bounds
	}
	hists := map[histKey]*histAccum{}
	var histOrder []histKey

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter":
					types[fields[2]] = KindCounter
				case "gauge":
					types[fields[2]] = KindGauge
				case "histogram":
					types[fields[2]] = KindHistogram
				}
			}
			continue
		}
		// Split off an OpenMetrics-style exemplar suffix
		// (` # {trace_id="N"} V`) before sample parsing: the exemplar's
		// own '}' would otherwise defeat the label-brace scan.
		exStr := ""
		if i := strings.Index(line, " # "); i >= 0 {
			exStr = strings.TrimSpace(line[i+3:])
			line = strings.TrimSpace(line[:i])
		}
		name, labelStr, valStr, err := splitSample(line)
		if err != nil {
			return nil, err
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad sample value in %q: %w", line, err)
		}
		if base, suffix, isHist := histSeries(name, types); isHist {
			labels, le, err := stripLE(labelStr)
			if err != nil {
				return nil, err
			}
			k := histKey{base, renderLabelPairs(labels)}
			h, ok := hists[k]
			if !ok {
				h = &histAccum{val: Value{Name: base, Labels: labels, Kind: KindHistogram}}
				hists[k] = h
				histOrder = append(histOrder, k)
			}
			switch suffix {
			case "_bucket":
				h.cum = append(h.cum, uint64(val))
				h.les = append(h.les, le)
				if exStr != "" {
					if id, exVal, err := parseExemplar(exStr); err == nil {
						if idx := bucketIndexForLE(le); idx >= 0 && idx < HistBuckets {
							h.val.Exemplars = append(h.val.Exemplars, Exemplar{Bucket: idx, TraceID: id, Value: exVal})
						}
					}
				}
			case "_sum":
				h.val.Sum = uint64(val)
			case "_count":
				h.val.Count = uint64(val)
			}
			continue
		}
		labels, err := ParseLabels(labelStr)
		if err != nil {
			return nil, err
		}
		kind := types[name]
		s.Values = append(s.Values, Value{Name: name, Labels: labels, Kind: kind, Value: val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Difference cumulative buckets back to raw per-bucket counts and
	// re-project onto the fixed log2 geometry.
	for _, k := range histOrder {
		h := hists[k]
		raw := make([]uint64, HistBuckets)
		var prev uint64
		for i, cum := range h.cum {
			n := sub(cum, prev)
			prev = cum
			idx := bucketIndexForLE(h.les[i])
			if idx >= 0 && idx < HistBuckets {
				raw[idx] += n
			}
		}
		h.val.Buckets = raw
		s.Values = append(s.Values, h.val)
	}
	return s, nil
}

// splitSample splits `name{labels} value` / `name value`.
func splitSample(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("obs: malformed sample %q", line)
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:]), nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", "", fmt.Errorf("obs: malformed sample %q", line)
	}
	return fields[0], "", fields[1], nil
}

// parseExemplar parses the exemplar body `{trace_id="N"} V` (the part
// after the ` # ` separator) back into its trace ID and value.
func parseExemplar(s string) (traceID, value uint64, err error) {
	if len(s) == 0 || s[0] != '{' {
		return 0, 0, fmt.Errorf("obs: malformed exemplar %q", s)
	}
	j := strings.IndexByte(s, '}')
	if j < 0 {
		return 0, 0, fmt.Errorf("obs: malformed exemplar %q", s)
	}
	labels, err := ParseLabels(s[1:j])
	if err != nil {
		return 0, 0, err
	}
	for _, l := range labels {
		if l.Key == "trace_id" {
			traceID, err = strconv.ParseUint(l.Value, 10, 64)
			if err != nil {
				return 0, 0, fmt.Errorf("obs: bad exemplar trace_id %q: %w", l.Value, err)
			}
		}
	}
	if traceID == 0 {
		return 0, 0, fmt.Errorf("obs: exemplar missing trace_id in %q", s)
	}
	value, err = strconv.ParseUint(strings.TrimSpace(s[j+1:]), 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("obs: bad exemplar value in %q: %w", s, err)
	}
	return traceID, value, nil
}

// histSeries reports whether name is a _bucket/_sum/_count series of a
// TYPE histogram metric.
func histSeries(name string, types map[string]Kind) (base, suffix string, ok bool) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if types[b] == KindHistogram {
				return b, suf, true
			}
		}
	}
	return "", "", false
}

// stripLE removes the le label from a bucket series' label set.
func stripLE(labelStr string) ([]Label, string, error) {
	labels, err := ParseLabels(labelStr)
	if err != nil {
		return nil, "", err
	}
	le := ""
	out := labels[:0]
	for _, l := range labels {
		if l.Key == "le" {
			le = l.Value
			continue
		}
		out = append(out, l)
	}
	return out, le, nil
}

// bucketIndexForLE maps an le bound back to its log2 bucket index.
func bucketIndexForLE(le string) int {
	if le == "+Inf" {
		return HistBuckets - 1
	}
	bound, err := strconv.ParseUint(le, 10, 64)
	if err != nil {
		return -1
	}
	// BucketBound(i) = 2^i - 1, so bound+1 is a power of two with
	// bit length i+1.
	return len(strconv.FormatUint(bound+1, 2)) - 1
}

// renderLabelPairs renders parsed labels back to the canonical sorted
// string form for keying.
func renderLabelPairs(labels []Label) string { return renderLabels(labels) }
