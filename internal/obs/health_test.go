package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// evalNames collects the failing rule names out of a status.
func failingRules(st HealthStatus) map[string]RuleResult {
	failed := map[string]RuleResult{}
	for _, r := range st.Rules {
		if !r.Healthy {
			failed[r.Name] = r
		}
	}
	return failed
}

// TestHealthRuleTable drives each default rule across its healthy and
// unhealthy side using a real registry, pinning both the verdicts and
// the delta windowing (an incident consumed by one eval does not leak
// into the next window).
func TestHealthRuleTable(t *testing.T) {
	reg := NewRegistry()
	sc := reg.Scope()
	dropped := sc.Counter("dta_engine_dropped_total", "t")
	stalls := sc.Counter("dta_wal_ring_stalls_total", "t")
	degraded := sc.Counter("dta_ha_degraded_writes_total", "t")
	down := sc.Gauge("dta_ha_down_replicas", "t")
	failed := sc.Gauge("dta_wal_failed_errno", "t")
	fsync := sc.Histogram("dta_wal_fsync_ns", "t")

	e := NewHealthEvaluator(reg)

	// Quiescent registry: healthy, and every rule reports a reason.
	st := e.Eval()
	if !st.Healthy {
		t.Fatalf("quiescent registry unhealthy: %+v", st)
	}
	if len(st.Rules) != 6 {
		t.Fatalf("expected 6 default rules, got %d", len(st.Rules))
	}
	for _, r := range st.Rules {
		if r.Reason == "" {
			t.Fatalf("rule %q has no reason", r.Name)
		}
	}

	cases := []struct {
		name string // rule expected to fail
		trip func() // push the registry over that rule's threshold
		heal func() // undo (for gauges; counters heal by windowing)
	}{
		{"drop_rate", func() { dropped.Add(50) }, nil},
		// The stall allowance is 1000/s — a burst of 10M over any
		// plausible eval interval clears it.
		{"wal_ring_stalls", func() { stalls.Add(10_000_000) }, nil},
		{"degraded_writes", func() { degraded.Add(3) }, nil},
		{"down_replicas", func() { down.Set(1) }, func() { down.Set(0) }},
		// 5 = EIO; the rule renders the errno text in its reason.
		{"wal_failed", func() { failed.Set(5) }, func() { failed.Set(0) }},
		{"fsync_p99", func() { fsync.Observe(uint64(2 * time.Second)) }, nil},
	}
	for _, c := range cases {
		c.trip()
		st := e.Eval()
		if st.Healthy {
			t.Fatalf("%s: tripped but verdict healthy", c.name)
		}
		failed := failingRules(st)
		if len(failed) != 1 {
			t.Fatalf("%s: failing rules = %v, want exactly it", c.name, failed)
		}
		if r, ok := failed[c.name]; !ok {
			t.Fatalf("%s: wrong rule failed: %v", c.name, failed)
		} else if r.Reason == "" || r.Threshold < 0 {
			t.Fatalf("%s: malformed result %+v", c.name, r)
		}
		if c.heal != nil {
			c.heal()
		}
		// The next window is clean: counter deltas were consumed by the
		// eval above, gauges were healed explicitly.
		if st := e.Eval(); !st.Healthy {
			t.Fatalf("%s: incident leaked into the next window: %+v", c.name, failingRules(st))
		}
	}
}

// TestHealthThresholds pins that thresholds parameterise the rules: a
// tolerant posture keeps the same incident healthy.
func TestHealthThresholds(t *testing.T) {
	reg := NewRegistry()
	dropped := reg.Scope().Counter("dta_engine_dropped_total", "t")

	tolerant := NewHealthEvaluator(reg, DefaultHealthRules(HealthThresholds{
		MaxDropRate: 1e12, MaxRingStallRate: 1e12, MaxDegradedRate: 1e12,
		MaxDownReplicas: 10, MaxFsyncP99: time.Hour,
	})...)
	tolerant.Eval()
	dropped.Add(1000)
	if st := tolerant.Eval(); !st.Healthy {
		t.Fatalf("tolerant thresholds still unhealthy: %+v", failingRules(st))
	}

	strict := NewHealthEvaluator(reg)
	strict.Eval()
	dropped.Add(1000)
	if st := strict.Eval(); st.Healthy {
		t.Fatal("strict thresholds passed a drop burst")
	}
}

// TestHealthNilSafety pins the telemetry-off mode: nil evaluator and
// nil registry always read healthy, including over HTTP.
func TestHealthNilSafety(t *testing.T) {
	var e *HealthEvaluator
	if st := e.Eval(); !st.Healthy {
		t.Fatal("nil evaluator unhealthy")
	}
	if st := NewHealthEvaluator(nil).Eval(); !st.Healthy {
		t.Fatal("nil-registry evaluator unhealthy")
	}
	rec := httptest.NewRecorder()
	HealthHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("nil /healthz served %d", rec.Code)
	}
}

// TestHealthHandler pins the HTTP contract: 200 + JSON when healthy,
// 503 with per-rule reasons when not.
func TestHealthHandler(t *testing.T) {
	reg := NewRegistry()
	down := reg.Scope().Gauge("dta_ha_down_replicas", "t")
	e := NewHealthEvaluator(reg)
	h := HealthHandler(e)

	get := func() (HealthStatus, int) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		var st HealthStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("bad payload: %v\n%s", err, rec.Body.String())
		}
		return st, rec.Code
	}

	if st, code := get(); code != 200 || !st.Healthy {
		t.Fatalf("healthy serve: code %d, %+v", code, st)
	}
	down.Set(2)
	st, code := get()
	if code != 503 || st.Healthy {
		t.Fatalf("unhealthy serve: code %d, %+v", code, st)
	}
	if r, ok := failingRules(st)["down_replicas"]; !ok || r.Value != 2 {
		t.Fatalf("down_replicas verdict missing or wrong: %+v", st.Rules)
	}
	down.Set(0)
	if st, code := get(); code != 200 || !st.Healthy {
		t.Fatalf("healed serve: code %d, %+v", code, st)
	}
}
