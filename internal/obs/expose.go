package obs

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in Prometheus text
// exposition format (version 0.0.4), grouped by metric name with one
// HELP/TYPE block per name. Histograms render cumulative le-buckets
// plus _sum and _count. The walk only loads atomics, so it is safe (and
// cheap) to call concurrently with full-rate ingest.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var prev string
	for _, m := range r.sorted() {
		if m.name != prev {
			prev = m.name
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		}
		switch m.kind {
		case KindHistogram:
			writeHistogram(bw, m)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", m.name, wrapLabels(m.labels), formatFloat(m.value()))
		}
	}
	return bw.Flush()
}

// wrapLabels brackets a pre-rendered label string ({} elided when
// empty).
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends extra rendered pairs to a pre-rendered label set.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func writeHistogram(w io.Writer, m *metric) {
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		n := m.hist.buckets[i].Load()
		if n == 0 && i != HistBuckets-1 {
			continue // fixed log2 geometry: elide empty interior buckets
		}
		cum += n
		le := strconv.FormatUint(BucketBound(i), 10)
		if i == HistBuckets-1 {
			le = "+Inf"
		}
		line := fmt.Sprintf("%s_bucket%s %d", m.name, joinLabels(m.labels, `le="`+le+`"`), cum)
		// OpenMetrics-style exemplar: the last trace ID that landed in
		// this bucket, with its observed value, linking the histogram
		// back to /debug/traces.
		if id, v := m.hist.Exemplar(i); id != 0 {
			line += fmt.Sprintf(` # {trace_id="%d"} %d`, id, v)
		}
		fmt.Fprintln(w, line)
	}
	fmt.Fprintf(w, "%s_sum%s %d\n", m.name, wrapLabels(m.labels), m.hist.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", m.name, wrapLabels(m.labels), m.hist.Count())
}

// formatFloat renders a sample value; integral values (the common case
// — counters) print without an exponent or trailing zeros.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as Prometheus text at any path.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Mux builds the observability endpoint: /metrics (Prometheus text),
// /debug/vars (expvar: cmdline, memstats), and the full /debug/pprof/*
// suite on a private mux — none of this touches http.DefaultServeMux,
// so embedding applications keep control of their own handler space.
func Mux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "dta observability endpoint\n\n/metrics\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// ParseLabels parses a rendered label body (`k1="v1",k2="v2"`) back
// into sorted pairs. Values are Go-quoted by renderLabels, so Unquote
// round-trips exactly.
func ParseLabels(s string) ([]Label, error) {
	if s == "" {
		return nil, nil
	}
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("obs: malformed label set at %q", s)
		}
		key := s[:eq]
		rest := s[eq+1:]
		// Find the closing quote, honouring backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("obs: unterminated label value at %q", s)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("obs: bad label value %q: %w", rest[:end+1], err)
		}
		out = append(out, Label{Key: key, Value: val})
		s = rest[end+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("obs: expected ',' at %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}
