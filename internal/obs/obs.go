// Package obs is the pipeline's self-telemetry layer: a zero-allocation
// metrics registry (counters, gauges, log2 fixed-bucket latency
// histograms) plus lightweight per-stage span timing, threaded through
// every layer of the ingest pipeline — engine shard workers, translator
// primitive dispatch, RDMA crafting, HA fan-out, WAL flushing.
//
// The design constraint is the one the paper applies to the data plane
// itself: measurement that perturbs the stream is worthless. DTA's core
// claim is that the collector is the bottleneck of network-wide
// telemetry, so the collector's own instrumentation must not become a
// second bottleneck:
//
//   - Hot-path primitives never allocate. A Counter is one padded
//     atomic; a Histogram observation is three uncontended atomic adds;
//     a skipped Span is two predictable branches and no clock read.
//   - Every mutable cell is cache-line padded (64B) so two counters
//     owned by different shard workers never share a line — the same
//     de-sharing discipline the sharded ingest queues apply.
//   - Counters bumped by many producer goroutines at once (the HA
//     fan-out accounting) are striped across lines (ShardedCounter) and
//     summed at read time, so concurrent writers do not serialise on one
//     LOCK-prefixed cell.
//   - Per-stage latency spans are sampled (default 1/64) so the clock
//     reads they cost amortise to under a nanosecond per report, and
//     they vanish entirely — including the clock reads — when telemetry
//     is disabled (a nil *Histogram makes Start/End no-ops).
//
// Registration happens at construction time (it allocates; the hot path
// only ever touches pre-resolved pointers). Every constructor is
// nil-receiver-safe: a nil *Scope returns working-but-unregistered
// primitives, which is how "telemetry off" keeps the stats structs
// (engine Stats, ha.Stats, wal.Stats) functional — they are views over
// these same cells, registered or not, so the numbers reported by the
// Go API and by the HTTP exposition can never disagree.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Label is one exposition dimension, rendered as key="value".
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{key, value} }

// Kind classifies a registered metric for exposition and snapshots.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// pad fills a Counter/Gauge out to one cache line so cells owned by
// different writer goroutines never false-share.
const cacheLine = 64

// Counter is a monotonically increasing cell: one atomic on its own
// cache line. Single-writer or low-contention multi-writer use; for
// counters hammered by many producers at once use ShardedCounter.
type Counter struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// stripes stripes a ShardedCounter across cache lines; power of two.
const stripes = 8

// stripeHint distributes concurrent writers across stripes. Goroutine
// stacks live at least a segment apart, so bits above the frame offset
// of a stack address differ between goroutines while staying stable
// across calls from the same frame depth — a free, allocation-free
// writer ID. Any value is correct; the hint only spreads contention.
//
//go:nosplit
func stripeHint() uint64 {
	var b byte
	// The address is consumed as an integer immediately, so escape
	// analysis keeps b on the stack — no allocation per counter bump
	// (pinned by TestHotPathAllocations).
	return uint64(uintptr(unsafe.Pointer(&b))) >> 10
}

// ShardedCounter is a Counter striped across cache lines for counters
// bumped concurrently by many producer goroutines (HA fan-out
// accounting): writers pick a stripe from their stack address, readers
// sum. Eight stripes cost 512B — irrelevant for the handful of
// multi-producer counters — and turn a serialising LOCK ADD hotspot
// into (usually) uncontended per-line adds.
type ShardedCounter struct {
	s [stripes]Counter
}

// Inc adds 1 on the calling goroutine's stripe.
func (c *ShardedCounter) Inc() { c.s[stripeHint()&(stripes-1)].v.Add(1) }

// Add adds n on the calling goroutine's stripe.
func (c *ShardedCounter) Add(n uint64) { c.s[stripeHint()&(stripes-1)].v.Add(n) }

// Load sums the stripes. Monotone per stripe, so concurrent Loads are
// consistent in the usual counter sense (may lag in-flight adds).
func (c *ShardedCounter) Load() uint64 {
	var sum uint64
	for i := range c.s {
		sum += c.s[i].v.Load()
	}
	return sum
}

// Gauge is a last-value cell (signed: levels can fall).
type Gauge struct {
	v atomic.Int64
	_ [cacheLine - 8]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark idiom (WAL ring occupancy). The common case is one
// relaxed load and no write.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed log2 bucket count: bucket i holds values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds
// zero; bucket HistBuckets-1 absorbs everything from ~9.2 minutes (in
// nanoseconds) up. Fixed geometry means observation is a bit-length
// instruction and an indexed add — no search, no configuration, and
// every histogram in the system is mergeable with every other.
const HistBuckets = 40

// Histogram is a log2 fixed-bucket latency histogram. Observations are
// three atomic adds on single-writer (or lightly contended) cells; the
// struct is padded so the count/sum header and a concurrent reader's
// cache traffic do not bounce the writer's line... and a nil *Histogram
// swallows observations, which is how disabled telemetry drops the
// span clock reads too (see Start).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	_       [cacheLine - 16]byte
	buckets [HistBuckets]atomic.Uint64
	// Exemplar cells: each bucket optionally remembers the last trace
	// ID (and the observed value) that landed in it, linking the
	// distribution back to a /debug/traces record. Best-effort under
	// concurrency (ID and value are separate atomics), zero = none.
	exID [HistBuckets]atomic.Uint64
	exV  [HistBuckets]atomic.Uint64
}

// Observe records v (nanoseconds, by convention). Safe on a nil
// receiver (no-op).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveEx records v and, when traceID is nonzero, stamps the
// bucket's exemplar cell with it. Safe on a nil receiver (no-op).
func (h *Histogram) ObserveEx(v, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := bits.Len64(v)
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	h.exV[i].Store(v)
	h.exID[i].Store(traceID)
}

// Exemplar returns bucket i's exemplar trace ID and observed value
// (0, 0 when no exemplar has landed there).
func (h *Histogram) Exemplar(i int) (traceID, v uint64) {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0, 0
	}
	return h.exID[i].Load(), h.exV[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// BucketBound returns bucket i's inclusive upper bound (2^i - 1).
func BucketBound(i int) uint64 {
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// timeBase anchors the monotonic clock; Nanotime deltas are what spans
// record, so the base is arbitrary.
var timeBase = time.Now()

// Nanotime returns monotonic nanoseconds since process start — the
// span clock (one VDSO clock read, no allocation).
func Nanotime() int64 { return int64(time.Since(timeBase)) }

// Span is one in-flight stage timing. The zero Span is a no-op, which
// is how skipped samples and disabled telemetry cost no clock reads.
type Span struct {
	h  *Histogram
	t0 int64
}

// Start begins a span against h; nil h returns a no-op span without
// reading the clock.
func Start(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: Nanotime()}
}

// End records the elapsed nanoseconds (no-op for a no-op span).
func (s Span) End() {
	if s.h != nil {
		s.h.Observe(uint64(Nanotime() - s.t0))
	}
}

// EndExemplar records the elapsed nanoseconds and attaches traceID as
// the landing bucket's exemplar (no-op span or zero ID degrade to a
// plain End).
func (s Span) EndExemplar(traceID uint64) {
	if s.h != nil {
		s.h.ObserveEx(uint64(Nanotime()-s.t0), traceID)
	}
}

// Sampler admits every 2^shift-th hit — the hot-path span thinner. It
// is single-writer (live on a worker/translator owned by one
// goroutine), like the structures it instruments.
type Sampler struct {
	n     uint64
	shift uint
}

// NewSampler samples one in every 2^shift operations (shift 0 = every
// operation).
func NewSampler(shift uint) Sampler { return Sampler{shift: shift} }

// Start begins a span against h for one in every 2^shift calls; other
// calls (and a nil h) return a no-op span with no clock read.
func (s *Sampler) Start(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	s.n++
	if s.n&(1<<s.shift-1) != 0 {
		return Span{}
	}
	return Start(h)
}

// Weight returns the number of operations each recorded sample stands
// for (2^shift).
func (s *Sampler) Weight() uint64 { return 1 << s.shift }

// metric is one registered series.
type metric struct {
	name   string
	labels string // pre-rendered, sorted at scope construction: k1="v1",k2="v2"
	help   string
	kind   Kind

	counter   *Counter
	sharded   *ShardedCounter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// value reads a counter/gauge metric's current value as float64.
func (m *metric) value() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.Load())
	case m.sharded != nil:
		return float64(m.sharded.Load())
	case m.counterFn != nil:
		return float64(m.counterFn())
	case m.gauge != nil:
		return float64(m.gauge.Load())
	case m.gaugeFn != nil:
		return m.gaugeFn()
	default:
		return 0
	}
}

// Registry holds registered metrics for exposition and snapshots.
// Registration is cheap-but-locking (construction time); reads
// (Snapshot, WritePrometheus) take a read lock and only load atomics,
// so they can run concurrently with full-rate ingest.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	index   map[string]int // name + "\x00" + labels -> metrics slot
	start   time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int), start: time.Now()}
}

// Start returns the registry's creation time (uptime basis).
func (r *Registry) Start() time.Time { return r.start }

// register inserts m, replacing any previous series with the same name
// and label set (re-attached engines re-register their shards; the
// newest generation wins, keeping the exposition well-formed).
func (r *Registry) register(m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name + "\x00" + m.labels
	if i, ok := r.index[key]; ok {
		r.metrics[i] = m
		return
	}
	r.index[key] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// sorted returns the metrics ordered by (name, labels) for stable,
// grouped exposition. Caller holds no lock. Nil-safe: a nil registry
// has no series (Mux serves an empty exposition).
func (r *Registry) sorted() []*metric {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

// Scope is a registry handle carrying a fixed label prefix (e.g.
// collector="2"). A nil Scope is valid everywhere and yields working,
// unregistered primitives — the telemetry-off mode.
type Scope struct {
	r      *Registry
	labels []Label
}

// Scope roots a label scope on the registry. Nil-safe.
func (r *Registry) Scope(labels ...Label) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{r: r, labels: labels}
}

// With extends the scope's label set. Nil-safe.
func (s *Scope) With(labels ...Label) *Scope {
	if s == nil {
		return nil
	}
	merged := make([]Label, 0, len(s.labels)+len(labels))
	merged = append(merged, s.labels...)
	merged = append(merged, labels...)
	return &Scope{r: s.r, labels: merged}
}

// renderLabels formats the scope's labels (plus extras) sorted by key.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

func (s *Scope) add(name, help string, kind Kind, fill func(*metric)) {
	if s == nil {
		return
	}
	m := &metric{name: name, labels: renderLabels(s.labels), help: help, kind: kind}
	fill(m)
	s.r.register(m)
}

// Counter registers and returns a counter. On a nil scope the counter
// still works; it just is not exposed.
func (s *Scope) Counter(name, help string) *Counter {
	c := &Counter{}
	s.add(name, help, KindCounter, func(m *metric) { m.counter = c })
	return c
}

// ShardedCounter registers and returns a striped counter for
// multi-producer hot paths.
func (s *Scope) ShardedCounter(name, help string) *ShardedCounter {
	c := &ShardedCounter{}
	s.add(name, help, KindCounter, func(m *metric) { m.sharded = c })
	return c
}

// CounterFunc registers a counter whose value is computed at read time
// — the view-over-existing-atomics hook (no-op on a nil scope). fn must
// be safe to call concurrently with ingest.
func (s *Scope) CounterFunc(name, help string, fn func() uint64) {
	s.add(name, help, KindCounter, func(m *metric) { m.counterFn = fn })
}

// Gauge registers and returns a gauge.
func (s *Scope) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	s.add(name, help, KindGauge, func(m *metric) { m.gauge = g })
	return g
}

// GaugeFunc registers a gauge computed at read time (queue depths, ring
// occupancy — zero hot-path cost). fn must be safe to call concurrently
// with ingest. No-op on a nil scope.
func (s *Scope) GaugeFunc(name, help string, fn func() float64) {
	s.add(name, help, KindGauge, func(m *metric) { m.gaugeFn = fn })
}

// Histogram registers and returns a log2 latency histogram. On a nil
// scope it returns nil — and a nil Histogram turns the spans that would
// feed it into no-ops, clock reads included. That asymmetry with
// Counter is deliberate: counters double as the pipeline's stats
// storage and must always work; histograms exist only for telemetry.
func (s *Scope) Histogram(name, help string) *Histogram {
	if s == nil {
		return nil
	}
	h := &Histogram{}
	s.add(name, help, KindHistogram, func(m *metric) { m.hist = h })
	return h
}
