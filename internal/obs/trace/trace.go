// Package trace is the data-plane trace pipeline: sampled end-to-end
// records that follow ONE report from AsyncReporter submit through the
// engine queue, translator, RDMA emit and the WAL to the durable ack,
// answering "where did THIS report's latency go?" — the per-report
// complement to the obs histograms (distributions) and the journal
// (control-plane events).
//
// The design mirrors the rest of internal/obs:
//
//   - Fixed-size records. A trace is one in-flight slot holding a
//     per-stage nanosecond stamp array; no maps, no strings, no
//     per-report allocation anywhere on the hot path.
//   - Lock-free everywhere. In-flight slots come from a tagged Treiber
//     freelist (the tag defeats ABA); completed traces are published
//     into a seqlock-validated ring identical in protocol to the
//     journal's, so scrapers never block producers.
//   - Nil = off. Every method is nil-receiver / zero-value safe: with
//     telemetry disabled the whole pipeline costs one predicted branch.
//
// Two samplers compose:
//
//   - Head-based: 1/2^CandidateShift of submits acquire a slot at all
//     (the caller-local Sampler makes the sampled-out path zero-atomic),
//     and 1/2^HeadShift of those candidates are kept unconditionally.
//   - Tail-based: any candidate that crossed the latency threshold, hit
//     a queue stall, a degraded (skipped) fsync, or a resync-retry
//     window is ALWAYS kept — chaos runs produce exactly the slow
//     traces one wants to look at.
//
// Ownership protocol: Begin returns a Handle with one reference. The
// engine worker (or sync caller) calls Finish after the translator is
// done; the WAL takes a second reference (OwnWAL) when the report
// enters its ring and Finishes after the durable ack. Whichever side
// drops the last reference evaluates the keep decision, publishes, and
// recycles the slot — correct in both completion orders.
package trace

import (
	"sync/atomic"
	"time"

	"dta/internal/obs"
)

// Stage identifies one timestamped hop in a report's life. Stamps are
// obs.Nanotime values (monotonic ns since process start); a zero stamp
// means the report skipped that stage (e.g. no WAL configured, or the
// synchronous reporter path which has no engine queue).
type Stage uint8

const (
	// StSubmit: AsyncReporter accepted the report (or the sync path
	// began delivery). Always the first stamp.
	StSubmit Stage = iota
	// StEnqueue: the report's chunk landed in the engine shard queue.
	// Submit→Enqueue gap is chunk-fill time; Enqueue includes any
	// Block-policy stall wait.
	StEnqueue
	// StDequeue: the engine worker picked the chunk up. Enqueue→Dequeue
	// is pure queue wait.
	StDequeue
	// StWALRing: the report was copied into the WAL writer ring
	// (includes any ring-full backpressure wait).
	StWALRing
	// StEmit: the last per-replica RDMA emit for this report finished.
	StEmit
	// StTranslate: the translator finished processing the report
	// (primitive dispatch + all emits + ack handling).
	StTranslate
	// StWALWrite: the flusher wrote the encoded record to the segment
	// file (buffered write, not yet durable).
	StWALWrite
	// StFsync: the fsync covering this record completed. Zero when the
	// ack was degraded (fsync skipped) or mode is SyncNone.
	StFsync
	// StAck: the report became durably acknowledged. Last stamp on the
	// WAL path.
	StAck

	// NumStages sizes the per-trace stamp array.
	NumStages = int(StAck) + 1
)

var stageNames = [NumStages]string{
	"submit", "enqueue", "dequeue", "wal_ring", "emit",
	"translate", "wal_write", "fsync", "ack",
}

// String returns the stage's wire name as used in /debug/traces.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "?"
}

// Trace flags: why a trace was retained, and what it hit on the way.
// Tail-based retention keeps any trace with a nonzero flag word.
const (
	// FStall: the report waited on a full engine queue or WAL ring.
	FStall uint32 = 1 << iota
	// FDegraded: the durable ack was degraded (fsync skipped under the
	// slow-disk degrade state machine).
	FDegraded
	// FResync: the trace finished inside a resync-retry window (or an
	// RDMA sequence NAK forced a requester resync mid-report).
	FResync
	// FSlow: total latency crossed Config.LatencyNs. Set by the keep
	// evaluation, not by instrumentation sites.
	FSlow
	// FHead: kept by the head sampler alone (no tail condition fired).
	FHead
)

var flagNames = []struct {
	bit  uint32
	name string
}{
	{FStall, "stall"},
	{FDegraded, "degraded"},
	{FResync, "resync"},
	{FSlow, "slow"},
	{FHead, "head"},
}

// FlagNames expands a flag word into its wire names.
func FlagNames(f uint32) []string {
	var out []string
	for _, fn := range flagNames {
		if f&fn.bit != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Config sizes a Tracer. The zero value selects usable defaults.
type Config struct {
	// Ring is the completed-trace ring size (rounded up to a power of
	// two). Default 1024.
	Ring int
	// InFlight is the in-flight slot pool size; it bounds concurrent
	// traced reports (candidates past the pool are silently untraced).
	// Default 256.
	InFlight int
	// CandidateShift: 1/2^k of submits become trace candidates. The
	// default is 10 (1/1024): a candidate pays the slot acquire, the
	// per-stage clock reads and the keep evaluation, so the rate is
	// what amortises tracing under the <3% overhead gate while still
	// yielding thousands of candidates per second at pipeline rates.
	CandidateShift uint
	// HeadShift: 1/2^k of candidates are kept unconditionally.
	// Default 2 (so default head rate is 1/4096 of traffic).
	HeadShift uint
	// LatencyNs is the tail-retention threshold: any candidate whose
	// submit→last-stamp total meets it is kept. Default 1ms.
	LatencyNs int64
}

const (
	defaultRing      = 1024
	defaultInFlight  = 256
	defaultCandShift = 10
	defaultHeadShift = 2
	defaultLatencyNs = int64(time.Millisecond)
)

// inflight is one active trace: fixed-size, recycled through the
// freelist. Stamps are atomics because a trace is written from several
// goroutines in sequence (reporter → engine worker → WAL flusher) and
// scraped-adjacent fields must stay race-clean.
type inflight struct {
	idx   uint32 // position in Tracer.slots, for freelist push
	id    uint64 // trace ID, unique per acquire, never zero
	flags atomic.Uint32
	refs  atomic.Int32
	ts    [NumStages]atomic.Int64
	_     [32]byte // pad to 128: two cache lines, no false sharing across slots
}

// slot is one published (completed) trace in the seqlock ring: the
// same mark protocol as the journal — odd mark = write in progress,
// mark>>1 = sequence number.
type slot struct {
	mark atomic.Uint64
	w    [2 + NumStages]atomic.Uint64 // id, flags, stamps
}

// Record is one completed trace as read out of the ring.
type Record struct {
	Seq   uint64
	ID    uint64
	Flags uint32
	TS    [NumStages]int64
}

// Start returns the trace's first nonzero stamp (its submit time).
func (r *Record) Start() int64 {
	for i := 0; i < NumStages; i++ {
		if r.TS[i] != 0 {
			return r.TS[i]
		}
	}
	return 0
}

// End returns the trace's last stamp.
func (r *Record) End() int64 {
	var last int64
	for i := 0; i < NumStages; i++ {
		if r.TS[i] > last {
			last = r.TS[i]
		}
	}
	return last
}

// Total returns end-to-end latency in ns.
func (r *Record) Total() int64 { return r.End() - r.Start() }

// Tracer owns the in-flight pool and the completed ring. One Tracer
// serves a whole deployment (System, Cluster or HACluster), shared by
// every layer the way the Registry and Journal are.
type Tracer struct {
	slots []inflight
	next  []atomic.Uint32 // freelist links, idx+1 encoded (0 = end)
	free  atomic.Uint64   // tagged head: tag<<32 | idx+1

	ids       atomic.Uint64 // trace ID allocator
	headN     atomic.Uint64 // head-keep counter (candidates)
	headMask  uint64
	candMask  uint64 // candidate when sampler n&candMask == 0
	latencyNs int64

	// resyncUntil: traces finishing before this Nanotime deadline get
	// FResync — set by the HA resync-retry path so the traces that
	// overlap a retry window are retained.
	resyncUntil atomic.Int64

	exhausted atomic.Uint64 // candidates dropped: pool empty

	ring []slot
	mask uint64
	seq  atomic.Uint64
}

// New builds a Tracer. Zero-value Config fields select defaults.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = defaultRing
	}
	if cfg.InFlight <= 0 {
		cfg.InFlight = defaultInFlight
	}
	if cfg.CandidateShift == 0 {
		cfg.CandidateShift = defaultCandShift
	}
	if cfg.HeadShift == 0 {
		cfg.HeadShift = defaultHeadShift
	}
	if cfg.LatencyNs == 0 {
		cfg.LatencyNs = defaultLatencyNs
	}
	size := 1
	for size < cfg.Ring {
		size <<= 1
	}
	t := &Tracer{
		slots:     make([]inflight, cfg.InFlight),
		next:      make([]atomic.Uint32, cfg.InFlight),
		headMask:  1<<cfg.HeadShift - 1,
		candMask:  1<<cfg.CandidateShift - 1,
		latencyNs: cfg.LatencyNs,
		ring:      make([]slot, size),
		mask:      uint64(size - 1),
	}
	for i := range t.slots {
		t.slots[i].idx = uint32(i)
		if i+1 < len(t.slots) {
			t.next[i].Store(uint32(i + 2))
		}
	}
	t.free.Store(1) // head = slot 0 (idx+1 encoding), tag 0
	return t
}

// Exhausted returns how many candidates were dropped because the
// in-flight pool was empty.
func (t *Tracer) Exhausted() uint64 {
	if t == nil {
		return 0
	}
	return t.exhausted.Load()
}

// NoteResyncUntil marks a resync-retry window: traces finishing before
// untilNs (obs.Nanotime scale) are flagged FResync and tail-retained.
// Nil-safe; monotonic (never shortens an existing window).
func (t *Tracer) NoteResyncUntil(untilNs int64) {
	if t == nil {
		return
	}
	for {
		cur := t.resyncUntil.Load()
		if untilNs <= cur || t.resyncUntil.CompareAndSwap(cur, untilNs) {
			return
		}
	}
}

// Sampler is the caller-local candidate filter: one per Submitter (or
// per sync reporter), unsynchronized, so the sampled-out fast path is
// a single increment and branch with no shared-cache traffic.
type Sampler struct {
	n uint64
}

// Begin starts a trace for this submit, or returns the invalid Handle
// when the tracer is nil, the submit is sampled out, or the in-flight
// pool is exhausted. The returned handle carries one reference.
func (t *Tracer) Begin(s *Sampler) Handle {
	// Inline-friendly fast path: the sampled-out branch (the common
	// case) must cost one increment and one mask check at the call
	// site, so everything heavier lives in BeginCandidate.
	if t != nil {
		s.n++
		if s.n&t.candMask == 0 {
			return t.BeginCandidate()
		}
	}
	return Handle{}
}

// Candidate advances the sampler and reports whether this submit is a
// sampling candidate. Call sites whose common path must not carry a
// Handle value at all (keeping the two-word zero Handle live across a
// downstream call costs registers on every report) use
// Candidate + BeginCandidate instead of Begin; t must be non-nil.
func (t *Tracer) Candidate(s *Sampler) bool {
	s.n++
	return s.n&t.candMask == 0
}

// BeginCandidate acquires an in-flight slot for a sampling candidate
// already admitted by Begin or Candidate.
func (t *Tracer) BeginCandidate() Handle {
	sl := t.acquire()
	if sl == nil {
		t.exhausted.Add(1)
		return Handle{}
	}
	return Handle{t: t, s: sl}
}

// acquire pops an in-flight slot and resets it, or returns nil when
// the pool is empty.
func (t *Tracer) acquire() *inflight {
	var sl *inflight
	for {
		old := t.free.Load()
		head := uint32(old)
		if head == 0 {
			return nil
		}
		nxt := t.next[head-1].Load()
		tag := old >> 32
		if t.free.CompareAndSwap(old, (tag+1)<<32|uint64(nxt)) {
			sl = &t.slots[head-1]
			break
		}
	}
	sl.id = t.ids.Add(1)
	sl.flags.Store(0)
	sl.refs.Store(1)
	for i := range sl.ts {
		sl.ts[i].Store(0)
	}
	return sl
}

// release pushes a slot back onto the freelist.
func (t *Tracer) release(sl *inflight) {
	enc := sl.idx + 1
	for {
		old := t.free.Load()
		t.next[sl.idx].Store(uint32(old))
		tag := old >> 32
		if t.free.CompareAndSwap(old, (tag+1)<<32|uint64(enc)) {
			return
		}
	}
}

// Handle is one active trace reference. The zero value is the invalid
// handle: every method is a cheap no-op branch on it, which is how the
// sampled-out and telemetry-off paths stay free.
type Handle struct {
	t *Tracer
	s *inflight
}

// Valid reports whether the handle refers to a live trace.
func (h Handle) Valid() bool { return h.s != nil }

// ID returns the trace ID, or 0 for the invalid handle. Trace IDs are
// never zero, so 0 doubles as "no exemplar" in histogram cells.
func (h Handle) ID() uint64 {
	if h.s == nil {
		return 0
	}
	return h.s.id
}

// Stamp records obs.Nanotime() for the stage.
func (h Handle) Stamp(st Stage) {
	if h.s == nil {
		return
	}
	h.s.ts[st].Store(obs.Nanotime())
}

// StampAt records an explicit nanosecond stamp (obs.Nanotime scale)
// for call sites that already hold a fresh timestamp.
func (h Handle) StampAt(st Stage, ns int64) {
	if h.s == nil {
		return
	}
	h.s.ts[st].Store(ns)
}

// Flag ORs tail-retention flags into the trace.
func (h Handle) Flag(f uint32) {
	if h.s == nil {
		return
	}
	for {
		old := h.s.flags.Load()
		if old&f == f || h.s.flags.CompareAndSwap(old, old|f) {
			return
		}
	}
}

// OwnWAL takes the WAL's reference: the durable-ack side now shares
// ownership and must Finish once the record's fate is known. Returns
// false (and takes nothing) on the invalid handle.
func (h Handle) OwnWAL() bool {
	if h.s == nil {
		return false
	}
	h.s.refs.Add(1)
	return true
}

// Finish drops one reference. The last reference out evaluates the
// keep decision (tail flags, latency threshold, head sampler),
// publishes retained traces into the completed ring, and recycles the
// slot either way.
func (h Handle) Finish() {
	// Split like Begin: the invalid-handle branch (sampled-out path)
	// must inline at the call site.
	if h.s != nil {
		h.finish()
	}
}

// finish is kept out of line so Finish itself stays under the inlining
// budget: the invalid-handle branch is what every sampled-out report
// pays.
//
//go:noinline
func (h Handle) finish() {
	if h.s.refs.Add(-1) != 0 {
		return
	}
	h.t.complete(h.s)
}

// Abort drops one reference without ever publishing: the report was
// shed (Drop policy) and there is no end-to-end latency to attribute.
func (h Handle) Abort() {
	if h.s != nil {
		h.abort()
	}
}

func (h Handle) abort() {
	if h.s.refs.Add(-1) != 0 {
		return
	}
	h.t.release(h.s)
}

// complete runs the keep decision for a finished trace and recycles
// its slot.
func (t *Tracer) complete(sl *inflight) {
	flags := sl.flags.Load()
	if obs.Nanotime() < t.resyncUntil.Load() {
		flags |= FResync
	}
	var first, last int64
	for i := 0; i < NumStages; i++ {
		v := sl.ts[i].Load()
		if v == 0 {
			continue
		}
		if first == 0 || v < first {
			first = v
		}
		if v > last {
			last = v
		}
	}
	if first != 0 && last-first >= t.latencyNs {
		flags |= FSlow
	}
	keep := flags != 0
	if !keep && t.headN.Add(1)&t.headMask == 0 {
		flags |= FHead
		keep = true
	}
	if keep {
		t.publish(sl, flags)
	}
	t.release(sl)
}

// publish copies the trace into the completed ring under the seqlock
// mark protocol (same as the journal): odd mark while the words are
// being stored, even mark = consistent.
func (t *Tracer) publish(sl *inflight, flags uint32) {
	seq := t.seq.Add(1)
	rs := &t.ring[seq&t.mask]
	rs.mark.Store(seq<<1 | 1)
	rs.w[0].Store(sl.id)
	rs.w[1].Store(uint64(flags))
	for i := 0; i < NumStages; i++ {
		rs.w[2+i].Store(uint64(sl.ts[i].Load()))
	}
	rs.mark.Store(seq << 1)
}

// get reads one published trace by sequence number, seqlock-validated.
func (t *Tracer) get(seq uint64, r *Record) bool {
	rs := &t.ring[seq&t.mask]
	m := rs.mark.Load()
	if m != seq<<1 {
		return false
	}
	r.Seq = seq
	r.ID = rs.w[0].Load()
	r.Flags = uint32(rs.w[1].Load())
	for i := 0; i < NumStages; i++ {
		r.TS[i] = int64(rs.w[2+i].Load())
	}
	return rs.mark.Load() == seq<<1
}

// Last returns the newest published sequence number (0 = none yet).
func (t *Tracer) Last() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Dropped returns how many retained traces were overwritten before any
// reader could have seen them relative to a from-zero read.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	last := t.seq.Load()
	size := uint64(len(t.ring))
	if last > size {
		return last - size
	}
	return 0
}

// Since reads the published traces with sequence > cursor into buf,
// oldest first, mirroring journal.Since: it returns the records, the
// newest sequence observed (the next cursor) and how many traces in
// the requested range were already overwritten.
func (t *Tracer) Since(cursor uint64, buf []Record) (recs []Record, last uint64, missed uint64) {
	if t == nil {
		return nil, cursor, 0
	}
	last = t.seq.Load()
	if last <= cursor {
		return nil, last, 0
	}
	lo := cursor + 1
	size := uint64(len(t.ring))
	if last >= size && lo < last-size+1 {
		missed = last - size + 1 - lo
		lo = last - size + 1
	}
	if max := uint64(len(buf)); last-lo+1 > max {
		missed += last - lo + 1 - max
		lo = last - max + 1
	}
	n := 0
	for seq := lo; seq <= last; seq++ {
		if t.get(seq, &buf[n]) {
			n++
		} else {
			missed++
		}
	}
	return buf[:n], last, missed
}
