package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// beginAll begins a trace bypassing candidate sampling by spinning the
// sampler until a candidate fires (mask is 2^shift-1 so at most 2^shift
// calls).
func beginAll(t *Tracer, s *Sampler) Handle {
	for i := 0; i < 1<<16; i++ {
		if h := t.Begin(s); h.Valid() {
			return h
		}
	}
	return Handle{}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	var s Sampler
	h := tr.Begin(&s)
	if h.Valid() {
		t.Fatal("nil tracer produced a valid handle")
	}
	h.Stamp(StSubmit)
	h.Flag(FStall)
	h.Finish()
	h.Abort()
	if h.ID() != 0 {
		t.Fatal("invalid handle has nonzero ID")
	}
	if _, last, _ := tr.Since(0, nil); last != 0 {
		t.Fatal("nil tracer Since returned data")
	}
	tr.NoteResyncUntil(123)
}

func TestHeadKeepPublishes(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	var s Sampler
	kept := 0
	for i := 0; i < 16; i++ {
		h := tr.Begin(&s)
		if !h.Valid() {
			continue
		}
		h.Stamp(StSubmit)
		h.Stamp(StTranslate)
		h.Finish()
	}
	buf := make([]Record, 8)
	recs, last, _ := tr.Since(0, buf)
	kept = len(recs)
	// 16 submits, candShift 1 → 8 candidates, headShift 1 → 4 kept.
	if kept != 4 {
		t.Fatalf("head sampler kept %d traces, want 4 (last=%d)", kept, last)
	}
	for i := range recs {
		if recs[i].Flags&FHead == 0 {
			t.Fatalf("trace %d missing FHead: flags=%x", recs[i].ID, recs[i].Flags)
		}
		if recs[i].Total() < 0 {
			t.Fatalf("negative total on trace %d", recs[i].ID)
		}
	}
}

func TestTailKeepsSlowWhileHeadDrops(t *testing.T) {
	// Head sampler keeps ~nothing (1/2^20 of candidates); latency
	// threshold is 1µs. A fast trace must be dropped, a slow one kept.
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 20, LatencyNs: int64(time.Microsecond)})
	var s Sampler

	fast := beginAll(tr, &s)
	if !fast.Valid() {
		t.Fatal("no candidate")
	}
	now := int64(1_000_000)
	fast.StampAt(StSubmit, now)
	fast.StampAt(StTranslate, now+100) // 100ns: under threshold
	fast.Finish()

	slow := beginAll(tr, &s)
	slow.StampAt(StSubmit, now)
	slow.StampAt(StTranslate, now+int64(time.Millisecond))
	slow.Finish()

	buf := make([]Record, 8)
	recs, _, _ := tr.Since(0, buf)
	if len(recs) != 1 {
		t.Fatalf("got %d published traces, want only the slow one", len(recs))
	}
	if recs[0].Flags&FSlow == 0 {
		t.Fatalf("slow trace missing FSlow: flags=%x", recs[0].Flags)
	}
	if recs[0].Flags&FHead != 0 {
		t.Fatalf("slow trace marked head-kept: flags=%x", recs[0].Flags)
	}
	if recs[0].Total() != int64(time.Millisecond) {
		t.Fatalf("total = %d, want 1ms", recs[0].Total())
	}
}

func TestFlaggedTraceAlwaysKept(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 20, LatencyNs: int64(time.Hour)})
	var s Sampler
	for _, flag := range []uint32{FStall, FDegraded, FResync} {
		h := beginAll(tr, &s)
		h.StampAt(StSubmit, 1000)
		h.Flag(flag)
		h.Finish()
	}
	buf := make([]Record, 8)
	recs, _, _ := tr.Since(0, buf)
	if len(recs) != 3 {
		t.Fatalf("kept %d flagged traces, want 3", len(recs))
	}
	want := []uint32{FStall, FDegraded, FResync}
	for i := range recs {
		if recs[i].Flags&want[i] == 0 {
			t.Fatalf("trace %d flags=%x missing %x", i, recs[i].Flags, want[i])
		}
	}
}

func TestResyncWindowFlagsFinishingTraces(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 20, LatencyNs: int64(time.Hour)})
	tr.NoteResyncUntil(1 << 62) // far future
	var s Sampler
	h := beginAll(tr, &s)
	h.StampAt(StSubmit, 1000)
	h.Finish()
	buf := make([]Record, 8)
	recs, _, _ := tr.Since(0, buf)
	if len(recs) != 1 || recs[0].Flags&FResync == 0 {
		t.Fatalf("trace finishing in resync window not kept/flagged: %+v", recs)
	}
}

func TestWALRefcountBothOrders(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	tr.headMask = 0 // keep every completed candidate: deterministic publish
	var s Sampler

	// Order 1: data side finishes first, WAL later.
	h := beginAll(tr, &s)
	h.StampAt(StSubmit, 1000)
	if !h.OwnWAL() {
		t.Fatal("OwnWAL failed on valid handle")
	}
	h.Finish() // data
	if tr.Last() != 0 {
		t.Fatal("published before WAL reference dropped")
	}
	h.StampAt(StAck, 2000)
	h.Finish() // WAL
	if tr.Last() == 0 {
		t.Fatal("not published after both references dropped")
	}

	// Order 2: WAL finishes first.
	before := tr.Last()
	h = beginAll(tr, &s)
	h.StampAt(StSubmit, 1000)
	h.OwnWAL()
	h.StampAt(StAck, 3000)
	h.Finish() // WAL
	if tr.Last() != before {
		t.Fatal("published before data reference dropped")
	}
	h.Finish() // data
	if tr.Last() == before {
		t.Fatal("not published after both references dropped")
	}
}

func TestAbortNeverPublishes(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 2, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	var s Sampler
	for i := 0; i < 8; i++ { // more aborts than pool slots: proves recycling
		h := beginAll(tr, &s)
		if !h.Valid() {
			t.Fatalf("pool leaked after %d aborts", i)
		}
		h.Stamp(StSubmit)
		h.Flag(FStall) // even flagged traces are discarded on abort
		h.Abort()
	}
	if tr.Last() != 0 {
		t.Fatal("aborted trace was published")
	}
}

func TestPoolExhaustion(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 2, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	var s Sampler
	h1 := beginAll(tr, &s)
	h2 := beginAll(tr, &s)
	if !h1.Valid() || !h2.Valid() {
		t.Fatal("pool failed to hand out its slots")
	}
	h3 := beginAll(tr, &s)
	if h3.Valid() {
		t.Fatal("got a handle from an exhausted pool")
	}
	if tr.Exhausted() == 0 {
		t.Fatal("exhaustion not counted")
	}
	h1.Finish()
	h4 := beginAll(tr, &s)
	if !h4.Valid() {
		t.Fatal("slot not recycled after finish")
	}
	h2.Finish()
	h4.Finish()
}

func TestSinceCursorAndWrap(t *testing.T) {
	tr := New(Config{Ring: 4, InFlight: 4, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	tr.headMask = 0 // keep every completed candidate: deterministic publish
	var s Sampler
	publish := func(n int) {
		for i := 0; i < n; i++ {
			h := beginAll(tr, &s)
			h.StampAt(StSubmit, int64(1000+i))
			h.Finish()
		}
	}
	publish(3)
	buf := make([]Record, 8)
	recs, last, missed := tr.Since(0, buf)
	if len(recs) != 3 || last != 3 || missed != 0 {
		t.Fatalf("first read: %d recs last=%d missed=%d", len(recs), last, missed)
	}
	// Cursor resumes.
	publish(2)
	recs, last2, missed := tr.Since(last, buf)
	if len(recs) != 2 || last2 != 5 || missed != 0 {
		t.Fatalf("cursor read: %d recs last=%d missed=%d", len(recs), last2, missed)
	}
	// Overflow the ring from cursor 0: ring holds 4, published 5 → 1 missed.
	recs, _, missed = tr.Since(0, buf)
	if len(recs) != 4 || missed != 1 {
		t.Fatalf("wrap read: %d recs missed=%d, want 4/1", len(recs), missed)
	}
	if tr.Dropped() != 1 {
		t.Fatalf("Dropped() = %d, want 1", tr.Dropped())
	}
}

// TestScrapeDuringPublish hammers the ring from publisher goroutines
// while readers scrape continuously; under -race this validates the
// seqlock protocol, and the assertions validate record integrity (a
// torn read must never surface).
func TestScrapeDuringPublish(t *testing.T) {
	tr := New(Config{Ring: 16, InFlight: 64, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s Sampler
			for {
				select {
				case <-stop:
					return
				default:
				}
				h := tr.Begin(&s)
				if !h.Valid() {
					continue
				}
				// Self-consistent payload: every stamp equals the ID.
				for st := 0; st < NumStages; st++ {
					h.StampAt(Stage(st), int64(h.ID()))
				}
				h.Finish()
			}
		}()
	}
	deadline := time.After(200 * time.Millisecond)
	buf := make([]Record, 16)
	var cursor uint64
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
		}
		recs, last, _ := tr.Since(cursor, buf)
		cursor = last
		for i := range recs {
			for st := 0; st < NumStages; st++ {
				if recs[i].TS[st] != int64(recs[i].ID) {
					t.Fatalf("torn read: trace %d stage %d stamp %d", recs[i].ID, st, recs[i].TS[st])
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestBeginSampledOutAllocs(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 8, HeadShift: 1, LatencyNs: int64(time.Hour)})
	var s Sampler
	s.n = 1 // off the candidate phase
	allocs := testing.AllocsPerRun(1000, func() {
		h := tr.Begin(&s)
		h.Stamp(StSubmit)
		h.Finish()
		if s.n&(1<<8-1) == 0 {
			s.n++ // skip candidates: this pins the sampled-OUT path
		}
	})
	if allocs != 0 {
		t.Fatalf("sampled-out Begin allocates: %v allocs/op", allocs)
	}
}

func TestHTTPHandler(t *testing.T) {
	tr := New(Config{Ring: 8, InFlight: 4, CandidateShift: 1, HeadShift: 1, LatencyNs: int64(time.Hour)})
	tr.headMask = 0 // keep every completed candidate: deterministic publish
	var s Sampler
	h := beginAll(tr, &s)
	h.StampAt(StSubmit, 1000)
	h.StampAt(StEnqueue, 1500)
	h.StampAt(StDequeue, 2000)
	h.StampAt(StTranslate, 3000)
	h.Finish()

	req := httptest.NewRequest("GET", "/debug/traces", nil)
	rec := httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, req)
	var p struct {
		Last   uint64 `json:"last"`
		Traces []struct {
			ID      uint64 `json:"id"`
			Flags   []string
			TotalNs int64 `json:"total_ns"`
			Stages  []struct {
				Stage string `json:"stage"`
				AtNs  int64  `json:"at_ns"`
			} `json:"stages"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if p.Last != 1 || len(p.Traces) != 1 {
		t.Fatalf("payload: last=%d traces=%d", p.Last, len(p.Traces))
	}
	tr0 := p.Traces[0]
	if tr0.TotalNs != 2000 || len(tr0.Stages) != 4 {
		t.Fatalf("trace: total=%d stages=%d", tr0.TotalNs, len(tr0.Stages))
	}
	if tr0.Stages[0].Stage != "submit" || tr0.Stages[0].AtNs != 0 {
		t.Fatalf("first stage: %+v", tr0.Stages[0])
	}
	if tr0.Stages[3].Stage != "translate" || tr0.Stages[3].AtNs != 2000 {
		t.Fatalf("last stage: %+v", tr0.Stages[3])
	}

	// Cursor: since=last returns nothing new.
	req = httptest.NewRequest("GET", "/debug/traces?since=1", nil)
	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(p.Traces) != 0 {
		t.Fatalf("cursor read returned %d traces", len(p.Traces))
	}

	// Bad cursor is a 400.
	req = httptest.NewRequest("GET", "/debug/traces?since=x", nil)
	rec = httptest.NewRecorder()
	Handler(tr).ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("bad cursor: status %d", rec.Code)
	}
}
