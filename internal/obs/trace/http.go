package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// jsonStage is one stamped stage in a trace's JSON rendering: the
// stage name and its offset from the trace's first stamp. Unstamped
// (zero) stages are omitted.
type jsonStage struct {
	Stage string `json:"stage"`
	AtNs  int64  `json:"at_ns"`
}

// jsonTrace is one completed trace in the /debug/traces payload.
type jsonTrace struct {
	Seq     uint64      `json:"seq"`
	ID      uint64      `json:"id"`
	Flags   []string    `json:"flags,omitempty"`
	StartNs int64       `json:"start_ns"`
	TotalNs int64       `json:"total_ns"`
	Stages  []jsonStage `json:"stages"`
}

// tracesPayload is the /debug/traces response envelope, mirroring
// /debug/events: last is the newest sequence (the next ?since=
// cursor), missed counts traces overwritten inside the requested
// range, dropped counts ring-lifetime overwrites.
type tracesPayload struct {
	Last    uint64      `json:"last"`
	Missed  uint64      `json:"missed"`
	Dropped uint64      `json:"dropped"`
	Traces  []jsonTrace `json:"traces"`
}

// render converts a Record into its JSON form.
func render(r *Record) jsonTrace {
	start := r.Start()
	jt := jsonTrace{
		Seq:     r.Seq,
		ID:      r.ID,
		Flags:   FlagNames(r.Flags),
		StartNs: start,
		TotalNs: r.Total(),
		Stages:  make([]jsonStage, 0, NumStages),
	}
	for i := 0; i < NumStages; i++ {
		if r.TS[i] == 0 {
			continue
		}
		jt.Stages = append(jt.Stages, jsonStage{Stage: Stage(i).String(), AtNs: r.TS[i] - start})
	}
	return jt
}

// Handler returns the /debug/traces handler: completed traces as
// JSON, oldest first, with the same ?since= cursor protocol as
// /debug/events (pass the previous response's "last").
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var cursor uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor", http.StatusBadRequest)
				return
			}
			cursor = v
		}
		var p tracesPayload
		if t != nil {
			buf := make([]Record, len(t.ring))
			recs, last, missed := t.Since(cursor, buf)
			p.Last = last
			p.Missed = missed
			p.Dropped = t.Dropped()
			p.Traces = make([]jsonTrace, 0, len(recs))
			for i := range recs {
				p.Traces = append(p.Traces, render(&recs[i]))
			}
		}
		if p.Traces == nil {
			p.Traces = []jsonTrace{}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		enc.Encode(p)
	})
}

// Mount registers the trace endpoint on mux at /debug/traces.
func Mount(mux *http.ServeMux, t *Tracer) {
	mux.Handle("/debug/traces", Handler(t))
}
