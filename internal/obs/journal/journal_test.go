package journal

import (
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestPublishAndSince pins the basic contract: events come back in
// sequence order with every field intact, and the cursor protocol
// returns only what happened after the previous scrape.
func TestPublishAndSince(t *testing.T) {
	j := New(64)
	cause := j.NewCause()
	j.Publish(CompHA, EvSetDown, SevWarn, 2, cause, 7, 0, 0)
	j.Publish(CompWAL, EvCheckpoint, SevInfo, -1, 0, 123, 0, 0)

	events, next, missed := j.Since(0, nil)
	if missed != 0 {
		t.Fatalf("missed = %d, want 0", missed)
	}
	if len(events) != 2 {
		t.Fatalf("len(events) = %d, want 2", len(events))
	}
	e := events[0]
	if e.Seq != 1 || e.Type != EvSetDown || e.Sev != SevWarn || e.Comp != CompHA ||
		e.Collector != 2 || e.Cause != cause || e.Arg1 != 7 {
		t.Fatalf("first event mangled: %+v", e)
	}
	if events[1].Collector != -1 {
		t.Fatalf("negative collector did not round-trip: %+v", events[1])
	}
	if events[1].WallNs == 0 {
		t.Fatal("wall clock not stamped")
	}

	// Nothing new: the cursor returns an empty delta.
	more, next2, missed := j.Since(next, nil)
	if len(more) != 0 || missed != 0 || next2 != next {
		t.Fatalf("empty delta came back non-empty: %d events, missed %d", len(more), missed)
	}

	// One more event: only it comes back.
	j.Publish(CompEngine, EvStallStart, SevWarn, 0, 0, 256, 0, 0)
	more, _, _ = j.Since(next, nil)
	if len(more) != 1 || more[0].Type != EvStallStart {
		t.Fatalf("cursor delta = %+v, want the one stall event", more)
	}
}

// TestNilSafety pins the telemetry-off mode: every method on a nil
// journal (and the zero Emitter) is a usable no-op.
func TestNilSafety(t *testing.T) {
	var j *Journal
	if seq := j.Publish(CompHA, EvSetDown, SevWarn, 0, 0, 0, 0, 0); seq != 0 {
		t.Fatalf("nil Publish returned %d", seq)
	}
	if j.NewCause() != 0 || j.LastSeq() != 0 || j.Dropped() != 0 || j.Cap() != 0 {
		t.Fatal("nil accessors not zero")
	}
	if events, next, missed := j.Since(0, nil); len(events) != 0 || next != 0 || missed != 0 {
		t.Fatal("nil Since not empty")
	}
	var e Emitter
	if seq := e.Emit(EvSetUp, SevInfo, 0, 0, 0, 0); seq != 0 {
		t.Fatalf("zero Emitter emitted seq %d", seq)
	}
	if err := j.DumpFile(filepath.Join(t.TempDir(), "events.jsonl")); err != nil {
		t.Fatalf("nil DumpFile: %v", err)
	}
}

// TestWrapAccounting pins overwrite behaviour: a reader whose cursor
// fell behind the ring gets the retained suffix plus an exact count of
// what was lost, and Dropped tracks the lifetime overwrite total.
func TestWrapAccounting(t *testing.T) {
	j := New(8)
	if j.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", j.Cap())
	}
	for i := 0; i < 20; i++ {
		j.Publish(CompHA, EvReadRepair, SevInfo, -1, 0, uint64(i), 0, 0)
	}
	events, next, missed := j.Since(0, nil)
	if missed != 12 {
		t.Fatalf("missed = %d, want 12", missed)
	}
	if j.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", j.Dropped())
	}
	if next != 20 {
		t.Fatalf("next = %d, want 20", next)
	}
	if len(events) != 8 {
		t.Fatalf("len(events) = %d, want 8 (ring capacity)", len(events))
	}
	for i, e := range events {
		if want := uint64(13 + i); e.Seq != want {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Arg1 != e.Seq-1 {
			t.Fatalf("events[%d] payload mismatch: seq %d arg %d", i, e.Seq, e.Arg1)
		}
	}
}

// TestCausalChain pins causal linkage: events published under one
// minted cause form a chain, in publish order, even when interleaved
// with unrelated events from other components.
func TestCausalChain(t *testing.T) {
	j := New(64)
	cause := j.NewCause()
	other := j.NewCause()
	if cause == other || cause == 0 {
		t.Fatalf("causes not distinct and non-zero: %d %d", cause, other)
	}
	j.Publish(CompHA, EvSetDown, SevWarn, 1, cause, 3, 0, 0)
	j.Publish(CompWAL, EvWALRotate, SevInfo, 0, other, 100, 0, 0)
	j.Publish(CompHA, EvWALFence, SevInfo, 1, cause, 42, 2, 0)
	j.Publish(CompHA, EvEpochBump, SevInfo, 1, cause, 4, 0, 0)
	j.Publish(CompHA, EvResyncEnd, SevInfo, 1, cause, 9, 0, 0)

	events, _, _ := j.Since(0, nil)
	var chain []Type
	for _, e := range events {
		if e.Cause == cause {
			chain = append(chain, e.Type)
		}
	}
	want := []Type{EvSetDown, EvWALFence, EvEpochBump, EvResyncEnd}
	if !reflect.DeepEqual(chain, want) {
		t.Fatalf("chain = %v, want %v", chain, want)
	}
}

// TestConcurrentPublishScrape exercises the seqlock under -race: many
// publishers racing a scraper must never yield a torn event, and the
// final accounting (events read + events missed) must cover every
// publish exactly.
func TestConcurrentPublishScrape(t *testing.T) {
	j := New(128) // small ring: force wraps under the publishers
	const publishers = 8
	const perPublisher = 2000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper: validity checked, results discarded
		defer wg.Done()
		var cursor uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			events, next, _ := j.Since(cursor, nil)
			for _, e := range events {
				if e.Type != EvReadRepair || e.Comp != CompHA {
					t.Errorf("torn event scraped: %+v", e)
					return
				}
			}
			cursor = next
		}
	}()
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				j.Publish(CompHA, EvReadRepair, SevInfo, int16(p), 0, uint64(i), 0, 0)
			}
		}(p)
	}
	for j.LastSeq() < publishers*perPublisher {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if got := j.LastSeq(); got != publishers*perPublisher {
		t.Fatalf("LastSeq = %d, want %d", got, publishers*perPublisher)
	}
	// Quiescent scrape: retained suffix + missed = everything.
	events, _, missed := j.Since(0, nil)
	if uint64(len(events))+missed != publishers*perPublisher {
		t.Fatalf("events %d + missed %d != published %d", len(events), missed, publishers*perPublisher)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("scrape not contiguous at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

// TestGate pins the rate limiter: one pass per gap, and concurrent
// callers never double-admit within a window.
func TestGate(t *testing.T) {
	var g Gate
	if !g.Allow(10 * time.Millisecond) {
		t.Fatal("first Allow refused")
	}
	if g.Allow(10 * time.Millisecond) {
		t.Fatal("second Allow inside the gap admitted")
	}
	time.Sleep(15 * time.Millisecond)
	if !g.Allow(10 * time.Millisecond) {
		t.Fatal("Allow after the gap refused")
	}

	var g2 Gate
	var admitted sync.Map
	var wg sync.WaitGroup
	n := 0
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if g2.Allow(time.Hour) {
				admitted.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	admitted.Range(func(_, _ any) bool { n++; return true })
	if n != 1 {
		t.Fatalf("%d goroutines admitted within one gap, want 1", n)
	}
}

// TestDumpRoundTrip pins the recovery dump: DumpFile then ReadDump
// yields the same records the live journal renders.
func TestDumpRoundTrip(t *testing.T) {
	j := New(64)
	cause := j.NewCause()
	j.Publish(CompWAL, EvRecoveryStart, SevInfo, -1, cause, 0, 0, 0)
	j.Publish(CompWAL, EvTornTail, SevWarn, -1, cause, 57, 0, 0)
	j.Publish(CompWAL, EvReplayExtent, SevInfo, -1, cause, 1000, 42, 0)

	path := filepath.Join(t.TempDir(), DumpFileName)
	if err := j.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	live, _, _ := j.Since(0, nil)
	want := make([]Record, 0, len(live))
	for i := range live {
		want = append(want, live[i].Record())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got[1].Type != "torn-tail" || got[1].Detail != "truncated=57B" || got[1].Cause != cause {
		t.Fatalf("rendered record wrong: %+v", got[1])
	}
}

// TestHTTPHandler pins the /debug/events contract: a well-formed
// payload, an honest since-cursor, and a 400 on garbage cursors.
func TestHTTPHandler(t *testing.T) {
	j := New(64)
	j.Publish(CompHA, EvSetDown, SevWarn, 0, j.NewCause(), 1, 0, 0)
	j.Publish(CompHA, EvSetUp, SevInfo, 0, 0, 2, 0, 0)
	h := Handler(j)

	get := func(url string) (eventsPayload, int) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		var p eventsPayload
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
				t.Fatalf("bad payload: %v\n%s", err, rec.Body.String())
			}
		}
		return p, rec.Code
	}

	p, code := get("/debug/events")
	if code != 200 || len(p.Events) != 2 || p.Last != 2 || p.Missed != 0 || p.Dropped != 0 {
		t.Fatalf("full scrape: code %d payload %+v", code, p)
	}
	if p.Events[0].Type != "set-down" || p.Events[0].Sev != "warn" || p.Events[0].Component != "ha" {
		t.Fatalf("rendered event wrong: %+v", p.Events[0])
	}

	p, code = get("/debug/events?since=2")
	if code != 200 || len(p.Events) != 0 || p.Last != 2 {
		t.Fatalf("caught-up cursor: code %d payload %+v", code, p)
	}

	j.Publish(CompHA, EvCheckpoint, SevInfo, 0, 0, 3, 0, 0)
	p, _ = get("/debug/events?since=2")
	if len(p.Events) != 1 || p.Events[0].Type != "checkpoint" || p.Last != 3 {
		t.Fatalf("cursor delta: %+v", p)
	}

	if _, code := get("/debug/events?since=banana"); code != 400 {
		t.Fatalf("bad cursor served %d, want 400", code)
	}

	// Nil journal: still well-formed.
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	var p0 eventsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &p0); err != nil || len(p0.Events) != 0 {
		t.Fatalf("nil journal payload: %v %+v", err, p0)
	}
}

// TestCollectorPacking pins the int16 collector label through the
// packed word: boundary values survive the round-trip.
func TestCollectorPacking(t *testing.T) {
	j := New(8)
	for _, c := range []int16{-1, 0, 1, 255, 256, 32767, -32768} {
		j.Publish(CompEngine, EvStallEnd, SevInfo, c, 0, 0, 0, 0)
		events, _, _ := j.Since(j.LastSeq()-1, nil)
		if len(events) != 1 || events[0].Collector != c {
			t.Fatalf("collector %d round-tripped as %+v", c, events)
		}
	}
}
