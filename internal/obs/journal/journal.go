// Package journal is the control-plane flight recorder: a bounded,
// lock-free MPMC ring of fixed-size structured events with causal
// linkage. Where internal/obs answers "how much / how fast" with
// counters and histograms, the journal answers "what happened, when,
// and why": failovers, resyncs, rebalances, WAL rotations, crash
// recoveries and queue-stall episodes each publish an event carrying a
// monotonic sequence number, wall time, severity, component, collector
// label and a causality ID, so a kill/restore run renders as one
// readable timeline instead of a pile of counter deltas.
//
// The publish path matches internal/obs's zero-overhead bar: no locks,
// no allocations, a handful of atomic stores into a pre-sized ring.
// Every method is nil-safe — with telemetry disabled the emitters hold
// a nil *Journal and a publish costs one branch.
//
// The ring overwrites: readers that fall more than Cap events behind
// lose the overwritten prefix, and Since reports exactly how many
// events were missed. Slots are seqlock-validated, so a reader
// concurrent with a wrapping writer skips the torn slot rather than
// observing a mixed event.
package journal

import (
	"sync/atomic"
	"time"
)

// DefaultSize is the ring capacity New(0) provides: large enough that a
// burst of rate-limited data-plane episodes cannot evict the
// control-plane chain (SetDown → Resync → Checkpoint) a post-mortem
// needs, small enough to be irrelevant next to the stores (8192 slots ×
// 64 B = 512 KiB).
const DefaultSize = 8192

// Event is one decoded flight-recorder entry. The stored form is six
// atomically-written words per slot; this struct is what readers get
// back out.
type Event struct {
	// Seq is the event's position in the journal's total order,
	// starting at 1. Gaps in a scrape mean the ring wrapped.
	Seq uint64
	// WallNs is the publish wall-clock time in Unix nanoseconds.
	WallNs int64
	// Cause links events of one causal chain: every event minted from
	// the same NewCause carries the same non-zero ID. 0 = standalone.
	Cause uint64
	// Arg1..Arg3 are type-specific payloads (LSNs, durations, counts);
	// see Detail for the per-type rendering.
	Arg1, Arg2, Arg3 uint64
	// Type says what happened, Sev how bad it is, Comp which subsystem
	// published it.
	Type Type
	Sev  Severity
	Comp Component
	// Collector is the cluster member the event concerns (-1 for
	// standalone systems or cluster-wide events).
	Collector int16
}

// slot is one ring cell: a seqlock mark plus the event's six packed
// words, all atomics so concurrent publish/scrape is race-clean. Padded
// to a cache line so neighbouring publishers don't false-share.
type slot struct {
	// mark is seq<<1 when the slot holds the complete event seq, and
	// odd (seq<<1|1) while a writer is mid-publish.
	mark atomic.Uint64
	w    [6]atomic.Uint64
	_    [8]byte
}

// Journal is the bounded MPMC event ring. All methods are safe for
// concurrent use and nil-safe.
type Journal struct {
	next   atomic.Uint64 // last sequence number issued
	causes atomic.Uint64 // last causality ID minted
	mask   uint64
	slots  []slot
}

// New builds a journal with the given ring capacity, rounded up to a
// power of two (size <= 0 means DefaultSize).
func New(size int) *Journal {
	if size <= 0 {
		size = DefaultSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Journal{slots: make([]slot, n), mask: uint64(n - 1)}
}

// NewCause mints a fresh causality ID. Events published with the same
// ID render as one chain. Nil-safe (returns 0, the "no cause" value).
func (j *Journal) NewCause() uint64 {
	if j == nil {
		return 0
	}
	return j.causes.Add(1)
}

// Publish appends one event and returns its sequence number. The path
// is allocation-free and lock-free: claim a sequence, mark the slot
// in-progress, store six words, mark it complete. On a nil journal it
// is a single branch and returns 0.
func (j *Journal) Publish(comp Component, typ Type, sev Severity, collector int16, cause uint64, a1, a2, a3 uint64) uint64 {
	if j == nil {
		return 0
	}
	seq := j.next.Add(1)
	sl := &j.slots[seq&j.mask]
	sl.mark.Store(seq<<1 | 1)
	sl.w[0].Store(uint64(time.Now().UnixNano()))
	sl.w[1].Store(cause)
	sl.w[2].Store(a1)
	sl.w[3].Store(a2)
	sl.w[4].Store(a3)
	sl.w[5].Store(uint64(typ) | uint64(sev)<<8 | uint64(comp)<<16 | uint64(uint16(collector))<<24)
	sl.mark.Store(seq << 1)
	return seq
}

// get copies the event stored under seq, seqlock-validated: false when
// the slot was overwritten by a later lap or is mid-publish.
func (j *Journal) get(seq uint64) (Event, bool) {
	sl := &j.slots[seq&j.mask]
	if sl.mark.Load() != seq<<1 {
		return Event{}, false
	}
	var w [6]uint64
	for i := range w {
		w[i] = sl.w[i].Load()
	}
	if sl.mark.Load() != seq<<1 {
		return Event{}, false
	}
	meta := w[5]
	return Event{
		Seq:       seq,
		WallNs:    int64(w[0]),
		Cause:     w[1],
		Arg1:      w[2],
		Arg2:      w[3],
		Arg3:      w[4],
		Type:      Type(meta),
		Sev:       Severity(meta >> 8),
		Comp:      Component(meta >> 16),
		Collector: int16(uint16(meta >> 24)),
	}, true
}

// LastSeq returns the newest sequence number issued (0 = empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	return j.next.Load()
}

// Dropped counts events overwritten by ring wrap — the journal's total
// publishes minus its capacity, never negative.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	if last, size := j.next.Load(), uint64(len(j.slots)); last > size {
		return last - size
	}
	return 0
}

// Cap returns the ring capacity in events.
func (j *Journal) Cap() int {
	if j == nil {
		return 0
	}
	return len(j.slots)
}

// Since returns the events published after cursor (a sequence number; 0
// means "from the beginning"), the cursor to pass next time, and how
// many requested events were missed because the ring overwrote them
// before this scrape. Events land in sequence order, appended to buf.
func (j *Journal) Since(cursor uint64, buf []Event) (events []Event, next uint64, missed uint64) {
	if j == nil {
		return buf, cursor, 0
	}
	last := j.next.Load()
	lo := cursor + 1
	if size := uint64(len(j.slots)); last > size && last-size+1 > lo {
		missed = last - size + 1 - lo
		lo = last - size + 1
	}
	events = buf
	for seq := lo; seq <= last; seq++ {
		if ev, ok := j.get(seq); ok {
			events = append(events, ev)
		} else {
			// Overwritten (or mid-write) between the Load and here.
			missed++
		}
	}
	return events, last, missed
}

// Emitter binds a journal to one publishing site: the component and
// collector label are fixed once, so call sites read as
// e.Emit(EvSetDown, SevWarn, cause, ...). The zero value (nil J) is a
// valid no-op emitter — telemetry-off systems thread it everywhere and
// every Emit costs one branch.
type Emitter struct {
	J         *Journal
	Comp      Component
	Collector int16
}

// Emit publishes one event under the emitter's component and collector.
func (e Emitter) Emit(typ Type, sev Severity, cause uint64, a1, a2, a3 uint64) uint64 {
	return e.J.Publish(e.Comp, typ, sev, e.Collector, cause, a1, a2, a3)
}

// NewCause mints a causality ID on the emitter's journal.
func (e Emitter) NewCause() uint64 { return e.J.NewCause() }

// Gate rate-limits event publication from high-frequency sites (e.g.
// read-repair during a verification sweep): Allow returns true at most
// once per minGap, atomically, so a burst publishes one representative
// event (callers pass the cumulative count as an argument) instead of
// flooding the ring and evicting the control-plane chain.
type Gate struct {
	last atomic.Int64
}

// Allow reports whether a publication may proceed now.
func (g *Gate) Allow(minGap time.Duration) bool {
	now := time.Now().UnixNano()
	last := g.last.Load()
	if now-last < int64(minGap) {
		return false
	}
	return g.last.CompareAndSwap(last, now)
}
