package journal

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Record is the rendered (JSON) form of an Event, shared by the
// /debug/events endpoint and the on-disk recovery dump so one decoder
// (and one pair of eyes) reads both.
type Record struct {
	Seq       uint64    `json:"seq"`
	Time      time.Time `json:"time"`
	Sev       string    `json:"sev"`
	Component string    `json:"component"`
	Collector int       `json:"collector"` // -1 = standalone / cluster-wide
	Cause     uint64    `json:"cause"`     // 0 = standalone event
	Type      string    `json:"type"`
	Detail    string    `json:"detail"`
	Args      [3]uint64 `json:"args"`
}

// Record renders the event.
func (ev *Event) Record() Record {
	return Record{
		Seq:       ev.Seq,
		Time:      time.Unix(0, ev.WallNs).UTC(),
		Sev:       ev.Sev.String(),
		Component: ev.Comp.String(),
		Collector: int(ev.Collector),
		Cause:     ev.Cause,
		Type:      ev.Type.String(),
		Detail:    ev.Detail(),
		Args:      [3]uint64{ev.Arg1, ev.Arg2, ev.Arg3},
	}
}

// eventsPayload is the /debug/events response envelope.
type eventsPayload struct {
	// Last is the newest sequence number in the journal; pass it back
	// as ?since= to receive only what happened after this scrape.
	Last uint64 `json:"last"`
	// Missed counts requested events the ring overwrote before this
	// scrape (the caller's cursor fell more than the ring capacity
	// behind); Dropped is the journal-lifetime overwrite total.
	Missed  uint64   `json:"missed"`
	Dropped uint64   `json:"dropped"`
	Events  []Record `json:"events"`
}

// Handler serves the journal as JSON. GET /debug/events returns every
// retained event; ?since=<seq> returns only events published after that
// sequence number (use the previous response's "last" as the cursor).
// Nil-safe: a nil journal serves an empty, well-formed payload.
func Handler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since cursor: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		events, last, missed := j.Since(since, nil)
		p := eventsPayload{Last: last, Missed: missed, Dropped: j.Dropped(), Events: make([]Record, 0, len(events))}
		for i := range events {
			p.Events = append(p.Events, events[i].Record())
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p)
	})
}

// Mount registers the journal's HTTP surface on an existing mux (the
// one obs.Mux built): the event timeline at /debug/events.
func Mount(mux *http.ServeMux, j *Journal) {
	mux.Handle("/debug/events", Handler(j))
}
