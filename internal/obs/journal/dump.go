package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

// DumpFileName is where System.Recover drops the journal inside the WAL
// directory, so the timeline of what recovery found and did survives
// the process for post-mortems (dtarecover -events reads it back).
const DumpFileName = "events.jsonl"

// DumpFile writes every retained event as JSON lines (one Record per
// line, oldest first). Nil-safe: a nil journal writes an empty file.
func (j *Journal) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	events, _, _ := j.Since(0, nil)
	for i := range events {
		if err := enc.Encode(events[i].Record()); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDump parses a DumpFile back into records.
func ReadDump(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []Record
	dec := json.NewDecoder(f)
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return recs, fmt.Errorf("journal: dump line %d: %w", len(recs)+1, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}
