package journal

import (
	"fmt"
	"syscall"
	"time"
)

// Severity grades an event's operational weight.
type Severity uint8

const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return fmt.Sprintf("sev(%d)", uint8(s))
}

// Component identifies the publishing subsystem.
type Component uint8

const (
	CompHA Component = iota
	CompWAL
	CompEngine
	CompTranslator
)

func (c Component) String() string {
	switch c {
	case CompHA:
		return "ha"
	case CompWAL:
		return "wal"
	case CompEngine:
		return "engine"
	case CompTranslator:
		return "translator"
	}
	return fmt.Sprintf("comp(%d)", uint8(c))
}

// Type enumerates what happened. Events are fixed-size, so the
// per-type payload rides in Arg1..Arg3 — Detail documents each layout
// by rendering it.
type Type uint8

const (
	// HA control plane. One SetDown mints a cause shared by its fence,
	// epoch bump, and the eventual SetUp/Resync/Checkpoint chain.
	EvSetDown      Type = iota + 1 // arg1 = epoch after the bump
	EvSetUp                        // arg1 = epoch after the bump
	EvWALFence                     // arg1 = downed collector's own durable LSN, arg2 = peer marks recorded
	EvEpochBump                    // arg1 = new epoch
	EvMemberAdd                    // arg1 = new cluster size, arg2 = epoch
	EvMemberRemove                 // arg1 = new cluster size, arg2 = epoch
	EvWeightChange                 // arg1 = weight ×1000, arg2 = epoch

	// Rebalance / resync.
	EvRebalanceStart // arg1 = stale targets
	EvRebalanceEnd   // arg1 = targets resynced, arg2 = duration ns
	EvResyncStart    // arg1 = staleness epoch, arg2 = peers
	EvResyncEnd      // arg1 = slots replayed, arg2 = slots skipped, arg3 = duration ns
	EvResyncFail     // arg1 = staleness epoch
	EvCheckpoint     // arg1 = checkpoint LSN

	// WAL lifecycle.
	EvWALRotate   // arg1 = first LSN of the new segment, arg2 = finalising fsync ns
	EvWALTruncate // arg1 = truncation LSN, arg2 = segments reclaimed
	EvWALError    // flusher entered sticky failure

	// Crash recovery.
	EvRecoveryStart // (no args)
	EvTornTail      // arg1 = torn bytes truncated
	EvReplayExtent  // arg1 = last LSN replayed, arg2 = records skipped (below checkpoint)

	// Read repair (rate-gated; one event represents a burst).
	EvReadRepair // arg1 = replicas repaired this event, arg2 = cumulative repairs

	// Engine queue-stall episodes (Block policy backpressure).
	EvStallStart // arg1 = shard queue capacity
	EvStallEnd   // arg1 = episode duration ns

	// Translator data-plane incidents (rate-gated).
	EvRateShed   // arg1 = cumulative rate-limit drops
	EvParseError // arg1 = cumulative parse errors

	// Chaos plane (injected faults and their recovery machinery). New
	// types append here so the enum values above stay stable across
	// scrapes of mixed-version journals.
	EvPartition       // arg1 = link (0 reporter→collector, 1 peer↔peer), arg2 = peer
	EvPartitionHeal   // arg1 = link, arg2 = peer
	EvSlowDisk        // arg1 = injected fsync latency ns (0 = healed)
	EvClockSkew       // arg1 = skew ns (two's complement)
	EvResyncRetry     // arg1 = attempt, arg2 = backoff ns
	EvWALDegradeEnter // arg1 = observed fsync ns, arg2 = bound ns
	EvWALDegradeExit  // arg1 = probe fsync ns, arg2 = acks skipped while degraded
)

func (t Type) String() string {
	switch t {
	case EvSetDown:
		return "set-down"
	case EvSetUp:
		return "set-up"
	case EvWALFence:
		return "wal-fence"
	case EvEpochBump:
		return "epoch-bump"
	case EvMemberAdd:
		return "member-add"
	case EvMemberRemove:
		return "member-remove"
	case EvWeightChange:
		return "weight-change"
	case EvRebalanceStart:
		return "rebalance-start"
	case EvRebalanceEnd:
		return "rebalance-end"
	case EvResyncStart:
		return "resync-start"
	case EvResyncEnd:
		return "resync-end"
	case EvResyncFail:
		return "resync-fail"
	case EvCheckpoint:
		return "checkpoint"
	case EvWALRotate:
		return "wal-rotate"
	case EvWALTruncate:
		return "wal-truncate"
	case EvWALError:
		return "wal-error"
	case EvRecoveryStart:
		return "recovery-start"
	case EvTornTail:
		return "torn-tail"
	case EvReplayExtent:
		return "replay-extent"
	case EvReadRepair:
		return "read-repair"
	case EvStallStart:
		return "stall-start"
	case EvStallEnd:
		return "stall-end"
	case EvRateShed:
		return "rate-shed"
	case EvParseError:
		return "parse-error"
	case EvPartition:
		return "partition"
	case EvPartitionHeal:
		return "partition-heal"
	case EvSlowDisk:
		return "slow-disk"
	case EvClockSkew:
		return "clock-skew"
	case EvResyncRetry:
		return "resync-retry"
	case EvWALDegradeEnter:
		return "wal-degrade-enter"
	case EvWALDegradeExit:
		return "wal-degrade-exit"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Detail renders the event's type-specific arguments for humans. The
// scrape/render side is the only place names and strings appear — the
// publish path stores enum codes and integers.
func (ev *Event) Detail() string {
	switch ev.Type {
	case EvSetDown, EvSetUp:
		return fmt.Sprintf("epoch=%d", ev.Arg1)
	case EvWALFence:
		return fmt.Sprintf("self-lsn=%d peer-marks=%d", ev.Arg1, ev.Arg2)
	case EvEpochBump:
		return fmt.Sprintf("epoch=%d", ev.Arg1)
	case EvMemberAdd, EvMemberRemove:
		return fmt.Sprintf("members=%d epoch=%d", ev.Arg1, ev.Arg2)
	case EvWeightChange:
		return fmt.Sprintf("weight=%.3f epoch=%d", float64(ev.Arg1)/1000, ev.Arg2)
	case EvRebalanceStart:
		return fmt.Sprintf("stale-targets=%d", ev.Arg1)
	case EvRebalanceEnd:
		return fmt.Sprintf("resynced=%d in %s", ev.Arg1, time.Duration(ev.Arg2))
	case EvResyncStart:
		return fmt.Sprintf("stale-since-epoch=%d peers=%d", ev.Arg1, ev.Arg2)
	case EvResyncEnd:
		return fmt.Sprintf("slots=%d skipped=%d in %s", ev.Arg1, ev.Arg2, time.Duration(ev.Arg3))
	case EvResyncFail:
		return fmt.Sprintf("stale-since-epoch=%d", ev.Arg1)
	case EvCheckpoint:
		return fmt.Sprintf("lsn=%d", ev.Arg1)
	case EvWALRotate:
		return fmt.Sprintf("new-segment-lsn=%d fsync=%s", ev.Arg1, time.Duration(ev.Arg2))
	case EvWALTruncate:
		return fmt.Sprintf("below-lsn=%d segments-reclaimed=%d", ev.Arg1, ev.Arg2)
	case EvWALError:
		if ev.Arg1 != 0 {
			return fmt.Sprintf("flusher failed (sticky): %s", syscall.Errno(ev.Arg1).Error())
		}
		return "flusher failed (sticky)"
	case EvRecoveryStart:
		return "replaying checkpoint + log"
	case EvTornTail:
		return fmt.Sprintf("truncated=%dB", ev.Arg1)
	case EvReplayExtent:
		return fmt.Sprintf("last-lsn=%d skipped=%d", ev.Arg1, ev.Arg2)
	case EvReadRepair:
		return fmt.Sprintf("repaired=%d cumulative=%d", ev.Arg1, ev.Arg2)
	case EvStallStart:
		return fmt.Sprintf("queue-cap=%d", ev.Arg1)
	case EvStallEnd:
		return fmt.Sprintf("blocked %s", time.Duration(ev.Arg1))
	case EvRateShed:
		return fmt.Sprintf("cumulative-drops=%d", ev.Arg1)
	case EvParseError:
		return fmt.Sprintf("cumulative-errors=%d", ev.Arg1)
	case EvPartition, EvPartitionHeal:
		if ev.Arg1 == 0 {
			return "link=reporter"
		}
		return fmt.Sprintf("link=peer peer=%d", ev.Arg2)
	case EvSlowDisk:
		if ev.Arg1 == 0 {
			return "fsync-latency=healed"
		}
		return fmt.Sprintf("fsync-latency=%s", time.Duration(ev.Arg1))
	case EvClockSkew:
		return fmt.Sprintf("skew=%s", time.Duration(int64(ev.Arg1)))
	case EvResyncRetry:
		return fmt.Sprintf("attempt=%d backoff=%s", ev.Arg1, time.Duration(ev.Arg2))
	case EvWALDegradeEnter:
		return fmt.Sprintf("fsync=%s bound=%s", time.Duration(ev.Arg1), time.Duration(ev.Arg2))
	case EvWALDegradeExit:
		return fmt.Sprintf("probe=%s skipped-acks=%d", time.Duration(ev.Arg1), ev.Arg2)
	}
	return fmt.Sprintf("args=%d,%d,%d", ev.Arg1, ev.Arg2, ev.Arg3)
}
