package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// HealthRule is one machine-evaluated SLO check over the registry:
// given the current snapshot, the delta since the previous evaluation
// and the interval between them, it returns a verdict with a
// human-readable reason. Rules are pure functions of the snapshots, so
// they compose freely and table-test trivially.
type HealthRule struct {
	Name string
	Eval func(cur, delta *Snapshot, elapsed time.Duration) RuleResult
}

// RuleResult is one rule's verdict.
type RuleResult struct {
	Name      string  `json:"name"`
	Healthy   bool    `json:"healthy"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Reason    string  `json:"reason"`
}

// HealthStatus is a full evaluation: the conjunction of every rule.
type HealthStatus struct {
	Healthy bool         `json:"healthy"`
	At      time.Time    `json:"at"`
	Window  string       `json:"window"` // interval the delta rules evaluated over
	Rules   []RuleResult `json:"rules"`
}

// HealthEvaluator runs a rule set against a registry, diffing
// consecutive snapshots so rate rules see interval deltas, not lifetime
// totals. The first evaluation's window is "since the evaluator was
// built". Safe for concurrent use; each Eval advances the window.
type HealthEvaluator struct {
	reg   *Registry
	rules []HealthRule

	mu     sync.Mutex
	prev   *Snapshot
	prevAt time.Time
}

// NewHealthEvaluator builds an evaluator; with no explicit rules it
// installs DefaultHealthRules over DefaultHealthThresholds. A nil
// registry (telemetry off) always evaluates healthy.
func NewHealthEvaluator(reg *Registry, rules ...HealthRule) *HealthEvaluator {
	if len(rules) == 0 {
		rules = DefaultHealthRules(DefaultHealthThresholds())
	}
	return &HealthEvaluator{reg: reg, rules: rules, prevAt: time.Now()}
}

// Eval snapshots the registry, runs every rule over the interval since
// the previous Eval, and returns the combined verdict. Nil-safe.
func (e *HealthEvaluator) Eval() HealthStatus {
	if e == nil || e.reg == nil {
		return HealthStatus{Healthy: true, At: time.Now()}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cur := e.reg.Snapshot()
	elapsed := cur.At.Sub(e.prevAt)
	if elapsed < time.Millisecond {
		elapsed = time.Millisecond // back-to-back evals: avoid rate blow-up
	}
	delta := cur.Delta(e.prev)
	st := HealthStatus{Healthy: true, At: cur.At, Window: elapsed.Round(time.Millisecond).String()}
	for _, r := range e.rules {
		res := r.Eval(cur, delta, elapsed)
		res.Name = r.Name
		if !res.Healthy {
			st.Healthy = false
		}
		st.Rules = append(st.Rules, res)
	}
	e.prev, e.prevAt = cur, cur.At
	return st
}

// HealthThresholds parameterises the default rule set. Zero-valued
// rates mean "any sustained occurrence is unhealthy" — drops and
// degraded writes indicate capacity or availability loss, so the
// default posture is strict. Ring stalls get an allowance: a saturated
// producer briefly outrunning the WAL flusher is ordinary backpressure,
// and only a sustained storm means the disk has fallen behind.
type HealthThresholds struct {
	// MaxDropRate bounds dropped reports/sec (engine backpressure drops
	// plus translator rate-limit drops).
	MaxDropRate float64
	// MaxRingStallRate bounds WAL ring-full producer stalls/sec (the
	// flusher, i.e. the disk, not keeping up).
	MaxRingStallRate float64
	// MaxDegradedRate bounds HA degraded+lost writes/sec (fan-outs that
	// missed at least one replica).
	MaxDegradedRate float64
	// MaxDownReplicas bounds collectors currently marked down.
	MaxDownReplicas float64
	// MaxFsyncP99 bounds the WAL fsync latency p99 over the window.
	MaxFsyncP99 time.Duration
}

// DefaultHealthThresholds is the strict default posture.
func DefaultHealthThresholds() HealthThresholds {
	return HealthThresholds{MaxRingStallRate: 1000, MaxFsyncP99: time.Second}
}

// sumCounters sums every series carrying one of the given names across
// all label sets (e.g. per-collector, per-shard).
func sumCounters(s *Snapshot, names ...string) float64 {
	var total float64
	for i := range s.Values {
		v := &s.Values[i]
		for _, n := range names {
			if v.Name == n {
				total += v.Value
				break
			}
		}
	}
	return total
}

// maxGauge returns the largest value among series with the given name
// (0 when absent — a subsystem that never registered is healthy).
func maxGauge(s *Snapshot, name string) float64 {
	var max float64
	for i := range s.Values {
		if v := &s.Values[i]; v.Name == name && v.Value > max {
			max = v.Value
		}
	}
	return max
}

// maxQuantile returns the largest q-quantile among histogram series
// with the given name that saw observations in the window.
func maxQuantile(s *Snapshot, name string, q float64) (worst float64, observed uint64) {
	for i := range s.Values {
		v := &s.Values[i]
		if v.Name != name || v.Count == 0 {
			continue
		}
		observed += v.Count
		if est := v.Quantile(q); est > worst {
			worst = est
		}
	}
	return worst, observed
}

// rateRule builds a "sum of these counters per second must stay under
// max" rule.
func rateRule(name, what, unit string, max float64, counters ...string) HealthRule {
	return HealthRule{Name: name, Eval: func(_, delta *Snapshot, elapsed time.Duration) RuleResult {
		n := sumCounters(delta, counters...)
		rate := n / elapsed.Seconds()
		res := RuleResult{Healthy: rate <= max, Value: rate, Threshold: max}
		if n == 0 {
			res.Reason = "no " + what + " in window"
		} else {
			res.Reason = fmt.Sprintf("%.0f %s (%.1f %s/s, max %.1f/s)", n, what, rate, unit, max)
		}
		return res
	}}
}

// DefaultHealthRules is the stock SLO set: ingest drops, WAL ring
// stalls, HA write degradation, down replicas, sticky WAL failure, and
// WAL fsync latency.
func DefaultHealthRules(t HealthThresholds) []HealthRule {
	return []HealthRule{
		rateRule("drop_rate", "dropped reports", "drops", t.MaxDropRate,
			"dta_engine_dropped_total", "dta_rate_dropped_total"),
		rateRule("wal_ring_stalls", "WAL ring stalls", "stalls", t.MaxRingStallRate,
			"dta_wal_ring_stalls_total"),
		rateRule("degraded_writes", "degraded/lost writes", "writes", t.MaxDegradedRate,
			"dta_ha_degraded_writes_total", "dta_ha_lost_writes_total"),
		{Name: "down_replicas", Eval: func(cur, _ *Snapshot, _ time.Duration) RuleResult {
			n := maxGauge(cur, "dta_ha_down_replicas")
			res := RuleResult{Healthy: n <= t.MaxDownReplicas, Value: n, Threshold: t.MaxDownReplicas}
			if n == 0 {
				res.Reason = "all replicas up"
			} else {
				res.Reason = fmt.Sprintf("%.0f collector(s) marked down", n)
			}
			return res
		}},
		{Name: "wal_failed", Eval: func(cur, _ *Snapshot, _ time.Duration) RuleResult {
			// dta_wal_failed_errno mirrors the writer's sticky failure:
			// one dead disk anywhere in the cluster flips health
			// immediately, instead of only failing later barriers.
			n := maxGauge(cur, "dta_wal_failed_errno")
			if n == 0 {
				// A healthy fleet may carry a negative sentinel nowhere;
				// also check the minimum for the -1 non-errno case.
				for i := range cur.Values {
					if v := &cur.Values[i]; v.Name == "dta_wal_failed_errno" && v.Value < 0 {
						n = v.Value
						break
					}
				}
			}
			res := RuleResult{Healthy: n == 0, Value: n}
			switch {
			case n == 0:
				res.Reason = "no sticky WAL failure"
			case n < 0:
				res.Reason = "WAL flusher failed (sticky): unknown error"
			default:
				res.Reason = fmt.Sprintf("WAL flusher failed (sticky): %s", syscall.Errno(int(n)).Error())
			}
			return res
		}},
		{Name: "fsync_p99", Eval: func(_, delta *Snapshot, _ time.Duration) RuleResult {
			maxNs := float64(t.MaxFsyncP99.Nanoseconds())
			p99, observed := maxQuantile(delta, "dta_wal_fsync_ns", 0.99)
			res := RuleResult{Healthy: p99 <= maxNs, Value: p99, Threshold: maxNs}
			if observed == 0 {
				res.Reason = "no fsyncs in window"
			} else {
				res.Reason = fmt.Sprintf("p99 ≈ %s over %d fsyncs (max %s)",
					time.Duration(p99).Round(time.Microsecond), observed, t.MaxFsyncP99)
			}
			return res
		}},
	}
}

// HealthHandler serves an evaluation as JSON: HTTP 200 when healthy,
// 503 when any rule fails, with per-rule reasons either way. Nil-safe
// (a nil evaluator always serves healthy).
func HealthHandler(e *HealthEvaluator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := e.Eval()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
}

// MountHealth registers the evaluator at /healthz on an existing mux.
func MountHealth(mux *http.ServeMux, e *HealthEvaluator) {
	mux.Handle("/healthz", HealthHandler(e))
}
