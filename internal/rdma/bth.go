// Package rdma implements the subset of RoCEv2 (RDMA over Converged
// Ethernet v2) that Direct Telemetry Access relies on: reliable-connection
// RDMA WRITE, FETCH&ADD, SEND, and their acknowledgements, together with
// registered memory regions, responder queue pairs with packet-sequence
// tracking, a connection-manager handshake, and a NIC performance model.
//
// The paper's translator crafts these packets inside a Tofino ASIC
// (§5.2); here the same byte layouts are produced and consumed in
// software. Deviations from the InfiniBand specification are intentional
// and documented: ICRC is computed as CRC-32C over the full BTH+payload
// (the spec masks some mutable fields), and only the packet types DTA
// uses are implemented.
package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sync/atomic"
)

// Port is the IANA UDP port for RoCEv2.
const Port = 4791

// Opcode is a BTH opcode. Values are the InfiniBand RC (reliable
// connection) opcodes.
type Opcode uint8

// The RC opcodes DTA uses.
const (
	OpSendOnly     Opcode = 0x04
	OpWriteOnly    Opcode = 0x0a
	OpWriteOnlyImm Opcode = 0x0b
	OpAcknowledge  Opcode = 0x11
	OpAtomicAck    Opcode = 0x12
	OpFetchAdd     Opcode = 0x14
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpSendOnly:
		return "SEND_ONLY"
	case OpWriteOnly:
		return "RDMA_WRITE_ONLY"
	case OpWriteOnlyImm:
		return "RDMA_WRITE_ONLY_WITH_IMMEDIATE"
	case OpAcknowledge:
		return "ACKNOWLEDGE"
	case OpAtomicAck:
		return "ATOMIC_ACKNOWLEDGE"
	case OpFetchAdd:
		return "FETCH_ADD"
	default:
		return fmt.Sprintf("Opcode(%#x)", uint8(o))
	}
}

// Errors returned by the decoders and the responder.
var (
	ErrTruncated   = errors.New("rdma: truncated packet")
	ErrBadICRC     = errors.New("rdma: ICRC mismatch")
	ErrBadOpcode   = errors.New("rdma: unsupported opcode")
	ErrUnknownQP   = errors.New("rdma: unknown destination QP")
	ErrAccessFault = errors.New("rdma: remote access fault")
)

// Header lengths.
const (
	BTHLen       = 12
	RETHLen      = 16
	AtomicETHLen = 28
	AETHLen      = 4
	ImmLen       = 4
	ICRCLen      = 4
	// AtomicAckETHLen carries the original value returned by FETCH&ADD.
	AtomicAckETHLen = 8
)

// BTH is the RoCE base transport header.
type BTH struct {
	Opcode Opcode
	PadCnt uint8
	PKey   uint16
	DestQP uint32 // 24 bits
	AckReq bool
	PSN    uint32 // 24 bits
}

func (h *BTH) serializeTo(b []byte) {
	b[0] = uint8(h.Opcode)
	b[1] = (h.PadCnt & 3) << 4 // SE/M=0, TVer=0
	binary.BigEndian.PutUint16(b[2:4], h.PKey)
	b[4] = 0 // reserved (FECN/BECN)
	b[5] = byte(h.DestQP >> 16)
	b[6] = byte(h.DestQP >> 8)
	b[7] = byte(h.DestQP)
	var ack byte
	if h.AckReq {
		ack = 0x80
	}
	b[8] = ack
	b[9] = byte(h.PSN >> 16)
	b[10] = byte(h.PSN >> 8)
	b[11] = byte(h.PSN)
}

func (h *BTH) decode(b []byte) error {
	if len(b) < BTHLen {
		return ErrTruncated
	}
	h.Opcode = Opcode(b[0])
	h.PadCnt = b[1] >> 4 & 3
	h.PKey = binary.BigEndian.Uint16(b[2:4])
	h.DestQP = uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7])
	h.AckReq = b[8]&0x80 != 0
	h.PSN = uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	return nil
}

// RETH is the RDMA extended transport header carried by WRITE requests.
type RETH struct {
	VA     uint64
	RKey   uint32
	Length uint32
}

func (h *RETH) serializeTo(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], h.RKey)
	binary.BigEndian.PutUint32(b[12:16], h.Length)
}

func (h *RETH) decode(b []byte) error {
	if len(b) < RETHLen {
		return ErrTruncated
	}
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = binary.BigEndian.Uint32(b[8:12])
	h.Length = binary.BigEndian.Uint32(b[12:16])
	return nil
}

// AtomicETH is the atomic extended transport header carried by FETCH&ADD.
// (Compare is unused by FETCH&ADD but part of the fixed layout.)
type AtomicETH struct {
	VA      uint64
	RKey    uint32
	AddData uint64
	Compare uint64
}

func (h *AtomicETH) serializeTo(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], h.VA)
	binary.BigEndian.PutUint32(b[8:12], h.RKey)
	binary.BigEndian.PutUint64(b[12:20], h.AddData)
	binary.BigEndian.PutUint64(b[20:28], h.Compare)
}

func (h *AtomicETH) decode(b []byte) error {
	if len(b) < AtomicETHLen {
		return ErrTruncated
	}
	h.VA = binary.BigEndian.Uint64(b[0:8])
	h.RKey = binary.BigEndian.Uint32(b[8:12])
	h.AddData = binary.BigEndian.Uint64(b[12:20])
	h.Compare = binary.BigEndian.Uint64(b[20:28])
	return nil
}

// AETH is the ACK extended transport header.
type AETH struct {
	Syndrome uint8
	MSN      uint32 // 24 bits
}

// AETH syndromes (simplified).
const (
	SynACK    = 0x00 // positive acknowledge
	SynNAKSeq = 0x60 // PSN sequence error: requester must resync
	SynNAKAcc = 0x63 // remote access error
)

func (h *AETH) serializeTo(b []byte) {
	b[0] = h.Syndrome
	b[1] = byte(h.MSN >> 16)
	b[2] = byte(h.MSN >> 8)
	b[3] = byte(h.MSN)
}

func (h *AETH) decode(b []byte) error {
	if len(b) < AETHLen {
		return ErrTruncated
	}
	h.Syndrome = b[0]
	h.MSN = uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	return nil
}

// Packet is a decoded RoCE packet (the portion after the UDP header).
type Packet struct {
	BTH       BTH
	RETH      RETH
	AtomicETH AtomicETH
	AETH      AETH
	Imm       uint32
	HasImm    bool
	// OrigValue is the pre-add value in an atomic acknowledge.
	OrigValue uint64
	// Payload aliases the input buffer for WRITE and SEND packets.
	Payload []byte
}

var icrcTable = crc32.MakeTable(crc32.Castagnoli)

// grow returns buf resized to n bytes, reusing its backing array when the
// capacity suffices. The builders below are called once per emitted RDMA
// message, so they must not allocate when handed an adequately sized
// caller-owned buffer; callers keep the returned slice to retain the
// capacity across calls.
func grow(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return append(buf[:0], make([]byte, n)...)
}

// stampICRC computes the (simplified) invariant CRC over b[:len(b)-4] and
// writes it into the trailing 4 bytes.
func stampICRC(b []byte) {
	body := b[:len(b)-ICRCLen]
	binary.BigEndian.PutUint32(b[len(b)-ICRCLen:], crc32.Checksum(body, icrcTable))
}

// checkICRC verifies and strips the trailing ICRC.
func checkICRC(b []byte) ([]byte, error) {
	if len(b) < ICRCLen {
		return nil, ErrTruncated
	}
	body, tail := b[:len(b)-ICRCLen], b[len(b)-ICRCLen:]
	want := binary.BigEndian.Uint32(tail)
	if crc32.Checksum(body, icrcTable) != want {
		return nil, ErrBadICRC
	}
	return body, nil
}

// BuildWrite serializes an RDMA WRITE-only request into buf and returns
// the packet. If imm is non-nil the WRITE carries immediate data, which
// raises a completion interrupt at the target host (DTA's immediate flag).
//
// The packet is crafted entirely inside buf's backing array when it fits
// (callers keep the returned slice so the capacity is reused); only an
// undersized buffer allocates.
func BuildWrite(buf []byte, destQP, psn uint32, va uint64, rkey uint32, payload []byte, ackReq bool, imm *uint32) []byte {
	bth := BTH{Opcode: OpWriteOnly, DestQP: destQP, AckReq: ackReq, PSN: psn}
	n := BTHLen + RETHLen + len(payload) + ICRCLen
	if imm != nil {
		bth.Opcode = OpWriteOnlyImm
		n += ImmLen
	}
	b := grow(buf, n)
	bth.serializeTo(b)
	reth := RETH{VA: va, RKey: rkey, Length: uint32(len(payload))}
	reth.serializeTo(b[BTHLen:])
	off := BTHLen + RETHLen
	if imm != nil {
		binary.BigEndian.PutUint32(b[off:], *imm)
		off += ImmLen
	}
	copy(b[off:], payload)
	stampICRC(b)
	return b
}

// CRC-32C is GF(2)-linear in the message for a fixed length:
// crc(m ⊕ d) = crc(m) ⊕ u(0, d), where u is the raw (init-0, no final
// inversion) table update. RepatchPSNVA exploits this to maintain the
// ICRC incrementally: it only ever flips bytes 9..19 (PSN + VA) of the
// body, so d is zero outside that window and u(0, d) reduces to the raw
// CRC of the 11 diff bytes advanced through the unchanged tail — and
// advancing a CRC state through n ZERO bytes is itself a linear map,
// applied in O(log n) via precomputed powers of the one-zero-byte step
// matrix instead of re-hashing the whole packet per replica.

// icrcShift[k] is the one-zero-byte CRC step composed 2^k times, as a
// GF(2) matrix over the 32-bit state (column i = image of bit i). 22
// powers cover tails up to 4 MiB, far beyond any packet.
var icrcShift [22][32]uint32

func init() {
	for i := 0; i < 32; i++ {
		s := uint32(1) << i
		icrcShift[0][i] = icrcTable[s&0xff] ^ s>>8
	}
	for k := 1; k < len(icrcShift); k++ {
		for i := 0; i < 32; i++ {
			icrcShift[k][i] = icrcMatVec(&icrcShift[k-1], icrcShift[k-1][i])
		}
	}
}

func icrcMatVec(m *[32]uint32, v uint32) uint32 {
	var r uint32
	for v != 0 {
		r ^= m[bits.TrailingZeros32(v)]
		v &= v - 1
	}
	return r
}

// icrcZeroShift advances a raw CRC state through n zero bytes.
func icrcZeroShift(s uint32, n int) uint32 {
	for k := 0; n > 0 && k < len(icrcShift); k, n = k+1, n>>1 {
		if n&1 == 1 {
			s = icrcMatVec(&icrcShift[k], s)
		}
	}
	return s
}

// tailEntry is the per-packet-length patch operator: tab[j][b] is the
// ICRC contribution of XORing byte value b into body position 9+j (the
// j'th byte of the PSN/VA window) — the raw single-byte CRC advanced
// through the bytes remaining to the packet's end. CRC linearity makes
// the total correction the XOR of one lookup per window byte, with no
// serial dependency between them. Entries are cached per tail length in
// a small direct-mapped array: a translator repatches same-geometry
// packets millions of times, so each distinct length is built once and
// then hit forever.
type tailEntry struct {
	n   int
	tab [repatchRegion - 9][256]uint32
}

var tailEntries [64]atomic.Pointer[tailEntry]

func tailOp(n int) *tailEntry {
	slot := &tailEntries[n&(len(tailEntries)-1)]
	if e := slot.Load(); e != nil && e.n == n {
		return e
	}
	e := &tailEntry{n: n}
	for j := range e.tab {
		dist := len(e.tab) - 1 - j + n // zero bytes between window byte j and the body end
		// Column form of the dist-byte shift, expanded to a byte table.
		var m [32]uint32
		for i := range m {
			m[i] = icrcZeroShift(1<<i, dist)
		}
		for v := 0; v < 256; v++ {
			e.tab[j][v] = icrcMatVec(&m, icrcTable[v])
		}
	}
	slot.Store(e) // racing builders converge on identical entries
	return e
}

func (e *tailEntry) apply(diff *[repatchRegion - 9]byte) uint32 {
	var d uint32
	for j, b := range diff {
		d ^= e.tab[j][b]
	}
	return d
}

// repatchRegion spans the bytes RepatchPSNVA may change: BTH PSN
// (bytes 9..11) then the leading 8 VA bytes of RETH/AtomicETH.
const repatchRegion = BTHLen + 8

// RepatchPSNVA rewrites the PSN and the remote virtual address of a
// previously built WRITE or FETCH&ADD request in place and patches the
// trailing ICRC incrementally (CRC-combining only the changed bytes —
// see icrcShift — rather than re-hashing the whole packet). Multicast
// redundancy (Key-Write/Key-Increment fan-out, §5.2) emits N
// near-identical packets that differ only in these two fields, so the
// translator crafts the headers and payload once and patches per
// replica instead of rebuilding.
func RepatchPSNVA(pkt []byte, psn uint32, va uint64) {
	var diff [repatchRegion - 9]byte
	diff[0] = pkt[9] ^ byte(psn>>16)
	diff[1] = pkt[10] ^ byte(psn>>8)
	diff[2] = pkt[11] ^ byte(psn)
	pkt[9] = byte(psn >> 16)
	pkt[10] = byte(psn >> 8)
	pkt[11] = byte(psn)
	// RETH and AtomicETH both lead with the 8-byte VA right after BTH.
	old := binary.BigEndian.Uint64(pkt[BTHLen:])
	binary.BigEndian.PutUint64(diff[3:], old^va)
	binary.BigEndian.PutUint64(pkt[BTHLen:], va)
	d := tailOp(len(pkt) - ICRCLen - repatchRegion).apply(&diff)
	tail := pkt[len(pkt)-ICRCLen:]
	binary.BigEndian.PutUint32(tail, binary.BigEndian.Uint32(tail)^d)
}

// BuildFetchAdd serializes an RDMA FETCH&ADD request into buf. Like
// BuildWrite it reuses buf's backing array when it fits.
func BuildFetchAdd(buf []byte, destQP, psn uint32, va uint64, rkey uint32, add uint64) []byte {
	bth := BTH{Opcode: OpFetchAdd, DestQP: destQP, AckReq: true, PSN: psn}
	b := grow(buf, BTHLen+AtomicETHLen+ICRCLen)
	bth.serializeTo(b)
	aeth := AtomicETH{VA: va, RKey: rkey, AddData: add}
	aeth.serializeTo(b[BTHLen:])
	stampICRC(b)
	return b
}

// BuildSend serializes a SEND-only packet (used by the collector to
// advertise primitive metadata to the translator, §5.3).
func BuildSend(buf []byte, destQP, psn uint32, payload []byte) []byte {
	bth := BTH{Opcode: OpSendOnly, DestQP: destQP, AckReq: true, PSN: psn}
	b := grow(buf, BTHLen+len(payload)+ICRCLen)
	bth.serializeTo(b)
	copy(b[BTHLen:], payload)
	stampICRC(b)
	return b
}

// BuildAck serializes an acknowledge with the given syndrome into buf,
// reusing its backing array when it fits. For atomic acknowledges
// origValue carries the pre-add value.
func BuildAck(buf []byte, destQP, psn uint32, syndrome uint8, msn uint32, atomic bool, origValue uint64) []byte {
	op := OpAcknowledge
	if atomic {
		op = OpAtomicAck
	}
	bth := BTH{Opcode: op, DestQP: destQP, PSN: psn}
	n := BTHLen + AETHLen + ICRCLen
	if atomic {
		n += AtomicAckETHLen
	}
	b := grow(buf, n)
	bth.serializeTo(b)
	a := AETH{Syndrome: syndrome, MSN: msn}
	a.serializeTo(b[BTHLen:])
	if atomic {
		binary.BigEndian.PutUint64(b[BTHLen+AETHLen:], origValue)
	}
	stampICRC(b)
	return b
}

// DecodePacket parses a RoCE packet, verifying the ICRC.
func DecodePacket(b []byte, p *Packet) error {
	body, err := checkICRC(b)
	if err != nil {
		return err
	}
	if err := p.BTH.decode(body); err != nil {
		return err
	}
	rest := body[BTHLen:]
	p.HasImm = false
	p.Payload = nil
	switch p.BTH.Opcode {
	case OpWriteOnly, OpWriteOnlyImm:
		if err := p.RETH.decode(rest); err != nil {
			return err
		}
		rest = rest[RETHLen:]
		if p.BTH.Opcode == OpWriteOnlyImm {
			if len(rest) < ImmLen {
				return ErrTruncated
			}
			p.Imm = binary.BigEndian.Uint32(rest)
			p.HasImm = true
			rest = rest[ImmLen:]
		}
		if uint32(len(rest)) != p.RETH.Length {
			return fmt.Errorf("rdma: WRITE payload %dB, RETH length %d", len(rest), p.RETH.Length)
		}
		p.Payload = rest
	case OpFetchAdd:
		if err := p.AtomicETH.decode(rest); err != nil {
			return err
		}
	case OpSendOnly:
		p.Payload = rest
	case OpAcknowledge, OpAtomicAck:
		if err := p.AETH.decode(rest); err != nil {
			return err
		}
		if p.BTH.Opcode == OpAtomicAck {
			rest = rest[AETHLen:]
			if len(rest) < AtomicAckETHLen {
				return ErrTruncated
			}
			p.OrigValue = binary.BigEndian.Uint64(rest)
		}
	default:
		return ErrBadOpcode
	}
	return nil
}
