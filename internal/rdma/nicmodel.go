package rdma

import "math"

// NICModel projects the throughput of an RDMA NIC from first principles:
// a message-rate ceiling (the bottleneck the paper measures, §6.7/§7) and
// a line-rate ceiling determined by on-wire packet size. It also models
// the throughput collapse when many queue pairs are active, the effect
// (up to 5×, per FaRM [15]) that motivates DTA's translator design: many
// reporter switches funnel into few translator-owned connections.
type NICModel struct {
	// MessageRatePerSec is the peak verbs rate with few queue pairs.
	MessageRatePerSec float64
	// LineRateBitsPerSec is the port speed.
	LineRateBitsPerSec float64
	// QPKnee is the number of active QPs the NIC caches comfortably;
	// beyond it throughput degrades logarithmically to MaxQPPenalty.
	QPKnee int
	// MaxQPPenalty is the worst-case slowdown factor with very many QPs.
	MaxQPPenalty float64
	// Ports is the number of NICs in a multi-NIC collector (§7).
	Ports int
}

// BlueField2 models the paper testbed's 100 GbE NVIDIA BlueField-2 DPU.
// The message rate is calibrated so a non-batched 4 B Append sustains
// ~100 M reports/s and batches of 16 reach ~1.2 B reports/s (Fig. 15),
// and Key-Write with N=1 collects ~100–105 M reports/s (Fig. 10).
func BlueField2() NICModel {
	return NICModel{
		MessageRatePerSec:  105e6,
		LineRateBitsPerSec: 100e9,
		QPKnee:             32,
		MaxQPPenalty:       5,
		Ports:              1,
	}
}

// WireOverhead is the per-packet on-wire overhead of a RoCEv2 WRITE:
// preamble+SFD (8) + Ethernet (14) + IPv4 (20) + UDP (8) + BTH (12) +
// RETH (16) + ICRC (4) + FCS (4) + inter-frame gap (12).
const WireOverhead = 98

// MinFrameOnWire is the smallest legal on-wire occupancy of one frame
// (64 B frame + preamble + IFG).
const MinFrameOnWire = 84

// qpFactor returns the multiplicative throughput factor for n active QPs.
func (m NICModel) qpFactor(n int) float64 {
	if n <= m.QPKnee || m.QPKnee <= 0 {
		return 1
	}
	// Log-linear decay: each doubling past the knee costs a fixed share,
	// floored at 1/MaxQPPenalty.
	doublings := math.Log2(float64(n) / float64(m.QPKnee))
	f := 1 / (1 + doublings*(m.MaxQPPenalty-1)/6)
	floor := 1 / m.MaxQPPenalty
	if f < floor {
		f = floor
	}
	return f
}

// MessagesPerSec projects the sustainable verbs rate for packets with the
// given RDMA payload size, with qps active queue pairs.
func (m NICModel) MessagesPerSec(payloadBytes, qps int) float64 {
	onWire := float64(WireOverhead + payloadBytes)
	if onWire < MinFrameOnWire {
		onWire = MinFrameOnWire
	}
	lineRate := m.LineRateBitsPerSec / 8 / onWire
	msgRate := m.MessageRatePerSec * m.qpFactor(qps)
	rate := math.Min(lineRate, msgRate)
	ports := m.Ports
	if ports < 1 {
		ports = 1
	}
	return rate * float64(ports)
}

// ReportsPerSec projects telemetry collection throughput when each DTA
// report costs msgsPerReport verbs (Key-Write redundancy N) and each verb
// carries reportsPerMsg reports (Append batching, Postcarding chunks).
// Exactly one of the two is normally >1.
func (m NICModel) ReportsPerSec(payloadBytes int, msgsPerReport float64, reportsPerMsg float64, qps int) float64 {
	if msgsPerReport <= 0 {
		msgsPerReport = 1
	}
	if reportsPerMsg <= 0 {
		reportsPerMsg = 1
	}
	return m.MessagesPerSec(payloadBytes, qps) / msgsPerReport * reportsPerMsg
}
