package rdma

import "testing"

// Fuzz targets for the RoCEv2 decoder and the responder state machine.

func FuzzDecodePacket(f *testing.F) {
	imm := uint32(9)
	f.Add(BuildWrite(nil, 1, 2, 0x10000000, 3, []byte{1, 2, 3, 4}, true, nil))
	f.Add(BuildWrite(nil, 1, 2, 0x10000000, 3, []byte{1}, false, &imm))
	f.Add(BuildFetchAdd(nil, 1, 2, 0x10000000, 3, 42))
	f.Add(BuildSend(nil, 1, 2, []byte("metadata")))
	f.Add(BuildAck(nil, 1, 2, SynACK, 0, false, 0))
	f.Add(BuildAck(nil, 1, 2, SynACK, 0, true, 77))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Packet
		_ = DecodePacket(data, &p) // must never panic
	})
}

func FuzzDeviceProcess(f *testing.F) {
	f.Add(BuildWrite(nil, 0x11, 0, 0x10000000, 0x1000, []byte{1, 2, 3, 4}, true, nil))
	f.Add(BuildFetchAdd(nil, 0x11, 0, 0x10000000, 0x1000, 5))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDevice()
		mr := d.RegisterMemory(256)
		qp := d.CreateQP(0)
		_, _, _ = d.Process(data, nil) // arbitrary bytes: no panic
		// The device must stay usable afterwards.
		pkt := BuildWrite(nil, qp.QPN, qp.EPSN, mr.Base, mr.RKey, []byte{9}, true, nil)
		ack, _, err := d.Process(pkt, nil)
		if err != nil || ack == nil {
			t.Fatalf("device wedged after fuzz input: %v", err)
		}
		if mr.Buf[0] != 9 {
			t.Fatal("write lost after fuzz input")
		}
	})
}

func FuzzUnmarshalReply(f *testing.F) {
	f.Add(MarshalReply(&ConnectReply{
		ResponderQPN: 1, StartPSN: 2,
		Regions: []RegionInfo{{Label: "keywrite", RKey: 3, VA: 4, Length: 5, Slots: 6, SlotSize: 8}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := UnmarshalReply(data)
		if err != nil {
			return
		}
		// Whatever parses must survive a marshal/unmarshal round trip.
		again, err := UnmarshalReply(MarshalReply(rep))
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if len(again.Regions) != len(rep.Regions) {
			t.Fatal("regions changed across round trip")
		}
	})
}
