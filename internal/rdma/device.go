package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"

	"dta/internal/costmodel"
)

// CacheLine is the DMA write granularity used for memory-instruction
// accounting: one memory instruction per cache line touched, which is how
// the paper arrives at Fig. 8's 2.00 / 0.40 / 0.06 instructions per
// report.
const CacheLine = 64

// MemoryRegion is a registered, remotely accessible buffer. DTA registers
// one region per primitive store (the paper allocates them on 1 GB huge
// pages; here they are ordinary slices).
type MemoryRegion struct {
	Base uint64 // starting virtual address as seen by remote peers
	RKey uint32
	Buf  []byte
}

// contains translates a remote (va, length) pair into an offset.
func (m *MemoryRegion) contains(va uint64, length int) (int, error) {
	if va < m.Base {
		return 0, ErrAccessFault
	}
	off := va - m.Base
	if off+uint64(length) > uint64(len(m.Buf)) {
		return 0, ErrAccessFault
	}
	return int(off), nil
}

// ResponderQP is the target-side state of a reliable connection: the
// expected PSN and the message sequence number used in acknowledgements.
type ResponderQP struct {
	QPN  uint32
	EPSN uint32 // next expected PSN (24-bit space)
	MSN  uint32
	// lastAtomicOrig caches the last atomic result so a duplicate
	// FETCH&ADD is answered from cache instead of re-executed.
	lastAtomicPSN  uint32
	lastAtomicOrig uint64
	hasAtomicCache bool
}

const psnMask = 1<<24 - 1

// psnDelta computes the signed distance a-b in 24-bit PSN space.
func psnDelta(a, b uint32) int32 {
	d := (a - b) & psnMask
	if d >= 1<<23 {
		return int32(d) - 1<<24
	}
	return int32(d)
}

// Device is an RDMA NIC target: it owns registered memory regions and
// responder queue pairs and executes incoming verbs against memory. It is
// the collector-side endpoint of DTA; its CPU never sees the packets.
//
// Concurrency contract: the data path (Process) is single-threaded, like
// the modelled NIC pipeline — callers serialise packet processing per
// device (the ingest engine does this by dedicating one worker goroutine
// per collector). Setup calls (RegisterMemory, CreateQP) take the
// device mutex but must complete before traffic starts; statistics
// readers must quiesce the data path first (Drain/Close), as the dta
// package documents.
type Device struct {
	mu      sync.Mutex
	regions map[uint32]*MemoryRegion
	qps     map[uint32]*ResponderQP
	nextVA  uint64
	nextKey uint32
	nextQPN uint32

	// qpCache/regCache are one-entry context caches, mirroring the QP
	// and MR context caches real NICs keep on-die. DTA traffic is
	// extremely cache-friendly here: one translator connection and one
	// region per primitive, so the map lookups almost always short-cut.
	qpCache  *ResponderQP
	regCache *MemoryRegion

	// Mem counts memory instructions issued by the DMA engine,
	// reproducing the accounting of Fig. 8.
	Mem costmodel.MemInstructions

	// Stats counts processed operations by type.
	Stats DeviceStats
}

// DeviceStats counts the operations a Device has executed.
type DeviceStats struct {
	Writes     uint64
	FetchAdds  uint64
	Sends      uint64
	Duplicates uint64
	SeqErrors  uint64
	AccessErrs uint64
}

// NewDevice returns an empty Device.
func NewDevice() *Device {
	return &Device{
		regions: make(map[uint32]*MemoryRegion),
		qps:     make(map[uint32]*ResponderQP),
		nextVA:  0x10000000, // arbitrary non-zero base
		nextKey: 0x1000,
		nextQPN: 0x11,
	}
}

// RegisterMemory allocates and registers a region of the given size.
func (d *Device) RegisterMemory(size int) *MemoryRegion {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := &MemoryRegion{Base: d.nextVA, RKey: d.nextKey, Buf: make([]byte, size)}
	d.regions[m.RKey] = m
	// Leave an unmapped guard gap between regions so off-by-one
	// addressing faults instead of corrupting a neighbour.
	d.nextVA += uint64(size) + 1<<20
	d.nextKey++
	return m
}

// CreateQP allocates a responder queue pair starting at PSN startPSN.
func (d *Device) CreateQP(startPSN uint32) *ResponderQP {
	d.mu.Lock()
	defer d.mu.Unlock()
	qp := &ResponderQP{QPN: d.nextQPN, EPSN: startPSN & psnMask}
	d.qps[qp.QPN] = qp
	d.nextQPN++
	return qp
}

// Region looks up a registered region by rkey.
func (d *Device) Region(rkey uint32) (*MemoryRegion, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.regions[rkey]
	return m, ok
}

// ImmediateEvent is the completion notification raised by a WRITE with
// immediate data; DTA uses it for push notifications (§7).
type ImmediateEvent struct {
	QPN uint32
	Imm uint32
}

// Process executes one incoming RoCE packet against the device and
// returns the serialized acknowledgement (nil if the packet does not
// elicit one). If the packet carried immediate data, ev describes the
// interrupt the host would receive.
func (d *Device) Process(pkt []byte, ackBuf []byte) (ack []byte, ev *ImmediateEvent, err error) {
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		return nil, nil, err
	}
	// No lock: Process is serialised per device by contract (see the
	// Device doc comment); taking the mutex per packet cost ~17% of the
	// whole ingest path.
	qp := d.qpCache
	if qp == nil || qp.QPN != p.BTH.DestQP {
		var ok bool
		qp, ok = d.qps[p.BTH.DestQP]
		if !ok {
			return nil, nil, ErrUnknownQP
		}
		d.qpCache = qp
	}

	delta := psnDelta(p.BTH.PSN, qp.EPSN)
	switch {
	case delta > 0:
		// Out-of-order: a preceding packet was lost. NAK with the
		// expected PSN so the requester resynchronises (§5.2 "queue-pair
		// resynchronization").
		d.Stats.SeqErrors++
		return BuildAck(ackBuf, qp.QPN, qp.EPSN, SynNAKSeq, qp.MSN, false, 0), nil, nil
	case delta < 0:
		// Duplicate of an already-executed packet.
		d.Stats.Duplicates++
		if p.BTH.Opcode == OpFetchAdd {
			if qp.hasAtomicCache && qp.lastAtomicPSN == p.BTH.PSN {
				return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynACK, qp.MSN, true, qp.lastAtomicOrig), nil, nil
			}
			// Uncached duplicate atomics cannot be safely re-executed.
			return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynNAKSeq, qp.MSN, false, 0), nil, nil
		}
		// Duplicate WRITEs are idempotent: re-ACK without re-executing.
		return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynACK, qp.MSN, false, 0), nil, nil
	}

	// In-sequence: execute.
	switch p.BTH.Opcode {
	case OpWriteOnly, OpWriteOnlyImm:
		if err := d.execWrite(&p); err != nil {
			d.Stats.AccessErrs++
			return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynNAKAcc, qp.MSN, false, 0), nil, nil
		}
		d.Stats.Writes++
		qp.advance()
		if p.HasImm {
			ev = &ImmediateEvent{QPN: qp.QPN, Imm: p.Imm}
		}
		if p.BTH.AckReq || p.HasImm {
			return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynACK, qp.MSN, false, 0), ev, nil
		}
		return nil, ev, nil
	case OpFetchAdd:
		orig, err := d.execFetchAdd(&p)
		if err != nil {
			d.Stats.AccessErrs++
			return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynNAKAcc, qp.MSN, false, 0), nil, nil
		}
		d.Stats.FetchAdds++
		qp.lastAtomicPSN = p.BTH.PSN
		qp.lastAtomicOrig = orig
		qp.hasAtomicCache = true
		qp.advance()
		return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynACK, qp.MSN, true, orig), nil, nil
	case OpSendOnly:
		d.Stats.Sends++
		qp.advance()
		return BuildAck(ackBuf, qp.QPN, p.BTH.PSN, SynACK, qp.MSN, false, 0), nil, nil
	default:
		return nil, nil, ErrBadOpcode
	}
}

func (qp *ResponderQP) advance() {
	qp.EPSN = (qp.EPSN + 1) & psnMask
	qp.MSN = (qp.MSN + 1) & psnMask
}

// region resolves an rkey through the MR context cache.
func (d *Device) region(rkey uint32) (*MemoryRegion, bool) {
	if m := d.regCache; m != nil && m.RKey == rkey {
		return m, true
	}
	m, ok := d.regions[rkey]
	if ok {
		d.regCache = m
	}
	return m, ok
}

func (d *Device) execWrite(p *Packet) error {
	m, ok := d.region(p.RETH.RKey)
	if !ok {
		return ErrAccessFault
	}
	off, err := m.contains(p.RETH.VA, len(p.Payload))
	if err != nil {
		return err
	}
	copy(m.Buf[off:], p.Payload)
	// One memory instruction per cache line touched by the DMA write.
	lines := uint64((len(p.Payload) + CacheLine - 1) / CacheLine)
	if lines == 0 {
		lines = 1
	}
	d.Mem.Add(lines, 0) // reports are attributed by the caller
	return nil
}

func (d *Device) execFetchAdd(p *Packet) (uint64, error) {
	m, ok := d.region(p.AtomicETH.RKey)
	if !ok {
		return 0, ErrAccessFault
	}
	if p.AtomicETH.VA%8 != 0 {
		return 0, fmt.Errorf("rdma: unaligned atomic VA %#x: %w", p.AtomicETH.VA, ErrAccessFault)
	}
	off, err := m.contains(p.AtomicETH.VA, 8)
	if err != nil {
		return 0, err
	}
	orig := binary.BigEndian.Uint64(m.Buf[off : off+8])
	binary.BigEndian.PutUint64(m.Buf[off:off+8], orig+p.AtomicETH.AddData)
	// Read-modify-write: two memory instructions.
	d.Mem.Add(2, 0)
	return orig, nil
}

// AttributeReports credits n telemetry reports to the device's
// memory-instruction counter (writes were already counted as they
// executed). The translator calls this once per DTA report so that
// Mem.PerReport() yields Fig. 8's metric.
func (d *Device) AttributeReports(n uint64) {
	d.mu.Lock()
	d.Mem.Add(0, n)
	d.mu.Unlock()
}

// Requester is the initiator-side PSN tracker the translator keeps per
// connection (the "PSN Tracker" stage of Fig. 6).
type Requester struct {
	DestQP uint32
	NPSN   uint32 // next PSN to stamp
	// Resyncs counts NAK-triggered resynchronisations.
	Resyncs uint64
	// Acked is the PSN after the highest cumulative acknowledgement.
	Acked uint32
	// OnResync, when set, fires on every NAK-sequence resynchronisation
	// — the trace pipeline uses it to tail-retain the report that was
	// in flight when the connection rolled back.
	OnResync func()
}

// NextPSN stamps and consumes the next PSN.
func (r *Requester) NextPSN() uint32 {
	psn := r.NPSN
	r.NPSN = (r.NPSN + 1) & psnMask
	return psn
}

// HandleAck processes an acknowledgement packet. On a NAK-sequence the
// requester rolls its next PSN back to the responder's expected PSN,
// resynchronising the connection.
func (r *Requester) HandleAck(p *Packet) {
	switch p.AETH.Syndrome {
	case SynACK:
		r.Acked = (p.BTH.PSN + 1) & psnMask
	case SynNAKSeq:
		r.NPSN = p.BTH.PSN
		r.Resyncs++
		if r.OnResync != nil {
			r.OnResync()
		}
	}
}
