package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The RDMA connection manager (RDMA_CM) exchange. In the paper the
// translator's control program crafts CM packets on the switch CPU and
// injects them into the ASIC (§5.2); the collector answers and advertises
// the memory geometry of each primitive store over RDMA SEND (§5.3).
// Here the same exchange is carried as serialized messages.

// RegionInfo advertises one primitive store: where it lives and how it is
// laid out. Slots and SlotSize let the translator compute slot addresses
// with shifts, mirroring the power-of-two constraint of §5.2.
type RegionInfo struct {
	Label    string // e.g. "keywrite", "append:7"
	RKey     uint32
	VA       uint64
	Length   uint64
	Slots    uint64
	SlotSize uint32
}

// ConnectRequest asks a device for a reliable connection.
type ConnectRequest struct {
	InitiatorQPN uint32
	StartPSN     uint32
}

// ConnectReply carries the responder QP and the advertised regions.
type ConnectReply struct {
	ResponderQPN uint32
	StartPSN     uint32
	Regions      []RegionInfo
}

// ErrBadCM reports a malformed CM message.
var ErrBadCM = errors.New("rdma: malformed CM message")

// MarshalReply serializes a ConnectReply.
func MarshalReply(r *ConnectReply) []byte {
	size := 12
	for _, g := range r.Regions {
		size += 1 + len(g.Label) + 4 + 8 + 8 + 8 + 4
	}
	b := make([]byte, 0, size)
	var tmp [8]byte
	binary.BigEndian.PutUint32(tmp[:4], r.ResponderQPN)
	b = append(b, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], r.StartPSN)
	b = append(b, tmp[:4]...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(r.Regions)))
	b = append(b, tmp[:4]...)
	for _, g := range r.Regions {
		if len(g.Label) > 255 {
			g.Label = g.Label[:255]
		}
		b = append(b, byte(len(g.Label)))
		b = append(b, g.Label...)
		binary.BigEndian.PutUint32(tmp[:4], g.RKey)
		b = append(b, tmp[:4]...)
		binary.BigEndian.PutUint64(tmp[:], g.VA)
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], g.Length)
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], g.Slots)
		b = append(b, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:4], g.SlotSize)
		b = append(b, tmp[:4]...)
	}
	return b
}

// UnmarshalReply parses a serialized ConnectReply.
func UnmarshalReply(b []byte) (*ConnectReply, error) {
	if len(b) < 12 {
		return nil, ErrBadCM
	}
	r := &ConnectReply{
		ResponderQPN: binary.BigEndian.Uint32(b[0:4]),
		StartPSN:     binary.BigEndian.Uint32(b[4:8]),
	}
	n := int(binary.BigEndian.Uint32(b[8:12]))
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: %d regions", ErrBadCM, n)
	}
	b = b[12:]
	r.Regions = make([]RegionInfo, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, ErrBadCM
		}
		ll := int(b[0])
		b = b[1:]
		if len(b) < ll+32 {
			return nil, ErrBadCM
		}
		g := RegionInfo{Label: string(b[:ll])}
		b = b[ll:]
		g.RKey = binary.BigEndian.Uint32(b[0:4])
		g.VA = binary.BigEndian.Uint64(b[4:12])
		g.Length = binary.BigEndian.Uint64(b[12:20])
		g.Slots = binary.BigEndian.Uint64(b[20:28])
		g.SlotSize = binary.BigEndian.Uint32(b[28:32])
		b = b[32:]
		r.Regions = append(r.Regions, g)
	}
	return r, nil
}

// Listener accepts connections on behalf of a Device and advertises a
// fixed set of regions.
type Listener struct {
	Device  *Device
	Regions []RegionInfo
}

// Accept services a connect request: it allocates a responder QP and
// returns the reply the collector would transmit over RDMA SEND.
func (l *Listener) Accept(req *ConnectRequest) *ConnectReply {
	qp := l.Device.CreateQP(req.StartPSN)
	return &ConnectReply{
		ResponderQPN: qp.QPN,
		StartPSN:     req.StartPSN,
		Regions:      l.Regions,
	}
}

// Connect performs the full exchange and returns a ready Requester plus
// the advertised regions, as the translator control plane does at startup.
func Connect(l *Listener, startPSN uint32) (*Requester, []RegionInfo, error) {
	req := &ConnectRequest{InitiatorQPN: 1, StartPSN: startPSN & psnMask}
	rep := l.Accept(req)
	// Round-trip through the wire encoding to exercise the same paths a
	// distributed deployment would.
	rep2, err := UnmarshalReply(MarshalReply(rep))
	if err != nil {
		return nil, nil, err
	}
	r := &Requester{DestQP: rep2.ResponderQPN, NPSN: rep2.StartPSN}
	return r, rep2.Regions, nil
}

// FindRegion returns the first advertised region with the given label.
func FindRegion(regions []RegionInfo, label string) (RegionInfo, bool) {
	for _, g := range regions {
		if g.Label == label {
			return g, true
		}
	}
	return RegionInfo{}, false
}
