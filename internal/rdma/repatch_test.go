package rdma

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// TestRepatchPSNVAMatchesRebuild pins the multicast fast path: building a
// request once and repatching PSN+VA must produce byte-identical packets
// to rebuilding from scratch, for WRITE (with and without immediate) and
// FETCH&ADD.
func TestRepatchPSNVAMatchesRebuild(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	imm := uint32(0xdeadbeef)
	cases := []struct {
		name  string
		build func(buf []byte, psn uint32, va uint64) []byte
	}{
		{"write", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildWrite(buf, 0x11, psn, va, 0x1000, payload, false, nil)
		}},
		{"write-imm", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildWrite(buf, 0x11, psn, va, 0x1000, payload, true, &imm)
		}},
		{"fetchadd", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildFetchAdd(buf, 0x11, psn, va, 0x1000, 7)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkt := c.build(nil, 100, 0x10000000)
			for i, step := range []struct {
				psn uint32
				va  uint64
			}{{101, 0x10000040}, {102, 0x10facade}, {1<<24 - 1, 0x2fffffff}} {
				RepatchPSNVA(pkt, step.psn, step.va)
				want := c.build(nil, step.psn, step.va)
				if !bytes.Equal(pkt, want) {
					t.Fatalf("step %d: patched packet differs from rebuilt", i)
				}
				var p Packet
				if err := DecodePacket(pkt, &p); err != nil {
					t.Fatalf("step %d: patched packet rejected: %v", i, err)
				}
				if p.BTH.PSN != step.psn {
					t.Fatalf("step %d: PSN = %d, want %d", i, p.BTH.PSN, step.psn)
				}
			}
		})
	}
}

// TestRepatchIncrementalICRCAllSizes pins the incremental ICRC patch
// (CRC-combine over the changed PSN/VA bytes + zero-shifted tail)
// against a full restamp across payload sizes from the minimum WRITE to
// postcard-chunk scale, including PSN/VA edge patterns, and across
// repeated patches of the same packet (the combine must compose).
func TestRepatchIncrementalICRCAllSizes(t *testing.T) {
	for _, n := range []int{0, 1, 4, 8, 24, 63, 100, 256, 1024, 4000} {
		payload := make([]byte, n)
		for i := range payload {
			payload[i] = byte(i*7 + n)
		}
		pkt := BuildWrite(nil, 0x33, 5, 0x1234, 0x77, payload, false, nil)
		steps := []struct {
			psn uint32
			va  uint64
		}{
			{0, 0},
			{1<<24 - 1, ^uint64(0)},
			{0x800000, 0x8000000000000000},
			{6, 0x1234}, // back to (almost) the original fields
			{42, 0xdeadbeefcafef00d},
		}
		for i, s := range steps {
			RepatchPSNVA(pkt, s.psn, s.va)
			want := append([]byte(nil), pkt...)
			stampICRC(want)
			if !bytes.Equal(pkt, want) {
				t.Fatalf("payload %dB step %d: incremental ICRC diverges from full restamp", n, i)
			}
		}
	}
}

// BenchmarkRepatchPSNVA measures the incremental patch against a full
// rebuild-free restamp, at Key-Write slot scale and postcard-chunk
// scale. The incremental path's cost is near-constant in packet size.
func BenchmarkRepatchPSNVA(b *testing.B) {
	for _, n := range []int{24, 1024} {
		payload := make([]byte, n)
		pkt := BuildWrite(nil, 0x33, 5, 0x1234, 0x77, payload, false, nil)
		b.Run(fmt.Sprintf("incremental/%dB", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RepatchPSNVA(pkt, uint32(i)&0xffffff, uint64(i))
			}
		})
		b.Run(fmt.Sprintf("fullrestamp/%dB", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pkt[9] = byte(i >> 16)
				pkt[10] = byte(i >> 8)
				pkt[11] = byte(i)
				binary.BigEndian.PutUint64(pkt[BTHLen:], uint64(i))
				stampICRC(pkt)
			}
		})
	}
}

// TestBuildersReuseBuffer verifies the builders craft in place when the
// caller-owned buffer has capacity, and that repeated builds do not
// allocate.
func TestBuildersReuseBuffer(t *testing.T) {
	buf := make([]byte, 0, 512)
	payload := []byte{1, 2, 3, 4}
	pkt := BuildWrite(buf, 1, 2, 3, 4, payload, false, nil)
	if &pkt[0] != &buf[:1][0] {
		t.Fatal("BuildWrite did not reuse the caller buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		pkt = BuildWrite(pkt, 1, 2, 3, 4, payload, false, nil)
		RepatchPSNVA(pkt, 5, 6)
		pkt = BuildFetchAdd(pkt, 1, 2, 3, 4, 5)
		pkt = BuildAck(pkt, 1, 2, SynACK, 3, true, 9)
	})
	if allocs != 0 {
		t.Fatalf("builders allocated %.1f times per run, want 0", allocs)
	}
}
