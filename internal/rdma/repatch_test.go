package rdma

import (
	"bytes"
	"testing"
)

// TestRepatchPSNVAMatchesRebuild pins the multicast fast path: building a
// request once and repatching PSN+VA must produce byte-identical packets
// to rebuilding from scratch, for WRITE (with and without immediate) and
// FETCH&ADD.
func TestRepatchPSNVAMatchesRebuild(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	imm := uint32(0xdeadbeef)
	cases := []struct {
		name  string
		build func(buf []byte, psn uint32, va uint64) []byte
	}{
		{"write", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildWrite(buf, 0x11, psn, va, 0x1000, payload, false, nil)
		}},
		{"write-imm", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildWrite(buf, 0x11, psn, va, 0x1000, payload, true, &imm)
		}},
		{"fetchadd", func(buf []byte, psn uint32, va uint64) []byte {
			return BuildFetchAdd(buf, 0x11, psn, va, 0x1000, 7)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pkt := c.build(nil, 100, 0x10000000)
			for i, step := range []struct {
				psn uint32
				va  uint64
			}{{101, 0x10000040}, {102, 0x10facade}, {1<<24 - 1, 0x2fffffff}} {
				RepatchPSNVA(pkt, step.psn, step.va)
				want := c.build(nil, step.psn, step.va)
				if !bytes.Equal(pkt, want) {
					t.Fatalf("step %d: patched packet differs from rebuilt", i)
				}
				var p Packet
				if err := DecodePacket(pkt, &p); err != nil {
					t.Fatalf("step %d: patched packet rejected: %v", i, err)
				}
				if p.BTH.PSN != step.psn {
					t.Fatalf("step %d: PSN = %d, want %d", i, p.BTH.PSN, step.psn)
				}
			}
		})
	}
}

// TestBuildersReuseBuffer verifies the builders craft in place when the
// caller-owned buffer has capacity, and that repeated builds do not
// allocate.
func TestBuildersReuseBuffer(t *testing.T) {
	buf := make([]byte, 0, 512)
	payload := []byte{1, 2, 3, 4}
	pkt := BuildWrite(buf, 1, 2, 3, 4, payload, false, nil)
	if &pkt[0] != &buf[:1][0] {
		t.Fatal("BuildWrite did not reuse the caller buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		pkt = BuildWrite(pkt, 1, 2, 3, 4, payload, false, nil)
		RepatchPSNVA(pkt, 5, 6)
		pkt = BuildFetchAdd(pkt, 1, 2, 3, 4, 5)
		pkt = BuildAck(pkt, 1, 2, SynACK, 3, true, 9)
	})
	if allocs != 0 {
		t.Fatalf("builders allocated %.1f times per run, want 0", allocs)
	}
}
