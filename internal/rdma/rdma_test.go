package rdma

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWritePacketRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	buf := make([]byte, 0, 256)
	pkt := BuildWrite(buf, 0x12, 100, 0x10000040, 0x1000, payload, true, nil)
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpWriteOnly || p.BTH.DestQP != 0x12 || p.BTH.PSN != 100 || !p.BTH.AckReq {
		t.Errorf("BTH = %+v", p.BTH)
	}
	if p.RETH.VA != 0x10000040 || p.RETH.RKey != 0x1000 || p.RETH.Length != 8 {
		t.Errorf("RETH = %+v", p.RETH)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %v", p.Payload)
	}
}

func TestWriteWithImmediate(t *testing.T) {
	imm := uint32(0xfeedface)
	pkt := BuildWrite(nil, 9, 0, 0x10000000, 1, []byte{1}, false, &imm)
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		t.Fatal(err)
	}
	if !p.HasImm || p.Imm != imm {
		t.Errorf("imm = %v %#x", p.HasImm, p.Imm)
	}
	if p.BTH.Opcode != OpWriteOnlyImm {
		t.Errorf("opcode = %v", p.BTH.Opcode)
	}
}

func TestFetchAddRoundTrip(t *testing.T) {
	pkt := BuildFetchAdd(nil, 5, 77, 0x10000008, 0x1000, 42)
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		t.Fatal(err)
	}
	if p.BTH.Opcode != OpFetchAdd || p.AtomicETH.AddData != 42 || p.AtomicETH.VA != 0x10000008 {
		t.Errorf("decoded %+v", p)
	}
}

func TestICRCDetectsCorruption(t *testing.T) {
	pkt := BuildWrite(nil, 1, 2, 0x10000000, 3, []byte{9, 9, 9, 9}, false, nil)
	for i := range pkt {
		bad := append([]byte(nil), pkt...)
		bad[i] ^= 0x01
		var p Packet
		if err := DecodePacket(bad, &p); err == nil {
			t.Fatalf("bit flip at byte %d undetected", i)
		}
	}
}

func TestDecodePacketTruncated(t *testing.T) {
	pkt := BuildWrite(nil, 1, 2, 0x10000000, 3, []byte{1, 2, 3, 4}, false, nil)
	var p Packet
	for n := 0; n < len(pkt); n++ {
		_ = DecodePacket(pkt[:n], &p) // must not panic; usually errors
	}
}

func TestPSNDelta(t *testing.T) {
	cases := []struct {
		a, b uint32
		want int32
	}{
		{5, 5, 0},
		{6, 5, 1},
		{5, 6, -1},
		{0, psnMask, 1},
		{psnMask, 0, -1},
		{1 << 23, 0, -(1 << 23)},
	}
	for _, c := range cases {
		if got := psnDelta(c.a, c.b); got != c.want {
			t.Errorf("psnDelta(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func newConnectedDevice(t *testing.T, regionSize int) (*Device, *MemoryRegion, *ResponderQP) {
	t.Helper()
	d := NewDevice()
	mr := d.RegisterMemory(regionSize)
	qp := d.CreateQP(0)
	return d, mr, qp
}

func TestDeviceExecutesWrite(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 1024)
	payload := []byte{0xca, 0xfe, 0xba, 0xbe}
	pkt := BuildWrite(nil, qp.QPN, 0, mr.Base+16, mr.RKey, payload, true, nil)
	ack, ev, err := d.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Error("unexpected immediate event")
	}
	if !bytes.Equal(mr.Buf[16:20], payload) {
		t.Errorf("memory = %v", mr.Buf[16:20])
	}
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.AETH.Syndrome != SynACK || a.BTH.PSN != 0 {
		t.Errorf("ack = %+v", a)
	}
	if d.Stats.Writes != 1 {
		t.Errorf("writes = %d", d.Stats.Writes)
	}
}

func TestDeviceImmediateEvent(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 64)
	imm := uint32(7)
	pkt := BuildWrite(nil, qp.QPN, 0, mr.Base, mr.RKey, []byte{1}, false, &imm)
	_, ev, err := d.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil || ev.Imm != 7 || ev.QPN != qp.QPN {
		t.Errorf("event = %+v", ev)
	}
}

func TestDeviceFetchAdd(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 64)
	binary.BigEndian.PutUint64(mr.Buf[8:16], 100)
	pkt := BuildFetchAdd(nil, qp.QPN, 0, mr.Base+8, mr.RKey, 5)
	ack, _, err := d.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.BTH.Opcode != OpAtomicAck || a.OrigValue != 100 {
		t.Errorf("atomic ack = %+v", a)
	}
	if got := binary.BigEndian.Uint64(mr.Buf[8:16]); got != 105 {
		t.Errorf("memory = %d, want 105", got)
	}
}

func TestDeviceFetchAddUnaligned(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 64)
	pkt := BuildFetchAdd(nil, qp.QPN, 0, mr.Base+3, mr.RKey, 5)
	ack, _, err := d.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.AETH.Syndrome != SynNAKAcc {
		t.Errorf("syndrome = %#x, want NAK-access", a.AETH.Syndrome)
	}
}

func TestDeviceBoundsChecks(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 64)
	cases := []struct {
		name string
		va   uint64
		n    int
	}{
		{"below base", mr.Base - 1, 4},
		{"past end", mr.Base + 61, 4},
		{"way past", mr.Base + 1<<30, 4},
	}
	for _, c := range cases {
		pkt := BuildWrite(nil, qp.QPN, qp.EPSN, c.va, mr.RKey, make([]byte, c.n), true, nil)
		ack, _, err := d.Process(pkt, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var a Packet
		if err := DecodePacket(ack, &a); err != nil {
			t.Fatal(err)
		}
		if a.AETH.Syndrome != SynNAKAcc {
			t.Errorf("%s: syndrome = %#x, want NAK-access", c.name, a.AETH.Syndrome)
		}
	}
	// A bad rkey also faults.
	pkt := BuildWrite(nil, qp.QPN, qp.EPSN, mr.Base, mr.RKey+999, []byte{1}, true, nil)
	ack, _, _ := d.Process(pkt, nil)
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.AETH.Syndrome != SynNAKAcc {
		t.Error("bad rkey accepted")
	}
}

func TestDeviceUnknownQP(t *testing.T) {
	d, mr, _ := newConnectedDevice(t, 64)
	pkt := BuildWrite(nil, 0xdead, 0, mr.Base, mr.RKey, []byte{1}, true, nil)
	if _, _, err := d.Process(pkt, nil); err != ErrUnknownQP {
		t.Errorf("err = %v, want ErrUnknownQP", err)
	}
}

func TestDeviceSequenceAndDuplicates(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 1024)
	mk := func(psn uint32, val byte) []byte {
		return BuildWrite(nil, qp.QPN, psn, mr.Base, mr.RKey, []byte{val}, true, nil)
	}
	// In-order PSN 0 and 1 execute.
	for psn := uint32(0); psn < 2; psn++ {
		if _, _, err := d.Process(mk(psn, byte(psn)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// PSN 5 is out of order: NAK with expected PSN 2.
	ack, _, err := d.Process(mk(5, 99), nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.AETH.Syndrome != SynNAKSeq || a.BTH.PSN != 2 {
		t.Errorf("NAK = %+v", a.AETH)
	}
	if mr.Buf[0] == 99 {
		t.Error("out-of-order write executed")
	}
	// Duplicate PSN 1 is re-ACKed without execution.
	before := d.Stats.Writes
	ack, _, err = d.Process(mk(1, 55), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.AETH.Syndrome != SynACK {
		t.Errorf("duplicate write syndrome = %#x", a.AETH.Syndrome)
	}
	if d.Stats.Writes != before {
		t.Error("duplicate write re-executed")
	}
	if d.Stats.Duplicates != 1 || d.Stats.SeqErrors != 1 {
		t.Errorf("stats = %+v", d.Stats)
	}
}

func TestDeviceDuplicateAtomicServedFromCache(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 64)
	pkt := BuildFetchAdd(nil, qp.QPN, 0, mr.Base, mr.RKey, 10)
	if _, _, err := d.Process(pkt, nil); err != nil {
		t.Fatal(err)
	}
	// Replay: must return the same original value (0) and not re-add.
	ack, _, err := d.Process(pkt, nil)
	if err != nil {
		t.Fatal(err)
	}
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	if a.BTH.Opcode != OpAtomicAck || a.OrigValue != 0 {
		t.Errorf("replayed atomic ack = %+v", a)
	}
	if got := binary.BigEndian.Uint64(mr.Buf[:8]); got != 10 {
		t.Errorf("memory = %d, want 10 (single execution)", got)
	}
}

func TestRequesterResyncOnNak(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 1024)
	req := &Requester{DestQP: qp.QPN}
	// Send PSN 0, then "lose" PSN 1 and send PSN 2.
	pkt := BuildWrite(nil, qp.QPN, req.NextPSN(), mr.Base, mr.RKey, []byte{1}, true, nil)
	ack, _, _ := d.Process(pkt, nil)
	var a Packet
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	req.HandleAck(&a)
	_ = req.NextPSN() // lost packet
	pkt = BuildWrite(nil, qp.QPN, req.NextPSN(), mr.Base, mr.RKey, []byte{3}, true, nil)
	ack, _, _ = d.Process(pkt, nil)
	if err := DecodePacket(ack, &a); err != nil {
		t.Fatal(err)
	}
	req.HandleAck(&a)
	if req.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1", req.Resyncs)
	}
	if req.NPSN != 1 {
		t.Fatalf("NPSN after resync = %d, want 1", req.NPSN)
	}
	// Retransmit from PSN 1: both writes now land.
	for _, v := range []byte{2, 3} {
		pkt = BuildWrite(nil, qp.QPN, req.NextPSN(), mr.Base+uint64(v), mr.RKey, []byte{v}, true, nil)
		ack, _, _ = d.Process(pkt, nil)
		if err := DecodePacket(ack, &a); err != nil {
			t.Fatal(err)
		}
		req.HandleAck(&a)
	}
	if mr.Buf[2] != 2 || mr.Buf[3] != 3 {
		t.Errorf("memory after resync = %v", mr.Buf[:4])
	}
}

func TestMemInstructionAccounting(t *testing.T) {
	d, mr, qp := newConnectedDevice(t, 4096)
	// 8B write: 1 line. 64B write: 1 line. 65B write: 2 lines.
	sizes := []int{8, 64, 65}
	want := uint64(1 + 1 + 2)
	psn := uint32(0)
	for _, s := range sizes {
		pkt := BuildWrite(nil, qp.QPN, psn, mr.Base, mr.RKey, make([]byte, s), true, nil)
		if _, _, err := d.Process(pkt, nil); err != nil {
			t.Fatal(err)
		}
		psn++
	}
	if d.Mem.Ops != want {
		t.Errorf("mem ops = %d, want %d", d.Mem.Ops, want)
	}
	d.AttributeReports(3)
	if got := d.Mem.PerReport(); got != float64(want)/3 {
		t.Errorf("per report = %v", got)
	}
}

func TestGuardGapBetweenRegions(t *testing.T) {
	d := NewDevice()
	a := d.RegisterMemory(128)
	b := d.RegisterMemory(128)
	if a.Base+uint64(len(a.Buf)) >= b.Base {
		t.Error("regions adjacent; want guard gap")
	}
	qp := d.CreateQP(0)
	// A write that runs past region A must fault, not hit region B.
	pkt := BuildWrite(nil, qp.QPN, 0, a.Base+120, a.RKey, make([]byte, 16), true, nil)
	ack, _, _ := d.Process(pkt, nil)
	var p Packet
	if err := DecodePacket(ack, &p); err != nil {
		t.Fatal(err)
	}
	if p.AETH.Syndrome != SynNAKAcc {
		t.Error("overrun write did not fault")
	}
}

func TestCMReplyRoundTrip(t *testing.T) {
	in := &ConnectReply{
		ResponderQPN: 0x17,
		StartPSN:     12345,
		Regions: []RegionInfo{
			{Label: "keywrite", RKey: 1, VA: 0x1000, Length: 1 << 20, Slots: 1 << 17, SlotSize: 8},
			{Label: "append:0", RKey: 2, VA: 0x200000, Length: 1 << 16, Slots: 1 << 14, SlotSize: 4},
		},
	}
	out, err := UnmarshalReply(MarshalReply(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.ResponderQPN != in.ResponderQPN || out.StartPSN != in.StartPSN {
		t.Errorf("header mismatch: %+v", out)
	}
	if len(out.Regions) != 2 || out.Regions[0] != in.Regions[0] || out.Regions[1] != in.Regions[1] {
		t.Errorf("regions mismatch: %+v", out.Regions)
	}
}

func TestCMUnmarshalGarbage(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	buf := make([]byte, 64)
	for i := 0; i < 5000; i++ {
		n := rnd.Intn(len(buf))
		rnd.Read(buf[:n])
		_, _ = UnmarshalReply(buf[:n]) // must not panic
	}
}

func TestConnectHandshake(t *testing.T) {
	d := NewDevice()
	mr := d.RegisterMemory(256)
	l := &Listener{
		Device: d,
		Regions: []RegionInfo{
			{Label: "keywrite", RKey: mr.RKey, VA: mr.Base, Length: uint64(len(mr.Buf)), Slots: 32, SlotSize: 8},
		},
	}
	req, regions, err := Connect(l, 500)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := FindRegion(regions, "keywrite")
	if !ok {
		t.Fatal("keywrite region not advertised")
	}
	if _, ok := FindRegion(regions, "nope"); ok {
		t.Error("found nonexistent region")
	}
	// The requester can immediately write through the handshake result.
	pkt := BuildWrite(nil, req.DestQP, req.NextPSN(), g.VA, g.RKey, []byte{42}, true, nil)
	if _, _, err := d.Process(pkt, nil); err != nil {
		t.Fatal(err)
	}
	if mr.Buf[0] != 42 {
		t.Error("post-handshake write failed")
	}
}

func TestNICModelCalibration(t *testing.T) {
	nic := BlueField2()
	// Non-batched 4B append: ~105M msgs/s (message-rate bound).
	if got := nic.ReportsPerSec(4, 1, 1, 4); got < 90e6 || got > 120e6 {
		t.Errorf("no-batch append = %.0f, want ~105M", got)
	}
	// Batch 16 (64B): line-rate bound, >1B reports/s.
	if got := nic.ReportsPerSec(64, 1, 16, 4); got < 1e9 {
		t.Errorf("batch-16 append = %.0f, want >1B", got)
	}
	// Key-Write N=2 halves N=1.
	n1 := nic.ReportsPerSec(8, 1, 1, 4)
	n2 := nic.ReportsPerSec(8, 2, 1, 4)
	if r := n1 / n2; r < 1.95 || r > 2.05 {
		t.Errorf("N=1/N=2 ratio = %v, want 2", r)
	}
	// Postcarding 32B chunks of 5 postcards: 400–500M postcards/s.
	if got := nic.ReportsPerSec(32, 1, 5, 4); got < 400e6 || got > 550e6 {
		t.Errorf("postcarding = %.0f, want ~480M", got)
	}
}

func TestNICModelQPDegradation(t *testing.T) {
	nic := BlueField2()
	few := nic.MessagesPerSec(8, 4)
	many := nic.MessagesPerSec(8, 1<<16)
	if many >= few {
		t.Error("no degradation with many QPs")
	}
	if ratio := few / many; ratio < 2 || ratio > 5.01 {
		t.Errorf("QP degradation ratio = %v, want within (2, 5]", ratio)
	}
	// Monotone non-increasing in QP count.
	prev := few
	for qps := 8; qps <= 1<<16; qps *= 2 {
		cur := nic.MessagesPerSec(8, qps)
		if cur > prev+1e-6 {
			t.Fatalf("throughput increased at %d QPs", qps)
		}
		prev = cur
	}
}

func TestNICModelLineRateScaling(t *testing.T) {
	nic := BlueField2()
	// Large payloads are line-rate bound: doubling payload should nearly
	// halve the message rate once far beyond the message-rate knee.
	a := nic.MessagesPerSec(1024, 4)
	b := nic.MessagesPerSec(2048, 4)
	if r := a / b; r < 1.7 || r > 2.2 {
		t.Errorf("payload doubling ratio = %v", r)
	}
	// Multi-NIC collectors scale linearly (§7).
	nic2 := nic
	nic2.Ports = 2
	if got := nic2.MessagesPerSec(8, 4) / nic.MessagesPerSec(8, 4); got != 2 {
		t.Errorf("2-port scaling = %v, want 2", got)
	}
}

func TestQPFactorProperties(t *testing.T) {
	nic := BlueField2()
	f := func(n uint16) bool {
		fac := nic.qpFactor(int(n))
		return fac > 0 && fac <= 1 && fac >= 1/nic.MaxQPPenalty-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeviceProcessWrite(b *testing.B) {
	d := NewDevice()
	mr := d.RegisterMemory(1 << 20)
	qp := d.CreateQP(0)
	payload := make([]byte, 8)
	pktBuf := make([]byte, 0, 256)
	ackBuf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		psn := qp.EPSN
		va := mr.Base + uint64(i%(1<<17))*8
		pkt := BuildWrite(pktBuf, qp.QPN, psn, va, mr.RKey, payload, false, nil)
		if _, _, err := d.Process(pkt, ackBuf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWrite(b *testing.B) {
	payload := make([]byte, 8)
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildWrite(buf, 1, uint32(i), 0x10000000, 1, payload, false, nil)
	}
}
