package engine

import (
	"errors"
	"testing"
)

// recordSink logs processing order; only the shard worker touches it
// while the engine runs, and tests read it only after Drain/Close (both
// establish happens-before).
type recordSink struct {
	ops     []string // "p" per frame, "f" per flush
	frames  int
	flushes int
	lastNow uint64
	err     error
}

func (s *recordSink) ProcessFrame(frame []byte, nowNs uint64) error {
	s.ops = append(s.ops, "p")
	s.frames++
	s.lastNow = nowNs
	return s.err
}

func (s *recordSink) Flush(nowNs uint64) error {
	s.ops = append(s.ops, "f")
	s.flushes++
	s.lastNow = nowNs
	return nil
}

// gatedSink blocks every ProcessFrame on gate; entered signals the first
// arrival so tests know the worker is mid-frame.
type gatedSink struct {
	recordSink
	entered chan struct{}
	gate    chan struct{}
}

func (s *gatedSink) ProcessFrame(frame []byte, nowNs uint64) error {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.gate
	return s.recordSink.ProcessFrame(frame, nowNs)
}

func mustEngine(t *testing.T, sinks []Sink, cfg Config) *Engine {
	t.Helper()
	e, err := New(sinks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEnqueueAfterClose(t *testing.T) {
	sink := &recordSink{}
	e := mustEngine(t, []Sink{sink}, Config{})
	if err := e.Enqueue(0, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Enqueue(0, []byte{2}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	if err := e.Drain(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
	if sink.frames != 1 {
		t.Fatalf("frames = %d, want 1 (pre-close report must be ingested)", sink.frames)
	}
	if sink.flushes != 1 {
		t.Fatalf("flushes = %d, want exactly the final close flush", sink.flushes)
	}
	// Idempotent.
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestDrainWaitsForInFlightBatches(t *testing.T) {
	sink := &recordSink{}
	e := mustEngine(t, []Sink{sink}, Config{QueueDepth: 64, Batch: 8})
	const n = 100
	for i := 0; i < n; i++ {
		if err := e.Enqueue(0, []byte{byte(i)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(uint64(n)); err != nil {
		t.Fatal(err)
	}
	if sink.frames != n {
		t.Fatalf("frames after Drain = %d, want %d", sink.frames, n)
	}
	// The drain flush must come after every report, and the engine stays
	// usable afterwards.
	if got := sink.ops[len(sink.ops)-1]; got != "f" {
		t.Fatalf("last op = %q, want flush", got)
	}
	for _, op := range sink.ops[:n] {
		if op != "p" {
			t.Fatalf("flush interleaved before all %d reports: %v", n, sink.ops)
		}
	}
	if sink.lastNow != n {
		t.Fatalf("flush now = %d, want %d", sink.lastNow, n)
	}
	if err := e.Enqueue(0, []byte{0xff}, n+1); err != nil {
		t.Fatalf("Enqueue after Drain = %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.frames != n+1 {
		t.Fatalf("frames after Close = %d, want %d", sink.frames, n+1)
	}
	st := e.Stats()
	if st.Enqueued != n+1 || st.Processed != n+1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d enqueued/processed, 0 dropped", st, n+1)
	}
}

func TestDropPolicyCounterAccuracy(t *testing.T) {
	sink := &gatedSink{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	e := mustEngine(t, []Sink{sink}, Config{QueueDepth: 2, Batch: 1, Policy: Drop})

	// First report: worker picks it up and blocks mid-frame.
	if err := e.Enqueue(0, []byte{0}, 0); err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	// Next two fill the queue; five more must be shed.
	for i := 1; i < 8; i++ {
		if err := e.Enqueue(0, []byte{byte(i)}, 0); err != nil {
			t.Fatalf("Drop-policy Enqueue %d = %v, want nil", i, err)
		}
	}
	if st := e.Stats(); st.Enqueued != 3 || st.Dropped != 5 {
		t.Fatalf("stats while gated = %+v, want 3 enqueued / 5 dropped", st)
	}
	close(sink.gate)
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Enqueued != 3 || st.Processed != 3 || st.Dropped != 5 {
		t.Fatalf("stats after drain = %+v, want enqueued=processed=3, dropped=5", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBlockPolicyIsLossless(t *testing.T) {
	sink := &gatedSink{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	e := mustEngine(t, []Sink{sink}, Config{QueueDepth: 2, Batch: 4, Policy: Block})
	const n = 64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := e.Enqueue(0, []byte{byte(i)}, 0); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	<-sink.entered
	close(sink.gate) // producer is (or will be) blocked on the tiny queue
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Enqueued != n || st.Processed != n || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want %d enqueued/processed, 0 dropped", st, n)
	}
}

func TestPeriodicFlush(t *testing.T) {
	sink := &recordSink{}
	e := mustEngine(t, []Sink{sink}, Config{FlushEvery: 10, Batch: 4})
	for i := 0; i < 35; i++ {
		if err := e.Enqueue(0, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	// 3 periodic (at 10, 20, 30) + 1 drain flush.
	if sink.flushes != 4 {
		t.Fatalf("flushes = %d, want 4: %v", sink.flushes, sink.ops)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkErrorSurfaces(t *testing.T) {
	bad := errors.New("collector rejected")
	sink := &recordSink{err: bad}
	e := mustEngine(t, []Sink{sink}, Config{})
	if err := e.Enqueue(0, []byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(0); !errors.Is(err, bad) {
		t.Fatalf("Drain = %v, want %v", err, bad)
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
	if err := e.Close(); !errors.Is(err, bad) {
		t.Fatalf("Close = %v, want %v", err, bad)
	}
}

func TestSubmitterStagesAndFlushes(t *testing.T) {
	sink := &recordSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 8})
	sub := e.Submitter()
	for i := 0; i < 20; i++ {
		if err := sub.Submit(0, []byte{byte(i)}, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Two full chunks are queued; four frames remain staged.
	if st := e.Stats(); st.Enqueued != 16 {
		t.Fatalf("enqueued = %d, want 16 before Flush", st.Enqueued)
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(20); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Enqueued != 20 || st.Processed != 20 {
		t.Fatalf("stats = %+v, want 20 enqueued and processed", st)
	}
	if sink.frames != 20 {
		t.Fatalf("frames = %d, want 20", sink.frames)
	}
	if sink.lastNow != 20 {
		t.Fatalf("flush now = %d, want 20", sink.lastNow)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := mustEngine(t, []Sink{&recordSink{}}, Config{})
	sub := e.Submitter()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sub.Submit(0, []byte{1}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestMultiShardIsolation(t *testing.T) {
	a, b := &recordSink{}, &recordSink{}
	e := mustEngine(t, []Sink{a, b}, Config{})
	for i := 0; i < 10; i++ {
		if err := e.Enqueue(i%2, []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Enqueue(2, []byte{0}, 0); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	if a.frames != 5 || b.frames != 5 {
		t.Fatalf("frames = %d/%d, want 5/5", a.frames, b.frames)
	}
	s0, s1 := e.ShardStats(0), e.ShardStats(1)
	if s0.Processed != 5 || s1.Processed != 5 {
		t.Fatalf("per-shard processed = %d/%d, want 5/5", s0.Processed, s1.Processed)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
