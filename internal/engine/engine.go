// Package engine implements an asynchronous, sharded ingest pipeline
// for DTA reports. The synchronous path in package dta pushes every
// report through a single reporter→translator→collector call chain; the
// engine instead places each collector's translator+host behind a
// dedicated worker goroutine with a bounded report queue, so N
// collectors ingest in parallel while any number of reporter goroutines
// enqueue concurrently.
//
// The design mirrors the paper's data-plane semantics (Langlet et al.,
// SIGCOMM 2023): reports are best-effort, so when a shard's queue is
// full the engine can either exert backpressure (Block) or drop the
// report and count it (Drop), just as the translator's token-bucket
// rate limiter sheds load with a counter rather than queueing
// unboundedly. And just as the translator batches appends to amortise
// RDMA messages, producers batch frames into chunks to amortise queue
// operations: per-frame channel sends would cost more than the
// translator work itself.
//
// Shard workers dequeue chunks in batches, flush the sink's
// translator-side aggregation state every FlushEvery reports (and
// always on a Drain barrier or Close), and publish per-shard statistics
// through atomics so readers never block the data path.
package engine

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
	"dta/internal/wire"
)

// Sink consumes reporter frames for one shard. Implementations are NOT
// required to be goroutine-safe: the engine guarantees that exactly one
// worker goroutine touches a given sink.
type Sink interface {
	// ProcessFrame ingests one serialised reporter frame at the given
	// simulation time.
	ProcessFrame(frame []byte, nowNs uint64) error
	// Flush pushes out partial aggregation state (append batches,
	// postcard caches, key-increment aggregates).
	Flush(nowNs uint64) error
}

// ReportSink is the structured fast-path extension of Sink: it ingests
// already-decoded reports, skipping frame serialisation on the producer
// and frame parsing on the worker. Sinks that implement it accept
// SubmitReport/EnqueueReport traffic; the frame-based path keeps working
// either way (wire-level tests exercise real frames through it).
type ReportSink interface {
	Sink
	// ProcessReport ingests one decoded report at the given simulation
	// time. r (including r.Data) is only read during the call.
	ProcessReport(r *wire.Report, nowNs uint64) error
}

// ErrNoReportSink is returned by structured submissions to a shard whose
// sink does not implement ReportSink.
var ErrNoReportSink = errors.New("engine: sink does not implement ReportSink")

// StagedSink is an optional further refinement of ReportSink: the worker
// hands over the compact staged record itself, saving even the
// decompression into a scratch wire.Report. Sinks that only implement
// ReportSink get records decompressed for them.
type StagedSink interface {
	ReportSink
	// ProcessStaged ingests one staged record. s is only read during
	// the call.
	ProcessStaged(s *wire.StagedReport, nowNs uint64) error
}

// TraceSink is an optional StagedSink extension: the worker hands the
// report's data-plane trace handle over immediately before each
// ProcessStaged call, so downstream layers (translator, WAL) can stamp
// their stages onto the same trace. The handle may be invalid (the
// report was sampled out); implementations must store it as-is.
type TraceSink interface {
	SetTraceHandle(trace.Handle)
}

// BatchSink is an optional Sink extension: BatchEnd is invoked on the
// worker goroutine after each dequeue batch finishes processing. Sinks
// with batch-granular side work (a write-ahead log's every-batch fsync)
// hook it; errors are recorded like sink errors.
type BatchSink interface {
	BatchEnd(nowNs uint64) error
}

// Policy selects the backpressure behaviour when a shard queue is full.
type Policy int

const (
	// Block makes submissions wait for queue space (lossless ingest).
	Block Policy = iota
	// Drop sheds the chunk and counts its reports as Dropped, mirroring
	// the translator rate limiter's drop-with-stat semantics.
	Drop
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config tunes the engine.
type Config struct {
	// QueueDepth bounds each shard's chunk queue (0 = 256). Worst-case
	// buffered reports per shard ≈ QueueDepth × ChunkFrames.
	QueueDepth int
	// ChunkFrames is how many frames a Submitter stages per shard
	// before handing the chunk to the worker (0 = 32). 1 disables
	// producer-side batching.
	ChunkFrames int
	// Batch is the maximum chunk-dequeue batch per worker wakeup (0 = 16).
	Batch int
	// FlushEvery flushes a shard's sink after at least this many
	// processed reports (0 = flush only on Drain/Close). Frequent
	// flushes defeat translator-side aggregation, so this models epoch
	// boundaries, not per-report freshness.
	FlushEvery int
	// Policy selects Block (default) or Drop backpressure.
	Policy Policy
	// Obs, when non-nil, registers per-shard engine metrics
	// (dta_engine_*) under this scope with a shard label. The counters
	// behind ShardStats live in the obs registry either way — a nil
	// scope just leaves them unexposed — so Stats() and the HTTP
	// endpoint can never disagree.
	Obs *obs.Scope
	// Journal, when non-nil, receives queue-stall episode events
	// (Block-policy producers finding a shard queue full): one
	// start/end pair per episode however many producers pile up, with
	// the blocked duration on the end event. Nil costs one branch on
	// the (already stalled) slow path and nothing on the fast path.
	Journal *journal.Journal
	// Trace, when non-nil, samples end-to-end data-plane traces on the
	// structured submit path: Submitters begin traces, the worker
	// stamps queue stages and hands the handle to TraceSink sinks. Nil
	// keeps the hot path at one predicted branch.
	Trace *trace.Tracer
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.QueueDepth <= 0 {
		out.QueueDepth = 256
	}
	if out.ChunkFrames <= 0 {
		out.ChunkFrames = 32
	}
	if out.Batch <= 0 {
		out.Batch = 16
	}
	return out
}

// Stats snapshots one shard's (or, summed, the whole engine's) counters.
// It is a view over the shard's obs metrics: the same atomic cells back
// this struct and the Prometheus exposition.
type Stats struct {
	Enqueued  uint64 // reports accepted into a queue
	Processed uint64 // reports handed to the sink
	Dropped   uint64 // reports shed by the Drop policy
	Batches   uint64 // worker dequeue batches
	Flushes   uint64 // sink flushes (periodic + drain + close)
	Errors    uint64 // sink errors (first one retained, see Err)
	Stalls    uint64 // Block-policy sends that found the queue full
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Enqueued += other.Enqueued
	s.Processed += other.Processed
	s.Dropped += other.Dropped
	s.Batches += other.Batches
	s.Flushes += other.Flushes
	s.Errors += other.Errors
	s.Stalls += other.Stalls
}

// ErrClosed is returned by submissions and Drain after Close.
var ErrClosed = errors.New("engine: closed")

// chunk is one queue entry: zero or more packed frames, zero or more
// staged structured reports, or a drain barrier (non-nil drain). A chunk
// only ever carries one representation at a time (Submitters flush on a
// mode switch), and its backing slices are recycled through the engine
// pool, so steady-state ingest allocates nothing.
type chunk struct {
	data  []byte              // concatenated frames
	lens  []int32             // per-frame lengths into data
	recs  []wire.StagedReport // structured reports (fast path)
	trcs  []trace.Handle      // parallel to recs when tracing; else empty
	nowNs uint64              // latest clock among the staged entries
	drain chan struct{}
}

func (c *chunk) reset() {
	c.data = c.data[:0]
	c.lens = c.lens[:0]
	c.recs = c.recs[:0]
	c.trcs = c.trcs[:0]
	c.nowNs = 0
	c.drain = nil
}

// count returns the number of staged reports.
func (c *chunk) count() int { return len(c.lens) + len(c.recs) }

// shardCounters holds one shard's metrics. The producer-side cells
// (enqueued/dropped/stalls) are striped: any number of reporter
// goroutines bump them concurrently, and a single LOCK-ADD cell there
// would serialise the very fan-in the shards exist to parallelise. The
// worker-side cells are single-writer padded counters. All of them are
// obs primitives whether or not a Scope was configured — Stats() reads
// the same memory the exposition renders.
type shardCounters struct {
	enqueued  *obs.ShardedCounter
	dropped   *obs.ShardedCounter
	stalls    *obs.ShardedCounter
	processed *obs.Counter
	batches   *obs.Counter
	flushes   *obs.Counter
	errors    *obs.Counter
	batchNs   *obs.Histogram // per-dequeue-batch on-CPU time; nil when unobserved
}

func newShardCounters(sc *obs.Scope) shardCounters {
	return shardCounters{
		enqueued:  sc.ShardedCounter("dta_engine_enqueued_total", "Reports accepted into the shard queue."),
		dropped:   sc.ShardedCounter("dta_engine_dropped_total", "Reports shed by the Drop backpressure policy."),
		stalls:    sc.ShardedCounter("dta_engine_queue_stalls_total", "Block-policy sends that found the queue full and had to wait."),
		processed: sc.Counter("dta_engine_processed_total", "Reports handed to the shard sink."),
		batches:   sc.Counter("dta_engine_batches_total", "Worker dequeue batches."),
		flushes:   sc.Counter("dta_engine_flushes_total", "Sink flushes (periodic, drain, close)."),
		errors:    sc.Counter("dta_engine_errors_total", "Sink errors."),
		batchNs:   sc.Histogram("dta_engine_batch_ns", "Worker on-CPU nanoseconds per dequeue batch; sum/wall-clock is shard utilization."),
	}
}

func (c *shardCounters) snapshot() Stats {
	return Stats{
		Enqueued:  c.enqueued.Load(),
		Processed: c.processed.Load(),
		Dropped:   c.dropped.Load(),
		Batches:   c.batches.Load(),
		Flushes:   c.flushes.Load(),
		Errors:    c.errors.Load(),
		Stalls:    c.stalls.Load(),
	}
}

type shard struct {
	sink  Sink
	rsink ReportSink // non-nil when sink implements the structured path
	ssink StagedSink // non-nil when sink consumes staged records directly
	bsink BatchSink  // non-nil when sink wants batch-boundary callbacks
	tsink TraceSink  // non-nil when sink accepts trace handles
	ch    chan *chunk
	ctr   shardCounters

	// Queue-stall episode state: overlapping Block-policy stalls from
	// concurrent producers coalesce into one journal episode — first
	// producer in publishes the start, last one out publishes the end
	// with the episode's duration. The counters are only touched after
	// the non-blocking send already failed, so the fast path pays
	// nothing.
	jr         journal.Emitter
	stallers   atomic.Int64
	stallStart atomic.Int64
	stallCause atomic.Uint64
}

// noteStallStart opens (or joins) a stall episode on the shard.
func (sh *shard) noteStallStart(queueCap int) {
	if sh.jr.J == nil {
		return
	}
	if sh.stallers.Add(1) == 1 {
		cause := sh.jr.NewCause()
		sh.stallCause.Store(cause)
		sh.stallStart.Store(obs.Nanotime())
		sh.jr.Emit(journal.EvStallStart, journal.SevWarn, cause, uint64(queueCap), 0, 0)
	}
}

// noteStallEnd leaves the episode, closing it if this producer was the
// last one blocked. Start/cause reads race benignly with a brand-new
// episode only when a fresh stall begins in the same instant; the
// rendered duration is still that of a real contiguous blocked span.
func (sh *shard) noteStallEnd() {
	if sh.jr.J == nil {
		return
	}
	if sh.stallers.Add(-1) == 0 {
		dur := obs.Nanotime() - sh.stallStart.Load()
		sh.jr.Emit(journal.EvStallEnd, journal.SevInfo, sh.stallCause.Load(), uint64(dur), 0, 0)
	}
}

// Engine fans reports out to per-shard worker goroutines.
type Engine struct {
	cfg    Config
	shards []*shard
	wg     sync.WaitGroup

	// mu orders channel sends against Close's channel close; closed is
	// atomic so Submit's fast path can check it without the lock.
	mu     sync.RWMutex
	closed atomic.Bool

	firstErr atomic.Pointer[error]
	pool     sync.Pool // *chunk
}

// New starts one worker goroutine per sink. The engine owns the sinks
// until Close returns: no other goroutine may touch them concurrently.
func New(sinks []Sink, cfg Config) (*Engine, error) {
	if len(sinks) == 0 {
		return nil, errors.New("engine: no sinks")
	}
	c := cfg.withDefaults()
	e := &Engine{
		cfg:  c,
		pool: sync.Pool{New: func() any { return &chunk{} }},
	}
	for i, s := range sinks {
		if s == nil {
			return nil, errors.New("engine: nil sink")
		}
		shardScope := c.Obs.With(obs.L("shard", strconv.Itoa(i)))
		sh := &shard{
			sink: s,
			ch:   make(chan *chunk, c.QueueDepth),
			ctr:  newShardCounters(shardScope),
			jr:   journal.Emitter{J: c.Journal, Comp: journal.CompEngine, Collector: int16(i)},
		}
		sh.rsink, _ = s.(ReportSink)
		sh.ssink, _ = s.(StagedSink)
		sh.bsink, _ = s.(BatchSink)
		sh.tsink, _ = s.(TraceSink)
		// Queue depth is read straight off the channel at exposition
		// time — zero hot-path cost.
		ch := sh.ch
		shardScope.GaugeFunc("dta_engine_queue_depth", "Chunks currently buffered in the shard queue.",
			func() float64 { return float64(len(ch)) })
		e.shards = append(e.shards, sh)
	}
	for _, sh := range e.shards {
		e.wg.Add(1)
		go e.run(sh)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Enqueue copies frame and queues it on shard as a single-frame chunk,
// bypassing producer-side batching. Safe for concurrent use; for hot
// paths prefer a per-goroutine Submitter.
func (e *Engine) Enqueue(shardIdx int, frame []byte, nowNs uint64) error {
	if shardIdx < 0 || shardIdx >= len(e.shards) {
		return fmt.Errorf("engine: shard %d out of range [0,%d)", shardIdx, len(e.shards))
	}
	ck := e.pool.Get().(*chunk)
	ck.reset()
	ck.data = append(ck.data, frame...)
	ck.lens = append(ck.lens, int32(len(frame)))
	ck.nowNs = nowNs
	return e.send(e.shards[shardIdx], ck)
}

// EnqueueReport copies r and queues it on shard as a single-report
// structured chunk, bypassing producer-side batching. Safe for
// concurrent use; for hot paths prefer a per-goroutine Submitter.
func (e *Engine) EnqueueReport(shardIdx int, r *wire.Report, nowNs uint64) error {
	if shardIdx < 0 || shardIdx >= len(e.shards) {
		return fmt.Errorf("engine: shard %d out of range [0,%d)", shardIdx, len(e.shards))
	}
	sh := e.shards[shardIdx]
	if sh.rsink == nil {
		return ErrNoReportSink
	}
	ck := e.pool.Get().(*chunk)
	ck.reset()
	ck.recs = stageInto(ck.recs, r, e.cfg.ChunkFrames)
	ck.nowNs = nowNs
	return e.send(sh, ck)
}

// stageInto appends a staged copy of r to recs. Capacity is reserved for
// the full chunk up front (and then recycled through the pool), so
// steady-state staging never re-allocates — incremental append growth
// would churn the heap badly enough under deep queues to defeat the
// pool via GC clearing.
func stageInto(recs []wire.StagedReport, r *wire.Report, chunkFrames int) []wire.StagedReport {
	n := len(recs)
	if n < cap(recs) {
		recs = recs[:n+1]
	} else {
		grown := make([]wire.StagedReport, n+1, max(chunkFrames, n+1))
		copy(grown, recs)
		recs = grown
	}
	recs[n].Stage(r)
	return recs
}

// handleInto appends a trace handle parallel to stageInto's record,
// with the same up-front capacity reservation so steady-state traced
// staging never re-allocates.
func handleInto(trcs []trace.Handle, h trace.Handle, chunkFrames int) []trace.Handle {
	n := len(trcs)
	if n < cap(trcs) {
		trcs = trcs[:n+1]
	} else {
		grown := make([]trace.Handle, n+1, max(chunkFrames, n+1))
		copy(grown, trcs)
		trcs = grown
	}
	trcs[n] = h
	return trcs
}

// send hands a chunk to the shard worker, applying the backpressure
// policy. It consumes ck (requeued to the pool on drop or ErrClosed).
func (e *Engine) send(sh *shard, ck *chunk) error {
	frames := uint64(ck.count())
	// The read lock pins the channel open: Close takes the write lock
	// before closing channels, so a send in flight here cannot panic.
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed.Load() {
		for i := range ck.trcs {
			ck.trcs[i].Abort()
		}
		e.pool.Put(ck)
		return ErrClosed
	}
	// Stamp the enqueue stage before the channel send: once the worker
	// owns the chunk the producer must not touch its trace handles (the
	// worker releases them), so any Block-policy wait below shows up in
	// the enqueue→dequeue gap with the stall flag naming the cause.
	for i := range ck.trcs {
		ck.trcs[i].Stamp(trace.StEnqueue)
	}
	if e.cfg.Policy == Drop {
		select {
		case sh.ch <- ck:
			sh.ctr.enqueued.Add(frames)
		default:
			// Shed: these reports have no end-to-end latency to
			// attribute, so their traces are discarded unpublished.
			for i := range ck.trcs {
				ck.trcs[i].Abort()
			}
			e.pool.Put(ck)
			sh.ctr.dropped.Add(frames)
		}
		return nil
	}
	// Block policy: try without blocking first so a full queue is
	// visible as a stall count — the backpressure signal the flat
	// shard-scaling investigation needs (a shard whose producers stall
	// is queue-bound; one that never stalls is worker- or CPU-bound).
	select {
	case sh.ch <- ck:
	default:
		sh.ctr.stalls.Inc()
		for i := range ck.trcs {
			ck.trcs[i].Flag(trace.FStall)
		}
		sh.noteStallStart(cap(sh.ch))
		sh.ch <- ck
		sh.noteStallEnd()
	}
	sh.ctr.enqueued.Add(frames)
	return nil
}

// Submitter stages frames into per-shard chunks before queueing them,
// amortising queue synchronisation across ChunkFrames reports. It is
// NOT goroutine-safe: give each producer goroutine its own Submitter,
// and Flush it before relying on Drain (staged frames are invisible to
// the engine until flushed; Close discards them).
type Submitter struct {
	e       *Engine
	pending []*chunk // lazily allocated, one per shard
	// coupled flushes EVERY shard's staged chunk whenever any one
	// fills, so the staged set is all-or-nothing across shards at any
	// instant. HA engines need this: a replicated report is staged on
	// all its owners in one fan-out, and resync watermark fences are
	// only exact if no fan-out can be half-visible — one owner's copy
	// queued while another's is still staged (see HACluster.fenceMu).
	coupled bool
	// smp is this producer's trace candidate filter: caller-local like
	// the Submitter itself, so the sampled-out path costs no shared
	// cache traffic.
	smp trace.Sampler
}

// SetCoupled switches the submitter to coupled (all-or-nothing) chunk
// flushing across shards.
func (s *Submitter) SetCoupled(v bool) { s.coupled = v }

// Submitter returns a new producer handle.
func (e *Engine) Submitter() *Submitter {
	return &Submitter{e: e, pending: make([]*chunk, len(e.shards))}
}

// stagedChunk returns the shard's pending chunk, materialising it from
// the pool on first use. If the pending chunk holds the other
// representation (frames vs structured reports), it is flushed first so
// each chunk stays single-mode and per-producer FIFO order is preserved.
func (s *Submitter) stagedChunk(shardIdx int, structured bool) (*chunk, error) {
	ck := s.pending[shardIdx]
	if ck != nil {
		other := len(ck.lens) > 0 && structured || len(ck.recs) > 0 && !structured
		if !other {
			return ck, nil
		}
		s.pending[shardIdx] = nil
		if err := s.e.send(s.e.shards[shardIdx], ck); err != nil {
			return nil, err
		}
	}
	ck = s.e.pool.Get().(*chunk)
	ck.reset()
	s.pending[shardIdx] = ck
	return ck, nil
}

// Submit copies frame into shard's staged chunk, queueing the chunk
// once it holds ChunkFrames frames.
func (s *Submitter) Submit(shardIdx int, frame []byte, nowNs uint64) error {
	if shardIdx < 0 || shardIdx >= len(s.pending) {
		return fmt.Errorf("engine: shard %d out of range [0,%d)", shardIdx, len(s.pending))
	}
	if s.e.closed.Load() {
		return ErrClosed
	}
	ck, err := s.stagedChunk(shardIdx, false)
	if err != nil {
		return err
	}
	ck.data = append(ck.data, frame...)
	ck.lens = append(ck.lens, int32(len(frame)))
	if nowNs > ck.nowNs {
		ck.nowNs = nowNs
	}
	if len(ck.lens) >= s.e.cfg.ChunkFrames {
		if s.coupled {
			return s.Flush()
		}
		s.pending[shardIdx] = nil
		return s.e.send(s.e.shards[shardIdx], ck)
	}
	return nil
}

// SubmitReport stages a copy of r into shard's staged chunk — no frame
// serialisation, no heap allocation — queueing the chunk once it holds
// ChunkFrames reports. The shard's sink must implement ReportSink.
func (s *Submitter) SubmitReport(shardIdx int, r *wire.Report, nowNs uint64) error {
	if shardIdx < 0 || shardIdx >= len(s.pending) {
		return fmt.Errorf("engine: shard %d out of range [0,%d)", shardIdx, len(s.pending))
	}
	if s.e.closed.Load() {
		return ErrClosed
	}
	if s.e.shards[shardIdx].rsink == nil {
		return ErrNoReportSink
	}
	ck, err := s.stagedChunk(shardIdx, true)
	if err != nil {
		return err
	}
	ck.recs = stageInto(ck.recs, r, s.e.cfg.ChunkFrames)
	if tw := s.e.cfg.Trace; tw != nil {
		h := tw.Begin(&s.smp)
		h.Stamp(trace.StSubmit)
		ck.trcs = handleInto(ck.trcs, h, s.e.cfg.ChunkFrames)
	}
	if nowNs > ck.nowNs {
		ck.nowNs = nowNs
	}
	if len(ck.recs) >= s.e.cfg.ChunkFrames {
		if s.coupled {
			return s.Flush()
		}
		s.pending[shardIdx] = nil
		return s.e.send(s.e.shards[shardIdx], ck)
	}
	return nil
}

// Flush queues every non-empty staged chunk.
func (s *Submitter) Flush() error {
	for i, ck := range s.pending {
		if ck == nil || ck.count() == 0 {
			continue
		}
		s.pending[i] = nil
		if err := s.e.send(s.e.shards[i], ck); err != nil {
			return err
		}
	}
	return nil
}

// Drain blocks until every report queued before the call has been
// processed and every shard's sink has been flushed at nowNs (or the
// latest report timestamp, whichever is later). Producer-staged chunks
// are not covered: Flush Submitters first. The engine keeps accepting
// reports afterwards.
func (e *Engine) Drain(nowNs uint64) error {
	e.mu.RLock()
	if e.closed.Load() {
		e.mu.RUnlock()
		return ErrClosed
	}
	done := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		done[i] = make(chan struct{})
		// Barriers always block: they must never be shed, and FIFO
		// ordering guarantees all earlier reports finish first.
		sh.ch <- &chunk{nowNs: nowNs, drain: done[i]}
	}
	e.mu.RUnlock()
	for _, ch := range done {
		<-ch
	}
	return e.Err()
}

// Close stops the engine: subsequent submissions and Drain fail with
// ErrClosed, queued chunks are processed, sinks get a final flush, and
// all workers exit before Close returns. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed.Load() {
		e.mu.Unlock()
		e.wg.Wait()
		return e.Err()
	}
	e.closed.Store(true)
	for _, sh := range e.shards {
		close(sh.ch)
	}
	e.mu.Unlock()
	e.wg.Wait()
	return e.Err()
}

// Closed reports whether Close has been called.
func (e *Engine) Closed() bool { return e.closed.Load() }

// Err returns the first sink error the engine observed, if any.
func (e *Engine) Err() error {
	if p := e.firstErr.Load(); p != nil {
		return *p
	}
	return nil
}

// ShardStats snapshots shard i's counters.
func (e *Engine) ShardStats(i int) Stats { return e.shards[i].ctr.snapshot() }

// Stats sums counters across shards.
func (e *Engine) Stats() Stats {
	var total Stats
	for i := range e.shards {
		total.Add(e.ShardStats(i))
	}
	return total
}

func (e *Engine) recordErr(err error) {
	e.firstErr.CompareAndSwap(nil, &err)
}

// run is the per-shard worker: batched dequeue, in-order processing,
// periodic flush, flush-on-barrier, final flush on Close.
func (e *Engine) run(sh *shard) {
	defer e.wg.Done()
	batch := make([]*chunk, 0, e.cfg.Batch)
	var lastNow uint64
	sinceFlush := 0
	// pendingDrains holds barrier acks deferred to the end of the
	// dequeue batch: the BatchEnd callback must run before a Drain
	// caller is released, so Drain is a true quiesce point (the sink's
	// batch-granular state — e.g. a WAL's every-batch fsync — is settled
	// when Drain returns).
	var pendingDrains []chan struct{}
	// scratch is the decompression target for staged reports: one
	// worker-lifetime value, overwritten per record.
	var scratch wire.Report

	flush := func(nowNs uint64) {
		if nowNs > lastNow {
			lastNow = nowNs
		}
		if err := sh.sink.Flush(lastNow); err != nil {
			sh.ctr.errors.Add(1)
			e.recordErr(err)
		}
		sh.ctr.flushes.Add(1)
		sinceFlush = 0
	}

	process := func(ck *chunk) {
		if ck.nowNs > lastNow {
			lastNow = ck.nowNs
		}
		if ck.drain != nil {
			flush(ck.nowNs)
			pendingDrains = append(pendingDrains, ck.drain)
			return
		}
		off := 0
		for _, ln := range ck.lens {
			frame := ck.data[off : off+int(ln)]
			off += int(ln)
			if err := sh.sink.ProcessFrame(frame, lastNow); err != nil {
				sh.ctr.errors.Add(1)
				e.recordErr(err)
			}
		}
		// Structured fast path: hand staged records straight to the
		// sink, no frame parse (and, for StagedSinks, no decompression
		// either). Submission guarantees recs is empty when the sink
		// lacks ReportSink support. Traced records get their dequeue
		// stamp here and release the data-side trace reference after
		// the sink call; the handle must be (re)set for EVERY record
		// when tracing is live — including the invalid handle — so the
		// sink never stamps a stale, recycled trace slot.
		if sh.ssink != nil {
			tracing := e.cfg.Trace != nil && sh.tsink != nil
			for i := range ck.recs {
				var h trace.Handle
				if i < len(ck.trcs) {
					h = ck.trcs[i]
					h.Stamp(trace.StDequeue)
				}
				if tracing {
					sh.tsink.SetTraceHandle(h)
				}
				if err := sh.ssink.ProcessStaged(&ck.recs[i], lastNow); err != nil {
					sh.ctr.errors.Add(1)
					e.recordErr(err)
				}
				h.Finish()
			}
		} else {
			for i := range ck.recs {
				var h trace.Handle
				if i < len(ck.trcs) {
					h = ck.trcs[i]
					h.Stamp(trace.StDequeue)
				}
				if err := sh.rsink.ProcessReport(ck.recs[i].View(&scratch), lastNow); err != nil {
					sh.ctr.errors.Add(1)
					e.recordErr(err)
				}
				h.Finish()
			}
		}
		n := ck.count()
		sh.ctr.processed.Add(uint64(n))
		sinceFlush += n
		e.pool.Put(ck)
		if e.cfg.FlushEvery > 0 && sinceFlush >= e.cfg.FlushEvery {
			flush(lastNow)
		}
	}

	for {
		ck, ok := <-sh.ch
		if !ok {
			flush(lastNow)
			return
		}
		// Opportunistically fill the batch without blocking.
		batch = append(batch[:0], ck)
		closed := false
	fill:
		for len(batch) < e.cfg.Batch {
			select {
			case next, open := <-sh.ch:
				if !open {
					closed = true
					break fill
				}
				batch = append(batch, next)
			default:
				break fill
			}
		}
		sh.ctr.batches.Add(1)
		// Span the whole batch (not per report): two clock reads
		// amortised over up to Batch×ChunkFrames reports, and the
		// histogram's sum is exactly the worker's busy time — the
		// numerator of the per-shard utilization report.
		span := obs.Start(sh.ctr.batchNs)
		for _, ck := range batch {
			process(ck)
		}
		if sh.bsink != nil {
			if err := sh.bsink.BatchEnd(lastNow); err != nil {
				sh.ctr.errors.Add(1)
				e.recordErr(err)
			}
		}
		span.End()
		for _, d := range pendingDrains {
			close(d)
		}
		pendingDrains = pendingDrains[:0]
		if closed {
			flush(lastNow)
			return
		}
	}
}
