package engine

import (
	"errors"
	"runtime/debug"
	"testing"

	"dta/internal/wire"
)

// reportRecordSink extends recordSink with the structured path,
// snapshotting each report it receives.
type reportRecordSink struct {
	recordSink
	reports []wire.Report
	datas   [][]byte
}

func (s *reportRecordSink) ProcessReport(r *wire.Report, nowNs uint64) error {
	s.ops = append(s.ops, "r")
	s.frames++
	s.lastNow = nowNs
	cp := *r
	cp.Data = append([]byte(nil), r.Data...)
	s.reports = append(s.reports, cp)
	s.datas = append(s.datas, cp.Data)
	return s.err
}

func kwReport(key uint64, data []byte) *wire.Report {
	return &wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: 2, DataLen: uint16(len(data)), Key: wire.KeyFromUint64(key)},
		Data:     data,
	}
}

func TestSubmitReportRoundTrip(t *testing.T) {
	sink := &reportRecordSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 4})
	sub := e.Submitter()
	data := []byte{9, 8, 7}
	for i := 0; i < 10; i++ {
		if err := sub.SubmitReport(0, kwReport(uint64(i), data), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(100); err != nil {
		t.Fatal(err)
	}
	if len(sink.reports) != 10 {
		t.Fatalf("sink saw %d reports, want 10", len(sink.reports))
	}
	for i, r := range sink.reports {
		if r.Header.Primitive != wire.PrimKeyWrite {
			t.Fatalf("report %d: primitive %v", i, r.Header.Primitive)
		}
		if r.KeyWrite.Key != wire.KeyFromUint64(uint64(i)) {
			t.Fatalf("report %d: wrong key (order not preserved?)", i)
		}
		if r.KeyWrite.Redundancy != 2 || len(r.Data) != 3 || r.Data[0] != 9 {
			t.Fatalf("report %d: fields corrupted: %+v data=%v", i, r.KeyWrite, r.Data)
		}
	}
	st := e.Stats()
	if st.Enqueued != 10 || st.Processed != 10 {
		t.Fatalf("stats = %+v, want 10 enqueued+processed", st)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitReportPayloadSnapshot verifies the staged copy is immune to
// the producer reusing its payload buffer — the whole point of the
// inline payload array.
func TestSubmitReportPayloadSnapshot(t *testing.T) {
	sink := &reportRecordSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 8})
	sub := e.Submitter()
	buf := []byte{1, 1, 1, 1}
	if err := sub.SubmitReport(0, kwReport(1, buf), 0); err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte{2, 2, 2, 2}) // producer reuses its buffer
	if err := sub.SubmitReport(0, kwReport(2, buf), 0); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	if got := sink.datas[0]; got[0] != 1 {
		t.Fatalf("first report data = %v, want the pre-reuse snapshot", got)
	}
	if got := sink.datas[1]; got[0] != 2 {
		t.Fatalf("second report data = %v", got)
	}
	e.Close()
}

// TestSubmitterModeSwitchFlushes checks that interleaving frame and
// structured submissions on one shard preserves per-producer FIFO order
// (the staged chunk is flushed when the representation changes).
func TestSubmitterModeSwitchFlushes(t *testing.T) {
	sink := &reportRecordSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 100})
	sub := e.Submitter()
	if err := sub.SubmitReport(0, kwReport(1, nil), 0); err != nil {
		t.Fatal(err)
	}
	if err := sub.Submit(0, []byte{0xab}, 0); err != nil {
		t.Fatal(err)
	}
	if err := sub.SubmitReport(0, kwReport(2, nil), 0); err != nil {
		t.Fatal(err)
	}
	if err := sub.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	want := []string{"r", "p", "r", "f"}
	if len(sink.ops) != len(want) {
		t.Fatalf("ops = %v, want %v", sink.ops, want)
	}
	for i := range want {
		if sink.ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v (FIFO across mode switch)", sink.ops, want)
		}
	}
	e.Close()
}

func TestSubmitReportToFrameOnlySink(t *testing.T) {
	sink := &recordSink{} // no ProcessReport
	e := mustEngine(t, []Sink{sink}, Config{})
	defer e.Close()
	sub := e.Submitter()
	if err := sub.SubmitReport(0, kwReport(1, nil), 0); !errors.Is(err, ErrNoReportSink) {
		t.Fatalf("err = %v, want ErrNoReportSink", err)
	}
	if err := e.EnqueueReport(0, kwReport(1, nil), 0); !errors.Is(err, ErrNoReportSink) {
		t.Fatalf("EnqueueReport err = %v, want ErrNoReportSink", err)
	}
}

func TestEnqueueReportBypassesBatching(t *testing.T) {
	sink := &reportRecordSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 100})
	if err := e.EnqueueReport(0, kwReport(7, []byte{4}), 42); err != nil {
		t.Fatal(err)
	}
	if err := e.Drain(42); err != nil {
		t.Fatal(err)
	}
	if len(sink.reports) != 1 || sink.reports[0].KeyWrite.Key != wire.KeyFromUint64(7) {
		t.Fatalf("reports = %+v", sink.reports)
	}
	e.Close()
}

// TestStructuredSteadyStateZeroAllocs pins the structured submission
// path at zero allocations per report once the chunk pool is warm. GC is
// disabled for the measurement so sync.Pool victim clearing cannot
// inject warmup re-allocations.
func TestStructuredSteadyStateZeroAllocs(t *testing.T) {
	sink := &nullReportSink{}
	e := mustEngine(t, []Sink{sink}, Config{ChunkFrames: 32, QueueDepth: 64})
	defer e.Close()
	sub := e.Submitter()
	rep := kwReport(1, []byte{1, 2, 3, 4})

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the pool and the chunk slices.
	for i := 0; i < 10_000; i++ {
		if err := sub.SubmitReport(0, rep, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(2000, func() {
		if err := sub.SubmitReport(0, rep, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("structured submit allocated %.2f/op, want 0", allocs)
	}
}

// nullReportSink discards everything (for allocation measurements the
// recording sinks would themselves allocate).
type nullReportSink struct{ n int }

func (s *nullReportSink) ProcessFrame(frame []byte, nowNs uint64) error    { s.n++; return nil }
func (s *nullReportSink) ProcessReport(r *wire.Report, nowNs uint64) error { s.n++; return nil }
func (s *nullReportSink) Flush(nowNs uint64) error                         { return nil }
