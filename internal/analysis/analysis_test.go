package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{4, 0, 1}, {4, 1, 4}, {4, 2, 6}, {4, 4, 1},
		{8, 3, 56}, {1, 2, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := Binom(c.n, c.k); got != c.want {
			t.Errorf("Binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestPOverwriteLimits(t *testing.T) {
	if p := POverwrite(0, 2); p != 0 {
		t.Errorf("α=0: %v", p)
	}
	if p := POverwrite(100, 2); p < 0.9999 {
		t.Errorf("α→∞: %v", p)
	}
}

func TestBoundsAreProbabilities(t *testing.T) {
	f := func(a, n, qk uint8) bool {
		alpha := float64(a%200) / 50.0
		nn := int(n%8) + 1
		q := float64(qk) / 255.0
		e := EmptyReturnBound(alpha, nn, q)
		w := WrongOutputBound(alpha, nn, q)
		s := SuccessEstimate(alpha, nn)
		return e >= -1e-12 && e <= 1+1e-9 && w >= 0 && w <= 1 && s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestEmptyReturnMonotoneInAlpha(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		prev := -1.0
		for alpha := 0.0; alpha <= 2.0; alpha += 0.05 {
			p := EmptyReturnBound(alpha, n, math.Pow(2, -32))
			if p < prev-1e-12 {
				t.Fatalf("N=%d: bound decreased at α=%.2f", n, alpha)
			}
			prev = p
		}
	}
}

func TestSuccessPlusEmptyComplementary(t *testing.T) {
	// With negligible masquerade probability, 1 - SuccessEstimate equals
	// the dominant term of the empty-return bound.
	for _, n := range []int{1, 2, 4, 8} {
		for _, alpha := range []float64{0.1, 0.5, 1.0} {
			fail := 1 - SuccessEstimate(alpha, n)
			bound := EmptyReturnBound(alpha, n, 0)
			if math.Abs(fail-bound) > 1e-12 {
				t.Errorf("N=%d α=%.1f: 1-success=%v, bound=%v", n, alpha, fail, bound)
			}
		}
	}
}

func TestEdgeRedundancy(t *testing.T) {
	if EmptyReturnBound(1, 0, 0.5) != 0 || WrongOutputBound(1, 0, 0.5) != 0 {
		t.Error("N=0 should yield zero bounds")
	}
	if SuccessEstimate(1, 0) != 0 {
		t.Error("N=0 success should be 0")
	}
}
