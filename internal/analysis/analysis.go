// Package analysis implements the shared probabilistic machinery behind
// the paper's Appendix A.5 (Key-Write) and A.6 (Postcarding) bounds.
//
// Both primitives store a queried key's information at N slots/chunks
// chosen by independent hashes; subsequent writes overwrite locations at
// Poisson rate; and an overwritten location masquerades as valid with
// some per-location collision probability q (2^−b for Key-Write,
// ((|V|+1)·2^−b)^B for Postcarding). The bound structure is identical —
// only q differs — so it lives here once.
package analysis

import "math"

// Binom returns the binomial coefficient C(n, k) for small n.
func Binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// POverwrite returns the Poisson-approximated probability that one
// location is overwritten after α·M further keys were written with
// redundancy N into M locations.
func POverwrite(alpha float64, n int) float64 {
	return 1 - math.Exp(-alpha*float64(n))
}

// EmptyReturnBound bounds the probability that a query returns no answer:
// the sum of (1) all N locations overwritten with none masquerading as
// valid, (2) all overwritten with two or more masquerading and
// potentially disagreeing, and (3) some locations surviving but at least
// one overwritten location masquerading, contaminating consensus.
// q is the per-location masquerade probability.
func EmptyReturnBound(alpha float64, n int, q float64) float64 {
	if n < 1 {
		return 0
	}
	pOver := POverwrite(alpha, n)
	pOverN := math.Pow(pOver, float64(n))

	term1 := pOverN * math.Pow(1-q, float64(n))
	term2 := pOverN * (1 - math.Pow(1-q, float64(n)) -
		float64(n)*q*math.Pow(1-q, float64(n-1)))
	term3 := 0.0
	for j := 1; j < n; j++ {
		term3 += Binom(n, j) *
			math.Pow(pOver, float64(j)) *
			math.Exp(-alpha*float64(n)*float64(n-j)) *
			(1 - math.Pow(1-q, float64(j)))
	}
	return math.Min(1, term1+term2+term3)
}

// WrongOutputBound bounds the probability that a query answers with a
// wrong value: all N locations overwritten and at least one masquerading
// as valid. At extreme parameters the paper's expression exceeds 1; it is
// clamped, as any value ≥ 1 is a vacuous but valid bound.
func WrongOutputBound(alpha float64, n int, q float64) float64 {
	if n < 1 {
		return 0
	}
	pOver := POverwrite(alpha, n)
	return math.Min(1, math.Pow(pOver, float64(n))*float64(n)*q)
}

// SuccessEstimate estimates query success when masquerade collisions are
// negligible: at least one of the N locations survived.
func SuccessEstimate(alpha float64, n int) float64 {
	if n < 1 {
		return 0
	}
	return 1 - math.Pow(POverwrite(alpha, n), float64(n))
}
