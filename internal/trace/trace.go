// Package trace generates synthetic data-center traffic used to drive the
// telemetry systems. The paper replays real DC traces (Benson et al., IMC
// 2010 [7]) for Fig. 7b; those traces are not redistributable, so this
// package produces a statistically similar workload: Zipf-distributed
// flow popularity, heavy-tailed (log-normal) flow sizes, small-packet
// dominance, and per-packet loss/retransmission/timeout annotations that
// Marple-style queries consume. Everything is deterministic per seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"dta/internal/wire"
)

// FlowKey is an IPv4 5-tuple.
type FlowKey struct {
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	Proto            uint8
}

// Key packs the 5-tuple into a DTA telemetry key.
func (f FlowKey) Key() wire.Key {
	return wire.FiveTuple(f.SrcIP, f.DstIP, f.SrcPort, f.DstPort, f.Proto)
}

// String renders the flow for diagnostics.
func (f FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%d",
		f.SrcIP[0], f.SrcIP[1], f.SrcIP[2], f.SrcIP[3], f.SrcPort,
		f.DstIP[0], f.DstIP[1], f.DstIP[2], f.DstIP[3], f.DstPort, f.Proto)
}

// Packet is one observed packet at a switch.
type Packet struct {
	Flow FlowKey
	// Seq is the TCP-like sequence number (bytes).
	Seq uint32
	// Size is the wire size in bytes.
	Size int
	// Time is the observation time in nanoseconds since trace start.
	Time uint64
	// Lost marks a packet dropped downstream of this switch.
	Lost bool
	// Retransmission marks a packet re-sent after a loss (out of
	// sequence at observers past the loss point).
	Retransmission bool
	// FlowletStart marks the first packet after an idle gap larger than
	// the flowlet threshold.
	FlowletStart bool
	// TimedOut marks a packet whose flow just experienced a TCP RTO.
	TimedOut bool
	// OutOfOrder marks a packet delivered past a later one without any
	// loss (multipath reordering). TCP out-of-sequence monitors count
	// both these and retransmissions.
	OutOfOrder bool
}

// Config parameterises the generator.
type Config struct {
	// Flows is the number of distinct flows in the population.
	Flows int
	// ZipfS is the Zipf skew of flow popularity (>1; DC traces are
	// commonly fit around 1.05–1.3).
	ZipfS float64
	// MeanPktSize is the mean packet size in bytes.
	MeanPktSize int
	// LossRate is the per-packet loss probability.
	LossRate float64
	// TimeoutRate is the per-packet probability that a loss escalates to
	// an RTO rather than fast retransmit.
	TimeoutRate float64
	// ReorderProb is the per-packet probability of out-of-order delivery
	// without loss (multipath or priority inversion).
	ReorderProb float64
	// FlowletGapProb is the per-packet probability that the flow paused
	// long enough to start a new flowlet.
	FlowletGapProb float64
	// MeanPktGapNs is the mean inter-packet gap of the aggregate stream.
	MeanPktGapNs float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultConfig returns a workload resembling the paper's university DC
// trace: ~10K active flows, skewed popularity, 0.1% loss.
func DefaultConfig() Config {
	return Config{
		Flows:          10000,
		ZipfS:          1.1,
		MeanPktSize:    850,
		LossRate:       0.001,
		TimeoutRate:    0.2,
		FlowletGapProb: 0.02,
		MeanPktGapNs:   100,
		Seed:           1,
	}
}

// Generator produces a deterministic packet stream.
type Generator struct {
	cfg   Config
	rnd   *rand.Rand
	zipf  *rand.Zipf
	flows []FlowKey
	seqs  []uint32
	now   uint64
	// pendingRetx schedules one retransmission per lost packet.
	pendingRetx []retx
}

type retx struct {
	flow    int
	seq     uint32
	size    int
	timeout bool
}

// NewGenerator builds a generator, materialising the flow population.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Flows < 1 {
		return nil, fmt.Errorf("trace: flows %d < 1", cfg.Flows)
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("trace: zipf skew %v must exceed 1", cfg.ZipfS)
	}
	if cfg.MeanPktSize < 64 {
		return nil, fmt.Errorf("trace: mean packet size %d below minimum frame", cfg.MeanPktSize)
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	g := &Generator{
		cfg:   cfg,
		rnd:   rnd,
		zipf:  rand.NewZipf(rnd, cfg.ZipfS, 1, uint64(cfg.Flows-1)),
		flows: make([]FlowKey, cfg.Flows),
		seqs:  make([]uint32, cfg.Flows),
	}
	for i := range g.flows {
		g.flows[i] = g.randomFlow()
	}
	return g, nil
}

// randomFlow draws a plausible intra-DC 5-tuple.
func (g *Generator) randomFlow() FlowKey {
	f := FlowKey{
		SrcPort: uint16(g.rnd.Intn(1<<16-1024) + 1024),
		DstPort: uint16([]int{80, 443, 8080, 3306, 6379, 9092}[g.rnd.Intn(6)]),
		Proto:   6, // TCP dominates DC traffic
	}
	if g.rnd.Float64() < 0.1 {
		f.Proto = 17
	}
	f.SrcIP = [4]byte{10, byte(g.rnd.Intn(4)), byte(g.rnd.Intn(256)), byte(g.rnd.Intn(254) + 1)}
	f.DstIP = [4]byte{10, byte(g.rnd.Intn(4)), byte(g.rnd.Intn(256)), byte(g.rnd.Intn(254) + 1)}
	return f
}

// Flows exposes the flow population (e.g. to pre-register value spaces).
func (g *Generator) Flows() []FlowKey { return g.flows }

// pktSize draws a bimodal packet size: DC traces show a mass of ACK-sized
// packets and a mass of MTU-sized packets.
func (g *Generator) pktSize() int {
	if g.rnd.Float64() < 0.4 {
		return 64 + g.rnd.Intn(64)
	}
	// Log-normal body around the mean, capped at MTU.
	s := int(math.Exp(g.rnd.NormFloat64()*0.35) * float64(g.cfg.MeanPktSize))
	if s < 64 {
		s = 64
	}
	if s > 1500 {
		s = 1500
	}
	return s
}

// Next produces the next packet of the aggregate stream.
func (g *Generator) Next() Packet {
	g.now += uint64(g.rnd.ExpFloat64()*g.cfg.MeanPktGapNs) + 1

	// Service a scheduled retransmission first, if any.
	if len(g.pendingRetx) > 0 && g.rnd.Float64() < 0.5 {
		r := g.pendingRetx[0]
		g.pendingRetx = g.pendingRetx[1:]
		return Packet{
			Flow:           g.flows[r.flow],
			Seq:            r.seq,
			Size:           r.size,
			Time:           g.now,
			Retransmission: true,
			TimedOut:       r.timeout,
		}
	}

	fi := int(g.zipf.Uint64())
	p := Packet{
		Flow: g.flows[fi],
		Seq:  g.seqs[fi],
		Size: g.pktSize(),
		Time: g.now,
	}
	g.seqs[fi] += uint32(p.Size)
	if g.rnd.Float64() < g.cfg.FlowletGapProb {
		p.FlowletStart = true
	}
	if g.rnd.Float64() < g.cfg.ReorderProb {
		p.OutOfOrder = true
	}
	if g.rnd.Float64() < g.cfg.LossRate {
		p.Lost = true
		g.pendingRetx = append(g.pendingRetx, retx{
			flow:    fi,
			seq:     p.Seq,
			size:    p.Size,
			timeout: g.rnd.Float64() < g.cfg.TimeoutRate,
		})
	}
	return p
}

// SwitchRates reproduces Table 1: per-switch telemetry report generation
// rates for a 6.4 Tbps switch at ~40% load, in reports per second.
type SwitchRates struct {
	INTPostcards  float64 // 0.5% sampling of per-hop latency postcards
	MarpleFlowlet float64
	MarpleTCPOoS  float64
	NetSeerLoss   float64
}

// Table1Rates returns the paper's per-reporter rates.
func Table1Rates() SwitchRates {
	return SwitchRates{
		INTPostcards:  19e6,
		MarpleFlowlet: 7.2e6,
		MarpleTCPOoS:  6.7e6,
		NetSeerLoss:   950e3,
	}
}

// PacketsPerSecond estimates the packet rate of a 6.4 Tbps switch at the
// given utilisation with the given mean packet size: the basis for the
// Table 1 numbers (e.g. 0.5% INT sampling of ~3.8 Gpps ≈ 19 Mpps).
func PacketsPerSecond(capacityBps float64, utilisation float64, meanPktSize int) float64 {
	return capacityBps * utilisation / 8 / float64(meanPktSize)
}
