package trace

import (
	"math"
	"testing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Flows: 0, ZipfS: 1.1, MeanPktSize: 800},
		{Flows: 10, ZipfS: 1.0, MeanPktSize: 800},
		{Flows: 10, ZipfS: 1.1, MeanPktSize: 10},
	}
	for _, c := range bad {
		if _, err := NewGenerator(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := NewGenerator(cfg)
	b, _ := NewGenerator(cfg)
	for i := 0; i < 1000; i++ {
		pa, pb := a.Next(), b.Next()
		if pa != pb {
			t.Fatalf("packet %d diverged: %+v vs %+v", i, pa, pb)
		}
	}
	cfg.Seed = 2
	c, _ := NewGenerator(cfg)
	diff := 0
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical streams")
	}
}

func TestPacketInvariants(t *testing.T) {
	g, _ := NewGenerator(DefaultConfig())
	var lastTime uint64
	for i := 0; i < 20000; i++ {
		p := g.Next()
		if p.Size < 64 || p.Size > 1500 {
			t.Fatalf("packet size %d outside [64,1500]", p.Size)
		}
		if p.Time <= lastTime {
			t.Fatalf("time not strictly increasing: %d then %d", lastTime, p.Time)
		}
		lastTime = p.Time
		if p.Flow.Proto != 6 && p.Flow.Proto != 17 {
			t.Fatalf("unexpected proto %d", p.Flow.Proto)
		}
	}
}

func TestLossAndRetransmissionPaired(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LossRate = 0.05
	g, _ := NewGenerator(cfg)
	losses, retx := 0, 0
	for i := 0; i < 50000; i++ {
		p := g.Next()
		if p.Lost {
			losses++
		}
		if p.Retransmission {
			retx++
		}
	}
	if losses == 0 {
		t.Fatal("no losses at 5% loss rate")
	}
	// Every loss schedules exactly one retransmission; allow the tail of
	// the queue to be outstanding.
	if retx > losses || losses-retx > 200 {
		t.Errorf("losses=%d retx=%d not paired", losses, retx)
	}
	// Loss rate within 2x of configured.
	rate := float64(losses) / 50000
	if rate < cfg.LossRate/2 || rate > cfg.LossRate*2 {
		t.Errorf("loss rate %.4f vs configured %.4f", rate, cfg.LossRate)
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flows = 1000
	g, _ := NewGenerator(cfg)
	counts := make(map[FlowKey]int)
	const pkts = 30000
	for i := 0; i < pkts; i++ {
		p := g.Next()
		if !p.Retransmission {
			counts[p.Flow]++
		}
	}
	// Heavy tail: the busiest flow should carry far more than the mean,
	// and a minority of flows should carry the majority of packets.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(pkts) / float64(len(counts))
	if float64(max) < 10*mean {
		t.Errorf("max flow count %d not heavy-tailed (mean %.1f)", max, mean)
	}
}

func TestFiveTupleKeyRoundTrip(t *testing.T) {
	f := FlowKey{
		SrcIP: [4]byte{10, 1, 2, 3}, DstIP: [4]byte{10, 4, 5, 6},
		SrcPort: 1234, DstPort: 443, Proto: 6,
	}
	k := f.Key()
	if k[0] != 10 || k[12] != 6 {
		t.Errorf("key layout: %v", k)
	}
	if f.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestTable1Rates(t *testing.T) {
	r := Table1Rates()
	if r.INTPostcards != 19e6 || r.MarpleFlowlet != 7.2e6 || r.MarpleTCPOoS != 6.7e6 || r.NetSeerLoss != 950e3 {
		t.Errorf("Table 1 rates drifted: %+v", r)
	}
}

func TestPacketsPerSecondBasis(t *testing.T) {
	// 6.4 Tbps at 40% load with ~850B packets ≈ 376 Mpps; 0.5% sampling
	// lands within a factor of ~2 of Table 1's 19M INT postcards/s
	// (the paper's postcards are per-hop and per sampled packet).
	pps := PacketsPerSecond(6.4e12, 0.40, 850)
	sampled := pps * 0.005
	if sampled < 1e6 || sampled > 4e6 {
		t.Errorf("sampled packet rate %.0f outside plausible range", sampled)
	}
	// With ~5 postcards per sampled packet and event detection the paper
	// reaches 19M; check the same order of magnitude.
	if per := sampled * 5; math.Abs(math.Log10(per/19e6)) > 0.7 {
		t.Errorf("postcard rate %.0f more than ~5x away from 19M", per)
	}
}
