// Package wire implements the packet formats DTA puts on the wire:
// Ethernet, IPv4 and UDP carriers plus the DTA base header and the four
// primitive sub-headers (Fig. 4 of the paper).
//
// Decoding is zero-copy in the style of gopacket's DecodingLayer: a header
// struct is overwritten in place from a byte slice and variable-length
// payloads are returned as sub-slices of the input. Serialization writes
// into a caller-provided buffer so the reporter fast path performs no
// allocation per packet.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors shared by the decoders.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadChecksum = errors.New("wire: bad checksum")
)

// EtherTypeIPv4 is the Ethernet type for IPv4.
const EtherTypeIPv4 = 0x0800

// EthernetLen is the length of an Ethernet II header.
const EthernetLen = 14

// Ethernet is an Ethernet II header.
type Ethernet struct {
	Dst       [6]byte
	Src       [6]byte
	EtherType uint16
}

// Decode parses an Ethernet header from b, returning the bytes consumed.
func (h *Ethernet) Decode(b []byte) (int, error) {
	if len(b) < EthernetLen {
		return 0, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return EthernetLen, nil
}

// SerializeTo writes the header into b, returning the bytes written.
// b must have room for EthernetLen bytes.
func (h *Ethernet) SerializeTo(b []byte) int {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
	return EthernetLen
}

// IPv4Len is the length of an IPv4 header without options.
const IPv4Len = 20

// ProtoUDP is the IPv4 protocol number for UDP.
const ProtoUDP = 17

// IPv4 is an IPv4 header without options.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // upper 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      [4]byte
	Dst      [4]byte
}

// Decode parses an IPv4 header from b. Options are rejected (the DTA data
// plane never emits them), and the header checksum is verified.
func (h *IPv4) Decode(b []byte) (int, error) {
	if len(b) < IPv4Len {
		return 0, ErrTruncated
	}
	vihl := b[0]
	if vihl>>4 != 4 {
		return 0, ErrBadVersion
	}
	ihl := int(vihl&0x0f) * 4
	if ihl != IPv4Len {
		return 0, fmt.Errorf("wire: IPv4 options unsupported (ihl=%d)", ihl)
	}
	if Checksum16(b[:IPv4Len]) != 0 {
		return 0, ErrBadChecksum
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	frag := binary.BigEndian.Uint16(b[6:8])
	h.Flags = uint8(frag >> 13)
	h.FragOff = frag & 0x1fff
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return IPv4Len, nil
}

// SerializeTo writes the header into b with a freshly computed checksum,
// returning the bytes written. TotalLen must already be set by the caller.
func (h *IPv4) SerializeTo(b []byte) int {
	b[0] = 4<<4 | 5
	b[1] = h.TOS
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	binary.BigEndian.PutUint16(b[6:8], uint16(h.Flags)<<13|h.FragOff&0x1fff)
	b[8] = h.TTL
	b[9] = h.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := Checksum16(b[:IPv4Len])
	binary.BigEndian.PutUint16(b[10:12], cs)
	h.Checksum = cs
	return IPv4Len
}

// UDPLen is the length of a UDP header.
const UDPLen = 8

// UDP is a UDP header. DTA, like many telemetry reporting planes, sets the
// UDP checksum to zero (legal for IPv4) to spare switch pipelines the
// payload pass.
type UDP struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16
}

// Decode parses a UDP header from b.
func (h *UDP) Decode(b []byte) (int, error) {
	if len(b) < UDPLen {
		return 0, ErrTruncated
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	if int(h.Length) < UDPLen {
		return 0, fmt.Errorf("wire: UDP length %d below header size", h.Length)
	}
	return UDPLen, nil
}

// SerializeTo writes the header into b with a zero checksum, returning the
// bytes written. Length must already be set by the caller.
func (h *UDP) SerializeTo(b []byte) int {
	binary.BigEndian.PutUint16(b[0:2], h.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], h.DstPort)
	binary.BigEndian.PutUint16(b[4:6], h.Length)
	b[6], b[7] = 0, 0
	return UDPLen
}

// Checksum16 computes the ones-complement Internet checksum over b.
// Checksumming a buffer that embeds a correct checksum yields zero.
func Checksum16(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
