package wire

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire decoders. `go test` runs the seed corpus;
// `go test -fuzz=FuzzDecodeFrame ./internal/wire` explores further.

func seedFrames() [][]byte {
	var seeds [][]byte
	buf := make([]byte, MaxReportLen)
	f := &Frame{SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 9, 0, 1}, SrcPort: 999}
	reports := []Report{
		{
			Header:   Header{Version: Version, Primitive: PrimKeyWrite},
			KeyWrite: KeyWrite{Redundancy: 2, Key: KeyFromUint64(1)},
			Data:     []byte{1, 2, 3, 4},
		},
		{
			Header: Header{Version: Version, Primitive: PrimAppend},
			Append: Append{ListID: 5},
			Data:   bytes.Repeat([]byte{7}, 18),
		},
		{
			Header:       Header{Version: Version, Primitive: PrimKeyIncrement},
			KeyIncrement: KeyIncrement{Redundancy: 1, Key: KeyFromUint64(2), Delta: 99},
		},
		{
			Header:   Header{Version: Version, Primitive: PrimPostcarding, Flags: FlagImmediate},
			Postcard: Postcard{Key: KeyFromUint64(3), Hop: 2, PathLen: 5, Value: 77},
		},
	}
	for i := range reports {
		n, err := SerializeFrame(buf, f, &reports[i])
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, append([]byte(nil), buf[:n]...))
	}
	return seeds
}

func FuzzDecodeFrame(f *testing.F) {
	for _, s := range seedFrames() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p ParsedFrame
		if err := DecodeFrame(data, &p); err != nil {
			return
		}
		if !p.IsDTA {
			return
		}
		// Any frame that decodes must re-serialise and decode to the
		// same report.
		buf := make([]byte, MaxReportLen)
		n, err := SerializeReport(buf, &p.Report)
		if err != nil {
			t.Fatalf("decoded report does not serialise: %v", err)
		}
		var again Report
		if err := DecodeReport(buf[:n], &again); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.Header != p.Report.Header {
			t.Fatalf("header changed: %+v vs %+v", again.Header, p.Report.Header)
		}
	})
}

func FuzzDecodeReport(f *testing.F) {
	buf := make([]byte, MaxReportLen)
	for _, s := range seedFrames() {
		// Strip the L2–L4 carriers to seed the inner decoder.
		if len(s) > EthernetLen+IPv4Len+UDPLen {
			f.Add(s[EthernetLen+IPv4Len+UDPLen:])
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r Report
		if err := DecodeReport(data, &r); err != nil {
			return
		}
		n, err := SerializeReport(buf, &r)
		if err != nil {
			t.Fatalf("serialise after decode: %v", err)
		}
		var again Report
		if err := DecodeReport(buf[:n], &again); err != nil {
			t.Fatalf("round trip: %v", err)
		}
	})
}
