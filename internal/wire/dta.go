package wire

import (
	"encoding/binary"
	"fmt"
)

// Port is the UDP destination port DTA reports are addressed to. The
// translator's parser keys on it to divert reports out of the user-traffic
// forwarding path.
const Port = 40050

// Version is the protocol version emitted by this implementation.
const Version = 1

// Primitive identifies the DTA collection primitive a report invokes.
type Primitive uint8

// The four primitives of the paper (§4) plus Postcarding.
const (
	PrimInvalid      Primitive = 0
	PrimKeyWrite     Primitive = 1
	PrimAppend       Primitive = 2
	PrimKeyIncrement Primitive = 3
	PrimPostcarding  Primitive = 4
)

// String names the primitive.
func (p Primitive) String() string {
	switch p {
	case PrimKeyWrite:
		return "Key-Write"
	case PrimAppend:
		return "Append"
	case PrimKeyIncrement:
		return "Key-Increment"
	case PrimPostcarding:
		return "Postcarding"
	default:
		return fmt.Sprintf("Primitive(%d)", uint8(p))
	}
}

// Header flags.
const (
	// FlagImmediate asks the translator to raise an RDMA-immediate
	// interrupt at the collector so the CPU learns of the report right
	// away (§7, "Push notifications").
	FlagImmediate = 1 << 0
)

// HeaderLen is the length of the DTA base header.
const HeaderLen = 4

// Header is the DTA base header that follows UDP: it identifies the
// protocol version, the primitive (which selects the sub-header that
// follows), and per-report flags.
type Header struct {
	Version   uint8
	Primitive Primitive
	Flags     uint8
	Reserved  uint8
}

// Decode parses the base header from b.
func (h *Header) Decode(b []byte) (int, error) {
	if len(b) < HeaderLen {
		return 0, ErrTruncated
	}
	h.Version = b[0]
	if h.Version != Version {
		return 0, ErrBadVersion
	}
	h.Primitive = Primitive(b[1])
	h.Flags = b[2]
	h.Reserved = b[3]
	return HeaderLen, nil
}

// SerializeTo writes the base header into b.
func (h *Header) SerializeTo(b []byte) int {
	b[0] = h.Version
	b[1] = uint8(h.Primitive)
	b[2] = h.Flags
	b[3] = h.Reserved
	return HeaderLen
}

// KeySize is the fixed width of DTA telemetry keys. Sixteen bytes covers
// the largest keys used by the monitoring systems in Table 2 (an IPv4 flow
// 5-tuple is 13 bytes; <switchID, 5-tuple> fits with packing).
const KeySize = 16

// Key is a fixed-width telemetry key. Reporters pack their native key
// (5-tuple, source IP, query ID, ...) into it; shorter keys are
// zero-padded.
type Key [KeySize]byte

// KeyFromUint64 packs a 64-bit scalar key.
func KeyFromUint64(v uint64) Key {
	var k Key
	binary.BigEndian.PutUint64(k[:8], v)
	return k
}

// Uint64 reads back the scalar packed by KeyFromUint64.
func (k Key) Uint64() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// FiveTuple packs an IPv4 flow 5-tuple into a Key.
func FiveTuple(srcIP, dstIP [4]byte, srcPort, dstPort uint16, proto uint8) Key {
	var k Key
	copy(k[0:4], srcIP[:])
	copy(k[4:8], dstIP[:])
	binary.BigEndian.PutUint16(k[8:10], srcPort)
	binary.BigEndian.PutUint16(k[10:12], dstPort)
	k[12] = proto
	return k
}

// MaxData is the largest telemetry payload a single Key-Write or Append
// report may carry. It comfortably covers the report sizes of Table 2
// (largest: 20B INT-MD 5-hop path).
const MaxData = 64

// KeyWriteLen is the length of the Key-Write sub-header.
const KeyWriteLen = 4 + KeySize

// KeyWrite is the Key-Write sub-header: store Data under Key with
// N-way redundancy. Data of DataLen bytes follows the sub-header.
type KeyWrite struct {
	Redundancy uint8 // N: number of slots written
	Reserved   uint8
	DataLen    uint16
	Key        Key
}

// Decode parses the sub-header and returns the trailing data view.
func (h *KeyWrite) Decode(b []byte) (data []byte, err error) {
	if len(b) < KeyWriteLen {
		return nil, ErrTruncated
	}
	h.Redundancy = b[0]
	h.Reserved = b[1]
	h.DataLen = binary.BigEndian.Uint16(b[2:4])
	copy(h.Key[:], b[4:4+KeySize])
	if h.Redundancy == 0 {
		return nil, fmt.Errorf("wire: key-write redundancy 0")
	}
	if int(h.DataLen) > MaxData {
		return nil, fmt.Errorf("wire: key-write data %dB exceeds max %d", h.DataLen, MaxData)
	}
	if len(b) < KeyWriteLen+int(h.DataLen) {
		return nil, ErrTruncated
	}
	return b[KeyWriteLen : KeyWriteLen+int(h.DataLen)], nil
}

// SerializeTo writes the sub-header followed by data, returning bytes
// written. h.DataLen is set from len(data).
func (h *KeyWrite) SerializeTo(b []byte, data []byte) int {
	h.DataLen = uint16(len(data))
	b[0] = h.Redundancy
	b[1] = h.Reserved
	binary.BigEndian.PutUint16(b[2:4], h.DataLen)
	copy(b[4:4+KeySize], h.Key[:])
	copy(b[KeyWriteLen:], data)
	return KeyWriteLen + len(data)
}

// AppendLen is the length of the Append sub-header.
const AppendLen = 8

// Append is the Append sub-header: add Data to the tail of list ListID.
// Data of DataLen bytes follows the sub-header.
type Append struct {
	ListID   uint32
	DataLen  uint16
	Reserved uint16
}

// Decode parses the sub-header and returns the trailing data view.
func (h *Append) Decode(b []byte) (data []byte, err error) {
	if len(b) < AppendLen {
		return nil, ErrTruncated
	}
	h.ListID = binary.BigEndian.Uint32(b[0:4])
	h.DataLen = binary.BigEndian.Uint16(b[4:6])
	h.Reserved = binary.BigEndian.Uint16(b[6:8])
	if h.DataLen == 0 || int(h.DataLen) > MaxData {
		return nil, fmt.Errorf("wire: append data %dB out of range (1,%d]", h.DataLen, MaxData)
	}
	if len(b) < AppendLen+int(h.DataLen) {
		return nil, ErrTruncated
	}
	return b[AppendLen : AppendLen+int(h.DataLen)], nil
}

// SerializeTo writes the sub-header followed by data, returning bytes
// written. h.DataLen is set from len(data).
func (h *Append) SerializeTo(b []byte, data []byte) int {
	h.DataLen = uint16(len(data))
	binary.BigEndian.PutUint32(b[0:4], h.ListID)
	binary.BigEndian.PutUint16(b[4:6], h.DataLen)
	binary.BigEndian.PutUint16(b[6:8], h.Reserved)
	copy(b[AppendLen:], data)
	return AppendLen + len(data)
}

// KeyIncrementLen is the length of the Key-Increment sub-header.
const KeyIncrementLen = 4 + KeySize + 8

// KeyIncrement is the Key-Increment sub-header: add Delta to the counter
// stored under Key with N-way redundancy (Count-Min semantics).
type KeyIncrement struct {
	Redundancy uint8
	Reserved   [3]uint8
	Key        Key
	Delta      uint64
}

// Decode parses the sub-header.
func (h *KeyIncrement) Decode(b []byte) (int, error) {
	if len(b) < KeyIncrementLen {
		return 0, ErrTruncated
	}
	h.Redundancy = b[0]
	copy(h.Reserved[:], b[1:4])
	copy(h.Key[:], b[4:4+KeySize])
	h.Delta = binary.BigEndian.Uint64(b[4+KeySize:])
	if h.Redundancy == 0 {
		return 0, fmt.Errorf("wire: key-increment redundancy 0")
	}
	return KeyIncrementLen, nil
}

// SerializeTo writes the sub-header into b.
func (h *KeyIncrement) SerializeTo(b []byte) int {
	b[0] = h.Redundancy
	copy(b[1:4], h.Reserved[:])
	copy(b[4:4+KeySize], h.Key[:])
	binary.BigEndian.PutUint64(b[4+KeySize:], h.Delta)
	return KeyIncrementLen
}

// PostcardLen is the length of the Postcarding sub-header.
const PostcardLen = KeySize + 8

// Postcard is the Postcarding sub-header: hop Hop of the packet/flow
// identified by Key observed Value. PathLen, filled by egress switches,
// lets the translator flush a chunk before all B postcards arrive when the
// path is shorter (§4).
type Postcard struct {
	Key      Key
	Hop      uint8
	PathLen  uint8
	Reserved uint16
	Value    uint32
}

// Decode parses the sub-header.
func (h *Postcard) Decode(b []byte) (int, error) {
	if len(b) < PostcardLen {
		return 0, ErrTruncated
	}
	copy(h.Key[:], b[0:KeySize])
	h.Hop = b[KeySize]
	h.PathLen = b[KeySize+1]
	h.Reserved = binary.BigEndian.Uint16(b[KeySize+2 : KeySize+4])
	h.Value = binary.BigEndian.Uint32(b[KeySize+4 : KeySize+8])
	if h.PathLen != 0 && h.Hop >= h.PathLen {
		return 0, fmt.Errorf("wire: postcard hop %d outside path of length %d", h.Hop, h.PathLen)
	}
	return PostcardLen, nil
}

// SerializeTo writes the sub-header into b.
func (h *Postcard) SerializeTo(b []byte) int {
	copy(b[0:KeySize], h.Key[:])
	b[KeySize] = h.Hop
	b[KeySize+1] = h.PathLen
	binary.BigEndian.PutUint16(b[KeySize+2:KeySize+4], h.Reserved)
	binary.BigEndian.PutUint32(b[KeySize+4:KeySize+8], h.Value)
	return PostcardLen
}
