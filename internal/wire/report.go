package wire

import "fmt"

// Report is a fully parsed DTA report: the base header plus exactly one
// primitive sub-header. Data aliases the input buffer for Key-Write and
// Append reports; callers that retain it past the packet's lifetime must
// copy it.
type Report struct {
	Header       Header
	KeyWrite     KeyWrite
	Append       Append
	KeyIncrement KeyIncrement
	Postcard     Postcard
	Data         []byte
}

// MaxReportLen is an upper bound on a serialized report including
// Ethernet, IPv4 and UDP carriers.
const MaxReportLen = EthernetLen + IPv4Len + UDPLen + HeaderLen + KeyIncrementLen + MaxData

// DecodeReport parses the DTA portion of a packet (everything after UDP)
// into r. It is the translator's ingress parser.
func DecodeReport(b []byte, r *Report) error {
	n, err := r.Header.Decode(b)
	if err != nil {
		return err
	}
	body := b[n:]
	switch r.Header.Primitive {
	case PrimKeyWrite:
		r.Data, err = r.KeyWrite.Decode(body)
	case PrimAppend:
		r.Data, err = r.Append.Decode(body)
	case PrimKeyIncrement:
		_, err = r.KeyIncrement.Decode(body)
		r.Data = nil
	case PrimPostcarding:
		_, err = r.Postcard.Decode(body)
		r.Data = nil
	default:
		return fmt.Errorf("wire: unknown primitive %v", r.Header.Primitive)
	}
	return err
}

// SerializeReport writes the DTA portion of r into b and returns the bytes
// written. r.Header.Primitive selects the sub-header; r.Data supplies the
// payload for Key-Write and Append.
func SerializeReport(b []byte, r *Report) (int, error) {
	n := r.Header.SerializeTo(b)
	switch r.Header.Primitive {
	case PrimKeyWrite:
		n += r.KeyWrite.SerializeTo(b[n:], r.Data)
	case PrimAppend:
		n += r.Append.SerializeTo(b[n:], r.Data)
	case PrimKeyIncrement:
		n += r.KeyIncrement.SerializeTo(b[n:])
	case PrimPostcarding:
		n += r.Postcard.SerializeTo(b[n:])
	default:
		return 0, fmt.Errorf("wire: unknown primitive %v", r.Header.Primitive)
	}
	return n, nil
}

// Frame carries the addressing a reporter stamps on an outgoing report.
type Frame struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   [4]byte
	SrcPort        uint16
	TTL            uint8
	IPID           uint16
}

// SerializeFrame writes a complete Ethernet/IPv4/UDP/DTA packet into b,
// returning the total length. b must have room for MaxReportLen bytes.
func SerializeFrame(b []byte, f *Frame, r *Report) (int, error) {
	const l2 = EthernetLen
	const l3 = EthernetLen + IPv4Len
	const l4 = EthernetLen + IPv4Len + UDPLen
	dtaLen, err := SerializeReport(b[l4:], r)
	if err != nil {
		return 0, err
	}
	eth := Ethernet{Dst: f.DstMAC, Src: f.SrcMAC, EtherType: EtherTypeIPv4}
	eth.SerializeTo(b)
	ttl := f.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4{
		TotalLen: uint16(IPv4Len + UDPLen + dtaLen),
		ID:       f.IPID,
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      f.SrcIP,
		Dst:      f.DstIP,
	}
	ip.SerializeTo(b[l2:])
	udp := UDP{SrcPort: f.SrcPort, DstPort: Port, Length: uint16(UDPLen + dtaLen)}
	udp.SerializeTo(b[l3:])
	return l4 + dtaLen, nil
}

// ParsedFrame is the result of decoding a full packet off the wire.
type ParsedFrame struct {
	Eth    Ethernet
	IP     IPv4
	UDP    UDP
	Report Report
	// IsDTA reports whether the packet was addressed to the DTA port.
	// Non-DTA packets are user traffic the translator forwards untouched.
	IsDTA bool
}

// DecodeFrame parses a complete Ethernet/IPv4/UDP packet. Packets not
// addressed to the DTA UDP port are classified as user traffic
// (IsDTA=false) without error.
func DecodeFrame(b []byte, p *ParsedFrame) error {
	n, err := p.Eth.Decode(b)
	if err != nil {
		return err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		p.IsDTA = false
		return nil
	}
	m, err := p.IP.Decode(b[n:])
	if err != nil {
		return err
	}
	n += m
	if p.IP.Protocol != ProtoUDP {
		p.IsDTA = false
		return nil
	}
	m, err = p.UDP.Decode(b[n:])
	if err != nil {
		return err
	}
	n += m
	if p.UDP.DstPort != Port {
		p.IsDTA = false
		return nil
	}
	p.IsDTA = true
	return DecodeReport(b[n:], &p.Report)
}
