package wire

import "fmt"

// Report is a fully parsed DTA report: the base header plus exactly one
// primitive sub-header. Data aliases the input buffer for Key-Write and
// Append reports; callers that retain it past the packet's lifetime must
// copy it.
type Report struct {
	Header       Header
	KeyWrite     KeyWrite
	Append       Append
	KeyIncrement KeyIncrement
	Postcard     Postcard
	Data         []byte
}

// MaxReportLen is an upper bound on a serialized report including
// Ethernet, IPv4 and UDP carriers.
const MaxReportLen = EthernetLen + IPv4Len + UDPLen + HeaderLen + KeyIncrementLen + MaxData

// ReportLen returns the serialized length of the DTA portion of r
// (sub-header selected by the primitive, plus payload for Key-Write and
// Append), or 0 for an unknown primitive. It performs no serialization;
// the structured ingest path uses it to model wire sizes (link byte
// accounting) without crafting a frame.
func ReportLen(r *Report) int {
	switch r.Header.Primitive {
	case PrimKeyWrite:
		return HeaderLen + KeyWriteLen + len(r.Data)
	case PrimAppend:
		return HeaderLen + AppendLen + len(r.Data)
	case PrimKeyIncrement:
		return HeaderLen + KeyIncrementLen
	case PrimPostcarding:
		return HeaderLen + PostcardLen
	default:
		return 0
	}
}

// FrameLen returns the full on-the-wire length of r once encapsulated in
// Ethernet/IPv4/UDP, or 0 for an unknown primitive.
func FrameLen(r *Report) int {
	n := ReportLen(r)
	if n == 0 {
		return 0
	}
	return EthernetLen + IPv4Len + UDPLen + n
}

// StagedReport is a compact, fixed-size staging form of a Report that
// queues and pools can hold by value with no heap indirection: only the
// fields of the active primitive are kept, and the payload (whose slice
// in a Report normally aliases a transient packet buffer) is snapshotted
// into an inline array. At ~112 bytes it is well under half a full
// Report plus side buffer, which matters both for the per-report staging
// copy and for the resident size of deep shard queues.
type StagedReport struct {
	prim    Primitive
	flags   uint8
	red     uint8 // Key-Write / Key-Increment redundancy
	hop     uint8 // Postcarding
	pathLen uint8 // Postcarding
	dataLen int16 // -1 = nil payload (Key-Increment, Postcarding)
	listID  uint32
	value   uint32 // Postcarding hop value
	key     Key
	delta   uint64 // Key-Increment
	buf     [MaxData]byte
}

// Stage copies the active fields of r (and up to MaxData bytes of its
// payload) into s. Payloads longer than MaxData — which no valid report
// carries — are truncated.
func (s *StagedReport) Stage(r *Report) {
	s.prim = r.Header.Primitive
	s.flags = r.Header.Flags
	if r.Data == nil {
		s.dataLen = -1
	} else {
		s.dataLen = int16(copy(s.buf[:], r.Data))
	}
	switch r.Header.Primitive {
	case PrimKeyWrite:
		s.red = r.KeyWrite.Redundancy
		s.key = r.KeyWrite.Key
	case PrimAppend:
		s.listID = r.Append.ListID
	case PrimKeyIncrement:
		s.red = r.KeyIncrement.Redundancy
		s.key = r.KeyIncrement.Key
		s.delta = r.KeyIncrement.Delta
	case PrimPostcarding:
		s.key = r.Postcard.Key
		s.hop = r.Postcard.Hop
		s.pathLen = r.Postcard.PathLen
		s.value = r.Postcard.Value
	}
}

// Primitive returns the staged report's primitive.
func (s *StagedReport) Primitive() Primitive { return s.prim }

// Flags returns the staged base-header flags.
func (s *StagedReport) Flags() uint8 { return s.flags }

// Payload returns the staged payload view (nil if the original report
// carried none). Valid only while s is.
func (s *StagedReport) Payload() []byte {
	if s.dataLen < 0 {
		return nil
	}
	return s.buf[:s.dataLen]
}

// KeyWriteArgs returns the Key-Write fields. The key pointer aliases s.
func (s *StagedReport) KeyWriteArgs() (key *Key, redundancy uint8) {
	return &s.key, s.red
}

// AppendArgs returns the Append list ID.
func (s *StagedReport) AppendArgs() (listID uint32) { return s.listID }

// KeyIncrementArgs returns the Key-Increment fields. The key pointer
// aliases s.
func (s *StagedReport) KeyIncrementArgs() (key *Key, redundancy uint8, delta uint64) {
	return &s.key, s.red, s.delta
}

// PostcardArgs returns the Postcarding fields. The key pointer aliases s.
func (s *StagedReport) PostcardArgs() (key *Key, hop, pathLen uint8, value uint32) {
	return &s.key, s.hop, s.pathLen, s.value
}

// FrameLen returns the full on-the-wire length the staged report would
// occupy once encapsulated (see FrameLen), or 0 for an unknown
// primitive.
func (s *StagedReport) FrameLen() int {
	n := 0
	switch s.prim {
	case PrimKeyWrite:
		n = HeaderLen + KeyWriteLen + len(s.Payload())
	case PrimAppend:
		n = HeaderLen + AppendLen + len(s.Payload())
	case PrimKeyIncrement:
		n = HeaderLen + KeyIncrementLen
	case PrimPostcarding:
		n = HeaderLen + PostcardLen
	default:
		return 0
	}
	return EthernetLen + IPv4Len + UDPLen + n
}

// StagedFixedLen is the fixed (payload-less) portion of a StagedReport's
// serialised form (see EncodeTo): every active field of every primitive,
// at a fixed offset, so encode and decode are straight-line byte moves.
const StagedFixedLen = 1 + 1 + 1 + 1 + 1 + 1 + 2 + 4 + 4 + KeySize + 8

// MaxStagedEncodedLen bounds EncodeTo's output.
const MaxStagedEncodedLen = StagedFixedLen + MaxData

// EncodedLen returns the exact number of bytes EncodeTo writes for s.
func (s *StagedReport) EncodedLen() int {
	n := StagedFixedLen
	if s.dataLen > 0 {
		n += int(s.dataLen)
	}
	return n
}

// EncodeTo serialises s into b — the WAL's record body — and returns the
// bytes written. The layout is the staged record itself (fixed fields at
// fixed offsets, payload appended), so encoding is a plain copy with no
// per-primitive branching and no allocation. b must hold EncodedLen()
// bytes (MaxStagedEncodedLen always suffices).
func (s *StagedReport) EncodeTo(b []byte) int {
	b[0] = byte(s.prim)
	b[1] = s.flags
	b[2] = s.red
	b[3] = s.hop
	b[4] = s.pathLen
	b[5] = 0 // reserved
	b[6] = byte(uint16(s.dataLen) >> 8)
	b[7] = byte(uint16(s.dataLen))
	b[8] = byte(s.listID >> 24)
	b[9] = byte(s.listID >> 16)
	b[10] = byte(s.listID >> 8)
	b[11] = byte(s.listID)
	b[12] = byte(s.value >> 24)
	b[13] = byte(s.value >> 16)
	b[14] = byte(s.value >> 8)
	b[15] = byte(s.value)
	copy(b[16:16+KeySize], s.key[:])
	off := 16 + KeySize
	b[off+0] = byte(s.delta >> 56)
	b[off+1] = byte(s.delta >> 48)
	b[off+2] = byte(s.delta >> 40)
	b[off+3] = byte(s.delta >> 32)
	b[off+4] = byte(s.delta >> 24)
	b[off+5] = byte(s.delta >> 16)
	b[off+6] = byte(s.delta >> 8)
	b[off+7] = byte(s.delta)
	n := StagedFixedLen
	if s.dataLen > 0 {
		n += copy(b[n:], s.buf[:s.dataLen])
	}
	return n
}

// StagedGroups is the number of 8-byte groups in the fixed image.
const StagedGroups = StagedFixedLen / 8

// EncodeGroupsTo is the zero-elided form of EncodeTo for log framing:
// it writes only the non-zero 8-byte groups of the fixed image
// (returning a bitmap of which), then the payload, in one pass — no
// intermediate 40-byte image, no rescan. Reassembling the present
// groups at their bitmap positions over zeros reproduces the EncodeTo
// image exactly. b must hold MaxStagedEncodedLen bytes.
func (s *StagedReport) EncodeGroupsTo(b []byte) (n int, bitmap uint8) {
	// Group 0 (primitive..dataLen) is never zero: every valid record
	// has a non-zero primitive.
	bitmap = 1
	b[0] = byte(s.prim)
	b[1] = s.flags
	b[2] = s.red
	b[3] = s.hop
	b[4] = s.pathLen
	b[5] = 0
	b[6] = byte(uint16(s.dataLen) >> 8)
	b[7] = byte(uint16(s.dataLen))
	n = 8
	if s.listID|s.value != 0 {
		bitmap |= 1 << 1
		b[n+0] = byte(s.listID >> 24)
		b[n+1] = byte(s.listID >> 16)
		b[n+2] = byte(s.listID >> 8)
		b[n+3] = byte(s.listID)
		b[n+4] = byte(s.value >> 24)
		b[n+5] = byte(s.value >> 16)
		b[n+6] = byte(s.value >> 8)
		b[n+7] = byte(s.value)
		n += 8
	}
	if [8]byte(s.key[:8]) != ([8]byte{}) {
		bitmap |= 1 << 2
		n += copy(b[n:], s.key[:8])
	}
	if [8]byte(s.key[8:]) != ([8]byte{}) {
		bitmap |= 1 << 3
		n += copy(b[n:], s.key[8:])
	}
	if s.delta != 0 {
		bitmap |= 1 << 4
		b[n+0] = byte(s.delta >> 56)
		b[n+1] = byte(s.delta >> 48)
		b[n+2] = byte(s.delta >> 40)
		b[n+3] = byte(s.delta >> 32)
		b[n+4] = byte(s.delta >> 24)
		b[n+5] = byte(s.delta >> 16)
		b[n+6] = byte(s.delta >> 8)
		b[n+7] = byte(s.delta)
		n += 8
	}
	if s.dataLen > 0 {
		n += copy(b[n:], s.buf[:s.dataLen])
	}
	return n, bitmap
}

// DecodeStaged parses an EncodeTo image back into s, returning the bytes
// consumed. It validates the framing (length, primitive, payload bounds)
// but not report semantics — records were validated on admission; use
// View + Validate to re-check.
func DecodeStaged(b []byte, s *StagedReport) (int, error) {
	if len(b) < StagedFixedLen {
		return 0, fmt.Errorf("wire: staged record truncated at %dB", len(b))
	}
	prim := Primitive(b[0])
	switch prim {
	case PrimKeyWrite, PrimAppend, PrimKeyIncrement, PrimPostcarding:
	default:
		return 0, fmt.Errorf("wire: staged record has unknown primitive %v", prim)
	}
	dataLen := int16(uint16(b[6])<<8 | uint16(b[7]))
	if dataLen < -1 || dataLen > MaxData {
		return 0, fmt.Errorf("wire: staged record payload length %d out of range [-1,%d]", dataLen, MaxData)
	}
	n := StagedFixedLen
	if dataLen > 0 {
		n += int(dataLen)
		if len(b) < n {
			return 0, fmt.Errorf("wire: staged record payload truncated (%dB of %d)", len(b), n)
		}
	}
	s.prim = prim
	s.flags = b[1]
	s.red = b[2]
	s.hop = b[3]
	s.pathLen = b[4]
	s.dataLen = dataLen
	s.listID = uint32(b[8])<<24 | uint32(b[9])<<16 | uint32(b[10])<<8 | uint32(b[11])
	s.value = uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	copy(s.key[:], b[16:16+KeySize])
	off := 16 + KeySize
	s.delta = uint64(b[off])<<56 | uint64(b[off+1])<<48 | uint64(b[off+2])<<40 | uint64(b[off+3])<<32 |
		uint64(b[off+4])<<24 | uint64(b[off+5])<<16 | uint64(b[off+6])<<8 | uint64(b[off+7])
	if dataLen > 0 {
		copy(s.buf[:dataLen], b[StagedFixedLen:n])
	}
	return n, nil
}

// View decompresses s into dst, overwriting the header, the active
// sub-header and Data (re-pointed at the inline buffer, so it is only
// valid while s is). dst is a scratch the caller reuses across records;
// sub-headers of other primitives may hold stale values, which consumers
// never read. Returns dst.
func (s *StagedReport) View(dst *Report) *Report {
	dst.Header = Header{Version: Version, Primitive: s.prim, Flags: s.flags}
	if s.dataLen >= 0 {
		dst.Data = s.buf[:s.dataLen]
	} else {
		dst.Data = nil
	}
	switch s.prim {
	case PrimKeyWrite:
		dst.KeyWrite = KeyWrite{Redundancy: s.red, DataLen: uint16(len(dst.Data)), Key: s.key}
	case PrimAppend:
		dst.Append = Append{ListID: s.listID, DataLen: uint16(len(dst.Data))}
	case PrimKeyIncrement:
		dst.KeyIncrement = KeyIncrement{Redundancy: s.red, Key: s.key, Delta: s.delta}
	case PrimPostcarding:
		dst.Postcard = Postcard{Key: s.key, Hop: s.hop, PathLen: s.pathLen, Value: s.value}
	}
	return dst
}

// DecodeReport parses the DTA portion of a packet (everything after UDP)
// into r. It is the translator's ingress parser.
func DecodeReport(b []byte, r *Report) error {
	n, err := r.Header.Decode(b)
	if err != nil {
		return err
	}
	body := b[n:]
	switch r.Header.Primitive {
	case PrimKeyWrite:
		r.Data, err = r.KeyWrite.Decode(body)
	case PrimAppend:
		r.Data, err = r.Append.Decode(body)
	case PrimKeyIncrement:
		_, err = r.KeyIncrement.Decode(body)
		r.Data = nil
	case PrimPostcarding:
		_, err = r.Postcard.Decode(body)
		r.Data = nil
	default:
		return fmt.Errorf("wire: unknown primitive %v", r.Header.Primitive)
	}
	return err
}

// Validate applies the same semantic checks DecodeReport enforces to an
// in-memory report, so the structured ingest path (which never
// serialises) rejects exactly what the wire path would.
func (r *Report) Validate() error {
	switch r.Header.Primitive {
	case PrimKeyWrite:
		if r.KeyWrite.Redundancy == 0 {
			return fmt.Errorf("wire: key-write redundancy 0")
		}
		if len(r.Data) > MaxData {
			return fmt.Errorf("wire: key-write data %dB exceeds max %d", len(r.Data), MaxData)
		}
	case PrimAppend:
		if len(r.Data) == 0 || len(r.Data) > MaxData {
			return fmt.Errorf("wire: append data %dB out of range (1,%d]", len(r.Data), MaxData)
		}
	case PrimKeyIncrement:
		if r.KeyIncrement.Redundancy == 0 {
			return fmt.Errorf("wire: key-increment redundancy 0")
		}
	case PrimPostcarding:
		if r.Postcard.PathLen != 0 && r.Postcard.Hop >= r.Postcard.PathLen {
			return fmt.Errorf("wire: postcard hop %d outside path of length %d", r.Postcard.Hop, r.Postcard.PathLen)
		}
	default:
		return fmt.Errorf("wire: unknown primitive %v", r.Header.Primitive)
	}
	return nil
}

// SerializeReport writes the DTA portion of r into b and returns the bytes
// written. r.Header.Primitive selects the sub-header; r.Data supplies the
// payload for Key-Write and Append.
func SerializeReport(b []byte, r *Report) (int, error) {
	n := r.Header.SerializeTo(b)
	switch r.Header.Primitive {
	case PrimKeyWrite:
		n += r.KeyWrite.SerializeTo(b[n:], r.Data)
	case PrimAppend:
		n += r.Append.SerializeTo(b[n:], r.Data)
	case PrimKeyIncrement:
		n += r.KeyIncrement.SerializeTo(b[n:])
	case PrimPostcarding:
		n += r.Postcard.SerializeTo(b[n:])
	default:
		return 0, fmt.Errorf("wire: unknown primitive %v", r.Header.Primitive)
	}
	return n, nil
}

// Frame carries the addressing a reporter stamps on an outgoing report.
type Frame struct {
	SrcMAC, DstMAC [6]byte
	SrcIP, DstIP   [4]byte
	SrcPort        uint16
	TTL            uint8
	IPID           uint16
}

// SerializeFrame writes a complete Ethernet/IPv4/UDP/DTA packet into b,
// returning the total length. b must have room for MaxReportLen bytes.
func SerializeFrame(b []byte, f *Frame, r *Report) (int, error) {
	const l2 = EthernetLen
	const l3 = EthernetLen + IPv4Len
	const l4 = EthernetLen + IPv4Len + UDPLen
	dtaLen, err := SerializeReport(b[l4:], r)
	if err != nil {
		return 0, err
	}
	eth := Ethernet{Dst: f.DstMAC, Src: f.SrcMAC, EtherType: EtherTypeIPv4}
	eth.SerializeTo(b)
	ttl := f.TTL
	if ttl == 0 {
		ttl = 64
	}
	ip := IPv4{
		TotalLen: uint16(IPv4Len + UDPLen + dtaLen),
		ID:       f.IPID,
		TTL:      ttl,
		Protocol: ProtoUDP,
		Src:      f.SrcIP,
		Dst:      f.DstIP,
	}
	ip.SerializeTo(b[l2:])
	udp := UDP{SrcPort: f.SrcPort, DstPort: Port, Length: uint16(UDPLen + dtaLen)}
	udp.SerializeTo(b[l3:])
	return l4 + dtaLen, nil
}

// ParsedFrame is the result of decoding a full packet off the wire.
type ParsedFrame struct {
	Eth    Ethernet
	IP     IPv4
	UDP    UDP
	Report Report
	// IsDTA reports whether the packet was addressed to the DTA port.
	// Non-DTA packets are user traffic the translator forwards untouched.
	IsDTA bool
}

// DecodeFrame parses a complete Ethernet/IPv4/UDP packet. Packets not
// addressed to the DTA UDP port are classified as user traffic
// (IsDTA=false) without error.
func DecodeFrame(b []byte, p *ParsedFrame) error {
	n, err := p.Eth.Decode(b)
	if err != nil {
		return err
	}
	if p.Eth.EtherType != EtherTypeIPv4 {
		p.IsDTA = false
		return nil
	}
	m, err := p.IP.Decode(b[n:])
	if err != nil {
		return err
	}
	n += m
	if p.IP.Protocol != ProtoUDP {
		p.IsDTA = false
		return nil
	}
	m, err = p.UDP.Decode(b[n:])
	if err != nil {
		return err
	}
	n += m
	if p.UDP.DstPort != Port {
		p.IsDTA = false
		return nil
	}
	p.IsDTA = true
	return DecodeReport(b[n:], &p.Report)
}
