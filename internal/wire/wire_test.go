package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEthernetRoundTrip(t *testing.T) {
	in := Ethernet{
		Dst:       [6]byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff},
		Src:       [6]byte{1, 2, 3, 4, 5, 6},
		EtherType: EtherTypeIPv4,
	}
	var buf [EthernetLen]byte
	if n := in.SerializeTo(buf[:]); n != EthernetLen {
		t.Fatalf("SerializeTo = %d", n)
	}
	var out Ethernet
	if _, err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestEthernetTruncated(t *testing.T) {
	var h Ethernet
	if _, err := h.Decode(make([]byte, EthernetLen-1)); err != ErrTruncated {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestIPv4RoundTripAndChecksum(t *testing.T) {
	in := IPv4{
		TOS: 0x10, TotalLen: 100, ID: 7, Flags: 2, FragOff: 0,
		TTL: 61, Protocol: ProtoUDP,
		Src: [4]byte{10, 0, 0, 1}, Dst: [4]byte{10, 0, 0, 2},
	}
	var buf [IPv4Len]byte
	in.SerializeTo(buf[:])
	if Checksum16(buf[:]) != 0 {
		t.Error("serialized header fails checksum self-verification")
	}
	var out IPv4
	if _, err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestIPv4RejectsCorruption(t *testing.T) {
	in := IPv4{TotalLen: 40, TTL: 64, Protocol: ProtoUDP}
	var buf [IPv4Len]byte
	in.SerializeTo(buf[:])
	for i := 0; i < IPv4Len; i++ {
		corrupt := buf
		corrupt[i] ^= 0x40
		var out IPv4
		if _, err := out.Decode(corrupt[:]); err == nil {
			// Flipping a bit must fail checksum (or version) checks.
			t.Errorf("corruption at byte %d went undetected", i)
		}
	}
}

func TestIPv4RejectsOptions(t *testing.T) {
	var buf [24]byte
	buf[0] = 4<<4 | 6 // ihl=6 → 24B header
	cs := Checksum16(buf[:24])
	binary.BigEndian.PutUint16(buf[10:12], cs)
	var h IPv4
	if _, err := h.Decode(buf[:]); err == nil {
		t.Error("header with options accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	in := UDP{SrcPort: 5555, DstPort: Port, Length: 52}
	var buf [UDPLen]byte
	in.SerializeTo(buf[:])
	var out UDP
	if _, err := out.Decode(buf[:]); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestUDPBadLength(t *testing.T) {
	var buf [UDPLen]byte
	binary.BigEndian.PutUint16(buf[4:6], 3) // below header size
	var h UDP
	if _, err := h.Decode(buf[:]); err == nil {
		t.Error("undersized UDP length accepted")
	}
}

func TestChecksum16KnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 is 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum16(b); got != 0x220d {
		t.Errorf("Checksum16 = %#x, want 0x220d", got)
	}
}

func TestChecksum16OddLength(t *testing.T) {
	// Odd-length buffers are padded with a zero byte.
	even := Checksum16([]byte{0xab, 0x00})
	odd := Checksum16([]byte{0xab})
	if even != odd {
		t.Errorf("odd-length pad mismatch: %#x vs %#x", odd, even)
	}
}

func TestKeyPacking(t *testing.T) {
	k := KeyFromUint64(0xdeadbeefcafef00d)
	if k.Uint64() != 0xdeadbeefcafef00d {
		t.Error("KeyFromUint64 round trip failed")
	}
	ft := FiveTuple([4]byte{10, 0, 0, 1}, [4]byte{10, 0, 0, 2}, 80, 443, 6)
	if ft[0] != 10 || ft[12] != 6 || binary.BigEndian.Uint16(ft[8:10]) != 80 {
		t.Errorf("FiveTuple layout wrong: %v", ft)
	}
	if ft[13] != 0 || ft[14] != 0 || ft[15] != 0 {
		t.Error("FiveTuple padding not zero")
	}
}

func TestKeyWriteRoundTrip(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	in := KeyWrite{Redundancy: 2, Key: KeyFromUint64(42)}
	buf := make([]byte, KeyWriteLen+len(data))
	in.SerializeTo(buf, data)
	var out KeyWrite
	got, err := out.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("header: got %+v want %+v", out, in)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("data: got %v want %v", got, data)
	}
}

func TestKeyWriteValidation(t *testing.T) {
	var h KeyWrite
	// Zero redundancy.
	buf := make([]byte, KeyWriteLen)
	if _, err := h.Decode(buf); err == nil {
		t.Error("redundancy 0 accepted")
	}
	// Oversized data.
	buf[0] = 1
	binary.BigEndian.PutUint16(buf[2:4], MaxData+1)
	if _, err := h.Decode(buf); err == nil {
		t.Error("oversized data accepted")
	}
	// Declared data longer than the buffer.
	binary.BigEndian.PutUint16(buf[2:4], 8)
	if _, err := h.Decode(buf); err != ErrTruncated {
		t.Error("truncated data accepted")
	}
}

func TestAppendRoundTrip(t *testing.T) {
	data := []byte{9, 9, 9, 9}
	in := Append{ListID: 131071}
	buf := make([]byte, AppendLen+len(data))
	in.SerializeTo(buf, data)
	var out Append
	got, err := out.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ListID != in.ListID || out.DataLen != 4 {
		t.Errorf("header: got %+v", out)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("data: got %v want %v", got, data)
	}
}

func TestAppendRejectsEmptyData(t *testing.T) {
	buf := make([]byte, AppendLen)
	var h Append
	if _, err := h.Decode(buf); err == nil {
		t.Error("zero-length append accepted")
	}
}

func TestKeyIncrementRoundTrip(t *testing.T) {
	in := KeyIncrement{Redundancy: 3, Key: KeyFromUint64(7), Delta: 1 << 40}
	buf := make([]byte, KeyIncrementLen)
	in.SerializeTo(buf)
	var out KeyIncrement
	if _, err := out.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestPostcardRoundTrip(t *testing.T) {
	in := Postcard{Key: KeyFromUint64(99), Hop: 2, PathLen: 5, Value: 0xabcd}
	buf := make([]byte, PostcardLen)
	in.SerializeTo(buf)
	var out Postcard
	if _, err := out.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: got %+v want %+v", out, in)
	}
}

func TestPostcardHopOutsidePath(t *testing.T) {
	in := Postcard{Hop: 5, PathLen: 5}
	buf := make([]byte, PostcardLen)
	in.SerializeTo(buf)
	var out Postcard
	if _, err := out.Decode(buf); err == nil {
		t.Error("hop >= pathLen accepted")
	}
}

func TestReportRoundTripQuick(t *testing.T) {
	f := func(prim uint8, key uint64, n uint8, payload []byte) bool {
		p := Primitive(prim%4) + 1
		if len(payload) > MaxData {
			payload = payload[:MaxData]
		}
		if len(payload) == 0 {
			payload = []byte{0}
		}
		in := Report{Header: Header{Version: Version, Primitive: p}}
		switch p {
		case PrimKeyWrite:
			in.KeyWrite = KeyWrite{Redundancy: n%4 + 1, Key: KeyFromUint64(key)}
			in.Data = payload
		case PrimAppend:
			in.Append = Append{ListID: uint32(key)}
			in.Data = payload
		case PrimKeyIncrement:
			in.KeyIncrement = KeyIncrement{Redundancy: n%4 + 1, Key: KeyFromUint64(key), Delta: key}
		case PrimPostcarding:
			in.Postcard = Postcard{Key: KeyFromUint64(key), Hop: n % 5, PathLen: 5, Value: uint32(key)}
		}
		buf := make([]byte, MaxReportLen)
		sz, err := SerializeReport(buf, &in)
		if err != nil {
			return false
		}
		var out Report
		if err := DecodeReport(buf[:sz], &out); err != nil {
			return false
		}
		if out.Header != in.Header {
			return false
		}
		switch p {
		case PrimKeyWrite:
			return out.KeyWrite.Key == in.KeyWrite.Key && bytes.Equal(out.Data, payload)
		case PrimAppend:
			return out.Append.ListID == in.Append.ListID && bytes.Equal(out.Data, payload)
		case PrimKeyIncrement:
			return out.KeyIncrement == in.KeyIncrement
		case PrimPostcarding:
			return out.Postcard == in.Postcard
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeReportUnknownPrimitive(t *testing.T) {
	buf := []byte{Version, 99, 0, 0}
	var r Report
	if err := DecodeReport(buf, &r); err == nil {
		t.Error("unknown primitive accepted")
	}
}

func TestDecodeReportBadVersion(t *testing.T) {
	buf := []byte{Version + 1, 1, 0, 0}
	var r Report
	if err := DecodeReport(buf, &r); err != ErrBadVersion {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	r := Report{
		Header:   Header{Version: Version, Primitive: PrimKeyWrite, Flags: FlagImmediate},
		KeyWrite: KeyWrite{Redundancy: 2, Key: KeyFromUint64(1234)},
		Data:     []byte{0xde, 0xad, 0xbe, 0xef},
	}
	f := Frame{
		SrcMAC: [6]byte{2, 0, 0, 0, 0, 1}, DstMAC: [6]byte{2, 0, 0, 0, 0, 2},
		SrcIP: [4]byte{10, 1, 0, 1}, DstIP: [4]byte{10, 9, 0, 1},
		SrcPort: 3333,
	}
	buf := make([]byte, MaxReportLen)
	n, err := SerializeFrame(buf, &f, &r)
	if err != nil {
		t.Fatal(err)
	}
	var p ParsedFrame
	if err := DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if !p.IsDTA {
		t.Fatal("frame not classified as DTA")
	}
	if p.Report.KeyWrite.Key != r.KeyWrite.Key || !bytes.Equal(p.Report.Data, r.Data) {
		t.Errorf("report mismatch: %+v", p.Report)
	}
	if p.IP.Dst != f.DstIP || p.UDP.DstPort != Port {
		t.Errorf("addressing mismatch: %+v %+v", p.IP, p.UDP)
	}
	if p.Report.Header.Flags&FlagImmediate == 0 {
		t.Error("immediate flag lost")
	}
}

func TestDecodeFrameUserTraffic(t *testing.T) {
	// A UDP packet to another port is user traffic, not an error.
	r := Report{
		Header: Header{Version: Version, Primitive: PrimAppend},
		Append: Append{ListID: 1}, Data: []byte{1},
	}
	f := Frame{SrcIP: [4]byte{1, 2, 3, 4}, DstIP: [4]byte{5, 6, 7, 8}}
	buf := make([]byte, MaxReportLen)
	n, err := SerializeFrame(buf, &f, &r)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the UDP destination port and re-checksum nothing (UDP csum 0).
	binary.BigEndian.PutUint16(buf[EthernetLen+IPv4Len+2:], 53)
	var p ParsedFrame
	if err := DecodeFrame(buf[:n], &p); err != nil {
		t.Fatal(err)
	}
	if p.IsDTA {
		t.Error("user traffic classified as DTA")
	}
}

func TestSerializeReportUnknownPrimitive(t *testing.T) {
	r := Report{Header: Header{Version: Version, Primitive: 77}}
	if _, err := SerializeReport(make([]byte, 64), &r); err == nil {
		t.Error("unknown primitive serialized")
	}
}

func TestDecodeFrameZeroAlloc(t *testing.T) {
	r := Report{
		Header:   Header{Version: Version, Primitive: PrimPostcarding},
		Postcard: Postcard{Key: KeyFromUint64(5), Hop: 1, PathLen: 5, Value: 7},
	}
	f := Frame{}
	buf := make([]byte, MaxReportLen)
	n, _ := SerializeFrame(buf, &f, &r)
	var p ParsedFrame
	allocs := testing.AllocsPerRun(100, func() {
		if err := DecodeFrame(buf[:n], &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("DecodeFrame allocates %v times per packet", allocs)
	}
}

func BenchmarkSerializeFrameKeyWrite(b *testing.B) {
	r := Report{
		Header:   Header{Version: Version, Primitive: PrimKeyWrite},
		KeyWrite: KeyWrite{Redundancy: 2, Key: KeyFromUint64(1)},
		Data:     make([]byte, 20),
	}
	f := Frame{}
	buf := make([]byte, MaxReportLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.KeyWrite.Key = KeyFromUint64(uint64(i))
		if _, err := SerializeFrame(buf, &f, &r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	r := Report{
		Header:   Header{Version: Version, Primitive: PrimKeyWrite},
		KeyWrite: KeyWrite{Redundancy: 2, Key: KeyFromUint64(1)},
		Data:     make([]byte, 20),
	}
	f := Frame{}
	buf := make([]byte, MaxReportLen)
	n, _ := SerializeFrame(buf, &f, &r)
	var p ParsedFrame
	b.ReportAllocs()
	b.SetBytes(int64(n))
	for i := 0; i < b.N; i++ {
		if err := DecodeFrame(buf[:n], &p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFuzzishDecodeReportNoPanic(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	var r Report
	buf := make([]byte, 96)
	for i := 0; i < 20000; i++ {
		n := rnd.Intn(len(buf))
		rnd.Read(buf[:n])
		_ = DecodeReport(buf[:n], &r) // must not panic
	}
}

func TestFuzzishDecodeFrameNoPanic(t *testing.T) {
	rnd := rand.New(rand.NewSource(100))
	var p ParsedFrame
	buf := make([]byte, 128)
	for i := 0; i < 20000; i++ {
		n := rnd.Intn(len(buf))
		rnd.Read(buf[:n])
		_ = DecodeFrame(buf[:n], &p) // must not panic
	}
}
