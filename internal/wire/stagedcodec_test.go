package wire

import (
	"bytes"
	"testing"
)

// TestStagedEncodeDecodeRoundTrip pins EncodeTo/DecodeStaged (the WAL
// record codec) as lossless for every primitive: the decoded record's
// View must serialise byte-identically to the original report, and the
// encoded length must match EncodedLen.
func TestStagedEncodeDecodeRoundTrip(t *testing.T) {
	var s, back StagedReport
	var view Report
	buf := make([]byte, MaxStagedEncodedLen)
	orig := make([]byte, MaxReportLen)
	redone := make([]byte, MaxReportLen)
	for _, r := range sampleReports() {
		r := r
		s.Stage(&r)
		n := s.EncodeTo(buf)
		if n != s.EncodedLen() {
			t.Fatalf("%v: EncodeTo wrote %dB, EncodedLen says %d", r.Header.Primitive, n, s.EncodedLen())
		}
		if n > MaxStagedEncodedLen {
			t.Fatalf("%v: encoded %dB exceeds MaxStagedEncodedLen", r.Header.Primitive, n)
		}
		m, err := DecodeStaged(buf[:n], &back)
		if err != nil {
			t.Fatalf("%v: DecodeStaged: %v", r.Header.Primitive, err)
		}
		if m != n {
			t.Fatalf("%v: DecodeStaged consumed %dB of %d", r.Header.Primitive, m, n)
		}
		on, err := SerializeReport(orig, &r)
		if err != nil {
			t.Fatal(err)
		}
		rn, err := SerializeReport(redone, back.View(&view))
		if err != nil {
			t.Fatalf("%v: serialising decoded record: %v", r.Header.Primitive, err)
		}
		if !bytes.Equal(orig[:on], redone[:rn]) {
			t.Fatalf("%v: round trip diverged:\n  orig %x\n  back %x", r.Header.Primitive, orig[:on], redone[:rn])
		}
	}
}

// TestEncodeGroupsMatchesEncodeTo pins the single-pass zero-elided
// encoder against the reference: scanning EncodeTo's image for non-zero
// 8-byte groups must yield exactly EncodeGroupsTo's output, and
// reassembling the groups over zeros must reproduce the image.
func TestEncodeGroupsMatchesEncodeTo(t *testing.T) {
	reports := sampleReports()
	// Edge shapes: zero key, zero delta, zero list/value, empty payload.
	reports = append(reports,
		Report{Header: Header{Version: Version, Primitive: PrimKeyWrite},
			KeyWrite: KeyWrite{Redundancy: 1}, Data: []byte{}},
		Report{Header: Header{Version: Version, Primitive: PrimAppend},
			Append: Append{ListID: 0, DataLen: 1}, Data: []byte{9}},
		Report{Header: Header{Version: Version, Primitive: PrimKeyIncrement},
			KeyIncrement: KeyIncrement{Redundancy: 2, Key: KeyFromUint64(1 << 60)}},
	)
	var s StagedReport
	ref := make([]byte, MaxStagedEncodedLen)
	got := make([]byte, MaxStagedEncodedLen)
	for ci, r := range reports {
		r := r
		s.Stage(&r)
		rn := s.EncodeTo(ref)
		gn, bitmap := s.EncodeGroupsTo(got)

		// Reference: elide zero groups from the EncodeTo image.
		var wantBitmap uint8
		var want []byte
		for g := 0; g < StagedGroups; g++ {
			grp := ref[g*8 : g*8+8]
			if [8]byte(grp) != ([8]byte{}) {
				wantBitmap |= 1 << g
				want = append(want, grp...)
			}
		}
		want = append(want, ref[StagedFixedLen:rn]...)
		if bitmap != wantBitmap {
			t.Errorf("case %d: bitmap %05b, want %05b", ci, bitmap, wantBitmap)
		}
		if gn != len(want) || !bytes.Equal(got[:gn], want) {
			t.Errorf("case %d: groups encode %x, want %x", ci, got[:gn], want)
		}
	}
}

// TestDecodeStagedRejectsDamage pins the codec's framing checks.
func TestDecodeStagedRejectsDamage(t *testing.T) {
	var s, back StagedReport
	r := sampleReports()[0]
	s.Stage(&r)
	buf := make([]byte, MaxStagedEncodedLen)
	n := s.EncodeTo(buf)

	if _, err := DecodeStaged(buf[:StagedFixedLen-1], &back); err == nil {
		t.Error("truncated fixed header accepted")
	}
	if _, err := DecodeStaged(buf[:n-1], &back); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := append([]byte(nil), buf[:n]...)
	bad[0] = 0xEE // unknown primitive
	if _, err := DecodeStaged(bad, &back); err == nil {
		t.Error("unknown primitive accepted")
	}
	bad = append(bad[:0], buf[:n]...)
	bad[6], bad[7] = 0x7F, 0xFF // absurd payload length
	if _, err := DecodeStaged(bad, &back); err == nil {
		t.Error("out-of-range payload length accepted")
	}
}
