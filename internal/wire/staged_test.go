package wire

import (
	"bytes"
	"testing"
)

func sampleReports() []Report {
	return []Report{
		{
			Header:   Header{Version: Version, Primitive: PrimKeyWrite, Flags: FlagImmediate},
			KeyWrite: KeyWrite{Redundancy: 3, DataLen: 4, Key: KeyFromUint64(7)},
			Data:     []byte{1, 2, 3, 4},
		},
		{
			Header: Header{Version: Version, Primitive: PrimAppend},
			Append: Append{ListID: 9, DataLen: 2},
			Data:   []byte{5, 6},
		},
		{
			Header:       Header{Version: Version, Primitive: PrimKeyIncrement},
			KeyIncrement: KeyIncrement{Redundancy: 2, Key: KeyFromUint64(11), Delta: 42},
		},
		{
			Header:   Header{Version: Version, Primitive: PrimPostcarding},
			Postcard: Postcard{Key: KeyFromUint64(13), Hop: 1, PathLen: 5, Value: 77},
		},
	}
}

// TestStagedRoundTrip pins Stage+View as lossless for every primitive:
// the decompressed report must serialise byte-identically to the
// original.
func TestStagedRoundTrip(t *testing.T) {
	var s StagedReport
	var dst Report
	for _, r := range sampleReports() {
		r := r
		s.Stage(&r)
		got := s.View(&dst)
		var wantBuf, gotBuf [MaxReportLen]byte
		wn, err := SerializeReport(wantBuf[:], &r)
		if err != nil {
			t.Fatal(err)
		}
		gn, err := SerializeReport(gotBuf[:], got)
		if err != nil {
			t.Fatal(err)
		}
		if wn != gn || !bytes.Equal(wantBuf[:wn], gotBuf[:gn]) {
			t.Fatalf("%v: staged round trip altered the wire image", r.Header.Primitive)
		}
		if got.Header.Flags != r.Header.Flags {
			t.Fatalf("%v: flags lost", r.Header.Primitive)
		}
	}
}

// TestStagedAccessorsMatchView cross-checks the field accessors the
// translator fast path reads against the decompressed report.
func TestStagedAccessorsMatchView(t *testing.T) {
	var s StagedReport
	var dst Report
	for _, r := range sampleReports() {
		r := r
		s.Stage(&r)
		v := s.View(&dst)
		if s.Primitive() != v.Header.Primitive || s.Flags() != v.Header.Flags {
			t.Fatalf("%v: header accessors disagree", r.Header.Primitive)
		}
		if !bytes.Equal(s.Payload(), v.Data) {
			t.Fatalf("%v: payload accessor disagrees", r.Header.Primitive)
		}
		switch r.Header.Primitive {
		case PrimKeyWrite:
			key, red := s.KeyWriteArgs()
			if *key != v.KeyWrite.Key || red != v.KeyWrite.Redundancy {
				t.Fatal("key-write accessors disagree")
			}
		case PrimAppend:
			if s.AppendArgs() != v.Append.ListID {
				t.Fatal("append accessor disagrees")
			}
		case PrimKeyIncrement:
			key, red, delta := s.KeyIncrementArgs()
			if *key != v.KeyIncrement.Key || red != v.KeyIncrement.Redundancy || delta != v.KeyIncrement.Delta {
				t.Fatal("key-increment accessors disagree")
			}
		case PrimPostcarding:
			key, hop, pl, val := s.PostcardArgs()
			if *key != v.Postcard.Key || hop != v.Postcard.Hop || pl != v.Postcard.PathLen || val != v.Postcard.Value {
				t.Fatal("postcard accessors disagree")
			}
		}
	}
}

// TestFrameLenMatchesSerializeFrame pins the arithmetic frame-length
// model (used by the structured path's link accounting) to the real
// serialiser, for both Report and StagedReport.
func TestFrameLenMatchesSerializeFrame(t *testing.T) {
	f := &Frame{SrcPort: 4001}
	var buf [MaxReportLen]byte
	var s StagedReport
	for _, r := range sampleReports() {
		r := r
		n, err := SerializeFrame(buf[:], f, &r)
		if err != nil {
			t.Fatal(err)
		}
		if got := FrameLen(&r); got != n {
			t.Fatalf("%v: FrameLen = %d, serialised = %d", r.Header.Primitive, got, n)
		}
		s.Stage(&r)
		if got := s.FrameLen(); got != n {
			t.Fatalf("%v: StagedReport.FrameLen = %d, serialised = %d", r.Header.Primitive, got, n)
		}
	}
	if FrameLen(&Report{}) != 0 {
		t.Fatal("unknown primitive must report length 0")
	}
}

// TestValidateMatchesDecode pins Validate (structured-path admission) to
// the wire decoder's accept/reject behaviour.
func TestValidateMatchesDecode(t *testing.T) {
	bad := []Report{
		{Header: Header{Version: Version, Primitive: PrimKeyWrite}, KeyWrite: KeyWrite{Redundancy: 0}},
		{Header: Header{Version: Version, Primitive: PrimKeyWrite}, KeyWrite: KeyWrite{Redundancy: 1}, Data: make([]byte, MaxData+1)},
		{Header: Header{Version: Version, Primitive: PrimAppend}, Append: Append{ListID: 1}},
		{Header: Header{Version: Version, Primitive: PrimKeyIncrement}},
		{Header: Header{Version: Version, Primitive: PrimPostcarding}, Postcard: Postcard{Hop: 5, PathLen: 5}},
		{Header: Header{Version: Version, Primitive: PrimInvalid}},
	}
	for i, r := range bad {
		r := r
		if err := r.Validate(); err == nil {
			t.Errorf("bad report %d accepted by Validate", i)
		}
	}
	for _, r := range sampleReports() {
		r := r
		if err := r.Validate(); err != nil {
			t.Errorf("%v: valid report rejected: %v", r.Header.Primitive, err)
		}
	}
}
