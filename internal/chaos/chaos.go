// Package chaos is the deterministic fault-injection plane: a seeded
// set of injectable faults — disk latency and stickiness on the WAL's
// segment files, asymmetric reporter→collector and peer↔peer link
// partitions, and (via the System clock hooks) per-collector skew —
// that the HA cluster and the WAL thread through their normal code
// paths so failure scenarios run against the production logic, not a
// mock of it.
//
// Everything is designed for the hot paths it touches: a disabled
// fault costs one nil check or one relaxed atomic load, every knob is
// safe to flip concurrently with ingest (faults strike mid-run — that
// is the point), and all randomness (latency jitter) derives from the
// plane's seed, so a failing chaos run reproduces from its logged seed
// and schedule alone.
package chaos

import (
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dta/internal/wal"
)

// MaxNodes bounds the partition matrix; it matches ha.MaxMembers (not
// imported, to keep this package leaf-level below internal/ha).
const MaxNodes = 64

// Plane owns every injectable fault for one cluster: per-collector
// disks and the link-partition matrix. The zero value is unusable; use
// NewPlane. A nil *Plane is a valid "chaos disabled" value for every
// query method.
type Plane struct {
	seed int64

	// rep[i] cuts the reporter→collector i link: fan-out writers skip i
	// (counted as degraded, exactly like a down replica) while queries
	// and resync still reach it — the asymmetric half of a partition.
	rep [MaxNodes]atomic.Bool
	// peer is the symmetric peer↔peer resync matrix, row-major: a cut
	// pair cannot serve each other's resyncs (snapshot or log-shipping)
	// until healed.
	peer [MaxNodes * MaxNodes]atomic.Bool

	mu    sync.Mutex
	disks map[int]*Disk
}

// NewPlane builds a fault plane. All per-disk jitter derives from seed.
func NewPlane(seed int64) *Plane {
	return &Plane{seed: seed, disks: make(map[int]*Disk)}
}

// Seed returns the plane's seed (logged by drivers for reproduction).
func (p *Plane) Seed() int64 { return p.seed }

// Disk returns collector i's fault-injection disk, creating it on first
// use. Safe for concurrent use.
func (p *Plane) Disk(i int) *Disk {
	p.mu.Lock()
	defer p.mu.Unlock()
	d := p.disks[i]
	if d == nil {
		// splitmix64-style decorrelation: each disk jitters its own
		// deterministic stream even under one plane seed.
		d = &Disk{}
		d.rng.Store(uint64(p.seed) + uint64(i+1)*0x9e3779b97f4a7c15)
		p.disks[i] = d
	}
	return d
}

// CutReporter severs the reporter→collector i link.
func (p *Plane) CutReporter(i int) {
	if uint(i) < MaxNodes {
		p.rep[i].Store(true)
	}
}

// HealReporter restores the reporter→collector i link.
func (p *Plane) HealReporter(i int) {
	if uint(i) < MaxNodes {
		p.rep[i].Store(false)
	}
}

// ReporterCut reports whether fan-out writers must skip collector i.
// Nil-safe and on the ingest hot path: one nil check when chaos is off,
// one atomic load when on.
func (p *Plane) ReporterCut(i int) bool {
	if p == nil || uint(i) >= MaxNodes {
		return false
	}
	return p.rep[i].Load()
}

// CutPeers severs the resync path between collectors a and b (both
// directions: the link is symmetric).
func (p *Plane) CutPeers(a, b int) {
	if uint(a) >= MaxNodes || uint(b) >= MaxNodes {
		return
	}
	p.peer[a*MaxNodes+b].Store(true)
	p.peer[b*MaxNodes+a].Store(true)
}

// HealPeers restores the resync path between a and b.
func (p *Plane) HealPeers(a, b int) {
	if uint(a) >= MaxNodes || uint(b) >= MaxNodes {
		return
	}
	p.peer[a*MaxNodes+b].Store(false)
	p.peer[b*MaxNodes+a].Store(false)
}

// PeersCut reports whether a and b are partitioned from each other.
// Nil-safe.
func (p *Plane) PeersCut(a, b int) bool {
	if p == nil || uint(a) >= MaxNodes || uint(b) >= MaxNodes {
		return false
	}
	return p.peer[a*MaxNodes+b].Load()
}

// AnyCut reports whether any reporter or peer link is currently cut.
// Nil-safe; control-plane only (scans the full matrix).
func (p *Plane) AnyCut() bool {
	if p == nil {
		return false
	}
	for i := range p.rep {
		if p.rep[i].Load() {
			return true
		}
	}
	for i := range p.peer {
		if p.peer[i].Load() {
			return true
		}
	}
	return false
}

// HealNode clears every fault touching collector i: its reporter link,
// every peer link involving it, and its disk. Clock skew lives on the
// System and is healed by the caller.
func (p *Plane) HealNode(i int) {
	if p == nil || uint(i) >= MaxNodes {
		return
	}
	p.rep[i].Store(false)
	for j := 0; j < MaxNodes; j++ {
		p.peer[i*MaxNodes+j].Store(false)
		p.peer[j*MaxNodes+i].Store(false)
	}
	p.mu.Lock()
	d := p.disks[i]
	p.mu.Unlock()
	d.Heal()
}

// HealAll clears every fault on the plane.
func (p *Plane) HealAll() {
	if p == nil {
		return
	}
	for i := range p.rep {
		p.rep[i].Store(false)
	}
	for i := range p.peer {
		p.peer[i].Store(false)
	}
	p.mu.Lock()
	disks := make([]*Disk, 0, len(p.disks))
	for _, d := range p.disks {
		disks = append(disks, d)
	}
	p.mu.Unlock()
	for _, d := range disks {
		d.Heal()
	}
}

// Disk injects storage faults under one collector's WAL: added write
// and fsync latency (with seeded jitter), short writes, and a sticky
// errno that fails every subsequent operation — a dead disk. All knobs
// are atomics, safe to flip while the WAL flusher is mid-write. The
// zero value injects nothing; a nil *Disk is a valid no-op for Heal.
type Disk struct {
	writeLat atomic.Int64 // ns added to every Write
	fsyncLat atomic.Int64 // ns added to every Sync
	jitter   atomic.Int64 // max extra ns drawn per delayed op
	errno    atomic.Int64 // non-zero: every op fails with this errno
	short    atomic.Bool  // Write stores only half and reports it
	rng      atomic.Uint64
}

// SetWriteLatency adds d to every Write (0 = none).
func (d *Disk) SetWriteLatency(lat time.Duration) { d.writeLat.Store(int64(lat)) }

// SetFsyncLatency adds lat to every Sync (0 = none) — the slow-disk
// fault that drives the WAL's degraded-ack mode.
func (d *Disk) SetFsyncLatency(lat time.Duration) { d.fsyncLat.Store(int64(lat)) }

// SetJitter adds a seeded-random extra delay in [0, j) to every delayed
// operation.
func (d *Disk) SetJitter(j time.Duration) { d.jitter.Store(int64(j)) }

// FailSticky makes every subsequent operation fail with errno — the
// disk is dead until Heal.
func (d *Disk) FailSticky(errno syscall.Errno) { d.errno.Store(int64(errno)) }

// SetShortWrites makes Write store only half of each buffer, reporting
// the truncation — exercising the writer's partial-progress handling.
func (d *Disk) SetShortWrites(on bool) { d.short.Store(on) }

// Heal clears every fault. Nil-safe.
func (d *Disk) Heal() {
	if d == nil {
		return
	}
	d.writeLat.Store(0)
	d.fsyncLat.Store(0)
	d.jitter.Store(0)
	d.errno.Store(0)
	d.short.Store(false)
}

// FsyncLatency returns the injected fsync latency (drivers log it).
func (d *Disk) FsyncLatency() time.Duration {
	if d == nil {
		return 0
	}
	return time.Duration(d.fsyncLat.Load())
}

// delay sleeps for base plus seeded jitter. The xorshift step keeps the
// jitter stream deterministic per disk without a lock.
func (d *Disk) delay(base int64) {
	if base <= 0 && d.jitter.Load() <= 0 {
		return
	}
	extra := int64(0)
	if j := d.jitter.Load(); j > 0 {
		x := d.rng.Load()
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		d.rng.Store(x)
		extra = int64(x % uint64(j))
	}
	if total := base + extra; total > 0 {
		time.Sleep(time.Duration(total))
	}
}

// WrapFile wraps a WAL segment file with this disk's faults. It is the
// wal.Policy.WrapFile hook: the flusher opens segments through it, so
// every write, fsync and close flows through the injection layer.
func (d *Disk) WrapFile(f *os.File) wal.File {
	return &faultFile{f: f, d: d}
}

// faultFile is one wrapped segment file.
type faultFile struct {
	f *os.File
	d *Disk
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if e := ff.d.errno.Load(); e != 0 {
		return 0, syscall.Errno(e)
	}
	ff.d.delay(ff.d.writeLat.Load())
	if ff.d.short.Load() && len(p) > 1 {
		n, err := ff.f.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if e := ff.d.errno.Load(); e != 0 {
		return syscall.Errno(e)
	}
	ff.d.delay(ff.d.fsyncLat.Load())
	return ff.f.Sync()
}

// Close never injects: a dead disk must still release its descriptor,
// or every chaos run would leak files.
func (ff *faultFile) Close() error { return ff.f.Close() }
