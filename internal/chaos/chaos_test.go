package chaos

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestPlaneLinks covers the partition matrix: reporter cuts and peer
// cuts are independent, symmetric for peers, and heal correctly.
func TestPlaneLinks(t *testing.T) {
	p := NewPlane(7)
	if p.Seed() != 7 {
		t.Fatalf("Seed() = %d, want 7", p.Seed())
	}
	if p.AnyCut() {
		t.Fatal("fresh plane has cuts")
	}

	p.CutReporter(2)
	if !p.ReporterCut(2) || p.ReporterCut(1) {
		t.Fatal("reporter cut not scoped to collector 2")
	}
	if p.PeersCut(2, 3) {
		t.Fatal("reporter cut leaked into peer links")
	}
	if !p.AnyCut() {
		t.Fatal("AnyCut missed the reporter cut")
	}
	p.HealReporter(2)
	if p.ReporterCut(2) || p.AnyCut() {
		t.Fatal("reporter heal did not clear the cut")
	}

	p.CutPeers(1, 3)
	if !p.PeersCut(1, 3) || !p.PeersCut(3, 1) {
		t.Fatal("peer cut not symmetric")
	}
	if p.PeersCut(1, 2) || p.ReporterCut(1) || p.ReporterCut(3) {
		t.Fatal("peer cut leaked into other links")
	}
	if !p.AnyCut() {
		t.Fatal("AnyCut missed the peer cut")
	}
	p.HealPeers(3, 1) // either order heals
	if p.PeersCut(1, 3) || p.AnyCut() {
		t.Fatal("peer heal did not clear the cut")
	}

	// Out-of-range queries are safe and read as intact.
	if p.ReporterCut(-1) || p.ReporterCut(MaxNodes) || p.PeersCut(-1, 2) || p.PeersCut(0, MaxNodes) {
		t.Fatal("out-of-range links read as cut")
	}
}

// TestHealNode clears exactly one collector's faults: its reporter
// link, every peer link it touches, and its disk.
func TestHealNode(t *testing.T) {
	p := NewPlane(1)
	p.CutReporter(1)
	p.CutReporter(2)
	p.CutPeers(1, 3)
	p.CutPeers(2, 3)
	p.Disk(1).SetFsyncLatency(time.Millisecond)

	p.HealNode(1)
	if p.ReporterCut(1) || p.PeersCut(1, 3) || p.Disk(1).FsyncLatency() != 0 {
		t.Fatal("HealNode(1) left collector 1 faults")
	}
	if !p.ReporterCut(2) || !p.PeersCut(2, 3) {
		t.Fatal("HealNode(1) healed collector 2's faults")
	}
	p.HealAll()
	if p.AnyCut() {
		t.Fatal("HealAll left cuts")
	}
}

// TestNilPlaneSafe pins the nil-receiver contract the hot paths rely
// on: a cluster without chaos calls these on a nil plane every report.
func TestNilPlaneSafe(t *testing.T) {
	var p *Plane
	if p.ReporterCut(1) || p.PeersCut(0, 1) || p.AnyCut() {
		t.Fatal("nil plane reports cuts")
	}
	var d *Disk
	d.Heal() // must not panic
	if d.FsyncLatency() != 0 {
		t.Fatal("nil disk has latency")
	}
}

// TestDiskFaultFile drives a real file through WrapFile and checks each
// injected fault: latency, sticky errno, and short writes.
func TestDiskFaultFile(t *testing.T) {
	open := func(t *testing.T, d *Disk) interface {
		Write([]byte) (int, error)
		Sync() error
		Close() error
	} {
		t.Helper()
		f, err := os.Create(filepath.Join(t.TempDir(), "seg"))
		if err != nil {
			t.Fatal(err)
		}
		w := d.WrapFile(f)
		t.Cleanup(func() { w.Close() })
		return w
	}

	t.Run("clean", func(t *testing.T) {
		d := NewPlane(1).Disk(0)
		w := open(t, d)
		if n, err := w.Write([]byte("abcd")); n != 4 || err != nil {
			t.Fatalf("clean write = (%d, %v)", n, err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("clean sync: %v", err)
		}
	})

	t.Run("fsync latency", func(t *testing.T) {
		d := NewPlane(1).Disk(0)
		d.SetFsyncLatency(20 * time.Millisecond)
		w := open(t, d)
		t0 := time.Now()
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(t0); el < 20*time.Millisecond {
			t.Fatalf("sync returned in %s, want >= 20ms", el)
		}
		d.Heal()
		t0 = time.Now()
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(t0); el > 10*time.Millisecond {
			t.Fatalf("healed sync still slow: %s", el)
		}
	})

	t.Run("sticky errno", func(t *testing.T) {
		d := NewPlane(1).Disk(0)
		d.FailSticky(syscall.EIO)
		w := open(t, d)
		if _, err := w.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("write error = %v, want EIO", err)
		}
		if err := w.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync error = %v, want EIO", err)
		}
		// Sticky means sticky: still failing on the next call...
		if _, err := w.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("second write error = %v, want EIO", err)
		}
		// ...until healed.
		d.Heal()
		if n, err := w.Write([]byte("ab")); n != 2 || err != nil {
			t.Fatalf("healed write = (%d, %v)", n, err)
		}
	})

	t.Run("short writes", func(t *testing.T) {
		d := NewPlane(1).Disk(0)
		d.SetShortWrites(true)
		w := open(t, d)
		n, err := w.Write([]byte("abcdefgh"))
		if !errors.Is(err, io.ErrShortWrite) {
			t.Fatalf("short write error = %v, want ErrShortWrite", err)
		}
		if n <= 0 || n >= 8 {
			t.Fatalf("short write wrote %d of 8, want a strict prefix", n)
		}
		// A 1-byte write cannot be shortened and must succeed.
		if n, err := w.Write([]byte("z")); n != 1 || err != nil {
			t.Fatalf("1-byte write = (%d, %v)", n, err)
		}
	})
}

// TestDiskSeedDeterminism: the jitter stream is a pure function of the
// plane seed and disk index — wall-clock delays are too noisy to
// compare, so assert on the xorshift state instead.
func TestDiskSeedDeterminism(t *testing.T) {
	a, b := NewPlane(42).Disk(5), NewPlane(42).Disk(5)
	if a.rng.Load() != b.rng.Load() {
		t.Fatalf("same seed, different disk rng state: %d vs %d", a.rng.Load(), b.rng.Load())
	}
	if c := NewPlane(43).Disk(5); c.rng.Load() == a.rng.Load() {
		t.Fatal("different seeds produced identical disk rng state")
	}
	if d := NewPlane(42).Disk(6); d.rng.Load() == a.rng.Load() {
		t.Fatal("different disks share one jitter stream")
	}

	// The stream advances as jittered ops run, and both same-seed disks
	// advance identically.
	a.SetJitter(time.Nanosecond)
	b.SetJitter(time.Nanosecond)
	before := a.rng.Load()
	a.delay(0)
	b.delay(0)
	if a.rng.Load() == before {
		t.Fatal("jittered delay did not advance the rng")
	}
	if a.rng.Load() != b.rng.Load() {
		t.Fatal("same-seed disks diverged after one jittered op")
	}
}
