package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountersChargeAndPerReport(t *testing.T) {
	var c Counters
	c.Charge(PhaseIO, 40, 2)
	c.Charge(PhaseParse, 40, 3)
	c.Charge(PhaseInsert, 220, 10)
	c.Done(1)
	c.Charge(PhaseIO, 40, 2)
	c.Charge(PhaseParse, 40, 3)
	c.Charge(PhaseInsert, 180, 8)
	c.Done(1)

	pr := c.PerReport()
	if got := pr.Cycles[PhaseIO]; got != 40 {
		t.Errorf("IO cycles/report = %v, want 40", got)
	}
	if got := pr.Cycles[PhaseInsert]; got != 200 {
		t.Errorf("Insert cycles/report = %v, want 200", got)
	}
	if got := pr.TotalMemOps(); got != 14 {
		t.Errorf("mem ops/report = %v, want 14", got)
	}
	if got := c.TotalCycles(); got != 560 {
		t.Errorf("TotalCycles = %d, want 560", got)
	}
}

func TestCountersMergeEqualsSequential(t *testing.T) {
	f := func(aIO, aIns, bIO, bIns uint16) bool {
		var a, b, seq Counters
		a.Charge(PhaseIO, uint64(aIO), 1)
		a.Charge(PhaseInsert, uint64(aIns), 2)
		a.Done(1)
		b.Charge(PhaseIO, uint64(bIO), 3)
		b.Charge(PhaseInsert, uint64(bIns), 4)
		b.Done(1)

		seq.Charge(PhaseIO, uint64(aIO)+uint64(bIO), 4)
		seq.Charge(PhaseInsert, uint64(aIns)+uint64(bIns), 6)
		seq.Done(2)

		a.Merge(&b)
		return a == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerReportZeroReports(t *testing.T) {
	var c Counters
	c.Charge(PhaseIO, 100, 100)
	if pr := c.PerReport(); pr.TotalCycles() != 0 {
		t.Errorf("PerReport with zero reports = %+v, want zero", pr)
	}
}

func TestCycleShareSumsToOne(t *testing.T) {
	var c Counters
	c.Charge(PhaseIO, 136, 0)
	c.Charge(PhaseParse, 136, 0)
	c.Charge(PhaseInsert, 728, 0)
	c.Done(1)
	sh := c.PerReport().CycleShare()
	sum := sh[0] + sh[1] + sh[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
	if math.Abs(sh[2]-0.728) > 1e-9 {
		t.Errorf("insert share = %v, want 0.728", sh[2])
	}
}

func TestThroughputComputeBoundScalesLinearly(t *testing.T) {
	cpu := Xeon4114()
	// Negligible memory pressure: doubling cores doubles throughput.
	r1, s1 := cpu.Throughput(1000, 0.001, 5)
	r2, s2 := cpu.Throughput(1000, 0.001, 10)
	if math.Abs(r2/r1-2) > 0.01 {
		t.Errorf("scaling factor = %v, want ~2", r2/r1)
	}
	if s1 > 0.01 || s2 > 0.01 {
		t.Errorf("unexpected stalls: %v %v", s1, s2)
	}
}

func TestThroughputMemoryWall(t *testing.T) {
	cpu := Xeon4114()
	// A memory-heavy workload must flatten: going 11→20 cores should
	// gain far less than 20/11, and stalls should exceed 30% at 20.
	// (mem counts DRAM-level line fetches; ~3 random lines per report is
	// a cuckoo-style collector.)
	const cyc, mem = 350.0, 3.0
	r11, _ := cpu.Throughput(cyc, mem, 11)
	r20, s20 := cpu.Throughput(cyc, mem, 20)
	if gain := r20 / r11; gain > 1.4 {
		t.Errorf("11→20 core gain = %v, want < 1.4 under memory wall", gain)
	}
	if s20 < 0.30 || s20 > 0.60 {
		t.Errorf("stall fraction at 20 cores = %v, want ~0.42", s20)
	}
	// The realised rate can never exceed either bound.
	if r20 > float64(20)*cpu.Hz/cyc {
		t.Error("throughput exceeds compute bound")
	}
	if r20 > cpu.MemOpsPerSec/mem {
		t.Error("throughput exceeds memory bound")
	}
}

func TestThroughputMonotoneInCores(t *testing.T) {
	cpu := Xeon4114()
	prev := 0.0
	for n := 1; n <= 20; n++ {
		r, _ := cpu.Throughput(1400, 4, n)
		if r < prev {
			t.Fatalf("throughput decreased at %d cores: %v < %v", n, r, prev)
		}
		prev = r
	}
}

func TestThroughputDegenerateInputs(t *testing.T) {
	cpu := Xeon4114()
	if r, _ := cpu.Throughput(0, 10, 4); r != 0 {
		t.Errorf("zero cycles: rate %v, want 0", r)
	}
	if r, _ := cpu.Throughput(100, 10, 0); r != 0 {
		t.Errorf("zero cores: rate %v, want 0", r)
	}
	if r, s := cpu.Throughput(100, 0, 4); r <= 0 || s != 0 {
		t.Errorf("zero memOps: rate %v stall %v", r, s)
	}
}

func TestCoresFor(t *testing.T) {
	cpu := Xeon4114()
	// 19 Mpps at 1400 cycles/report on 2.2GHz cores: 19e6*1400/2.2e9 ≈ 12.09.
	if got := cpu.CoresFor(19e6, 1400); got != 13 {
		t.Errorf("CoresFor = %d, want 13", got)
	}
	if got := cpu.CoresFor(0, 1400); got != 0 {
		t.Errorf("CoresFor(0 rate) = %d, want 0", got)
	}
}

func TestCoresForMonotone(t *testing.T) {
	cpu := Xeon4114()
	f := func(a, b uint32) bool {
		lo, hi := float64(a%1000000)+1, float64(a%1000000)+1+float64(b%1000000)
		return cpu.CoresFor(lo, 500) <= cpu.CoresFor(hi, 500)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemInstructionsPerReport(t *testing.T) {
	var m MemInstructions
	if m.PerReport() != 0 {
		t.Error("zero-value PerReport should be 0")
	}
	m.Add(2, 1)  // key-write with N=2: 2 writes for 1 report
	m.Add(1, 16) // append batch of 16: 1 write
	m.Add(1, 5)  // postcard chunk: 1 write per 5 postcards
	want := float64(4) / 22
	if got := m.PerReport(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PerReport = %v, want %v", got, want)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseIO.String() != "I/O" || PhaseParse.String() != "Parsing" || PhaseInsert.String() != "Insertion" {
		t.Error("unexpected phase names")
	}
	if Phase(42).String() != "Phase(42)" {
		t.Error("unexpected fallback name")
	}
}
