// Package costmodel provides the CPU and memory cost accounting used to
// compare DTA against CPU-based collectors.
//
// The paper's motivation (§2) instruments two software collectors and
// attributes per-report CPU cycles to three phases — I/O, parsing, and
// insertion — and counts memory instructions per report (Fig. 2, Fig. 8).
// It then projects collection capacity for whole networks (Fig. 3).
//
// Our reimplemented baselines charge their work to a Counters value as
// they execute. A CPU model converts per-report costs into reports/second
// for a given core count, including a memory-saturation term that
// reproduces the "Cuckoo becomes memory-bound beyond 11 cores" behaviour
// of Fig. 2b: once the aggregate memory-operation demand exceeds the DRAM
// subsystem's sustainable rate, added cores contribute mostly stall
// cycles.
package costmodel

import (
	"fmt"
	"math"
)

// Phase identifies where a cost was incurred in the collector data path.
type Phase int

// The three phases of report ingestion measured by the paper.
const (
	PhaseIO Phase = iota // receiving the packet (DMA ring, syscall, DPDK burst)
	PhaseParse
	PhaseInsert
	numPhases
)

// String returns the paper's name for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIO:
		return "I/O"
	case PhaseParse:
		return "Parsing"
	case PhaseInsert:
		return "Insertion"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Counters accumulates per-phase CPU cycles and memory instructions across
// a run. The zero value is ready to use. Counters are not safe for
// concurrent use; give each worker its own and Merge afterwards.
//
// Two memory metrics are kept separately because the paper uses them for
// different figures: MemOps counts *memory instructions* (Fig. 8's
// metric — most hit cache), while DRAMOps counts the *random cache-line
// fetches that reach DRAM* and therefore produce the stall cycles of
// Fig. 2b. A radix-index walk issues many memory instructions but only
// its cold deep levels miss; a cuckoo bucket probe is few instructions
// but nearly always misses.
type Counters struct {
	Cycles  [numPhases]uint64
	MemOps  [numPhases]uint64
	DRAMOps [numPhases]uint64
	Reports uint64
}

// Charge adds cycles and memory instructions to a phase.
func (c *Counters) Charge(p Phase, cycles, memOps uint64) {
	c.Cycles[p] += cycles
	c.MemOps[p] += memOps
}

// ChargeDRAM adds DRAM-level cache-line accesses to a phase.
func (c *Counters) ChargeDRAM(p Phase, lines uint64) {
	c.DRAMOps[p] += lines
}

// Done marks n reports fully ingested.
func (c *Counters) Done(n uint64) { c.Reports += n }

// Merge folds other into c.
func (c *Counters) Merge(other *Counters) {
	for p := Phase(0); p < numPhases; p++ {
		c.Cycles[p] += other.Cycles[p]
		c.MemOps[p] += other.MemOps[p]
		c.DRAMOps[p] += other.DRAMOps[p]
	}
	c.Reports += other.Reports
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// TotalCycles reports the cycles charged across all phases.
func (c *Counters) TotalCycles() uint64 {
	var t uint64
	for p := Phase(0); p < numPhases; p++ {
		t += c.Cycles[p]
	}
	return t
}

// TotalMemOps reports the memory instructions charged across all phases.
func (c *Counters) TotalMemOps() uint64 {
	var t uint64
	for p := Phase(0); p < numPhases; p++ {
		t += c.MemOps[p]
	}
	return t
}

// PerReport summarises average per-report costs.
type PerReport struct {
	Cycles  [numPhases]float64
	MemOps  [numPhases]float64
	DRAMOps [numPhases]float64
}

// PerReport computes average per-report costs. It returns a zero summary
// when no reports were recorded.
func (c *Counters) PerReport() PerReport {
	var pr PerReport
	if c.Reports == 0 {
		return pr
	}
	n := float64(c.Reports)
	for p := Phase(0); p < numPhases; p++ {
		pr.Cycles[p] = float64(c.Cycles[p]) / n
		pr.MemOps[p] = float64(c.MemOps[p]) / n
		pr.DRAMOps[p] = float64(c.DRAMOps[p]) / n
	}
	return pr
}

// TotalCycles is the summed per-report cycle cost.
func (pr PerReport) TotalCycles() float64 {
	return pr.Cycles[PhaseIO] + pr.Cycles[PhaseParse] + pr.Cycles[PhaseInsert]
}

// TotalMemOps is the summed per-report memory-instruction cost.
func (pr PerReport) TotalMemOps() float64 {
	return pr.MemOps[PhaseIO] + pr.MemOps[PhaseParse] + pr.MemOps[PhaseInsert]
}

// TotalDRAMOps is the summed per-report DRAM-line access cost: the value
// to feed CPU.Throughput.
func (pr PerReport) TotalDRAMOps() float64 {
	return pr.DRAMOps[PhaseIO] + pr.DRAMOps[PhaseParse] + pr.DRAMOps[PhaseInsert]
}

// CycleShare returns each phase's fraction of the total cycle cost,
// matching the stacked presentation of Fig. 2c.
func (pr PerReport) CycleShare() [3]float64 {
	t := pr.TotalCycles()
	if t == 0 {
		return [3]float64{}
	}
	return [3]float64{
		pr.Cycles[PhaseIO] / t,
		pr.Cycles[PhaseParse] / t,
		pr.Cycles[PhaseInsert] / t,
	}
}

// CPU models the collector server: homogeneous cores plus a shared DRAM
// subsystem with a finite sustainable memory-operation rate.
type CPU struct {
	// Cores is the number of physical cores available for ingestion.
	Cores int
	// Hz is the core clock frequency.
	Hz float64
	// MemOpsPerSec is the sustainable aggregate rate of random
	// cache-line fetches that reach DRAM before queueing delays
	// dominate (DDR4-2667 dual-channel random access, not peak
	// sequential bandwidth).
	MemOpsPerSec float64
	// SaturationSharpness controls how abruptly throughput flattens at
	// the memory wall (the p of a p-norm soft minimum). Larger is
	// sharper; 4 matches the knee observed in Fig. 2a/2b.
	SaturationSharpness float64
}

// Xeon4114 models the paper's testbed server: 2× Intel Xeon Silver 4114
// (10 cores each, 2.20 GHz) with 2×32 GiB DDR4-2667. The sustainable
// memory-op rate is calibrated so a cuckoo-table collector saturates at
// ~11 cores as in Fig. 2.
func Xeon4114() CPU {
	return CPU{
		Cores:               20,
		Hz:                  2.20e9,
		MemOpsPerSec:        240e6,
		SaturationSharpness: 4,
	}
}

// Throughput projects ingestion rate (reports/s) and the fraction of
// cycles stalled on memory when running a workload with the given
// per-report costs on n cores. perReportMemOps must be the DRAM-level
// access count (PerReport.TotalDRAMOps), not the instruction count.
//
// The compute-bound rate is n·Hz/cycles. The memory-bound rate is
// MemOpsPerSec/memOps. The realised rate is a smooth minimum of the two;
// the gap between compute-bound and realised rate appears as stall cycles,
// matching how Fig. 2b measures "mem-stalled cycles".
func (c CPU) Throughput(perReportCycles, perReportMemOps float64, n int) (rps, stallFrac float64) {
	if n <= 0 || perReportCycles <= 0 {
		return 0, 0
	}
	cpuRate := float64(n) * c.Hz / perReportCycles
	if perReportMemOps <= 0 || c.MemOpsPerSec <= 0 {
		return cpuRate, 0
	}
	memRate := c.MemOpsPerSec / perReportMemOps
	p := c.SaturationSharpness
	if p <= 0 {
		p = 4
	}
	// Soft minimum: rate = cpuRate / (1 + (cpuRate/memRate)^p)^(1/p).
	ratio := cpuRate / memRate
	rps = cpuRate / math.Pow(1+math.Pow(ratio, p), 1/p)
	stallFrac = 1 - rps/cpuRate
	return rps, stallFrac
}

// CoresFor returns the number of cores needed to ingest rate reports/s
// with the given per-report cycle cost, ignoring the memory wall (the
// paper's Fig. 3 projection assumes scale-out across servers, so DRAM is
// provisioned proportionally).
func (c CPU) CoresFor(rate, perReportCycles float64) int {
	if rate <= 0 || perReportCycles <= 0 {
		return 0
	}
	cores := rate * perReportCycles / c.Hz
	return int(math.Ceil(cores))
}

// MemInstructions is a convenience counter for RDMA-side structures where
// the collector CPU performs no work but the DMA engine still issues
// memory writes. DTA's Fig. 8 counts these per report.
type MemInstructions struct {
	Ops     uint64
	Reports uint64
}

// Add records ops memory instructions covering n reports.
func (m *MemInstructions) Add(ops, n uint64) {
	m.Ops += ops
	m.Reports += n
}

// PerReport returns average memory instructions per report.
func (m *MemInstructions) PerReport() float64 {
	if m.Reports == 0 {
		return 0
	}
	return float64(m.Ops) / float64(m.Reports)
}
