// Package collector implements the DTA collector host: an RDMA-capable
// server whose memory holds the per-primitive telemetry stores and whose
// CPU only ever runs queries — ingestion happens entirely inside the
// (modelled) NIC via RDMA (§5.3).
//
// A Host registers one memory region per enabled primitive, advertises
// them through the connection manager, applies incoming RoCEv2 packets
// with its Device, and exposes typed query views over the same memory:
// Key-Write lookups, Postcarding path reconstruction, Append polling and
// Key-Increment count-min estimates. WRITEs carrying immediate data
// surface on the Events channel (push notifications, §7).
package collector

import (
	"errors"
	"fmt"

	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// Config enables and sizes the primitive stores. Nil disables.
type Config struct {
	KeyWrite     *keywrite.Config
	KeyIncrement *keyincrement.Config
	Postcarding  *postcarding.Config
	Append       *appendlist.Config
	// EventBuffer sizes the immediate-event channel.
	EventBuffer int
}

// Host is the collector server.
type Host struct {
	dev *rdma.Device

	kw *keywrite.Store
	ki *keyincrement.Store
	pc *postcarding.Store
	ap *appendlist.Store

	regions []rdma.RegionInfo

	// Events delivers RDMA-immediate notifications (push notifications).
	// When full, further events are dropped, like NIC event queues.
	Events chan rdma.ImmediateEvent

	ackBuf []byte
	// DroppedEvents counts notifications lost to a full Events channel.
	DroppedEvents uint64
}

// New builds a Host with the given stores.
func New(cfg Config) (*Host, error) {
	if cfg.KeyWrite == nil && cfg.KeyIncrement == nil && cfg.Postcarding == nil && cfg.Append == nil {
		return nil, errors.New("collector: no primitive enabled")
	}
	evBuf := cfg.EventBuffer
	if evBuf <= 0 {
		evBuf = 1024
	}
	h := &Host{
		dev:    rdma.NewDevice(),
		Events: make(chan rdma.ImmediateEvent, evBuf),
		ackBuf: make([]byte, 0, 64),
	}
	var err error
	if cfg.KeyWrite != nil {
		mr := h.dev.RegisterMemory(cfg.KeyWrite.BufferSize())
		h.kw, err = keywrite.NewStoreOver(*cfg.KeyWrite, mr.Buf)
		if err != nil {
			return nil, err
		}
		h.regions = append(h.regions, rdma.RegionInfo{
			Label: "keywrite", RKey: mr.RKey, VA: mr.Base,
			Length: uint64(len(mr.Buf)),
			Slots:  cfg.KeyWrite.Slots, SlotSize: uint32(cfg.KeyWrite.SlotSize()),
		})
	}
	if cfg.KeyIncrement != nil {
		mr := h.dev.RegisterMemory(cfg.KeyIncrement.BufferSize())
		h.ki, err = keyincrement.NewStoreOver(*cfg.KeyIncrement, mr.Buf)
		if err != nil {
			return nil, err
		}
		h.regions = append(h.regions, rdma.RegionInfo{
			Label: "keyincrement", RKey: mr.RKey, VA: mr.Base,
			Length: uint64(len(mr.Buf)),
			Slots:  cfg.KeyIncrement.Slots, SlotSize: keyincrement.CounterSize,
		})
	}
	if cfg.Postcarding != nil {
		mr := h.dev.RegisterMemory(cfg.Postcarding.BufferSize())
		h.pc, err = postcarding.NewStoreOver(*cfg.Postcarding, mr.Buf)
		if err != nil {
			return nil, err
		}
		h.regions = append(h.regions, rdma.RegionInfo{
			Label: "postcarding", RKey: mr.RKey, VA: mr.Base,
			Length: uint64(len(mr.Buf)),
			Slots:  cfg.Postcarding.Chunks, SlotSize: uint32(cfg.Postcarding.ChunkBytes()),
		})
	}
	if cfg.Append != nil {
		mr := h.dev.RegisterMemory(cfg.Append.BufferSize())
		h.ap, err = appendlist.NewStoreOver(*cfg.Append, mr.Buf)
		if err != nil {
			return nil, err
		}
		h.regions = append(h.regions, rdma.RegionInfo{
			Label: "append", RKey: mr.RKey, VA: mr.Base,
			Length: uint64(len(mr.Buf)),
			Slots:  uint64(cfg.Append.Lists), SlotSize: uint32(cfg.Append.EntrySize),
		})
	}
	return h, nil
}

// Listener returns the CM listener translators connect through.
func (h *Host) Listener() *rdma.Listener {
	return &rdma.Listener{Device: h.dev, Regions: h.regions}
}

// Device exposes the RDMA device (statistics, Fig. 8 accounting).
func (h *Host) Device() *rdma.Device { return h.dev }

// Ingest applies one RoCEv2 packet to collector memory and returns the
// acknowledgement to send back, if any. The collector CPU does not run
// this in deployment — the NIC does — so Ingest charges no CPU cycles.
func (h *Host) Ingest(pkt []byte) (ack []byte, err error) {
	ack, ev, err := h.dev.Process(pkt, h.ackBuf)
	if err != nil {
		return nil, err
	}
	if ev != nil {
		select {
		case h.Events <- *ev:
		default:
			h.DroppedEvents++
		}
	}
	return ack, nil
}

// ErrDisabled reports a query against a primitive that was not enabled.
var ErrDisabled = errors.New("collector: primitive not enabled")

// QueryKeyWrite answers a Key-Write query with redundancy n and
// consensus threshold (Algorithm 2).
func (h *Host) QueryKeyWrite(key wire.Key, n, threshold int) (keywrite.QueryResult, error) {
	if h.kw == nil {
		return keywrite.QueryResult{}, ErrDisabled
	}
	return h.kw.Query(key, n, threshold)
}

// QueryPostcards reconstructs a flow's postcards.
func (h *Host) QueryPostcards(key wire.Key, n int) (postcarding.QueryResult, error) {
	if h.pc == nil {
		return postcarding.QueryResult{}, ErrDisabled
	}
	return h.pc.Query(key, n)
}

// QueryCount returns the count-min estimate for a key.
func (h *Host) QueryCount(key wire.Key, n int) (uint64, error) {
	if h.ki == nil {
		return 0, ErrDisabled
	}
	return h.ki.Query(key, n)
}

// AppendPoller returns a poller over one Append list.
func (h *Host) AppendPoller(list int) (*appendlist.Poller, error) {
	if h.ap == nil {
		return nil, ErrDisabled
	}
	return h.ap.NewPoller(list)
}

// KeyWriteStore exposes the underlying store (benchmarks).
func (h *Host) KeyWriteStore() *keywrite.Store { return h.kw }

// PostcardingStore exposes the underlying store (benchmarks).
func (h *Host) PostcardingStore() *postcarding.Store { return h.pc }

// AppendStore exposes the underlying store (benchmarks).
func (h *Host) AppendStore() *appendlist.Store { return h.ap }

// KeyIncrementStore exposes the underlying store (benchmarks).
func (h *Host) KeyIncrementStore() *keyincrement.Store { return h.ki }

// String summarises the host configuration.
func (h *Host) String() string {
	return fmt.Sprintf("collector{regions=%d}", len(h.regions))
}
