package collector

import (
	"testing"

	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/rdma"
	"dta/internal/wire"
)

func TestNewRequiresAPrimitive(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRegionsAdvertised(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	ki := keyincrement.Config{Slots: 64}
	pc := postcarding.Config{Chunks: 64, Hops: 5, Values: []uint32{1, 2, 3}}
	ap := appendlist.Config{Lists: 2, EntriesPerList: 16, EntrySize: 4}
	h, err := New(Config{KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap})
	if err != nil {
		t.Fatal(err)
	}
	l := h.Listener()
	for _, label := range []string{"keywrite", "keyincrement", "postcarding", "append"} {
		g, ok := rdma.FindRegion(l.Regions, label)
		if !ok {
			t.Errorf("region %q not advertised", label)
			continue
		}
		if g.Length == 0 || g.RKey == 0 {
			t.Errorf("region %q malformed: %+v", label, g)
		}
	}
	// Slot geometry is advertised so the translator can shift-address.
	g, _ := rdma.FindRegion(l.Regions, "keywrite")
	if g.Slots != 64 || g.SlotSize != 8 {
		t.Errorf("keywrite geometry %+v", g)
	}
}

func TestQueriesOnDisabledPrimitives(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	h, err := New(Config{KeyWrite: &kw})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.QueryCount(wire.KeyFromUint64(1), 1); err != ErrDisabled {
		t.Errorf("QueryCount err = %v", err)
	}
	if _, err := h.QueryPostcards(wire.KeyFromUint64(1), 1); err != ErrDisabled {
		t.Errorf("QueryPostcards err = %v", err)
	}
	if _, err := h.AppendPoller(0); err != ErrDisabled {
		t.Errorf("AppendPoller err = %v", err)
	}
	if _, err := h.QueryKeyWrite(wire.KeyFromUint64(1), 1, 1); err != nil {
		t.Errorf("QueryKeyWrite err = %v", err)
	}
}

func TestIngestRejectsGarbage(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	h, _ := New(Config{KeyWrite: &kw})
	if _, err := h.Ingest([]byte{1, 2, 3}); err == nil {
		t.Error("garbage packet accepted")
	}
}

func TestEventOverflowCounted(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	h, err := New(Config{KeyWrite: &kw, EventBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Write directly through the device with immediates to overflow the
	// 1-slot event channel.
	l := h.Listener()
	req, regions, err := rdma.Connect(l, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := rdma.FindRegion(regions, "keywrite")
	imm := uint32(5)
	for i := 0; i < 3; i++ {
		pkt := rdma.BuildWrite(nil, req.DestQP, req.NextPSN(), g.VA, g.RKey, []byte{1}, false, &imm)
		if _, err := h.Ingest(pkt); err != nil {
			t.Fatal(err)
		}
	}
	if h.DroppedEvents != 2 {
		t.Errorf("dropped events = %d, want 2", h.DroppedEvents)
	}
	if len(h.Events) != 1 {
		t.Errorf("queued events = %d, want 1", len(h.Events))
	}
}
