// Package keywrite implements DTA's Key-Write primitive: a probabilistic,
// write-only key-value store designed so that a switch (the translator)
// can insert telemetry with nothing but RDMA WRITEs, and the collector can
// answer queries without the CPU ever having touched the inserts.
//
// A key's value is written, together with a checksum of the key, to N
// pseudo-random slots chosen by stateless global hash functions
// (Algorithm 1 of the paper). Queries recompute the slots, keep the
// candidates whose stored checksum matches, and return the plurality
// value (Algorithm 2). Redundancy N trades throughput for resilience
// against overwrites; the checksum width b bounds the probability of
// returning a wrong value (Appendix A.5, reproduced in bounds.go).
package keywrite

import (
	"bytes"
	"errors"
	"fmt"

	"dta/internal/crc"
	"dta/internal/wire"
)

// MaxRedundancy is the largest supported N. It matches the paper's
// evaluation range (Fig. 12 sweeps N up to 8).
const MaxRedundancy = 8

// ChecksumSize is the stored checksum width in bytes. The paper stores a
// concatenated 4 B CRC; narrower logical widths (b bits) are emulated by
// masking.
const ChecksumSize = 4

// Config describes the geometry of a Key-Write store.
type Config struct {
	// Slots is the number of key-value slots. It must be a power of two
	// so switch pipelines can mask instead of dividing (§5.2).
	Slots uint64
	// DataSize is the value width in bytes (4 for INT postcards, 20 for
	// 5-hop path traces).
	DataSize int
	// ChecksumBits is the logical checksum width b ∈ [1,32]. Smaller b
	// trades wrong-output probability for memory (§A.5). 0 means 32.
	ChecksumBits int
}

func (c *Config) validate() error {
	if c.Slots == 0 || c.Slots&(c.Slots-1) != 0 {
		return fmt.Errorf("keywrite: slots %d not a power of two", c.Slots)
	}
	if c.DataSize <= 0 || c.DataSize > wire.MaxData {
		return fmt.Errorf("keywrite: data size %d out of range (0,%d]", c.DataSize, wire.MaxData)
	}
	if c.ChecksumBits < 0 || c.ChecksumBits > 32 {
		return fmt.Errorf("keywrite: checksum bits %d out of range [0,32]", c.ChecksumBits)
	}
	return nil
}

// SlotSize returns the stored size of one slot: checksum plus value.
func (c Config) SlotSize() int { return ChecksumSize + c.DataSize }

// BufferSize returns the memory required for the store.
func (c Config) BufferSize() int { return int(c.Slots) * c.SlotSize() }

// Indexer holds the stateless hash logic shared by the translator (to
// address writes) and the collector (to address queries). It carries no
// per-key state: any party with the same configuration computes the same
// slots, which is what lets every switch in the network share one store.
//
// The N slot hashes use N *distinct CRC polynomials* (crc.Family). This
// matters: deriving them from one polynomial with an index prefix would
// make them linearly related (CRC is linear in its input), so a single
// colliding key would overwrite all N replicas at once, silently
// destroying the redundancy. This is exactly why §5.2 emphasises
// "carefully selected CRC polynomials".
type Indexer struct {
	cfg      Config
	slots    *crc.Family
	csumEng  *crc.Engine
	slotMask uint64
	csumMask uint32
}

// NewIndexer builds an Indexer for the configuration.
func NewIndexer(cfg Config) (*Indexer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mask := uint32(0xffffffff)
	if cfg.ChecksumBits != 0 && cfg.ChecksumBits < 32 {
		mask = 1<<uint(cfg.ChecksumBits) - 1
	}
	return &Indexer{
		cfg:   cfg,
		slots: crc.MustFamily(MaxRedundancy),
		// The checksum polynomial (CRC-32D) is outside the slot family:
		// see the crc package for why sharing one would be fatal.
		csumEng:  crc.New(crc.D),
		slotMask: cfg.Slots - 1,
		csumMask: mask,
	}, nil
}

// Slot computes the n'th redundant location for key.
func (x *Indexer) Slot(n int, key wire.Key) uint64 {
	return uint64(x.slots.Hash16(n, (*[wire.KeySize]byte)(&key))) & x.slotMask
}

// Checksum computes the key checksum, masked to the configured width.
func (x *Indexer) Checksum(key wire.Key) uint32 {
	return x.csumEng.Sum128((*[wire.KeySize]byte)(&key)) & x.csumMask
}

// Offset converts a slot index to a byte offset within the store buffer.
func (x *Indexer) Offset(slot uint64) int { return int(slot) * x.cfg.SlotSize() }

// Config returns the indexer's configuration.
func (x *Indexer) Config() Config { return x.cfg }

// ErrShortBuffer reports a store buffer smaller than the geometry needs.
var ErrShortBuffer = errors.New("keywrite: buffer smaller than configured geometry")

// Store is the collector-side view of the key-value memory. The buffer is
// typically an RDMA-registered region that the translator writes into;
// Store itself only ever reads it for queries. The direct-write methods
// exist for simulation and tests, applying exactly the bytes an RDMA
// WRITE crafted by the translator would.
type Store struct {
	x   *Indexer
	buf []byte
}

// NewStore allocates a store with its own backing buffer.
func NewStore(cfg Config) (*Store, error) {
	x, err := NewIndexer(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{x: x, buf: make([]byte, cfg.BufferSize())}, nil
}

// NewStoreOver builds a store view over an existing buffer (an RDMA
// memory region).
func NewStoreOver(cfg Config, buf []byte) (*Store, error) {
	x, err := NewIndexer(cfg)
	if err != nil {
		return nil, err
	}
	if len(buf) < cfg.BufferSize() {
		return nil, ErrShortBuffer
	}
	return &Store{x: x, buf: buf[:cfg.BufferSize()]}, nil
}

// Indexer returns the store's indexer.
func (s *Store) Indexer() *Indexer { return s.x }

// Buffer exposes the backing memory (for registering with an RDMA device).
func (s *Store) Buffer() []byte { return s.buf }

// writeSlot applies one slot image, as the DMA engine would.
func (s *Store) writeSlot(slot uint64, csum uint32, data []byte) {
	off := s.x.Offset(slot)
	s.buf[off] = byte(csum >> 24)
	s.buf[off+1] = byte(csum >> 16)
	s.buf[off+2] = byte(csum >> 8)
	s.buf[off+3] = byte(csum)
	copy(s.buf[off+ChecksumSize:off+ChecksumSize+s.x.cfg.DataSize], data)
}

// Write inserts data under key with redundancy n, performing locally what
// the translator performs with n RDMA WRITEs (Algorithm 1). Data longer
// than the configured width is truncated; shorter data is zero-padded.
func (s *Store) Write(key wire.Key, data []byte, n int) error {
	if n < 1 || n > MaxRedundancy {
		return fmt.Errorf("keywrite: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	csum := s.x.Checksum(key)
	var padded [wire.MaxData]byte
	d := data
	if len(d) != s.x.cfg.DataSize {
		copy(padded[:s.x.cfg.DataSize], d)
		d = padded[:s.x.cfg.DataSize]
	}
	for i := 0; i < n; i++ {
		s.writeSlot(s.Slot(i, key), csum, d)
	}
	return nil
}

// Slot exposes the indexer's slot computation.
func (s *Store) Slot(n int, key wire.Key) uint64 { return s.x.Slot(n, key) }

// readSlot returns the stored checksum and a view of the value bytes.
func (s *Store) readSlot(slot uint64) (uint32, []byte) {
	off := s.x.Offset(slot)
	csum := uint32(s.buf[off])<<24 | uint32(s.buf[off+1])<<16 |
		uint32(s.buf[off+2])<<8 | uint32(s.buf[off+3])
	return csum & s.x.csumMask, s.buf[off+ChecksumSize : off+ChecksumSize+s.x.cfg.DataSize]
}

// QueryResult carries the outcome of a query and diagnostic detail.
type QueryResult struct {
	// Data is the winning value (a view into the store; copy to retain).
	Data []byte
	// Found reports whether a value met the consensus threshold.
	Found bool
	// Matches is how many of the N slots carried the key's checksum.
	Matches int
	// Agreements is how many slots carried the winning value.
	Agreements int
}

// Query looks key up across n redundant slots and returns the value that
// appears most often among checksum-validated candidates (Algorithm 2).
// threshold is the consensus parameter T: the winner must appear at least
// that many times (1 = plurality, the paper's default). Ties between
// distinct values yield an empty return, never an arbitrary choice.
func (s *Store) Query(key wire.Key, n, threshold int) (QueryResult, error) {
	if n < 1 || n > MaxRedundancy {
		return QueryResult{}, fmt.Errorf("keywrite: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	if threshold < 1 {
		threshold = 1
	}
	want := s.x.Checksum(key)
	var cands [MaxRedundancy][]byte
	nc := 0
	for i := 0; i < n; i++ {
		csum, val := s.readSlot(s.x.Slot(i, key))
		if csum == want {
			cands[nc] = val
			nc++
		}
	}
	res := QueryResult{Matches: nc}
	if nc == 0 {
		return res, nil
	}
	// Plurality vote over at most MaxRedundancy candidates: O(N²)
	// comparisons with no allocation.
	bestIdx, bestCount, tie := 0, 0, false
	for i := 0; i < nc; i++ {
		count := 1
		for j := 0; j < nc; j++ {
			if j != i && bytes.Equal(cands[i], cands[j]) {
				count++
			}
		}
		if count > bestCount {
			bestIdx, bestCount, tie = i, count, false
		} else if count == bestCount && !bytes.Equal(cands[i], cands[bestIdx]) {
			tie = true
		}
	}
	res.Agreements = bestCount
	if tie || bestCount < threshold {
		return res, nil
	}
	res.Data = cands[bestIdx]
	res.Found = true
	return res, nil
}
