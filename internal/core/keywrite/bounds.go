package keywrite

import (
	"math"

	"dta/internal/analysis"
)

// Analytic error bounds for the Key-Write primitive, following Appendix
// A.5 of the paper. The scenario: a key was written with redundancy N to
// a store of M slots, then K = α·M further distinct keys were written.
// Under the standard Poisson approximation the probability that a given
// slot was overwritten is 1 − e^{−αN}, and an overwriting key masquerades
// as ours with checksum-collision probability 2^−b.
//
// The paper's worked example — N=2, b=32, α=0.1 gives an empty return
// under 3.3% and a wrong output under 1.6·10⁻¹¹ — is checked in the
// tests. The generic machinery lives in internal/analysis and is shared
// with Postcarding's A.6 bounds.

// checksumCollision returns q = 2^−b.
func checksumCollision(b int) float64 {
	if b <= 0 || b > 32 {
		b = 32
	}
	return math.Pow(2, -float64(b))
}

// EmptyReturnBound bounds the probability that a query for a written key
// returns no answer (eqs. 1–3).
func EmptyReturnBound(alpha float64, n, b int) float64 {
	return analysis.EmptyReturnBound(alpha, n, checksumCollision(b))
}

// WrongOutputBound bounds the probability that a query returns an
// incorrect value (eq. 4).
func WrongOutputBound(alpha float64, n, b int) float64 {
	return analysis.WrongOutputBound(alpha, n, checksumCollision(b))
}

// QuerySuccessEstimate estimates the probability that a query succeeds
// when checksum collisions are negligible (large b): at least one of the
// N slots survived the α·M subsequent writes. This is the analytic curve
// behind Fig. 12 and Fig. 13.
func QuerySuccessEstimate(alpha float64, n int) float64 {
	return analysis.SuccessEstimate(alpha, n)
}

// OptimalRedundancy returns the N in [1, maxN] that maximises the
// query-success estimate at load factor α. Fig. 12's background shading
// shows this choice flipping from high N at low load to N=1 at high load.
func OptimalRedundancy(alpha float64, maxN int) int {
	best, bestP := 1, QuerySuccessEstimate(alpha, 1)
	for n := 2; n <= maxN; n++ {
		if p := QuerySuccessEstimate(alpha, n); p > bestP {
			best, bestP = n, p
		}
	}
	return best
}

// AgeToAlpha converts a report age (number of keys written after the
// queried one) and a store geometry to the load factor α used by the
// bounds. This is the x-axis transformation of Fig. 13.
func AgeToAlpha(age uint64, slots uint64) float64 {
	if slots == 0 {
		return math.Inf(1)
	}
	return float64(age) / float64(slots)
}
