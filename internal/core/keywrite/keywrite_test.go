package keywrite

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dta/internal/wire"
)

func mustStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(v uint64) wire.Key { return wire.KeyFromUint64(v) }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Slots: 0, DataSize: 4},
		{Slots: 100, DataSize: 4}, // not a power of two
		{Slots: 64, DataSize: 0},
		{Slots: 64, DataSize: wire.MaxData + 1},
		{Slots: 64, DataSize: 4, ChecksumBits: 33},
	}
	for _, c := range bad {
		if _, err := NewStore(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if _, err := NewStore(Config{Slots: 64, DataSize: 4}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestWriteThenQuery(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 12, DataSize: 4})
	data := []byte{1, 2, 3, 4}
	for _, n := range []int{1, 2, 4, 8} {
		k := key(uint64(n) * 1000)
		if err := s.Write(k, data, n); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(k, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !bytes.Equal(res.Data, data) {
			t.Errorf("N=%d: %+v", n, res)
		}
		if res.Matches != n || res.Agreements != n {
			t.Errorf("N=%d: matches=%d agreements=%d", n, res.Matches, res.Agreements)
		}
	}
}

func TestQueryMissingKey(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 12, DataSize: 4})
	res, err := s.Query(key(42), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An empty store holds zero checksums; a fresh key's checksum is
	// overwhelmingly unlikely to be zero, so the query comes back empty.
	if res.Found {
		t.Errorf("found value for never-written key: %+v", res)
	}
}

func TestRedundancyValidation(t *testing.T) {
	s := mustStore(t, Config{Slots: 64, DataSize: 4})
	if err := s.Write(key(1), []byte{1}, 0); err == nil {
		t.Error("redundancy 0 accepted")
	}
	if err := s.Write(key(1), []byte{1}, MaxRedundancy+1); err == nil {
		t.Error("redundancy 9 accepted")
	}
	if _, err := s.Query(key(1), 0, 1); err == nil {
		t.Error("query redundancy 0 accepted")
	}
}

func TestShortDataZeroPadded(t *testing.T) {
	s := mustStore(t, Config{Slots: 64, DataSize: 8})
	if err := s.Write(key(5), []byte{0xaa}, 1); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query(key(5), 1, 1)
	want := []byte{0xaa, 0, 0, 0, 0, 0, 0, 0}
	if !res.Found || !bytes.Equal(res.Data, want) {
		t.Errorf("got %v, want %v", res.Data, want)
	}
}

func TestOverwriteSameKeyUpdates(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 10, DataSize: 4})
	k := key(7)
	s.Write(k, []byte{1, 1, 1, 1}, 2)
	s.Write(k, []byte{2, 2, 2, 2}, 2)
	res, _ := s.Query(k, 2, 1)
	if !res.Found || !bytes.Equal(res.Data, []byte{2, 2, 2, 2}) {
		t.Errorf("got %+v, want updated value", res)
	}
}

func TestPartialOverwriteStillAnswers(t *testing.T) {
	// Overwrite exactly one of the two slots with another key's data;
	// the surviving replica must still answer.
	s := mustStore(t, Config{Slots: 1 << 10, DataSize: 4})
	k := key(1234)
	s.Write(k, []byte{9, 9, 9, 9}, 2)
	// Forge an overwrite of slot 0 by writing a conflicting image
	// directly (as a colliding key's RDMA write would).
	s.writeSlot(s.Slot(0, k), 0xdeadbeef, []byte{0, 0, 0, 0})
	res, _ := s.Query(k, 2, 1)
	if !res.Found || !bytes.Equal(res.Data, []byte{9, 9, 9, 9}) {
		t.Errorf("got %+v, want survivor answer", res)
	}
	if res.Matches != 1 {
		t.Errorf("matches = %d, want 1", res.Matches)
	}
}

func TestConsensusThreshold(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 10, DataSize: 4})
	k := key(55)
	s.Write(k, []byte{5, 5, 5, 5}, 2)
	s.writeSlot(s.Slot(0, k), 0x11111111, []byte{0, 0, 0, 0})
	// One surviving replica: plurality (T=1) answers, consensus T=2 does not.
	if res, _ := s.Query(k, 2, 1); !res.Found {
		t.Error("T=1 should answer with one survivor")
	}
	if res, _ := s.Query(k, 2, 2); res.Found {
		t.Error("T=2 answered with a single survivor")
	}
}

func TestConflictingCandidatesTie(t *testing.T) {
	// Two slots both carry our checksum but different values (forged
	// collision): a 1-1 tie must return empty rather than guess.
	s := mustStore(t, Config{Slots: 1 << 10, DataSize: 4})
	k := key(77)
	csum := s.Indexer().Checksum(k)
	s.writeSlot(s.Slot(0, k), csum, []byte{1, 0, 0, 0})
	s.writeSlot(s.Slot(1, k), csum, []byte{2, 0, 0, 0})
	res, _ := s.Query(k, 2, 1)
	if res.Found {
		t.Errorf("tie returned a value: %+v", res)
	}
	if res.Matches != 2 {
		t.Errorf("matches = %d, want 2", res.Matches)
	}
}

func TestMajorityBeatsMinority(t *testing.T) {
	// Three candidates: two agree, one differs — the pair wins.
	s := mustStore(t, Config{Slots: 1 << 10, DataSize: 4})
	k := key(88)
	csum := s.Indexer().Checksum(k)
	s.writeSlot(s.Slot(0, k), csum, []byte{1, 0, 0, 0})
	s.writeSlot(s.Slot(1, k), csum, []byte{1, 0, 0, 0})
	s.writeSlot(s.Slot(2, k), csum, []byte{2, 0, 0, 0})
	res, _ := s.Query(k, 3, 1)
	if !res.Found || res.Data[0] != 1 || res.Agreements != 2 {
		t.Errorf("got %+v, want majority value 1", res)
	}
}

func TestSlotDistributionAcrossN(t *testing.T) {
	// The N slots of one key should be distinct almost always, and
	// different keys should spread across the store.
	s := mustStore(t, Config{Slots: 1 << 14, DataSize: 4})
	dup := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		k := key(uint64(i))
		seen := map[uint64]bool{}
		for n := 0; n < 4; n++ {
			sl := s.Slot(n, k)
			if sl >= 1<<14 {
				t.Fatalf("slot %d out of range", sl)
			}
			if seen[sl] {
				dup++
			}
			seen[sl] = true
		}
	}
	// Expected self-collisions ≈ keys * C(4,2)/slots ≈ 0.7; allow slack.
	if dup > 10 {
		t.Errorf("%d self-collisions across %d keys", dup, keys)
	}
}

func TestIndexerDeterminism(t *testing.T) {
	cfg := Config{Slots: 1 << 16, DataSize: 4}
	a, _ := NewIndexer(cfg)
	b, _ := NewIndexer(cfg)
	f := func(kv uint64, n uint8) bool {
		k := key(kv)
		i := int(n % MaxRedundancy)
		return a.Slot(i, k) == b.Slot(i, k) && a.Checksum(k) == b.Checksum(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChecksumMasking(t *testing.T) {
	for _, b := range []int{1, 8, 16, 31} {
		x, err := NewIndexer(Config{Slots: 64, DataSize: 4, ChecksumBits: b})
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 100; i++ {
			if c := x.Checksum(key(i)); c >= 1<<uint(b) {
				t.Fatalf("b=%d: checksum %#x exceeds width", b, c)
			}
		}
	}
}

func TestNewStoreOver(t *testing.T) {
	cfg := Config{Slots: 64, DataSize: 4}
	if _, err := NewStoreOver(cfg, make([]byte, cfg.BufferSize()-1)); err != ErrShortBuffer {
		t.Errorf("short buffer: err = %v", err)
	}
	buf := make([]byte, cfg.BufferSize()+10)
	s, err := NewStoreOver(cfg, buf)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(key(3), []byte{1, 2, 3, 4}, 1)
	// The write landed in the provided buffer.
	if bytes.Equal(buf, make([]byte, len(buf))) {
		t.Error("provided buffer untouched")
	}
}

// simulateSuccess writes `loaded` random keys after a tracked key and
// reports whether the tracked key is still queryable.
func simulateSuccess(t *testing.T, s *Store, rnd *rand.Rand, n int, loaded int) bool {
	t.Helper()
	tracked := key(rnd.Uint64())
	want := make([]byte, 4)
	rnd.Read(want)
	s.Write(tracked, want, n)
	var buf [8]byte
	data := []byte{0xff, 0xff, 0xff, 0xff}
	for i := 0; i < loaded; i++ {
		binary.BigEndian.PutUint64(buf[:], rnd.Uint64())
		var k wire.Key
		copy(k[:], buf[:])
		k[15] = 1 // never equals tracked (tracked has k[15]=0... ensure distinct space)
		s.Write(k, data, n)
	}
	res, _ := s.Query(tracked, n, 1)
	return res.Found && bytes.Equal(res.Data, want)
}

func TestEmpiricalSuccessMatchesEstimate(t *testing.T) {
	// Fig. 12's underlying relationship: success rate vs load factor α
	// for different N, compared against the analytic estimate.
	const slots = 1 << 12
	rnd := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 4} {
		for _, alpha := range []float64{0.1, 0.4, 0.8} {
			const trials = 120
			ok := 0
			for trial := 0; trial < trials; trial++ {
				s := mustStore(t, Config{Slots: slots, DataSize: 4})
				if simulateSuccess(t, s, rnd, n, int(alpha*slots)) {
					ok++
				}
			}
			got := float64(ok) / trials
			want := QuerySuccessEstimate(alpha, n)
			if math.Abs(got-want) > 0.12 {
				t.Errorf("N=%d α=%.1f: empirical %.2f vs estimate %.2f", n, alpha, got, want)
			}
		}
	}
}

func TestPaperWorkedExample(t *testing.T) {
	// §4: "if N=2, b=32, α=0.1, the chance of not providing the output is
	// less than 3.3%, while the probability of wrong output is bounded by
	// 1.6·10⁻¹¹", and N=1 gives 9.5%, N=4 gives 1.2%.
	if p := EmptyReturnBound(0.1, 2, 32); p > 0.033 || p < 0.02 {
		t.Errorf("empty-return bound N=2 = %v, want ≈0.033", p)
	}
	if p := WrongOutputBound(0.1, 2, 32); p > 1.6e-11 || p < 1e-12 {
		t.Errorf("wrong-output bound N=2 = %v, want ≈1.6e-11", p)
	}
	if p := EmptyReturnBound(0.1, 1, 32); math.Abs(p-0.095) > 0.005 {
		t.Errorf("empty-return bound N=1 = %v, want ≈0.095", p)
	}
	if p := EmptyReturnBound(0.1, 4, 32); math.Abs(p-0.012) > 0.002 {
		t.Errorf("empty-return bound N=4 = %v, want ≈0.012", p)
	}
}

func TestBoundsAreProbabilities(t *testing.T) {
	f := func(a uint8, n uint8, b uint8) bool {
		alpha := float64(a%100) / 50.0 // 0..2
		nn := int(n%8) + 1
		bb := int(b%32) + 1
		p1 := EmptyReturnBound(alpha, nn, bb)
		p2 := WrongOutputBound(alpha, nn, bb)
		return p1 >= -1e-12 && p1 <= 1+1e-9 && p2 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWrongOutputNeverExceedsEmpiricalWithSmallChecksum(t *testing.T) {
	// With a tiny checksum (b=8) wrong outputs become observable; the
	// empirical rate must stay within a small factor of the bound.
	const slots = 1 << 10
	const n = 2
	rnd := rand.New(rand.NewSource(7))
	wrong, trials := 0, 4000
	alpha := 1.0
	for trial := 0; trial < trials; trial++ {
		s := mustStore(t, Config{Slots: slots, DataSize: 4, ChecksumBits: 8})
		tracked := key(rnd.Uint64())
		want := []byte{1, 2, 3, 4}
		s.Write(tracked, want, n)
		other := []byte{9, 9, 9, 9}
		for i := 0; i < int(alpha*slots); i++ {
			s.Write(key(rnd.Uint64()|1<<63), other, n)
		}
		res, _ := s.Query(tracked, n, 1)
		if res.Found && !bytes.Equal(res.Data, want) {
			wrong++
		}
	}
	got := float64(wrong) / float64(trials)
	bound := WrongOutputBound(alpha, n, 8)
	// The bound is an upper bound on the probability; sampling noise at
	// 4000 trials is ~3σ ≈ 0.003 for p≈bound.
	if got > bound+0.005 {
		t.Errorf("empirical wrong-output %.4f exceeds bound %.4f", got, bound)
	}
}

func TestOptimalRedundancyShape(t *testing.T) {
	// Fig. 12: at low load high N wins; at very high load N=1 wins.
	if n := OptimalRedundancy(0.05, 8); n < 4 {
		t.Errorf("optimal N at α=0.05 = %d, want ≥4", n)
	}
	if n := OptimalRedundancy(1.0, 8); n != 1 {
		t.Errorf("optimal N at α=1.0 = %d, want 1", n)
	}
	// Monotone switch: once N=1 is optimal it stays optimal for larger α.
	prev := 8
	for alpha := 0.05; alpha <= 1.5; alpha += 0.05 {
		n := OptimalRedundancy(alpha, 8)
		if n > prev {
			t.Fatalf("optimal N increased from %d to %d at α=%.2f", prev, n, alpha)
		}
		prev = n
	}
}

func TestAgeToAlpha(t *testing.T) {
	if a := AgeToAlpha(100, 1000); a != 0.1 {
		t.Errorf("AgeToAlpha = %v, want 0.1", a)
	}
	if a := AgeToAlpha(1, 0); !math.IsInf(a, 1) {
		t.Errorf("AgeToAlpha with zero slots = %v, want +Inf", a)
	}
}

func TestQueryNoAllocs(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 12, DataSize: 20})
	k := key(5)
	s.Write(k, bytes.Repeat([]byte{7}, 20), 4)
	allocs := testing.AllocsPerRun(200, func() {
		res, err := s.Query(k, 4, 1)
		if err != nil || !res.Found {
			t.Fatal("query failed")
		}
	})
	if allocs != 0 {
		t.Errorf("Query allocates %v per call", allocs)
	}
}

func BenchmarkWriteN1(b *testing.B) { benchWrite(b, 1) }
func BenchmarkWriteN2(b *testing.B) { benchWrite(b, 2) }
func BenchmarkWriteN4(b *testing.B) { benchWrite(b, 4) }

func benchWrite(b *testing.B, n int) {
	s, _ := NewStore(Config{Slots: 1 << 20, DataSize: 4})
	data := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write(key(uint64(i)), data, n)
	}
}

func BenchmarkQueryN2(b *testing.B) {
	s, _ := NewStore(Config{Slots: 1 << 20, DataSize: 4})
	data := []byte{1, 2, 3, 4}
	for i := 0; i < 1<<18; i++ {
		s.Write(key(uint64(i)), data, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(key(uint64(i%(1<<18))), 2, 1)
	}
}
