// Package postcarding implements DTA's Postcarding primitive: aggregated
// collection of per-hop INT postcards (INT-XD/MX) into consecutive memory
// chunks, one chunk per flow, written with a single RDMA WRITE.
//
// The collector memory is divided into C chunks of B slots (Fig. 5). The
// i'th postcard of flow x is encoded as checksum(x,i) ⊕ g(v) into slot i
// of chunk h(x), where g maps the value space V into b-bit strings and a
// blank value ⊔ fills hops beyond the path length so every flow always
// occupies all B slots. Queries succeed only if every slot of a chunk
// decodes consistently, which amplifies the per-slot collision chance
// (|V|+1)·2^−b to the B'th power (§4, Appendix A.6).
//
// The translator-side Cache aggregates postcards per flow before the
// chunk write; collisions on the cache evict the incumbent flow early,
// which surfaces as partial reports (counted as failures in Fig. 14).
package postcarding

import (
	"errors"
	"fmt"

	"dta/internal/analysis"
	"dta/internal/crc"
	"dta/internal/wire"
)

// MaxHops is the largest supported path bound B.
const MaxHops = 8

// MaxRedundancy is the largest supported chunk redundancy N.
const MaxRedundancy = 8

// SlotSize is the stored size of one hop slot (32-bit payloads, §5.2).
const SlotSize = 4

// Blank is the sentinel "no postcard collected" value ⊔. It must not be a
// member of the value space.
const Blank = 0xffffffff

// Config describes a Postcarding store.
type Config struct {
	// Chunks is the number of flow chunks C. Must be a power of two.
	Chunks uint64
	// Hops is the path bound B (e.g. 5 for a fat tree).
	Hops int
	// SlotBits is the logical slot width b ∈ [1,32]. 0 means 32.
	SlotBits int
	// Values enumerates the value space V (e.g. all switch IDs). Queries
	// can only reconstruct values registered here; the paper pre-populates
	// the same lookup table of g(v) → v pairs.
	Values []uint32
}

func (c *Config) validate() error {
	if c.Chunks == 0 || c.Chunks&(c.Chunks-1) != 0 {
		return fmt.Errorf("postcarding: chunks %d not a power of two", c.Chunks)
	}
	if c.Hops < 1 || c.Hops > MaxHops {
		return fmt.Errorf("postcarding: hops %d out of range [1,%d]", c.Hops, MaxHops)
	}
	if c.SlotBits < 0 || c.SlotBits > 32 {
		return fmt.Errorf("postcarding: slot bits %d out of range [0,32]", c.SlotBits)
	}
	if len(c.Values) == 0 {
		return errors.New("postcarding: empty value space")
	}
	for _, v := range c.Values {
		if v == Blank {
			return errors.New("postcarding: value space contains the blank sentinel")
		}
	}
	return nil
}

// chunkStride returns the number of slots a chunk occupies in memory:
// Hops rounded up to a power of two, because address computation in the
// switch pipeline uses shifts (§5.2: 20 B chunks are padded to 32 B).
func (c Config) chunkStride() int {
	s := 1
	for s < c.Hops {
		s <<= 1
	}
	return s
}

// ChunkBytes is the padded on-the-wire and in-memory size of one chunk.
func (c Config) ChunkBytes() int { return c.chunkStride() * SlotSize }

// BufferSize returns the memory required for the store.
func (c Config) BufferSize() int { return int(c.Chunks) * c.ChunkBytes() }

// Coder holds the stateless hashing and value-encoding logic shared by
// the translator (writes) and the collector (queries).
type Coder struct {
	cfg     Config
	chunks  *crc.Family // chunk selection h_1..h_N (distinct polynomials)
	csumEng *crc.Engine // per-hop checksum base (input rotated per hop)
	gEng    *crc.Engine // value encoding g
	mask    uint32
	lookup  map[uint32]uint32 // g(v) → v, pre-populated (constant-time query)
	gBlank  uint32
	stride  int
}

// NewCoder builds a Coder for the configuration.
func NewCoder(cfg Config) (*Coder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	mask := uint32(0xffffffff)
	if cfg.SlotBits != 0 && cfg.SlotBits < 32 {
		mask = 1<<uint(cfg.SlotBits) - 1
	}
	c := &Coder{
		cfg:     cfg,
		chunks:  crc.MustFamily(MaxRedundancy),
		csumEng: crc.New(crc.D),
		gEng:    crc.New(crc.K32K),
		mask:    mask,
		lookup:  make(map[uint32]uint32, len(cfg.Values)+1),
		stride:  cfg.chunkStride(),
	}
	c.gBlank = c.gEng.Sum64(uint64(Blank)) & mask
	c.lookup[c.gBlank] = Blank
	for _, v := range cfg.Values {
		gv := c.g(v)
		if prev, dup := c.lookup[gv]; dup && prev != v {
			return nil, fmt.Errorf("postcarding: g collision between values %d and %d at b=%d; widen SlotBits", prev, v, cfg.SlotBits)
		}
		c.lookup[gv] = v
	}
	return c, nil
}

// Config returns the coder's configuration.
func (c *Coder) Config() Config { return c.cfg }

// g encodes a value into its b-bit code.
func (c *Coder) g(v uint32) uint32 { return c.gEng.Sum64(uint64(v)) & c.mask }

// Chunk computes the j'th redundant chunk index for flow key x.
func (c *Coder) Chunk(j int, x wire.Key) uint64 {
	return uint64(c.chunks.Hash16(j, (*[wire.KeySize]byte)(&x))) & (c.cfg.Chunks - 1)
}

// checksum computes the hop-specific checksum(x, i). Each hop uses a
// distinct linear map — the input is rotated by i bytes before hashing —
// mirroring the per-hop custom CRC polynomials of §5.2. (An additive hop
// constant would NOT work: CRC is linear, so the per-hop checksums of two
// flows would differ by a hop-independent constant and hop collisions
// would be perfectly correlated.)
func (c *Coder) checksum(x wire.Key, hop int) uint32 {
	var buf [wire.KeySize]byte
	for i := range buf {
		buf[i] = x[(i+hop)%wire.KeySize]
	}
	return c.csumEng.Sum(buf[:]) & c.mask
}

// EncodeSlot produces the stored image of hop i of flow x carrying value
// v (Blank for uncollected hops).
func (c *Coder) EncodeSlot(x wire.Key, hop int, v uint32) uint32 {
	var gv uint32
	if v == Blank {
		gv = c.gBlank
	} else {
		gv = c.g(v)
	}
	return (c.checksum(x, hop) ^ gv) & c.mask
}

// DecodeSlot inverts EncodeSlot: it strips the checksum and consults the
// pre-populated lookup table. ok is false if the residue is not the code
// of any registered value (an invalid slot).
func (c *Coder) DecodeSlot(x wire.Key, hop int, stored uint32) (v uint32, ok bool) {
	residue := (stored ^ c.checksum(x, hop)) & c.mask
	v, ok = c.lookup[residue]
	return v, ok
}

// EncodeChunkSparse fills out with the encoded image of a flow's
// postcards where values[i] == Blank marks hops that were not collected.
// Hop positions are preserved: a missing middle hop stays blank, so a
// query sees an invalid chunk rather than a shifted (wrong) path.
func (c *Coder) EncodeChunkSparse(x wire.Key, values *[MaxHops]uint32, out []byte) []byte {
	out = out[:0]
	for i := 0; i < c.stride; i++ {
		var s uint32
		switch {
		case i < c.cfg.Hops:
			s = c.EncodeSlot(x, i, values[i])
		default:
			s = 0 // padding slots beyond B
		}
		out = append(out, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return out
}

// EncodeChunk fills out (stride slots) with the encoded image of a flow's
// postcards: values[0:pathLen] real, the rest blank. The returned slice
// is exactly the RDMA WRITE payload the translator emits.
func (c *Coder) EncodeChunk(x wire.Key, values []uint32, pathLen int, out []byte) []byte {
	if pathLen > len(values) {
		pathLen = len(values)
	}
	if pathLen > c.cfg.Hops {
		pathLen = c.cfg.Hops
	}
	out = out[:0]
	for i := 0; i < c.stride; i++ {
		var s uint32
		switch {
		case i < pathLen:
			s = c.EncodeSlot(x, i, values[i])
		case i < c.cfg.Hops:
			s = c.EncodeSlot(x, i, Blank)
		default:
			s = 0 // padding slots beyond B
		}
		out = append(out, byte(s>>24), byte(s>>16), byte(s>>8), byte(s))
	}
	return out
}

// Store is the collector-side view of the postcarding memory.
type Store struct {
	c   *Coder
	buf []byte
}

// NewStore allocates a store with its own backing buffer.
func NewStore(cfg Config) (*Store, error) {
	c, err := NewCoder(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{c: c, buf: make([]byte, cfg.BufferSize())}, nil
}

// NewStoreOver builds a store view over an existing buffer (an RDMA
// memory region).
func NewStoreOver(cfg Config, buf []byte) (*Store, error) {
	c, err := NewCoder(cfg)
	if err != nil {
		return nil, err
	}
	if len(buf) < cfg.BufferSize() {
		return nil, errors.New("postcarding: buffer smaller than configured geometry")
	}
	return &Store{c: c, buf: buf[:cfg.BufferSize()]}, nil
}

// Coder returns the store's coder.
func (s *Store) Coder() *Coder { return s.c }

// Buffer exposes the backing memory (for registering with an RDMA device).
func (s *Store) Buffer() []byte { return s.buf }

// ChunkOffset returns the byte offset of a chunk.
func (s *Store) ChunkOffset(chunk uint64) int { return int(chunk) * s.c.cfg.ChunkBytes() }

// Write inserts a flow's postcards with redundancy n, performing locally
// what the translator performs with n chunk-sized RDMA WRITEs.
func (s *Store) Write(x wire.Key, values []uint32, pathLen, n int) error {
	if n < 1 || n > MaxRedundancy {
		return fmt.Errorf("postcarding: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	var chunk [MaxHops * SlotSize]byte
	payload := s.c.EncodeChunk(x, values, pathLen, chunk[:])
	for j := 0; j < n; j++ {
		off := s.ChunkOffset(s.c.Chunk(j, x))
		copy(s.buf[off:], payload)
	}
	return nil
}

// QueryResult carries a reconstruction outcome.
type QueryResult struct {
	// Values are the reconstructed per-hop values (length = path length).
	Values []uint32
	// Found reports whether exactly one consistent reconstruction exists.
	Found bool
	// ValidChunks is how many of the N chunks decoded consistently.
	ValidChunks int
}

// decodeChunk attempts to reconstruct a flow's values from one chunk.
// Validity requires a prefix of real values followed only by blanks.
func (s *Store) decodeChunk(x wire.Key, chunk uint64, out []uint32) ([]uint32, bool) {
	off := s.ChunkOffset(chunk)
	out = out[:0]
	seenBlank := false
	for i := 0; i < s.c.cfg.Hops; i++ {
		o := off + i*SlotSize
		stored := uint32(s.buf[o])<<24 | uint32(s.buf[o+1])<<16 |
			uint32(s.buf[o+2])<<8 | uint32(s.buf[o+3])
		v, ok := s.c.DecodeSlot(x, i, stored)
		if !ok {
			return out, false
		}
		if v == Blank {
			seenBlank = true
			continue
		}
		if seenBlank {
			// A real value after a blank: not a valid prefix.
			return out, false
		}
		out = append(out, v)
	}
	return out, true
}

// Query reconstructs flow x's postcards from its n redundant chunks. The
// answer is returned only when at least one chunk is valid and all valid
// chunks agree (§4).
func (s *Store) Query(x wire.Key, n int) (QueryResult, error) {
	if n < 1 || n > MaxRedundancy {
		return QueryResult{}, fmt.Errorf("postcarding: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	var res QueryResult
	var first [MaxHops]uint32
	var cur [MaxHops]uint32
	var winner []uint32
	for j := 0; j < n; j++ {
		vals, ok := s.decodeChunk(x, s.c.Chunk(j, x), cur[:0])
		if !ok {
			continue
		}
		if res.ValidChunks == 0 {
			winner = append(first[:0], vals...)
		} else if !equalU32(winner, vals) {
			// Valid chunks disagree: refuse to answer.
			res.ValidChunks++
			res.Found = false
			return res, nil
		}
		res.ValidChunks++
	}
	if res.ValidChunks == 0 {
		return res, nil
	}
	res.Values = winner
	res.Found = true
	return res, nil
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maskCollision returns (|V|+1)·2^−b, the per-slot masquerade chance.
func (c Config) maskCollision() float64 {
	b := c.SlotBits
	if b <= 0 || b > 32 {
		b = 32
	}
	p := float64(len(c.Values)+1) / exp2(b)
	if p > 1 {
		p = 1
	}
	return p
}

func exp2(b int) float64 {
	r := 1.0
	for i := 0; i < b; i++ {
		r *= 2
	}
	return r
}

// chunkCollision returns q = ((|V|+1)·2^−b)^B, the probability that an
// overwritten chunk masquerades as valid information for the queried flow.
func (c Config) chunkCollision() float64 {
	q := 1.0
	for i := 0; i < c.Hops; i++ {
		q *= c.maskCollision()
	}
	return q
}

// EmptyReturnBound bounds the probability that a query for a collected
// flow returns no answer (eqs. 5–7 / A.6 eqs. 9–11).
func (c Config) EmptyReturnBound(alpha float64, n int) float64 {
	return analysis.EmptyReturnBound(alpha, n, c.chunkCollision())
}

// WrongOutputBound bounds the probability that a query returns wrong
// values (eq. 8 / A.6 eq. 12).
func (c Config) WrongOutputBound(alpha float64, n int) float64 {
	return analysis.WrongOutputBound(alpha, n, c.chunkCollision())
}
