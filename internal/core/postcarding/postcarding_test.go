package postcarding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dta/internal/wire"
)

// testValues builds a value space of n "switch IDs".
func testValues(n int) []uint32 {
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(i + 1)
	}
	return vs
}

func mustStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key(v uint64) wire.Key { return wire.KeyFromUint64(v) }

func TestConfigValidation(t *testing.T) {
	vals := testValues(8)
	bad := []Config{
		{Chunks: 0, Hops: 5, Values: vals},
		{Chunks: 100, Hops: 5, Values: vals},
		{Chunks: 64, Hops: 0, Values: vals},
		{Chunks: 64, Hops: MaxHops + 1, Values: vals},
		{Chunks: 64, Hops: 5, Values: nil},
		{Chunks: 64, Hops: 5, Values: []uint32{Blank}},
		{Chunks: 64, Hops: 5, SlotBits: 33, Values: vals},
	}
	for _, c := range bad {
		if _, err := NewStore(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestChunkPadding(t *testing.T) {
	// §5.2: 5×4B chunks are padded to 32B for shift-based addressing.
	c := Config{Chunks: 64, Hops: 5, Values: testValues(4)}
	if got := c.ChunkBytes(); got != 32 {
		t.Errorf("ChunkBytes = %d, want 32", got)
	}
	c.Hops = 4
	if got := c.ChunkBytes(); got != 16 {
		t.Errorf("ChunkBytes(B=4) = %d, want 16", got)
	}
	c.Hops = 8
	if got := c.ChunkBytes(); got != 32 {
		t.Errorf("ChunkBytes(B=8) = %d, want 32", got)
	}
}

func TestWriteThenQueryFullPath(t *testing.T) {
	vals := testValues(64)
	s := mustStore(t, Config{Chunks: 1 << 10, Hops: 5, Values: vals})
	x := key(77)
	path := []uint32{3, 1, 4, 1, 5}
	for _, n := range []int{1, 2, 4} {
		if err := s.Write(x, path, 5, n); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(x, n)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || !equalU32(res.Values, path) {
			t.Errorf("N=%d: %+v", n, res)
		}
		if res.ValidChunks != n {
			t.Errorf("N=%d: valid chunks = %d", n, res.ValidChunks)
		}
	}
}

func TestShortPathBlanksTail(t *testing.T) {
	s := mustStore(t, Config{Chunks: 1 << 10, Hops: 5, Values: testValues(16)})
	x := key(5)
	path := []uint32{7, 9, 11}
	if err := s.Write(x, path, 3, 2); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query(x, 2)
	if !res.Found || !equalU32(res.Values, path) {
		t.Errorf("short path: %+v", res)
	}
}

func TestQueryUnwrittenFlow(t *testing.T) {
	s := mustStore(t, Config{Chunks: 1 << 10, Hops: 5, Values: testValues(16)})
	res, err := s.Query(key(123456), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("found values for unwritten flow: %+v", res)
	}
}

func TestValueOutsideSpaceRejectedAtQuery(t *testing.T) {
	// A value not in V cannot be reconstructed: its g-code is not in the
	// lookup table, so the chunk is invalid rather than wrong.
	s := mustStore(t, Config{Chunks: 1 << 10, Hops: 3, Values: testValues(4)})
	x := key(9)
	if err := s.Write(x, []uint32{9999, 1, 2}, 3, 1); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query(x, 1)
	if res.Found {
		t.Errorf("reconstructed out-of-space value: %+v", res)
	}
}

func TestOverwriteByAnotherFlowInvalidatesChunk(t *testing.T) {
	cfg := Config{Chunks: 1 << 6, Hops: 5, Values: testValues(256)}
	s := mustStore(t, cfg)
	x := key(1)
	s.Write(x, []uint32{1, 2, 3, 4, 5}, 5, 1)
	// Find a flow colliding with x's chunk 0 and overwrite.
	var y wire.Key
	for v := uint64(2); ; v++ {
		y = key(v)
		if s.Coder().Chunk(0, y) == s.Coder().Chunk(0, x) {
			break
		}
	}
	s.Write(y, []uint32{9, 9, 9, 9, 9}, 5, 1)
	// x's chunk now decodes against x's checksums as invalid (w.h.p.).
	res, _ := s.Query(x, 1)
	if res.Found {
		t.Errorf("overwritten chunk still answered for x: %+v", res)
	}
	// y remains queryable.
	resY, _ := s.Query(y, 1)
	if !resY.Found || resY.Values[0] != 9 {
		t.Errorf("y not queryable after write: %+v", resY)
	}
}

func TestRedundancySurvivesSingleOverwrite(t *testing.T) {
	cfg := Config{Chunks: 1 << 8, Hops: 5, Values: testValues(64)}
	s := mustStore(t, cfg)
	x := key(1)
	path := []uint32{1, 2, 3, 4, 5}
	s.Write(x, path, 5, 2)
	// Clobber chunk 0 directly with garbage.
	off := s.ChunkOffset(s.Coder().Chunk(0, x))
	for i := 0; i < cfg.ChunkBytes(); i++ {
		s.Buffer()[off+i] = byte(i*37 + 1)
	}
	res, _ := s.Query(x, 2)
	if !res.Found || !equalU32(res.Values, path) {
		t.Errorf("redundant chunk did not rescue query: %+v", res)
	}
	if res.ValidChunks != 1 {
		t.Errorf("valid chunks = %d, want 1", res.ValidChunks)
	}
}

func TestHopChecksumsDiffer(t *testing.T) {
	// Per-hop checksums must be genuinely different maps, not constant
	// offsets of each other (see Coder.checksum comment).
	c, err := NewCoder(Config{Chunks: 64, Hops: 5, Values: testValues(4)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d0 := c.checksum(key(0), i) ^ c.checksum(key(0), j)
			constant := true
			for v := uint64(1); v < 200; v++ {
				if c.checksum(key(v), i)^c.checksum(key(v), j) != d0 {
					constant = false
					break
				}
			}
			if constant {
				t.Errorf("hop checksums %d and %d affinely related", i, j)
			}
		}
	}
}

func TestEncodeDecodeSlotRoundTrip(t *testing.T) {
	c, err := NewCoder(Config{Chunks: 64, Hops: 5, Values: testValues(128)})
	if err != nil {
		t.Fatal(err)
	}
	f := func(kv uint64, hop uint8, vi uint8) bool {
		x := key(kv)
		h := int(hop % 5)
		v := uint32(vi%128) + 1
		stored := c.EncodeSlot(x, h, v)
		got, ok := c.DecodeSlot(x, h, stored)
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Blank round-trips too.
	stored := c.EncodeSlot(key(1), 2, Blank)
	if v, ok := c.DecodeSlot(key(1), 2, stored); !ok || v != Blank {
		t.Error("blank does not round-trip")
	}
}

func TestGCollisionDetectedAtBuild(t *testing.T) {
	// With b=8 and several thousand values, g must collide; the coder
	// refuses the configuration instead of silently mis-answering.
	vals := testValues(4000)
	_, err := NewCoder(Config{Chunks: 64, Hops: 5, SlotBits: 8, Values: vals})
	if err == nil {
		t.Error("g collision not detected")
	}
}

func TestPaperNumericExample(t *testing.T) {
	// §4/A.6: |V|=2^18, B=5, N=2, b=32, α=0.1 → empty-return ≤ 3.3%,
	// wrong output < 10^-22.
	cfg := Config{Chunks: 1 << 20, Hops: 5, SlotBits: 32, Values: testValues(4)}
	// The bound depends only on |V|; fake the size without building 2^18
	// values by computing from a config copy.
	cfg2 := cfg
	cfg2.Values = make([]uint32, 1<<18)
	if p := cfg2.EmptyReturnBound(0.1, 2); p > 0.033 || p < 0.02 {
		t.Errorf("empty-return bound = %v, want ≈0.033", p)
	}
	if p := cfg2.WrongOutputBound(0.1, 2); p > 1e-22 {
		t.Errorf("wrong-output bound = %v, want < 1e-22", p)
	}
}

func TestEmpiricalSuccessTracksEstimate(t *testing.T) {
	// Write a tracked flow, then α·C other flows; success rate should
	// match the shared Poisson estimate (b=32 → masquerade negligible).
	const chunks = 1 << 10
	cfg := Config{Chunks: chunks, Hops: 5, Values: testValues(512)}
	rnd := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2} {
		for _, alpha := range []float64{0.1, 0.5} {
			const trials = 100
			ok := 0
			for trial := 0; trial < trials; trial++ {
				s := mustStore(t, cfg)
				x := key(rnd.Uint64())
				path := []uint32{1, 2, 3, 4, 5}
				s.Write(x, path, 5, n)
				other := []uint32{6, 7, 8, 9, 10}
				for i := 0; i < int(alpha*chunks); i++ {
					s.Write(key(rnd.Uint64()|1<<63), other, 5, n)
				}
				res, _ := s.Query(x, n)
				if res.Found && equalU32(res.Values, path) {
					ok++
				}
			}
			got := float64(ok) / trials
			want := 1 - math.Pow(1-math.Exp(-alpha*float64(n)), float64(n))
			if math.Abs(got-want) > 0.13 {
				t.Errorf("N=%d α=%.1f: empirical %.2f vs estimate %.2f", n, alpha, got, want)
			}
		}
	}
}

func TestCacheValidation(t *testing.T) {
	if _, err := NewCache(100, 5); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
	if _, err := NewCache(64, 0); err == nil {
		t.Error("zero hops accepted")
	}
	if _, err := NewCache(64, MaxHops+1); err == nil {
		t.Error("excess hops accepted")
	}
}

func TestCacheAggregatesFullPath(t *testing.T) {
	c, _ := NewCache(1<<10, 5)
	x := key(42)
	var emits []Emit
	for hop := 0; hop < 5; hop++ {
		p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: uint32(100 + hop)}
		emits = append(emits, c.Insert(&p)...)
	}
	if len(emits) != 1 {
		t.Fatalf("emits = %d, want 1", len(emits))
	}
	e := emits[0]
	if e.Partial || e.PathLen != 5 || e.Key != x {
		t.Errorf("emit = %+v", e)
	}
	for hop := 0; hop < 5; hop++ {
		if e.Values[hop] != uint32(100+hop) {
			t.Errorf("hop %d = %d", hop, e.Values[hop])
		}
	}
	if c.Stats.FullEmits != 1 || c.Stats.EarlyEmits != 0 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Occupancy() != 0 {
		t.Error("row not cleared after emit")
	}
}

func TestCacheShortPathEmitsEarly(t *testing.T) {
	// PathLen=3 triggers emission after 3 postcards (§4: egress switches
	// annotate path length so short paths don't wait for B).
	c, _ := NewCache(1<<10, 5)
	x := key(1)
	var emits []Emit
	for hop := 0; hop < 3; hop++ {
		p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 3, Value: 7}
		emits = append(emits, c.Insert(&p)...)
	}
	if len(emits) != 1 || emits[0].Partial || emits[0].PathLen != 3 {
		t.Fatalf("emits = %+v", emits)
	}
}

func TestCacheCollisionEvictsIncumbent(t *testing.T) {
	c, _ := NewCache(2, 5) // tiny cache: collisions guaranteed
	// Insert hops for many flows; every eviction must carry the evicted
	// flow's partial data.
	inserted := 0
	var early int
	for v := uint64(0); v < 64; v++ {
		p := wire.Postcard{Key: key(v), Hop: 0, PathLen: 5, Value: uint32(v)}
		emits := c.Insert(&p)
		inserted++
		for _, e := range emits {
			if !e.Partial {
				t.Errorf("collision emit not partial: %+v", e)
			}
			if e.PathLen != 1 {
				t.Errorf("partial emit pathlen = %d, want 1", e.PathLen)
			}
		}
		early += len(emits)
	}
	if early == 0 {
		t.Error("no early emissions despite tiny cache")
	}
	if c.Stats.EarlyEmits != uint64(early) {
		t.Errorf("stats.EarlyEmits = %d, want %d", c.Stats.EarlyEmits, early)
	}
}

func TestCacheDuplicatePostcard(t *testing.T) {
	c, _ := NewCache(64, 5)
	x := key(1)
	p := wire.Postcard{Key: x, Hop: 2, PathLen: 5, Value: 9}
	c.Insert(&p)
	c.Insert(&p)
	if c.Stats.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", c.Stats.Duplicates)
	}
}

func TestCacheDrain(t *testing.T) {
	c, _ := NewCache(64, 5)
	c.Insert(&wire.Postcard{Key: key(1), Hop: 0, PathLen: 5, Value: 1})
	c.Insert(&wire.Postcard{Key: key(2), Hop: 0, PathLen: 1, Value: 2})
	// key(2) emitted immediately (pathLen 1); key(1) still cached.
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d, want 1", c.Occupancy())
	}
	drained := c.Drain()
	if len(drained) != 1 || !drained[0].Partial || drained[0].Key != key(1) {
		t.Errorf("drained = %+v", drained)
	}
	if c.Occupancy() != 0 {
		t.Error("cache not empty after drain")
	}
}

func TestCacheEndToEndWithStore(t *testing.T) {
	// Postcards scattered across flows aggregate in the cache and land in
	// the store; full emits must be queryable.
	cfg := Config{Chunks: 1 << 10, Hops: 5, Values: testValues(256)}
	s := mustStore(t, cfg)
	c, _ := NewCache(1<<12, 5)
	rnd := rand.New(rand.NewSource(11))
	flows := make([]wire.Key, 50)
	for i := range flows {
		flows[i] = key(rnd.Uint64())
	}
	apply := func(e Emit) {
		vals := make([]uint32, 0, 5)
		for i := 0; i < 5; i++ {
			if e.Values[i] != Blank {
				vals = append(vals, e.Values[i])
			}
		}
		s.Write(e.Key, vals, len(vals), 2)
	}
	// Interleave hops of all flows.
	for hop := 0; hop < 5; hop++ {
		for fi, x := range flows {
			p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: uint32(fi%255 + 1)}
			for _, e := range c.Insert(&p) {
				apply(e)
			}
		}
	}
	for _, e := range c.Drain() {
		apply(e)
	}
	okCount := 0
	for fi, x := range flows {
		res, _ := s.Query(x, 2)
		if res.Found && len(res.Values) == 5 && res.Values[0] == uint32(fi%255+1) {
			okCount++
		}
	}
	if okCount < 45 { // a few may be overwritten by colliding flows
		t.Errorf("only %d/50 flows queryable end-to-end", okCount)
	}
}

func BenchmarkCacheInsert(b *testing.B) {
	c, _ := NewCache(1<<15, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := wire.Postcard{Key: key(uint64(i % 4096)), Hop: uint8(i % 5), PathLen: 5, Value: uint32(i)}
		c.Insert(&p)
	}
}

func BenchmarkStoreWrite(b *testing.B) {
	s, _ := NewStore(Config{Chunks: 1 << 16, Hops: 5, Values: testValues(1024)})
	path := []uint32{1, 2, 3, 4, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Write(key(uint64(i)), path, 5, 1)
	}
}

func BenchmarkStoreQuery(b *testing.B) {
	s, _ := NewStore(Config{Chunks: 1 << 16, Hops: 5, Values: testValues(1024)})
	path := []uint32{1, 2, 3, 4, 5}
	for i := 0; i < 1<<14; i++ {
		s.Write(key(uint64(i)), path, 5, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(key(uint64(i%(1<<14))), 2)
	}
}
