package postcarding

import (
	"fmt"

	"dta/internal/crc"
	"dta/internal/wire"
)

// Cache is the translator-side postcard aggregator (§5.2): an SRAM hash
// table keyed by flow ID in which per-hop postcards accumulate until a
// full path report can be emitted as one chunk-sized RDMA WRITE.
//
// Emissions trigger in three ways, mirroring the Tofino implementation:
// the row's postcard counter reaches the flow's path length; the row's
// counter reaches the bound B; or another flow hashes into an occupied
// row, which flushes the incumbent early (a partial report — Fig. 14
// counts those as failures).
type Cache struct {
	rows   []cacheRow
	hops   int
	idxEng *crc.Engine
	mask   uint64
	// Stats tracks aggregation effectiveness for Fig. 14.
	Stats CacheStats
}

type cacheRow struct {
	key      wire.Key
	occupied bool
	count    uint8
	pathLen  uint8
	present  uint8 // bitmask of collected hops
	values   [MaxHops]uint32
}

// CacheStats counts aggregation outcomes.
type CacheStats struct {
	// Postcards is the number of postcards inserted.
	Postcards uint64
	// FullEmits is the number of complete path reports emitted.
	FullEmits uint64
	// EarlyEmits is the number of partial reports flushed by collisions.
	EarlyEmits uint64
	// Duplicates is the number of postcards for an already-present hop.
	Duplicates uint64
}

// Emit is an aggregated flow report ready to be written to the collector.
type Emit struct {
	Key     wire.Key
	Values  [MaxHops]uint32 // Blank where the hop was not collected
	PathLen int             // hops carrying real values (counted ones)
	Partial bool            // true for collision-triggered early emissions
}

// NewCache builds a cache with the given number of rows (a power of two;
// the paper's prototype uses 32K) aggregating up to hops postcards.
func NewCache(rows int, hops int) (*Cache, error) {
	if rows <= 0 || rows&(rows-1) != 0 {
		return nil, fmt.Errorf("postcarding: cache rows %d not a power of two", rows)
	}
	if hops < 1 || hops > MaxHops {
		return nil, fmt.Errorf("postcarding: hops %d out of range [1,%d]", hops, MaxHops)
	}
	return &Cache{
		rows:   make([]cacheRow, rows),
		hops:   hops,
		idxEng: crc.New(crc.Q),
		mask:   uint64(rows - 1),
	}, nil
}

// rowIndex hashes a flow to its cache row.
func (c *Cache) rowIndex(x wire.Key) uint64 {
	return uint64(c.idxEng.Sum128((*[wire.KeySize]byte)(&x))) & c.mask
}

// flush converts a row into an Emit, blanking uncollected hops.
func (c *Cache) flush(r *cacheRow, partial bool) Emit {
	e := Emit{Key: r.key, Partial: partial}
	for i := 0; i < c.hops; i++ {
		if r.present&(1<<uint(i)) != 0 {
			e.Values[i] = r.values[i]
			e.PathLen++
		} else {
			e.Values[i] = Blank
		}
	}
	for i := c.hops; i < MaxHops; i++ {
		e.Values[i] = Blank
	}
	*r = cacheRow{}
	return e
}

// Insert adds one postcard. If the insertion completes a path (or evicts
// an incumbent flow), the emitted report is returned.
//
// pathLen may be zero when the egress switch did not annotate the path
// length; the cache then waits for the full bound B.
func (c *Cache) Insert(p *wire.Postcard) (emits []Emit) {
	c.Stats.Postcards++
	hop := int(p.Hop)
	if hop >= c.hops {
		hop = c.hops - 1
	}
	r := &c.rows[c.rowIndex(p.Key)]
	if r.occupied && r.key != p.Key {
		// Collision: flush the incumbent early.
		c.Stats.EarlyEmits++
		emits = append(emits, c.flush(r, true))
	}
	if !r.occupied {
		r.occupied = true
		r.key = p.Key
	}
	if r.present&(1<<uint(hop)) != 0 {
		c.Stats.Duplicates++
	} else {
		r.present |= 1 << uint(hop)
		r.count++
	}
	r.values[hop] = p.Value
	if p.PathLen != 0 && (r.pathLen == 0 || p.PathLen < r.pathLen) {
		r.pathLen = p.PathLen
	}
	target := uint8(c.hops)
	if r.pathLen != 0 && r.pathLen < target {
		target = r.pathLen
	}
	if r.count >= target {
		c.Stats.FullEmits++
		emits = append(emits, c.flush(r, false))
	}
	return emits
}

// Drain flushes every occupied row (e.g. at shutdown or epoch end). All
// drained reports are marked partial unless they happen to be complete.
func (c *Cache) Drain() []Emit {
	var out []Emit
	for i := range c.rows {
		r := &c.rows[i]
		if !r.occupied {
			continue
		}
		complete := r.count >= uint8(c.hops) || (r.pathLen != 0 && r.count >= r.pathLen)
		out = append(out, c.flush(r, !complete))
	}
	return out
}

// Occupancy returns the number of occupied rows.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.rows {
		if c.rows[i].occupied {
			n++
		}
	}
	return n
}
