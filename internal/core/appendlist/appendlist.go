// Package appendlist implements DTA's Append primitive: per-category
// telemetry event lists that reporters append to and the collector CPU
// polls, with all inserts arriving as RDMA WRITEs batched by the
// translator.
//
// Lists are ring buffers in collector memory. The translator keeps the
// per-list head pointer (Algorithm 3) and stashes B−1 incoming entries in
// SRAM; every B'th entry flushes the batch as a single chunk-sized WRITE,
// which is how Append reaches a billion reports per second (Fig. 15) and
// 0.06 memory instructions per report (Fig. 8). The collector reads with
// a tail pointer and a wrap-around (Algorithm 4, Fig. 16).
package appendlist

import (
	"errors"
	"fmt"
)

// MaxLists bounds the number of simultaneous lists. The paper's prototype
// tracks up to 131K lists (§5.2).
const MaxLists = 131072

// MaxBatch bounds the translator batch size (the prototype uses 16).
const MaxBatch = 64

// Config describes the Append store geometry.
type Config struct {
	// Lists is the number of independent event lists.
	Lists int
	// EntriesPerList is the ring capacity of each list. Must be a
	// multiple of the batch size so batched writes never wrap mid-batch
	// (the paper sizes lists in whole batches for the same reason).
	EntriesPerList int
	// EntrySize is the fixed entry width in bytes (4 for queue-depth
	// events, 18 for NetSeer loss events, ...).
	EntrySize int
}

func (c *Config) validate() error {
	if c.Lists < 1 || c.Lists > MaxLists {
		return fmt.Errorf("appendlist: lists %d out of range [1,%d]", c.Lists, MaxLists)
	}
	if c.EntriesPerList < 1 {
		return fmt.Errorf("appendlist: %d entries per list", c.EntriesPerList)
	}
	if c.EntrySize < 1 {
		return fmt.Errorf("appendlist: entry size %d", c.EntrySize)
	}
	return nil
}

// ListBytes is the per-list buffer size.
func (c Config) ListBytes() int { return c.EntriesPerList * c.EntrySize }

// BufferSize returns the total memory required.
func (c Config) BufferSize() int { return c.Lists * c.ListBytes() }

// Store is the collector-side view of the Append memory.
type Store struct {
	cfg Config
	buf []byte
}

// NewStore allocates a store with its own backing buffer.
func NewStore(cfg Config) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Store{cfg: cfg, buf: make([]byte, cfg.BufferSize())}, nil
}

// NewStoreOver builds a store view over an existing buffer.
func NewStoreOver(cfg Config, buf []byte) (*Store, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(buf) < cfg.BufferSize() {
		return nil, errors.New("appendlist: buffer smaller than configured geometry")
	}
	return &Store{cfg: cfg, buf: buf[:cfg.BufferSize()]}, nil
}

// Config returns the store geometry.
func (s *Store) Config() Config { return s.cfg }

// Buffer exposes the backing memory (for registering with an RDMA device).
func (s *Store) Buffer() []byte { return s.buf }

// EntryOffset returns the byte offset of entry idx of list l.
func (s *Store) EntryOffset(l, idx int) int {
	return l*s.cfg.ListBytes() + idx*s.cfg.EntrySize
}

// writeAt applies a raw batch image at an entry offset, as the DMA engine
// would.
func (s *Store) writeAt(l, idx int, data []byte) {
	copy(s.buf[s.EntryOffset(l, idx):], data)
}

// Entry returns a view of entry idx of list l.
func (s *Store) Entry(l, idx int) []byte {
	off := s.EntryOffset(l, idx)
	return s.buf[off : off+s.cfg.EntrySize]
}

// Batcher is the translator-side state: per-list head pointers and the
// SRAM stash of pending entries (Algorithm 3). One Batcher serves all
// lists, as one translator pipeline does.
type Batcher struct {
	cfg   Config
	batch int
	heads []int // next write index per list, in entries
	// written counts entries flushed to the collector per list,
	// cumulatively (never wrapping): heads[l] == written[l] %
	// EntriesPerList. Replica resync compares cumulative counts to
	// decide how much of a peer's ring a rejoining collector missed.
	written []uint64
	stash   [][]byte
	fill    []int
	// Stats tracks batching effectiveness.
	Stats BatcherStats
}

// BatcherStats counts batcher activity.
type BatcherStats struct {
	Entries uint64
	Flushes uint64
}

// Flush is a batch ready to be written to the collector: Data spans
// Entries consecutive entries starting at entry Index of list List.
//
// Data aliases the batcher's stash for the list and is valid only until
// the next Append to the same list: consume it (serialize the RDMA WRITE
// or Apply it to a store) before appending again, as the translator
// pipeline does.
type Flush struct {
	List    int
	Index   int
	Entries int
	Data    []byte
}

// NewBatcher creates a Batcher with the given batch size (1 = no
// batching).
func NewBatcher(cfg Config, batch int) (*Batcher, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if batch < 1 || batch > MaxBatch {
		return nil, fmt.Errorf("appendlist: batch %d out of range [1,%d]", batch, MaxBatch)
	}
	if cfg.EntriesPerList%batch != 0 {
		return nil, fmt.Errorf("appendlist: ring of %d entries not a multiple of batch %d", cfg.EntriesPerList, batch)
	}
	b := &Batcher{
		cfg:     cfg,
		batch:   batch,
		heads:   make([]int, cfg.Lists),
		written: make([]uint64, cfg.Lists),
		stash:   make([][]byte, cfg.Lists),
		fill:    make([]int, cfg.Lists),
	}
	return b, nil
}

// Batch returns the configured batch size.
func (b *Batcher) Batch() int { return b.batch }

// Head returns the translator's head pointer for list l, in entries.
func (b *Batcher) Head(l int) int { return b.heads[l] }

// Written returns the cumulative (non-wrapping) number of entries
// flushed to the collector for list l. Stashed-but-unflushed entries are
// not counted: they are not in collector memory yet.
func (b *Batcher) Written(l int) uint64 { return b.written[l] }

// WrittenCounts appends a copy of every list's cumulative flushed-entry
// count to out (pass nil to allocate). Snapshot capture records these
// next to the ring buffers so resync can replay exactly the missed
// suffix.
func (b *Batcher) WrittenCounts(out []uint64) []uint64 {
	return append(out, b.written...)
}

// SyncList force-sets list l's cumulative count (and therefore its head
// pointer) after a resync copied a peer's ring suffix into the local
// collector. It refuses to run over stashed entries: callers must flush
// before resyncing, or the stash would be appended at a head it was not
// staged for.
func (b *Batcher) SyncList(l int, written uint64) error {
	if l < 0 || l >= b.cfg.Lists {
		return fmt.Errorf("appendlist: list %d out of range [0,%d)", l, b.cfg.Lists)
	}
	if b.fill[l] != 0 {
		return fmt.Errorf("appendlist: list %d has %d unflushed entries", l, b.fill[l])
	}
	b.written[l] = written
	b.heads[l] = int(written % uint64(b.cfg.EntriesPerList))
	return nil
}

// Append adds one entry to list l. When the entry completes a batch, the
// returned Flush describes the single RDMA WRITE to issue; otherwise the
// entry is stashed and the returned flush is nil. Entries shorter than
// EntrySize are zero-padded; longer ones are truncated.
func (b *Batcher) Append(l int, entry []byte) (*Flush, error) {
	if l < 0 || l >= b.cfg.Lists {
		return nil, fmt.Errorf("appendlist: list %d out of range [0,%d)", l, b.cfg.Lists)
	}
	b.Stats.Entries++
	if b.stash[l] == nil {
		b.stash[l] = make([]byte, b.batch*b.cfg.EntrySize)
	}
	off := b.fill[l] * b.cfg.EntrySize
	dst := b.stash[l][off : off+b.cfg.EntrySize]
	n := copy(dst, entry)
	for i := n; i < b.cfg.EntrySize; i++ {
		dst[i] = 0
	}
	b.fill[l]++
	if b.fill[l] < b.batch {
		return nil, nil
	}
	f := &Flush{
		List:    l,
		Index:   b.heads[l],
		Entries: b.batch,
		Data:    b.stash[l],
	}
	b.heads[l] = (b.heads[l] + b.batch) % b.cfg.EntriesPerList
	b.written[l] += uint64(b.batch)
	b.fill[l] = 0
	b.Stats.Flushes++
	return f, nil
}

// Pending returns the number of stashed (unflushed) entries for list l.
func (b *Batcher) Pending(l int) int { return b.fill[l] }

// FlushPartial forces out a partial batch for list l (e.g. at epoch end).
// It returns nil when nothing is pending. The flush covers only the
// pending entries.
func (b *Batcher) FlushPartial(l int) *Flush {
	if l < 0 || l >= b.cfg.Lists || b.fill[l] == 0 {
		return nil
	}
	n := b.fill[l]
	f := &Flush{
		List:    l,
		Index:   b.heads[l],
		Entries: n,
		Data:    b.stash[l][:n*b.cfg.EntrySize],
	}
	b.heads[l] = (b.heads[l] + n) % b.cfg.EntriesPerList
	b.written[l] += uint64(n)
	b.fill[l] = 0
	b.Stats.Flushes++
	return f
}

// Apply writes a flush directly into a store, bypassing the RDMA path
// (simulation and tests). The store layout guarantees a batch never
// wraps, because rings are whole multiples of the batch size — except
// after partial flushes, which may force a wrap split.
func (s *Store) Apply(f *Flush) {
	end := f.Index + f.Entries
	if end <= s.cfg.EntriesPerList {
		s.writeAt(f.List, f.Index, f.Data)
		return
	}
	firstPart := (s.cfg.EntriesPerList - f.Index) * s.cfg.EntrySize
	s.writeAt(f.List, f.Index, f.Data[:firstPart])
	s.writeAt(f.List, 0, f.Data[firstPart:])
}

// Poller is the collector-side reader of one list: a tail pointer chased
// around the ring (Algorithm 4). The paper allocates one list per polling
// core to avoid contention at the tail pointer; Poller is accordingly not
// safe for concurrent use.
type Poller struct {
	s    *Store
	list int
	tail int
}

// NewPoller creates a poller for list l.
func (s *Store) NewPoller(l int) (*Poller, error) {
	if l < 0 || l >= s.cfg.Lists {
		return nil, fmt.Errorf("appendlist: list %d out of range [0,%d)", l, s.cfg.Lists)
	}
	return &Poller{s: s, list: l}, nil
}

// Tail returns the poller's current position, in entries.
func (p *Poller) Tail() int { return p.tail }

// Poll returns a view of the entry at the tail and advances it, wrapping
// at the ring end. Like the paper's collector, Poll performs no validity
// check — pacing against the producer is the caller's concern (the
// evaluation shows 8 cores drain the maximum collection rate, §6.7.1).
func (p *Poller) Poll() []byte {
	e := p.s.Entry(p.list, p.tail)
	p.tail++
	if p.tail == p.s.cfg.EntriesPerList {
		p.tail = 0
	}
	return e
}
