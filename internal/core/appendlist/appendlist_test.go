package appendlist

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Lists: 0, EntriesPerList: 16, EntrySize: 4},
		{Lists: MaxLists + 1, EntriesPerList: 16, EntrySize: 4},
		{Lists: 1, EntriesPerList: 0, EntrySize: 4},
		{Lists: 1, EntriesPerList: 16, EntrySize: 0},
	}
	for _, c := range bad {
		if _, err := NewStore(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestBatcherValidation(t *testing.T) {
	cfg := Config{Lists: 2, EntriesPerList: 16, EntrySize: 4}
	if _, err := NewBatcher(cfg, 0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := NewBatcher(cfg, MaxBatch+1); err == nil {
		t.Error("oversized batch accepted")
	}
	if _, err := NewBatcher(cfg, 5); err == nil {
		t.Error("non-divisor batch accepted")
	}
}

func TestAppendFlushEveryBatch(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 64, EntrySize: 4}
	b, err := NewBatcher(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Flush.Data aliases the stash, so each flush is verified at the
	// moment it is produced, exactly as the translator consumes it.
	nf := 0
	for i := 0; i < 12; i++ {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(i))
		f, err := b.Append(0, e[:])
		if err != nil {
			t.Fatal(err)
		}
		if f == nil {
			continue
		}
		if f.Index != nf*4 || f.Entries != 4 {
			t.Errorf("flush %d: %+v", nf, f)
		}
		for j := 0; j < 4; j++ {
			got := binary.BigEndian.Uint32(f.Data[j*4:])
			if got != uint32(nf*4+j) {
				t.Errorf("flush %d entry %d = %d", nf, j, got)
			}
		}
		nf++
	}
	if nf != 3 {
		t.Fatalf("flushes = %d, want 3", nf)
	}
	if b.Stats.Entries != 12 || b.Stats.Flushes != 3 {
		t.Errorf("stats = %+v", b.Stats)
	}
}

func TestAppendNoBatching(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 8, EntrySize: 4}
	b, _ := NewBatcher(cfg, 1)
	f, err := b.Append(0, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil || f.Entries != 1 {
		t.Fatalf("batch=1 did not flush immediately: %+v", f)
	}
}

func TestHeadWrapsAround(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 8, EntrySize: 4}
	b, _ := NewBatcher(cfg, 4)
	for i := 0; i < 8; i++ {
		b.Append(0, []byte{byte(i)})
	}
	if b.Head(0) != 0 {
		t.Errorf("head after full ring = %d, want 0 (wrapped)", b.Head(0))
	}
}

func TestApplyAndPoll(t *testing.T) {
	cfg := Config{Lists: 2, EntriesPerList: 16, EntrySize: 4}
	s, _ := NewStore(cfg)
	b, _ := NewBatcher(cfg, 4)
	for i := 0; i < 8; i++ {
		var e [4]byte
		binary.BigEndian.PutUint32(e[:], uint32(100+i))
		if f, _ := b.Append(1, e[:]); f != nil {
			s.Apply(f)
		}
	}
	p, err := s.NewPoller(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got := binary.BigEndian.Uint32(p.Poll())
		if got != uint32(100+i) {
			t.Errorf("poll %d = %d, want %d", i, got, 100+i)
		}
	}
	if p.Tail() != 8 {
		t.Errorf("tail = %d", p.Tail())
	}
	// List 0 untouched.
	p0, _ := s.NewPoller(0)
	if v := binary.BigEndian.Uint32(p0.Poll()); v != 0 {
		t.Errorf("list 0 contaminated: %d", v)
	}
}

func TestPollerWrapsAround(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 4, EntrySize: 1}
	s, _ := NewStore(cfg)
	p, _ := s.NewPoller(0)
	for i := 0; i < 9; i++ {
		p.Poll()
	}
	if p.Tail() != 1 {
		t.Errorf("tail after 9 polls of 4-ring = %d, want 1", p.Tail())
	}
}

func TestShortEntryZeroPadded(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 4, EntrySize: 8}
	s, _ := NewStore(cfg)
	b, _ := NewBatcher(cfg, 1)
	// Fill underlying memory with garbage first.
	for i := range s.Buffer() {
		s.Buffer()[i] = 0xee
	}
	f, _ := b.Append(0, []byte{0xaa, 0xbb})
	s.Apply(f)
	want := []byte{0xaa, 0xbb, 0, 0, 0, 0, 0, 0}
	if got := s.Entry(0, 0); !bytes.Equal(got, want) {
		t.Errorf("entry = %v, want %v", got, want)
	}
}

func TestFlushPartial(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 16, EntrySize: 4}
	s, _ := NewStore(cfg)
	b, _ := NewBatcher(cfg, 8)
	for i := 0; i < 3; i++ {
		b.Append(0, []byte{byte(i + 1)})
	}
	if b.Pending(0) != 3 {
		t.Fatalf("pending = %d", b.Pending(0))
	}
	f := b.FlushPartial(0)
	if f == nil || f.Entries != 3 || f.Index != 0 {
		t.Fatalf("partial flush = %+v", f)
	}
	s.Apply(f)
	if b.Head(0) != 3 {
		t.Errorf("head = %d, want 3", b.Head(0))
	}
	if b.FlushPartial(0) != nil {
		t.Error("second partial flush not nil")
	}
	if s.Entry(0, 2)[0] != 3 {
		t.Error("partial data not applied")
	}
}

func TestApplyWrapSplitAfterPartialFlush(t *testing.T) {
	// A partial flush desynchronises heads from batch boundaries; a later
	// full batch may straddle the ring end and must split correctly.
	cfg := Config{Lists: 1, EntriesPerList: 8, EntrySize: 1}
	s, _ := NewStore(cfg)
	b, _ := NewBatcher(cfg, 4)
	b.Append(0, []byte{1})
	s.Apply(b.FlushPartial(0)) // head = 1
	// Next full batch lands at 1..4, then 5..8 → wraps at 8.
	for i := 0; i < 4; i++ {
		if f, _ := b.Append(0, []byte{byte(10 + i)}); f != nil {
			s.Apply(f)
		}
	}
	for i := 0; i < 4; i++ {
		if f, _ := b.Append(0, []byte{byte(20 + i)}); f != nil {
			s.Apply(f)
		}
	}
	// Entries 5,6,7 then wrap to 0.
	if s.Entry(0, 5)[0] != 20 || s.Entry(0, 7)[0] != 22 {
		t.Errorf("pre-wrap entries: %v", s.Buffer())
	}
	if s.Entry(0, 0)[0] != 23 {
		t.Errorf("wrapped entry = %d, want 23", s.Entry(0, 0)[0])
	}
}

func TestAppendBadList(t *testing.T) {
	cfg := Config{Lists: 2, EntriesPerList: 16, EntrySize: 4}
	b, _ := NewBatcher(cfg, 4)
	if _, err := b.Append(2, []byte{1}); err == nil {
		t.Error("out-of-range list accepted")
	}
	if _, err := b.Append(-1, []byte{1}); err == nil {
		t.Error("negative list accepted")
	}
	s, _ := NewStore(cfg)
	if _, err := s.NewPoller(9); err == nil {
		t.Error("out-of-range poller accepted")
	}
}

func TestManyListsIndependent(t *testing.T) {
	cfg := Config{Lists: 128, EntriesPerList: 8, EntrySize: 4}
	s, _ := NewStore(cfg)
	b, _ := NewBatcher(cfg, 2)
	for l := 0; l < 128; l++ {
		for i := 0; i < 2; i++ {
			var e [4]byte
			binary.BigEndian.PutUint32(e[:], uint32(l*10+i))
			if f, _ := b.Append(l, e[:]); f != nil {
				s.Apply(f)
			}
		}
	}
	for l := 0; l < 128; l++ {
		p, _ := s.NewPoller(l)
		if got := binary.BigEndian.Uint32(p.Poll()); got != uint32(l*10) {
			t.Fatalf("list %d first entry = %d", l, got)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	cfg := Config{Lists: 4, EntriesPerList: 64, EntrySize: 8}
	f := func(list uint8, vals []uint64) bool {
		s, _ := NewStore(cfg)
		b, _ := NewBatcher(cfg, 4)
		l := int(list % 4)
		if len(vals) > 64 {
			vals = vals[:64]
		}
		for _, v := range vals {
			var e [8]byte
			binary.BigEndian.PutUint64(e[:], v)
			if fl, err := b.Append(l, e[:]); err != nil {
				return false
			} else if fl != nil {
				s.Apply(fl)
			}
		}
		if fl := b.FlushPartial(l); fl != nil {
			s.Apply(fl)
		}
		p, _ := s.NewPoller(l)
		for _, v := range vals {
			if binary.BigEndian.Uint64(p.Poll()) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppendBatch16(b *testing.B) {
	cfg := Config{Lists: 8, EntriesPerList: 1 << 16, EntrySize: 4}
	s, _ := NewStore(cfg)
	bt, _ := NewBatcher(cfg, 16)
	e := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if f, _ := bt.Append(i&7, e); f != nil {
			s.Apply(f)
		}
	}
}

func BenchmarkPoll(b *testing.B) {
	cfg := Config{Lists: 1, EntriesPerList: 1 << 16, EntrySize: 4}
	s, _ := NewStore(cfg)
	p, _ := s.NewPoller(0)
	b.ReportAllocs()
	var sink byte
	for i := 0; i < b.N; i++ {
		sink += p.Poll()[0]
	}
	_ = sink
}

func TestWrittenTracksFlushedEntries(t *testing.T) {
	cfg := Config{Lists: 2, EntriesPerList: 16, EntrySize: 4}
	bt, err := NewBatcher(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := []byte{1, 2, 3, 4}
	for i := 0; i < 6; i++ { // one full batch + 2 stashed
		if _, err := bt.Append(0, e); err != nil {
			t.Fatal(err)
		}
	}
	// Stashed entries are not in collector memory, so not counted.
	if got := bt.Written(0); got != 4 {
		t.Errorf("written = %d after 6 appends (batch 4), want 4", got)
	}
	if bt.FlushPartial(0) == nil {
		t.Fatal("no partial flush for 2 stashed entries")
	}
	if got := bt.Written(0); got != 6 {
		t.Errorf("written = %d after partial flush, want 6", got)
	}
	// Cumulative: wraps in the ring never reset the count.
	for i := 0; i < 32; i++ {
		if _, err := bt.Append(0, e); err != nil {
			t.Fatal(err)
		}
	}
	if got, head := bt.Written(0), bt.Head(0); got != 38 || head != int(got%16) {
		t.Errorf("written = %d head = %d, want 38 and %d", got, head, got%16)
	}
	counts := bt.WrittenCounts(nil)
	if len(counts) != 2 || counts[0] != 38 || counts[1] != 0 {
		t.Errorf("WrittenCounts = %v", counts)
	}
}

func TestSyncList(t *testing.T) {
	cfg := Config{Lists: 1, EntriesPerList: 16, EntrySize: 4}
	bt, err := NewBatcher(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.SyncList(0, 37); err != nil {
		t.Fatal(err)
	}
	if bt.Written(0) != 37 || bt.Head(0) != 5 {
		t.Errorf("after sync: written=%d head=%d, want 37/5", bt.Written(0), bt.Head(0))
	}
	if err := bt.SyncList(1, 0); err == nil {
		t.Error("out-of-range list accepted")
	}
	// Stashed entries block a sync: the stash was staged for another head.
	if _, err := bt.Append(0, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := bt.SyncList(0, 40); err == nil {
		t.Error("sync over stashed entries accepted")
	}
}
