// Package keyincrement implements DTA's Key-Increment primitive:
// addition-based aggregation of counters delivered at RDMA rates.
//
// Unlike Key-Write, which sets a key's value, Key-Increment adds to it.
// The collector memory acts as a Count-Min Sketch [Cormode & Muthu]:
// each report increments N hashed counters with RDMA FETCH&ADD, and a
// query returns the minimum of the N locations (Algorithms 5 and 6).
// Hash collisions can only inflate counters, so the minimum
// overestimates with exactly the Count-Min guarantees: with M slots and
// total increment volume S, the error exceeds (e/M')·S with probability
// at most e^−N, where M' = M/N per conceptual row.
package keyincrement

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dta/internal/crc"
	"dta/internal/wire"
)

// MaxRedundancy is the largest supported N.
const MaxRedundancy = 8

// CounterSize is the width of one counter: RDMA FETCH&ADD operates on
// 64-bit words.
const CounterSize = 8

// Config describes a Key-Increment store.
type Config struct {
	// Slots is the number of counters. Must be a power of two.
	Slots uint64
}

func (c *Config) validate() error {
	if c.Slots == 0 || c.Slots&(c.Slots-1) != 0 {
		return fmt.Errorf("keyincrement: slots %d not a power of two", c.Slots)
	}
	return nil
}

// BufferSize returns the memory required for the store.
func (c Config) BufferSize() int { return int(c.Slots) * CounterSize }

// Indexer computes the N counter locations for a key, using the same
// distinct-polynomial hash family as Key-Write.
type Indexer struct {
	cfg   Config
	slots *crc.Family
	mask  uint64
}

// NewIndexer builds an Indexer.
func NewIndexer(cfg Config) (*Indexer, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Indexer{cfg: cfg, slots: crc.MustFamily(MaxRedundancy), mask: cfg.Slots - 1}, nil
}

// Slot computes the n'th counter location for key.
func (x *Indexer) Slot(n int, key wire.Key) uint64 {
	return uint64(x.slots.Hash16(n, (*[wire.KeySize]byte)(&key))) & x.mask
}

// Offset converts a slot index to a byte offset.
func (x *Indexer) Offset(slot uint64) int { return int(slot) * CounterSize }

// Store is the collector-side view of the counter memory.
type Store struct {
	x   *Indexer
	buf []byte
}

// NewStore allocates a store with its own backing buffer.
func NewStore(cfg Config) (*Store, error) {
	x, err := NewIndexer(cfg)
	if err != nil {
		return nil, err
	}
	return &Store{x: x, buf: make([]byte, cfg.BufferSize())}, nil
}

// NewStoreOver builds a store view over an existing buffer.
func NewStoreOver(cfg Config, buf []byte) (*Store, error) {
	x, err := NewIndexer(cfg)
	if err != nil {
		return nil, err
	}
	if len(buf) < cfg.BufferSize() {
		return nil, errors.New("keyincrement: buffer smaller than configured geometry")
	}
	return &Store{x: x, buf: buf[:cfg.BufferSize()]}, nil
}

// Indexer returns the store's indexer.
func (s *Store) Indexer() *Indexer { return s.x }

// Buffer exposes the backing memory.
func (s *Store) Buffer() []byte { return s.buf }

func (s *Store) counter(slot uint64) uint64 {
	off := s.x.Offset(slot)
	return binary.BigEndian.Uint64(s.buf[off : off+CounterSize])
}

func (s *Store) addCounter(slot uint64, delta uint64) {
	off := s.x.Offset(slot)
	v := binary.BigEndian.Uint64(s.buf[off : off+CounterSize])
	binary.BigEndian.PutUint64(s.buf[off:off+CounterSize], v+delta)
}

// Increment adds delta to key's N counters, performing locally what the
// translator performs with N FETCH&ADDs (Algorithm 5).
func (s *Store) Increment(key wire.Key, delta uint64, n int) error {
	if n < 1 || n > MaxRedundancy {
		return fmt.Errorf("keyincrement: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	for i := 0; i < n; i++ {
		s.addCounter(s.x.Slot(i, key), delta)
	}
	return nil
}

// Raise lifts each of key's N counters to at least value, leaving
// larger counters untouched. It is the count-min read-repair primitive:
// a replica that missed increments while down can have its counters
// restored to a peer-derived lower bound without ever lowering a
// counter, so the never-undercount guarantee of every other key is
// preserved.
func (s *Store) Raise(key wire.Key, value uint64, n int) error {
	if n < 1 || n > MaxRedundancy {
		return fmt.Errorf("keyincrement: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	for i := 0; i < n; i++ {
		slot := s.x.Slot(i, key)
		if s.counter(slot) < value {
			off := s.x.Offset(slot)
			binary.BigEndian.PutUint64(s.buf[off:off+CounterSize], value)
		}
	}
	return nil
}

// Query returns the count-min estimate for key: the minimum of its N
// counters (Algorithm 6). The estimate never undercounts.
func (s *Store) Query(key wire.Key, n int) (uint64, error) {
	if n < 1 || n > MaxRedundancy {
		return 0, fmt.Errorf("keyincrement: redundancy %d out of range [1,%d]", n, MaxRedundancy)
	}
	min := s.counter(s.x.Slot(0, key))
	for i := 1; i < n; i++ {
		if c := s.counter(s.x.Slot(i, key)); c < min {
			min = c
		}
	}
	return min, nil
}

// Reset zeroes all counters. The paper resets the memory periodically
// depending on the application (§4).
func (s *Store) Reset() {
	for i := range s.buf {
		s.buf[i] = 0
	}
}
