package keyincrement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dta/internal/wire"
)

func key(v uint64) wire.Key { return wire.KeyFromUint64(v) }

func mustStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewStore(Config{Slots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewStore(Config{Slots: 100}); err == nil {
		t.Error("non-power-of-two slots accepted")
	}
}

func TestIncrementAndQuery(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 12})
	k := key(42)
	for _, n := range []int{1, 2, 4} {
		s.Reset()
		s.Increment(k, 5, n)
		s.Increment(k, 7, n)
		got, err := s.Query(k, n)
		if err != nil {
			t.Fatal(err)
		}
		if got != 12 {
			t.Errorf("N=%d: query = %d, want 12", n, got)
		}
	}
}

func TestQueryUnknownKeyIsZero(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 12})
	s.Increment(key(1), 100, 2)
	if got, _ := s.Query(key(999), 2); got != 0 {
		// A collision could make this nonzero, but with 4096 slots and
		// one key the chance is ~2^-12 per slot; deterministic seed keys
		// here do not collide.
		t.Errorf("unknown key = %d, want 0", got)
	}
}

func TestRedundancyValidation(t *testing.T) {
	s := mustStore(t, Config{Slots: 64})
	if err := s.Increment(key(1), 1, 0); err == nil {
		t.Error("redundancy 0 accepted")
	}
	if _, err := s.Query(key(1), MaxRedundancy+1); err == nil {
		t.Error("redundancy 9 accepted")
	}
}

func TestNeverUndercounts(t *testing.T) {
	// The count-min property: estimates are always ≥ the true count.
	const keys = 500
	s := mustStore(t, Config{Slots: 256}) // small store forces collisions
	rnd := rand.New(rand.NewSource(5))
	truth := make(map[uint64]uint64)
	for i := 0; i < 5000; i++ {
		kv := uint64(rnd.Intn(keys))
		delta := uint64(rnd.Intn(10) + 1)
		truth[kv] += delta
		s.Increment(key(kv), delta, 2)
	}
	for kv, want := range truth {
		got, _ := s.Query(key(kv), 2)
		if got < want {
			t.Fatalf("key %d: estimate %d below truth %d", kv, got, want)
		}
	}
}

func TestMoreRedundancyTightensEstimates(t *testing.T) {
	// Averaged over many keys, min over 4 counters ≤ min over 1 counter.
	s := mustStore(t, Config{Slots: 512})
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		s.Increment(key(uint64(rnd.Intn(400))), 1, 4)
	}
	var sum1, sum4 uint64
	for kv := uint64(0); kv < 400; kv++ {
		q1, _ := s.Query(key(kv), 1)
		q4, _ := s.Query(key(kv), 4)
		if q4 > q1 {
			t.Fatalf("key %d: min over 4 (%d) exceeds min over 1 (%d)", kv, q4, q1)
		}
		sum1 += q1
		sum4 += q4
	}
	if sum4 >= sum1 {
		t.Errorf("N=4 total %d not tighter than N=1 total %d", sum4, sum1)
	}
}

func TestReset(t *testing.T) {
	s := mustStore(t, Config{Slots: 64})
	s.Increment(key(1), 99, 2)
	s.Reset()
	if got, _ := s.Query(key(1), 2); got != 0 {
		t.Errorf("after reset = %d", got)
	}
}

func TestQueryMonotoneInIncrements(t *testing.T) {
	f := func(deltas []uint8) bool {
		s, _ := NewStore(Config{Slots: 1 << 10})
		k := key(7)
		var total, prev uint64
		for _, d := range deltas {
			s.Increment(k, uint64(d), 2)
			total += uint64(d)
			got, _ := s.Query(k, 2)
			if got < prev || got < total {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStoreOverSharedBuffer(t *testing.T) {
	cfg := Config{Slots: 64}
	buf := make([]byte, cfg.BufferSize())
	s, err := NewStoreOver(cfg, buf)
	if err != nil {
		t.Fatal(err)
	}
	s.Increment(key(3), 10, 1)
	// A second view over the same buffer sees the counter.
	s2, _ := NewStoreOver(cfg, buf)
	if got, _ := s2.Query(key(3), 1); got != 10 {
		t.Errorf("shared view = %d, want 10", got)
	}
	if _, err := NewStoreOver(cfg, buf[:10]); err == nil {
		t.Error("short buffer accepted")
	}
}

func BenchmarkIncrementN2(b *testing.B) {
	s, _ := NewStore(Config{Slots: 1 << 20})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Increment(key(uint64(i)), 1, 2)
	}
}

func BenchmarkQueryN2(b *testing.B) {
	s, _ := NewStore(Config{Slots: 1 << 20})
	for i := 0; i < 1<<16; i++ {
		s.Increment(key(uint64(i)), 1, 2)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(key(uint64(i%(1<<16))), 2)
	}
}

func TestRaiseNeverLowers(t *testing.T) {
	s := mustStore(t, Config{Slots: 1 << 10})
	k := key(7)
	if err := s.Increment(k, 10, 2); err != nil {
		t.Fatal(err)
	}
	// Raising below the current value is a no-op.
	if err := s.Raise(k, 3, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Query(k, 2); got != 10 {
		t.Errorf("count after low raise = %d, want 10", got)
	}
	// Raising above lifts every slot to exactly the bound.
	if err := s.Raise(k, 25, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Query(k, 2); got != 25 {
		t.Errorf("count after raise = %d, want 25", got)
	}
	// A colliding key whose slot was already higher is untouched: Raise
	// preserves the never-undercount guarantee for everyone else.
	other := key(9)
	if err := s.Increment(other, 100, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Raise(k, 50, 2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Query(other, 2); got < 100 {
		t.Errorf("colliding key undercounts after raise: %d", got)
	}
	if err := s.Raise(k, 1, 0); err == nil {
		t.Error("redundancy 0 accepted")
	}
}
