package translator

import (
	"math"
	"testing"
)

// TestTokenBucketFractionalRateNoDrift is the regression test for the
// float64 bucket's under-admission: at a sustained fractional rate of
// 3 tokens per 7µs (≈428571.43/s — not representable as an integer
// per-nanosecond rate) over 10 seconds of simulated time, the admitted
// count must match rate × elapsed to within the burst allowance. The old
// implementation accumulated a float rounding residue on every refill
// and fell measurably short over long runs.
func TestTokenBucketFractionalRateNoDrift(t *testing.T) {
	const (
		rate    = 3.0 / 7e-6 // 3 tokens per 7µs, in tokens/second
		horizon = uint64(10e9)
		stepNs  = 500 // sub-token refills: each step earns ~0.21 tokens
	)
	// Burst of 2: with a consumer draining every step the level hovers
	// around one token and never hits the capacity clamp, so any
	// shortfall is pure arithmetic drift, not bucket semantics.
	tb := newTokenBucket(rate, 2)
	tb.tokNano = 0 // start empty: measure pure refill behaviour
	admitted := 0
	for now := uint64(0); now < horizon; now += stepNs {
		if tb.allow(now, 1) {
			admitted++
		}
	}
	want := rate * float64(horizon) / 1e9 // 4,285,714.28…
	if diff := math.Abs(float64(admitted) - want); diff > 2 {
		t.Fatalf("admitted %d tokens over 10s at %.2f/s, want %.1f ± 2 (drift %.1f)",
			admitted, rate, want, diff)
	}
}

// TestTokenBucketExactIntegerRate checks the easy case stays exact: one
// token per ms over [0, 1s) with the bucket starting empty admits at
// t = 1ms, 2ms, …, 999ms — exactly 999 tokens.
func TestTokenBucketExactIntegerRate(t *testing.T) {
	tb := newTokenBucket(1000, 1) // 1 token per ms
	tb.tokNano = 0
	admitted := 0
	for now := uint64(0); now < 1e9; now += 100_000 { // 0.1ms steps
		if tb.allow(now, 1) {
			admitted++
		}
	}
	if admitted != 999 {
		t.Fatalf("admitted %d over [0,1s) at 1000/s from empty, want 999", admitted)
	}
}

// TestTokenBucketBurstAndRefill mirrors the translator-level rate test:
// a burst at t=0 admits only the initial bucket, and credit returns
// after simulated time passes.
func TestTokenBucketBurstAndRefill(t *testing.T) {
	tb := newTokenBucket(1000, 1)
	admitted := 0
	for i := 0; i < 100; i++ {
		if tb.allow(0, 1) {
			admitted++
		}
	}
	if admitted != 1 {
		t.Fatalf("burst at t=0 admitted %d, want exactly the 1-token burst", admitted)
	}
	if !tb.allow(1e6, 1) {
		t.Fatal("no credit after 1ms at 1000/s")
	}
	if tb.allow(1e6, 1) {
		t.Fatal("double credit after 1ms at 1000/s")
	}
}

// TestTokenBucketMultiTokenSpend covers redundancy-N charging.
func TestTokenBucketMultiTokenSpend(t *testing.T) {
	tb := newTokenBucket(8000, 4)
	if !tb.allow(0, 4) {
		t.Fatal("full bucket refused its whole burst")
	}
	if tb.allow(0, 1) {
		t.Fatal("empty bucket admitted")
	}
	// 4 tokens re-accumulate after 0.5ms at 8000/s.
	if !tb.allow(500_000, 4) {
		t.Fatal("bucket did not refill 4 tokens in 0.5ms at 8000/s")
	}
}

// TestTokenBucketLongIdleClampsToBurst ensures a long idle gap saturates
// at the burst capacity rather than overflowing or over-crediting.
func TestTokenBucketLongIdleClampsToBurst(t *testing.T) {
	tb := newTokenBucket(1e9, 2)
	tb.allow(0, 2)
	// An hour of idle time at 1e9 tokens/s would be 3.6e12 tokens.
	admitted := 0
	for i := 0; i < 10; i++ {
		if tb.allow(3_600_000_000_000, 1) {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after long idle admitted %d, want burst capacity 2", admitted)
	}
}

// TestTokenBucketExtremeRatesClamp: rates beyond the uint64-safe range
// must clamp, not overflow into garbage or panic the 128-bit division.
func TestTokenBucketExtremeRatesClamp(t *testing.T) {
	tb := newTokenBucket(1e15, 1e15) // silently clamped to 1e9/1e9
	if tb.rateNano != 1e18 || tb.burstNano != 1e18 {
		t.Fatalf("clamp failed: rateNano=%d burstNano=%d", tb.rateNano, tb.burstNano)
	}
	tb.tokNano = 0
	for now := uint64(1); now < 1e6; now += 97 { // must not panic in refill
		tb.allow(now, 1)
	}
	// Sub-nanotoken rates trickle instead of stalling forever.
	slow := newTokenBucket(1e-10, 1)
	if slow.rateNano != 1 {
		t.Fatalf("tiny rate floored to %d nanotokens/s, want 1", slow.rateNano)
	}
}

// TestTokenBucketDisabled covers the nil (no limit) bucket.
func TestTokenBucketDisabled(t *testing.T) {
	var tb *tokenBucket
	if tb != nil || !tb.allow(0, 1<<20) {
		t.Fatal("nil bucket must always allow")
	}
	if newTokenBucket(0, 0) != nil || newTokenBucket(-1, 0) != nil {
		t.Fatal("non-positive rate must disable the limiter")
	}
}
