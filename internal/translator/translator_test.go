package translator

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/reporter"
	"dta/internal/wire"
)

// rig wires a collector host and a translator back-to-back: the
// translator's emissions are processed by the host and the resulting
// acks fed straight back.
type rig struct {
	host *collector.Host
	tr   *Translator
}

func values(n int) []uint32 {
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(i + 1)
	}
	return vs
}

func fullConfig() (collector.Config, Config) {
	kw := keywrite.Config{Slots: 1 << 12, DataSize: 4}
	ki := keyincrement.Config{Slots: 1 << 12}
	pc := postcarding.Config{Chunks: 1 << 10, Hops: 5, Values: values(256)}
	ap := appendlist.Config{Lists: 8, EntriesPerList: 1 << 10, EntrySize: 4}
	ccfg := collector.Config{KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap}
	tcfg := Config{
		KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap,
		PostcardCacheRows: 1 << 10, AppendBatch: 4,
	}
	return ccfg, tcfg
}

func newRig(t testing.TB, ccfg collector.Config, tcfg Config) *rig {
	t.Helper()
	host, err := collector.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(tcfg, host.Listener())
	if err != nil {
		t.Fatal(err)
	}
	tr.Emit = func(pkt []byte) {
		ack, err := host.Ingest(pkt)
		if err != nil {
			t.Fatalf("collector ingest: %v", err)
		}
		if ack != nil {
			if err := tr.HandleAck(ack); err != nil {
				t.Fatalf("handle ack: %v", err)
			}
		}
	}
	return &rig{host: host, tr: tr}
}

func key(v uint64) wire.Key { return wire.KeyFromUint64(v) }

func TestKeyWriteEndToEnd(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	data := []byte{0xde, 0xad, 0xbe, 0xef}
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: 2, Key: key(42)},
		Data:     data,
	}
	if err := r.tr.Process(&rep, 0); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().RDMAWrites != 2 {
		t.Errorf("RDMA writes = %d, want 2 (N=2 multicast)", r.tr.Stats().RDMAWrites)
	}
	res, err := r.host.QueryKeyWrite(key(42), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !bytes.Equal(res.Data, data) {
		t.Errorf("query = %+v", res)
	}
	if res.Matches != 2 {
		t.Errorf("matches = %d, want 2", res.Matches)
	}
}

func TestKeyWriteRedundancyCapped(t *testing.T) {
	ccfg, tcfg := fullConfig()
	tcfg.MaxKWRedundancy = 2
	r := newRig(t, ccfg, tcfg)
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: 8, Key: key(1)},
		Data:     []byte{1, 2, 3, 4},
	}
	if err := r.tr.Process(&rep, 0); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().RDMAWrites != 2 {
		t.Errorf("writes = %d, want capped 2", r.tr.Stats().RDMAWrites)
	}
}

func TestKeyIncrementEndToEnd(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	for i := 0; i < 3; i++ {
		rep := wire.Report{
			Header:       wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
			KeyIncrement: wire.KeyIncrement{Redundancy: 2, Key: key(7), Delta: 10},
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.tr.Stats().RDMAAtomics != 6 {
		t.Errorf("atomics = %d, want 6", r.tr.Stats().RDMAAtomics)
	}
	got, err := r.host.QueryCount(key(7), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 30 {
		t.Errorf("count = %d, want 30", got)
	}
}

func TestPostcardingEndToEnd(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	x := key(99)
	for hop := 0; hop < 5; hop++ {
		rep := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
			Postcard: wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: uint32(hop + 10)},
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.tr.Stats().PostcardEmits != 1 {
		t.Fatalf("postcard emits = %d, want 1 (aggregated)", r.tr.Stats().PostcardEmits)
	}
	res, err := r.host.QueryPostcards(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || len(res.Values) != 5 {
		t.Fatalf("query = %+v", res)
	}
	for hop, v := range res.Values {
		if v != uint32(hop+10) {
			t.Errorf("hop %d = %d, want %d", hop, v, hop+10)
		}
	}
}

func TestAppendEndToEndWithBatching(t *testing.T) {
	ccfg, tcfg := fullConfig() // batch = 4
	r := newRig(t, ccfg, tcfg)
	for i := 0; i < 8; i++ {
		var data [4]byte
		binary.BigEndian.PutUint32(data[:], uint32(100+i))
		rep := wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
			Append: wire.Append{ListID: 3},
			Data:   data[:],
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.tr.Stats().AppendFlushes != 2 {
		t.Errorf("flushes = %d, want 2 (8 entries / batch 4)", r.tr.Stats().AppendFlushes)
	}
	p, err := r.host.AppendPoller(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got := binary.BigEndian.Uint32(p.Poll())
		if got != uint32(100+i) {
			t.Errorf("poll %d = %d", i, got)
		}
	}
}

func TestAppendPartialFlush(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	rep := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: 0},
		Data:   []byte{9, 9, 9, 9},
	}
	if err := r.tr.Process(&rep, 0); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().AppendFlushes != 0 {
		t.Fatal("flush before batch complete")
	}
	if err := r.tr.FlushAppend(0); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().AppendFlushes != 1 {
		t.Fatalf("flushes = %d after FlushAppend", r.tr.Stats().AppendFlushes)
	}
	p, _ := r.host.AppendPoller(0)
	if p.Poll()[0] != 9 {
		t.Error("partial flush data missing")
	}
}

func TestDrainPostcards(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	x := key(5)
	// Only 2 of 5 hops arrive.
	for hop := 0; hop < 2; hop++ {
		rep := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
			Postcard: wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: uint32(hop + 1)},
		}
		r.tr.Process(&rep, 0)
	}
	if err := r.tr.DrainPostcards(0); err != nil {
		t.Fatal(err)
	}
	res, _ := r.host.QueryPostcards(x, 1)
	if !res.Found || len(res.Values) != 2 {
		t.Errorf("drained partial path: %+v", res)
	}
}

func TestDrainedMiddleHopLossNeverShiftsPath(t *testing.T) {
	// Regression: a flow whose *middle* postcard was lost must not be
	// answered with the remaining hops compacted into a shorter path —
	// hop values must stay at their true positions, which makes the
	// chunk invalid (blank before a real value) and the query empty.
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	x := key(321)
	for _, hop := range []int{0, 1, 3, 4} { // hop 2 lost in transit
		rep := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
			Postcard: wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: uint32(hop + 10)},
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.tr.DrainPostcards(0); err != nil {
		t.Fatal(err)
	}
	res, err := r.host.QueryPostcards(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Errorf("middle-hop loss answered with %v; must be empty", res.Values)
	}
	// A tail loss, by contrast, yields a valid shorter prefix.
	y := key(654)
	for hop := 0; hop < 4; hop++ { // hop 4 lost
		rep := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
			Postcard: wire.Postcard{Key: y, Hop: uint8(hop), PathLen: 5, Value: uint32(hop + 20)},
		}
		r.tr.Process(&rep, 0)
	}
	r.tr.DrainPostcards(0)
	resY, _ := r.host.QueryPostcards(y, 1)
	if !resY.Found || len(resY.Values) != 4 || resY.Values[3] != 23 {
		t.Errorf("tail loss prefix: %+v", resY)
	}
}

func TestImmediateFlagRaisesEvent(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite, Flags: wire.FlagImmediate},
		KeyWrite: wire.KeyWrite{Redundancy: 1, Key: key(1)},
		Data:     []byte{1, 2, 3, 4},
	}
	if err := r.tr.Process(&rep, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-r.host.Events:
		if ev.Imm != uint32(wire.PrimKeyWrite) {
			t.Errorf("event imm = %d", ev.Imm)
		}
	default:
		t.Error("no immediate event delivered")
	}
}

func TestRateLimiterDropsAndNACKs(t *testing.T) {
	ccfg, tcfg := fullConfig()
	tcfg.RateLimit = 1000 // 1K ops/s: the burst bucket holds ~1 token
	r := newRig(t, ccfg, tcfg)
	nacks := 0
	r.tr.NACK = func(rep *wire.Report) { nacks++ }
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: 1, Key: key(1)},
		Data:     []byte{1, 2, 3, 4},
	}
	// Fire a burst at t=0: only the bucket's initial tokens pass.
	for i := 0; i < 100; i++ {
		r.tr.Process(&rep, 0)
	}
	if r.tr.Stats().RateDropped == 0 || nacks == 0 {
		t.Errorf("dropped=%d nacks=%d, want both > 0", r.tr.Stats().RateDropped, nacks)
	}
	// After a second of simulated time, tokens replenish.
	before := r.tr.Stats().RDMAWrites
	if err := r.tr.Process(&rep, 1e9); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().RDMAWrites != before+1 {
		t.Error("write did not pass after replenish")
	}
}

func TestDisabledPrimitiveRejected(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	ccfg := collector.Config{KeyWrite: &kw}
	tcfg := Config{KeyWrite: &kw}
	r := newRig(t, ccfg, tcfg)
	rep := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: 0},
		Data:   []byte{1},
	}
	if err := r.tr.Process(&rep, 0); err == nil {
		t.Error("append on KW-only translator accepted")
	}
}

func TestMissingRegionFailsConstruction(t *testing.T) {
	kw := keywrite.Config{Slots: 64, DataSize: 4}
	ap := appendlist.Config{Lists: 1, EntriesPerList: 16, EntrySize: 4}
	host, err := collector.New(collector.Config{KeyWrite: &kw})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{KeyWrite: &kw, Append: &ap}, host.Listener())
	if err == nil {
		t.Error("translator built without append region")
	}
}

func TestProcessFrameFullPath(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	rp := reporter.New(reporter.Config{
		SwitchID: 7, SrcIP: [4]byte{10, 0, 0, 7}, CollectorIP: [4]byte{10, 9, 9, 9},
		SrcPort: 7777,
	})
	buf := make([]byte, wire.MaxReportLen)
	n, err := rp.KeyWrite(buf, key(2024), []byte{4, 3, 2, 1}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.tr.ProcessFrame(buf[:n], 0); err != nil {
		t.Fatal(err)
	}
	res, _ := r.host.QueryKeyWrite(key(2024), 2, 1)
	if !res.Found || !bytes.Equal(res.Data, []byte{4, 3, 2, 1}) {
		t.Errorf("frame path query = %+v", res)
	}
	if rp.Sent != 1 {
		t.Errorf("reporter sent = %d", rp.Sent)
	}
}

func TestUserTrafficForwarded(t *testing.T) {
	ccfg, tcfg := fullConfig()
	r := newRig(t, ccfg, tcfg)
	// A non-IPv4 ethernet frame.
	frame := make([]byte, 64)
	frame[12], frame[13] = 0x08, 0x06 // ARP
	if err := r.tr.ProcessFrame(frame, 0); err != ErrNotDTA {
		t.Errorf("err = %v, want ErrNotDTA", err)
	}
	if r.tr.Stats().UserPackets != 1 {
		t.Errorf("user packets = %d", r.tr.Stats().UserPackets)
	}
}

func TestFig8MemoryInstrumentation(t *testing.T) {
	// The device counts one memory instruction per cache line; the
	// translator attributes reports. Check the Fig. 8 values:
	// KW N=2 → 2.0, Append batch 16 → 1/16 ≈ 0.06.
	ccfg, tcfg := fullConfig()
	tcfg.AppendBatch = 16
	r := newRig(t, ccfg, tcfg)
	const reports = 1600
	for i := 0; i < reports; i++ {
		rep := wire.Report{
			Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
			KeyWrite: wire.KeyWrite{Redundancy: 2, Key: key(uint64(i))},
			Data:     []byte{1, 2, 3, 4},
		}
		r.tr.Process(&rep, 0)
	}
	r.host.Device().AttributeReports(reports)
	if got := r.host.Device().Mem.PerReport(); got != 2.0 {
		t.Errorf("KW mem instr/report = %v, want 2.0", got)
	}

	// Fresh rig for Append.
	r2 := newRig(t, ccfg, tcfg)
	for i := 0; i < reports; i++ {
		rep := wire.Report{
			Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
			Append: wire.Append{ListID: 1},
			Data:   []byte{1, 2, 3, 4},
		}
		r2.tr.Process(&rep, 0)
	}
	r2.host.Device().AttributeReports(reports)
	got := r2.host.Device().Mem.PerReport()
	if got < 0.05 || got > 0.07 {
		t.Errorf("Append mem instr/report = %v, want ≈0.0625", got)
	}
}

func BenchmarkTranslatorKeyWriteN1(b *testing.B) { benchTranslatorKW(b, 1) }
func BenchmarkTranslatorKeyWriteN2(b *testing.B) { benchTranslatorKW(b, 2) }

func benchTranslatorKW(b *testing.B, n uint8) {
	ccfg, tcfg := fullConfig()
	r := newRig(b, ccfg, tcfg)
	rep := wire.Report{
		Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimKeyWrite},
		KeyWrite: wire.KeyWrite{Redundancy: n, Key: key(0)},
		Data:     []byte{1, 2, 3, 4},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.KeyWrite.Key = key(uint64(i))
		if err := r.tr.Process(&rep, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslatorAppendBatch16(b *testing.B) {
	ccfg, tcfg := fullConfig()
	tcfg.AppendBatch = 16
	r := newRig(b, ccfg, tcfg)
	rep := wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: 1},
		Data:   []byte{1, 2, 3, 4},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.tr.Process(&rep, 0); err != nil {
			b.Fatal(err)
		}
	}
}
