package translator

import (
	"math"
	"math/bits"
)

// tokenBucket is the translator's RDMA rate limiter (§5.2): it protects
// the collector NIC during congestion by capping emitted messages per
// second, dropping (with a counter, optionally a NACK) rather than
// queueing.
//
// The arithmetic is integer throughout. The previous float64
// implementation accumulated `Δns × rate / 1e9` per call; with
// fractional per-nanosecond rates (any rate not a multiple of 1e9/ns)
// each small refill rounds in float space, and over millions of calls
// the bucket drifts — sustained fractional rates under-admit. Here
// tokens are held in nanotokens (1e-9 token) and the sub-nanotoken
// residue of every refill is carried exactly in rem, so the admitted
// count over any horizon is within one token of rate × elapsed.
type tokenBucket struct {
	rateNano  uint64 // nanotokens credited per second (= rate tokens/s)
	burstNano uint64 // bucket capacity in nanotokens
	fillNs    uint64 // Δns that fills the bucket from empty (refill clamp)
	tokNano   uint64 // current level in nanotokens
	rem       uint64 // carried refill residue, in nanotoken·ns units (< 1e9)
	last      uint64 // ns of the most recent refill
}

const nanoPerToken = 1_000_000_000

// newTokenBucket builds a bucket admitting rate tokens per second with
// the given burst capacity (tokens, fractional allowed). The bucket
// starts full. Returns nil for a non-positive rate (limiter disabled).
func newTokenBucket(rate, burst float64) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1 // a bucket that can never hold one whole token admits nothing
	}
	// Clamp so rate×1e9 fits uint64 (overflows above ~1.8e10) and so
	// refill's 128-bit product d×rateNano stays under the Div64
	// precondition (d < fillNs ⇒ product ≲ burstNano×1e9 < 1e9×2^64).
	// 1e9 messages/s is already far beyond any RDMA NIC.
	if rate > 1e9 {
		rate = 1e9
	}
	if burst > 1e9 {
		burst = 1e9
	}
	tb := &tokenBucket{
		rateNano:  uint64(math.Round(rate * nanoPerToken)),
		burstNano: uint64(math.Round(burst * nanoPerToken)),
	}
	if tb.rateNano == 0 {
		tb.rateNano = 1 // sub-nanotoken rates still trickle, never stall
	}
	tb.tokNano = tb.burstNano
	tb.fillNs = uint64(math.Ceil(burst/rate*1e9)) + 1
	return tb
}

// refill credits tokens for the time elapsed since the last refill.
func (tb *tokenBucket) refill(nowNs uint64) {
	if nowNs <= tb.last {
		return
	}
	d := nowNs - tb.last
	tb.last = nowNs
	if d >= tb.fillNs {
		tb.tokNano = tb.burstNano
		tb.rem = 0
		return
	}
	// gained = (d × rateNano + rem) / 1e9 nanotokens, residue carried.
	// d < fillNs keeps the 128-bit product under 1e9 × 2^64, the
	// precondition of Div64.
	hi, lo := bits.Mul64(d, tb.rateNano)
	lo, carry := bits.Add64(lo, tb.rem, 0)
	hi += carry
	gained, rem := bits.Div64(hi, lo, nanoPerToken)
	tb.rem = rem
	if tb.tokNano += gained; tb.tokNano > tb.burstNano {
		tb.tokNano = tb.burstNano
		tb.rem = 0
	}
}

// allow reports whether n tokens may be spent at nowNs, consuming them if
// so. A nil bucket always allows.
func (tb *tokenBucket) allow(nowNs uint64, n int) bool {
	if tb == nil {
		return true
	}
	tb.refill(nowNs)
	need := uint64(n) * nanoPerToken
	if tb.tokNano < need {
		return false
	}
	tb.tokNano -= need
	return true
}
