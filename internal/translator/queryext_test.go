package translator

import (
	"encoding/binary"
	"testing"

	"dta/internal/collector"
	"dta/internal/wire"
)

func TestThresholdQueryTriggersOverT(t *testing.T) {
	q := NewThresholdQuery(1<<8, 5, 100, 7)
	x := key(1)
	// Per-hop latencies summing to 150 > 100.
	var ev *Event
	for hop := 0; hop < 5; hop++ {
		p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: 30}
		got, consumed := q.Offer(&p)
		if !consumed {
			t.Fatal("postcard not consumed")
		}
		if got != nil {
			ev = got
		}
	}
	if ev == nil {
		t.Fatal("no event despite sum 150 > 100")
	}
	if ev.Key != x || ev.Sum != 150 {
		t.Errorf("event = %+v", ev)
	}
	if q.Stats.Triggered != 1 || q.Stats.Completed != 1 {
		t.Errorf("stats = %+v", q.Stats)
	}
}

func TestThresholdQuerySilentUnderT(t *testing.T) {
	q := NewThresholdQuery(1<<8, 5, 1000, 7)
	x := key(2)
	for hop := 0; hop < 5; hop++ {
		p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: 30}
		if ev, _ := q.Offer(&p); ev != nil {
			t.Fatalf("event for sum 150 <= 1000: %+v", ev)
		}
	}
	if q.Stats.Completed != 1 || q.Stats.Triggered != 0 {
		t.Errorf("stats = %+v", q.Stats)
	}
}

func TestThresholdQueryShortPath(t *testing.T) {
	q := NewThresholdQuery(1<<8, 5, 50, 7)
	x := key(3)
	// Path length 3 annotated: completes after 3 postcards.
	var ev *Event
	for hop := 0; hop < 3; hop++ {
		p := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 3, Value: 40}
		if got, _ := q.Offer(&p); got != nil {
			ev = got
		}
	}
	if ev == nil || ev.Sum != 120 {
		t.Fatalf("short path event = %+v", ev)
	}
}

func TestThresholdQueryDuplicateHopCountedOnce(t *testing.T) {
	q := NewThresholdQuery(1<<8, 5, 10, 7)
	x := key(4)
	p := wire.Postcard{Key: x, Hop: 0, PathLen: 5, Value: 100}
	q.Offer(&p)
	q.Offer(&p) // duplicate
	for hop := 1; hop < 5; hop++ {
		pc := wire.Postcard{Key: x, Hop: uint8(hop), PathLen: 5, Value: 1}
		if ev, _ := q.Offer(&pc); ev != nil {
			if ev.Sum != 104 {
				t.Fatalf("sum = %d, want 104 (duplicate absorbed)", ev.Sum)
			}
			return
		}
	}
	t.Fatal("no event")
}

func TestThresholdQueryEndToEnd(t *testing.T) {
	// Full rig: the query intercepts postcards and ships events over
	// Append; the collector's list carries (flow, sum) entries.
	ccfg, tcfg := fullConfig()
	// Entries must fit key+sum = 24B.
	tcfg.Append.EntrySize = 24
	ccfg.Append.EntrySize = 24
	r := newRig(t, ccfg, tcfg)
	q := NewThresholdQuery(1<<10, 5, 200, 3)
	r.tr.InstallThresholdQuery(q)

	slow := key(100) // sum 250 > 200
	fast := key(200) // sum 50
	for hop := 0; hop < 5; hop++ {
		for _, f := range []struct {
			k wire.Key
			v uint32
		}{{slow, 50}, {fast, 10}} {
			rep := wire.Report{
				Header:   wire.Header{Version: wire.Version, Primitive: wire.PrimPostcarding},
				Postcard: wire.Postcard{Key: f.k, Hop: uint8(hop), PathLen: 5, Value: f.v},
			}
			if err := r.tr.Process(&rep, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Postcards were consumed by the query, not the Postcarding store.
	if r.tr.Stats().PostcardEmits != 0 {
		t.Errorf("postcard emits = %d, want 0 (query intercepted)", r.tr.Stats().PostcardEmits)
	}
	if err := r.tr.FlushAppend(0); err != nil {
		t.Fatal(err)
	}
	p, err := r.host.AppendPoller(3)
	if err != nil {
		t.Fatal(err)
	}
	e := p.Poll()
	var gotKey wire.Key
	copy(gotKey[:], e[:wire.KeySize])
	gotSum := binary.BigEndian.Uint64(e[wire.KeySize:])
	if gotKey != slow || gotSum != 250 {
		t.Errorf("event entry: key=%v sum=%d", gotKey, gotSum)
	}
}

func TestKIAggregationReducesAtomics(t *testing.T) {
	ccfg, tcfg := fullConfig()
	tcfg.KIAggregationRows = 1 << 8
	r := newRig(t, ccfg, tcfg)
	k := key(5)
	// 100 increments of the same key: all but the flush-resident one
	// are absorbed.
	for i := 0; i < 100; i++ {
		rep := wire.Report{
			Header:       wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
			KeyIncrement: wire.KeyIncrement{Redundancy: 2, Key: k, Delta: 3},
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if r.tr.Stats().RDMAAtomics != 0 {
		t.Fatalf("atomics before flush = %d, want 0", r.tr.Stats().RDMAAtomics)
	}
	if r.tr.Stats().KIAggregated != 100 {
		t.Errorf("aggregated = %d", r.tr.Stats().KIAggregated)
	}
	if err := r.tr.FlushKeyIncrements(0); err != nil {
		t.Fatal(err)
	}
	if r.tr.Stats().RDMAAtomics != 2 {
		t.Errorf("atomics after flush = %d, want 2 (one aggregate, N=2)", r.tr.Stats().RDMAAtomics)
	}
	got, err := r.host.QueryCount(k, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 300 {
		t.Errorf("count = %d, want 300 (no delta lost)", got)
	}
}

func TestKIAggregationEvictionPreservesTotals(t *testing.T) {
	ccfg, tcfg := fullConfig()
	tcfg.KIAggregationRows = 4 // tiny: constant evictions
	r := newRig(t, ccfg, tcfg)
	truth := map[uint64]uint64{}
	for i := 0; i < 2000; i++ {
		kv := uint64(i % 37)
		truth[kv] += 2
		rep := wire.Report{
			Header:       wire.Header{Version: wire.Version, Primitive: wire.PrimKeyIncrement},
			KeyIncrement: wire.KeyIncrement{Redundancy: 2, Key: key(kv), Delta: 2},
		}
		if err := r.tr.Process(&rep, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.tr.FlushKeyIncrements(0); err != nil {
		t.Fatal(err)
	}
	for kv, want := range truth {
		got, _ := r.host.QueryCount(key(kv), 2)
		if got < want {
			t.Fatalf("key %d: %d < truth %d (count-min must not undercount)", kv, got, want)
		}
	}
	// With a 4-row cache and 37 cycling keys almost every insert evicts,
	// so little is saved — but aggregation must never amplify: at most
	// one flush per report plus the drain.
	if max := uint64(2000+37) * 2; r.tr.Stats().RDMAAtomics > max {
		t.Errorf("aggregation amplified traffic: %d atomics > %d", r.tr.Stats().RDMAAtomics, max)
	}
}

func TestKIAggregationBadRows(t *testing.T) {
	ccfg, tcfg := fullConfig()
	tcfg.KIAggregationRows = 100 // not a power of two
	host, err := collector.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tcfg, host.Listener()); err == nil {
		t.Error("non-power-of-two aggregation rows accepted")
	}
}
