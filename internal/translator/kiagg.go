package translator

import (
	"dta/internal/crc"
	"dta/internal/wire"
)

// kiAggCache pre-aggregates Key-Increment deltas at the translator (§4's
// extensibility discussion: "aggregation of counters at the translator
// to decrease the collection load at compute servers"). Deltas for the
// same key accumulate in SRAM; a colliding key flushes the incumbent's
// total as a single FETCH&ADD. The count-min semantics are unaffected —
// addition is associative — but the collector sees one atomic where it
// would have seen many.
type kiAggCache struct {
	rows []kiAggRow
	eng  *crc.Engine
	mask uint64
}

type kiAggRow struct {
	key      wire.Key
	occupied bool
	delta    uint64
	red      uint8
}

func newKIAggCache(rows int) *kiAggCache {
	return &kiAggCache{
		rows: make([]kiAggRow, rows),
		eng:  crc.New(crc.XFER),
		mask: uint64(rows - 1),
	}
}

// add folds one increment into the cache. When the slot holds another
// key, the incumbent is evicted and returned with flushed=true; the new
// increment takes its place.
func (c *kiAggCache) add(ki *wire.KeyIncrement) (key wire.Key, delta uint64, red uint8, flushed bool) {
	r := &c.rows[uint64(c.eng.Sum(ki.Key[:]))&c.mask]
	if r.occupied && r.key != ki.Key {
		key, delta, red = r.key, r.delta, r.red
		r.key, r.delta, r.red = ki.Key, ki.Delta, ki.Redundancy
		return key, delta, red, true
	}
	if !r.occupied {
		r.occupied = true
		r.key = ki.Key
		r.red = ki.Redundancy
	}
	r.delta += ki.Delta
	if ki.Redundancy > r.red {
		r.red = ki.Redundancy
	}
	return wire.Key{}, 0, 0, false
}

// drain empties the cache, returning every pending aggregate.
func (c *kiAggCache) drain() []wire.KeyIncrement {
	var out []wire.KeyIncrement
	for i := range c.rows {
		r := &c.rows[i]
		if !r.occupied {
			continue
		}
		out = append(out, wire.KeyIncrement{Redundancy: r.red, Key: r.key, Delta: r.delta})
		*r = kiAggRow{}
	}
	return out
}
