// Package translator implements the DTA translator: the last-hop switch
// in front of the collector that converts lightweight DTA reports into
// standard RDMA verbs (Fig. 6 of the paper).
//
// The pipeline mirrors the Tofino implementation's stages:
//
//	parse → (user traffic: forward) → primitive processing → multicast
//	redundancy → RoCEv2 crafting → rate limiting → emit
//
// Key-Write and Key-Increment hash the key into N slot addresses and
// replicate the operation N ways (the multicast engine in hardware).
// Postcarding aggregates postcards in an SRAM cache and emits chunk-sized
// WRITEs. Append stashes entries and emits batch WRITEs. All primitives
// share the RDMA crafting logic: per-connection PSN tracking, queue-pair
// resynchronisation on NAK, and a token-bucket rate limiter that protects
// the collector NIC during congestion (§5.2); drops can bounce a NACK
// back to the reporter.
package translator

import (
	"errors"
	"fmt"

	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// Config assembles the translator's per-primitive configuration. Any
// primitive may be left disabled (nil geometry) to save resources (§6.4).
type Config struct {
	// KeyWrite is the Key-Write store geometry, or nil.
	KeyWrite *keywrite.Config
	// KeyIncrement is the Key-Increment store geometry, or nil.
	KeyIncrement *keyincrement.Config
	// Postcarding is the Postcarding store geometry, or nil.
	Postcarding *postcarding.Config
	// PostcardCacheRows sizes the aggregation cache (32K in the paper).
	PostcardCacheRows int
	// Append is the Append store geometry, or nil.
	Append *appendlist.Config
	// AppendBatch is the Append batching factor (16 in the evaluation;
	// 1 disables batching).
	AppendBatch int
	// PostcardRedundancy is the chunk redundancy N for Postcarding
	// (0 or 1 = single chunk, as in Fig. 14).
	PostcardRedundancy int
	// KIAggregationRows enables translator-side Key-Increment
	// pre-aggregation (§4 "Extensibility": aggregating counters at the
	// translator to decrease the collection load): deltas for the same
	// key accumulate in a small cache and flush as one FETCH&ADD on
	// eviction. 0 disables; otherwise a power of two.
	KIAggregationRows int
	// RateLimit caps emitted RDMA messages per second; 0 disables.
	RateLimit float64
	// MaxKWRedundancy caps the redundancy reporters may request.
	MaxKWRedundancy int
}

// Stats counts translator activity.
type Stats struct {
	Reports       uint64 // DTA reports processed
	UserPackets   uint64 // non-DTA packets forwarded
	ParseErrors   uint64
	RDMAWrites    uint64
	RDMAAtomics   uint64
	RateDropped   uint64 // reports dropped by the rate limiter
	NACKs         uint64 // NACKs bounced to reporters
	Resyncs       uint64 // queue-pair resynchronisations
	PostcardEmits uint64
	AppendFlushes uint64
	KIAggregated  uint64 // Key-Increment reports absorbed by pre-aggregation
}

// Translator converts DTA reports into RDMA operations against a
// collector's advertised memory regions.
type Translator struct {
	cfg Config

	req *rdma.Requester

	kwIdx   *keywrite.Indexer
	kwReg   rdma.RegionInfo
	kiIdx   *keyincrement.Indexer
	kiReg   rdma.RegionInfo
	pcCoder *postcarding.Coder
	pcCache *postcarding.Cache
	pcReg   rdma.RegionInfo
	apBatch *appendlist.Batcher
	apReg   rdma.RegionInfo

	limiter *tokenBucket

	// thresholdQuery, when installed, pre-processes postcards (§7's
	// query-enhancing extension).
	thresholdQuery *ThresholdQuery

	// kiAgg is the optional Key-Increment pre-aggregation cache.
	kiAgg *kiAggCache

	// Emit delivers a crafted RoCEv2 packet towards the collector. It
	// is typically Device.Process wrapped by the fabric; acks flow back
	// through HandleAck.
	Emit func(pkt []byte)

	// NACK, if non-nil, is invoked with the reporter-visible reason when
	// a report is dropped by the rate limiter.
	NACK func(r *wire.Report)

	pktBuf   []byte
	chunkBuf []byte

	Stats Stats
}

// tokenBucket is the translator's RDMA rate limiter.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   uint64 // ns
}

func (tb *tokenBucket) allow(nowNs uint64, n float64) bool {
	if tb.rate <= 0 {
		return true
	}
	if nowNs > tb.last {
		tb.tokens += float64(nowNs-tb.last) * tb.rate / 1e9
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = nowNs
	}
	if tb.tokens < n {
		return false
	}
	tb.tokens -= n
	return true
}

// New builds a translator connected through the given CM listener, which
// must advertise one region per enabled primitive, labelled "keywrite",
// "keyincrement", "postcarding" and "append".
func New(cfg Config, l *rdma.Listener) (*Translator, error) {
	req, regions, err := rdma.Connect(l, 1000)
	if err != nil {
		return nil, err
	}
	t := &Translator{
		cfg:      cfg,
		req:      req,
		pktBuf:   make([]byte, 0, 512),
		chunkBuf: make([]byte, 0, postcarding.MaxHops*postcarding.SlotSize),
	}
	if cfg.RateLimit > 0 {
		t.limiter = &tokenBucket{rate: cfg.RateLimit, burst: cfg.RateLimit / 1000, tokens: cfg.RateLimit / 1000}
	}
	if cfg.KeyWrite != nil {
		t.kwIdx, err = keywrite.NewIndexer(*cfg.KeyWrite)
		if err != nil {
			return nil, err
		}
		t.kwReg, err = needRegion(regions, "keywrite", uint64(cfg.KeyWrite.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	if cfg.KeyIncrement != nil {
		t.kiIdx, err = keyincrement.NewIndexer(*cfg.KeyIncrement)
		if err != nil {
			return nil, err
		}
		t.kiReg, err = needRegion(regions, "keyincrement", uint64(cfg.KeyIncrement.BufferSize()))
		if err != nil {
			return nil, err
		}
		if rows := cfg.KIAggregationRows; rows > 0 {
			if rows&(rows-1) != 0 {
				return nil, fmt.Errorf("translator: KI aggregation rows %d not a power of two", rows)
			}
			t.kiAgg = newKIAggCache(rows)
		}
	}
	if cfg.Postcarding != nil {
		t.pcCoder, err = postcarding.NewCoder(*cfg.Postcarding)
		if err != nil {
			return nil, err
		}
		rows := cfg.PostcardCacheRows
		if rows == 0 {
			rows = 32768
		}
		t.pcCache, err = postcarding.NewCache(rows, cfg.Postcarding.Hops)
		if err != nil {
			return nil, err
		}
		t.pcReg, err = needRegion(regions, "postcarding", uint64(cfg.Postcarding.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	if cfg.Append != nil {
		batch := cfg.AppendBatch
		if batch == 0 {
			batch = 1
		}
		t.apBatch, err = appendlist.NewBatcher(*cfg.Append, batch)
		if err != nil {
			return nil, err
		}
		t.apReg, err = needRegion(regions, "append", uint64(cfg.Append.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func needRegion(regions []rdma.RegionInfo, label string, minLen uint64) (rdma.RegionInfo, error) {
	g, ok := rdma.FindRegion(regions, label)
	if !ok {
		return rdma.RegionInfo{}, fmt.Errorf("translator: collector does not advertise %q", label)
	}
	if g.Length < minLen {
		return rdma.RegionInfo{}, fmt.Errorf("translator: region %q is %dB, need %dB", label, g.Length, minLen)
	}
	return g, nil
}

// ErrNotDTA reports a packet that was not addressed to the DTA port; the
// caller should forward it as user traffic.
var ErrNotDTA = errors.New("translator: user traffic")

// ProcessFrame parses a full Ethernet frame and processes DTA reports;
// other traffic only counts as forwarded.
func (t *Translator) ProcessFrame(frame []byte, nowNs uint64) error {
	var p wire.ParsedFrame
	if err := wire.DecodeFrame(frame, &p); err != nil {
		t.Stats.ParseErrors++
		return err
	}
	if !p.IsDTA {
		t.Stats.UserPackets++
		return ErrNotDTA
	}
	return t.Process(&p.Report, nowNs)
}

// Process translates one DTA report into RDMA operations.
func (t *Translator) Process(r *wire.Report, nowNs uint64) error {
	t.Stats.Reports++
	switch r.Header.Primitive {
	case wire.PrimKeyWrite:
		return t.keyWrite(r, nowNs)
	case wire.PrimKeyIncrement:
		return t.keyIncrement(r, nowNs)
	case wire.PrimPostcarding:
		return t.postcard(r, nowNs)
	case wire.PrimAppend:
		return t.append(r, nowNs)
	default:
		t.Stats.ParseErrors++
		return fmt.Errorf("translator: unknown primitive %v", r.Header.Primitive)
	}
}

// drop handles a rate-limited report.
func (t *Translator) drop(r *wire.Report) error {
	t.Stats.RateDropped++
	if t.NACK != nil {
		t.Stats.NACKs++
		t.NACK(r)
	}
	return nil
}

func (t *Translator) immediate(r *wire.Report) *uint32 {
	if r.Header.Flags&wire.FlagImmediate == 0 {
		return nil
	}
	imm := uint32(r.Header.Primitive)
	return &imm
}

func (t *Translator) keyWrite(r *wire.Report, nowNs uint64) error {
	if t.kwIdx == nil {
		return errors.New("translator: Key-Write not enabled")
	}
	n := int(r.KeyWrite.Redundancy)
	if max := t.cfg.MaxKWRedundancy; max > 0 && n > max {
		n = max
	}
	if n > keywrite.MaxRedundancy {
		n = keywrite.MaxRedundancy
	}
	if t.limiter != nil && !t.limiter.allow(nowNs, float64(n)) {
		return t.drop(r)
	}
	cfg := t.kwIdx.Config()
	// Slot image: 4B checksum followed by the (padded) value.
	var payload [keywrite.ChecksumSize + wire.MaxData]byte
	csum := t.kwIdx.Checksum(r.KeyWrite.Key)
	payload[0] = byte(csum >> 24)
	payload[1] = byte(csum >> 16)
	payload[2] = byte(csum >> 8)
	payload[3] = byte(csum)
	copy(payload[keywrite.ChecksumSize:keywrite.ChecksumSize+cfg.DataSize], r.Data)
	img := payload[:keywrite.ChecksumSize+cfg.DataSize]
	// Multicast: one RDMA WRITE per redundancy level.
	for i := 0; i < n; i++ {
		slot := t.kwIdx.Slot(i, r.KeyWrite.Key)
		va := t.kwReg.VA + uint64(t.kwIdx.Offset(slot))
		pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(), va, t.kwReg.RKey, img, false, t.immediate(r))
		t.Stats.RDMAWrites++
		t.Emit(pkt)
	}
	return nil
}

func (t *Translator) keyIncrement(r *wire.Report, nowNs uint64) error {
	if t.kiIdx == nil {
		return errors.New("translator: Key-Increment not enabled")
	}
	if t.kiAgg != nil {
		key, delta, red, flushed := t.kiAgg.add(&r.KeyIncrement)
		if !flushed {
			t.Stats.KIAggregated++
			return nil
		}
		// An incumbent was evicted: emit its accumulated delta instead.
		agg := wire.KeyIncrement{Redundancy: red, Key: key, Delta: delta}
		return t.emitFetchAdds(&agg, nowNs)
	}
	return t.emitFetchAdds(&r.KeyIncrement, nowNs)
}

func (t *Translator) emitFetchAdds(ki *wire.KeyIncrement, nowNs uint64) error {
	n := int(ki.Redundancy)
	if n > keyincrement.MaxRedundancy {
		n = keyincrement.MaxRedundancy
	}
	if n > keyincrement.MaxRedundancy {
		n = keyincrement.MaxRedundancy
	}
	if t.limiter != nil && !t.limiter.allow(nowNs, float64(n)) {
		t.Stats.RateDropped++
		return nil
	}
	for i := 0; i < n; i++ {
		slot := t.kiIdx.Slot(i, ki.Key)
		va := t.kiReg.VA + uint64(t.kiIdx.Offset(slot))
		pkt := rdma.BuildFetchAdd(t.pktBuf, t.req.DestQP, t.req.NextPSN(), va, t.kiReg.RKey, ki.Delta)
		t.Stats.RDMAAtomics++
		t.Emit(pkt)
	}
	return nil
}

// FlushKeyIncrements drains the pre-aggregation cache (epoch end).
func (t *Translator) FlushKeyIncrements(nowNs uint64) error {
	if t.kiAgg == nil {
		return nil
	}
	for _, e := range t.kiAgg.drain() {
		e := e
		if err := t.emitFetchAdds(&e, nowNs); err != nil {
			return err
		}
	}
	return nil
}

func (t *Translator) postcard(r *wire.Report, nowNs uint64) error {
	if q := t.thresholdQuery; q != nil {
		if ev, consumed := q.Offer(&r.Postcard); consumed {
			if ev == nil {
				return nil
			}
			rep := q.EventReport(ev)
			return t.append(&rep, nowNs)
		}
	}
	if t.pcCoder == nil {
		return errors.New("translator: Postcarding not enabled")
	}
	emits := t.pcCache.Insert(&r.Postcard)
	for i := range emits {
		if err := t.emitChunk(&emits[i], r, nowNs); err != nil {
			return err
		}
	}
	return nil
}

// emitChunk writes one aggregated flow chunk with redundancy N
// (configured at the store; the paper uses the same N for all flows).
func (t *Translator) emitChunk(e *postcarding.Emit, r *wire.Report, nowNs uint64) error {
	t.Stats.PostcardEmits++
	cfg := t.pcCoder.Config()
	n := t.cfg.PostcardRedundancy
	if n < 1 {
		n = 1
	}
	if n > postcarding.MaxRedundancy {
		n = postcarding.MaxRedundancy
	}
	if t.limiter != nil && !t.limiter.allow(nowNs, float64(n)) {
		return t.drop(r)
	}
	// Encode hop-positionally: missing middle hops stay blank so a
	// query rejects the chunk instead of returning a shifted path.
	payload := t.pcCoder.EncodeChunkSparse(e.Key, &e.Values, t.chunkBuf)
	for j := 0; j < n; j++ {
		chunk := t.pcCoder.Chunk(j, e.Key)
		va := t.pcReg.VA + uint64(int(chunk)*cfg.ChunkBytes())
		pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(), va, t.pcReg.RKey, payload, false, t.immediate(r))
		t.Stats.RDMAWrites++
		t.Emit(pkt)
	}
	return nil
}

func (t *Translator) append(r *wire.Report, nowNs uint64) error {
	if t.apBatch == nil {
		return errors.New("translator: Append not enabled")
	}
	f, err := t.apBatch.Append(int(r.Append.ListID), r.Data)
	if err != nil {
		return err
	}
	if f == nil {
		return nil
	}
	return t.emitAppendFlush(f, r, nowNs)
}

func (t *Translator) emitAppendFlush(f *appendlist.Flush, r *wire.Report, nowNs uint64) error {
	if t.limiter != nil && !t.limiter.allow(nowNs, 1) {
		return t.drop(r)
	}
	t.Stats.AppendFlushes++
	cfg := t.apBatch
	_ = cfg
	apCfg := t.cfg.Append
	va := t.apReg.VA + uint64(f.List*apCfg.ListBytes()+f.Index*apCfg.EntrySize)
	var imm *uint32
	if r != nil {
		imm = t.immediate(r)
	}
	pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(), va, t.apReg.RKey, f.Data, false, imm)
	t.Stats.RDMAWrites++
	t.Emit(pkt)
	return nil
}

// FlushAppend forces out partial Append batches for every list (epoch
// end). Postcard cache draining is separate (DrainPostcards).
func (t *Translator) FlushAppend(nowNs uint64) error {
	if t.apBatch == nil {
		return nil
	}
	for l := 0; l < t.cfg.Append.Lists; l++ {
		if f := t.apBatch.FlushPartial(l); f != nil {
			if err := t.emitAppendFlush(f, nil, nowNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// DrainPostcards flushes every cached postcard row (epoch end).
func (t *Translator) DrainPostcards(nowNs uint64) error {
	if t.pcCache == nil {
		return nil
	}
	for _, e := range t.pcCache.Drain() {
		e := e
		if err := t.emitChunk(&e, &wire.Report{}, nowNs); err != nil {
			return err
		}
	}
	return nil
}

// HandleAck feeds an acknowledgement from the collector back into the
// PSN tracker; NAK-sequence triggers resynchronisation.
func (t *Translator) HandleAck(pkt []byte) error {
	var p rdma.Packet
	if err := rdma.DecodePacket(pkt, &p); err != nil {
		return err
	}
	before := t.req.Resyncs
	t.req.HandleAck(&p)
	if t.req.Resyncs != before {
		t.Stats.Resyncs++
	}
	return nil
}

// PostcardCache exposes the cache for statistics (Fig. 14).
func (t *Translator) PostcardCache() *postcarding.Cache { return t.pcCache }

// AppendBatcher exposes the batcher for statistics.
func (t *Translator) AppendBatcher() *appendlist.Batcher { return t.apBatch }

// Requester exposes the PSN tracker (tests and diagnostics).
func (t *Translator) Requester() *rdma.Requester { return t.req }
