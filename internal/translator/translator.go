// Package translator implements the DTA translator: the last-hop switch
// in front of the collector that converts lightweight DTA reports into
// standard RDMA verbs (Fig. 6 of the paper).
//
// The pipeline mirrors the Tofino implementation's stages:
//
//	parse → (user traffic: forward) → primitive processing → multicast
//	redundancy → RoCEv2 crafting → rate limiting → emit
//
// Key-Write and Key-Increment hash the key into N slot addresses and
// replicate the operation N ways (the multicast engine in hardware).
// Postcarding aggregates postcards in an SRAM cache and emits chunk-sized
// WRITEs. Append stashes entries and emits batch WRITEs. All primitives
// share the RDMA crafting logic: per-connection PSN tracking, queue-pair
// resynchronisation on NAK, and a token-bucket rate limiter that protects
// the collector NIC during congestion (§5.2); drops can bounce a NACK
// back to the reporter.
package translator

import (
	"errors"
	"fmt"
	"time"

	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/obs"
	"dta/internal/obs/journal"
	"dta/internal/obs/trace"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// Config assembles the translator's per-primitive configuration. Any
// primitive may be left disabled (nil geometry) to save resources (§6.4).
type Config struct {
	// KeyWrite is the Key-Write store geometry, or nil.
	KeyWrite *keywrite.Config
	// KeyIncrement is the Key-Increment store geometry, or nil.
	KeyIncrement *keyincrement.Config
	// Postcarding is the Postcarding store geometry, or nil.
	Postcarding *postcarding.Config
	// PostcardCacheRows sizes the aggregation cache (32K in the paper).
	PostcardCacheRows int
	// Append is the Append store geometry, or nil.
	Append *appendlist.Config
	// AppendBatch is the Append batching factor (16 in the evaluation;
	// 1 disables batching).
	AppendBatch int
	// PostcardRedundancy is the chunk redundancy N for Postcarding
	// (0 or 1 = single chunk, as in Fig. 14).
	PostcardRedundancy int
	// KIAggregationRows enables translator-side Key-Increment
	// pre-aggregation (§4 "Extensibility": aggregating counters at the
	// translator to decrease the collection load): deltas for the same
	// key accumulate in a small cache and flush as one FETCH&ADD on
	// eviction. 0 disables; otherwise a power of two.
	KIAggregationRows int
	// RateLimit caps emitted RDMA messages per second; 0 disables.
	RateLimit float64
	// MaxKWRedundancy caps the redundancy reporters may request.
	MaxKWRedundancy int
}

// Stats counts translator activity. It is a snapshot view over the
// translator's obs counters: the same atomic cells back this struct and
// the Prometheus exposition, so the two can never disagree.
type Stats struct {
	Reports       uint64 // DTA reports processed
	UserPackets   uint64 // non-DTA packets forwarded
	ParseErrors   uint64
	RDMAWrites    uint64
	RDMAAtomics   uint64
	RDMACrafts    uint64 // full RoCEv2 header crafts (first replica)
	RDMARepatches uint64 // PSN/VA repatches (multicast replicas 2..N)
	RateDropped   uint64 // reports dropped by the rate limiter
	NACKs         uint64 // NACKs bounced to reporters
	Resyncs       uint64 // queue-pair resynchronisations
	PostcardEmits uint64
	AppendFlushes uint64
	KIAggregated  uint64 // Key-Increment reports absorbed by pre-aggregation
}

// counters is the live metric storage behind Stats. The translator is
// single-threaded by contract, so every cell is a single-writer padded
// obs.Counter; exposition and Stats() readers load them concurrently
// without coordination. Reports is kept per-primitive (the exposition's
// primitive label) and summed for the Stats view.
type counters struct {
	kwReports  *obs.Counter
	kiReports  *obs.Counter
	pcReports  *obs.Counter
	apReports  *obs.Counter
	unkReports *obs.Counter

	userPackets   *obs.Counter
	parseErrors   *obs.Counter
	rdmaWrites    *obs.Counter
	rdmaAtomics   *obs.Counter
	crafts        *obs.Counter
	repatches     *obs.Counter
	rateDropped   *obs.Counter
	nacks         *obs.Counter
	resyncs       *obs.Counter
	postcardEmits *obs.Counter
	appendFlushes *obs.Counter
	kiAggregated  *obs.Counter

	// Sampled per-stage latency (nil histograms when unobserved — the
	// samplers then skip the clock reads entirely).
	reportNs   *obs.Histogram
	emitNs     *obs.Histogram
	reportSamp obs.Sampler
	emitSamp   obs.Sampler
}

// spanSampleShift thins per-stage spans to 1 in 64: two clock reads
// (~50ns) amortise to under a nanosecond per report.
const spanSampleShift = 6

func newCounters(sc *obs.Scope) counters {
	prim := func(p string) *obs.Scope { return sc.With(obs.L("primitive", p)) }
	return counters{
		kwReports:  prim("key_write").Counter("dta_translator_reports_total", "DTA reports processed, by primitive."),
		kiReports:  prim("key_increment").Counter("dta_translator_reports_total", "DTA reports processed, by primitive."),
		pcReports:  prim("postcarding").Counter("dta_translator_reports_total", "DTA reports processed, by primitive."),
		apReports:  prim("append").Counter("dta_translator_reports_total", "DTA reports processed, by primitive."),
		unkReports: prim("unknown").Counter("dta_translator_reports_total", "DTA reports processed, by primitive."),

		userPackets:   sc.Counter("dta_translator_user_packets_total", "Non-DTA packets forwarded as user traffic."),
		parseErrors:   sc.Counter("dta_translator_parse_errors_total", "Frames or reports the translator could not parse."),
		rdmaWrites:    sc.Counter("dta_rdma_writes_total", "RoCEv2 WRITEs emitted."),
		rdmaAtomics:   sc.Counter("dta_rdma_atomics_total", "RoCEv2 FETCH&ADDs emitted."),
		crafts:        sc.Counter("dta_rdma_crafts_total", "Full packet header crafts (first multicast replica)."),
		repatches:     sc.Counter("dta_rdma_repatches_total", "PSN/VA repatches reusing a crafted packet (replicas 2..N)."),
		rateDropped:   sc.Counter("dta_rate_dropped_total", "Reports shed by the token-bucket rate limiter."),
		nacks:         sc.Counter("dta_nacks_total", "NACKs bounced to reporters on rate drops."),
		resyncs:       sc.Counter("dta_resyncs_total", "Queue-pair resynchronisations after NAK-sequence."),
		postcardEmits: sc.Counter("dta_postcard_emits_total", "Aggregated postcard chunks emitted."),
		appendFlushes: sc.Counter("dta_append_flushes_total", "Append batch flushes emitted."),
		kiAggregated:  sc.Counter("dta_ki_aggregated_total", "Key-Increment reports absorbed by translator-side pre-aggregation."),

		reportNs:   sc.Histogram("dta_translator_report_ns", "End-to-end report processing nanoseconds (sampled 1/64)."),
		emitNs:     sc.Histogram("dta_rdma_emit_ns", "RDMA craft+emit nanoseconds per primitive operation (sampled 1/64)."),
		reportSamp: obs.NewSampler(spanSampleShift),
		emitSamp:   obs.NewSampler(spanSampleShift),
	}
}

// snapshot materialises the public Stats view.
func (c *counters) snapshot() Stats {
	return Stats{
		Reports: c.kwReports.Load() + c.kiReports.Load() + c.pcReports.Load() +
			c.apReports.Load() + c.unkReports.Load(),
		UserPackets:   c.userPackets.Load(),
		ParseErrors:   c.parseErrors.Load(),
		RDMAWrites:    c.rdmaWrites.Load(),
		RDMAAtomics:   c.rdmaAtomics.Load(),
		RDMACrafts:    c.crafts.Load(),
		RDMARepatches: c.repatches.Load(),
		RateDropped:   c.rateDropped.Load(),
		NACKs:         c.nacks.Load(),
		Resyncs:       c.resyncs.Load(),
		PostcardEmits: c.postcardEmits.Load(),
		AppendFlushes: c.appendFlushes.Load(),
		KIAggregated:  c.kiAggregated.Load(),
	}
}

// Translator converts DTA reports into RDMA operations against a
// collector's advertised memory regions.
type Translator struct {
	cfg Config

	req *rdma.Requester

	kwIdx   *keywrite.Indexer
	kwReg   rdma.RegionInfo
	kiIdx   *keyincrement.Indexer
	kiReg   rdma.RegionInfo
	pcCoder *postcarding.Coder
	pcCache *postcarding.Cache
	pcReg   rdma.RegionInfo
	apBatch *appendlist.Batcher
	apReg   rdma.RegionInfo

	limiter *tokenBucket

	// thresholdQuery, when installed, pre-processes postcards (§7's
	// query-enhancing extension).
	thresholdQuery *ThresholdQuery

	// kiAgg is the optional Key-Increment pre-aggregation cache.
	kiAgg *kiAggCache

	// Emit delivers a crafted RoCEv2 packet towards the collector. It
	// is typically Device.Process wrapped by the fabric; acks flow back
	// through HandleAck. Emit must consume pkt before returning: the
	// translator reuses (and repatches) the buffer for the next emission.
	Emit func(pkt []byte)

	// NACK, if non-nil, is invoked with the reporter-visible reason when
	// a report is dropped by the rate limiter.
	NACK func(r *wire.Report)

	// Journal, when wired, receives rate-gated flight-recorder events
	// for shed episodes (rate-limit drops) and parse errors. The zero
	// value is a no-op. The translator is single-threaded by contract,
	// so the gate fields below need no atomics.
	Journal       journal.Emitter
	shedGate      journal.Gate
	parseGate     journal.Gate
	shedCause     uint64
	parseErrCause uint64

	// WAL, if non-nil, observes every admitted report in staged form
	// before primitive processing — the durability hook (internal/wal):
	// logging at admission rather than at RDMA emit keeps one compact
	// record per report and lets recovery rebuild translator-side
	// aggregation state (batcher stashes, postcard caches) by replaying
	// through this same pipeline. A WAL error fails the report.
	//
	// Admission-time logging runs BEFORE the token-bucket rate limiter
	// (whose shedding unit for Append is a whole batch flush, not a
	// report, so a post-limiter hook could not attribute drops to
	// records at all). A rate-dropped report therefore stays in the
	// log, and a replay — whose fresh bucket also paces differently —
	// can restore reports the live run shed. With rate limiting
	// enabled, recovery and log-shipping resync are exact over admitted
	// reports, not over emitted RDMA operations; restored state can
	// only gain best-effort-shed reports, never lose acknowledged ones.
	WAL func(rec *wire.StagedReport, nowNs uint64) error
	// walScratch stages reports arriving through the non-staged entries
	// (ProcessReport/ProcessFrame) for the WAL hook.
	walScratch wire.StagedReport

	// pktBuf and chunkBuf are the crafting scratch buffers: every
	// outgoing RoCEv2 packet (and postcard chunk image) is built in
	// place here, so the steady-state emit path performs no allocation.
	pktBuf   []byte
	chunkBuf []byte
	// frame is the ingress parsing scratch for ProcessFrame. Keeping it
	// on the Translator (single-threaded by contract) rather than the
	// stack stops the decoded report from escaping to the heap on every
	// frame.
	frame wire.ParsedFrame
	// nackScratch is the lazily materialised report handed to the NACK
	// callback when a staged report is rate-limit dropped.
	nackScratch wire.Report

	// traceH is the data-plane trace handle for the report currently
	// being processed (set by the engine worker or sync caller via
	// SetTraceHandle, cleared when the report's wrapper returns so the
	// epoch-flush emit paths can never stamp a recycled trace). The
	// translator is single-threaded by contract, so a plain field is
	// race-free.
	traceH trace.Handle

	ctr counters
}

// SetTraceHandle installs the trace handle for the NEXT report
// processed — the engine.TraceSink hook. The handle may be invalid
// (report sampled out); it is consumed by the next
// ProcessStaged/ProcessReport call.
func (t *Translator) SetTraceHandle(h trace.Handle) { t.traceH = h }

// TraceHandle returns the active report's trace handle (invalid
// outside a processing call). The WAL append hook uses it to hand
// trace ownership to the durability path.
func (t *Translator) TraceHandle() trace.Handle { return t.traceH }

// endEmit closes an emit span: the active trace gets its emit stage
// stamped (covering the last replica emitted) and rides into the emit
// histogram as the landing bucket's exemplar.
func (t *Translator) endEmit(span obs.Span) {
	t.traceH.Stamp(trace.StEmit)
	span.EndExemplar(t.traceH.ID())
}

// Stats snapshots the translator's counters. Safe to call concurrently
// with processing (the cells are atomics).
func (t *Translator) Stats() Stats { return t.ctr.snapshot() }

// New builds a translator connected through the given CM listener, which
// must advertise one region per enabled primitive, labelled "keywrite",
// "keyincrement", "postcarding" and "append".
func New(cfg Config, l *rdma.Listener) (*Translator, error) {
	return NewScoped(cfg, l, nil)
}

// NewScoped is New with the translator's metrics (dta_translator_*,
// dta_rdma_*, dta_rate_*, dta_nacks_*) registered under the given obs
// scope, plus sampled per-stage latency histograms. A nil scope keeps
// the counters behind Stats() live but unexposed and disables the
// latency spans entirely (no clock reads). The scope is deliberately
// not part of Config: Config is the serialisable deployment geometry
// (it rides in the WAL's Meta record); a live registry handle is not.
func NewScoped(cfg Config, l *rdma.Listener, sc *obs.Scope) (*Translator, error) {
	req, regions, err := rdma.Connect(l, 1000)
	if err != nil {
		return nil, err
	}
	t := &Translator{
		cfg:      cfg,
		req:      req,
		pktBuf:   make([]byte, 0, 512),
		chunkBuf: make([]byte, 0, postcarding.MaxHops*postcarding.SlotSize),
		ctr:      newCounters(sc),
	}
	// A NAK-sequence resync fires mid-emit, while the faulted report's
	// trace is still active: flag it so tail-based sampling retains the
	// trace that actually hit the rollback.
	t.req.OnResync = func() { t.traceH.Flag(trace.FResync) }
	// Burst of rate/1000 ≈ one millisecond of credit, as before; the
	// integer bucket floors it at one whole token so low rates still
	// admit (see ratelimit.go).
	t.limiter = newTokenBucket(cfg.RateLimit, cfg.RateLimit/1000)
	if cfg.KeyWrite != nil {
		t.kwIdx, err = keywrite.NewIndexer(*cfg.KeyWrite)
		if err != nil {
			return nil, err
		}
		t.kwReg, err = needRegion(regions, "keywrite", uint64(cfg.KeyWrite.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	if cfg.KeyIncrement != nil {
		t.kiIdx, err = keyincrement.NewIndexer(*cfg.KeyIncrement)
		if err != nil {
			return nil, err
		}
		t.kiReg, err = needRegion(regions, "keyincrement", uint64(cfg.KeyIncrement.BufferSize()))
		if err != nil {
			return nil, err
		}
		if rows := cfg.KIAggregationRows; rows > 0 {
			if rows&(rows-1) != 0 {
				return nil, fmt.Errorf("translator: KI aggregation rows %d not a power of two", rows)
			}
			t.kiAgg = newKIAggCache(rows)
		}
	}
	if cfg.Postcarding != nil {
		t.pcCoder, err = postcarding.NewCoder(*cfg.Postcarding)
		if err != nil {
			return nil, err
		}
		rows := cfg.PostcardCacheRows
		if rows == 0 {
			rows = 32768
		}
		t.pcCache, err = postcarding.NewCache(rows, cfg.Postcarding.Hops)
		if err != nil {
			return nil, err
		}
		t.pcReg, err = needRegion(regions, "postcarding", uint64(cfg.Postcarding.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	if cfg.Append != nil {
		batch := cfg.AppendBatch
		if batch == 0 {
			batch = 1
		}
		t.apBatch, err = appendlist.NewBatcher(*cfg.Append, batch)
		if err != nil {
			return nil, err
		}
		t.apReg, err = needRegion(regions, "append", uint64(cfg.Append.BufferSize()))
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

func needRegion(regions []rdma.RegionInfo, label string, minLen uint64) (rdma.RegionInfo, error) {
	g, ok := rdma.FindRegion(regions, label)
	if !ok {
		return rdma.RegionInfo{}, fmt.Errorf("translator: collector does not advertise %q", label)
	}
	if g.Length < minLen {
		return rdma.RegionInfo{}, fmt.Errorf("translator: region %q is %dB, need %dB", label, g.Length, minLen)
	}
	return g, nil
}

// ErrNotDTA reports a packet that was not addressed to the DTA port; the
// caller should forward it as user traffic.
var ErrNotDTA = errors.New("translator: user traffic")

// ProcessFrame parses a full Ethernet frame and processes DTA reports;
// other traffic only counts as forwarded. This is the wire-level ingest
// path; structured producers that already hold a decoded report should
// call ProcessReport and skip the parse entirely.
func (t *Translator) ProcessFrame(frame []byte, nowNs uint64) error {
	p := &t.frame
	if err := wire.DecodeFrame(frame, p); err != nil {
		t.ctr.parseErrors.Inc()
		t.noteParseError()
		return err
	}
	if !p.IsDTA {
		t.ctr.userPackets.Inc()
		return ErrNotDTA
	}
	return t.ProcessReport(&p.Report, nowNs)
}

// ProcessReport translates one already-decoded DTA report into RDMA
// operations. It is the structured fast path: no frame crafting or
// parsing happens between the reporter and the RDMA verbs, and the
// steady state allocates nothing. r (including r.Data) is only read for
// the duration of the call.
func (t *Translator) ProcessReport(r *wire.Report, nowNs uint64) error {
	span := t.ctr.reportSamp.Start(t.ctr.reportNs)
	err := t.processReport(r, nowNs)
	t.traceH.Stamp(trace.StTranslate)
	span.EndExemplar(t.traceH.ID())
	t.traceH = trace.Handle{}
	return err
}

func (t *Translator) processReport(r *wire.Report, nowNs uint64) error {
	if t.WAL != nil {
		t.walScratch.Stage(r)
		if err := t.WAL(&t.walScratch, nowNs); err != nil {
			return err
		}
	}
	switch r.Header.Primitive {
	case wire.PrimKeyWrite:
		t.ctr.kwReports.Inc()
		return t.keyWrite(r, nowNs)
	case wire.PrimKeyIncrement:
		t.ctr.kiReports.Inc()
		return t.keyIncrement(r, nowNs)
	case wire.PrimPostcarding:
		t.ctr.pcReports.Inc()
		return t.postcard(r, nowNs)
	case wire.PrimAppend:
		t.ctr.apReports.Inc()
		return t.append(r, nowNs)
	default:
		t.ctr.unkReports.Inc()
		t.ctr.parseErrors.Inc()
		t.noteParseError()
		return fmt.Errorf("translator: unknown primitive %v", r.Header.Primitive)
	}
}

// Process translates one DTA report into RDMA operations.
//
// Deprecated: Process is the old name of ProcessReport, kept for
// existing callers.
func (t *Translator) Process(r *wire.Report, nowNs uint64) error {
	return t.ProcessReport(r, nowNs)
}

// ProcessStaged translates one staged report without materialising a
// wire.Report at all: the active fields are read straight out of the
// compact record. This is the hottest ingest entry — the engine's shard
// workers feed queued records here — and is semantically identical to
// ProcessReport on the record's View (a full report is materialised
// lazily only if a rate-limit drop must raise a NACK).
func (t *Translator) ProcessStaged(s *wire.StagedReport, nowNs uint64) error {
	span := t.ctr.reportSamp.Start(t.ctr.reportNs)
	err := t.processStaged(s, nowNs)
	t.traceH.Stamp(trace.StTranslate)
	span.EndExemplar(t.traceH.ID())
	t.traceH = trace.Handle{}
	return err
}

func (t *Translator) processStaged(s *wire.StagedReport, nowNs uint64) error {
	if t.WAL != nil {
		if err := t.WAL(s, nowNs); err != nil {
			return err
		}
	}
	switch s.Primitive() {
	case wire.PrimKeyWrite:
		t.ctr.kwReports.Inc()
		key, red := s.KeyWriteArgs()
		return t.keyWriteArgs(key, int(red), s.Flags(), s.Payload(), nackRef{s: s}, nowNs)
	case wire.PrimKeyIncrement:
		t.ctr.kiReports.Inc()
		key, red, delta := s.KeyIncrementArgs()
		ki := wire.KeyIncrement{Redundancy: red, Key: *key, Delta: delta}
		return t.keyIncrementArgs(&ki, nowNs)
	case wire.PrimPostcarding:
		t.ctr.pcReports.Inc()
		key, hop, pathLen, value := s.PostcardArgs()
		pc := wire.Postcard{Key: *key, Hop: hop, PathLen: pathLen, Value: value}
		return t.postcardArgs(&pc, s.Flags(), nackRef{s: s}, nowNs)
	case wire.PrimAppend:
		t.ctr.apReports.Inc()
		return t.appendArgs(s.AppendArgs(), s.Payload(), s.Flags(), nackRef{s: s}, nowNs)
	default:
		t.ctr.unkReports.Inc()
		t.ctr.parseErrors.Inc()
		t.noteParseError()
		return fmt.Errorf("translator: unknown primitive %v", s.Primitive())
	}
}

// drop handles a rate-limited report.
// nackRef is a lazily materialised handle to the report being
// processed, used only on the (rare) rate-limit drop path: the staged
// fast path decompresses a full wire.Report for the NACK callback only
// if a NACK is actually sent.
type nackRef struct {
	r *wire.Report
	s *wire.StagedReport
}

func (n nackRef) report(scratch *wire.Report) *wire.Report {
	if n.r != nil {
		return n.r
	}
	if n.s != nil {
		return n.s.View(scratch)
	}
	// Epoch flushes (FlushAppend/DrainPostcards) carry no originating
	// report; hand the callback a zeroed one, never a stale scratch.
	*scratch = wire.Report{}
	return scratch
}

func (t *Translator) drop(src nackRef) error {
	t.ctr.rateDropped.Inc()
	t.noteShed()
	if t.NACK != nil {
		t.ctr.nacks.Inc()
		t.NACK(src.report(&t.nackScratch))
	}
	return nil
}

// noteShed publishes a rate-gated EvRateShed carrying the cumulative
// drop count. Shedding happens per report under overload, so without
// the gate a sustained episode would lap the journal ring and evict
// the rare control-plane chains the recorder exists to keep.
func (t *Translator) noteShed() {
	if t.Journal.J == nil || !t.shedGate.Allow(shedEventGap) {
		return
	}
	if t.shedCause == 0 {
		t.shedCause = t.Journal.NewCause()
	}
	t.Journal.Emit(journal.EvRateShed, journal.SevWarn, t.shedCause, t.ctr.rateDropped.Load(), 0, 0)
}

// noteParseError is noteShed's twin for malformed ingest.
func (t *Translator) noteParseError() {
	if t.Journal.J == nil || !t.parseGate.Allow(shedEventGap) {
		return
	}
	if t.parseErrCause == 0 {
		t.parseErrCause = t.Journal.NewCause()
	}
	t.Journal.Emit(journal.EvParseError, journal.SevWarn, t.parseErrCause, t.ctr.parseErrors.Load(), 0, 0)
}

// shedEventGap spaces journal events for high-frequency degradation
// (shed reports, parse errors): at most one event per stream per gap.
const shedEventGap = 100 * time.Millisecond

func immediateOf(prim wire.Primitive, flags uint8) *uint32 {
	if flags&wire.FlagImmediate == 0 {
		return nil
	}
	imm := uint32(prim)
	return &imm
}

func (t *Translator) keyWrite(r *wire.Report, nowNs uint64) error {
	return t.keyWriteArgs(&r.KeyWrite.Key, int(r.KeyWrite.Redundancy), r.Header.Flags, r.Data, nackRef{r: r}, nowNs)
}

func (t *Translator) keyWriteArgs(key *wire.Key, n int, flags uint8, data []byte, src nackRef, nowNs uint64) error {
	if t.kwIdx == nil {
		return errors.New("translator: Key-Write not enabled")
	}
	if max := t.cfg.MaxKWRedundancy; max > 0 && n > max {
		n = max
	}
	if n > keywrite.MaxRedundancy {
		n = keywrite.MaxRedundancy
	}
	if n < 1 {
		return nil
	}
	if !t.limiter.allow(nowNs, n) {
		return t.drop(src)
	}
	cfg := t.kwIdx.Config()
	// Slot image: 4B checksum followed by the (padded) value.
	var payload [keywrite.ChecksumSize + wire.MaxData]byte
	csum := t.kwIdx.Checksum(*key)
	payload[0] = byte(csum >> 24)
	payload[1] = byte(csum >> 16)
	payload[2] = byte(csum >> 8)
	payload[3] = byte(csum)
	copy(payload[keywrite.ChecksumSize:keywrite.ChecksumSize+cfg.DataSize], data)
	img := payload[:keywrite.ChecksumSize+cfg.DataSize]
	// Multicast: craft the RoCEv2 WRITE once, then patch the address and
	// PSN per replica — the N copies differ in nothing else, so
	// rebuilding headers and re-copying the payload N times is pure
	// waste (the hardware multicast engine replicates identically).
	span := t.ctr.emitSamp.Start(t.ctr.emitNs)
	slot := t.kwIdx.Slot(0, *key)
	pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(),
		t.kwReg.VA+uint64(t.kwIdx.Offset(slot)), t.kwReg.RKey, img, false, immediateOf(wire.PrimKeyWrite, flags))
	t.pktBuf = pkt[:0]
	t.ctr.crafts.Inc()
	t.ctr.rdmaWrites.Inc()
	t.Emit(pkt)
	for i := 1; i < n; i++ {
		slot := t.kwIdx.Slot(i, *key)
		rdma.RepatchPSNVA(pkt, t.req.NextPSN(), t.kwReg.VA+uint64(t.kwIdx.Offset(slot)))
		t.ctr.repatches.Inc()
		t.ctr.rdmaWrites.Inc()
		t.Emit(pkt)
	}
	t.endEmit(span)
	return nil
}

func (t *Translator) keyIncrement(r *wire.Report, nowNs uint64) error {
	return t.keyIncrementArgs(&r.KeyIncrement, nowNs)
}

func (t *Translator) keyIncrementArgs(ki *wire.KeyIncrement, nowNs uint64) error {
	if t.kiIdx == nil {
		return errors.New("translator: Key-Increment not enabled")
	}
	if t.kiAgg != nil {
		key, delta, red, flushed := t.kiAgg.add(ki)
		if !flushed {
			t.ctr.kiAggregated.Inc()
			return nil
		}
		// An incumbent was evicted: emit its accumulated delta instead.
		agg := wire.KeyIncrement{Redundancy: red, Key: key, Delta: delta}
		return t.emitFetchAdds(&agg, nowNs)
	}
	return t.emitFetchAdds(ki, nowNs)
}

func (t *Translator) emitFetchAdds(ki *wire.KeyIncrement, nowNs uint64) error {
	n := int(ki.Redundancy)
	if n > keyincrement.MaxRedundancy {
		n = keyincrement.MaxRedundancy
	}
	if n < 1 {
		return nil
	}
	if !t.limiter.allow(nowNs, n) {
		t.ctr.rateDropped.Inc()
		t.noteShed()
		return nil
	}
	// Craft once, patch address+PSN per replica (see keyWrite).
	span := t.ctr.emitSamp.Start(t.ctr.emitNs)
	slot := t.kiIdx.Slot(0, ki.Key)
	pkt := rdma.BuildFetchAdd(t.pktBuf, t.req.DestQP, t.req.NextPSN(),
		t.kiReg.VA+uint64(t.kiIdx.Offset(slot)), t.kiReg.RKey, ki.Delta)
	t.pktBuf = pkt[:0]
	t.ctr.crafts.Inc()
	t.ctr.rdmaAtomics.Inc()
	t.Emit(pkt)
	for i := 1; i < n; i++ {
		slot := t.kiIdx.Slot(i, ki.Key)
		rdma.RepatchPSNVA(pkt, t.req.NextPSN(), t.kiReg.VA+uint64(t.kiIdx.Offset(slot)))
		t.ctr.repatches.Inc()
		t.ctr.rdmaAtomics.Inc()
		t.Emit(pkt)
	}
	t.endEmit(span)
	return nil
}

// FlushKeyIncrements drains the pre-aggregation cache (epoch end).
func (t *Translator) FlushKeyIncrements(nowNs uint64) error {
	if t.kiAgg == nil {
		return nil
	}
	for _, e := range t.kiAgg.drain() {
		e := e
		if err := t.emitFetchAdds(&e, nowNs); err != nil {
			return err
		}
	}
	return nil
}

func (t *Translator) postcard(r *wire.Report, nowNs uint64) error {
	return t.postcardArgs(&r.Postcard, r.Header.Flags, nackRef{r: r}, nowNs)
}

func (t *Translator) postcardArgs(pc *wire.Postcard, flags uint8, src nackRef, nowNs uint64) error {
	if q := t.thresholdQuery; q != nil {
		if ev, consumed := q.Offer(pc); consumed {
			if ev == nil {
				return nil
			}
			rep := q.EventReport(ev)
			return t.append(&rep, nowNs)
		}
	}
	if t.pcCoder == nil {
		return errors.New("translator: Postcarding not enabled")
	}
	emits := t.pcCache.Insert(pc)
	for i := range emits {
		if err := t.emitChunk(&emits[i], flags, src, nowNs); err != nil {
			return err
		}
	}
	return nil
}

// emitChunk writes one aggregated flow chunk with redundancy N
// (configured at the store; the paper uses the same N for all flows).
func (t *Translator) emitChunk(e *postcarding.Emit, flags uint8, src nackRef, nowNs uint64) error {
	t.ctr.postcardEmits.Inc()
	cfg := t.pcCoder.Config()
	n := t.cfg.PostcardRedundancy
	if n < 1 {
		n = 1
	}
	if n > postcarding.MaxRedundancy {
		n = postcarding.MaxRedundancy
	}
	if !t.limiter.allow(nowNs, n) {
		return t.drop(src)
	}
	// Encode hop-positionally: missing middle hops stay blank so a
	// query rejects the chunk instead of returning a shifted path.
	span := t.ctr.emitSamp.Start(t.ctr.emitNs)
	payload := t.pcCoder.EncodeChunkSparse(e.Key, &e.Values, t.chunkBuf)
	t.chunkBuf = payload[:0]
	// Craft once, patch address+PSN per redundant chunk (see keyWrite).
	chunk := t.pcCoder.Chunk(0, e.Key)
	pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(),
		t.pcReg.VA+uint64(int(chunk)*cfg.ChunkBytes()), t.pcReg.RKey, payload, false, immediateOf(wire.PrimPostcarding, flags))
	t.pktBuf = pkt[:0]
	t.ctr.crafts.Inc()
	t.ctr.rdmaWrites.Inc()
	t.Emit(pkt)
	for j := 1; j < n; j++ {
		chunk := t.pcCoder.Chunk(j, e.Key)
		rdma.RepatchPSNVA(pkt, t.req.NextPSN(), t.pcReg.VA+uint64(int(chunk)*cfg.ChunkBytes()))
		t.ctr.repatches.Inc()
		t.ctr.rdmaWrites.Inc()
		t.Emit(pkt)
	}
	t.endEmit(span)
	return nil
}

func (t *Translator) append(r *wire.Report, nowNs uint64) error {
	return t.appendArgs(r.Append.ListID, r.Data, r.Header.Flags, nackRef{r: r}, nowNs)
}

func (t *Translator) appendArgs(listID uint32, data []byte, flags uint8, src nackRef, nowNs uint64) error {
	if t.apBatch == nil {
		return errors.New("translator: Append not enabled")
	}
	f, err := t.apBatch.Append(int(listID), data)
	if err != nil {
		return err
	}
	if f == nil {
		return nil
	}
	return t.emitAppendFlush(f, immediateOf(wire.PrimAppend, flags), src, nowNs)
}

func (t *Translator) emitAppendFlush(f *appendlist.Flush, imm *uint32, src nackRef, nowNs uint64) error {
	if !t.limiter.allow(nowNs, 1) {
		return t.drop(src)
	}
	t.ctr.appendFlushes.Inc()
	span := t.ctr.emitSamp.Start(t.ctr.emitNs)
	apCfg := t.cfg.Append
	va := t.apReg.VA + uint64(f.List*apCfg.ListBytes()+f.Index*apCfg.EntrySize)
	pkt := rdma.BuildWrite(t.pktBuf, t.req.DestQP, t.req.NextPSN(), va, t.apReg.RKey, f.Data, false, imm)
	t.pktBuf = pkt[:0]
	t.ctr.crafts.Inc()
	t.ctr.rdmaWrites.Inc()
	t.Emit(pkt)
	t.endEmit(span)
	return nil
}

// FlushAppend forces out partial Append batches for every list (epoch
// end). Postcard cache draining is separate (DrainPostcards).
func (t *Translator) FlushAppend(nowNs uint64) error {
	if t.apBatch == nil {
		return nil
	}
	for l := 0; l < t.cfg.Append.Lists; l++ {
		if f := t.apBatch.FlushPartial(l); f != nil {
			if err := t.emitAppendFlush(f, nil, nackRef{}, nowNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// DrainPostcards flushes every cached postcard row (epoch end).
func (t *Translator) DrainPostcards(nowNs uint64) error {
	if t.pcCache == nil {
		return nil
	}
	for _, e := range t.pcCache.Drain() {
		e := e
		if err := t.emitChunk(&e, 0, nackRef{}, nowNs); err != nil {
			return err
		}
	}
	return nil
}

// HandleAck feeds an acknowledgement from the collector back into the
// PSN tracker; NAK-sequence triggers resynchronisation.
func (t *Translator) HandleAck(pkt []byte) error {
	var p rdma.Packet
	if err := rdma.DecodePacket(pkt, &p); err != nil {
		return err
	}
	before := t.req.Resyncs
	t.req.HandleAck(&p)
	if t.req.Resyncs != before {
		t.ctr.resyncs.Inc()
	}
	return nil
}

// Config returns the translator's configuration (WAL metadata capture,
// diagnostics).
func (t *Translator) Config() Config { return t.cfg }

// PostcardCache exposes the cache for statistics (Fig. 14).
func (t *Translator) PostcardCache() *postcarding.Cache { return t.pcCache }

// AppendBatcher exposes the batcher for statistics.
func (t *Translator) AppendBatcher() *appendlist.Batcher { return t.apBatch }

// Requester exposes the PSN tracker (tests and diagnostics).
func (t *Translator) Requester() *rdma.Requester { return t.req }
