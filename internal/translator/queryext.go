package translator

import (
	"dta/internal/crc"
	"dta/internal/wire"
)

// Query-enhancing extension (§7 of the paper): when a query is known
// ahead of time, the translator can evaluate part of it in the data
// plane. The paper's example is
//
//	SELECT flowID, path WHERE SUM(latency) > T
//
// The translator waits for the per-hop latency postcards of a flow, sums
// them, and reports the flow only when the end-to-end latency exceeds
// the threshold — turning a stream of postcards into a trickle of
// threshold events appended to a list.
//
// ThresholdQuery is implemented as a pre-processor in front of Process:
// postcarding reports that belong to the query's flow space are consumed
// here, and an Append report is synthesised when a flow trips the
// threshold.

// ThresholdQuery aggregates per-hop values at the translator and emits
// an event when a flow's sum exceeds a threshold.
type ThresholdQuery struct {
	// Threshold is T: the minimum SUM(value) that triggers a report.
	Threshold uint64
	// ListID is the Append list receiving threshold events.
	ListID uint32
	// Hops is the expected path bound B.
	Hops int

	rows []tqRow
	eng  *crc.Engine
	mask uint64
	// Stats counts query activity.
	Stats ThresholdQueryStats
}

// ThresholdQueryStats counts aggregation outcomes.
type ThresholdQueryStats struct {
	Postcards uint64
	Completed uint64
	Triggered uint64
	Evicted   uint64
}

type tqRow struct {
	key      wire.Key
	occupied bool
	present  uint16
	count    uint8
	sum      uint64
}

// NewThresholdQuery builds the query with a cache of rows (a power of
// two).
func NewThresholdQuery(rows int, hops int, threshold uint64, listID uint32) *ThresholdQuery {
	if rows <= 0 || rows&(rows-1) != 0 {
		rows = 1 << 15
	}
	if hops < 1 || hops > 16 {
		hops = 5
	}
	return &ThresholdQuery{
		Threshold: threshold,
		ListID:    listID,
		Hops:      hops,
		rows:      make([]tqRow, rows),
		eng:       crc.New(crc.CDROMEDC),
		mask:      uint64(rows - 1),
	}
}

// Event is a triggered threshold report: the flow and its summed value.
type Event struct {
	Key wire.Key
	Sum uint64
}

// Offer consumes a postcard if it belongs to this query, returning any
// triggered event and whether the postcard was consumed.
func (q *ThresholdQuery) Offer(p *wire.Postcard) (ev *Event, consumed bool) {
	q.Stats.Postcards++
	r := &q.rows[uint64(q.eng.Sum(p.Key[:]))&q.mask]
	if r.occupied && r.key != p.Key {
		// Collision: drop the incumbent's partial sum. A production
		// deployment would size the cache for the flow arrival rate, as
		// Postcarding's cache does.
		q.Stats.Evicted++
		*r = tqRow{}
	}
	if !r.occupied {
		r.occupied = true
		r.key = p.Key
	}
	hop := uint(p.Hop)
	if hop >= 16 {
		hop = 15
	}
	if r.present&(1<<hop) == 0 {
		r.present |= 1 << hop
		r.count++
		r.sum += uint64(p.Value)
	}
	target := uint8(q.Hops)
	if p.PathLen != 0 && p.PathLen < target {
		target = p.PathLen
	}
	if r.count < target {
		return nil, true
	}
	q.Stats.Completed++
	sum := r.sum
	key := r.key
	*r = tqRow{}
	if sum <= q.Threshold {
		return nil, true
	}
	q.Stats.Triggered++
	return &Event{Key: key, Sum: sum}, true
}

// EventReport renders a triggered event as the Append report the
// translator forwards to the collector: 16 B flow key + 8 B sum.
func (q *ThresholdQuery) EventReport(ev *Event) wire.Report {
	data := make([]byte, wire.KeySize+8)
	copy(data, ev.Key[:])
	for i := 0; i < 8; i++ {
		data[wire.KeySize+i] = byte(ev.Sum >> uint(56-8*i))
	}
	return wire.Report{
		Header: wire.Header{Version: wire.Version, Primitive: wire.PrimAppend},
		Append: wire.Append{ListID: q.ListID},
		Data:   data,
	}
}

// InstallThresholdQuery attaches the query to the translator: matching
// postcards are aggregated here instead of the Postcarding path, and
// triggered events enter the Append path.
func (t *Translator) InstallThresholdQuery(q *ThresholdQuery) {
	t.thresholdQuery = q
}
