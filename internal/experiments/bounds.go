package experiments

import (
	"fmt"
	"math/rand"

	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/wire"
)

// Bounds cross-checks the Appendix A.5/A.6 analytic bounds against
// Monte-Carlo simulation of the actual stores.
func (r Runner) Bounds() *Table {
	t := &Table{
		ID:      "bounds",
		Title:   "Analytic bounds (A.5/A.6) vs simulation",
		Columns: []string{"Case", "Empirical", "Bound", "Holds"},
	}
	rnd := rand.New(rand.NewSource(r.P.Seed))
	trials := r.P.trials() * 10

	// Key-Write empty-return for several (N, α).
	const slots = 1 << 10
	for _, c := range []struct {
		n int
		a float64
	}{{1, 0.1}, {2, 0.1}, {2, 0.5}, {4, 0.1}} {
		fail := 0
		for trial := 0; trial < trials; trial++ {
			s, _ := keywrite.NewStore(keywrite.Config{Slots: slots, DataSize: 4})
			k := wire.KeyFromUint64(rnd.Uint64())
			s.Write(k, []byte{1, 2, 3, 4}, c.n)
			for i := 0; i < int(c.a*slots); i++ {
				s.Write(wire.KeyFromUint64(rnd.Uint64()|1<<63), []byte{9, 9, 9, 9}, c.n)
			}
			res, _ := s.Query(k, c.n, 1)
			if !res.Found {
				fail++
			}
		}
		emp := float64(fail) / float64(trials)
		bound := keywrite.EmptyReturnBound(c.a, c.n, 32)
		t.AddRow(fmt.Sprintf("KW empty-return N=%d α=%.1f", c.n, c.a),
			fmtPct(emp), fmtPct(bound), holds(emp, bound, trials))
	}

	// Key-Write wrong-output with a deliberately narrow checksum (b=8)
	// so collisions are observable.
	{
		wrong := 0
		alpha := 1.0
		for trial := 0; trial < trials; trial++ {
			s, _ := keywrite.NewStore(keywrite.Config{Slots: slots, DataSize: 4, ChecksumBits: 8})
			k := wire.KeyFromUint64(rnd.Uint64())
			s.Write(k, []byte{1, 2, 3, 4}, 2)
			for i := 0; i < int(alpha*slots); i++ {
				s.Write(wire.KeyFromUint64(rnd.Uint64()|1<<63), []byte{9, 9, 9, 9}, 2)
			}
			res, _ := s.Query(k, 2, 1)
			if res.Found && res.Data[0] != 1 {
				wrong++
			}
		}
		emp := float64(wrong) / float64(trials)
		bound := keywrite.WrongOutputBound(alpha, 2, 8)
		t.AddRow("KW wrong-output N=2 b=8 α=1.0", fmtPct(emp), fmtPct(bound), holds(emp, bound, trials))
	}

	// Postcarding empty-return at B=5.
	{
		cfg := postcarding.Config{Chunks: 1 << 9, Hops: 5, Values: seqValues(64)}
		fail := 0
		alpha := 0.1
		for trial := 0; trial < trials; trial++ {
			s, _ := postcarding.NewStore(cfg)
			k := wire.KeyFromUint64(rnd.Uint64())
			path := []uint32{1, 2, 3, 4, 5}
			s.Write(k, path, 5, 2)
			for i := 0; i < int(alpha*float64(cfg.Chunks)); i++ {
				s.Write(wire.KeyFromUint64(rnd.Uint64()|1<<63), []uint32{6, 7, 8, 9, 10}, 5, 2)
			}
			res, _ := s.Query(k, 2)
			if !res.Found {
				fail++
			}
		}
		emp := float64(fail) / float64(trials)
		bound := cfg.EmptyReturnBound(alpha, 2)
		t.AddRow("PC empty-return N=2 B=5 α=0.1", fmtPct(emp), fmtPct(bound), holds(emp, bound, trials))
		t.AddRow("PC wrong-output N=2 B=5 α=0.1 (analytic)", "-",
			fmt.Sprintf("%.1e", cfg.WrongOutputBound(alpha, 2)), "yes")
	}
	t.AddNote("paper worked example: N=2, b=32, α=0.1 gives <=3.3%% empty-return, <=1.6e-11 wrong output")
	return t
}

// holds reports whether the empirical rate respects the bound, allowing
// ~3 sigma of binomial sampling noise.
func holds(emp, bound float64, trials int) string {
	sigma := 3 * sqrt(bound*(1-bound)/float64(trials))
	if emp <= bound+sigma+1e-9 {
		return "yes"
	}
	return "NO"
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}
