package experiments

import (
	"fmt"

	"dta/internal/asic"
)

// Fig9 reproduces Fig. 9: reporter resource footprint by export
// mechanism.
func (r Runner) Fig9() *Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Reporter hardware cost of report generation (Tofino resource %, export delta only)",
		Columns: append([]string{"Resource"}, "RDMA", "DTA", "UDP"),
	}
	_, rdmaF := asic.ReporterFootprint(asic.ExportRDMA)
	_, dtaF := asic.ReporterFootprint(asic.ExportDTA)
	_, udpF := asic.ReporterFootprint(asic.ExportUDP)
	for _, res := range asic.Resources() {
		t.AddRow(res.String(),
			fmt.Sprintf("%.1f", rdmaF.Get(res)),
			fmt.Sprintf("%.1f", dtaF.Get(res)),
			fmt.Sprintf("%.1f", udpF.Get(res)))
	}
	t.AddNote("paper: DTA imposes an almost identical footprint to UDP; RDMA roughly doubles it")
	return t
}

// Table3 reproduces Table 3: translator footprint with and without
// Append batching.
func (r Runner) Table3() *Table {
	base := asic.TranslatorFootprint(1)
	b16 := asic.TranslatorFootprint(16)
	t := &Table{
		ID:      "table3",
		Title:   "Translator resource footprint (Key-Write + Postcarding + Append)",
		Columns: []string{"Resource", "Base", "+Batching (16x4B)", "Total"},
	}
	for _, res := range asic.Resources() {
		t.AddRow(res.String(),
			fmt.Sprintf("%.1f%%", base.Get(res)),
			fmt.Sprintf("+%.1f%%", b16.Get(res)-base.Get(res)),
			fmt.Sprintf("%.1f%%", b16.Get(res)))
	}
	if res, v := b16.Max(); true {
		t.AddNote("max class %s at %.1f%%: fits first-generation Tofino with a majority of resources free", res, v)
	}
	return t
}
