package experiments

import (
	"fmt"
	"math/rand"

	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// Ablation studies for the design choices DESIGN.md §6 calls out. These
// have no single figure in the paper but quantify the arguments made in
// §4 and §7.
func (r Runner) Ablation() *Table {
	t := &Table{
		ID:      "ablation",
		Title:   "Design-choice ablations",
		Columns: []string{"Study", "Setting", "Result"},
	}
	r.ablatePostcardingVsKW(t)
	r.ablateChecksumWidth(t)
	r.ablateQueuePairs(t)
	r.ablateKIAggregation(t)
	t.AddNote("empirical cells carry ±3σ binomial sampling noise at the configured trial count")
	return t
}

// ablatePostcardingVsKW reproduces §4's numeric argument: collecting a
// 5-hop path with Postcarding (32-bit XOR-encoded slots) versus one
// Key-Write per hop (64-bit checksum+value slots) — same memory, fewer
// writes, far lower wrong-output probability.
func (r Runner) ablatePostcardingVsKW(t *Table) {
	nic := rdma.BlueField2()
	// Writes per 5-hop path report.
	kwRate := nic.ReportsPerSec(keywrite.ChecksumSize+4, 5, 1, 4) // 5 writes per path
	pcRate := nic.ReportsPerSec(32, 1, 1, 4)                      // 1 chunk write per path
	t.AddRow("Postcarding vs KW/hop", "writes per path", fmt.Sprintf("KW: 5, Postcarding: 1 (%.1fx path rate)", pcRate/kwRate))

	// Wrong-output probability at the paper's parameters: |V|=2^18, B=5,
	// N=2, b=32, α=0.1.
	pcCfg := postcarding.Config{Chunks: 1 << 20, Hops: 5, SlotBits: 32,
		Values: make([]uint32, 1<<18)}
	pcWrong := pcCfg.WrongOutputBound(0.1, 2)
	// KW per hop: each of 5 hops can be wrong; union bound.
	kwWrong := 5 * keywrite.WrongOutputBound(0.1, 2, 32)
	t.AddRow("Postcarding vs KW/hop", "wrong-output bound",
		fmt.Sprintf("KW/hop: %.1e, Postcarding: %.1e (half the bits per slot)", kwWrong, pcWrong))
}

// ablateChecksumWidth sweeps the Key-Write checksum width b: narrower
// checksums save memory but admit measurable wrong outputs.
func (r Runner) ablateChecksumWidth(t *Table) {
	rnd := rand.New(rand.NewSource(r.P.Seed))
	trials := r.P.trials() * 5
	const slots = 1 << 10
	alpha := 1.0
	for _, b := range []int{8, 16, 32} {
		wrong := 0
		for trial := 0; trial < trials; trial++ {
			s, _ := keywrite.NewStore(keywrite.Config{Slots: slots, DataSize: 4, ChecksumBits: b})
			k := wire.KeyFromUint64(rnd.Uint64())
			s.Write(k, []byte{1, 2, 3, 4}, 2)
			for i := 0; i < slots; i++ {
				s.Write(wire.KeyFromUint64(rnd.Uint64()|1<<63), []byte{9, 9, 9, 9}, 2)
			}
			res, _ := s.Query(k, 2, 1)
			if res.Found && res.Data[0] != 1 {
				wrong++
			}
		}
		bound := keywrite.WrongOutputBound(alpha, 2, b)
		t.AddRow("Checksum width", fmt.Sprintf("b=%d", b),
			fmt.Sprintf("wrong-output %.3f%% (bound %.3f%%)", 100*float64(wrong)/float64(trials), 100*bound))
	}
}

// ablateQueuePairs quantifies why the translator terminates RDMA instead
// of letting every switch hold queue pairs ([15]'s up-to-5x collapse).
func (r Runner) ablateQueuePairs(t *Table) {
	nic := rdma.BlueField2()
	base := nic.MessagesPerSec(8, 4)
	for _, qps := range []int{4, 64, 1024, 16384} {
		rate := nic.MessagesPerSec(8, qps)
		t.AddRow("Queue pairs (no translator)", fmt.Sprintf("%d QPs", qps),
			fmt.Sprintf("%s msgs/s (%.2fx of few-QP rate)", fmtRate(rate), rate/base))
	}
	t.AddNote("one translator needs a handful of QPs for thousands of reporters; direct switch-to-collector RDMA needs one per switch")
}

// ablateKIAggregation measures the atomic-operation savings of
// translator-side Key-Increment pre-aggregation on a skewed workload.
func (r Runner) ablateKIAggregation(t *Table) {
	// Zipf-ish skew: key j chosen with weight 1/(j+1).
	rnd := rand.New(rand.NewSource(r.P.Seed))
	const keys = 1 << 10
	weights := make([]float64, keys)
	total := 0.0
	for j := range weights {
		weights[j] = 1 / float64(j+1)
		total += weights[j]
	}
	pick := func() uint64 {
		x := rnd.Float64() * total
		for j, w := range weights {
			x -= w
			if x <= 0 {
				return uint64(j)
			}
		}
		return keys - 1
	}
	n := 50000
	if r.P.Quick {
		n = 10000
	}
	for _, rows := range []int{0, 256, 4096} {
		var cache map[uint64]bool
		var rowOf []uint64
		emitted := 0
		if rows > 0 {
			cache = make(map[uint64]bool)
			rowOf = make([]uint64, rows)
		}
		for i := 0; i < n; i++ {
			k := pick()
			if rows == 0 {
				emitted++
				continue
			}
			slot := int(k) & (rows - 1)
			if cache[k] {
				continue // absorbed
			}
			if occupied := rowOf[slot]; occupied != 0 && occupied-1 != k {
				emitted++ // evict incumbent
				delete(cache, occupied-1)
			}
			rowOf[slot] = k + 1
			cache[k] = true
		}
		label := "disabled"
		if rows > 0 {
			label = fmt.Sprintf("%d rows", rows)
		}
		t.AddRow("KI pre-aggregation", label,
			fmt.Sprintf("%d fetch-adds for %d reports (%.1f%%)", emitted, n, 100*float64(emitted)/float64(n)))
	}
}
