package experiments

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"dta/internal/core/keywrite"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// Fig10 reproduces Fig. 10: Key-Write collection rate vs redundancy for
// 4B postcards and 20B path traces.
func (r Runner) Fig10() *Table {
	nic := rdma.BlueField2()
	t := &Table{
		ID:      "fig10",
		Title:   "Key-Write collection rate vs redundancy (NIC model + local Go data path)",
		Columns: []string{"N", "INT postcards 4B", "Path tracing 20B", "Go path 4B (this machine)"},
	}
	// Local software rate: time the actual store write path.
	localRate := func(n int) float64 {
		s, _ := keywrite.NewStore(keywrite.Config{Slots: 1 << 20, DataSize: 4})
		data := []byte{1, 2, 3, 4}
		iters := 400000
		if r.P.Quick {
			iters = 50000
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			s.Write(wire.KeyFromUint64(uint64(i)), data, n)
		}
		return float64(iters) / time.Since(start).Seconds()
	}
	for n := 1; n <= 4; n++ {
		r4 := nic.ReportsPerSec(keywrite.ChecksumSize+4, float64(n), 1, 4)
		r20 := nic.ReportsPerSec(keywrite.ChecksumSize+20, float64(n), 1, 4)
		t.AddRow(fmt.Sprint(n), fmtRate(r4), fmtRate(r20), fmtRate(localRate(n)))
	}
	t.AddNote("paper: ~100M reports/s at N=1 falling as 1/N; 20B payloads track 4B until line rate")
	return t
}

// Fig11 reproduces Fig. 11: Key-Write query rate vs cores, with the
// per-query breakdown. The query path is executed for real, in parallel.
func (r Runner) Fig11() *Table {
	slots := uint64(1<<29) / uint64(r.P.scale()) / 8 // 4GiB of 8B slots, scaled
	if slots < 1<<16 {
		slots = 1 << 16
	}
	cfg := keywrite.Config{Slots: pow2Floor(slots), DataSize: 4}
	s, err := keywrite.NewStore(cfg)
	if err != nil {
		panic(err)
	}
	loaded := int(cfg.Slots / 4)
	if r.P.Quick && loaded > 100000 {
		loaded = 100000
	}
	data := []byte{1, 2, 3, 4}
	for i := 0; i < loaded; i++ {
		s.Write(wire.KeyFromUint64(uint64(i)), data, 2)
	}

	maxCores := r.P.MaxCores
	if maxCores <= 0 {
		maxCores = runtime.GOMAXPROCS(0)
	}
	queries := 300000
	if r.P.Quick {
		queries = 30000
	}
	t := &Table{
		ID:      "fig11",
		Title:   "Key-Write query rate vs cores (real parallel execution, N=2)",
		Columns: []string{"Cores", "Queries/s"},
	}
	for cores := 1; cores <= maxCores; cores *= 2 {
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < cores; c++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(int64(seed)))
				for i := 0; i < queries/cores; i++ {
					k := wire.KeyFromUint64(uint64(rnd.Intn(loaded)))
					if _, err := s.Query(k, 2, 1); err != nil {
						panic(err)
					}
				}
			}(c + 1)
		}
		wg.Wait()
		rate := float64(queries) / time.Since(start).Seconds()
		t.AddRow(fmt.Sprint(cores), fmtRate(rate))
	}

	// Per-query breakdown: checksum+slot hashing vs memory reads, as
	// Fig. 11b splits Checksum vs Get Slot(s).
	idx := s.Indexer()
	iters := 2000000
	if r.P.Quick {
		iters = 200000
	}
	start := time.Now()
	var sink uint32
	for i := 0; i < iters; i++ {
		sink += idx.Checksum(wire.KeyFromUint64(uint64(i)))
	}
	csumNs := time.Since(start).Seconds() * 1e9 / float64(iters)
	start = time.Now()
	var sink2 uint64
	for i := 0; i < iters; i++ {
		sink2 += idx.Slot(0, wire.KeyFromUint64(uint64(i)))
		sink2 += idx.Slot(1, wire.KeyFromUint64(uint64(i)))
	}
	slotNs := time.Since(start).Seconds() * 1e9 / float64(iters)
	_ = sink
	_ = sink2
	t.AddNote("per-query breakdown (N=2): checksum %.0fns, slot hashing+reads %.0fns — hashing dominates, as Fig. 11b", csumNs, slotNs)
	t.AddNote("paper: 7.1M q/s with 4 cores at N=2, scaling near-linearly")
	return t
}

func pow2Floor(v uint64) uint64 {
	p := uint64(1)
	for p*2 <= v {
		p *= 2
	}
	return p
}

// Fig12 reproduces Fig. 12: query success rate vs load factor and N.
func (r Runner) Fig12() *Table {
	const slots = 1 << 12
	const tracked = 256
	ns := []int{1, 2, 4, 8}
	t := &Table{
		ID:      "fig12",
		Title:   "Key-Write query success vs load factor (simulated store; analytic estimate in brackets)",
		Columns: []string{"Load α", "N=1", "N=2", "N=4", "N=8", "Best N"},
	}
	rnd := rand.New(rand.NewSource(r.P.Seed))
	for _, alpha := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		row := []string{fmt.Sprintf("%.1f", alpha)}
		for _, n := range ns {
			s, _ := keywrite.NewStore(keywrite.Config{Slots: slots, DataSize: 4})
			// Write tracked keys, then α·M interfering keys.
			for i := 0; i < tracked; i++ {
				s.Write(wire.KeyFromUint64(uint64(i)), []byte{1, 1, 1, 1}, n)
			}
			others := int(alpha * slots)
			for i := 0; i < others; i++ {
				s.Write(wire.KeyFromUint64(rnd.Uint64()|1<<63), []byte{2, 2, 2, 2}, n)
			}
			ok := 0
			for i := 0; i < tracked; i++ {
				res, _ := s.Query(wire.KeyFromUint64(uint64(i)), n, 1)
				if res.Found && res.Data[0] == 1 {
					ok++
				}
			}
			got := float64(ok) / tracked
			est := keywrite.QuerySuccessEstimate(alpha, n)
			row = append(row, fmt.Sprintf("%.0f%% [%.0f%%]", got*100, est*100))
		}
		row = append(row, fmt.Sprintf("N=%d", keywrite.OptimalRedundancy(alpha, 8)))
		t.AddRow(row...)
	}
	t.AddNote("paper: N=2 is the broad sweet spot; very high load favours N=1")
	return t
}

// Fig13 reproduces Fig. 13: data longevity — queryability vs report age
// for several storage sizes (scaled by 1/Scale; load factors preserved).
func (r Runner) Fig13() *Table {
	scale := uint64(r.P.scale())
	slotSize := uint64(keywrite.ChecksumSize + 20) // 20B path data
	sizesGiB := []float64{1, 3, 10, 30}
	ages := []uint64{1e6, 10e6, 40e6, 100e6}
	if r.P.Quick {
		sizesGiB = []float64{1, 3}
		ages = []uint64{1e6, 10e6}
	}
	t := &Table{
		ID:    "fig13",
		Title: fmt.Sprintf("Key-Write longevity: 5-hop path queryability vs age (geometry scaled 1/%d)", scale),
	}
	t.Columns = []string{"Age (newer keys)"}
	for _, g := range sizesGiB {
		t.Columns = append(t.Columns, fmt.Sprintf("%.0fGiB", g))
	}

	maxAge := ages[len(ages)-1] / scale
	const sample = 400
	// Per size: write maxAge+sample keys; key i's age is total-i.
	results := make(map[float64]map[uint64]float64)
	for _, g := range sizesGiB {
		slots := pow2Floor(uint64(g*float64(uint64(1)<<30)) / slotSize / scale)
		s, err := keywrite.NewStore(keywrite.Config{Slots: slots, DataSize: 20})
		if err != nil {
			panic(err)
		}
		data := make([]byte, 20)
		total := maxAge + sample
		for i := uint64(0); i < total; i++ {
			binary.BigEndian.PutUint64(data, i)
			s.Write(wire.KeyFromUint64(i), data, 2)
		}
		results[g] = make(map[uint64]float64)
		for _, age := range ages {
			a := age / scale
			if a >= total {
				continue
			}
			ok := 0
			for j := uint64(0); j < sample; j++ {
				i := total - a - sample + j
				res, _ := s.Query(wire.KeyFromUint64(i), 2, 1)
				if res.Found && binary.BigEndian.Uint64(res.Data) == i {
					ok++
				}
			}
			results[g][age] = float64(ok) / sample
		}
	}
	for _, age := range ages {
		row := []string{fmtRate(float64(age))}
		for _, g := range sizesGiB {
			row = append(row, fmtPct(results[g][age]))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: 3GiB gives 99.3%% at 10M age falling to 44.5%% at 100M; 30GiB gives 99.99%% at 10M and 98.2%% at 100M")
	return t
}
