package experiments

import (
	"fmt"

	"dta/internal/baseline"
	"dta/internal/baseline/btrdb"
	"dta/internal/baseline/intcollector"
	"dta/internal/baseline/multilog"
	"dta/internal/collector"
	"dta/internal/core/appendlist"
	"dta/internal/core/keyincrement"
	"dta/internal/core/keywrite"
	"dta/internal/core/postcarding"
	"dta/internal/costmodel"
	"dta/internal/rdma"
	"dta/internal/telemetry/marple"
	"dta/internal/trace"
	"dta/internal/translator"
	"dta/internal/wire"
)

// cpuBaselineRate projects a collector's 16-core throughput on the
// paper's server from an instrumented ingest run.
func cpuBaselineRate(c baseline.Collector, n int) float64 {
	buf := make([]byte, baseline.ReportSize)
	for i := 0; i < n; i++ {
		rep := baseline.Report{
			SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 0, 1},
			SrcPort: uint16(i), DstPort: 443, Proto: 6,
			SwitchID: uint32(i % 512), Value: uint32(i), TimestampNs: uint64(i) * 100,
		}
		rep.Encode(buf)
		c.Ingest(buf)
	}
	pr := c.Counters().PerReport()
	rate, _ := costmodel.Xeon4114().Throughput(pr.TotalCycles(), pr.TotalDRAMOps(), 16)
	return rate
}

// dtaRates returns the NIC-model collection rates of the three DTA bars
// of Fig. 7a: Key-Write (N=1), Postcarding (5-hop chunks) and Append
// (batch 16), in reports/s.
func dtaRates() (kw, pc, ap float64) {
	nic := rdma.BlueField2()
	kw = nic.ReportsPerSec(keywrite.ChecksumSize+4, 1, 1, 4) // 4B INT + checksum
	pc = nic.ReportsPerSec(32, 1, 5, 4)                      // padded 32B chunk = 5 postcards
	ap = nic.ReportsPerSec(64, 1, 16, 4)                     // 16×4B batch
	return kw, pc, ap
}

// Fig7a reproduces Fig. 7a: generic 4B INT collection.
func (r Runner) Fig7a() *Table {
	n := 20000
	if r.P.Quick {
		n = 4000
	}
	bt := cpuBaselineRate(btrdb.New(1e6), n)
	ml := cpuBaselineRate(multilog.New(1<<16), n)
	ic := cpuBaselineRate(intcollector.New(1<<14, 0), n)
	kw, pc, ap := dtaRates()
	best := bt
	if ml > best {
		best = ml
	}
	if ic > best {
		best = ic
	}
	t := &Table{
		ID:      "fig7a",
		Title:   "Generic 4B INT collection (CPU baselines: 16 cores projected; DTA: NIC model)",
		Columns: []string{"Collector", "Reports/s", "vs best CPU"},
	}
	rows := []struct {
		name string
		rate float64
	}{
		{"BTrDB (CPU)", bt},
		{"MultiLog (CPU)", ml},
		{"INTCollector (CPU)", ic},
		{"DTA Key-Write", kw},
		{"DTA Postcarding", pc},
		{"DTA Append", ap},
	}
	for _, row := range rows {
		t.AddRow(row.name, fmtRate(row.rate), fmt.Sprintf("%.1fx", row.rate/best))
	}
	t.AddNote("paper: Key-Write >=4x, Postcarding 16x, Append 41x over the best CPU collector")
	return t
}

// marpleWorkload measures per-switch report rates of the three Marple
// queries of Fig. 7b over the synthetic DC trace.
func (r Runner) marpleWorkload() (lossyPerPkt, timeoutPerPkt, flowletPerPkt float64) {
	cfg := trace.DefaultConfig()
	cfg.Seed = r.P.Seed
	cfg.LossRate = 0.004
	cfg.TimeoutRate = 0.25
	cfg.FlowletGapProb = 0.02
	g, _ := trace.NewGenerator(cfg)
	lossy := marple.NewLossyFlows(64, 1, 0, 8)
	timeouts := marple.NewTCPTimeouts(1)
	flowlets := marple.NewFlowletSizes(8, 8)
	pkts := 200000
	if r.P.Quick {
		pkts = 20000
	}
	var nL, nT, nF int
	var buf []wire.Report
	for i := 0; i < pkts; i++ {
		p := g.Next()
		buf = lossy.Process(&p, buf[:0])
		nL += len(buf)
		buf = timeouts.Process(&p, buf[:0])
		nT += len(buf)
		buf = flowlets.Process(&p, buf[:0])
		nF += len(buf)
	}
	n := float64(pkts)
	return float64(nL) / n, float64(nT) / n, float64(nF) / n
}

// Fig7b reproduces Fig. 7b: Marple reporters per collector.
func (r Runner) Fig7b() *Table {
	lossyPP, toPP, flPP := r.marpleWorkload()
	pps := switchPps()
	n := 20000
	if r.P.Quick {
		n = 4000
	}
	mlRate := cpuBaselineRate(multilog.New(1<<16), n)
	nic := rdma.BlueField2()

	// Per-switch report rates.
	lossyRate := lossyPP * pps
	toRate := toPP * pps
	flRate := flPP * pps

	// DTA capacities per query (the primitive each query maps to, §6.1).
	lossyDTA := nic.ReportsPerSec(marple.LossyEntry*16, 1, 16, 4) // Append batch 16
	toDTA := nic.ReportsPerSec(keywrite.ChecksumSize+4, 1, 1, 4)  // Key-Write
	flDTA := nic.ReportsPerSec(marple.FlowletEntry*16, 1, 16, 4)  // Append batch 16

	t := &Table{
		ID:      "fig7b",
		Title:   "Marple reporters per collector (capacity / per-switch rate)",
		Columns: []string{"Query", "Per-switch rate", "MultiLog cap.", "DTA cap.", "Improvement"},
	}
	rows := []struct {
		name           string
		perSwitch      float64
		cpuCap, dtaCap float64
	}{
		{"Lossy Flows (Append)", lossyRate, mlRate, lossyDTA},
		{"TCP Timeout (Key-Write)", toRate, mlRate, toDTA},
		{"Flowlet Sizes (Append)", flRate, mlRate, flDTA},
	}
	for _, row := range rows {
		cpuSwitches := row.cpuCap / row.perSwitch
		dtaSwitches := row.dtaCap / row.perSwitch
		t.AddRow(row.name, fmtRate(row.perSwitch)+"pps",
			fmt.Sprintf("%.0f sw", cpuSwitches),
			fmt.Sprintf("%.0f sw", dtaSwitches),
			fmt.Sprintf("%.0fx", dtaSwitches/cpuSwitches))
	}
	t.AddNote("paper improvements: Lossy Flows 15x, TCP Timeout 8x, Flowlet Sizes 235x; ours depend on the NIC batch model but preserve ordering (Append-batched >> Key-Write)")
	return t
}

// fig8Rig builds a collector+translator pair and pushes reports through.
func fig8Rig(prim wire.Primitive, reports int, batch int, redundancy int) float64 {
	kw := keywrite.Config{Slots: 1 << 12, DataSize: 4}
	ki := keyincrement.Config{Slots: 1 << 12}
	pc := postcarding.Config{Chunks: 1 << 10, Hops: 5, Values: seqValues(256)}
	ap := appendlist.Config{Lists: 4, EntriesPerList: 1 << 12, EntrySize: 4}
	host, err := collector.New(collector.Config{KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap})
	if err != nil {
		panic(err)
	}
	tr, err := translator.New(translator.Config{
		KeyWrite: &kw, KeyIncrement: &ki, Postcarding: &pc, Append: &ap,
		PostcardCacheRows: 1 << 12, AppendBatch: batch, PostcardRedundancy: redundancy,
	}, host.Listener())
	if err != nil {
		panic(err)
	}
	tr.Emit = func(pkt []byte) {
		ack, err := host.Ingest(pkt)
		if err != nil {
			panic(err)
		}
		if ack != nil {
			tr.HandleAck(ack)
		}
	}
	for i := 0; i < reports; i++ {
		var rep wire.Report
		rep.Header = wire.Header{Version: wire.Version, Primitive: prim}
		switch prim {
		case wire.PrimKeyWrite:
			rep.KeyWrite = wire.KeyWrite{Redundancy: uint8(redundancy), Key: wire.KeyFromUint64(uint64(i))}
			rep.Data = []byte{1, 2, 3, 4}
		case wire.PrimPostcarding:
			flow := uint64(i / 5)
			rep.Postcard = wire.Postcard{
				Key: wire.KeyFromUint64(flow), Hop: uint8(i % 5), PathLen: 5,
				Value: uint32(i%256 + 1),
			}
		case wire.PrimAppend:
			rep.Append = wire.Append{ListID: uint32(i % 4)}
			rep.Data = []byte{1, 2, 3, 4}
		}
		if err := tr.Process(&rep, 0); err != nil {
			panic(err)
		}
	}
	host.Device().AttributeReports(uint64(reports))
	return host.Device().Mem.PerReport()
}

func seqValues(n int) []uint32 {
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = uint32(i + 1)
	}
	return vs
}

// Fig8 reproduces Fig. 8: memory instructions per report.
func (r Runner) Fig8() *Table {
	n := 20000
	if r.P.Quick {
		n = 4000
	}
	ml := multilog.New(1 << 16)
	cpuBaselineRate(ml, n) // reuse to populate counters
	mlMem := ml.Counters().PerReport().TotalMemOps()

	kwMem := fig8Rig(wire.PrimKeyWrite, n, 1, 2)
	pcMem := fig8Rig(wire.PrimPostcarding, n-n%5, 1, 2)
	apMem := fig8Rig(wire.PrimAppend, n, 16, 1)

	t := &Table{
		ID:      "fig8",
		Title:   "Memory instructions per ingested report (N=2, B=5, batch 16)",
		Columns: []string{"Collector", "Mem instr/report", "Paper"},
	}
	t.AddRow("MultiLog", fmt.Sprintf("%.1f", mlMem), "343")
	t.AddRow("DTA Key-Write", fmt.Sprintf("%.2f", kwMem), "2.00")
	t.AddRow("DTA Postcarding", fmt.Sprintf("%.2f", pcMem), "0.40")
	t.AddRow("DTA Append", fmt.Sprintf("%.2f", apMem), "0.06")
	t.AddNote("MultiLog counts our structural accesses (the paper's 343 includes allocator/metadata traffic); the orders-of-magnitude gap to DTA is the result that matters")
	return t
}
