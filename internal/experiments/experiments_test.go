package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickRunner() Runner {
	p := DefaultParams()
	p.Quick = true
	p.MaxCores = 2
	return Runner{P: p}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	r := quickRunner()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := r.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != id {
				t.Errorf("table ID = %q", tbl.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Errorf("row %v has %d cells, want %d", row, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			tbl.Fprint(&buf)
			if !strings.Contains(buf.String(), tbl.Title) {
				t.Error("rendered output missing title")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := quickRunner()
	if _, err := r.Run("fig99"); err == nil {
		t.Error("unknown ID accepted")
	}
}

// parseRate inverts fmtRate for assertions.
func parseRate(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "pps")
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "B"):
		mult, s = 1e9, strings.TrimSuffix(s, "B")
	case strings.HasSuffix(s, "M"):
		mult, s = 1e6, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "K"):
		mult, s = 1e3, strings.TrimSuffix(s, "K")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse rate %q: %v", s, err)
	}
	return v * mult
}

func TestFig7aShapeMatchesPaper(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Run("fig7a")
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range tbl.Rows {
		rates[row[0]] = parseRate(t, row[1])
	}
	bestCPU := rates["MultiLog (CPU)"]
	if rates["BTrDB (CPU)"] > bestCPU || rates["INTCollector (CPU)"] > bestCPU {
		t.Errorf("MultiLog should be the best CPU baseline: %v", rates)
	}
	if kw := rates["DTA Key-Write"]; kw < 4*bestCPU {
		t.Errorf("Key-Write %.0f not >=4x MultiLog %.0f", kw, bestCPU)
	}
	if pc := rates["DTA Postcarding"]; pc < 10*bestCPU {
		t.Errorf("Postcarding %.0f not >=10x MultiLog %.0f", pc, bestCPU)
	}
	if ap := rates["DTA Append"]; ap < 25*bestCPU || ap < 1e9 {
		t.Errorf("Append %.0f not >=25x MultiLog and >=1B/s", ap)
	}
}

func TestFig8ShapeMatchesPaper(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Run("fig8")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		vals[row[0]] = v
	}
	if vals["DTA Key-Write"] != 2.0 {
		t.Errorf("KW mem/report = %v, want 2.0", vals["DTA Key-Write"])
	}
	if v := vals["DTA Postcarding"]; v < 0.35 || v > 0.45 {
		t.Errorf("Postcarding mem/report = %v, want ≈0.40", v)
	}
	if v := vals["DTA Append"]; v < 0.05 || v > 0.08 {
		t.Errorf("Append mem/report = %v, want ≈0.06", v)
	}
	if vals["MultiLog"] < 50*vals["DTA Key-Write"] {
		t.Errorf("MultiLog %v not orders of magnitude above KW", vals["MultiLog"])
	}
}

func TestBoundsAllHold(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Run("bounds")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] == "NO" {
			t.Errorf("bound violated: %v", row)
		}
	}
}

func TestFig12OptimalNDecreasesWithLoad(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Run("fig12")
	if err != nil {
		t.Fatal(err)
	}
	prev := 99
	for _, row := range tbl.Rows {
		nStr := strings.TrimPrefix(row[len(row)-1], "N=")
		n, err := strconv.Atoi(nStr)
		if err != nil {
			t.Fatal(err)
		}
		if n > prev {
			t.Errorf("optimal N increased down the load column: %v", tbl.Rows)
		}
		prev = n
	}
}

func TestFig15LineRateAtLargeBatches(t *testing.T) {
	r := quickRunner()
	tbl, err := r.Run("fig15")
	if err != nil {
		t.Fatal(err)
	}
	// Batch 16 row: model rate above 1B reports/s, and the two list-size
	// columns identical (no list-size effect).
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "16" {
		t.Fatalf("last row %v", last)
	}
	if parseRate(t, last[1]) < 1e9 {
		t.Errorf("batch-16 rate %s below 1B/s", last[1])
	}
	if last[1] != last[2] {
		t.Errorf("list size affected rate: %v", last)
	}
}
