package experiments

import (
	"fmt"

	"dta/internal/baseline"
	"dta/internal/baseline/cuckoo"
	"dta/internal/baseline/multilog"
	"dta/internal/costmodel"
	"dta/internal/telemetry/inttel"
	"dta/internal/telemetry/marple"
	"dta/internal/telemetry/netseer"
	"dta/internal/trace"
	"dta/internal/wire"
)

// workload drives the telemetry systems over a synthetic trace and
// measures per-packet report fan-out, from which per-switch report rates
// at 6.4 Tbps follow.
type workload struct {
	intPostcardsPerPkt float64 // with 0.5% sampling
	flowletPerPkt      float64
	oosPerPkt          float64
	lossPerPkt         float64
}

func (r Runner) measureWorkload() workload {
	cfg := trace.DefaultConfig()
	cfg.Seed = r.P.Seed
	// Calibrated to the conditions behind Table 1's published rates on a
	// ~1.3 Gpps switch: ~0.56%% flowlet churn, ~0.52%% out-of-sequence
	// (reordering + retransmissions), ~0.074%% loss.
	cfg.FlowletGapProb = 0.0056
	cfg.LossRate = 0.00074
	cfg.ReorderProb = 0.0045
	g, _ := trace.NewGenerator(cfg)

	paths, _ := inttel.NewPathModel(1<<14, 3, 5)
	sampler, _ := inttel.NewSampler(1, 200) // 0.5%
	postcards := &inttel.PostcardSource{Paths: paths, Sampler: sampler}
	flowlets := marple.NewFlowletSizes(0, 8)
	losses := &netseer.LossEvents{ListID: 0}

	pkts := 200000
	if r.P.Quick {
		pkts = 20000
	}
	var nPostcards, nFlowlets, nOoS, nLoss int
	var buf []wire.Report
	for i := 0; i < pkts; i++ {
		p := g.Next()
		buf = postcards.Reports(&p, buf[:0])
		nPostcards += len(buf)
		buf = flowlets.Process(&p, buf[:0])
		nFlowlets += len(buf)
		if p.Retransmission || p.OutOfOrder {
			nOoS++
		}
		buf = losses.Process(&p, buf[:0])
		nLoss += len(buf)
	}
	n := float64(pkts)
	return workload{
		intPostcardsPerPkt: float64(nPostcards) / n,
		flowletPerPkt:      float64(nFlowlets) / n,
		oosPerPkt:          float64(nOoS) / n,
		lossPerPkt:         float64(nLoss) / n,
	}
}

// switchPps is the packet rate of the paper's reference switch: 6.4 Tbps
// at ~40% load. DC traffic is dominated by small packets (the median in
// the Benson traces is well under 300B), so the rate basis uses a 250B
// mean — consistent with the ~1.3 Gpps needed to reconcile Table 1's
// published report rates.
func switchPps() float64 { return trace.PacketsPerSecond(6.4e12, 0.40, 250) }

// Table1 reproduces Table 1: per-switch report generation rates.
func (r Runner) Table1() *Table {
	w := r.measureWorkload()
	paper := trace.Table1Rates()
	pps := switchPps()
	t := &Table{
		ID:      "table1",
		Title:   "Per-switch report rates on a 6.4 Tbps switch (~40% load)",
		Columns: []string{"System", "Paper", "This repo (projected)"},
	}
	rows := []struct {
		name            string
		paper, measured float64
	}{
		{"INT Postcards (0.5% sampling)", paper.INTPostcards, w.intPostcardsPerPkt * pps},
		{"Marple (Flowlet sizes)", paper.MarpleFlowlet, w.flowletPerPkt * pps},
		{"Marple (TCP out-of-sequence)", paper.MarpleTCPOoS, w.oosPerPkt * pps},
		{"NetSeer (Loss events)", paper.NetSeerLoss, w.lossPerPkt * pps},
	}
	for _, row := range rows {
		t.AddRow(row.name, fmtRate(row.paper)+"pps", fmtRate(row.measured)+"pps")
	}
	t.AddNote("projected = measured reports-per-packet of our telemetry implementations × %s pps reference switch", fmtRate(pps))
	return t
}

// ingestProfiles runs the two motivation collectors over identical INT
// report streams and returns their per-report cost profiles.
func (r Runner) ingestProfiles() (ml, ck costmodel.PerReport) {
	n := 20000
	if r.P.Quick {
		n = 4000
	}
	m := multilog.New(1 << 16)
	c := cuckoo.New(1 << 16)
	buf := make([]byte, baseline.ReportSize)
	for i := 0; i < n; i++ {
		rep := baseline.Report{
			SrcIP: [4]byte{10, 0, byte(i >> 8), byte(i)}, DstIP: [4]byte{10, 1, 0, 1},
			SrcPort: uint16(i), DstPort: 443, Proto: 6,
			SwitchID: uint32(i % 512), Value: uint32(i), TimestampNs: uint64(i) * 100,
		}
		rep.Encode(buf)
		m.Ingest(buf)
		c.Ingest(buf)
	}
	return m.Counters().PerReport(), c.Counters().PerReport()
}

// Fig2a reproduces Fig. 2a: collection speed vs cores.
func (r Runner) Fig2a() *Table {
	ml, ck := r.ingestProfiles()
	cpu := costmodel.Xeon4114()
	t := &Table{
		ID:      "fig2a",
		Title:   "CPU-collector ingestion throughput vs cores (projected on 2x Xeon 4114)",
		Columns: []string{"Cores", "MultiLog", "Cuckoo"},
	}
	for cores := 2; cores <= 20; cores += 2 {
		rm, _ := cpu.Throughput(ml.TotalCycles(), ml.TotalDRAMOps(), cores)
		rc, _ := cpu.Throughput(ck.TotalCycles(), ck.TotalDRAMOps(), cores)
		t.AddRow(fmt.Sprint(cores), fmtRate(rm), fmtRate(rc))
	}
	t.AddNote("paper shape: MultiLog linear (CPU-bound); Cuckoo flattens beyond ~11 cores (memory-bound)")
	return t
}

// Fig2b reproduces Fig. 2b: memory-stalled cycles vs cores.
func (r Runner) Fig2b() *Table {
	ml, ck := r.ingestProfiles()
	cpu := costmodel.Xeon4114()
	t := &Table{
		ID:      "fig2b",
		Title:   "Memory-stalled cycle fraction vs cores",
		Columns: []string{"Cores", "MultiLog", "Cuckoo"},
	}
	for cores := 2; cores <= 20; cores += 2 {
		_, sm := cpu.Throughput(ml.TotalCycles(), ml.TotalDRAMOps(), cores)
		_, sc := cpu.Throughput(ck.TotalCycles(), ck.TotalDRAMOps(), cores)
		t.AddRow(fmt.Sprint(cores), fmtPct(sm), fmtPct(sc))
	}
	t.AddNote("paper: Cuckoo reaches ~42%% stalled at 20 cores; MultiLog stays low")
	return t
}

// Fig2c reproduces Fig. 2c: per-report cycle breakdown.
func (r Runner) Fig2c() *Table {
	ml, ck := r.ingestProfiles()
	t := &Table{
		ID:      "fig2c",
		Title:   "Per-report cycle breakdown (I/O / Parsing / Insertion)",
		Columns: []string{"Collector", "Cycles", "I/O", "Parsing", "Insertion"},
	}
	for _, e := range []struct {
		name string
		pr   costmodel.PerReport
	}{{"MultiLog", ml}, {"Cuckoo", ck}} {
		sh := e.pr.CycleShare()
		t.AddRow(e.name, fmt.Sprintf("%.0f", e.pr.TotalCycles()),
			fmtPct(sh[0]), fmtPct(sh[1]), fmtPct(sh[2]))
	}
	t.AddNote("paper: MultiLog 13.6/13.6/72.8, Cuckoo 29.1/36.9/34.0")
	return t
}

// Fig3 reproduces Fig. 3: cores needed for single-metric collection with
// MultiLog at various network sizes.
func (r Runner) Fig3() *Table {
	ml, _ := r.ingestProfiles()
	w := r.measureWorkload()
	pps := switchPps()
	cpu := costmodel.Xeon4114()
	t := &Table{
		ID:      "fig3",
		Title:   "Cores needed for MultiLog collection vs network size",
		Columns: []string{"Switches", "INT 0.5%", "Flowlet Sizes (Marple)", "Loss Events (NetSeer)"},
	}
	rates := []float64{w.intPostcardsPerPkt * pps, w.flowletPerPkt * pps, w.lossPerPkt * pps}
	for _, switches := range []int{1, 10, 100, 1000, 10000} {
		row := []string{fmt.Sprint(switches)}
		for _, rate := range rates {
			cores := cpu.CoresFor(rate*float64(switches), ml.TotalCycles())
			row = append(row, fmt.Sprint(cores))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: ~10K cores at 1K switches for INT 0.5%%")
	return t
}
