package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dta/internal/core/appendlist"
	"dta/internal/core/postcarding"
	"dta/internal/rdma"
	"dta/internal/wire"
)

// simulatePostcardCache runs the Fig. 14 workload: per-flow postcards
// arrive at the translator interleaved with `intermediate` other active
// flows; the cache's full-emission ratio determines effective throughput.
func simulatePostcardCache(cacheRows, intermediate, flows int, seed int64) float64 {
	cache, err := postcarding.NewCache(cacheRows, 5)
	if err != nil {
		panic(err)
	}
	rnd := rand.New(rand.NewSource(seed))
	active := make([]struct {
		key wire.Key
		hop int
	}, intermediate+1)
	next := uint64(0)
	started := 0
	for i := range active {
		active[i].key = wire.KeyFromUint64(next)
		next++
		started++
	}
	completed := 0
	for completed < flows {
		i := rnd.Intn(len(active))
		f := &active[i]
		p := wire.Postcard{Key: f.key, Hop: uint8(f.hop), PathLen: 5, Value: uint32(f.hop + 1)}
		cache.Insert(&p)
		f.hop++
		if f.hop == 5 {
			completed++
			f.key = wire.KeyFromUint64(next)
			f.hop = 0
			next++
		}
	}
	return float64(cache.Stats.FullEmits) / float64(completed)
}

// Fig14 reproduces Fig. 14: Postcarding aggregation throughput vs cache
// size and intermediate flows.
func (r Runner) Fig14() *Table {
	nic := rdma.BlueField2()
	chunkRate := nic.MessagesPerSec(32, 4) // padded 32B chunk writes
	caches := []int{8192, 16384, 32768, 65536, 131072}
	inters := []int{0, 100, 1000, 5000, 10000}
	flows := 30000
	if r.P.Quick {
		caches = []int{8192, 32768}
		inters = []int{0, 1000, 10000}
		flows = 5000
	}
	t := &Table{
		ID:    "fig14",
		Title: "Postcarding: aggregated 5-hop paths/s vs cache size and intermediate flows",
	}
	t.Columns = []string{"Cache rows"}
	for _, in := range inters {
		t.Columns = append(t.Columns, fmt.Sprintf("%d interm.", in))
	}
	for _, rows := range caches {
		row := []string{fmt.Sprint(rows)}
		for _, in := range inters {
			succ := simulatePostcardCache(rows, in, flows, r.P.Seed)
			row = append(row, fmtRate(succ*chunkRate)+" ("+fmtPct(succ)+")")
		}
		t.AddRow(row...)
	}
	t.AddNote("cells: paths/s (full-aggregation ratio); early emissions count as failures as in the paper")
	t.AddNote("paper: up to 90.5M paths/s (452.5M postcards/s); collisions on small caches with many intermediate flows cut throughput")
	return t
}

// Fig15 reproduces Fig. 15: Append collection rate vs batch size and
// list size.
func (r Runner) Fig15() *Table {
	nic := rdma.BlueField2()
	t := &Table{
		ID:      "fig15",
		Title:   "Append collection rate vs batch size (4B event reports)",
		Columns: []string{"Batch", "64MiB lists", "2GiB lists", "Go batcher (this machine)"},
	}
	localRate := func(batch int) float64 {
		cfg := appendlist.Config{Lists: 4, EntriesPerList: 1 << 16, EntrySize: 4}
		s, _ := appendlist.NewStore(cfg)
		b, _ := appendlist.NewBatcher(cfg, batch)
		e := []byte{1, 2, 3, 4}
		iters := 1000000
		if r.P.Quick {
			iters = 100000
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			if f, _ := b.Append(i&3, e); f != nil {
				s.Apply(f)
			}
		}
		return float64(iters) / time.Since(start).Seconds()
	}
	for _, batch := range []int{1, 2, 4, 8, 16} {
		rate := nic.ReportsPerSec(4*batch, 1, float64(batch), 4)
		// List size does not change the per-message cost: both columns
		// carry the same model rate, matching the paper's observation.
		t.AddRow(fmt.Sprint(batch), fmtRate(rate), fmtRate(rate), fmtRate(localRate(batch)))
	}
	t.AddNote("paper: linear growth to line rate at batch 4, >1B reports/s at batch 16; list size has no impact")
	return t
}

// Fig16 reproduces Fig. 16: Append list polling rate vs cores, with and
// without concurrent collection, plus the per-poll breakdown.
func (r Runner) Fig16() *Table {
	maxCores := r.P.MaxCores
	if maxCores <= 0 {
		maxCores = runtime.GOMAXPROCS(0)
	}
	if maxCores > 16 {
		maxCores = 16
	}
	polls := 2000000
	if r.P.Quick {
		polls = 200000
	}
	t := &Table{
		ID:      "fig16",
		Title:   "Append polling rate vs cores (one list per core, real execution)",
		Columns: []string{"Cores", "No collection", "Active collection"},
	}
	run := func(cores int, collect bool) float64 {
		cfg := appendlist.Config{Lists: cores + 1, EntriesPerList: 1 << 16, EntrySize: 4}
		s, _ := appendlist.NewStore(cfg)
		var stop atomic.Bool
		var wg sync.WaitGroup
		if collect {
			// A background producer hammers the extra list through the
			// batcher, emulating collection at half capacity.
			wg.Add(1)
			go func() {
				defer wg.Done()
				b, _ := appendlist.NewBatcher(cfg, 16)
				e := []byte{9, 9, 9, 9}
				for !stop.Load() {
					for i := 0; i < 1024; i++ {
						if f, _ := b.Append(cores, e); f != nil {
							s.Apply(f)
						}
					}
				}
			}()
		}
		var pwg sync.WaitGroup
		start := time.Now()
		for c := 0; c < cores; c++ {
			pwg.Add(1)
			go func(list int) {
				defer pwg.Done()
				p, _ := s.NewPoller(list)
				var sink byte
				for i := 0; i < polls/cores; i++ {
					sink += p.Poll()[0]
				}
				_ = sink
			}(c)
		}
		pwg.Wait()
		el := time.Since(start).Seconds()
		stop.Store(true)
		wg.Wait()
		return float64(polls) / el
	}
	for cores := 1; cores <= maxCores; cores *= 2 {
		t.AddRow(fmt.Sprint(cores), fmtRate(run(cores, false)), fmtRate(run(cores, true)))
	}
	// Per-poll breakdown (Fig. 16b): tail increment vs retrieval.
	cfg := appendlist.Config{Lists: 1, EntriesPerList: 1 << 16, EntrySize: 4}
	s, _ := appendlist.NewStore(cfg)
	p, _ := s.NewPoller(0)
	iters := 5000000
	if r.P.Quick {
		iters = 500000
	}
	start := time.Now()
	var sink byte
	for i := 0; i < iters; i++ {
		sink += p.Poll()[0]
	}
	_ = sink
	perPoll := time.Since(start).Seconds() * 1e9 / float64(iters)
	t.AddNote("per-poll cost %.1fns (pointer increment + wrap check + read) — paper: tens of ns, faster than collection", perPoll)
	t.AddNote("paper: near-linear scaling; 8 cores drain the maximum collection rate; concurrent collection has negligible impact")
	return t
}
